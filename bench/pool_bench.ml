open Oqmc_containers
open Oqmc_core
open Oqmc_rng

(* Pool + crowd-batching benchmark: the machine-readable perf trajectory
   for the persistent-domain-pool work.

   Four measurements, printed as a table and optionally written as JSON
   (BENCH_pool.json) so regressions are diffable across PRs:

   1. generation dispatch: spawn/join-per-generation (the old Runner)
      vs. the persistent pool, in the spawn-bound regime (many
      generations, tiny per-walker work);
   2. Bspline-vgh ns/op: scalar loop vs. batched kernel at several
      crowd sizes, both precisions;
   3. allocation per evaluation: the batched kernel must not allocate
      (scratch lives in the arena) — asserted, not just reported;
   4. end-to-end VMC walker throughput, scalar vs. crowd path, with the
      bit-identity of the two paths asserted on the total energy. *)

module B3_64 = Oqmc_spline.Bspline3d.Make (Precision.F64)
module B3_32 = Oqmc_spline.Bspline3d.Make (Precision.F32)

let time_per ~reps f =
  let t0 = Timers.now () in
  for _ = 1 to reps do
    f ()
  done;
  (Timers.now () -. t0) /. float_of_int reps

(* ---- 1. generation dispatch: spawn-per-generation vs pool ---- *)

(* The pre-pool Runner, inlined as the reference: spawn + join every
   generation with static contiguous chunks. *)
let spawn_iter ~n_domains ~n ~f =
  let chunk = (n + n_domains - 1) / n_domains in
  let work d () =
    let lo = d * chunk in
    let hi = min n (lo + chunk) in
    for i = lo to hi - 1 do
      f d i
    done
  in
  let handles =
    Array.init (n_domains - 1) (fun d -> Domain.spawn (work (d + 1)))
  in
  work 0 ();
  Array.iter Domain.join handles

type dispatch = {
  n_domains : int;
  generations : int;
  walkers : int;
  spawn_per_gen_ns : float;
  pool_per_gen_ns : float;
  speedup : float;
}

let bench_dispatch () =
  let n_domains = 2 and generations = 500 and walkers = 8 in
  let sink = Array.make walkers 0. in
  let body _d i = sink.(i) <- sink.(i) +. 1. in
  let spawn_t =
    time_per ~reps:generations (fun () ->
        spawn_iter ~n_domains ~n:walkers ~f:body)
  in
  let sys = Oqmc_workloads.Validation.harmonic ~n:2 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:1 sys in
  let pool_t =
    Runner.with_runner ~n_domains ~factory (fun runner ->
        (* one warm region so workers are parked, not spawning *)
        Runner.parallel_for runner ~n:walkers ~f:(fun ~domain i ->
            body domain i);
        time_per ~reps:generations (fun () ->
            Runner.parallel_for runner ~n:walkers ~f:(fun ~domain i ->
                body domain i)))
  in
  {
    n_domains;
    generations;
    walkers;
    spawn_per_gen_ns = spawn_t *. 1e9;
    pool_per_gen_ns = pool_t *. 1e9;
    speedup = spawn_t /. pool_t;
  }

(* ---- 2./3. Bspline-vgh: scalar loop vs batched kernel ---- *)

type vgh_point = {
  precision : string;
  crowd : int;
  scalar_ns_per_op : float;
  batch_ns_per_op : float;
  batch_speedup : float;
}

type alloc = { scalar_words_per_op : float; batch_words_per_op : float }

let minor_words_per ~reps f =
  f ();
  (* warmup: first-touch, lazy init *)
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

let synthetic ~orb ~i ~j ~k =
  sin (float_of_int ((orb * 7) + (i * 3) + (j * 5) + (k * 11)))

(* [scalar ~u0 ~u1 ~u2] evaluates one position into a reused buffer;
   [batch ~n ~u0 ~u1 ~u2] evaluates [n] positions through the arena. *)
let bench_vgh ~precision ~scalar ~batch crowds =
  let rng = Xoshiro.create 42 in
  List.map
    (fun crowd ->
      let u0 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
      let u1 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
      let u2 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
      let reps = max 1 (20_000 / crowd) in
      let scalar_t =
        time_per ~reps (fun () ->
            for s = 0 to crowd - 1 do
              scalar ~u0:u0.(s) ~u1:u1.(s) ~u2:u2.(s)
            done)
      in
      let batch_t = time_per ~reps (fun () -> batch ~n:crowd ~u0 ~u1 ~u2) in
      let per = float_of_int crowd in
      {
        precision;
        crowd;
        scalar_ns_per_op = scalar_t *. 1e9 /. per;
        batch_ns_per_op = batch_t *. 1e9 /. per;
        batch_speedup = scalar_t /. batch_t;
      })
    crowds

let bench_vgh_all () =
  let crowds = [ 1; 8; 16 ] in
  let t64 = B3_64.create ~nx:16 ~ny:16 ~nz:16 ~n_orb:32 in
  B3_64.fill t64 synthetic;
  let buf64 = B3_64.make_vgh_buf t64 in
  let arena64 = B3_64.make_vgh_batch t64 ~cap:16 in
  let f64 =
    bench_vgh ~precision:"f64"
      ~scalar:(fun ~u0 ~u1 ~u2 -> B3_64.eval_vgh t64 ~u0 ~u1 ~u2 buf64)
      ~batch:(fun ~n ~u0 ~u1 ~u2 ->
        B3_64.eval_vgh_batch t64 arena64 ~n ~u0 ~u1 ~u2)
      crowds
  in
  let t32 = B3_32.create ~nx:16 ~ny:16 ~nz:16 ~n_orb:32 in
  B3_32.fill t32 synthetic;
  let buf32 = B3_32.make_vgh_buf t32 in
  let arena32 = B3_32.make_vgh_batch t32 ~cap:16 in
  let f32 =
    bench_vgh ~precision:"f32"
      ~scalar:(fun ~u0 ~u1 ~u2 -> B3_32.eval_vgh t32 ~u0 ~u1 ~u2 buf32)
      ~batch:(fun ~n ~u0 ~u1 ~u2 ->
        B3_32.eval_vgh_batch t32 arena32 ~n ~u0 ~u1 ~u2)
      crowds
  in
  f64 @ f32

let bench_alloc () =
  let table = B3_64.create ~nx:16 ~ny:16 ~nz:16 ~n_orb:32 in
  B3_64.fill table synthetic;
  let buf = B3_64.make_vgh_buf table in
  let crowd = 8 in
  let arena = B3_64.make_vgh_batch table ~cap:crowd in
  let rng = Xoshiro.create 43 in
  let u0 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
  let u1 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
  let u2 = Array.init crowd (fun _ -> Xoshiro.uniform rng) in
  let reps = 2000 in
  let scalar =
    minor_words_per ~reps (fun () ->
        for s = 0 to crowd - 1 do
          B3_64.eval_vgh table ~u0:u0.(s) ~u1:u1.(s) ~u2:u2.(s) buf
        done)
    /. float_of_int crowd
  in
  let batch_w =
    minor_words_per ~reps (fun () ->
        B3_64.eval_vgh_batch table arena ~n:crowd ~u0 ~u1 ~u2)
    /. float_of_int crowd
  in
  (* The whole point of the arena: zero allocation on the batched path.
     Hard assertion so the bench harness doubles as a regression test. *)
  if batch_w > 1. then
    failwith
      (Printf.sprintf
         "pool_bench: eval_vgh_batch allocates %.1f words/op (want 0)"
         batch_w);
  { scalar_words_per_op = scalar; batch_words_per_op = batch_w }

(* ---- 4. end-to-end VMC walker throughput ---- *)

type vmc_point = { vcrowd : int; samples_per_s : float; energy : float }

let bench_vmc () =
  let sys = Oqmc_workloads.Validation.harmonic ~n:6 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:5 sys in
  let params =
    {
      Vmc.n_walkers = 8;
      warmup = 10;
      blocks = 3;
      steps_per_block = 20;
      tau = 0.3;
      seed = 9;
      n_domains = 1;
    }
  in
  List.map
    (fun crowd ->
      let res = Vmc.run ~crowd ~factory params in
      {
        vcrowd = crowd;
        samples_per_s = res.Vmc.throughput;
        energy = res.Vmc.energy;
      })
    [ 1; 8 ]

(* ---- reporting ---- *)

let json_of ~dispatch ~vgh ~alloc ~vmc =
  let b = Buffer.create 2048 in
  let f = Printf.bprintf in
  f b "{\n";
  f b "%s" (Report.bench_header ~precision:"f32" ~delay:1);
  f b "  \"pool\": {\n";
  f b "    \"n_domains\": %d,\n" dispatch.n_domains;
  f b "    \"generations\": %d,\n" dispatch.generations;
  f b "    \"walkers\": %d,\n" dispatch.walkers;
  f b "    \"spawn_per_gen_ns\": %.1f,\n" dispatch.spawn_per_gen_ns;
  f b "    \"pool_per_gen_ns\": %.1f,\n" dispatch.pool_per_gen_ns;
  f b "    \"speedup\": %.2f\n" dispatch.speedup;
  f b "  },\n";
  f b "  \"bspline_vgh\": [\n";
  List.iteri
    (fun i p ->
      f b
        "    {\"precision\": %S, \"crowd\": %d, \"scalar_ns_per_op\": %.1f, \
         \"batch_ns_per_op\": %.1f, \"batch_speedup\": %.3f}%s\n"
        p.precision p.crowd p.scalar_ns_per_op p.batch_ns_per_op
        p.batch_speedup
        (if i = List.length vgh - 1 then "" else ","))
    vgh;
  f b "  ],\n";
  f b "  \"alloc_words_per_op\": {\"scalar\": %.1f, \"batch\": %.2f},\n"
    alloc.scalar_words_per_op alloc.batch_words_per_op;
  f b "  \"vmc_throughput\": [\n";
  List.iteri
    (fun i p ->
      f b "    {\"crowd\": %d, \"samples_per_s\": %.1f, \"energy\": %.6f}%s\n"
        p.vcrowd p.samples_per_s p.energy
        (if i = List.length vmc - 1 then "" else ","))
    vmc;
  f b "  ]\n";
  f b "}\n";
  Buffer.contents b

let run ?json () =
  Printf.printf "== persistent pool vs spawn-per-generation ==\n%!";
  let dispatch = bench_dispatch () in
  Printf.printf
    "  %d domains, %d walkers: spawn %.1f us/gen, pool %.1f us/gen  \
     (speedup %.1fx)\n"
    dispatch.n_domains dispatch.walkers
    (dispatch.spawn_per_gen_ns /. 1e3)
    (dispatch.pool_per_gen_ns /. 1e3)
    dispatch.speedup;
  Printf.printf "== Bspline-vgh scalar vs batched ==\n%!";
  let vgh = bench_vgh_all () in
  List.iter
    (fun p ->
      Printf.printf
        "  %s crowd %2d: scalar %.0f ns/op, batch %.0f ns/op  (%.2fx)\n"
        p.precision p.crowd p.scalar_ns_per_op p.batch_ns_per_op
        p.batch_speedup)
    vgh;
  let alloc = bench_alloc () in
  Printf.printf
    "== allocation: scalar %.1f words/op, batch %.2f words/op ==\n%!"
    alloc.scalar_words_per_op alloc.batch_words_per_op;
  Printf.printf "== VMC walker throughput ==\n%!";
  let vmc = bench_vmc () in
  List.iter
    (fun p ->
      Printf.printf "  crowd %2d: %.1f samples/s  (E = %.6f)\n" p.vcrowd
        p.samples_per_s p.energy)
    vmc;
  (match vmc with
  | a :: rest ->
      List.iter
        (fun b ->
          if not (Float.equal b.energy a.energy) then
            failwith
              "pool_bench: crowd VMC energy deviates from scalar path")
        rest
  | [] -> ());
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of ~dispatch ~vgh ~alloc ~vmc);
      close_out oc;
      Printf.printf "wrote %s\n%!" path
