open Oqmc_containers
open Oqmc_rng
open Oqmc_core
open Oqmc_autotune
module J = Oqmc_obs.Jsonx

(* BENCH_autotune: the three acceptance measurements of the
   autotuning + mixed-precision + blocked-delayed-update work, recorded
   as one JSON document:

   1. delayed updates at NiO-32's real determinant order (192 per spin):
      the blocked flush must make the best rank *faster* than rank-1
      Sherman-Morrison — asserted, not just reported;
   2. mixed precision: f32 B-spline coefficient storage vs f64 on the
      same synthetic NiO-32 table, SPO-vgl ns/eval, plus a short f32 DMC
      under the integrity watchdog whose sampled full-recompute drift
      audit must pass — asserted;
   3. autotuned crowd/delay vs a hand-swept grid on two systems: the
      tuner's pick must land within 10% of the best measured VMC
      throughput (reported; warned on miss — single-core timing noise
      exceeds the margin on bad days). *)

(* ---- 1. delayed updates at NiO-32 determinant order ---- *)

let bench_delay_nio () =
  let pts =
    Crowd_bench.bench_delay ~n:192 ~sweeps:6 ~delays:[ 1; 4; 8; 16 ] ()
  in
  let t1 =
    List.find (fun p -> p.Crowd_bench.delay = 1) pts
    |> fun p -> p.Crowd_bench.det_ns_per_move
  in
  let bk, bt =
    List.fold_left
      (fun (bk, bt) p ->
        if p.Crowd_bench.det_ns_per_move < bt then
          (p.Crowd_bench.delay, p.Crowd_bench.det_ns_per_move)
        else (bk, bt))
      (1, infinity) pts
  in
  Printf.printf "  NiO-32 det order 192:\n";
  List.iter
    (fun p ->
      Printf.printf "    delay %2d: %.1f ns/move\n" p.Crowd_bench.delay
        p.Crowd_bench.det_ns_per_move)
    pts;
  Printf.printf "    best delay %d  (%.2fx vs rank-1)\n" bk (t1 /. bt);
  if bk = 1 || bt >= t1 then
    failwith
      "autotune_bench: blocked delayed updates no faster than rank-1 at \
       NiO-32 order";
  (pts, bk, t1 /. bt)

(* ---- 2. mixed precision: spline kernel + drift audit ---- *)

(* Spline kernel timing with a long non-repeating position stream, so
   the stencil gathers stream from the table instead of replaying a
   cache-resident handful of neighborhoods — the regime where f32
   coefficient storage halves the bytes per eval. *)
let n_pos = 4096

let spo_positions () =
  let rng = Xoshiro.create 41 in
  Array.init n_pos (fun _ ->
      Vec3.make
        (Xoshiro.uniform rng *. 15.)
        (Xoshiro.uniform rng *. 15.)
        (Xoshiro.uniform rng *. 7.))

(* Crowd-batched evaluation (the pipeline's hot path): the batch
   kernels gather stencil coefficients through kind-specialized unboxed
   loads, so the f32 table moves half the bytes of the f64 one per
   eval — the scalar [eval_v]/[eval_vgl] entry points instead pay a
   boxed functor-boundary load per coefficient and hide the bandwidth
   difference behind allocation. *)
let spo_ns ~kernel (sys : System.t) ~reps =
  let spo = sys.System.spo in
  let pos = spo_positions () in
  let mask = n_pos - 1 in
  let crowd = 16 in
  let window = Array.make crowd pos.(0) in
  let fill i =
    let base = i * crowd in
    for s = 0 to crowd - 1 do
      window.(s) <- pos.((base + s) land mask)
    done
  in
  let run =
    match kernel with
    | `V ->
        let b = spo.Oqmc_wavefunction.Spo.make_v_batch crowd in
        fun i ->
          fill i;
          b.Oqmc_wavefunction.Spo.vrun window crowd
    | `Vgl ->
        let b = spo.Oqmc_wavefunction.Spo.make_vgl_batch crowd in
        fun i ->
          fill i;
          b.Oqmc_wavefunction.Spo.run window crowd
  in
  let calls = max 1 (reps / crowd) in
  for i = 0 to (calls / 4) - 1 do
    run i
  done;
  (* warmup *)
  let t0 = Timers.now () in
  for i = 0 to calls - 1 do
    run i
  done;
  (Timers.now () -. t0) *. 1e9 /. float_of_int (calls * crowd)

type mp_result = {
  v64 : float;
  v32 : float;
  n64 : float;
  n32 : float;
  it : Integrity.stats;
}

let bench_mixed_precision () =
  let mk precision =
    Oqmc_workloads.Builder.make ~reduction:4 ~with_nlpp:false ~precision
      Oqmc_workloads.Spec.nio32
  in
  let sys32 = mk `F32 and sys64 = mk `F64 in
  let reps = 20_000 in
  let v64 = spo_ns ~kernel:`V sys64 ~reps
  and v32 = spo_ns ~kernel:`V sys32 ~reps in
  let n64 = spo_ns ~kernel:`Vgl sys64 ~reps:(reps / 4)
  and n32 = spo_ns ~kernel:`Vgl sys32 ~reps:(reps / 4) in
  Printf.printf
    "  Bspline-v batched NiO-32/r4: f64 %.1f ns/eval, f32 %.1f ns/eval  \
     (%.2fx)\n"
    v64 v32 (v64 /. v32);
  (* Drift audit: short f32 DMC with the watchdog's sampled
     full-recompute audit on every 5th generation. *)
  let factory = Build.factory ~variant:Variant.Current ~seed:3 sys32 in
  let res =
    Dmc.run
      ~watchdog:{ Integrity.default_config with Integrity.check_every = 5 }
      ~crowd:4 ~factory
      {
        Dmc.target_walkers = 8;
        warmup = 4;
        generations = 20;
        tau = 0.02;
        seed = 11;
        n_domains = 1;
        ranks = 1;
      }
  in
  let it = res.Dmc.integrity in
  let drift_ok =
    it.Integrity.audits > 0 && it.Integrity.quarantined = 0
  in
  Printf.printf
    "  SPO-vgl batched NiO-32/r4: f64 %.1f ns/eval, f32 %.1f ns/eval  \
     (%.2fx)\n"
    n64 n32 (n64 /. n32);
  Printf.printf
    "  f32 drift audit: %d audits, %d quarantined, drift_max %.3g  (%s)\n"
    it.Integrity.audits it.Integrity.quarantined it.Integrity.drift_max
    (if drift_ok then "pass" else "FAIL");
  if not drift_ok then
    failwith "autotune_bench: f32 drift audit failed";
  let best = Float.max (v64 /. v32) (n64 /. n32) in
  if best <= 1. then
    Printf.printf
      "  WARNING: no f32 speedup on this run (noise or cache-resident \
       table)\n";
  { v64; v32; n64; n32; it }

(* ---- 3. autotuned knobs vs hand-swept grid ---- *)

let vmc_throughput ~sys ~crowd ~delay ~walkers =
  let factory =
    Build.factory
      ?delay:(if delay <= 1 then None else Some delay)
      ~variant:Variant.Current ~seed:5 sys
  in
  let res =
    Vmc.run ~crowd ~factory
      {
        Vmc.n_walkers = walkers;
        warmup = 4;
        blocks = 2;
        steps_per_block = 8;
        tau = 0.1;
        seed = 9;
        n_domains = 1;
      }
  in
  res.Vmc.throughput

type tune_point = {
  tsystem : string;
  choice : Tuner.choice;
  auto_samples_per_s : float;
  best_samples_per_s : float;
  best_crowd : int;
  best_delay : int;
  within_best_pct : float;
}

let bench_tune ~machine ~name ~sys =
  let walkers = 8 in
  let choice =
    Tuner.choose ~machine ~refine:true ~walkers ~domains:1
      ~variant:Variant.Current ~precision:`F32 ~sys ()
  in
  Tuner.publish choice;
  Printf.printf "  %s: %s\n" name (Tuner.describe choice);
  let measure crowd delay =
    let t = vmc_throughput ~sys ~crowd ~delay ~walkers in
    Float.max t (vmc_throughput ~sys ~crowd ~delay ~walkers)
  in
  let grid =
    List.concat_map
      (fun c -> List.map (fun k -> (c, k)) [ 1; 8 ])
      [ 1; 2; 4; 8 ]
  in
  let swept = List.map (fun (c, k) -> (c, k, measure c k)) grid in
  let bc, bk, bt =
    List.fold_left
      (fun (bc, bk, bt) (c, k, t) ->
        if t > bt then (c, k, t) else (bc, bk, bt))
      (1, 1, 0.) swept
  in
  let ac = min choice.Tuner.knobs.Tuner.crowd walkers in
  let ak = choice.Tuner.knobs.Tuner.delay in
  let at = measure ac ak in
  let within = 100. *. ((bt /. Float.max at 1e-9) -. 1.) in
  Printf.printf
    "    hand-swept best crowd=%d delay=%d %.1f samples/s; autotuned \
     crowd=%d delay=%d %.1f samples/s  (%.1f%% off best)\n"
    bc bk bt ac ak at within;
  if within > 10. then
    Printf.printf
      "    WARNING: autotuned config more than 10%% off hand-swept best\n";
  {
    tsystem = name;
    choice;
    auto_samples_per_s = at;
    best_samples_per_s = bt;
    best_crowd = bc;
    best_delay = bk;
    within_best_pct = within;
  }

(* ---- 4. tuner tile pick vs hand-swept tile sweep ---- *)

(* How much batched-vgl throughput the tuner's tile pick leaves on the
   table against an exhaustive tile sweep (same measurement loop as
   {!Tile_bench}).  Recorded, not asserted: the measured-refinement grid
   is small and single-core timing noise routinely exceeds a few
   percent. *)
type tile_gap = {
  g_auto_tile : int;  (* 0 = tuner kept the flat layout *)
  g_auto_ns : float;
  g_best_tile : int;
  g_best_ns : float;
  g_within_pct : float;  (* how far the pick is off the swept best *)
}

let bench_tile_gap () =
  let s = Tile_bench.sweep ~name:"NiO-32" ~spec:Oqmc_workloads.Spec.nio32 in
  let auto = Tile_bench.bench_autotuned ~margin:infinity () in
  let best =
    List.fold_left
      (fun (acc : Tile_bench.point) p ->
        if p.Tile_bench.ns_per_eval < acc.Tile_bench.ns_per_eval then p
        else acc)
      (List.hd s.Tile_bench.points)
      s.Tile_bench.points
  in
  let within =
    100. *. ((auto.Tile_bench.tiled_ns /. best.Tile_bench.ns_per_eval) -. 1.)
  in
  Printf.printf
    "  tile gap: autotuned tile %d %.1f ns/eval vs swept best %s %.1f \
     ns/eval  (%.1f%% off best)\n%!"
    auto.Tile_bench.atile auto.Tile_bench.tiled_ns
    (if best.Tile_bench.tile = 0 then "flat"
     else string_of_int best.Tile_bench.tile)
    best.Tile_bench.ns_per_eval within;
  {
    g_auto_tile = auto.Tile_bench.atile;
    g_auto_ns = auto.Tile_bench.tiled_ns;
    g_best_tile = best.Tile_bench.tile;
    g_best_ns = best.Tile_bench.ns_per_eval;
    g_within_pct = within;
  }

(* ---- reporting ---- *)

let json_of ~delays ~best_k ~speedup_k ~mp ~tunes ~tile_gap =
  let { v64; v32; n64; n32; it } = mp in
  let chosen_delay =
    match tunes with t :: _ -> t.choice.Tuner.knobs.Tuner.delay | [] -> best_k
  in
  J.Obj
    [
      ( "header",
        J.Obj
          [
            ("schema", J.Num 1.);
            ("precision", J.Str "f32");
            ("delay", J.Num (float_of_int chosen_delay));
          ] );
      ( "delayed_nio32",
        J.Obj
          [
            ("n", J.Num 192.);
            ( "points",
              J.Arr
                (List.map
                   (fun p ->
                     J.Obj
                       [
                         ( "delay",
                           J.Num (float_of_int p.Crowd_bench.delay) );
                         ( "det_ns_per_move",
                           J.Num p.Crowd_bench.det_ns_per_move );
                       ])
                   delays) );
            ("best_delay", J.Num (float_of_int best_k));
            ("speedup_vs_rank1", J.Num speedup_k);
          ] );
      ( "mixed_precision",
        J.Obj
          [
            ( "kernels",
              J.Arr
                [
                  J.Obj
                    [
                      ("kernel", J.Str "Bspline-v-batch");
                      ("f64_ns_per_eval", J.Num v64);
                      ("f32_ns_per_eval", J.Num v32);
                      ("speedup", J.Num (v64 /. v32));
                    ];
                  J.Obj
                    [
                      ("kernel", J.Str "SPO-vgl-batch");
                      ("f64_ns_per_eval", J.Num n64);
                      ("f32_ns_per_eval", J.Num n32);
                      ("speedup", J.Num (n64 /. n32));
                    ];
                ] );
            ("speedup", J.Num (Float.max (v64 /. v32) (n64 /. n32)));
            ("drift_audits", J.Num (float_of_int it.Integrity.audits));
            ( "drift_quarantined",
              J.Num (float_of_int it.Integrity.quarantined) );
            ("drift_max", J.Num it.Integrity.drift_max);
            ( "drift_ok",
              J.Bool
                (it.Integrity.audits > 0 && it.Integrity.quarantined = 0) );
          ] );
      ( "systems",
        J.Arr
          (List.map
             (fun t ->
               J.Obj
                 [
                   ("system", J.Str t.tsystem);
                   ("autotune", Tuner.choice_json t.choice);
                   ("auto_samples_per_s", J.Num t.auto_samples_per_s);
                   ("best_samples_per_s", J.Num t.best_samples_per_s);
                   ("best_crowd", J.Num (float_of_int t.best_crowd));
                   ("best_delay", J.Num (float_of_int t.best_delay));
                   ("within_best_pct", J.Num t.within_best_pct);
                 ])
             tunes) );
      ( "tile_gap",
        J.Obj
          [
            ("auto_tile", J.Num (float_of_int tile_gap.g_auto_tile));
            ("auto_ns_per_eval", J.Num tile_gap.g_auto_ns);
            ("best_tile", J.Num (float_of_int tile_gap.g_best_tile));
            ("best_ns_per_eval", J.Num tile_gap.g_best_ns);
            ("within_best_pct", J.Num tile_gap.g_within_pct);
          ] );
    ]

let run ?json () =
  Printf.printf "== delayed determinant updates at NiO-32 order ==\n%!";
  let delays, best_k, speedup_k = bench_delay_nio () in
  Printf.printf "== mixed precision: f32 vs f64 spline storage ==\n%!";
  let mp = bench_mixed_precision () in
  Printf.printf "== autotune vs hand-swept grid ==\n%!";
  let machine = Calibrate.machine () in
  let tunes =
    [
      bench_tune ~machine ~name:"harmonic-6"
        ~sys:(Oqmc_workloads.Validation.harmonic ~n:6 ~omega:1.0);
      bench_tune ~machine ~name:"NiO-32/r16"
        ~sys:
          (Oqmc_workloads.Builder.make ~reduction:16 ~with_nlpp:false
             Oqmc_workloads.Spec.nio32);
    ]
  in
  Printf.printf "== tuner tile pick vs hand-swept tile sweep ==\n%!";
  let tile_gap = bench_tile_gap () in
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc
        (J.to_string (json_of ~delays ~best_k ~speedup_k ~mp ~tunes ~tile_gap));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n%!" path

(* Tiny run for the @autotune-smoke alias: model-only choice on the
   harmonic validation system — asserts a config is chosen, lands in the
   metrics registry, and round-trips through the JSON encoder. *)
let smoke () =
  let sys = Oqmc_workloads.Validation.harmonic ~n:6 ~omega:1.0 in
  let choice =
    Tuner.choose ~machine:(Calibrate.machine ()) ~walkers:8 ~domains:1
      ~variant:Variant.Current ~precision:`F32 ~sys ()
  in
  Tuner.publish choice;
  print_endline ("autotune smoke: " ^ Tuner.describe choice);
  let k = choice.Tuner.knobs in
  if k.Tuner.crowd < 1 || k.Tuner.delay < 1 || k.Tuner.grain < 1 then
    failwith "autotune_bench: nonsensical knobs chosen";
  (* the harmonic determinant is 3x3: delaying would be a model bug *)
  if k.Tuner.delay <> 1 then
    failwith "autotune_bench: delay > 1 chosen for a 3x3 determinant";
  let ms = Oqmc_obs.Metrics.snapshot () in
  let gauge name =
    match Oqmc_obs.Metrics.find ms name with
    | Some (Oqmc_obs.Metrics.Gauge g) -> g
    | _ -> failwith ("autotune_bench: metric missing: " ^ name)
  in
  if int_of_float (gauge "autotune.crowd") <> k.Tuner.crowd then
    failwith "autotune_bench: metrics registry disagrees with choice";
  ignore (gauge "autotune.predicted_speedup");
  (* the BENCH record must parse back *)
  let doc = J.to_string (Tuner.choice_json choice) in
  (match J.parse_string_exn doc with
  | J.Obj _ -> ()
  | _ -> failwith "autotune_bench: choice JSON is not an object");
  Printf.printf "autotune smoke: ok\n%!"
