(* Plain-text report helpers: every experiment prints a titled block with
   the paper's reference numbers next to the reproduced ones, so the
   bench output reads as a side-by-side reproduction log. *)

let line = String.make 78 '-'

(* Every BENCH_*.json record opens with this header so records name the
   precision (f32/f64) and delayed-update rank they were measured at —
   diffing benches across PRs without it is guesswork.  The schema
   version lets scripts/validate_bench.sh refuse records whose shape it
   does not understand; bump it when a header key changes meaning. *)
let bench_schema = 1

let bench_header ~precision ~delay =
  Printf.sprintf
    "  \"header\": {\"schema\": %d, \"precision\": %S, \"delay\": %d},\n"
    bench_schema precision delay

let section title =
  Printf.printf "\n%s\n== %s\n%s\n" line title line

let subsection title = Printf.printf "\n-- %s --\n" title

let kv fmt = Printf.printf fmt

let row4 a b c d = Printf.printf "%-14s %14s %14s %14s\n" a b c d

let fl f = Printf.sprintf "%.3g" f

(* A fixed kernel order so profiles from different sources align. *)
let kernel_order =
  [ "DistTable"; "J2"; "J1"; "Bspline-v"; "Bspline-vgh"; "SPO-vgl";
    "DetUpdate"; "Other" ]

let print_profile ~label profile =
  Printf.printf "%-22s" label;
  List.iter
    (fun k ->
      let v = try List.assoc k profile with Not_found -> 0. in
      Printf.printf " %s=%4.1f%%" k (100. *. v))
    kernel_order;
  print_newline ()

let print_profile_header () =
  Printf.printf "%-22s  (fraction of instrumented kernel time)\n" "profile"

let bar width frac =
  let n = int_of_float (frac *. float_of_int width) in
  String.make (max 0 (min width n)) '#'
