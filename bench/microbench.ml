open Bechamel
open Oqmc_containers
open Oqmc_particle
open Oqmc_core
open Oqmc_workloads
open Oqmc_rng

(* Bechamel kernel microbenchmarks.  Each test is tagged with the
   table/figure it underpins: the distance-table and Jastrow kernels feed
   the profile figures (Figs. 2 and 7), the B-spline precision pair feeds
   the mixed-precision step (Fig. 8), the full sweeps feed the end-to-end
   speedups (Fig. 1 / Table 2), walker serialization feeds the memory and
   message-size story (Fig. 9), and the determinant pair feeds the
   delayed-update outlook (Sec. 8.4). *)

module Ps64 = Particle_set.Make (Precision.F64)
module AAref64 = Dt_aa_ref.Make (Precision.F64)
module AAsoa64 = Dt_aa_soa.Make (Precision.F64) (Precision.F64)
module AAsoa32 = Dt_aa_soa.Make (Precision.F32) (Precision.F32)
module Ps32 = Particle_set.Make (Precision.F32)
module B3_32 = Oqmc_spline.Bspline3d.Make (Precision.F32)
module B3_64 = Oqmc_spline.Bspline3d.Make (Precision.F64)
module M64 = Matrix.Make (Precision.F64)
module A64 = Aligned.Make (Precision.F64)
module L64 = Oqmc_linalg.Lu.Make (Precision.F64)
module Sm64 = Oqmc_linalg.Sherman_morrison.Make (Precision.F64)
module Du64 = Oqmc_linalg.Delayed_update.Make (Precision.F64)

let n_bench = 128

let random_ps64 seed n =
  let lattice = Lattice.cubic 8. in
  let ps =
    Ps64.create ~lattice
      [ { Particle_set.name = "e"; charge = -1.; count = n } ]
  in
  let rng = Xoshiro.create seed in
  Ps64.randomize ps (fun () -> Xoshiro.uniform rng);
  ps

let random_ps32 seed n =
  let lattice = Lattice.cubic 8. in
  let ps =
    Ps32.create ~lattice
      [ { Particle_set.name = "e"; charge = -1.; count = n } ]
  in
  let rng = Xoshiro.create seed in
  Ps32.randomize ps (fun () -> Xoshiro.uniform rng);
  ps

(* Figs. 2/7: one distance-table move, Ref (AoS triangle) vs Current
   (SoA rows, f64 and f32). *)
let dt_tests =
  let ps = random_ps64 1 n_bench in
  let tref = AAref64.create ps in
  AAref64.evaluate tref ps;
  let tsoa = AAsoa64.create ps in
  AAsoa64.evaluate tsoa ps;
  let ps32 = random_ps32 1 n_bench in
  let tsoa32 = AAsoa32.create ps32 in
  AAsoa32.evaluate tsoa32 ps32;
  let pos = Vec3.make 4. 4. 4. in
  [
    Test.make ~name:"fig2/dt-aa-ref-move(f64)"
      (Staged.stage (fun () -> AAref64.move tref ps 3 pos));
    Test.make ~name:"fig2/dt-aa-soa-move(f64)"
      (Staged.stage (fun () ->
           AAsoa64.prepare tsoa ps 3;
           AAsoa64.move tsoa ps 3 pos));
    Test.make ~name:"fig2/dt-aa-soa-move(f32)"
      (Staged.stage (fun () ->
           AAsoa32.prepare tsoa32 ps32 3;
           AAsoa32.move tsoa32 ps32 3 pos));
  ]

(* Fig. 8: B-spline value evaluation at both storage precisions. *)
let bspline_tests =
  let n_orb = 64 in
  let rng = Xoshiro.create 2 in
  let t32 = B3_32.create ~nx:16 ~ny:16 ~nz:16 ~n_orb in
  B3_32.fill t32 (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
      Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.);
  let t64 = B3_64.create ~nx:16 ~ny:16 ~nz:16 ~n_orb in
  B3_64.fill t64 (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
      Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.);
  let out = Array.make n_orb 0. in
  let buf32 = B3_32.make_vgh_buf t32 in
  [
    Test.make ~name:"fig8/bspline-v(f32)"
      (Staged.stage (fun () -> B3_32.eval_v t32 ~u0:0.3 ~u1:0.6 ~u2:0.9 out));
    Test.make ~name:"fig8/bspline-v(f64)"
      (Staged.stage (fun () -> B3_64.eval_v t64 ~u0:0.3 ~u1:0.6 ~u2:0.9 out));
    Test.make ~name:"fig2/bspline-vgh(f32)"
      (Staged.stage (fun () ->
           B3_32.eval_vgh t32 ~u0:0.3 ~u1:0.6 ~u2:0.9 buf32));
  ]

(* Table 2 / Fig. 1: one full PbyP sweep of the scaled NiO-32 workload in
   each variant. *)
let sweep_tests =
  let sys = Builder.make ~reduction:16 ~with_nlpp:false Spec.nio32 in
  let mk variant =
    let e = Build.engine ~variant ~seed:3 sys in
    let rng = Xoshiro.create 4 in
    Test.make
      ~name:(Printf.sprintf "table2/sweep-%s" (Variant.to_string variant))
      (Staged.stage (fun () -> ignore (e.Engine_api.sweep rng ~tau:0.05)))
  in
  [ mk Variant.Ref; mk Variant.Ref_mp; mk Variant.Current ]

(* Fig. 9: walker-state serialization, Ref's 5N² block vs Current's 5N. *)
let buffer_tests =
  let sys = Builder.make ~reduction:16 ~with_nlpp:false Spec.nio32 in
  let mk variant =
    let e = Build.engine ~variant ~seed:5 sys in
    let w = Walker.create e.Engine_api.n_electrons in
    e.Engine_api.register_walker w;
    Test.make
      ~name:
        (Printf.sprintf "fig9/walker-save-%s (buffer %d kB)"
           (Variant.to_string variant)
           (Wbuffer.bytes w.Walker.buffer / 1024))
      (Staged.stage (fun () -> e.Engine_api.save_walker w))
  in
  [ mk Variant.Ref; mk Variant.Current ]

(* Sec. 8.4: Sherman–Morrison vs delayed update, one ordered sweep. *)
let det_tests =
  let n = 128 in
  let rng = Xoshiro.create 6 in
  let mat =
    M64.init n n (fun i j ->
        Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
        +. if i = j then 4. else 0.)
  in
  let binv_sm = M64.create n n in
  ignore (L64.invert_transpose ~src:mat ~dst:binv_sm);
  let binv_du = M64.create n n in
  ignore (L64.invert_transpose ~src:mat ~dst:binv_du);
  let du = Du64.create ~delay:16 binv_du in
  let ws = Sm64.make_workspace n in
  let v = A64.create n in
  let fill () =
    for j = 0 to n - 1 do
      A64.set v j
        (Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
        +. if j = 0 then 2. else 0.)
    done
  in
  [
    Test.make ~name:"delayed/det-sweep-SM"
      (Staged.stage (fun () ->
           for k = 0 to n - 1 do
             fill ();
             let r = Sm64.ratio binv_sm k v in
             if abs_float r > 0.05 then Sm64.update_row binv_sm k v ~ratio:r ~ws
           done));
    Test.make ~name:"delayed/det-sweep-k16"
      (Staged.stage (fun () ->
           for k = 0 to n - 1 do
             fill ();
             let r = Du64.ratio du k v in
             if abs_float r > 0.05 then Du64.accept du k v
           done;
           Du64.flush du));
  ]

let all_tests () =
  Test.make_grouped ~name:"oqmc"
    (dt_tests @ bspline_tests @ sweep_tests @ buffer_tests @ det_tests)

let run () =
  Report.section "Bechamel kernel microbenchmarks";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (all_tests ()) in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let r = Hashtbl.find results name in
      match Analyze.OLS.estimates r with
      | Some [ t ] -> Printf.printf "%-48s %12.1f ns/run\n" name t
      | _ -> Printf.printf "%-48s (no estimate)\n" name)
    (List.sort compare names)
