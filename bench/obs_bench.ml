open Oqmc_containers
open Oqmc_core

(* Observability overhead benchmark: the cost trajectory for the
   tracing/metrics layer, printed as a table and optionally written as
   JSON (BENCH_obs.json) so regressions are diffable across PRs.

   Three measurements:

   1. micro: ns per [Trace.with_span] call disabled (must be a branch)
      and enabled (one ring slot), ns per [Metrics.inc];
   2. end-to-end DMC walker throughput with tracing off vs. on — the
      headline contract is that the *disabled* path costs within noise
      of nothing (<= 1% is the budget) and the enabled path stays in
      single-digit percent for production span density;
   3. bit-identity of the traced and untraced trajectories, asserted —
      observability must never perturb the physics. *)

module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics

let time_per ~reps f =
  let t0 = Timers.now () in
  for _ = 1 to reps do
    f ()
  done;
  (Timers.now () -. t0) /. float_of_int reps

type micro = {
  span_disabled_ns : float;
  span_enabled_ns : float;
  instant_enabled_ns : float;
  counter_inc_ns : float;
}

let bench_micro () =
  let reps = 2_000_000 in
  let sink = ref 0 in
  let thunk () = sink := !sink + 1 in
  Trace.disable ();
  let bare = time_per ~reps (fun () -> thunk ()) in
  let disabled =
    time_per ~reps (fun () -> Trace.with_span "bench" thunk)
  in
  Trace.enable ();
  let enabled = time_per ~reps (fun () -> Trace.with_span "bench" thunk) in
  let instant = time_per ~reps (fun () -> Trace.instant "mark") in
  Trace.disable ();
  let c = Metrics.counter "bench.counter" in
  let inc = time_per ~reps (fun () -> Metrics.inc c) in
  {
    span_disabled_ns = (disabled -. bare) *. 1e9;
    span_enabled_ns = (enabled -. bare) *. 1e9;
    instant_enabled_ns = instant *. 1e9;
    counter_inc_ns = inc *. 1e9;
  }

(* Introspection-path costs: rendering a realistic registry snapshot
   for the status endpoint, and feeding the per-rank throughput ledger
   — both sit on the supervisor's generation loop or the daemon's
   select loop, so their unit costs bound the live-status overhead. *)
type introspection = {
  expo_text_us : float;  (** one Expo.text render of ~40 metrics *)
  expo_json_us : float;  (** one Expo.json render (with quantiles) *)
  ledger_observe_ns : float;  (** one Ledger.observe_gen *)
  ledger_json_us : float;  (** one Ledger.json export, 4 ranks *)
}

let bench_introspection () =
  (* A registry shaped like a live run: counters, gauges and a few
     populated histograms. *)
  Metrics.reset ();
  for i = 0 to 29 do
    Metrics.add (Metrics.counter (Printf.sprintf "bench.c%d" i)) (i * 37)
  done;
  for i = 0 to 4 do
    Metrics.set (Metrics.gauge (Printf.sprintf "bench.g%d" i)) (0.1 *. float_of_int i)
  done;
  for i = 0 to 4 do
    let h = Metrics.histogram (Printf.sprintf "bench.h%d" i) in
    for j = 1 to 200 do
      Metrics.observe h (float_of_int j *. 1e-4)
    done
  done;
  let snap = Metrics.snapshot () in
  let sink = ref 0 in
  let expo_text =
    time_per ~reps:2_000 (fun () ->
        sink := !sink + String.length (Oqmc_obs.Expo.text snap))
  in
  let expo_json =
    time_per ~reps:2_000 (fun () ->
        sink :=
          !sink
          + String.length (Oqmc_obs.Jsonx.to_string (Oqmc_obs.Expo.json snap)))
  in
  let ledger = Oqmc_obs.Ledger.create () in
  let gen = ref 0 in
  let observe =
    time_per ~reps:200_000 (fun () ->
        incr gen;
        for r = 0 to 3 do
          Oqmc_obs.Ledger.observe_gen ledger ~rank:r ~gen:!gen ~moves:4096
            ~wall_s:0.004
        done)
  in
  let ledger_json =
    time_per ~reps:20_000 (fun () ->
        sink :=
          !sink
          + String.length (Oqmc_obs.Jsonx.to_string (Oqmc_obs.Ledger.json ledger)))
  in
  Metrics.reset ();
  ignore !sink;
  {
    expo_text_us = expo_text *. 1e6;
    expo_json_us = expo_json *. 1e6;
    ledger_observe_ns = observe /. 4. *. 1e9;
    ledger_json_us = ledger_json *. 1e6;
  }

type endtoend = {
  walkers : int;
  generations : int;
  off_walkers_per_s : float;
  on_walkers_per_s : float;
  overhead_pct : float;
  bit_identical : bool;
}

let bench_dmc () =
  let sys = Oqmc_workloads.Validation.harmonic ~n:4 ~omega:1.0 in
  let factory = Build.factory ~variant:Variant.Current ~seed:5 sys in
  let params =
    {
      Dmc.target_walkers = 32;
      warmup = 5;
      generations = 60;
      tau = 0.01;
      seed = 13;
      n_domains = 1;
      ranks = 1;
    }
  in
  let run () = Dmc.run ~factory params in
  Trace.disable ();
  ignore (run ());
  (* warm *)
  let off = run () in
  Trace.enable ();
  let on = run () in
  Trace.disable ();
  let bit_identical =
    Array.length off.Dmc.energy_series = Array.length on.Dmc.energy_series
    && Array.for_all2
         (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
         off.Dmc.energy_series on.Dmc.energy_series
  in
  {
    walkers = params.Dmc.target_walkers;
    generations = params.Dmc.generations;
    off_walkers_per_s = off.Dmc.throughput;
    on_walkers_per_s = on.Dmc.throughput;
    overhead_pct =
      100. *. ((off.Dmc.throughput /. on.Dmc.throughput) -. 1.);
    bit_identical;
  }

let json_of ~micro ~intro ~dmc =
  let b = Buffer.create 1024 in
  let f = Printf.bprintf in
  f b "{\n";
  f b "%s" (Report.bench_header ~precision:"f32" ~delay:1);
  f b "  \"micro_ns\": {\n";
  f b "    \"span_disabled\": %.2f,\n" micro.span_disabled_ns;
  f b "    \"span_enabled\": %.1f,\n" micro.span_enabled_ns;
  f b "    \"instant_enabled\": %.1f,\n" micro.instant_enabled_ns;
  f b "    \"counter_inc\": %.2f\n" micro.counter_inc_ns;
  f b "  },\n";
  f b "  \"introspection\": {\n";
  f b "    \"expo_text_us\": %.2f,\n" intro.expo_text_us;
  f b "    \"expo_json_us\": %.2f,\n" intro.expo_json_us;
  f b "    \"ledger_observe_ns\": %.1f,\n" intro.ledger_observe_ns;
  f b "    \"ledger_json_us\": %.2f\n" intro.ledger_json_us;
  f b "  },\n";
  f b "  \"dmc\": {\n";
  f b "    \"walkers\": %d,\n" dmc.walkers;
  f b "    \"generations\": %d,\n" dmc.generations;
  f b "    \"off_walkers_per_s\": %.1f,\n" dmc.off_walkers_per_s;
  f b "    \"on_walkers_per_s\": %.1f,\n" dmc.on_walkers_per_s;
  f b "    \"tracing_overhead_pct\": %.2f,\n" dmc.overhead_pct;
  f b "    \"bit_identical\": %b\n" dmc.bit_identical;
  f b "  }\n";
  f b "}\n";
  Buffer.contents b

let run ?json () =
  Printf.printf "== observability micro-costs ==\n%!";
  let micro = bench_micro () in
  Printf.printf
    "  with_span disabled %.2f ns, enabled %.1f ns; instant %.1f ns; \
     counter inc %.2f ns\n"
    micro.span_disabled_ns micro.span_enabled_ns micro.instant_enabled_ns
    micro.counter_inc_ns;
  Printf.printf "== introspection path (status endpoint + ledger) ==\n%!";
  let intro = bench_introspection () in
  Printf.printf
    "  expo text %.1f us, expo json %.1f us; ledger observe %.1f ns/rank-gen, \
     ledger json %.2f us\n"
    intro.expo_text_us intro.expo_json_us intro.ledger_observe_ns
    intro.ledger_json_us;
  Printf.printf "== DMC throughput, tracing off vs on ==\n%!";
  let dmc = bench_dmc () in
  Printf.printf
    "  %d walkers x %d gens: off %.1f w/s, on %.1f w/s  (overhead %.2f%%, \
     bit-identical %b)\n"
    dmc.walkers dmc.generations dmc.off_walkers_per_s dmc.on_walkers_per_s
    dmc.overhead_pct dmc.bit_identical;
  if not dmc.bit_identical then
    failwith "obs_bench: traced trajectory deviates from untraced";
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of ~micro ~intro ~dmc);
      close_out oc;
      Printf.printf "wrote %s\n%!" path
