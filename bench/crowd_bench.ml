open Oqmc_containers
open Oqmc_core
open Oqmc_rng
open Oqmc_particle
open Oqmc_wavefunction

(* Full-pipeline crowd-batching benchmark: the machine-readable perf
   trajectory for the batched distance-table / Jastrow / delayed-
   determinant work.

   Four measurements, printed as a table and optionally written as JSON
   (BENCH_crowd.json) so regressions are diffable across PRs:

   1. full PbP sweep: the SPO-only staged crowd path (pipeline:false,
      the PR2 behaviour) vs. the fully batched pipeline, with the
      bit-identity of the two paths asserted on each slot's local
      energy;
   2. per-kernel ns/move: scalar per-slot calls vs. the batched kernel,
      for the AA distance table and the J1/J2 Jastrow stages;
   3. allocation per move: the batched DistTable and Jastrow kernels
      must not allocate — asserted, not just reported;
   4. delayed determinant updates: ns/move across the delay-rank sweep
      (1 = Sherman-Morrison). *)

module Ps64 = Particle_set.Make (Precision.F64)
module AA64 = Dt_aa_soa.Make (Precision.F64) (Precision.F64)
module AB64 = Dt_ab_soa.Make (Precision.F64) (Precision.F64)
module J2_64 = Jastrow_two.Make (Precision.F64) (Precision.F64)
module J1_64 = Jastrow_one.Make (Precision.F64) (Precision.F64)
module Det64 = Slater_det.Make (Precision.F64) (Precision.F64)
module W64 = Wfc.Make (Precision.F64)

let time_per ~reps f =
  let t0 = Timers.now () in
  for _ = 1 to reps do
    f ()
  done;
  (Timers.now () -. t0) /. float_of_int reps

let minor_words_per ~reps f =
  f ();
  (* warmup: first-touch, lazy init *)
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

(* ---- 1. full PbP sweep: staged (SPO-only) vs full pipeline ---- *)

type sweep_point = {
  system : string;
  crowd : int;
  moves_per_sweep : int;
  staged_ns_per_move : float;
  pipeline_ns_per_move : float;
  speedup : float;
}

let bench_sweep ~name ~sys ~crowd ~sweeps =
  let factory = Build.factory ~variant:Variant.Current ~seed:5 sys in
  let run ~pipeline =
    let cr = Crowd.create ~pipeline ~factory ~base:0 ~size:crowd () in
    if pipeline && not (Crowd.pipelined cr) then
      failwith "crowd_bench: pipeline did not engage";
    let rngs = Xoshiro.streams ~seed:7 crowd in
    for s = 0 to crowd - 1 do
      (Crowd.engine cr s).Engine_api.randomize rngs.(s)
    done;
    let srngs = Xoshiro.streams ~seed:11 crowd in
    let sweep () =
      ignore (Crowd.sweep cr ~active:crowd ~rng:(fun s -> srngs.(s)) ~tau:0.1)
    in
    sweep ();
    (* warmup *)
    let t = time_per ~reps:sweeps sweep in
    let fp =
      Array.init crowd (fun s -> (Crowd.engine cr s).Engine_api.measure ())
    in
    (t, fp)
  in
  let ts, fs = run ~pipeline:false in
  let tp, fp = run ~pipeline:true in
  (* same seeds, same draw order: the two paths must agree bit-for-bit *)
  Array.iteri
    (fun i a ->
      if not (Float.equal a fp.(i)) then
        failwith "crowd_bench: pipeline sweep deviates from staged path")
    fs;
  let e0 = Build.engine ~variant:Variant.Current ~seed:5 sys in
  let moves = crowd * e0.Engine_api.n_electrons in
  {
    system = name;
    crowd;
    moves_per_sweep = moves;
    staged_ns_per_move = ts *. 1e9 /. float_of_int moves;
    pipeline_ns_per_move = tp *. 1e9 /. float_of_int moves;
    speedup = ts /. tp;
  }

let bench_sweeps () =
  [
    bench_sweep ~name:"harmonic-6"
      ~sys:(Oqmc_workloads.Validation.harmonic ~n:6 ~omega:1.0)
      ~crowd:8 ~sweeps:400;
    bench_sweep ~name:"NiO-32/r16"
      ~sys:(Oqmc_workloads.Builder.make ~reduction:16 ~with_nlpp:false
              Oqmc_workloads.Spec.nio32)
      ~crowd:8 ~sweeps:40;
  ]

(* ---- 2./3. per-kernel scalar vs batched, with alloc assertions ---- *)

type kernel_point = {
  kernel : string;
  kcrowd : int;
  scalar_ns_per_move : float;
  batch_ns_per_move : float;
  kernel_speedup : float;
  batch_words_per_move : float;
}

(* A crowd-sized fixture of independent electron sets with AA/AB tables
   and J1/J2 state, each slot staged mid-move (temp rows filled) so the
   ratio/accept kernels can be re-run in place. *)
let kernel_fixture ~crowd ~n =
  let lattice = Lattice.cubic 6. in
  let ions =
    let io =
      Ps64.create ~lattice
        [ { Particle_set.name = "ion"; charge = 4.; count = 4 } ]
    in
    let r = Xoshiro.create 3 in
    Ps64.randomize io (fun () -> Xoshiro.uniform r);
    io
  in
  let functors2 = Oqmc_workloads.Jastrow_sets.ee_set ~cutoff:2.9 in
  let functors1 = [| Oqmc_workloads.Jastrow_sets.one_body ~depth:0.4 ~range:0.9 ~cutoff:2.9 () |] in
  let slots =
    Array.init crowd (fun s ->
        let ps =
          Ps64.create ~lattice
            [
              { Particle_set.name = "u"; charge = -1.; count = n / 2 };
              { Particle_set.name = "d"; charge = -1.; count = n - (n / 2) };
            ]
        in
        let r = Xoshiro.create (100 + s) in
        Ps64.randomize ps (fun () -> Xoshiro.uniform r);
        let aa = AA64.create ps in
        AA64.evaluate aa ps;
        let ab = AB64.create ~sources:ions ps in
        AB64.evaluate ab ps;
        let j2 = J2_64.make_opt ~table:aa ~functors:functors2 ps in
        let j1 = J1_64.make_opt ~table:ab ~functors:functors1 ~ions ps in
        ignore ((J2_64.opt_component j2).W64.evaluate_log ps);
        ignore ((J1_64.opt_component j1).W64.evaluate_log ps);
        (ps, aa, ab, j2, j1))
  in
  let aab = AA64.make_batch (Array.map (fun (ps, aa, _, _, _) -> (aa, ps)) slots) in
  let abb = AB64.make_batch (Array.map (fun (_, _, ab, _, _) -> ab) slots) in
  (slots, aab, abb)

let stage_move ~slots ~k ~px ~py ~pz =
  let rng = Xoshiro.create 17 in
  Array.iteri
    (fun s (ps, aa, ab, _, _) ->
      let np =
        Vec3.add (Ps64.get ps k)
          (Vec3.make
             (Xoshiro.gaussian rng *. 0.3)
             (Xoshiro.gaussian rng *. 0.3)
             (Xoshiro.gaussian rng *. 0.3))
      in
      px.(s) <- np.Vec3.x;
      py.(s) <- np.Vec3.y;
      pz.(s) <- np.Vec3.z;
      AA64.prepare aa ps k;
      Ps64.propose ps k np;
      AA64.move aa ps k np;
      AB64.move ab np)
    slots

let bench_kernels ?(reps = 20_000) () =
  let crowd = 8 and n = 16 in
  let slots, aab, abb = kernel_fixture ~crowd ~n in
  let j2s = Array.map (fun (_, _, _, j2, _) -> j2) slots in
  let j1s = Array.map (fun (_, _, _, _, j1) -> j1) slots in
  let j2c = Array.map J2_64.opt_component j2s in
  let j1c = Array.map J1_64.opt_component j1s in
  let px = Array.make crowd 0.
  and py = Array.make crowd 0.
  and pz = Array.make crowd 0. in
  let ratio = Array.make crowd 1.
  and gx = Array.make crowd 0.
  and gy = Array.make crowd 0.
  and gz = Array.make crowd 0.
  and acc = Array.make crowd true in
  let k = n / 2 in
  stage_move ~slots ~k ~px ~py ~pz;
  let point ~kernel ~scalar ~batch =
    let st = time_per ~reps scalar in
    let bt = time_per ~reps batch in
    let bw = minor_words_per ~reps:2000 batch /. float_of_int crowd in
    (* the whole point of the batched path: zero allocation per move *)
    if bw > 1. then
      failwith
        (Printf.sprintf "crowd_bench: %s batch allocates %.1f words/move"
           kernel bw);
    {
      kernel;
      kcrowd = crowd;
      scalar_ns_per_move = st *. 1e9 /. float_of_int crowd;
      batch_ns_per_move = bt *. 1e9 /. float_of_int crowd;
      kernel_speedup = st /. bt;
      batch_words_per_move = bw;
    }
  in
  [
    point ~kernel:"dt_aa_prepare"
      ~scalar:(fun () ->
        Array.iter (fun (ps, aa, _, _, _) -> AA64.prepare aa ps k) slots)
      ~batch:(fun () -> AA64.prepare_batch aab ~k ~m:crowd);
    point ~kernel:"dt_aa_move"
      ~scalar:(fun () ->
        Array.iter
          (fun (ps, aa, _, _, _) ->
            AA64.move aa ps k (Ps64.active_pos ps))
          slots)
      ~batch:(fun () -> AA64.move_batch aab ~k ~px ~py ~pz ~m:crowd);
    point ~kernel:"dt_aa_accept"
      ~scalar:(fun () ->
        Array.iter (fun (_, aa, _, _, _) -> AA64.accept aa k) slots)
      ~batch:(fun () -> AA64.accept_batch aab ~k ~acc ~m:crowd);
    point ~kernel:"dt_ab_move"
      ~scalar:(fun () ->
        Array.iter
          (fun (ps, _, ab, _, _) -> AB64.move ab (Ps64.active_pos ps))
          slots)
      ~batch:(fun () -> AB64.move_batch abb ~px ~py ~pz ~m:crowd);
    point ~kernel:"j2_ratio_grad"
      ~scalar:(fun () ->
        Array.iteri
          (fun s (ps, _, _, _, _) -> ignore (j2c.(s).W64.ratio_grad ps k))
          slots)
      ~batch:(fun () ->
        Array.fill ratio 0 crowd 1.;
        Array.fill gx 0 crowd 0.;
        Array.fill gy 0 crowd 0.;
        Array.fill gz 0 crowd 0.;
        J2_64.ratio_grad_batch j2s ~k ~m:crowd ~ratio ~gx ~gy ~gz);
    point ~kernel:"j2_accept"
      ~scalar:(fun () ->
        Array.iteri
          (fun s (ps, _, _, _, _) -> j2c.(s).W64.accept ps k)
          slots)
      ~batch:(fun () -> J2_64.accept_batch j2s ~k ~m:crowd ~acc);
    point ~kernel:"j1_ratio_grad"
      ~scalar:(fun () ->
        Array.iteri
          (fun s (ps, _, _, _, _) -> ignore (j1c.(s).W64.ratio_grad ps k))
          slots)
      ~batch:(fun () ->
        Array.fill ratio 0 crowd 1.;
        Array.fill gx 0 crowd 0.;
        Array.fill gy 0 crowd 0.;
        Array.fill gz 0 crowd 0.;
        J1_64.ratio_grad_batch j1s ~k ~m:crowd ~ratio ~gx ~gy ~gz);
    point ~kernel:"j1_accept"
      ~scalar:(fun () ->
        Array.iteri
          (fun s (ps, _, _, _, _) -> j1c.(s).W64.accept ps k)
          slots)
      ~batch:(fun () -> J1_64.accept_batch j1s ~k ~m:crowd ~acc);
  ]

(* ---- 4. delayed determinant updates: delay-rank sweep ---- *)

type delay_point = { dn : int; delay : int; det_ns_per_move : float }

let bench_delay ?(n = 32) ?(sweeps = 100) ?(delays = [ 1; 2; 4; 8 ]) () =
  let lattice = Lattice.cubic 8. in
  List.map
    (fun kd ->
      let ps =
        Ps64.create ~lattice
          [ { Particle_set.name = "e"; charge = -1.; count = n } ]
      in
      let r = Xoshiro.create 23 in
      Ps64.randomize ps (fun () -> Xoshiro.uniform r);
      let spo = Spo_analytic.plane_waves ~lattice ~n_orb:n in
      let scheme =
        if kd = 1 then Det64.Sherman_morrison else Det64.Delayed kd
      in
      let d = Det64.create ~scheme ~spo ~first:0 ~count:n ps in
      ignore (d.W64.evaluate_log ps);
      let rng = Xoshiro.create 29 in
      let t =
        time_per ~reps:sweeps (fun () ->
            for k = 0 to n - 1 do
              let np =
                Vec3.add (Ps64.get ps k)
                  (Vec3.make
                     (Xoshiro.gaussian rng *. 0.05)
                     (Xoshiro.gaussian rng *. 0.05)
                     (Xoshiro.gaussian rng *. 0.05))
              in
              Ps64.propose ps k np;
              ignore (d.W64.ratio ps k);
              d.W64.accept ps k;
              Ps64.accept ps
            done)
      in
      { dn = n; delay = kd; det_ns_per_move = t *. 1e9 /. float_of_int n })
    delays

(* ---- reporting ---- *)

(* The best measured rank at the largest determinant order swept — what
   an autotuned run of that system would pick. *)
let best_delay delays =
  match delays with
  | [] -> 1
  | d0 :: _ ->
      let nmax = List.fold_left (fun a p -> max a p.dn) d0.dn delays in
      List.fold_left
        (fun (bk, bt) p ->
          if p.dn = nmax && p.det_ns_per_move < bt then
            (p.delay, p.det_ns_per_move)
          else (bk, bt))
        (1, infinity) delays
      |> fst

let json_of ~sweeps ~kernels ~delays =
  let b = Buffer.create 2048 in
  let f = Printf.bprintf in
  f b "{\n";
  f b "%s"
    (Report.bench_header ~precision:"f32" ~delay:(best_delay delays));
  f b "  \"full_sweep\": [\n";
  List.iteri
    (fun i p ->
      f b
        "    {\"system\": %S, \"crowd\": %d, \"moves_per_sweep\": %d, \
         \"staged_ns_per_move\": %.1f, \"pipeline_ns_per_move\": %.1f, \
         \"speedup\": %.3f}%s\n"
        p.system p.crowd p.moves_per_sweep p.staged_ns_per_move
        p.pipeline_ns_per_move p.speedup
        (if i = List.length sweeps - 1 then "" else ","))
    sweeps;
  f b "  ],\n";
  f b "  \"kernels\": [\n";
  List.iteri
    (fun i p ->
      f b
        "    {\"kernel\": %S, \"crowd\": %d, \"scalar_ns_per_move\": %.1f, \
         \"batch_ns_per_move\": %.1f, \"speedup\": %.3f, \
         \"batch_words_per_move\": %.2f}%s\n"
        p.kernel p.kcrowd p.scalar_ns_per_move p.batch_ns_per_move
        p.kernel_speedup p.batch_words_per_move
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  f b "  ],\n";
  f b "  \"delayed_updates\": [\n";
  List.iteri
    (fun i p ->
      f b "    {\"n\": %d, \"delay\": %d, \"det_ns_per_move\": %.1f}%s\n"
        p.dn p.delay p.det_ns_per_move
        (if i = List.length delays - 1 then "" else ","))
    delays;
  f b "  ]\n";
  f b "}\n";
  Buffer.contents b

let run ?json () =
  Printf.printf "== full PbP sweep: staged (SPO-only) vs pipeline ==\n%!";
  let sweeps = bench_sweeps () in
  (* ns/move always %.1f, words/move always %.2f — same precisions as
     the JSON record, so console and BENCH file never disagree. *)
  List.iter
    (fun p ->
      Printf.printf
        "  %-12s crowd %2d: staged %.1f ns/move, pipeline %.1f ns/move  \
         (%.2fx)\n"
        p.system p.crowd p.staged_ns_per_move p.pipeline_ns_per_move
        p.speedup)
    sweeps;
  Printf.printf "== per-kernel scalar vs batched ==\n%!";
  let kernels = bench_kernels () in
  List.iter
    (fun p ->
      Printf.printf
        "  %-14s crowd %2d: scalar %.1f ns/move, batch %.1f ns/move  \
         (%.2fx, %.2f words/move)\n"
        p.kernel p.kcrowd p.scalar_ns_per_move p.batch_ns_per_move
        p.kernel_speedup p.batch_words_per_move)
    kernels;
  Printf.printf "== delayed determinant updates ==\n%!";
  let delays =
    bench_delay ~n:32 () @ bench_delay ~n:96 ~sweeps:40 ()
  in
  List.iter
    (fun p ->
      Printf.printf "  n %3d delay %2d: %.1f ns/move\n" p.dn p.delay
        p.det_ns_per_move)
    delays;
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of ~sweeps ~kernels ~delays);
      close_out oc;
      Printf.printf "wrote %s\n%!" path

(* Reduced run for the @bench-smoke alias: keeps every assertion — the
   pipeline-vs-staged trajectory identity of [bench_sweep], the
   per-kernel zero-allocation failwiths of [bench_kernels], and the
   delayed-update regression guard — at a fraction of the reps, and
   skips the NiO build.  Timing numbers from this mode are noise except
   the k1/k8 ratio the guard checks. *)
let smoke () =
  let p =
    bench_sweep ~name:"harmonic-6"
      ~sys:(Oqmc_workloads.Validation.harmonic ~n:6 ~omega:1.0)
      ~crowd:8 ~sweeps:40
  in
  Printf.printf "crowd smoke: %s pipeline bit-identical to staged path\n"
    p.system;
  let kernels = bench_kernels ~reps:2_000 () in
  List.iter
    (fun q ->
      Printf.printf "crowd smoke: %-14s %.2f words/move\n" q.kernel
        q.batch_words_per_move)
    kernels;
  (* Delayed-update regression guard: at an order where the inverse no
     longer fits in L1 the blocked rank-8 flush must beat rank-1
     Sherman-Morrison.  Best-of-2 per rank; the tolerance absorbs
     single-core scheduler noise, not a real regression (the healthy
     ratio is ~0.7). *)
  let guard_n = 96 in
  let best k =
    let one () =
      match bench_delay ~n:guard_n ~sweeps:15 ~delays:[ k ] () with
      | [ p ] -> p.det_ns_per_move
      | _ -> assert false
    in
    Float.min (one ()) (one ())
  in
  let t1 = best 1 and t8 = best 8 in
  Printf.printf
    "crowd smoke: delayed n=%d  k1 %.1f ns/move, k8 %.1f ns/move (ratio \
     %.2f)\n"
    guard_n t1 t8 (t8 /. t1);
  if t8 > t1 *. 1.05 then
    failwith
      (Printf.sprintf
         "crowd_bench: delayed updates regressed: k=8 %.1f ns/move vs k=1 \
          %.1f ns/move at n=%d"
         t8 t1 guard_n);
  Printf.printf "crowd smoke: ok\n%!"
