open Oqmc_core
open Oqmc_workloads
open Oqmc_dist

(* Supervision-overhead benchmark: the same rank-sharded DMC run
   executed (a) in process by the reference executor, (b) as forked
   supervised ranks, and (c) forked with a mid-run SIGKILL recovered
   from a checkpoint shard — isolating the cost of process isolation,
   the wire protocol, and a full crash recovery. *)

let params ~ranks ~faults ~checkpoint =
  {
    Supervisor.default_params with
    ranks;
    target_walkers = 8 * ranks;
    warmup = 10;
    generations = 60;
    tau = 0.02;
    seed = 42;
    n_domains = 1;
    heartbeat_s = 30.;
    respawn_backoff = 0.01;
    checkpoint;
    checkpoint_every = (if checkpoint = None then 0 else 10);
    faults;
  }

let line name (r : Supervisor.result) =
  Printf.printf
    "  %-28s %7.3f s   E = %9.5f ± %.5f   pop %6.1f   %4d msgs %6.1f kB   \
     %d respawn(s)\n"
    name r.Supervisor.wall_time r.Supervisor.energy r.Supervisor.energy_error
    r.Supervisor.mean_population r.Supervisor.comm_messages
    (float_of_int r.Supervisor.comm_bytes /. 1e3)
    r.Supervisor.respawns

let run () =
  let sys = Validation.electron_gas ~n_up:4 ~n_down:4 ~box:5.0 () in
  let factory = Build.factory ~variant:Variant.Current_f64 ~seed:321 sys in
  print_endline "== rank supervision overhead (heg-8, 60 generations) ==";
  List.iter
    (fun ranks ->
      Printf.printf "ranks = %d\n" ranks;
      let local = Supervisor.run_local ~factory (params ~ranks ~faults:[] ~checkpoint:None) in
      line "in-process reference" local;
      let forked = Supervisor.run ~factory (params ~ranks ~faults:[] ~checkpoint:None) in
      line "forked, fault-free" forked;
      let dir = Filename.temp_file "oqmc_distbench" "" in
      Sys.remove dir;
      Unix.mkdir dir 0o700;
      let recovered =
        Supervisor.run ~factory
          (params ~ranks
             ~faults:[ (ranks - 1, 30, Oqmc_core.Fault.Rank_kill) ]
             ~checkpoint:(Some (Filename.concat dir "bench.chk")))
      in
      line "forked, 1 crash recovered" recovered;
      if local.Supervisor.wall_time > 0. then
        Printf.printf "  fork+wire overhead: %+.1f%%   crash-recovery cost: %+.1f%%\n"
          ((forked.Supervisor.wall_time /. local.Supervisor.wall_time -. 1.)
          *. 100.)
          ((recovered.Supervisor.wall_time /. forked.Supervisor.wall_time -. 1.)
          *. 100.))
    [ 2; 4 ]
