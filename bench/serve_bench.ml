open Oqmc_containers
open Oqmc_serve

(* Service-layer microbenchmarks: the per-job bookkeeping costs of the
   oqmc-serve daemon, printed as a table and optionally written as JSON
   (BENCH_serve_micro.json) so regressions are diffable across PRs.

   Four measurements:

   1. admission queue: push and pop under the fairness policy (pop
      scans the whole queue for the least-served client, so its cost
      grows with depth — the table pins the depth it was measured at);
   2. journal: write-ahead appends per second (flushed per record, the
      durability floor of every Submit), and replay throughput, which
      bounds restart latency after a crash;
   3. result cache: store / hit / miss, each a file round-trip with a
      CRC trailer;
   4. protocol codec: encode+decode round-trips for the hot frames (a
      Submit request, a Job_done reply with a full energy series).

   All of this is bookkeeping around jobs that run for seconds to
   hours; the point of the numbers is to prove the service layer stays
   micro-scale per job, not to shave them. *)

module Jsonx = Oqmc_obs.Jsonx

let time_per ~reps f =
  let t0 = Timers.now () in
  for _ = 1 to reps do
    f ()
  done;
  (Timers.now () -. t0) /. float_of_int reps

let base =
  let d = Printf.sprintf "/tmp/oqmc-sb.%d" (Unix.getpid ()) in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let deck =
  "method = dmc\nworkload = hydrogen\nwalkers = 256\nblocks = 40\n\
   steps = 10\ntau = 0.01\nseed = 42\n"

let mk_spec i =
  {
    Job.id = Printf.sprintf "j%04d" i;
    client = Printf.sprintf "c%d" (i mod 8);
    deck;
    hash = Digest.to_hex (Digest.string (string_of_int i));
    priority = i mod 4;
    deadline_s = 0.;
    retries = -1;
    submitted_at = 1000. +. float_of_int i;
  }

let mk_outcome () =
  {
    Job.energy = -0.5;
    error = 1.2e-4;
    variance = 0.03;
    acceptance = 0.99;
    series = Array.init 256 (fun i -> -0.5 +. (1e-3 *. float_of_int i));
    gens = 400;
    drained = false;
    resumed_from = 0;
    wall_s = 12.5;
  }

(* ---------- admission queue ---------- *)

type queue_r = { depth : int; push_ns : float; pop_ns : float }

let bench_queue () =
  let depth = 1024 in
  let specs = Array.init depth mk_spec in
  let rounds = 50 in
  let push_s =
    time_per ~reps:rounds (fun () ->
        let q = Jqueue.create ~bound:depth () in
        Array.iter
          (fun (s : Job.spec) ->
            ignore
              (Jqueue.push q ~client:s.Job.client ~priority:s.Job.priority s))
          specs)
  in
  let pop_s =
    time_per ~reps:rounds (fun () ->
        let q = Jqueue.create ~bound:depth () in
        Array.iter
          (fun (s : Job.spec) ->
            ignore
              (Jqueue.push q ~client:s.Job.client ~priority:s.Job.priority s))
          specs;
        while Jqueue.pop q <> None do
          ()
        done)
  in
  {
    depth;
    push_ns = push_s /. float_of_int depth *. 1e9;
    pop_ns = (pop_s -. push_s) /. float_of_int depth *. 1e9;
  }

(* ---------- write-ahead journal ---------- *)

type journal_r = {
  append_us : float;
  appends_per_s : float;
  replay_records : int;
  replay_us : float;
}

let bench_journal () =
  let path = Filename.concat base "journal" in
  (try Sys.remove path with Sys_error _ -> ());
  let j = Journal.open_ path in
  let jobs = 1000 in
  (* One full job life per iteration: the Submit (write-ahead), its
     Start, its Done — three flushed appends. *)
  let per_job =
    time_per ~reps:jobs
      (let i = ref 0 in
       fun () ->
         let s = mk_spec !i in
         incr i;
         Journal.append j (Journal.Submit s);
         Journal.append j
           (Journal.Start { id = s.Job.id; attempt = 1; pid = 1234; t = 1. });
         Journal.append j
           (Journal.Done { id = s.Job.id; hash = s.Job.hash; t = 2. }))
  in
  Journal.close j;
  let n = ref 0 in
  let replay_s =
    time_per ~reps:5 (fun () -> n := List.length (Journal.replay path))
  in
  {
    append_us = per_job /. 3. *. 1e6;
    appends_per_s = 3. /. per_job;
    replay_records = !n;
    replay_us = replay_s /. float_of_int !n *. 1e6;
  }

(* ---------- result cache ---------- *)

type cache_r = { store_us : float; hit_us : float; miss_us : float }

let bench_cache () =
  let dir = Filename.concat base "cache" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let outcome = mk_outcome () in
  let hash i = Digest.to_hex (Digest.string (string_of_int i)) in
  let n = 200 in
  let store_s =
    time_per ~reps:n
      (let i = ref 0 in
       fun () ->
         incr i;
         Cache.store ~dir ~hash:(hash !i) outcome)
  in
  let hit_s =
    time_per ~reps:n
      (let i = ref 0 in
       fun () ->
         incr i;
         ignore (Cache.lookup ~dir ~hash:(hash !i)))
  in
  let miss_s =
    time_per ~reps:n
      (let i = ref 0 in
       fun () ->
         incr i;
         ignore (Cache.lookup ~dir ~hash:(hash (100_000 + !i))))
  in
  { store_us = store_s *. 1e6; hit_us = hit_s *. 1e6; miss_us = miss_s *. 1e6 }

(* ---------- protocol codec ---------- *)

type proto_r = { submit_us : float; job_done_us : float }

let bench_proto () =
  let reps = 10_000 in
  let submit =
    Proto.Submit
      {
        Proto.client = "bench";
        deck;
        priority = 1;
        deadline_s = 3600.;
        retries = -1;
        wait = true;
      }
  in
  let job_done =
    Proto.Job_done { id = "j0042"; outcome = mk_outcome (); cached = false }
  in
  let roundtrip_req =
    time_per ~reps (fun () ->
        ignore
          (Proto.request_of_json
             (Jsonx.parse_string_exn
                (Jsonx.to_string (Proto.request_to_json submit)))))
  in
  let roundtrip_rep =
    time_per ~reps (fun () ->
        ignore
          (Proto.reply_of_json
             (Jsonx.parse_string_exn
                (Jsonx.to_string (Proto.reply_to_json job_done)))))
  in
  { submit_us = roundtrip_req *. 1e6; job_done_us = roundtrip_rep *. 1e6 }

(* ---------- driver ---------- *)

let json_of ~queue ~journal ~cache ~proto =
  let b = Buffer.create 1024 in
  let f = Printf.bprintf in
  f b "{\n";
  f b "%s" (Report.bench_header ~precision:"f64" ~delay:1);
  f b "  \"queue\": {\n";
  f b "    \"depth\": %d,\n" queue.depth;
  f b "    \"push_ns\": %.1f,\n" queue.push_ns;
  f b "    \"pop_ns\": %.1f\n" queue.pop_ns;
  f b "  },\n";
  f b "  \"journal\": {\n";
  f b "    \"append_us\": %.2f,\n" journal.append_us;
  f b "    \"appends_per_s\": %.0f,\n" journal.appends_per_s;
  f b "    \"replay_records\": %d,\n" journal.replay_records;
  f b "    \"replay_us_per_record\": %.2f\n" journal.replay_us;
  f b "  },\n";
  f b "  \"cache\": {\n";
  f b "    \"store_us\": %.1f,\n" cache.store_us;
  f b "    \"hit_us\": %.1f,\n" cache.hit_us;
  f b "    \"miss_us\": %.2f\n" cache.miss_us;
  f b "  },\n";
  f b "  \"proto_roundtrip\": {\n";
  f b "    \"submit_us\": %.2f,\n" proto.submit_us;
  f b "    \"job_done_us\": %.2f\n" proto.job_done_us;
  f b "  }\n";
  f b "}\n";
  Buffer.contents b

let run ?json () =
  Printf.printf "== admission queue (fairness policy) ==\n%!";
  let queue = bench_queue () in
  Printf.printf "  depth %d: push %.1f ns, pop %.1f ns\n" queue.depth
    queue.push_ns queue.pop_ns;
  Printf.printf "== write-ahead journal ==\n%!";
  let journal = bench_journal () in
  Printf.printf
    "  append %.2f us (%.0f/s, flushed); replay %d records at %.2f us each\n"
    journal.append_us journal.appends_per_s journal.replay_records
    journal.replay_us;
  Printf.printf "== result cache ==\n%!";
  let cache = bench_cache () in
  Printf.printf "  store %.1f us, hit %.1f us, miss %.2f us\n" cache.store_us
    cache.hit_us cache.miss_us;
  Printf.printf "== protocol codec (encode+decode) ==\n%!";
  let proto = bench_proto () in
  Printf.printf "  Submit %.2f us, Job_done(256-gen series) %.2f us\n"
    proto.submit_us proto.job_done_us;
  rm_rf base;
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (json_of ~queue ~journal ~cache ~proto);
      close_out oc;
      Printf.printf "wrote %s\n%!" path
