(* Benchmark and reproduction harness.

   With no arguments, regenerates every table and figure of the paper's
   evaluation (DESIGN.md experiment index) and then runs the Bechamel
   kernel microbenchmarks.

     dune exec bench/main.exe                    # everything
     dune exec bench/main.exe -- --exp fig8      # one experiment
     dune exec bench/main.exe -- --bechamel      # microbenchmarks only
     dune exec bench/main.exe -- --pool          # pool/crowd benchmark
     dune exec bench/main.exe -- --crowd         # full-pipeline crowd batching
     dune exec bench/main.exe -- --crowd-smoke   # fast CI check (@bench-smoke)
     dune exec bench/main.exe -- --autotune      # roofline autotune acceptance
     dune exec bench/main.exe -- --autotune-smoke # fast CI check (@autotune-smoke)
     dune exec bench/main.exe -- --tile          # tiled-layout tile sweep
     dune exec bench/main.exe -- --tile-smoke    # fast CI check (@tile-smoke)
     dune exec bench/main.exe -- --serve         # serve-layer microbenchmarks
     dune exec bench/main.exe -- --json BENCH_pool.json   # + JSON record
     OQMC_BENCH_REDUCTION=4 dune exec bench/main.exe   # bigger measured runs
*)

let usage () =
  print_endline
    "usage: main.exe [--exp \
     table1|fig1|fig2|fig3|fig7|fig8|fig9|fig10|table2|kernels|smt|ddr|delayed|all] \
     [--bechamel] [--pool] [--crowd] [--crowd-smoke] [--autotune] \
     [--autotune-smoke] [--tile] [--tile-smoke] [--dist] [--obs] [--serve] \
     [--json PATH]";
  exit 1

let () =
  let args = Array.to_list Sys.argv in
  match args with
  | [ _ ] ->
      Experiments.all ();
      Microbench.run ()
  | [ _; "--bechamel" ] -> Microbench.run ()
  | [ _; "--pool" ] -> Pool_bench.run ()
  | [ _; "--crowd" ] -> Crowd_bench.run ()
  | [ _; "--crowd"; "--json"; path ] -> Crowd_bench.run ~json:path ()
  | [ _; "--crowd-smoke" ] -> Crowd_bench.smoke ()
  | [ _; "--autotune" ] -> Autotune_bench.run ()
  | [ _; "--autotune"; "--json"; path ] -> Autotune_bench.run ~json:path ()
  | [ _; "--autotune-smoke" ] -> Autotune_bench.smoke ()
  | [ _; "--tile" ] -> Tile_bench.run ()
  | [ _; "--tile"; "--json"; path ] -> Tile_bench.run ~json:path ()
  | [ _; "--tile-smoke" ] -> Tile_bench.smoke ()
  | [ _; "--dist" ] -> Dist_bench.run ()
  | [ _; "--obs" ] -> Obs_bench.run ()
  | [ _; "--obs"; "--json"; path ] -> Obs_bench.run ~json:path ()
  | [ _; "--serve" ] -> Serve_bench.run ()
  | [ _; "--serve"; "--json"; path ] -> Serve_bench.run ~json:path ()
  | [ _; "--json"; path ] | [ _; "--pool"; "--json"; path ] ->
      Pool_bench.run ~json:path ()
  | [ _; "--exp"; name ] -> (
      match Experiments.by_name name with
      | f -> f ()
      | exception Invalid_argument msg ->
          prerr_endline msg;
          usage ())
  | _ -> usage ()
