open Oqmc_containers
open Oqmc_rng
open Oqmc_core
open Oqmc_autotune
module J = Oqmc_obs.Jsonx
module Spo = Oqmc_wavefunction.Spo

(* Tiled-orbital-layout benchmark (BENCH_tile.json): batched Bspline-vgh
   throughput of the tiled (array-of-SoA) table across the tile sweep vs
   the flat baseline, at NiO-32 and graphite orbital orders.

   Three measurements, printed as a table and written as JSON so the
   layout's perf trajectory is diffable across PRs:

   1. tile sweep: ns/eval of the crowd-batched vgl path at tile in
      {8, 16, 32, 64, n_orb} against the flat table, per workload —
      both layouts hold byte-identical coefficients, so any delta is
      pure memory behaviour;
   2. allocation per eval: the batched tiled kernels must move ZERO
      words per eval, like the flat ones — asserted, not just reported;
   3. autotuned tile vs flat: the tuner's measured-refined tile pick on
      NiO-32 must not lose to the flat baseline beyond a noise margin
      (the @tile-smoke gate). *)

let n_pos = 4096

let spo_positions () =
  let rng = Xoshiro.create 41 in
  Array.init n_pos (fun _ ->
      Vec3.make
        (Xoshiro.uniform rng *. 15.)
        (Xoshiro.uniform rng *. 15.)
        (Xoshiro.uniform rng *. 7.))

(* Crowd-batched SPO-vgl timing with a long non-repeating position
   stream (the regime where the coefficient stream, not a cache-resident
   handful of stencils, is the cost).  Also returns minor words per
   eval, which must be zero for both layouts. *)
let vgl_ns_and_words (sys : System.t) ~reps =
  let spo = sys.System.spo in
  let pos = spo_positions () in
  let mask = n_pos - 1 in
  let crowd = 16 in
  let window = Array.make crowd pos.(0) in
  let b = spo.Spo.make_vgl_batch crowd in
  let run i =
    let base = i * crowd in
    for s = 0 to crowd - 1 do
      window.(s) <- pos.((base + s) land mask)
    done;
    b.Spo.run window crowd
  in
  let calls = max 1 (reps / crowd) in
  for i = 0 to (calls / 4) - 1 do
    run i
  done;
  (* warmup *)
  let w0 = Gc.minor_words () in
  let t0 = Timers.now () in
  for i = 0 to calls - 1 do
    run i
  done;
  let dt = Timers.now () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  ( dt *. 1e9 /. float_of_int (calls * crowd),
    dw /. float_of_int (calls * crowd) )

type point = { tile : int; (* 0 = flat *) ns_per_eval : float }

type system_sweep = {
  sname : string;
  n_orb : int;
  points : point list;
  best_tile : int;
  best_speedup_vs_flat : float;
}

let reduction () =
  match Sys.getenv_opt "OQMC_BENCH_REDUCTION" with
  | Some r -> int_of_string r
  | None -> 8

(* The batched tiled kernels must be allocation-free like the flat ones:
   words/eval is measured on every sweep point and a hard failure, not a
   report line.  The threshold is below one word/eval so a single boxed
   float per eval trips it, while the constant measurement overhead (the
   [Gc.minor_words] probes box their own returns) stays under it. *)
let assert_no_alloc ~name ~tile words =
  if words > 0.5 then
    failwith
      (Printf.sprintf
         "tile_bench: batched vgl allocates %.1f words/eval (%s, tile=%d)"
         words name tile)

let sweep ~name ~spec =
  let red = reduction () in
  let mk ~layout ~tile =
    Oqmc_workloads.Builder.make ~reduction:red ~with_nlpp:false ~layout ~tile
      spec
  in
  let sys_flat = mk ~layout:`Flat ~tile:0 in
  let n_orb = sys_flat.System.spo.Spo.n_orb in
  let reps = 20_000 in
  let tiles =
    List.sort_uniq compare
      (List.filter (fun t -> t > 0 && t <= n_orb) [ 8; 16; 32; 64; n_orb ])
  in
  let flat_ns, flat_w = vgl_ns_and_words sys_flat ~reps in
  assert_no_alloc ~name ~tile:0 flat_w;
  Printf.printf "  %s (n_orb=%d): flat %.1f ns/eval\n%!" name n_orb flat_ns;
  let points =
    { tile = 0; ns_per_eval = flat_ns }
    :: List.map
         (fun tile ->
           let ns, w = vgl_ns_and_words (mk ~layout:`Tiled ~tile) ~reps in
           assert_no_alloc ~name ~tile w;
           Printf.printf "    tile %3d: %.1f ns/eval  (%.2fx vs flat)\n%!"
             tile ns (flat_ns /. ns);
           { tile; ns_per_eval = ns })
         tiles
  in
  let best =
    List.fold_left
      (fun acc p -> if p.ns_per_eval < acc.ns_per_eval then p else acc)
      (List.hd points) points
  in
  Printf.printf "    best: %s (%.2fx vs flat)\n%!"
    (if best.tile = 0 then "flat" else Printf.sprintf "tile %d" best.tile)
    (flat_ns /. best.ns_per_eval);
  {
    sname = name;
    n_orb;
    points;
    best_tile = best.tile;
    best_speedup_vs_flat = flat_ns /. best.ns_per_eval;
  }

(* ---- autotuned tile vs flat (the @tile-smoke acceptance) ---- *)

type auto_result = {
  atile : int;
  flat_ns : float;
  tiled_ns : float;
  aspeedup : float;
}

let bench_autotuned ?(margin = 1.05) () =
  let red = reduction () in
  let mk ~layout ~tile =
    Oqmc_workloads.Builder.make ~reduction:red ~with_nlpp:false ~layout ~tile
      Oqmc_workloads.Spec.nio32
  in
  let sys_flat = mk ~layout:`Flat ~tile:0 in
  let n_orb = sys_flat.System.spo.Spo.n_orb in
  let choice =
    Tuner.choose ~refine:true ~walkers:8 ~domains:1 ~variant:Variant.Current
      ~precision:`F32 ~sys:sys_flat ()
  in
  Printf.printf "  %s\n%!" (Tuner.describe choice);
  let atile =
    let t = choice.Tuner.knobs.Tuner.tile in
    if t > 0 then t else min 32 n_orb
  in
  let reps = 20_000 in
  let best2 sys =
    let a, _ = vgl_ns_and_words sys ~reps and b, _ = vgl_ns_and_words sys ~reps in
    Float.min a b
  in
  let flat_ns = best2 sys_flat in
  let tiled_ns = best2 (mk ~layout:`Tiled ~tile:atile) in
  Printf.printf
    "  autotuned tile %d: %.1f ns/eval vs flat %.1f ns/eval  (%.2fx)\n%!"
    atile tiled_ns flat_ns (flat_ns /. tiled_ns);
  if tiled_ns > flat_ns *. margin then
    failwith
      (Printf.sprintf
         "tile_bench: autotuned tiled layout slower than flat beyond %.0f%% \
          (tile=%d: %.1f ns/eval vs %.1f)"
         ((margin -. 1.) *. 100.)
         atile tiled_ns flat_ns);
  { atile; flat_ns; tiled_ns; aspeedup = flat_ns /. tiled_ns }

(* ---- reporting ---- *)

let json_of ~sweeps ~auto =
  J.Obj
    [
      ( "header",
        J.Obj
          [
            ("schema", J.Num 1.);
            ("precision", J.Str "f32");
            ("delay", J.Num 1.);
          ] );
      ( "systems",
        J.Arr
          (List.map
             (fun s ->
               J.Obj
                 [
                   ("system", J.Str s.sname);
                   ("n_orb", J.Num (float_of_int s.n_orb));
                   ( "points",
                     J.Arr
                       (List.map
                          (fun p ->
                            J.Obj
                              [
                                ("tile", J.Num (float_of_int p.tile));
                                ("vgl_ns_per_eval", J.Num p.ns_per_eval);
                              ])
                          s.points) );
                   ("best_tile", J.Num (float_of_int s.best_tile));
                   ("best_speedup_vs_flat", J.Num s.best_speedup_vs_flat);
                 ])
             sweeps) );
      ( "autotuned",
        J.Obj
          [
            ("tile", J.Num (float_of_int auto.atile));
            ("flat_ns_per_eval", J.Num auto.flat_ns);
            ("tiled_ns_per_eval", J.Num auto.tiled_ns);
            ("speedup_vs_flat", J.Num auto.aspeedup);
          ] );
    ]

let run ?json () =
  Printf.printf "== tiled orbital layout: tile sweep vs flat ==\n%!";
  let sweeps =
    [
      sweep ~name:"NiO-32" ~spec:Oqmc_workloads.Spec.nio32;
      sweep ~name:"graphite" ~spec:Oqmc_workloads.Spec.graphite;
    ]
  in
  Printf.printf "== autotuned tile vs flat (NiO-32) ==\n%!";
  let auto = bench_autotuned () in
  match json with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string (json_of ~sweeps ~auto));
      output_char oc '\n';
      close_out oc;
      Printf.printf "wrote %s\n%!" path

(* Fast CI gate for the @tile-smoke alias: one workload's sweep for the
   zero-allocation assertion, plus the autotuned-tile-vs-flat check at a
   5% noise margin.  Fails loudly rather than reporting softly. *)
let smoke () =
  Printf.printf "tile smoke: NiO-32 sweep + autotuned tile vs flat\n%!";
  let s = sweep ~name:"NiO-32" ~spec:Oqmc_workloads.Spec.nio32 in
  let auto = bench_autotuned ~margin:1.05 () in
  Printf.printf
    "tile smoke: ok (best swept tile %s at %.2fx, autotuned tile %d at \
     %.2fx)\n%!"
    (if s.best_tile = 0 then "flat" else string_of_int s.best_tile)
    s.best_speedup_vs_flat auto.atile auto.aspeedup
