open Oqmc_containers
open Oqmc_core
open Oqmc_perfmodel
open Oqmc_workloads

(* One reproduction function per table/figure of the paper's evaluation
   (see DESIGN.md's experiment index).  Each prints the paper's reference
   numbers next to ours.  Measured numbers come from the real OCaml
   engines on reduction-scaled workloads; machine-specific numbers come
   from the calibrated performance model on the full-size workloads (the
   documented substitution for hardware we do not have). *)

let reduction =
  match Sys.getenv_opt "OQMC_BENCH_REDUCTION" with
  | Some s -> (try max 2 (int_of_string s) with Failure _ -> 8)
  | None -> 8

let seed = 20170930

(* ---- model helpers ---- *)

let layout_of = function
  | Variant.Ref | Variant.Ref_mp -> `Store
  | Variant.Current | Variant.Current_f64 -> `Otf

let elt_of = function
  | Variant.Ref | Variant.Current_f64 -> 8
  | Variant.Ref_mp | Variant.Current -> 4

let model_costs ~variant (spec : Spec.t) =
  let has_pp =
    List.exists (fun s -> s.Spec.pseudopotential) spec.Spec.species
  in
  Opcount.step_costs
    {
      Opcount.n = spec.Spec.n;
      n_ion = spec.Spec.n_ion;
      n_spo = spec.Spec.n / 2;
      elt_bytes = elt_of variant;
      layout = layout_of variant;
      acceptance = 0.5;
      nlpp_evals = Opcount.nlpp_evals_estimate ~n:spec.Spec.n ~has_pp;
      tile = 0;
    }

let model_step_time machine ~variant spec =
  Roofline.total_time (Roofline.project_all machine (model_costs ~variant spec))

let model_speedup machine spec =
  Roofline.speedup machine
    ~ref_costs:(model_costs ~variant:Variant.Ref spec)
    ~cur_costs:(model_costs ~variant:Variant.Current spec)

(* ---- measured helpers ---- *)

let scaled_system ?(with_nlpp = false) spec =
  Builder.make ~seed ~with_nlpp ~reduction spec

let measured_runs ?with_nlpp ?sweeps spec variants =
  let sys = scaled_system ?with_nlpp spec in
  List.map
    (fun variant -> (variant, Measured.run_variant ?sweeps ~variant ~seed sys))
    variants

(* ================================================================== *)

let table1 () =
  Report.section
    "Table 1: workloads and key properties (paper values reproduced from \
     the workload definitions)";
  Printf.printf
    "%-9s %5s %5s %8s %8s  %-12s %6s  %-10s %6s\n"
    "workload" "N" "Nion" "ion/cell" "cells" "types(Z*)" "SPOs" "FFT grid"
    "B-spl GB";
  List.iter
    (fun s -> Format.printf "%a@." Spec.pp_row s)
    Spec.all;
  Printf.printf
    "\npaper B-spline column: Graphite 0.1, Be-64 1.4, NiO-32 1.3, NiO-64 \
     2.1 GB\n(complex double coefficients, 16 B per grid point per SPO)\n"

let fig3 () =
  Report.section
    "Figure 3: NiO Jastrow functors u(r) (B-spline radial functors with \
     cusp conditions)";
  let lattice_cut = 3.9 (* NiO-32 Wigner-Seitz-like cutoff, bohr *) in
  let uu = Jastrow_sets.two_body ~cusp:(-0.25) ~cutoff:lattice_cut () in
  let ud = Jastrow_sets.two_body ~cusp:(-0.5) ~cutoff:lattice_cut () in
  let ion = Jastrow_sets.ion_set ~cutoff:lattice_cut Spec.nio32.Spec.species in
  let ni_f = ion.(0) and o_f = ion.(1) in
  Printf.printf "%8s %10s %10s %10s %10s\n" "r(bohr)" "u_uu" "u_ud" "U_Ni"
    "U_O";
  let points = 16 in
  for i = 0 to points do
    let r = lattice_cut *. float_of_int i /. float_of_int points in
    let ev f = Oqmc_spline.Cubic_spline_1d.evaluate f r in
    Printf.printf "%8.3f %10.5f %10.5f %10.5f %10.5f\n" r (ev uu) (ev ud)
      (ev ni_f) (ev o_f)
  done;
  Printf.printf
    "\nshape checks: u_ud(0) > u_uu(0) (cusp -1/2 vs -1/4), all functors \
     -> 0 at the cutoff,\nion functors attractive and deeper/shorter for \
     Ni than O — as in the paper's figure.\n"

let fig2 () =
  Report.section
    "Figure 2: normalized hot-spot profiles, NiO benchmarks, Ref vs \
     Current (KNL)";
  List.iter
    (fun spec ->
      Report.subsection (spec.Spec.wname ^ " — measured (OCaml engines, scaled)");
      let runs =
        measured_runs ~with_nlpp:true spec [ Variant.Ref; Variant.Current ]
      in
      Report.print_profile_header ();
      List.iter
        (fun (v, r) ->
          Report.print_profile ~label:(Variant.to_string v) r.Measured.profile)
        runs;
      (match runs with
      | [ (_, rref); (_, rcur) ] ->
          Printf.printf "measured OCaml speedup (Current/Ref): %.2fx\n"
            (rcur.Measured.throughput /. rref.Measured.throughput)
      | _ -> ());
      Report.subsection (spec.Spec.wname ^ " — projected on KNL (full size)");
      Report.print_profile_header ();
      List.iter
        (fun variant ->
          let pts =
            Roofline.project_all Machine.knl (model_costs ~variant spec)
          in
          Report.print_profile
            ~label:(Variant.to_string variant)
            (Roofline.profile pts))
        [ Variant.Ref; Variant.Current ];
      Printf.printf "projected KNL speedup: %.2fx  (paper: %s)\n"
        (model_speedup Machine.knl spec)
        (match spec.Spec.wname with
        | "NiO-32" -> "2.4x"
        | "NiO-64" -> "2.4x"
        | _ -> "-"))
    [ Spec.nio32; Spec.nio64 ];
  Printf.printf
    "\npaper: Ref profiles are dominated by DistTable+J2 (close to 50%%); \
     Current shrinks them\nand DetUpdate's share grows (7%% -> 10%% on \
     NiO-64).\n"

let fig7 () =
  Report.section
    "Figure 7: hot-spot profile and roofline of NiO-32 on BDW";
  let spec = Spec.nio32 in
  Report.subsection "roofline points (model, full size)";
  Printf.printf "%-10s %-12s %8s %10s %12s %12s\n" "variant" "kernel" "AI"
    "GFLOPS" "roof@AI" "time(ms)";
  List.iter
    (fun variant ->
      let pts = Roofline.project_all Machine.bdw (model_costs ~variant spec) in
      List.iter
        (fun p ->
          if p.Roofline.time_s > 0. then
            Printf.printf "%-10s %-12s %8.2f %10.1f %12.1f %12.3f\n"
              (Variant.to_string variant)
              p.Roofline.kernel p.Roofline.ai p.Roofline.gflops
              p.Roofline.attainable
              (1e3 *. p.Roofline.time_s))
        pts)
    [ Variant.Ref; Variant.Current ];
  Report.subsection "measured OCaml profile (scaled)";
  let runs =
    measured_runs ~with_nlpp:true spec [ Variant.Ref; Variant.Current ]
  in
  Report.print_profile_header ();
  List.iter
    (fun (v, r) ->
      Report.print_profile ~label:(Variant.to_string v) r.Measured.profile)
    runs;
  Printf.printf
    "\npaper: Current moves every kernel up in both AI and GFLOPS; all \
     four kernels end above\nthe (DDR-referenced) roofline once they fit \
     L3.  Kernel speedups on BDW: 5x DistTable,\n8x Jastrow, 1.7x \
     Bspline-vgh, 1.3x Bspline-v.\n"

let kernels () =
  Report.section
    "Sec. 8.1 kernel speedups (NiO-32): measured OCaml ratios and \
     projected BDW ratios";
  let spec = Spec.nio32 in
  Report.subsection "measured (OCaml, scaled; Current vs Ref)";
  (match measured_runs ~with_nlpp:true spec [ Variant.Ref; Variant.Current ] with
  | [ (_, rref); (_, rcur) ] ->
      List.iter
        (fun (k, s) -> Printf.printf "  %-12s %6.2fx\n" k s)
        (Measured.kernel_speedups rref rcur)
  | _ -> ());
  Report.subsection "projected on BDW (full size)";
  let pr = Roofline.project_all Machine.bdw (model_costs ~variant:Variant.Ref spec) in
  let pc =
    Roofline.project_all Machine.bdw (model_costs ~variant:Variant.Current spec)
  in
  List.iter2
    (fun a b ->
      if a.Roofline.time_s > 0. && b.Roofline.time_s > 0. then
        Printf.printf "  %-12s %6.2fx\n" a.Roofline.kernel
          (a.Roofline.time_s /. b.Roofline.time_s))
    pr pc;
  Printf.printf
    "paper (BDW): DistTable 5x, Jastrow 8x, Bspline-vgh 1.7x, Bspline-v \
     1.3x, DetUpdate >2x\n"

let fig8 () =
  Report.section
    "Figure 8: speedup and memory of NiO benchmarks (Ref / Ref+MP / \
     Current)";
  List.iter
    (fun (spec : Spec.t) ->
      Report.subsection (spec.Spec.wname ^ " — measured (OCaml, scaled)");
      let runs =
        measured_runs ~with_nlpp:true spec
          [ Variant.Ref; Variant.Ref_mp; Variant.Current ]
      in
      (match runs with
      | (_, rref) :: _ ->
          List.iter
            (fun (v, r) ->
              Printf.printf
                "  %-12s throughput %5.2fx   engine memory %8.2f MB   \
                 walker %6.1f kB\n"
                (Variant.to_string v)
                (r.Measured.throughput /. rref.Measured.throughput)
                (float_of_int r.Measured.memory_bytes /. 1e6)
                (float_of_int r.Measured.walker_bytes /. 1024.))
            runs
      | [] -> ());
      Report.subsection (spec.Spec.wname ^ " — projected speedups (full size)");
      List.iter
        (fun machine ->
          List.iter
            (fun variant ->
              let s =
                Roofline.speedup machine
                  ~ref_costs:(model_costs ~variant:Variant.Ref spec)
                  ~cur_costs:(model_costs ~variant spec)
              in
              Printf.printf "  %-5s %-12s %5.2fx\n" machine.Machine.mname
                (Variant.to_string variant) s)
            [ Variant.Ref_mp; Variant.Current ])
        [ Machine.bdw; Machine.knl ];
      Report.subsection (spec.Spec.wname ^ " — modeled footprint (full size)");
      let bspline_bytes =
        int_of_float (Spec.bspline_gb spec *. 1e9)
      in
      List.iter
        (fun (mach, threads, walkers) ->
          List.iter
            (fun (kind, label) ->
              let f =
                Memory_model.footprint ~label kind ~n:spec.Spec.n
                  ~n_ion:spec.Spec.n_ion ~n_spo_total:spec.Spec.n_spos
                  ~bspline_bytes ~threads ~walkers
              in
              Printf.printf "  %-5s %-8s total %6.1f GB (B-spline %.2f, \
                             engines %.2f, walkers %.2f)\n"
                mach label f.Memory_model.total_gb f.Memory_model.bspline_gb
                (float_of_int threads *. f.Memory_model.per_thread_gb)
                (float_of_int walkers *. f.Memory_model.per_walker_gb))
            [ (`Ref, "Ref"); (`Ref_mp, "Ref+MP"); (`Current, "Current") ])
        [ ("BDW", 40, 1040); ("KNL", 128, 1024) ])
    [ Spec.nio32; Spec.nio64 ];
  Printf.printf
    "\npaper: Ref+MP gains 1.3x (NiO-32) / 2.5x (NiO-64) on BDW, 1.16x / \
     1.3x on KNL; Current\nmore than doubles Ref+MP on both machines.  \
     NiO-64 memory drops by 36 GB, fitting KNL's\n16 GB MCDRAM in flat \
     mode (Current gains ~3%% from cache->flat; not modeled separately).\n"

let fig9 () =
  Report.section "Figure 9: memory usage on KNL, all four workloads";
  Printf.printf "%-9s %12s %12s %12s\n" "workload" "Ref(GB)" "Current(GB)"
    "saved(GB)";
  List.iter
    (fun (spec : Spec.t) ->
      let bspline_bytes = int_of_float (Spec.bspline_gb spec *. 1e9) in
      let f kind label =
        Memory_model.footprint ~label kind ~n:spec.Spec.n
          ~n_ion:spec.Spec.n_ion ~n_spo_total:spec.Spec.n_spos ~bspline_bytes
          ~threads:128 ~walkers:1024
      in
      let r = f `Ref "Ref" and c = f `Current "Current" in
      Printf.printf "%-9s %12.1f %12.1f %12.1f\n" spec.Spec.wname
        r.Memory_model.total_gb c.Memory_model.total_gb
        (r.Memory_model.total_gb -. c.Memory_model.total_gb))
    Spec.all;
  Printf.printf
    "\npaper: 36 GB saved on NiO-64; Current totals fit a BG/Q node's 16 \
     GB.\nMeasured (scaled) engine footprints are in the Fig. 8 block.\n"

let fig1 () =
  Report.section
    "Figure 1: strong scaling of NiO-64 (model over projected single-node \
     step times)";
  let spec = Spec.nio64 in
  let pop = 131072 in
  let msg kind =
    Memory_model.walker_bytes kind ~n:spec.Spec.n ~n_ion:spec.Spec.n_ion
      ~n_spo:(spec.Spec.n / 2)
  in
  let series =
    [
      ("KNL-Current", Machine.knl, Variant.Current, Scaling.aries, 128, `Current);
      ("KNL-Ref", Machine.knl, Variant.Ref, Scaling.aries, 128, `Ref);
      ("BDW-Current", Machine.bdw, Variant.Current, Scaling.omnipath, 36, `Current);
      ("BDW-Ref", Machine.bdw, Variant.Ref, Scaling.omnipath, 36, `Ref);
    ]
  in
  let node_counts = [ 16; 32; 64; 128; 256; 512; 1024 ] in
  let results =
    List.map
      (fun (label, machine, variant, net, threads, kind) ->
        let step = model_step_time machine ~variant spec in
        let pts =
          Scaling.strong_scaling ~threads_per_node:threads ~net
            ~target_population:pop ~step_time_1walker:step
            ~walker_message_bytes:(msg kind) ~node_counts ()
        in
        (label, pts))
      series
  in
  (* Normalize by Ref on BDW with 64 sockets, as in the paper. *)
  let norm =
    match List.assoc_opt "BDW-Ref" results with
    | Some pts ->
        (List.find (fun p -> p.Scaling.nodes = 64) pts).Scaling.throughput
    | None -> 1.
  in
  Printf.printf "%-8s" "nodes";
  List.iter (fun (label, _) -> Printf.printf " %14s" label) results;
  print_newline ();
  List.iter
    (fun nodes ->
      Printf.printf "%-8d" nodes;
      List.iter
        (fun (_, pts) ->
          match List.find_opt (fun p -> p.Scaling.nodes = nodes) pts with
          | Some p -> Printf.printf " %14.2f" (p.Scaling.throughput /. norm)
          | None -> Printf.printf " %14s" "-")
        results;
      print_newline ())
    node_counts;
  List.iter
    (fun (label, pts) ->
      let last = List.nth pts (List.length pts - 1) in
      Printf.printf "%-14s parallel efficiency at 1024 nodes: %.1f%%\n" label
        (100. *. last.Scaling.efficiency))
    results;
  Printf.printf
    "\npaper: 90%% (KNL) and 98%% (BDW) at 1024 nodes/sockets; Current/Ref \
     gap of 2-4.5x\ncarries over from the single-node speedup with nearly \
     ideal slopes.\n"

let fig10 () =
  Report.section "Figure 10: energy usage of NiO-32 on KNL (power model)";
  let spec = Spec.nio32 in
  let speedup = model_speedup Machine.knl spec in
  (* Nominal Ref DMC phase of 1000 s; Current finishes 'speedup' faster. *)
  let ref_dmc = 1000. and init = 60. in
  let cur_dmc = ref_dmc /. speedup in
  let pr =
    Energy.profile ~label:"Ref" ~machine:Machine.knl ~init_time:init
      ~dmc_time:ref_dmc ()
  in
  let pc =
    Energy.profile ~label:"Current" ~machine:Machine.knl ~init_time:init
      ~dmc_time:cur_dmc ()
  in
  List.iter
    (fun (p : Energy.profile) ->
      let peek =
        List.filteri (fun i _ -> i mod 40 = 0) p.Energy.samples
      in
      Printf.printf "%-8s power trace (t[s], W):" p.Energy.label;
      List.iter
        (fun s -> Printf.printf " (%.0f, %.0f)" s.Energy.t_s s.Energy.watts)
        peek;
      Printf.printf "\n%-8s total energy %.2f MJ over %.0f s\n" p.Energy.label
        (p.Energy.total_joules /. 1e6)
        (p.Energy.dmc_seconds +. init))
    [ pr; pc ];
  Printf.printf
    "energy reduction Ref/Current: %.2fx (speedup %.2fx)\n"
    (Energy.energy_ratio ~ref_profile:pr ~cur_profile:pc)
    speedup;
  Printf.printf
    "\npaper: power is flat at 210-215 W during DMC for both versions, so \
     the energy\nreduction matches the speedup.  Model plateau: %.0f W.\n"
    (Energy.dmc_power Machine.knl)

let table2 () =
  Report.section
    "Table 2: speedup of Current over Ref on BG/Q, BDW and KNL";
  Printf.printf "%-7s %9s %9s %9s %9s\n" "" "Graphite" "Be-64" "NiO-32"
    "NiO-64";
  List.iter
    (fun machine ->
      Printf.printf "%-7s" machine.Machine.mname;
      List.iter
        (fun spec -> Printf.printf " %9.1f" (model_speedup machine spec))
        Spec.all;
      print_newline ())
    [ Machine.bgq; Machine.bdw; Machine.knl ];
  Printf.printf
    "paper:  BG/Q 1.6 1.3 1.3 2.4 | BDW 2.9 3.4 2.6 5.2 | KNL 2.2 2.9 2.4 \
     2.4\n";
  Report.subsection "measured OCaml speedups (scaled workloads, Current vs Ref)";
  List.iter
    (fun (spec : Spec.t) ->
      match
        measured_runs ~with_nlpp:false ~sweeps:15 spec
          [ Variant.Ref; Variant.Current ]
      with
      | [ (_, rref); (_, rcur) ] ->
          Printf.printf "  %-9s %5.2fx\n" spec.Spec.wname
            (rcur.Measured.throughput /. rref.Measured.throughput)
      | _ -> ())
    Spec.all;
  Printf.printf
    "(OCaml has no SIMD, so the measured column shows the \
     layout/precision/algorithm effects\nonly; the modeled matrix adds the \
     vectorization effects per machine.)\n"

let smt () =
  Report.section
    "Sec. 8.2 hyperthreading study (NiO-32, Current): throughput gain of 2 \
     threads/core";
  List.iter
    (fun machine ->
      Printf.printf "  %-5s +%.1f%%\n" machine.Machine.mname
        (100. *. (machine.Machine.smt_uplift -. 1.)))
    [ Machine.bdw; Machine.knl ];
  Printf.printf
    "paper: +10%% (BDW), +8.5%% (KNL); 3-4 threads/core on KNL bring no \
     further gain.\n"

let ddr () =
  Report.section
    "Sec. 8.2 DDR-only slowdown of Current on KNL (numactl -m 0)";
  let slowdown spec ~small =
    let costs = model_costs ~variant:Variant.Current spec in
    let t_mcdram =
      Roofline.total_time (Roofline.project_all Machine.knl costs)
    in
    (* DDR-only: Dram-level kernels (the B-spline streams) always drop to
       DDR; the compact Cache-hinted tables survive in the L2s for the
       smaller problem but spill for the larger one. *)
    let t_ddr =
      List.fold_left
        (fun acc c ->
          let level =
            match c.Opcount.level with
            | Opcount.Dram -> Some 1
            | Opcount.Cache -> if small then None else Some 1
          in
          acc +. (Roofline.project ?level Machine.knl c).Roofline.time_s)
        0. costs
    in
    t_ddr /. t_mcdram
  in
  Printf.printf "  NiO-32 slowdown: %.1fx (paper: 2.3x)\n"
    (slowdown Spec.nio32 ~small:true);
  Printf.printf "  NiO-64 slowdown: %.1fx (paper: 5.4x)\n"
    (slowdown Spec.nio64 ~small:false)

let delayed () =
  Report.section
    "Sec. 8.4 delayed-update DetUpdate ablation (measured, OCaml)";
  let module M = Oqmc_containers.Matrix.Make (Precision.F64) in
  let module A = Oqmc_containers.Aligned.Make (Precision.F64) in
  let module L = Oqmc_linalg.Lu.Make (Precision.F64) in
  let module Sm = Oqmc_linalg.Sherman_morrison.Make (Precision.F64) in
  let module Du = Oqmc_linalg.Delayed_update.Make (Precision.F64) in
  let rng = Oqmc_rng.Xoshiro.create 99 in
  let bench n delay =
    let mat =
      M.init n n (fun i j ->
          Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
          +. if i = j then 4. else 0.)
    in
    let binv = M.create n n in
    ignore (L.invert_transpose ~src:mat ~dst:binv);
    let v = A.create n in
    let fill_v () =
      for j = 0 to n - 1 do
        A.set v j
          (Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
          +. if j = 0 then 2. else 0.)
      done
    in
    let sweeps = max 1 (2000 / n) in
    let t0 = Timers.now () in
    (match delay with
    | None ->
        let ws = Sm.make_workspace n in
        for _ = 1 to sweeps do
          for k = 0 to n - 1 do
            fill_v ();
            let r = Sm.ratio binv k v in
            if abs_float r > 0.05 then Sm.update_row binv k v ~ratio:r ~ws
          done
        done
    | Some d ->
        let du = Du.create ~delay:d binv in
        for _ = 1 to sweeps do
          for k = 0 to n - 1 do
            fill_v ();
            let r = Du.ratio du k v in
            if abs_float r > 0.05 then Du.accept du k v
          done;
          Du.flush du
        done);
    (Timers.now () -. t0) /. float_of_int (sweeps * n)
  in
  Printf.printf "%6s %14s" "N" "SM(us/move)";
  List.iter (fun d -> Printf.printf " %10s" (Printf.sprintf "k=%d" d))
    [ 4; 8; 16; 32 ];
  print_newline ();
  List.iter
    (fun n ->
      let t_sm = bench n None in
      Printf.printf "%6d %14.2f" n (1e6 *. t_sm);
      List.iter
        (fun d ->
          let t = bench n (Some d) in
          Printf.printf " %10.2f" (1e6 *. t))
        [ 4; 8; 16; 32 ];
      print_newline ())
    [ 64; 128; 256; 512 ];
  Printf.printf
    "\nanalysis: per accepted move, Sherman-Morrison streams the N^2 \
     inverse twice (gemv + ger);\nthe delayed scheme streams it 2/k times \
     plus O(kN) ratio corrections -- the flop counts are\nequal, so the \
     benefit is memory traffic and BLAS3 vectorization.  On this host the \
     inverse\nfits in cache at these N (and OCaml has no SIMD), so the \
     measured numbers show only the\nscheme's bookkeeping overhead; on \
     the paper's machines the blocked flush is what keeps\nDetUpdate from \
     dominating at large N (Sec. 8.4, McDaniel 2016).  Memory-traffic \
     model:\nSM moves 2N^2 elements/accept, delayed 2N^2/k + 2kN -- a \
     %.0fx traffic reduction at N=512, k=16.\n"
    (let n = 512. and k = 16. in
     (2. *. n *. n) /. ((2. *. n *. n /. k) +. (2. *. k *. n)))

let tiling () =
  Report.section
    "Sec. 8.4 B-spline tiling (AoSoA) ablation (measured, OCaml)";
  let module B = Oqmc_spline.Bspline3d.Make (Precision.F32) in
  let module BT = Oqmc_spline.Bspline3d_tiled.Make (Precision.F32) in
  let nx = 24 and n_orb = 192 in
  let rng = Oqmc_rng.Xoshiro.create 7 in
  let coeff ~orb:_ ~i:_ ~j:_ ~k:_ =
    Oqmc_rng.Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.
  in
  let points =
    Array.init 64 (fun _ ->
        ( Oqmc_rng.Xoshiro.uniform rng,
          Oqmc_rng.Xoshiro.uniform rng,
          Oqmc_rng.Xoshiro.uniform rng ))
  in
  let evals = 3000 in
  let time f =
    let t0 = Timers.now () in
    for i = 1 to evals do
      let x, y, z = points.(i land 63) in
      f x y z
    done;
    (Timers.now () -. t0) /. float_of_int evals *. 1e9
  in
  let plain = B.create ~nx ~ny:nx ~nz:nx ~n_orb in
  B.fill plain coeff;
  let buf = B.make_vgh_buf plain in
  let t_plain = time (fun x y z -> B.eval_vgh plain ~u0:x ~u1:y ~u2:z buf) in
  Printf.printf "%-12s %12s  (grid %d^3, %d orbitals, vgh)
" "tile" "ns/eval"
    nx n_orb;
  Printf.printf "%-12s %12.0f
" "monolithic" t_plain;
  List.iter
    (fun tile ->
      let tt = BT.create ~nx ~ny:nx ~nz:nx ~n_orb ~tile in
      BT.fill tt coeff;
      let tbuf = BT.make_vgh_buf tt in
      let t = time (fun x y z -> BT.eval_vgh tt ~u0:x ~u1:y ~u2:z tbuf) in
      Printf.printf "%-12s %12.0f
" (Printf.sprintf "tile=%d" tile) t)
    [ 16; 32; 64; 96; 192 ];
  print_newline ();
  print_endline
    "paper (Sec. 8.4 / Mathuriya IPDPS'17): tiling bounds the per-stencil \
     stride and exposes";
  print_endline
    "a thread-parallel outer loop; small tiles pay blit overhead, very \
     large tiles stream";
  print_endline "poorly -- the optimum sits at a cache-sized middle."

let ewald () =
  Report.section
    "Ablation: minimum-image vs Ewald electrostatics (measured, OCaml)";
  let module L = Oqmc_particle.Lattice in
  Printf.printf "%6s %16s %16s %10s\n" "N" "min-image(us)" "ewald(us)"
    "G-vecs";
  List.iter
    (fun n ->
      let lattice = L.cubic 8. in
      let rng = Oqmc_rng.Xoshiro.create 5 in
      let pos =
        Array.init n (fun _ ->
            Vec3.make
              (Oqmc_rng.Xoshiro.uniform_range rng ~lo:0. ~hi:8.)
              (Oqmc_rng.Xoshiro.uniform_range rng ~lo:0. ~hi:8.)
              (Oqmc_rng.Xoshiro.uniform_range rng ~lo:0. ~hi:8.))
      in
      let charges = Array.init n (fun i -> if i land 1 = 0 then 1. else -1.) in
      let ew = Oqmc_hamiltonian.Ewald.create ~lattice ~charges () in
      let reps = max 3 (3000 / n) in
      let t0 = Timers.now () in
      for _ = 1 to reps do
        ignore (Oqmc_hamiltonian.Ewald.energy ew ~position:(fun i -> pos.(i)))
      done;
      let t_ew = (Timers.now () -. t0) /. float_of_int reps in
      let t0 = Timers.now () in
      for _ = 1 to reps do
        let acc = ref 0. in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let d = L.min_image_dist lattice pos.(i) pos.(j) in
            if d > 0. then acc := !acc +. (charges.(i) *. charges.(j) /. d)
          done
        done;
        ignore !acc
      done;
      let t_mi = (Timers.now () -. t0) /. float_of_int reps in
      Printf.printf "%6d %16.1f %16.1f %10d\n" n (1e6 *. t_mi) (1e6 *. t_ew)
        (Oqmc_hamiltonian.Ewald.n_gvectors ew))
    [ 32; 64; 128; 256 ];
  print_newline ();
  print_endline
    "Full periodic electrostatics costs a constant-factor premium (the \
     reciprocal sum) over";
  print_endline
    "the minimum-image shortcut; production QMC amortizes it with \
     optimized-breakup tables.";
  print_endline
    "Correctness anchor: the Ewald module reproduces the NaCl Madelung \
     constant to 2e-4"

let all () =
  table1 ();
  fig1 ();
  fig2 ();
  fig3 ();
  fig7 ();
  fig8 ();
  fig9 ();
  fig10 ();
  table2 ();
  kernels ();
  smt ();
  ddr ();
  delayed ();
  tiling ();
  ewald ()

let by_name = function
  | "table1" -> table1
  | "fig1" -> fig1
  | "fig2" -> fig2
  | "fig3" -> fig3
  | "fig7" -> fig7
  | "fig8" -> fig8
  | "fig9" -> fig9
  | "fig10" -> fig10
  | "table2" -> table2
  | "kernels" -> kernels
  | "smt" -> smt
  | "ddr" -> ddr
  | "delayed" -> delayed
  | "tiling" -> tiling
  | "ewald" -> ewald
  | "all" -> all
  | s -> invalid_arg (Printf.sprintf "unknown experiment %S" s)
