open Oqmc_containers

(* Electron-ion (AB) distance table, optimized (Current) design.

   One padded, SIMD-aligned row of ion distances and displacement
   components per electron, computed by streaming the fixed ions' SoA
   container.  Ions never move, so rows depend only on their own electron:
   a move fills the temporary row and acceptance is one contiguous row
   copy — no column updates exist for AB tables.

   [R] is the walker/positions precision, [D] the table storage precision
   (the [precision_dt] knob); see Dt_aa_soa. *)

module Make (R : Precision.REAL) (D : Precision.REAL) = struct
  module A = Aligned.Make (D)
  module M = Matrix.Make (D)
  module Ps = Particle_set.Make (R)
  module K = Dt_kernels.Make (R) (D)

  type t = {
    n : int; (* electrons (targets, rows) *)
    n_src : int; (* ions (sources, columns) *)
    lattice : Lattice.t;
    sources : Ps.t;
    d : M.t;
    dx : M.t;
    dy : M.t;
    dz : M.t;
    temp_d : A.t;
    temp_dx : A.t;
    temp_dy : A.t;
    temp_dz : A.t;
  }

  let create ~(sources : Ps.t) (targets : Ps.t) =
    let n = Ps.n targets and n_src = Ps.n sources in
    let mk () = M.create ~padded:true n n_src in
    let np = M.ld (mk ()) in
    {
      n;
      n_src;
      lattice = Ps.lattice targets;
      sources;
      d = mk ();
      dx = mk ();
      dy = mk ();
      dz = mk ();
      temp_d = A.create np;
      temp_dx = A.create np;
      temp_dy = A.create np;
      temp_dz = A.create np;
    }

  let n t = t.n
  let n_sources t = t.n_src

  let fill_row t px py pz ~d ~dx ~dy ~dz =
    let soa = Ps.soa t.sources in
    K.soa_row ~lattice:t.lattice ~xs:(Ps.Vs.xs soa) ~ys:(Ps.Vs.ys soa)
      ~zs:(Ps.Vs.zs soa) ~n:t.n_src ~px ~py ~pz ~d ~dx ~dy ~dz

  let refresh_row t ps k =
    let p = Ps.get ps k in
    fill_row t p.Vec3.x p.Vec3.y p.Vec3.z ~d:(M.row t.d k) ~dx:(M.row t.dx k)
      ~dy:(M.row t.dy k) ~dz:(M.row t.dz k)

  let evaluate t ps =
    for k = 0 to t.n - 1 do
      refresh_row t ps k
    done

  let move t (newpos : Vec3.t) =
    fill_row t newpos.Vec3.x newpos.Vec3.y newpos.Vec3.z ~d:t.temp_d
      ~dx:t.temp_dx ~dy:t.temp_dy ~dz:t.temp_dz

  let accept t k =
    A.blit ~src:t.temp_d ~dst:(M.row t.d k);
    A.blit ~src:t.temp_dx ~dst:(M.row t.dx k);
    A.blit ~src:t.temp_dy ~dst:(M.row t.dy k);
    A.blit ~src:t.temp_dz ~dst:(M.row t.dz k)

  let dist t k i = M.get t.d k i

  let displ t k i =
    Vec3.make (M.get t.dx k i) (M.get t.dy k i) (M.get t.dz k i)

  let row_dist t k = M.row t.d k
  let row_dx t k = M.row t.dx k
  let row_dy t k = M.row t.dy k
  let row_dz t k = M.row t.dz k

  let temp_dist t = t.temp_d
  let temp_dx t = t.temp_dx
  let temp_dy t = t.temp_dy
  let temp_dz t = t.temp_dz

  (* Offset-based access to the backing storage (see Dt_aa_soa). *)
  let dist_data t = M.data t.d
  let dx_data t = M.data t.dx
  let dy_data t = M.data t.dy
  let dz_data t = M.data t.dz
  let row_stride t = M.ld t.d

  (* ------------------- crowd batch context ------------------- *)

  (* Batched [move]/[accept] over a crowd (ions never move, so there is
     no prepare stage).  Zero allocation per call; bit-identical rows. *)
  type batch = {
    btabs : t array;
    bslots : K.row_slot array;
    blat : Lattice.t;
  }

  let make_batch (tabs : t array) =
    let m = Array.length tabs in
    if m < 1 then invalid_arg "Dt_ab_soa.make_batch: empty crowd";
    let slots =
      Array.map
        (fun (t : t) ->
          let soa = Ps.soa t.sources in
          let sl = K.make_row_slot () in
          sl.K.xs <- Ps.Vs.xs soa;
          sl.K.ys <- Ps.Vs.ys soa;
          sl.K.zs <- Ps.Vs.zs soa;
          sl.K.n <- t.n_src;
          (* Ions never move: mirror the source components once here
             instead of per call. *)
          K.mirror_slot sl;
          sl)
        tabs
    in
    { btabs = tabs; bslots = slots; blat = tabs.(0).lattice }

  let batch_cap b = Array.length b.btabs

  let move_batch b ~(px : float array) ~(py : float array)
      ~(pz : float array) ~m =
    for s = 0 to m - 1 do
      let t = b.btabs.(s) and sl = b.bslots.(s) in
      sl.K.od <- t.temp_d;
      sl.K.odx <- t.temp_dx;
      sl.K.ody <- t.temp_dy;
      sl.K.odz <- t.temp_dz;
      sl.K.o <- 0
    done;
    K.soa_rows ~lattice:b.blat ~slots:b.bslots ~px ~py ~pz ~m

  let accept_batch b ~k ~(acc : bool array) ~m =
    for s = 0 to m - 1 do
      if acc.(s) then begin
        let t = b.btabs.(s) in
        let ld = M.ld t.d in
        let o = k * ld in
        A.copy_within ~src:t.temp_d ~spos:0 ~dst:(M.data t.d) ~dpos:o ~n:ld;
        A.copy_within ~src:t.temp_dx ~spos:0 ~dst:(M.data t.dx) ~dpos:o
          ~n:ld;
        A.copy_within ~src:t.temp_dy ~spos:0 ~dst:(M.data t.dy) ~dpos:o
          ~n:ld;
        A.copy_within ~src:t.temp_dz ~spos:0 ~dst:(M.data t.dz) ~dpos:o
          ~n:ld
      end
    done

  let bytes t =
    M.bytes t.d + M.bytes t.dx + M.bytes t.dy + M.bytes t.dz
    + A.bytes t.temp_d + A.bytes t.temp_dx + A.bytes t.temp_dy
    + A.bytes t.temp_dz
end
