open Oqmc_containers

(* Row kernels shared by the distance tables: distances and displacement
   vectors from one point to every particle of a set, in both layouts.

   These loops ARE the paper's DistTable hot spot.  The SoA kernel streams
   three unit-stride component rows; the AoS kernel walks the interleaved
   x y z groups with stride 3 — the access pattern whose poor
   vectorizability motivated the transformation.  The orthorhombic
   minimum-image branch is hoisted out of the loops.

   Two precisions parameterize the kernels: [S] is the source precision
   (the particle-set component rows being read) and [O] the output
   precision (the distance/displacement rows being written) — the
   [precision_dt] knob narrows O to f32 while positions stay at the
   walker precision.  All arithmetic happens in double on the unboxed
   mirrors; narrowing occurs only at the bulk row commit, exactly like a
   per-element f32 store. *)

module Make (S : Precision.REAL) (O : Precision.REAL) = struct
  module As = Aligned.Make (S)
  module A = Aligned.Make (O)

  (* Round-half-away-from-zero via integer truncation: cheaper than the
     libm round call in these inner loops, and ties never matter here. *)
  let nearest x =
    float_of_int (int_of_float (if x >= 0. then x +. 0.5 else x -. 0.5))

  (* dr(p, i) = r_i − p, minimum image, for all i in [0, n).  The output
     rows receive distances and the three displacement components. *)
  let soa_row ~lattice ~(xs : As.t) ~(ys : As.t) ~(zs : As.t) ~n ~px ~py ~pz
      ~(d : A.t) ~(dx : A.t) ~(dy : A.t) ~(dz : A.t) =
    match Lattice.kind lattice with
    | Lattice.Ortho (lx, ly, lz) ->
        let ix = 1. /. lx and iy = 1. /. ly and iz = 1. /. lz in
        for i = 0 to n - 1 do
          let ddx = As.unsafe_get xs i -. px in
          let ddy = As.unsafe_get ys i -. py in
          let ddz = As.unsafe_get zs i -. pz in
          let ddx = ddx -. (lx *. nearest (ddx *. ix)) in
          let ddy = ddy -. (ly *. nearest (ddy *. iy)) in
          let ddz = ddz -. (lz *. nearest (ddz *. iz)) in
          A.unsafe_set dx i ddx;
          A.unsafe_set dy i ddy;
          A.unsafe_set dz i ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.Open ->
        for i = 0 to n - 1 do
          let ddx = As.unsafe_get xs i -. px in
          let ddy = As.unsafe_get ys i -. py in
          let ddz = As.unsafe_get zs i -. pz in
          A.unsafe_set dx i ddx;
          A.unsafe_set dy i ddy;
          A.unsafe_set dz i ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.General ->
        let p = Vec3.make px py pz in
        for i = 0 to n - 1 do
          let ri =
            Vec3.make (As.unsafe_get xs i) (As.unsafe_get ys i)
              (As.unsafe_get zs i)
          in
          let dr = Lattice.min_image_disp lattice (Vec3.sub ri p) in
          A.unsafe_set dx i dr.Vec3.x;
          A.unsafe_set dy i dr.Vec3.y;
          A.unsafe_set dz i dr.Vec3.z;
          A.unsafe_set d i (Vec3.norm dr)
        done

  (* -------------------- crowd-batched row kernel -------------------- *)

  (* One retargetable slot of the batched kernel: sources (a SoA
     component triple), an output base array per component and a common
     element offset, so the same slot can aim at matrix row k on one
     call and at the temporary row on the next without allocating row
     proxies.  Positions travel in parallel float arrays (unboxed), not
     in the record — a mutable float field in a mixed record would box
     on every write.

     The [float array] scratch fields mirror the source components and
     stage the output rows: without flambda every [A.unsafe_get]/[set]
     through the precision functor boxes a float, so the inner loops run
     entirely on the monomorphic mirrors and the bigarrays are crossed
     with one bulk [read_into]/[write_from] per row — zero allocation
     per call. *)
  type row_slot = {
    mutable xs : As.t;
    mutable ys : As.t;
    mutable zs : As.t;
    mutable n : int;
    mutable od : A.t; (* distance output *)
    mutable odx : A.t;
    mutable ody : A.t;
    mutable odz : A.t;
    mutable o : int; (* common output offset (row base) *)
    mutable sx : float array; (* source mirrors *)
    mutable sy : float array;
    mutable sz : float array;
    mutable rd : float array; (* output staging *)
    mutable rdx : float array;
    mutable rdy : float array;
    mutable rdz : float array;
  }

  let make_row_slot () =
    let es = As.create 0 in
    let e = A.create 0 in
    {
      xs = es;
      ys = es;
      zs = es;
      n = 0;
      od = e;
      odx = e;
      ody = e;
      odz = e;
      o = 0;
      sx = [||];
      sy = [||];
      sz = [||];
      rd = [||];
      rdx = [||];
      rdy = [||];
      rdz = [||];
    }

  (* Size the scratch to the slot's [n]; called from [make_batch]s (and
     defensively from [mirror_slot]) so the hot path never allocates. *)
  let ensure_scratch sl =
    if Array.length sl.sx < sl.n then begin
      sl.sx <- Array.make sl.n 0.;
      sl.sy <- Array.make sl.n 0.;
      sl.sz <- Array.make sl.n 0.;
      sl.rd <- Array.make sl.n 0.;
      sl.rdx <- Array.make sl.n 0.;
      sl.rdy <- Array.make sl.n 0.;
      sl.rdz <- Array.make sl.n 0.
    end

  (* Refresh the source mirrors from the SoA components.  AA tables call
     this at [prepare] time (electron positions change on every accepted
     move); AB tables mirror once at batch construction (ions never
     move). *)
  let mirror_slot sl =
    ensure_scratch sl;
    As.read_into sl.xs ~pos:0 sl.sx ~n:sl.n;
    As.read_into sl.ys ~pos:0 sl.sy ~n:sl.n;
    As.read_into sl.zs ~pos:0 sl.sz ~n:sl.n

  (* The batched form of [soa_row]: the moved-electron row for [m] crowd
     slots in one pass, minimum-image dispatch hoisted out of the slot
     loop.  Per-slot arithmetic is exactly [soa_row]'s, so each slot's
     row is bit-identical to a scalar call.  Sources are read from the
     slot mirrors (refreshed by the caller via [mirror_slot]) and the row
     is staged in [float array] scratch, then committed with one bulk
     write per component: the Ortho and Open paths allocate nothing (the
     General fallback still builds Vec3s per element, as the scalar
     kernel does). *)
  let soa_rows ~lattice ~(slots : row_slot array) ~(px : float array)
      ~(py : float array) ~(pz : float array) ~m =
    (match Lattice.kind lattice with
    | Lattice.Ortho (lx, ly, lz) ->
        let ix = 1. /. lx and iy = 1. /. ly and iz = 1. /. lz in
        for s = 0 to m - 1 do
          let sl = slots.(s) in
          let xs = sl.sx and ys = sl.sy and zs = sl.sz in
          let rd = sl.rd and rdx = sl.rdx and rdy = sl.rdy in
          let rdz = sl.rdz in
          let psx = px.(s) and psy = py.(s) and psz = pz.(s) in
          for i = 0 to sl.n - 1 do
            let ddx = Array.unsafe_get xs i -. psx in
            let ddy = Array.unsafe_get ys i -. psy in
            let ddz = Array.unsafe_get zs i -. psz in
            (* [nearest], hand-inlined: the call would box its float
               argument and result on every element without flambda. *)
            let qx = ddx *. ix and qy = ddy *. iy and qz = ddz *. iz in
            let nx =
              float_of_int
                (int_of_float (if qx >= 0. then qx +. 0.5 else qx -. 0.5))
            in
            let ny =
              float_of_int
                (int_of_float (if qy >= 0. then qy +. 0.5 else qy -. 0.5))
            in
            let nz =
              float_of_int
                (int_of_float (if qz >= 0. then qz +. 0.5 else qz -. 0.5))
            in
            let ddx = ddx -. (lx *. nx) in
            let ddy = ddy -. (ly *. ny) in
            let ddz = ddz -. (lz *. nz) in
            Array.unsafe_set rdx i ddx;
            Array.unsafe_set rdy i ddy;
            Array.unsafe_set rdz i ddz;
            Array.unsafe_set rd i
              (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
          done
        done
    | Lattice.Open ->
        for s = 0 to m - 1 do
          let sl = slots.(s) in
          let xs = sl.sx and ys = sl.sy and zs = sl.sz in
          let rd = sl.rd and rdx = sl.rdx and rdy = sl.rdy in
          let rdz = sl.rdz in
          let psx = px.(s) and psy = py.(s) and psz = pz.(s) in
          for i = 0 to sl.n - 1 do
            let ddx = Array.unsafe_get xs i -. psx in
            let ddy = Array.unsafe_get ys i -. psy in
            let ddz = Array.unsafe_get zs i -. psz in
            Array.unsafe_set rdx i ddx;
            Array.unsafe_set rdy i ddy;
            Array.unsafe_set rdz i ddz;
            Array.unsafe_set rd i
              (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
          done
        done
    | Lattice.General ->
        for s = 0 to m - 1 do
          let sl = slots.(s) in
          let rd = sl.rd and rdx = sl.rdx and rdy = sl.rdy in
          let rdz = sl.rdz in
          let p = Vec3.make px.(s) py.(s) pz.(s) in
          for i = 0 to sl.n - 1 do
            let ri =
              Vec3.make
                (Array.unsafe_get sl.sx i)
                (Array.unsafe_get sl.sy i)
                (Array.unsafe_get sl.sz i)
            in
            let dr = Lattice.min_image_disp lattice (Vec3.sub ri p) in
            Array.unsafe_set rdx i dr.Vec3.x;
            Array.unsafe_set rdy i dr.Vec3.y;
            Array.unsafe_set rdz i dr.Vec3.z;
            Array.unsafe_set rd i (Vec3.norm dr)
          done
        done);
    for s = 0 to m - 1 do
      let sl = slots.(s) in
      A.write_from sl.rd sl.od ~pos:sl.o ~n:sl.n;
      A.write_from sl.rdx sl.odx ~pos:sl.o ~n:sl.n;
      A.write_from sl.rdy sl.ody ~pos:sl.o ~n:sl.n;
      A.write_from sl.rdz sl.odz ~pos:sl.o ~n:sl.n
    done

  (* Same relation over an interleaved AoS source; displacements are
     written interleaved as well (the Ref storage format). *)
  let aos_row ~lattice ~(src : As.t) ~n ~px ~py ~pz ~(d : A.t) ~(dr : A.t) =
    match Lattice.kind lattice with
    | Lattice.Ortho (lx, ly, lz) ->
        let ix = 1. /. lx and iy = 1. /. ly and iz = 1. /. lz in
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ddx = As.unsafe_get src base -. px in
          let ddy = As.unsafe_get src (base + 1) -. py in
          let ddz = As.unsafe_get src (base + 2) -. pz in
          let ddx = ddx -. (lx *. nearest (ddx *. ix)) in
          let ddy = ddy -. (ly *. nearest (ddy *. iy)) in
          let ddz = ddz -. (lz *. nearest (ddz *. iz)) in
          A.unsafe_set dr base ddx;
          A.unsafe_set dr (base + 1) ddy;
          A.unsafe_set dr (base + 2) ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.Open ->
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ddx = As.unsafe_get src base -. px in
          let ddy = As.unsafe_get src (base + 1) -. py in
          let ddz = As.unsafe_get src (base + 2) -. pz in
          A.unsafe_set dr base ddx;
          A.unsafe_set dr (base + 1) ddy;
          A.unsafe_set dr (base + 2) ddz;
          A.unsafe_set d i (sqrt ((ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz)))
        done
    | Lattice.General ->
        let p = Vec3.make px py pz in
        for i = 0 to n - 1 do
          let base = 3 * i in
          let ri =
            Vec3.make (As.unsafe_get src base)
              (As.unsafe_get src (base + 1))
              (As.unsafe_get src (base + 2))
          in
          let dd = Lattice.min_image_disp lattice (Vec3.sub ri p) in
          A.unsafe_set dr base dd.Vec3.x;
          A.unsafe_set dr (base + 1) dd.Vec3.y;
          A.unsafe_set dr (base + 2) dd.Vec3.z;
          A.unsafe_set d i (Vec3.norm dd)
        done
end
