open Oqmc_containers

(** Electron-electron distance table with the forward-update scheme of
    Fig. 6(b) — the paper's intermediate between the packed Ref triangle
    and the compute-on-the-fly table.  Full padded rows; acceptance does a
    contiguous row copy plus strided column writes for the later rows
    (k' > k) only.  Invariant: the pair (i, j) is current when read from
    the row of the larger index, which is how both the ordered sweep and
    the measurement consume it ({!Make.dist}/{!Make.displ} do this
    automatically). *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : Ps.t -> t
  val n : t -> int
  val evaluate : t -> Ps.t -> unit
  val move : t -> Ps.t -> int -> Vec3.t -> unit

  val update : t -> int -> unit
  (** Row copy + k' > k column updates. *)

  type batch
  (** Crowd batch context for the forward-update scheme: batched [move]
      (one flat-array pass over all slots) and batched [update] (row copy
      + later-row column writes per accepted slot). *)

  val make_batch : (t * Ps.t) array -> batch
  (** @raise Invalid_argument on an empty array or a size mismatch. *)

  val move_batch :
    batch -> k:int -> px:float array -> py:float array -> pz:float array ->
    m:int -> unit

  val update_batch : batch -> k:int -> acc:bool array -> m:int -> unit

  val dist : t -> int -> int -> float
  val displ : t -> int -> int -> Vec3.t
  val row_dist : t -> int -> A.t
  val temp_dist : t -> A.t
  val bytes : t -> int
end
