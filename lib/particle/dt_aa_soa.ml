open Oqmc_containers

(* Electron-electron (AA) distance table, optimized (Current) design.

   Full N × Nᵖ row storage (Fig. 6b): each padded row k holds d(k,i) and
   dr(k,i) = r_i − r_k with unit stride and SIMD alignment, roughly
   doubling memory versus the packed triangle but enabling contiguous
   streaming in every kernel.

   Compute-on-the-fly update policy (Sec. 7.5): before electron k moves,
   [move] recomputes row k from the current positions — eliminating the
   strided column updates of the forward-update intermediate — and fills
   the temporary row v for the proposed position.  [accept] is a single
   contiguous row copy.  Rows of electrons that have not yet moved in the
   current sweep may be stale in between; [evaluate] refreshes the whole
   table before measurements (it is reused by the Hamiltonian, so the
   O(N²) storage is retained).

   [R] is the walker/positions precision, [D] the table storage precision
   (the [precision_dt] knob): rows and temporaries narrow through [D]
   while every distance is computed in double from the R-precision
   positions and only rounded at the row commit. *)

module Make (R : Precision.REAL) (D : Precision.REAL) = struct
  module A = Aligned.Make (D)
  module M = Matrix.Make (D)
  module Ps = Particle_set.Make (R)
  module K = Dt_kernels.Make (R) (D)

  type t = {
    n : int;
    lattice : Lattice.t;
    d : M.t;
    dx : M.t;
    dy : M.t;
    dz : M.t;
    temp_d : A.t;
    temp_dx : A.t;
    temp_dy : A.t;
    temp_dz : A.t;
  }

  let create (ps : Ps.t) =
    let n = Ps.n ps in
    let mk () = M.create ~padded:true n n in
    let np = M.ld (mk ()) in
    {
      n;
      lattice = Ps.lattice ps;
      d = mk ();
      dx = mk ();
      dy = mk ();
      dz = mk ();
      temp_d = A.create np;
      temp_dx = A.create np;
      temp_dy = A.create np;
      temp_dz = A.create np;
    }

  let n t = t.n

  let fill_row t ps px py pz ~d ~dx ~dy ~dz =
    let soa = Ps.soa ps in
    K.soa_row ~lattice:t.lattice ~xs:(Ps.Vs.xs soa) ~ys:(Ps.Vs.ys soa)
      ~zs:(Ps.Vs.zs soa) ~n:t.n ~px ~py ~pz ~d ~dx ~dy ~dz

  let refresh_row t ps k =
    let p = Ps.get ps k in
    fill_row t ps p.Vec3.x p.Vec3.y p.Vec3.z ~d:(M.row t.d k)
      ~dx:(M.row t.dx k) ~dy:(M.row t.dy k) ~dz:(M.row t.dz k);
    (* Self entry: exact zeros so consumers can guard on i = k cheaply. *)
    A.set (M.row t.d k) k 0.;
    A.set (M.row t.dx k) k 0.;
    A.set (M.row t.dy k) k 0.;
    A.set (M.row t.dz k) k 0.

  let evaluate t ps =
    for k = 0 to t.n - 1 do
      refresh_row t ps k
    done

  (* Compute-on-the-fly step 1: refresh row k at the current position
     (called before gradients/ratios of electron k are needed, replacing
     the column updates of the forward-update scheme). *)
  let prepare t ps k = refresh_row t ps k

  (* Step 2: fill the temporary row against the proposed position. *)
  let move t ps k (newpos : Vec3.t) =
    fill_row t ps newpos.Vec3.x newpos.Vec3.y newpos.Vec3.z ~d:t.temp_d
      ~dx:t.temp_dx ~dy:t.temp_dy ~dz:t.temp_dz;
    A.set t.temp_d k 0.;
    A.set t.temp_dx k 0.;
    A.set t.temp_dy k 0.;
    A.set t.temp_dz k 0.

  let accept t k =
    A.blit ~src:t.temp_d ~dst:(M.row t.d k);
    A.blit ~src:t.temp_dx ~dst:(M.row t.dx k);
    A.blit ~src:t.temp_dy ~dst:(M.row t.dy k);
    A.blit ~src:t.temp_dz ~dst:(M.row t.dz k)

  let dist t k i = M.get t.d k i

  let displ t k i = Vec3.make (M.get t.dx k i) (M.get t.dy k i) (M.get t.dz k i)

  let row_dist t k = M.row t.d k
  let row_dx t k = M.row t.dx k
  let row_dy t k = M.row t.dy k
  let row_dz t k = M.row t.dz k

  let temp_dist t = t.temp_d
  let temp_dx t = t.temp_dx
  let temp_dy t = t.temp_dy
  let temp_dz t = t.temp_dz

  (* Backing storage + row stride, for offset-based reads that avoid the
     bigarray-proxy allocation of [row_*] in hot loops (all four matrices
     share one stride). *)
  let dist_data t = M.data t.d
  let dx_data t = M.data t.dx
  let dy_data t = M.data t.dy
  let dz_data t = M.data t.dz
  let row_stride t = M.ld t.d

  (* ------------------- crowd batch context ------------------- *)

  (* [prepare]/[move]/[accept] over every slot of a crowd in one batched
     kernel call each.  The context owns all scratch (positions travel in
     unboxed float arrays, outputs are retargeted slot records), so the
     per-move path allocates nothing.  Per-slot arithmetic is exactly the
     scalar protocol's — rows come out bit-identical. *)
  type batch = {
    btabs : t array;
    bslots : K.row_slot array;
    bpx : float array;
    bpy : float array;
    bpz : float array;
    blat : Lattice.t;
  }

  let make_batch (pairs : (t * Ps.t) array) =
    let m = Array.length pairs in
    if m < 1 then invalid_arg "Dt_aa_soa.make_batch: empty crowd";
    let slots =
      Array.map
        (fun ((t : t), ps) ->
          if Ps.n ps <> t.n then
            invalid_arg "Dt_aa_soa.make_batch: table/set size mismatch";
          let soa = Ps.soa ps in
          let sl = K.make_row_slot () in
          sl.K.xs <- Ps.Vs.xs soa;
          sl.K.ys <- Ps.Vs.ys soa;
          sl.K.zs <- Ps.Vs.zs soa;
          sl.K.n <- t.n;
          K.ensure_scratch sl;
          sl)
        pairs
    in
    {
      btabs = Array.map fst pairs;
      bslots = slots;
      bpx = Array.make m 0.;
      bpy = Array.make m 0.;
      bpz = Array.make m 0.;
      blat = (fst pairs.(0)).lattice;
    }

  let batch_cap b = Array.length b.btabs
  let batch_table b s = b.btabs.(s)

  (* Refresh row [k] of every slot's table at its current position (read
     from the SoA container, which holds the same rounded values as the
     AoS side the scalar path reads).  This is also where the slot's
     source mirrors are refreshed: positions only change at [Ps.accept],
     after which the next move's prepare runs first, so the mirrors stay
     valid through the following [move_batch]. *)
  let prepare_batch b ~k ~m =
    for s = 0 to m - 1 do
      let t = b.btabs.(s) and sl = b.bslots.(s) in
      K.mirror_slot sl;
      b.bpx.(s) <- sl.K.sx.(k);
      b.bpy.(s) <- sl.K.sy.(k);
      b.bpz.(s) <- sl.K.sz.(k);
      sl.K.od <- M.data t.d;
      sl.K.odx <- M.data t.dx;
      sl.K.ody <- M.data t.dy;
      sl.K.odz <- M.data t.dz;
      sl.K.o <- k * M.ld t.d
    done;
    K.soa_rows ~lattice:b.blat ~slots:b.bslots ~px:b.bpx ~py:b.bpy ~pz:b.bpz
      ~m;
    for s = 0 to m - 1 do
      let t = b.btabs.(s) in
      let p = (k * M.ld t.d) + k in
      A.unsafe_set (M.data t.d) p 0.;
      A.unsafe_set (M.data t.dx) p 0.;
      A.unsafe_set (M.data t.dy) p 0.;
      A.unsafe_set (M.data t.dz) p 0.
    done

  (* Fill every slot's temporary row against its proposed position. *)
  let move_batch b ~k ~(px : float array) ~(py : float array)
      ~(pz : float array) ~m =
    for s = 0 to m - 1 do
      let t = b.btabs.(s) and sl = b.bslots.(s) in
      sl.K.od <- t.temp_d;
      sl.K.odx <- t.temp_dx;
      sl.K.ody <- t.temp_dy;
      sl.K.odz <- t.temp_dz;
      sl.K.o <- 0
    done;
    K.soa_rows ~lattice:b.blat ~slots:b.bslots ~px ~py ~pz ~m;
    for s = 0 to m - 1 do
      let t = b.btabs.(s) in
      A.unsafe_set t.temp_d k 0.;
      A.unsafe_set t.temp_dx k 0.;
      A.unsafe_set t.temp_dy k 0.;
      A.unsafe_set t.temp_dz k 0.
    done

  (* Commit the temporary row of every accepted slot (contiguous copy,
     padding included, like the scalar [accept] blit). *)
  let accept_batch b ~k ~(acc : bool array) ~m =
    for s = 0 to m - 1 do
      if acc.(s) then begin
        let t = b.btabs.(s) in
        let ld = M.ld t.d in
        let o = k * ld in
        A.copy_within ~src:t.temp_d ~spos:0 ~dst:(M.data t.d) ~dpos:o ~n:ld;
        A.copy_within ~src:t.temp_dx ~spos:0 ~dst:(M.data t.dx) ~dpos:o
          ~n:ld;
        A.copy_within ~src:t.temp_dy ~spos:0 ~dst:(M.data t.dy) ~dpos:o
          ~n:ld;
        A.copy_within ~src:t.temp_dz ~spos:0 ~dst:(M.data t.dz) ~dpos:o
          ~n:ld
      end
    done

  let bytes t =
    M.bytes t.d + M.bytes t.dx + M.bytes t.dy + M.bytes t.dz
    + A.bytes t.temp_d + A.bytes t.temp_dx + A.bytes t.temp_dy
    + A.bytes t.temp_dz
end
