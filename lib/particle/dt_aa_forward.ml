open Oqmc_containers

(* Electron-electron (AA) distance table, forward-update design — the
   intermediate scheme of Fig. 6(b) BEFORE the column updates were removed
   by compute-on-the-fly (Sec. 7.4).

   Full padded N × Nᵖ rows as in the Current table, but maintained
   incrementally: accepting the move of electron k copies the temporary
   row into row k (contiguous) and updates column k of the LATER rows
   only (k' > k, strided by Nᵖ) — "leaving the number of copy operations
   unchanged" relative to the packed Ref update while making every read
   unit-stride.

   Invariant: within an ordered particle-by-particle sweep, the pair
   (i, j) is current when read from the row of the LARGER index, which is
   exactly how the sweep (row k reads j < k freshly column-updated) and
   the measurement stage (upper-triangle reads) consume it.  Entries
   (k, j > k) of row k may be one sweep stale — the paper notes "leaving
   U untouched or partially updated as the upper triangle is not used".
   Consumers that need globally fresh rows call [evaluate]. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module Ps = Particle_set.Make (R)
  module K = Dt_kernels.Make (R) (R)

  type t = {
    n : int;
    lattice : Lattice.t;
    d : M.t;
    dx : M.t;
    dy : M.t;
    dz : M.t;
    temp_d : A.t;
    temp_dx : A.t;
    temp_dy : A.t;
    temp_dz : A.t;
  }

  let create (ps : Ps.t) =
    let n = Ps.n ps in
    let mk () = M.create ~padded:true n n in
    let np = M.ld (mk ()) in
    {
      n;
      lattice = Ps.lattice ps;
      d = mk ();
      dx = mk ();
      dy = mk ();
      dz = mk ();
      temp_d = A.create np;
      temp_dx = A.create np;
      temp_dy = A.create np;
      temp_dz = A.create np;
    }

  let n t = t.n

  let fill_row t ps px py pz ~d ~dx ~dy ~dz =
    let soa = Ps.soa ps in
    K.soa_row ~lattice:t.lattice ~xs:(Ps.Vs.xs soa) ~ys:(Ps.Vs.ys soa)
      ~zs:(Ps.Vs.zs soa) ~n:t.n ~px ~py ~pz ~d ~dx ~dy ~dz

  let evaluate t ps =
    for k = 0 to t.n - 1 do
      let p = Ps.get ps k in
      fill_row t ps p.Vec3.x p.Vec3.y p.Vec3.z ~d:(M.row t.d k)
        ~dx:(M.row t.dx k) ~dy:(M.row t.dy k) ~dz:(M.row t.dz k);
      M.set t.d k k 0.;
      M.set t.dx k k 0.;
      M.set t.dy k k 0.;
      M.set t.dz k k 0.
    done

  let move t ps k (newpos : Vec3.t) =
    fill_row t ps newpos.Vec3.x newpos.Vec3.y newpos.Vec3.z ~d:t.temp_d
      ~dx:t.temp_dx ~dy:t.temp_dy ~dz:t.temp_dz;
    A.set t.temp_d k 0.;
    A.set t.temp_dx k 0.;
    A.set t.temp_dy k 0.;
    A.set t.temp_dz k 0.

  (* Forward update: contiguous row copy + strided column writes for the
     later rows only. *)
  let update t k =
    A.blit ~src:t.temp_d ~dst:(M.row t.d k);
    A.blit ~src:t.temp_dx ~dst:(M.row t.dx k);
    A.blit ~src:t.temp_dy ~dst:(M.row t.dy k);
    A.blit ~src:t.temp_dz ~dst:(M.row t.dz k);
    for i = k + 1 to t.n - 1 do
      (* dr(i,k) = −dr(k,i). *)
      M.unsafe_set t.d i k (A.unsafe_get t.temp_d i);
      M.unsafe_set t.dx i k (-.A.unsafe_get t.temp_dx i);
      M.unsafe_set t.dy i k (-.A.unsafe_get t.temp_dy i);
      M.unsafe_set t.dz i k (-.A.unsafe_get t.temp_dz i)
    done

  (* ------------------- crowd batch context ------------------- *)

  (* Batched forward-update: [move] for every crowd slot in one flat-array
     pass, and the accept-time row copy + k' > k column updates per
     accepted slot.  Per-slot arithmetic is exactly the scalar path's. *)
  type batch = {
    btabs : t array;
    bslots : K.row_slot array;
    blat : Lattice.t;
  }

  let make_batch (pairs : (t * Ps.t) array) =
    let m = Array.length pairs in
    if m < 1 then invalid_arg "Dt_aa_forward.make_batch: empty crowd";
    let slots =
      Array.map
        (fun ((t : t), ps) ->
          if Ps.n ps <> t.n then
            invalid_arg "Dt_aa_forward.make_batch: table/set size mismatch";
          let soa = Ps.soa ps in
          let sl = K.make_row_slot () in
          sl.K.xs <- Ps.Vs.xs soa;
          sl.K.ys <- Ps.Vs.ys soa;
          sl.K.zs <- Ps.Vs.zs soa;
          sl.K.n <- t.n;
          K.ensure_scratch sl;
          sl)
        pairs
    in
    { btabs = Array.map fst pairs; bslots = slots;
      blat = (fst pairs.(0)).lattice }

  let move_batch b ~k ~(px : float array) ~(py : float array)
      ~(pz : float array) ~m =
    for s = 0 to m - 1 do
      let t = b.btabs.(s) and sl = b.bslots.(s) in
      (* No prepare stage in the forward scheme: refresh the source
         mirrors here, exactly when the scalar [move] reads positions. *)
      K.mirror_slot sl;
      sl.K.od <- t.temp_d;
      sl.K.odx <- t.temp_dx;
      sl.K.ody <- t.temp_dy;
      sl.K.odz <- t.temp_dz;
      sl.K.o <- 0
    done;
    K.soa_rows ~lattice:b.blat ~slots:b.bslots ~px ~py ~pz ~m;
    for s = 0 to m - 1 do
      let t = b.btabs.(s) in
      A.unsafe_set t.temp_d k 0.;
      A.unsafe_set t.temp_dx k 0.;
      A.unsafe_set t.temp_dy k 0.;
      A.unsafe_set t.temp_dz k 0.
    done

  let update_batch b ~k ~(acc : bool array) ~m =
    for s = 0 to m - 1 do
      if acc.(s) then begin
        let t = b.btabs.(s) in
        let ld = M.ld t.d in
        let o = k * ld in
        let dd = M.data t.d and dxd = M.data t.dx in
        let dyd = M.data t.dy and dzd = M.data t.dz in
        let td = t.temp_d and tx = t.temp_dx in
        let ty = t.temp_dy and tz = t.temp_dz in
        for i = 0 to ld - 1 do
          A.unsafe_set dd (o + i) (A.unsafe_get td i);
          A.unsafe_set dxd (o + i) (A.unsafe_get tx i);
          A.unsafe_set dyd (o + i) (A.unsafe_get ty i);
          A.unsafe_set dzd (o + i) (A.unsafe_get tz i)
        done;
        for i = k + 1 to t.n - 1 do
          let p = (i * ld) + k in
          A.unsafe_set dd p (A.unsafe_get td i);
          A.unsafe_set dxd p (-.A.unsafe_get tx i);
          A.unsafe_set dyd p (-.A.unsafe_get ty i);
          A.unsafe_set dzd p (-.A.unsafe_get tz i)
        done
      end
    done

  (* Pair read from the larger row — the invariant-safe accessor. *)
  let dist t i j = if i >= j then M.get t.d i j else M.get t.d j i

  (* dr(i→j) = r_j − r_i, read from the larger (current) row: row i entry
     j stores r_j − r_i directly; row j entry i stores the negation. *)
  let displ t i j =
    if i = j then Vec3.zero
    else if i > j then
      Vec3.make (M.get t.dx i j) (M.get t.dy i j) (M.get t.dz i j)
    else
      Vec3.neg (Vec3.make (M.get t.dx j i) (M.get t.dy j i) (M.get t.dz j i))

  let row_dist t k = M.row t.d k
  let temp_dist t = t.temp_d

  let bytes t =
    M.bytes t.d + M.bytes t.dx + M.bytes t.dy + M.bytes t.dz
    + A.bytes t.temp_d + A.bytes t.temp_dx + A.bytes t.temp_dy
    + A.bytes t.temp_dz
end
