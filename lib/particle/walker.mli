open Oqmc_containers

(** A Monte Carlo walker: an electron configuration plus DMC bookkeeping
    and the anonymous state buffer.  Always double precision — walkers are
    what gets serialized between ranks. *)

module Aos : module type of Pos_aos.Make (Precision.F64)

type t = {
  r : Aos.t;
  mutable weight : float;
  mutable multiplicity : int;
  mutable age : int;
  mutable log_psi : float;
  mutable e_local : float;
  buffer : Wbuffer.t;
  id : int;
}

val create : int -> t
(** Fresh walker for [n] particles, unit weight, empty buffer. *)

val n_particles : t -> int

val copy : t -> t
(** Deep copy with a fresh id (used by DMC branching). *)

val message_bytes : t -> int
(** Serialized size: positions, scalar properties and state buffer. *)

(** {1 Binary wire codec}

    The big-endian serialized form a real rank exchange ships between
    processes.  Floats travel as raw IEEE-754 bits, so a roundtrip is
    bit-exact; the walker [id] is not serialized — decoding mints a
    fresh process-local id, like {!copy}. *)

val encode : Buffer.t -> t -> unit
(** Append the serialized walker to [buf]. *)

val decode : string -> int ref -> t
(** Decode one walker starting at [!pos], advancing [pos] past it.
    @raise Invalid_argument on malformed or truncated input. *)
