open Oqmc_containers

(* Electron-electron (AA) distance table, reference (Ref) design.

   Packed upper-triangle storage (Fig. 6a): N(N−1)/2 scalars for the
   distances and an interleaved AoS block for the displacements.  A move
   computes a temporary row against the AoS positions; acceptance copies
   the N−1 entries back into the triangle — scattered, sign-flipping
   writes whose unaligned access pattern is exactly what the paper
   replaces.  Entry (i, j) with i < j stores d(i,j) and
   dr(i,j) = r_j − r_i at packed index j(j−1)/2 + i. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module Ps = Particle_set.Make (R)
  module K = Dt_kernels.Make (R) (R)

  type t = {
    n : int;
    lattice : Lattice.t;
    d : A.t; (* packed triangle *)
    dr : A.t; (* packed triangle, interleaved xyz *)
    temp_d : A.t; (* dr(k, i) = r_i − r_k' for the active move *)
    temp_dr : A.t;
  }

  let tri_len n = n * (n - 1) / 2

  let idx i j = (j * (j - 1) / 2) + i (* requires i < j *)

  let create (ps : Ps.t) =
    let n = Ps.n ps in
    {
      n;
      lattice = Ps.lattice ps;
      d = A.create (tri_len n);
      dr = A.create (3 * tri_len n);
      temp_d = A.create n;
      temp_dr = A.create (3 * n);
    }

  let n t = t.n

  let evaluate t ps =
    let src = Ps.Aos.data (Ps.aos ps) in
    (* Row-by-row over the triangle using the strided AoS loads. *)
    for j = 1 to t.n - 1 do
      let pj = Ps.get ps j in
      for i = 0 to j - 1 do
        let base = 3 * i in
        let ddx = pj.Vec3.x -. A.unsafe_get src base in
        let ddy = pj.Vec3.y -. A.unsafe_get src (base + 1) in
        let ddz = pj.Vec3.z -. A.unsafe_get src (base + 2) in
        let dd =
          Lattice.min_image_disp t.lattice (Vec3.make ddx ddy ddz)
        in
        let p = idx i j in
        A.unsafe_set t.d p (Vec3.norm dd);
        A.unsafe_set t.dr (3 * p) dd.Vec3.x;
        A.unsafe_set t.dr ((3 * p) + 1) dd.Vec3.y;
        A.unsafe_set t.dr ((3 * p) + 2) dd.Vec3.z
      done
    done

  let move t ps _k (newpos : Vec3.t) =
    let src = Ps.Aos.data (Ps.aos ps) in
    K.aos_row ~lattice:t.lattice ~src ~n:t.n ~px:newpos.Vec3.x
      ~py:newpos.Vec3.y ~pz:newpos.Vec3.z ~d:t.temp_d ~dr:t.temp_dr

  (* Accept: scatter the temporary row back into the packed triangle
     (N − 1 strided copies with a sign flip below the diagonal). *)
  let update t k =
    for i = 0 to k - 1 do
      let p = idx i k in
      (* entry (i,k) holds r_k' − r_i = −temp(i). *)
      A.unsafe_set t.d p (A.unsafe_get t.temp_d i);
      A.unsafe_set t.dr (3 * p) (-.A.unsafe_get t.temp_dr (3 * i));
      A.unsafe_set t.dr ((3 * p) + 1) (-.A.unsafe_get t.temp_dr ((3 * i) + 1));
      A.unsafe_set t.dr ((3 * p) + 2) (-.A.unsafe_get t.temp_dr ((3 * i) + 2))
    done;
    for j = k + 1 to t.n - 1 do
      let p = idx k j in
      A.unsafe_set t.d p (A.unsafe_get t.temp_d j);
      A.unsafe_set t.dr (3 * p) (A.unsafe_get t.temp_dr (3 * j));
      A.unsafe_set t.dr ((3 * p) + 1) (A.unsafe_get t.temp_dr ((3 * j) + 1));
      A.unsafe_set t.dr ((3 * p) + 2) (A.unsafe_get t.temp_dr ((3 * j) + 2))
    done

  let dist t i j =
    if i = j then 0.
    else if i < j then A.get t.d (idx i j)
    else A.get t.d (idx j i)

  (* dr(i→j) = r_j − r_i. *)
  let displ t i j =
    if i = j then Vec3.zero
    else if i < j then begin
      let p = 3 * idx i j in
      Vec3.make (A.get t.dr p) (A.get t.dr (p + 1)) (A.get t.dr (p + 2))
    end
    else begin
      let p = 3 * idx j i in
      Vec3.make (-.A.get t.dr p) (-.A.get t.dr (p + 1)) (-.A.get t.dr (p + 2))
    end

  let temp_dist t = t.temp_d

  let temp_displ t i =
    Vec3.make (A.get t.temp_dr (3 * i))
      (A.get t.temp_dr ((3 * i) + 1))
      (A.get t.temp_dr ((3 * i) + 2))

  let bytes t =
    A.bytes t.d + A.bytes t.dr + A.bytes t.temp_d + A.bytes t.temp_dr
end
