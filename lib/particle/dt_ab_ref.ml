open Oqmc_containers

(* Electron-ion (AB) distance table, reference (Ref) design.

   A dense N × N_ion block with the displacements interleaved AoS-style,
   filled by walking the ions' interleaved positions — the
   strided-access baseline the SoA table replaces. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module Ps = Particle_set.Make (R)
  module K = Dt_kernels.Make (R) (R)

  type t = {
    n : int;
    n_src : int;
    lattice : Lattice.t;
    sources : Ps.t;
    d : A.t; (* n × n_src row-major *)
    dr : A.t; (* interleaved xyz per entry *)
    temp_d : A.t;
    temp_dr : A.t;
  }

  let create ~(sources : Ps.t) (targets : Ps.t) =
    let n = Ps.n targets and n_src = Ps.n sources in
    {
      n;
      n_src;
      lattice = Ps.lattice targets;
      sources;
      d = A.create (n * n_src);
      dr = A.create (3 * n * n_src);
      temp_d = A.create n_src;
      temp_dr = A.create (3 * n_src);
    }

  let n t = t.n
  let n_sources t = t.n_src

  let fill_row t px py pz ~(d : A.t) ~(dr : A.t) =
    let src = Ps.Aos.data (Ps.aos t.sources) in
    K.aos_row ~lattice:t.lattice ~src ~n:t.n_src ~px ~py ~pz ~d ~dr

  let evaluate t ps =
    for k = 0 to t.n - 1 do
      let p = Ps.get ps k in
      let d = A.sub t.d ~pos:(k * t.n_src) ~len:t.n_src in
      let dr = A.sub t.dr ~pos:(3 * k * t.n_src) ~len:(3 * t.n_src) in
      fill_row t p.Vec3.x p.Vec3.y p.Vec3.z ~d ~dr
    done

  let move t (newpos : Vec3.t) =
    fill_row t newpos.Vec3.x newpos.Vec3.y newpos.Vec3.z ~d:t.temp_d
      ~dr:t.temp_dr

  let update t k =
    let d = A.sub t.d ~pos:(k * t.n_src) ~len:t.n_src in
    let dr = A.sub t.dr ~pos:(3 * k * t.n_src) ~len:(3 * t.n_src) in
    A.blit ~src:t.temp_d ~dst:d;
    A.blit ~src:t.temp_dr ~dst:dr

  let dist t k i = A.get t.d ((k * t.n_src) + i)

  let displ t k i =
    let p = 3 * ((k * t.n_src) + i) in
    Vec3.make (A.get t.dr p) (A.get t.dr (p + 1)) (A.get t.dr (p + 2))

  let temp_dist t = t.temp_d

  let temp_displ t i =
    Vec3.make (A.get t.temp_dr (3 * i))
      (A.get t.temp_dr ((3 * i) + 1))
      (A.get t.temp_dr ((3 * i) + 2))

  let bytes t =
    A.bytes t.d + A.bytes t.dr + A.bytes t.temp_d + A.bytes t.temp_dr
end
