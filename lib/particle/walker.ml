open Oqmc_containers

(* A Monte Carlo walker: one electron configuration plus the bookkeeping
   needed by the DMC population (weight, multiplicity, age) and the
   anonymous buffer into which wavefunction components serialize their
   internal state.  Walkers are always stored in double precision — they
   are the units serialized for load balancing — while the compute engines
   (ParticleSet, TrialWaveFunction) hold precision-dependent copies. *)

module Aos = Pos_aos.Make (Precision.F64)

type t = {
  r : Aos.t;
  mutable weight : float;
  mutable multiplicity : int;
  mutable age : int;
  mutable log_psi : float;
  mutable e_local : float;
  buffer : Wbuffer.t;
  id : int;
}

let counter = ref 0

let create n =
  incr counter;
  {
    r = Aos.create n;
    weight = 1.;
    multiplicity = 1;
    age = 0;
    log_psi = 0.;
    e_local = 0.;
    buffer = Wbuffer.create ();
    id = !counter;
  }

let n_particles t = Aos.length t.r

let copy t =
  incr counter;
  {
    r = Aos.copy t.r;
    weight = t.weight;
    multiplicity = t.multiplicity;
    age = t.age;
    log_psi = t.log_psi;
    e_local = t.e_local;
    buffer = Wbuffer.copy t.buffer;
    id = !counter;
  }

(* Size of the serialized walker (positions + scalars + buffer): the
   load-balancing message the paper's Jastrow memory optimization shrinks
   by 22.5 MB for NiO-64. *)
let message_bytes t = Aos.bytes t.r + (8 * 4) + Wbuffer.bytes t.buffer

(* ---------- binary wire codec ----------

   The serialized form a real rank exchange ships over a pipe or socket:
   big-endian, fixed layout, floats as raw IEEE-754 bits so a
   encode/decode roundtrip is bit-exact.  The walker [id] is *not*
   serialized — like [copy], decoding mints a fresh process-local id. *)

let put_i32 buf n = Buffer.add_int32_be buf (Int32.of_int n)
let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let get_i32 s pos =
  let v = Int32.to_int (String.get_int32_be s !pos) in
  pos := !pos + 4;
  v

let get_f64 s pos =
  let v = Int64.float_of_bits (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let encode buf t =
  let n = n_particles t in
  put_i32 buf n;
  put_f64 buf t.weight;
  put_i32 buf t.multiplicity;
  put_i32 buf t.age;
  put_f64 buf t.log_psi;
  put_f64 buf t.e_local;
  for i = 0 to n - 1 do
    let p = Aos.get t.r i in
    put_f64 buf p.Vec3.x;
    put_f64 buf p.Vec3.y;
    put_f64 buf p.Vec3.z
  done;
  let b = Wbuffer.contents t.buffer in
  put_i32 buf (Array.length b);
  Array.iter (fun v -> put_f64 buf v) b

let decode s pos =
  let guard what n lo =
    if n < lo then
      invalid_arg (Printf.sprintf "Walker.decode: bad %s %d" what n)
  in
  let n = get_i32 s pos in
  guard "particle count" n 1;
  let w = create n in
  w.weight <- get_f64 s pos;
  w.multiplicity <- get_i32 s pos;
  w.age <- get_i32 s pos;
  guard "age" w.age 0;
  w.log_psi <- get_f64 s pos;
  w.e_local <- get_f64 s pos;
  for i = 0 to n - 1 do
    let x = get_f64 s pos in
    let y = get_f64 s pos in
    let z = get_f64 s pos in
    Aos.set w.r i (Vec3.make x y z)
  done;
  let nbuf = get_i32 s pos in
  guard "buffer length" nbuf 0;
  Wbuffer.clear w.buffer;
  for _ = 1 to nbuf do
    Wbuffer.add w.buffer (get_f64 s pos)
  done;
  Wbuffer.rewind w.buffer;
  w
