open Oqmc_containers

(** Electron-electron (AA) distance table, optimized (Current) design:
    full padded N × Nᵖ row storage with compute-on-the-fly updates
    (Fig. 6b of the paper, after removal of the column updates).  The
    protocol per move of electron [k] is {!Make.prepare} (refresh row [k]
    at the current position), {!Make.move} (fill the temporary row at the
    proposed position), then {!Make.accept} (contiguous row copy) or
    nothing on rejection.  {!Make.evaluate} rebuilds the whole table for
    measurements.

    [R] is the walker/positions precision, [D] the table storage
    precision (the [precision_dt] knob): rows and temporaries live at
    [D] while distances are computed in double from the [R]-precision
    positions and rounded once at the row commit. *)

module Make (R : Precision.REAL) (D : Precision.REAL) : sig
  module A : module type of Aligned.Make (D)
  module M : module type of Matrix.Make (D)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : Ps.t -> t
  val n : t -> int

  val evaluate : t -> Ps.t -> unit
  (** Recompute every row (used at load and before measurements). *)

  val prepare : t -> Ps.t -> int -> unit
  (** Refresh row [k] from the current positions — the compute-on-the-fly
      replacement for forward column updates. *)

  val move : t -> Ps.t -> int -> Vec3.t -> unit
  (** Fill the temporary row with distances from the proposed position. *)

  val accept : t -> int -> unit
  (** Copy the temporary row into row [k] (contiguous, SIMD-aligned). *)

  val dist : t -> int -> int -> float
  (** d(k,i); the self entry is 0. *)

  val displ : t -> int -> int -> Vec3.t
  (** dr(k,i) = r_i − r_k under minimum image. *)

  val row_dist : t -> int -> A.t
  val row_dx : t -> int -> A.t
  val row_dy : t -> int -> A.t
  val row_dz : t -> int -> A.t
  (** Unit-stride row views (shared storage, padded length). *)

  val temp_dist : t -> A.t
  val temp_dx : t -> A.t
  val temp_dy : t -> A.t
  val temp_dz : t -> A.t

  val dist_data : t -> A.t
  val dx_data : t -> A.t
  val dy_data : t -> A.t
  val dz_data : t -> A.t

  val row_stride : t -> int
  (** Backing storage and common row stride: row [k] of each matrix
      starts at offset [k * row_stride] — offset-based reads avoid the
      bigarray-proxy allocation of [row_*] in hot loops. *)

  type batch
  (** Crowd batch context: one retargetable kernel slot per table, all
      scratch preallocated.  [prepare_batch]/[move_batch]/[accept_batch]
      run the scalar per-move protocol for every slot in one batched
      kernel call each, with zero allocation and bit-identical rows. *)

  val make_batch : (t * Ps.t) array -> batch
  (** One (table, particle set) pair per crowd slot; the sets must all
      share the slot-0 lattice (a uniform crowd).
      @raise Invalid_argument on an empty array or a size mismatch. *)

  val batch_cap : batch -> int
  val batch_table : batch -> int -> t

  val prepare_batch : batch -> k:int -> m:int -> unit
  (** Refresh row [k] of slots [0..m-1] at their current positions. *)

  val move_batch :
    batch -> k:int -> px:float array -> py:float array -> pz:float array ->
    m:int -> unit
  (** Fill each slot's temporary row against its proposed position
      [(px.(s), py.(s), pz.(s))]. *)

  val accept_batch : batch -> k:int -> acc:bool array -> m:int -> unit
  (** Commit the temporary row of every slot with [acc.(s) = true]. *)

  val bytes : t -> int
end
