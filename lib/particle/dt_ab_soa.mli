open Oqmc_containers

(** Electron-ion (AB) distance table, optimized design: one padded
    SIMD-aligned row of ion distances per electron, streamed from the
    fixed ions' SoA container.  Ions never move, so there are no column
    updates and no staleness: acceptance is a single row copy.

    [R] is the walker/positions precision, [D] the table storage
    precision (the [precision_dt] knob); see {!Dt_aa_soa}. *)

module Make (R : Precision.REAL) (D : Precision.REAL) : sig
  module A : module type of Aligned.Make (D)
  module M : module type of Matrix.Make (D)
  module Ps : module type of Particle_set.Make (R)

  type t

  val create : sources:Ps.t -> Ps.t -> t
  (** [create ~sources targets]: [sources] are the fixed ions. *)

  val n : t -> int
  val n_sources : t -> int

  val evaluate : t -> Ps.t -> unit
  val move : t -> Vec3.t -> unit
  val accept : t -> int -> unit

  val dist : t -> int -> int -> float
  val displ : t -> int -> int -> Vec3.t

  val row_dist : t -> int -> A.t
  val row_dx : t -> int -> A.t
  val row_dy : t -> int -> A.t
  val row_dz : t -> int -> A.t

  val temp_dist : t -> A.t
  val temp_dx : t -> A.t
  val temp_dy : t -> A.t
  val temp_dz : t -> A.t

  val dist_data : t -> A.t
  val dx_data : t -> A.t
  val dy_data : t -> A.t
  val dz_data : t -> A.t

  val row_stride : t -> int
  (** Backing storage + row stride for offset-based (allocation-free)
      row reads. *)

  type batch
  (** Crowd batch context (ions never move, so there is no prepare
      stage); zero allocation per call, bit-identical rows. *)

  val make_batch : t array -> batch
  (** @raise Invalid_argument on an empty array. *)

  val batch_cap : batch -> int

  val move_batch :
    batch -> px:float array -> py:float array -> pz:float array -> m:int ->
    unit

  val accept_batch : batch -> k:int -> acc:bool array -> m:int -> unit

  val bytes : t -> int
end
