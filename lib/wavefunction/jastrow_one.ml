open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(* One-body Jastrow factor, log ψ = −Σ_k Σ_I u_{s(I)}(r_kI), with a radial
   functor per ion species.  Because the ions never move, an accepted
   electron move touches only that electron's state, in both designs:

   [create_ref] stores the N × N_ion value/gradient/laplacian matrices
   (the store-over-compute baseline) over the Ref AB distance table.

   [create_opt] keeps 5N per-electron accumulators and recomputes rows
   from the SoA AB table on the fly.

   [R] is the walker precision, [D] the SoA distance-table storage
   precision (the [precision_dt] knob): the opt path reads its rows
   through [D] while all Jastrow sums accumulate in double.  The Ref
   baseline stays entirely at [R]. *)

module Make (R : Precision.REAL) (D : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (R)
  module Dref = Dt_ab_ref.Make (R)
  module Dsoa = Dt_ab_soa.Make (R) (D)
  module Ad = Dsoa.A

  type functors = Cubic_spline_1d.t array
  (* indexed by ion species *)

  let eval_u (fn : Cubic_spline_1d.t) r =
    if r <= 0. || r >= Cubic_spline_1d.cutoff fn then (0., 0., 0.)
    else begin
      let u, du, d2u = Cubic_spline_1d.evaluate_vgl fn r in
      (u, du /. r, d2u +. (2. *. du /. r))
    end

  let ion_species (ions : Ps.t) (functors : functors) =
    if Array.length functors <> Ps.n_species ions then
      invalid_arg "Jastrow_one: functor array does not match ion species";
    Array.init (Ps.n ions) (fun i -> Ps.species_index ions i)

  (* ------------------------------------------------------------------ *)

  (* Compute-on-the-fly state shared by the scalar component closures and
     the crowd batch kernels — shared row routines make batch vs scalar
     bit-identity structural. *)
  type opt = {
    table : Dsoa.t;
    n : int;
    ni : int;
    ld : int;
    functors : functors;
    ion_spec : int array;
    vat : float array;
    jgx : float array;
    jgy : float array;
    jgz : float array;
    jlap : float array;
    un : float array;
    fn_ : float array;
    ln_ : float array;
    (* Row mirrors (see Aligned.read_into): distance and displacement
       rows are staged in unboxed scratch so the inner loops never touch
       the precision functor per element. *)
    mdr : float array;
    mdx : float array;
    mdy : float array;
    mdz : float array;
    (* Maximal same-species ion runs: one fused spline-row call per run
       instead of a boxed per-ion dispatch. *)
    run_lo : int array;
    run_n : int array;
    run_fn : Cubic_spline_1d.t array;
  }

  (* Maximal runs of equal values in [spec] (ions are laid out species by
     species, so this is one run per species; the construction does not
     rely on it). *)
  let species_runs (spec : int array) =
    let runs = ref [] in
    let i = ref 0 in
    let len = Array.length spec in
    while !i < len do
      let j = ref !i in
      while !j < len && spec.(!j) = spec.(!i) do incr j done;
      runs := (!i, !j - !i, spec.(!i)) :: !runs;
      i := !j
    done;
    Array.of_list (List.rev !runs)

  let make_opt ~(table : Dsoa.t) ~(functors : functors) ~(ions : Ps.t)
      (ps : Ps.t) : opt =
    let n = Ps.n ps in
    let ni = Ps.n ions in
    let ion_spec = ion_species ions functors in
    let runs = species_runs ion_spec in
    {
      table;
      n;
      ni;
      ld = Dsoa.row_stride table;
      functors;
      ion_spec;
      vat = Array.make n 0.;
      jgx = Array.make n 0.;
      jgy = Array.make n 0.;
      jgz = Array.make n 0.;
      jlap = Array.make n 0.;
      un = Array.make ni 0.;
      fn_ = Array.make ni 0.;
      ln_ = Array.make ni 0.;
      mdr = Array.make ni 0.;
      mdx = Array.make ni 0.;
      mdy = Array.make ni 0.;
      mdz = Array.make ni 0.;
      run_lo = Array.map (fun (lo, _, _) -> lo) runs;
      run_n = Array.map (fun (_, rn, _) -> rn) runs;
      run_fn = Array.map (fun (_, _, sp) -> functors.(sp)) runs;
    }

  let fill_row st (dist : Ad.t) off =
    Ad.read_into dist ~pos:off st.mdr ~n:st.ni;
    for r = 0 to Array.length st.run_lo - 1 do
      Cubic_spline_1d.evaluate_ufl_row st.run_fn.(r) st.mdr
        ~off:st.run_lo.(r) ~n:st.run_n.(r) ~u:st.un ~f:st.fn_ ~l:st.ln_
    done

  let sum (a : float array) =
    let acc = ref 0. in
    for i = 0 to Array.length a - 1 do
      acc := !acc +. a.(i)
    done;
    !acc

  let store_k st k ~(dx : Ad.t) ~(dy : Ad.t) ~(dz : Ad.t) ~off =
    Ad.read_into dx ~pos:off st.mdx ~n:st.ni;
    Ad.read_into dy ~pos:off st.mdy ~n:st.ni;
    Ad.read_into dz ~pos:off st.mdz ~n:st.ni;
    let ax = ref 0. and ay = ref 0. and az = ref 0. in
    let su = ref 0. and sl = ref 0. in
    let fn = st.fn_ in
    for i = 0 to st.ni - 1 do
      ax := !ax +. (fn.(i) *. st.mdx.(i));
      ay := !ay +. (fn.(i) *. st.mdy.(i));
      az := !az +. (fn.(i) *. st.mdz.(i));
      su := !su +. st.un.(i);
      sl := !sl +. st.ln_.(i)
    done;
    st.vat.(k) <- !su;
    st.jgx.(k) <- !ax;
    st.jgy.(k) <- !ay;
    st.jgz.(k) <- !az;
    st.jlap.(k) <- -. !sl

  (* ---- crowd batch kernels ---- *)

  let ratio_grad_batch (sts : opt array) ~k ~m ~(ratio : float array)
      ~(gx : float array) ~(gy : float array) ~(gz : float array) =
    for s = 0 to m - 1 do
      let st = sts.(s) in
      fill_row st (Dsoa.temp_dist st.table) 0;
      Ad.read_into (Dsoa.temp_dx st.table) ~pos:0 st.mdx ~n:st.ni;
      Ad.read_into (Dsoa.temp_dy st.table) ~pos:0 st.mdy ~n:st.ni;
      Ad.read_into (Dsoa.temp_dz st.table) ~pos:0 st.mdz ~n:st.ni;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let su = ref 0. in
      let fn = st.fn_ in
      for i = 0 to st.ni - 1 do
        ax := !ax +. (fn.(i) *. st.mdx.(i));
        ay := !ay +. (fn.(i) *. st.mdy.(i));
        az := !az +. (fn.(i) *. st.mdz.(i));
        su := !su +. st.un.(i)
      done;
      ratio.(s) <- ratio.(s) *. exp (st.vat.(k) -. !su);
      gx.(s) <- gx.(s) +. !ax;
      gy.(s) <- gy.(s) +. !ay;
      gz.(s) <- gz.(s) +. !az
    done

  let grad_batch (sts : opt array) ~k ~m ~(gx : float array)
      ~(gy : float array) ~(gz : float array) =
    for s = 0 to m - 1 do
      let st = sts.(s) in
      gx.(s) <- gx.(s) +. st.jgx.(k);
      gy.(s) <- gy.(s) +. st.jgy.(k);
      gz.(s) <- gz.(s) +. st.jgz.(k)
    done

  let accept_batch (sts : opt array) ~k ~m ~(acc : bool array) =
    for s = 0 to m - 1 do
      if acc.(s) then begin
        let st = sts.(s) in
        (* Scratch still holds the proposed row from ratio/ratio_grad. *)
        store_k st k ~dx:(Dsoa.temp_dx st.table) ~dy:(Dsoa.temp_dy st.table)
          ~dz:(Dsoa.temp_dz st.table) ~off:0
      end
    done

  (* ---- the W.t component over an [opt] state ---- *)

  let opt_component (st : opt) : W.t =
    let n = st.n in
    let evaluate_log _ps =
      for k = 0 to n - 1 do
        let off = k * st.ld in
        fill_row st (Dsoa.dist_data st.table) off;
        store_k st k ~dx:(Dsoa.dx_data st.table) ~dy:(Dsoa.dy_data st.table)
          ~dz:(Dsoa.dz_data st.table) ~off
      done;
      -.sum st.vat
    in
    let ratio _ps k =
      fill_row st (Dsoa.temp_dist st.table) 0;
      exp (st.vat.(k) -. sum st.un)
    in
    let ratio_grad _ps k =
      fill_row st (Dsoa.temp_dist st.table) 0;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let tx = Dsoa.temp_dx st.table and ty = Dsoa.temp_dy st.table in
      let tz = Dsoa.temp_dz st.table in
      let fn = st.fn_ in
      for i = 0 to st.ni - 1 do
        ax := !ax +. (fn.(i) *. Ad.unsafe_get tx i);
        ay := !ay +. (fn.(i) *. Ad.unsafe_get ty i);
        az := !az +. (fn.(i) *. Ad.unsafe_get tz i)
      done;
      (exp (st.vat.(k) -. sum st.un), Vec3.make !ax !ay !az)
    in
    let grad _ps k = Vec3.make st.jgx.(k) st.jgy.(k) st.jgz.(k) in
    let accept _ps k =
      store_k st k ~dx:(Dsoa.temp_dx st.table) ~dy:(Dsoa.temp_dy st.table)
        ~dz:(Dsoa.temp_dz st.table) ~off:0
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        g.W.ggx.(k) <- g.W.ggx.(k) +. st.jgx.(k);
        g.W.ggy.(k) <- g.W.ggy.(k) +. st.jgy.(k);
        g.W.ggz.(k) <- g.W.ggz.(k) +. st.jgz.(k);
        g.W.glap.(k) <- g.W.glap.(k) +. st.jlap.(k)
      done
    in
    let register buf =
      for _ = 1 to 5 * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      Wbuffer.put_array buf st.vat;
      Wbuffer.put_array buf st.jgx;
      Wbuffer.put_array buf st.jgy;
      Wbuffer.put_array buf st.jgz;
      Wbuffer.put_array buf st.jlap
    in
    let copy_from_buffer _ps buf =
      let rd a =
        for i = 0 to n - 1 do
          a.(i) <- Wbuffer.get buf
        done
      in
      rd st.vat;
      rd st.jgx;
      rd st.jgy;
      rd st.jgz;
      rd st.jlap
    in
    let bytes () = 5 * n * 8 in
    {
      W.name = "J1-opt";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }

  let create_opt ~(table : Dsoa.t) ~(functors : functors) ~(ions : Ps.t)
      (ps : Ps.t) : W.t =
    opt_component (make_opt ~table ~functors ~ions ps)

  (* ------------------------------------------------------------------ *)

  let create_ref ~(table : Dref.t) ~(functors : functors) ~(ions : Ps.t)
      (ps : Ps.t) : W.t =
    let n = Ps.n ps in
    let ni = Ps.n ions in
    let ion_spec = ion_species ions functors in
    let umat = A.create (n * ni) in
    let dumat = A.create (3 * n * ni) in
    let d2umat = A.create (n * ni) in
    let un = Array.make ni 0. and fn = Array.make ni 0. in
    let ln = Array.make ni 0. in
    let fill_new_row () =
      let td = Dref.temp_dist table in
      for i = 0 to ni - 1 do
        let u, f, l = eval_u functors.(ion_spec.(i)) (A.get td i) in
        un.(i) <- u;
        fn.(i) <- f;
        ln.(i) <- l
      done
    in
    let evaluate_log _ps =
      let logv = ref 0. in
      for k = 0 to n - 1 do
        for i = 0 to ni - 1 do
          let d = Dref.dist table k i in
          let u, f, l = eval_u functors.(ion_spec.(i)) d in
          let dr = Dref.displ table k i in
          let p = (k * ni) + i in
          A.set umat p u;
          A.set dumat (3 * p) (f *. dr.Vec3.x);
          A.set dumat ((3 * p) + 1) (f *. dr.Vec3.y);
          A.set dumat ((3 * p) + 2) (f *. dr.Vec3.z);
          A.set d2umat p l;
          logv := !logv -. u
        done
      done;
      !logv
    in
    let delta k =
      let acc = ref 0. in
      for i = 0 to ni - 1 do
        acc := !acc +. un.(i) -. A.get umat ((k * ni) + i)
      done;
      !acc
    in
    let ratio _ps k =
      fill_new_row ();
      exp (-.delta k)
    in
    let ratio_grad _ps k =
      fill_new_row ();
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to ni - 1 do
        let dr = Dref.temp_displ table i in
        ax := !ax +. (fn.(i) *. dr.Vec3.x);
        ay := !ay +. (fn.(i) *. dr.Vec3.y);
        az := !az +. (fn.(i) *. dr.Vec3.z)
      done;
      (exp (-.delta k), Vec3.make !ax !ay !az)
    in
    let grad _ps k =
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to ni - 1 do
        let p = 3 * ((k * ni) + i) in
        ax := !ax +. A.get dumat p;
        ay := !ay +. A.get dumat (p + 1);
        az := !az +. A.get dumat (p + 2)
      done;
      Vec3.make !ax !ay !az
    in
    let accept _ps k =
      for i = 0 to ni - 1 do
        let dr = Dref.temp_displ table i in
        let p = (k * ni) + i in
        A.set umat p un.(i);
        A.set dumat (3 * p) (fn.(i) *. dr.Vec3.x);
        A.set dumat ((3 * p) + 1) (fn.(i) *. dr.Vec3.y);
        A.set dumat ((3 * p) + 2) (fn.(i) *. dr.Vec3.z);
        A.set d2umat p ln.(i)
      done
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        let ax = ref 0. and ay = ref 0. and az = ref 0. in
        let al = ref 0. in
        for i = 0 to ni - 1 do
          let p = (k * ni) + i in
          ax := !ax +. A.get dumat (3 * p);
          ay := !ay +. A.get dumat ((3 * p) + 1);
          az := !az +. A.get dumat ((3 * p) + 2);
          al := !al +. A.get d2umat p
        done;
        g.W.ggx.(k) <- g.W.ggx.(k) +. !ax;
        g.W.ggy.(k) <- g.W.ggy.(k) +. !ay;
        g.W.ggz.(k) <- g.W.ggz.(k) +. !az;
        g.W.glap.(k) <- g.W.glap.(k) -. !al
      done
    in
    let register buf =
      for _ = 1 to 5 * n * ni do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      for p = 0 to (n * ni) - 1 do
        Wbuffer.put buf (A.get umat p)
      done;
      for p = 0 to (3 * n * ni) - 1 do
        Wbuffer.put buf (A.get dumat p)
      done;
      for p = 0 to (n * ni) - 1 do
        Wbuffer.put buf (A.get d2umat p)
      done
    in
    let copy_from_buffer _ps buf =
      for p = 0 to (n * ni) - 1 do
        A.set umat p (Wbuffer.get buf)
      done;
      for p = 0 to (3 * n * ni) - 1 do
        A.set dumat p (Wbuffer.get buf)
      done;
      for p = 0 to (n * ni) - 1 do
        A.set d2umat p (Wbuffer.get buf)
      done
    in
    let bytes () = A.bytes umat + A.bytes dumat + A.bytes d2umat in
    {
      W.name = "J1-ref";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }
end
