open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(* Two-body Jastrow factor, log ψ = −Σ_{i<j} u_{σᵢσⱼ}(r_ij), with a radial
   B-spline functor per spin pair.

   Two complete implementations (the heart of the paper's J2 story):

   [create_ref] — the store-over-compute baseline.  Keeps full N×N matrices
   of pair values, gradients (interleaved AoS) and laplacian terms — the
   5N² scalars per walker the paper calls out — reads old values back from
   the matrices during ratios, and updates both the row and the column of
   all three matrices on every accepted move.  Works off the packed
   triangular Ref distance table and serializes the whole 5N² block into
   the walker buffer.

   [create_opt] — the compute-on-the-fly design.  Keeps only the 5N
   per-electron accumulators U_k, ∇U_k, ∇²U_k; every ratio recomputes the
   old and new pair rows from the SoA distance table with unit-stride
   loops, and acceptance updates the accumulators incrementally.  The
   walker buffer shrinks to 5N scalars. *)

module Make (R : Precision.REAL) (D : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (R)
  module Dref = Dt_aa_ref.Make (R)
  module Dsoa = Dt_aa_soa.Make (R) (D)
  module Ad = Dsoa.A

  type functors = Cubic_spline_1d.t array array
  (* indexed by [species_i][species_j]; must be symmetric *)

  let check_functors (ps : Ps.t) (f : functors) =
    let ns = Ps.n_species ps in
    if Array.length f <> ns then
      invalid_arg "Jastrow_two: functor matrix does not match species";
    Array.iter
      (fun row ->
        if Array.length row <> ns then
          invalid_arg "Jastrow_two: functor matrix not square")
      f

  (* u, u'/r and the laplacian stencil u'' + 2u'/r at distance [r];
     all zero at/beyond the cutoff (including r = 0 padding entries,
     which consumers mask out). *)
  let eval_u (fn : Cubic_spline_1d.t) r =
    if r <= 0. || r >= Cubic_spline_1d.cutoff fn then (0., 0., 0.)
    else begin
      let u, du, d2u = Cubic_spline_1d.evaluate_vgl fn r in
      (u, du /. r, d2u +. (2. *. du /. r))
    end

  (* ------------------------------------------------------------------ *)
  (* Optimized implementation                                            *)
  (* ------------------------------------------------------------------ *)

  (* The compute-on-the-fly state, exposed as a record so the scalar
     component closures and the crowd batch kernels share one set of row
     routines (shared code is what makes batch vs scalar bit-identity
     structural rather than coincidental). *)
  type opt = {
    table : Dsoa.t;
    ps : Ps.t;
    n : int;
    ld : int; (* table row stride, for offset-based row reads *)
    functors : functors;
    spec : int array;
    (* Per-electron accumulators: U_k and the gradient/laplacian of
       log ψ. *)
    uat : float array;
    jgx : float array;
    jgy : float array;
    jgz : float array;
    jlap : float array;
    (* Scratch rows for the old and proposed configurations. *)
    un : float array;
    fn_ : float array;
    ln_ : float array;
    uo : float array;
    fo : float array;
    lo : float array;
    (* Row mirrors (see Aligned.read_into): distance and displacement
       rows are staged in unboxed scratch so the inner loops never touch
       the precision functor per element. *)
    mdr : float array;
    mtx : float array;
    mty : float array;
    mtz : float array;
    mox : float array;
    moy : float array;
    moz : float array;
    (* Maximal same-species electron runs: one fused spline-row call per
       run instead of a boxed per-pair dispatch. *)
    run_lo : int array;
    run_n : int array;
    run_sp : int array;
  }

  (* Maximal runs of equal values in [spec] (electrons are laid out
     species by species, so this is one run per species; the construction
     does not rely on it). *)
  let species_runs (spec : int array) =
    let runs = ref [] in
    let i = ref 0 in
    let len = Array.length spec in
    while !i < len do
      let j = ref !i in
      while !j < len && spec.(!j) = spec.(!i) do incr j done;
      runs := (!i, !j - !i, spec.(!i)) :: !runs;
      i := !j
    done;
    Array.of_list (List.rev !runs)

  let make_opt ~(table : Dsoa.t) ~(functors : functors) (ps : Ps.t) : opt =
    check_functors ps functors;
    let n = Ps.n ps in
    let spec = Array.init n (fun i -> Ps.species_index ps i) in
    let runs = species_runs spec in
    {
      table;
      ps;
      n;
      ld = Dsoa.row_stride table;
      functors;
      spec;
      uat = Array.make n 0.;
      jgx = Array.make n 0.;
      jgy = Array.make n 0.;
      jgz = Array.make n 0.;
      jlap = Array.make n 0.;
      un = Array.make n 0.;
      fn_ = Array.make n 0.;
      ln_ = Array.make n 0.;
      uo = Array.make n 0.;
      fo = Array.make n 0.;
      lo = Array.make n 0.;
      mdr = Array.make n 0.;
      mtx = Array.make n 0.;
      mty = Array.make n 0.;
      mtz = Array.make n 0.;
      mox = Array.make n 0.;
      moy = Array.make n 0.;
      moz = Array.make n 0.;
      run_lo = Array.map (fun (lo, _, _) -> lo) runs;
      run_n = Array.map (fun (_, rn, _) -> rn) runs;
      run_sp = Array.map (fun (_, _, sp) -> sp) runs;
    }

  (* Fill u/f/l rows for electron k against a distance row given as
     backing storage + offset (no proxy allocation): bulk-stage the row,
     one fused spline call per species run, then zero the self entry
     exactly as the scalar branch did (its distance is 0, which the
     spline guard zeroes as well). *)
  let fill_row_from st k (dist : Ad.t) off ~u ~f ~l =
    let fk = st.functors.(st.spec.(k)) in
    Ad.read_into dist ~pos:off st.mdr ~n:st.n;
    for r = 0 to Array.length st.run_lo - 1 do
      Cubic_spline_1d.evaluate_ufl_row fk.(st.run_sp.(r)) st.mdr
        ~off:st.run_lo.(r) ~n:st.run_n.(r) ~u ~f ~l
    done;
    u.(k) <- 0.;
    f.(k) <- 0.;
    l.(k) <- 0.

  let sum st (arr : float array) =
    let acc = ref 0. in
    for i = 0 to st.n - 1 do
      acc := !acc +. arr.(i)
    done;
    !acc

  (* Recompute one electron's accumulators from its (fresh) table row. *)
  let compute_one st k =
    Dsoa.prepare st.table st.ps k;
    let off = k * st.ld in
    fill_row_from st k (Dsoa.dist_data st.table) off ~u:st.un ~f:st.fn_
      ~l:st.ln_;
    Ad.read_into (Dsoa.dx_data st.table) ~pos:off st.mox ~n:st.n;
    Ad.read_into (Dsoa.dy_data st.table) ~pos:off st.moy ~n:st.n;
    Ad.read_into (Dsoa.dz_data st.table) ~pos:off st.moz ~n:st.n;
    let ax = ref 0. and ay = ref 0. and az = ref 0. in
    let al = ref 0. and su = ref 0. in
    let fn = st.fn_ in
    for i = 0 to st.n - 1 do
      ax := !ax +. (fn.(i) *. st.mox.(i));
      ay := !ay +. (fn.(i) *. st.moy.(i));
      az := !az +. (fn.(i) *. st.moz.(i));
      al := !al +. st.ln_.(i);
      su := !su +. st.un.(i)
    done;
    st.uat.(k) <- !su;
    st.jgx.(k) <- !ax;
    st.jgy.(k) <- !ay;
    st.jgz.(k) <- !az;
    st.jlap.(k) <- -. !al

  (* Old row from the table (refreshed by the engine's prepare), new row
     from the temporary move row. *)
  let compute_rows st k =
    fill_row_from st k (Dsoa.dist_data st.table) (k * st.ld) ~u:st.uo
      ~f:st.fo ~l:st.lo;
    fill_row_from st k (Dsoa.temp_dist st.table) 0 ~u:st.un ~f:st.fn_
      ~l:st.ln_

  (* Incremental update of every electron's accumulators using the cached
     old/new rows; must run before the table accepts. *)
  let accept_one st k =
    let off = k * st.ld in
    Ad.read_into (Dsoa.temp_dx st.table) ~pos:0 st.mtx ~n:st.n;
    Ad.read_into (Dsoa.temp_dy st.table) ~pos:0 st.mty ~n:st.n;
    Ad.read_into (Dsoa.temp_dz st.table) ~pos:0 st.mtz ~n:st.n;
    Ad.read_into (Dsoa.dx_data st.table) ~pos:off st.mox ~n:st.n;
    Ad.read_into (Dsoa.dy_data st.table) ~pos:off st.moy ~n:st.n;
    Ad.read_into (Dsoa.dz_data st.table) ~pos:off st.moz ~n:st.n;
    let ax = ref 0. and ay = ref 0. and az = ref 0. in
    let al = ref 0. and su = ref 0. in
    let fn = st.fn_ and fo = st.fo in
    for i = 0 to st.n - 1 do
      if i <> k then begin
        st.uat.(i) <- st.uat.(i) +. st.un.(i) -. st.uo.(i);
        (* Pair (i,k) contribution to ∇_i log ψ is −f · dr(k,i). *)
        st.jgx.(i) <-
          st.jgx.(i) -. (fn.(i) *. st.mtx.(i)) +. (fo.(i) *. st.mox.(i));
        st.jgy.(i) <-
          st.jgy.(i) -. (fn.(i) *. st.mty.(i)) +. (fo.(i) *. st.moy.(i));
        st.jgz.(i) <-
          st.jgz.(i) -. (fn.(i) *. st.mtz.(i)) +. (fo.(i) *. st.moz.(i));
        st.jlap.(i) <- st.jlap.(i) -. st.ln_.(i) +. st.lo.(i);
        ax := !ax +. (fn.(i) *. st.mtx.(i));
        ay := !ay +. (fn.(i) *. st.mty.(i));
        az := !az +. (fn.(i) *. st.mtz.(i));
        al := !al +. st.ln_.(i)
      end
    done;
    (* Σ over the new row, in [sum]'s left-to-right order. *)
    for i = 0 to st.n - 1 do
      su := !su +. st.un.(i)
    done;
    st.uat.(k) <- !su;
    st.jgx.(k) <- !ax;
    st.jgy.(k) <- !ay;
    st.jgz.(k) <- !az;
    st.jlap.(k) <- -. !al

  (* ---- crowd batch kernels: one fused call per stage per crowd ---- *)

  let ratio_grad_batch (sts : opt array) ~k ~m ~(ratio : float array)
      ~(gx : float array) ~(gy : float array) ~(gz : float array) =
    for s = 0 to m - 1 do
      let st = sts.(s) in
      compute_rows st k;
      Ad.read_into (Dsoa.temp_dx st.table) ~pos:0 st.mtx ~n:st.n;
      Ad.read_into (Dsoa.temp_dy st.table) ~pos:0 st.mty ~n:st.n;
      Ad.read_into (Dsoa.temp_dz st.table) ~pos:0 st.mtz ~n:st.n;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let so = ref 0. and sn = ref 0. in
      let fn = st.fn_ in
      for i = 0 to st.n - 1 do
        ax := !ax +. (fn.(i) *. st.mtx.(i));
        ay := !ay +. (fn.(i) *. st.mty.(i));
        az := !az +. (fn.(i) *. st.mtz.(i));
        so := !so +. st.uo.(i);
        sn := !sn +. st.un.(i)
      done;
      ratio.(s) <- ratio.(s) *. exp (!so -. !sn);
      gx.(s) <- gx.(s) +. !ax;
      gy.(s) <- gy.(s) +. !ay;
      gz.(s) <- gz.(s) +. !az
    done

  let grad_batch (sts : opt array) ~k ~m ~(gx : float array)
      ~(gy : float array) ~(gz : float array) =
    for s = 0 to m - 1 do
      let st = sts.(s) in
      gx.(s) <- gx.(s) +. st.jgx.(k);
      gy.(s) <- gy.(s) +. st.jgy.(k);
      gz.(s) <- gz.(s) +. st.jgz.(k)
    done

  let accept_batch (sts : opt array) ~k ~m ~(acc : bool array) =
    for s = 0 to m - 1 do
      if acc.(s) then accept_one sts.(s) k
    done

  (* ---- the W.t component over an [opt] state ---- *)

  let opt_component (st : opt) : W.t =
    let n = st.n in
    let evaluate_log _ps =
      for k = 0 to n - 1 do
        compute_one st k
      done;
      -0.5 *. sum st st.uat
    in
    let ratio _ps k =
      compute_rows st k;
      exp (sum st st.uo -. sum st st.un)
    in
    let ratio_grad _ps k =
      compute_rows st k;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      let tx = Dsoa.temp_dx st.table and ty = Dsoa.temp_dy st.table in
      let tz = Dsoa.temp_dz st.table in
      let fn = st.fn_ in
      for i = 0 to n - 1 do
        ax := !ax +. (fn.(i) *. Ad.unsafe_get tx i);
        ay := !ay +. (fn.(i) *. Ad.unsafe_get ty i);
        az := !az +. (fn.(i) *. Ad.unsafe_get tz i)
      done;
      (exp (sum st st.uo -. sum st st.un), Vec3.make !ax !ay !az)
    in
    let grad _ps k = Vec3.make st.jgx.(k) st.jgy.(k) st.jgz.(k) in
    let accept _ps k = accept_one st k in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        g.W.ggx.(k) <- g.W.ggx.(k) +. st.jgx.(k);
        g.W.ggy.(k) <- g.W.ggy.(k) +. st.jgy.(k);
        g.W.ggz.(k) <- g.W.ggz.(k) +. st.jgz.(k);
        g.W.glap.(k) <- g.W.glap.(k) +. st.jlap.(k)
      done
    in
    let register buf =
      for _ = 1 to 5 * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      Wbuffer.put_array buf st.uat;
      Wbuffer.put_array buf st.jgx;
      Wbuffer.put_array buf st.jgy;
      Wbuffer.put_array buf st.jgz;
      Wbuffer.put_array buf st.jlap
    in
    let copy_from_buffer _ps buf =
      let rd a =
        for i = 0 to n - 1 do
          a.(i) <- Wbuffer.get buf
        done
      in
      rd st.uat;
      rd st.jgx;
      rd st.jgy;
      rd st.jgz;
      rd st.jlap
    in
    let bytes () = 5 * n * 8 in
    {
      W.name = "J2-opt";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }

  let create_opt ~(table : Dsoa.t) ~(functors : functors) (ps : Ps.t) : W.t =
    opt_component (make_opt ~table ~functors ps)

  (* ------------------------------------------------------------------ *)
  (* Reference implementation                                            *)
  (* ------------------------------------------------------------------ *)

  let create_ref ~(table : Dref.t) ~(functors : functors) (ps : Ps.t) : W.t =
    check_functors ps functors;
    let n = Ps.n ps in
    (* The 5N² stored scalars: values, AoS gradients, laplacian terms. *)
    let umat = A.create (n * n) in
    let dumat = A.create (3 * n * n) in
    let d2umat = A.create (n * n) in
    (* Scratch for the proposed row. *)
    let un = Array.make n 0. and fn = Array.make n 0. in
    let ln = Array.make n 0. in
    let spec = Array.init n (fun i -> Ps.species_index ps i) in
    let fill_new_row k =
      let fk = functors.(spec.(k)) in
      let td = Dref.temp_dist table in
      for i = 0 to n - 1 do
        if i = k then begin
          un.(i) <- 0.;
          fn.(i) <- 0.;
          ln.(i) <- 0.
        end
        else begin
          let ui, fi, li = eval_u fk.(spec.(i)) (A.get td i) in
          un.(i) <- ui;
          fn.(i) <- fi;
          ln.(i) <- li
        end
      done
    in
    let evaluate_log _ps =
      let logv = ref 0. in
      for k = 0 to n - 1 do
        let fk = functors.(spec.(k)) in
        for i = 0 to n - 1 do
          if i <> k then begin
            let d = Dref.dist table k i in
            let u, f, l = eval_u fk.(spec.(i)) d in
            let dr = Dref.displ table k i in
            (* displ k i = r_i − r_k = dr(k,i). *)
            let p = (k * n) + i in
            A.set umat p u;
            A.set dumat (3 * p) (f *. dr.Vec3.x);
            A.set dumat ((3 * p) + 1) (f *. dr.Vec3.y);
            A.set dumat ((3 * p) + 2) (f *. dr.Vec3.z);
            A.set d2umat p l;
            if i > k then logv := !logv -. u
          end
          else begin
            let p = (k * n) + i in
            A.set umat p 0.;
            A.set dumat (3 * p) 0.;
            A.set dumat ((3 * p) + 1) 0.;
            A.set dumat ((3 * p) + 2) 0.;
            A.set d2umat p 0.
          end
        done
      done;
      !logv
    in
    let delta k =
      (* Σ_i u(new) − u(stored): new from spline evals, old retrieved. *)
      let acc = ref 0. in
      for i = 0 to n - 1 do
        if i <> k then acc := !acc +. un.(i) -. A.get umat ((k * n) + i)
      done;
      !acc
    in
    let ratio _ps k =
      fill_new_row k;
      exp (-.delta k)
    in
    let ratio_grad _ps k =
      fill_new_row k;
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to n - 1 do
        if i <> k then begin
          let dr = Dref.temp_displ table i in
          ax := !ax +. (fn.(i) *. dr.Vec3.x);
          ay := !ay +. (fn.(i) *. dr.Vec3.y);
          az := !az +. (fn.(i) *. dr.Vec3.z)
        end
      done;
      (exp (-.delta k), Vec3.make !ax !ay !az)
    in
    let grad _ps k =
      let ax = ref 0. and ay = ref 0. and az = ref 0. in
      for i = 0 to n - 1 do
        let p = 3 * ((k * n) + i) in
        ax := !ax +. A.get dumat p;
        ay := !ay +. A.get dumat (p + 1);
        az := !az +. A.get dumat (p + 2)
      done;
      Vec3.make !ax !ay !az
    in
    let accept _ps k =
      (* Row and column updates of all three matrices (the Ref memory
         traffic the paper eliminates). *)
      for i = 0 to n - 1 do
        if i <> k then begin
          let dr = Dref.temp_displ table i in
          let prow = (k * n) + i and pcol = (i * n) + k in
          A.set umat prow un.(i);
          A.set umat pcol un.(i);
          A.set dumat (3 * prow) (fn.(i) *. dr.Vec3.x);
          A.set dumat ((3 * prow) + 1) (fn.(i) *. dr.Vec3.y);
          A.set dumat ((3 * prow) + 2) (fn.(i) *. dr.Vec3.z);
          (* dr(i,k) = −dr(k,i). *)
          A.set dumat (3 * pcol) (-.fn.(i) *. dr.Vec3.x);
          A.set dumat ((3 * pcol) + 1) (-.fn.(i) *. dr.Vec3.y);
          A.set dumat ((3 * pcol) + 2) (-.fn.(i) *. dr.Vec3.z);
          A.set d2umat prow ln.(i);
          A.set d2umat pcol ln.(i)
        end
      done
    in
    let reject _ps _k = () in
    let accumulate_gl _ps (g : W.gl) =
      for k = 0 to n - 1 do
        let ax = ref 0. and ay = ref 0. and az = ref 0. in
        let al = ref 0. in
        for i = 0 to n - 1 do
          let p = (k * n) + i in
          ax := !ax +. A.get dumat (3 * p);
          ay := !ay +. A.get dumat ((3 * p) + 1);
          az := !az +. A.get dumat ((3 * p) + 2);
          al := !al +. A.get d2umat p
        done;
        g.W.ggx.(k) <- g.W.ggx.(k) +. !ax;
        g.W.ggy.(k) <- g.W.ggy.(k) +. !ay;
        g.W.ggz.(k) <- g.W.ggz.(k) +. !az;
        g.W.glap.(k) <- g.W.glap.(k) -. !al
      done
    in
    let register buf =
      for _ = 1 to 5 * n * n do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      for p = 0 to (n * n) - 1 do
        Wbuffer.put buf (A.get umat p)
      done;
      for p = 0 to (3 * n * n) - 1 do
        Wbuffer.put buf (A.get dumat p)
      done;
      for p = 0 to (n * n) - 1 do
        Wbuffer.put buf (A.get d2umat p)
      done
    in
    let copy_from_buffer _ps buf =
      for p = 0 to (n * n) - 1 do
        A.set umat p (Wbuffer.get buf)
      done;
      for p = 0 to (3 * n * n) - 1 do
        A.set dumat p (Wbuffer.get buf)
      done;
      for p = 0 to (n * n) - 1 do
        A.set d2umat p (Wbuffer.get buf)
      done
    in
    let bytes () = A.bytes umat + A.bytes dumat + A.bytes d2umat in
    {
      W.name = "J2-ref";
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }
end
