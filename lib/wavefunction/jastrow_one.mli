open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(** One-body Jastrow factor, log ψ = −Σ_{k,I} u_{s(I)}(r_kI), with a
    radial functor per ion species, in the Ref (stored N × N_ion
    matrices) and Current (5N accumulators, compute-on-the-fly)
    designs.

    [R] is the walker precision, [D] the SoA distance-table storage
    precision (the [precision_dt] knob) threaded through to the opt
    path's table reads; sums accumulate in double either way. *)

module Make (R : Precision.REAL) (D : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps
  module A : module type of Aligned.Make (R)
  module Dref : module type of Dt_ab_ref.Make (R)
  module Dsoa : module type of Dt_ab_soa.Make (R) (D)

  type functors = Cubic_spline_1d.t array
  (** Indexed by ion species. *)

  val create_opt :
    table:Dsoa.t -> functors:functors -> ions:Ps.t -> Ps.t -> W.t
  (** @raise Invalid_argument if the functor count does not match the ion
      species. *)

  type opt
  (** Compute-on-the-fly state, exposed so crowds can drive the batch
      kernels directly; [opt_component] wraps it as the usual {!W.t}
      (and [create_opt] = [make_opt] + [opt_component]).  The scalar
      closures and the batch kernels share the same row routines, so
      batched results are bit-identical to the scalar path. *)

  val make_opt :
    table:Dsoa.t -> functors:functors -> ions:Ps.t -> Ps.t -> opt

  val opt_component : opt -> W.t

  val ratio_grad_batch :
    opt array -> k:int -> m:int -> ratio:float array -> gx:float array ->
    gy:float array -> gz:float array -> unit
  (** Fused acceptance-ratio + proposed-point gradient over slots
      [0..m-1]: multiplies each [ratio.(s)] and accumulates into the
      gradient slots, matching the trial-wavefunction accumulation
      order.  The slot's table temp row must already hold the proposed
      move. *)

  val grad_batch :
    opt array -> k:int -> m:int -> gx:float array -> gy:float array ->
    gz:float array -> unit

  val accept_batch : opt array -> k:int -> m:int -> acc:bool array -> unit
  (** Per accepted slot, identical to the scalar component accept; must
      run before the table accepts (scratch holds the proposed row). *)

  val create_ref :
    table:Dref.t -> functors:functors -> ions:Ps.t -> Ps.t -> W.t
end
