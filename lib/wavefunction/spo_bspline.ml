open Oqmc_containers
open Oqmc_particle

(* B-spline-backed SPO engine.

   Wraps a periodic tricubic table: Cartesian positions are mapped to
   fractional coordinates, and the table's fractional-coordinate
   derivatives are pushed through the cell metric —
   ∇ᵣφ = Σ_b g_b (∂φ/∂s_b) and ∇²φ = Σ_{bc} (g_b·g_c) H_s(b,c) — so the
   Slater determinant sees Cartesian gradients and laplacians.  The table
   is read-only and shared by every walker and thread, as in QMCPACK.

   Scratch, by contrast, is never shared: the scalar path keeps one
   [vgh_buf] per domain (domain-local storage), and each batched context
   owns a crowd-sized arena, so parallel engines over the same [Spo.t]
   cannot trample each other's intermediates.

   Two backing layouts share every line of the metric/batching code
   below: the flat multi-spline table ({!create}) and the tiled AoSoA
   table ({!create_tiled}); the tiled arenas are the flat module's record
   types with full-width result slots, so only the table operations
   differ.  Each layout carries its own Timers keys so the production
   timing call sites attribute flat and tiled kernels separately. *)

module Make (R : Precision.REAL) = struct
  module B3 = Oqmc_spline.Bspline3d.Make (R)
  module T3 = Oqmc_spline.Bspline3d_tiled.Make (R)

  (* Layout-independent construction: everything after "a table that can
     evaluate batches into B3 arenas" is shared between flat and tiled. *)
  let build ~n ~table_bytes ~label ~v_key ~vgh_key ~(lattice : Lattice.t)
      ~(make_scratch : unit -> B3.vgh_buf)
      ~(tab_eval_v : u0:float -> u1:float -> u2:float -> float array -> unit)
      ~(tab_eval_vgh : u0:float -> u1:float -> u2:float -> B3.vgh_buf -> unit)
      ~(make_vgh_arena : cap:int -> B3.vgh_batch)
      ~(run_vgh :
         B3.vgh_batch ->
         n:int ->
         u0:float array ->
         u1:float array ->
         u2:float array ->
         unit)
      ~(make_v_arena : cap:int -> B3.v_batch)
      ~(run_v :
         B3.v_batch ->
         n:int ->
         u0:float array ->
         u1:float array ->
         u2:float array ->
         unit) : Spo.t =
    (* One scalar scratch buffer per domain: the Spo.t closure is shared
       across all domain engines, so a single captured buffer would race. *)
    let scratch = Domain.DLS.new_key make_scratch in
    (* Rows g_b of the inverse cell: ∂s_b/∂r_a = g_b[a]. *)
    let g = Lattice.frac_rows lattice in
    let g0 = g.(0) and g1 = g.(1) and g2 = g.(2) in
    (* Metric coefficients m_bc = g_b · g_c for the laplacian. *)
    let m00 = Vec3.dot g0 g0 and m11 = Vec3.dot g1 g1 in
    let m22 = Vec3.dot g2 g2 in
    let m01 = Vec3.dot g0 g1 and m02 = Vec3.dot g0 g2 in
    let m12 = Vec3.dot g1 g2 in
    (* Push one table result buffer through the metric into [out]. *)
    let to_cartesian (buf : B3.vgh_buf) (out : Spo.vgl) =
      for m = 0 to n - 1 do
        let dv0 = buf.B3.gx.(m) and dv1 = buf.B3.gy.(m) in
        let dv2 = buf.B3.gz.(m) in
        out.Spo.v.(m) <- buf.B3.v.(m);
        (* ∇ᵣφ[a] = Σ_b (∂φ/∂s_b) g_b[a]. *)
        out.Spo.gx.(m) <-
          (dv0 *. g0.Vec3.x) +. (dv1 *. g1.Vec3.x) +. (dv2 *. g2.Vec3.x);
        out.Spo.gy.(m) <-
          (dv0 *. g0.Vec3.y) +. (dv1 *. g1.Vec3.y) +. (dv2 *. g2.Vec3.y);
        out.Spo.gz.(m) <-
          (dv0 *. g0.Vec3.z) +. (dv1 *. g1.Vec3.z) +. (dv2 *. g2.Vec3.z);
        out.Spo.lap.(m) <-
          (m00 *. buf.B3.hxx.(m))
          +. (m11 *. buf.B3.hyy.(m))
          +. (m22 *. buf.B3.hzz.(m))
          +. (2. *. m01 *. buf.B3.hxy.(m))
          +. (2. *. m02 *. buf.B3.hxz.(m))
          +. (2. *. m12 *. buf.B3.hyz.(m))
      done
    in
    let eval_v (r : Vec3.t) out =
      let s = Lattice.to_frac lattice r in
      tab_eval_v ~u0:s.Vec3.x ~u1:s.Vec3.y ~u2:s.Vec3.z out
    in
    let eval_vgl (r : Vec3.t) (out : Spo.vgl) =
      let buf = Domain.DLS.get scratch in
      let s = Lattice.to_frac lattice r in
      tab_eval_vgh ~u0:s.Vec3.x ~u1:s.Vec3.y ~u2:s.Vec3.z buf;
      to_cartesian buf out
    in
    (* Native crowd batches: fractional coordinates for the whole crowd
       are staged into the context's arrays, the table's batched kernel
       computes every walker's 1-D weights once and streams coefficient
       blocks, then each slot is pushed through the metric. *)
    let make_vgl_batch cap =
      if cap < 1 then invalid_arg "Spo_bspline.make_vgl_batch: cap < 1";
      let arena = make_vgh_arena ~cap in
      let slots = Array.init cap (fun _ -> Spo.make_vgl n) in
      let u0 = Array.make cap 0. in
      let u1 = Array.make cap 0. in
      let u2 = Array.make cap 0. in
      let run (pos : Vec3.t array) nw =
        (* Inline [Lattice.to_frac] field-wise: the batched path must
           stay allocation-free, and both to_frac's result Vec3 and a
           cross-module [Vec3.dot]'s boxed float return would allocate
           per slot without flambda. *)
        for s = 0 to nw - 1 do
          let r = pos.(s) in
          let x = r.Vec3.x and y = r.Vec3.y and z = r.Vec3.z in
          u0.(s) <- (g0.Vec3.x *. x) +. (g0.Vec3.y *. y) +. (g0.Vec3.z *. z);
          u1.(s) <- (g1.Vec3.x *. x) +. (g1.Vec3.y *. y) +. (g1.Vec3.z *. z);
          u2.(s) <- (g2.Vec3.x *. x) +. (g2.Vec3.y *. y) +. (g2.Vec3.z *. z)
        done;
        run_vgh arena ~n:nw ~u0 ~u1 ~u2;
        for s = 0 to nw - 1 do
          to_cartesian arena.B3.outs.(s) slots.(s)
        done
      in
      { Spo.cap; slots; run }
    in
    let make_v_batch cap =
      if cap < 1 then invalid_arg "Spo_bspline.make_v_batch: cap < 1";
      let arena = make_v_arena ~cap in
      let u0 = Array.make cap 0. in
      let u1 = Array.make cap 0. in
      let u2 = Array.make cap 0. in
      let vrun (pos : Vec3.t array) nw =
        for s = 0 to nw - 1 do
          let r = pos.(s) in
          let x = r.Vec3.x and y = r.Vec3.y and z = r.Vec3.z in
          u0.(s) <- (g0.Vec3.x *. x) +. (g0.Vec3.y *. y) +. (g0.Vec3.z *. z);
          u1.(s) <- (g1.Vec3.x *. x) +. (g1.Vec3.y *. y) +. (g1.Vec3.z *. z);
          u2.(s) <- (g2.Vec3.x *. x) +. (g2.Vec3.y *. y) +. (g2.Vec3.z *. z)
        done;
        run_v arena ~n:nw ~u0 ~u1 ~u2
      in
      (* Values need no metric conversion: expose the arena's result rows
         directly as the batch slots. *)
      { Spo.vcap = cap; vslots = arena.B3.vouts; vrun }
    in
    Spo.make ~make_vgl_batch ~make_v_batch ~v_key ~vgh_key ~n_orb:n ~label
      ~eval_v ~eval_vgl ~bytes:table_bytes ()

  let create ~(table : B3.t) ~(lattice : Lattice.t) : Spo.t =
    build ~n:(B3.n_orb table) ~table_bytes:(B3.bytes table)
      ~label:(Printf.sprintf "bspline-%s" R.name)
      ~v_key:"Bspline-v" ~vgh_key:"Bspline-vgh" ~lattice
      ~make_scratch:(fun () -> B3.make_vgh_buf table)
      ~tab_eval_v:(fun ~u0 ~u1 ~u2 out -> B3.eval_v table ~u0 ~u1 ~u2 out)
      ~tab_eval_vgh:(fun ~u0 ~u1 ~u2 buf -> B3.eval_vgh table ~u0 ~u1 ~u2 buf)
      ~make_vgh_arena:(fun ~cap -> B3.make_vgh_batch table ~cap)
      ~run_vgh:(fun arena ~n ~u0 ~u1 ~u2 ->
        B3.eval_vgh_batch table arena ~n ~u0 ~u1 ~u2)
      ~make_v_arena:(fun ~cap -> B3.make_v_batch table ~cap)
      ~run_v:(fun arena ~n ~u0 ~u1 ~u2 ->
        B3.eval_v_batch table arena ~n ~u0 ~u1 ~u2)

  let create_tiled ~(table : T3.t) ~(lattice : Lattice.t) : Spo.t =
    build ~n:(T3.n_orb table) ~table_bytes:(T3.bytes table)
      ~label:
        (Printf.sprintf "bspline-tiled%d-%s" (T3.tile_size table) R.name)
      ~v_key:"Bspline-v-tiled" ~vgh_key:"Bspline-vgh-tiled" ~lattice
      ~make_scratch:(fun () -> T3.make_vgh_buf table)
      ~tab_eval_v:(fun ~u0 ~u1 ~u2 out -> T3.eval_v table ~u0 ~u1 ~u2 out)
      ~tab_eval_vgh:(fun ~u0 ~u1 ~u2 buf -> T3.eval_vgh table ~u0 ~u1 ~u2 buf)
      ~make_vgh_arena:(fun ~cap -> T3.make_vgh_batch table ~cap)
      ~run_vgh:(fun arena ~n ~u0 ~u1 ~u2 ->
        T3.eval_vgh_batch table arena ~n ~u0 ~u1 ~u2)
      ~make_v_arena:(fun ~cap -> T3.make_v_batch table ~cap)
      ~run_v:(fun arena ~n ~u0 ~u1 ~u2 ->
        T3.eval_v_batch table arena ~n ~u0 ~u1 ~u2)
end
