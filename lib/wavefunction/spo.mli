open Oqmc_containers

(** Single-particle-orbital engine interface (QMCPACK's SPOSet): evaluates
    all orbitals — values (Bspline-v) or values + Cartesian gradients +
    laplacians (SPO-vgl) — at one electron position, into caller-owned
    double-precision buffers.  Engines are records of closures, dispatched
    at run time as QMCPACK dispatches SPOSet virtually.

    Batched contexts evaluate a whole crowd of positions per call so a
    native backend can amortize stencil/weight work across walkers; a
    context owns its scratch and result slots and must never be shared
    between domains. *)

type vgl = {
  v : float array;
  gx : float array;
  gy : float array;
  gz : float array;
  lap : float array;
}

type vgl_batch = {
  cap : int;
  slots : vgl array;
  run : Vec3.t array -> int -> unit;
      (** [run pos n] evaluates [pos.(0..n-1)] into [slots.(0..n-1)]. *)
}

type v_batch = {
  vcap : int;
  vslots : float array array;
  vrun : Vec3.t array -> int -> unit;
}

type t = {
  n_orb : int;
  label : string;
  v_key : string;
      (** {!Oqmc_containers.Timers} key charged for value evaluations
          ("Bspline-v"; the tiled engine uses "Bspline-v-tiled").  The
          consumers' timing call sites read these fields, so an engine
          with its own keys shows up in [Timers.pp], the trace span shim
          and the roofline audit without any new call sites. *)
  vgh_key : string;  (** ditto for value+derivative evaluations *)
  eval_v : Vec3.t -> float array -> unit;
  eval_vgl : Vec3.t -> vgl -> unit;
  make_vgl_batch : int -> vgl_batch;
      (** Fresh batch context with the given capacity (>= 1). *)
  make_v_batch : int -> v_batch;
  bytes : int;  (** backing-table storage, shared across walkers/threads *)
}

val make_vgl : int -> vgl
val grad_of : vgl -> int -> Vec3.t

val make :
  ?make_vgl_batch:(int -> vgl_batch) ->
  ?make_v_batch:(int -> v_batch) ->
  ?v_key:string ->
  ?vgh_key:string ->
  n_orb:int ->
  label:string ->
  eval_v:(Vec3.t -> float array -> unit) ->
  eval_vgl:(Vec3.t -> vgl -> unit) ->
  bytes:int ->
  unit ->
  t
(** Smart constructor: engines without native batched kernels get serial
    fallbacks that loop the scalar evaluators (identical results, no
    amortization). *)
