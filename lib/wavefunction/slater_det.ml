open Oqmc_containers
open Oqmc_linalg

(* Slater determinant component for one spin group.

   The Slater matrix is M(i,j) = φⱼ(r_{first+i}); the engine stores the
   transposed inverse B = M⁻ᵀ so that the determinant ratio for a move of
   electron k is the contiguous row dot B[k]·v (Eq. 6 of the paper) and
   the quantum-force gradient comes from the same row against ∇φ.

   On acceptance B is refreshed either by the Sherman–Morrison BLAS2
   update (the paper's DetUpdate) or by the delayed Woodbury scheme of
   Sec. 8.4.  [evaluate_log] recomputes B from scratch in double
   precision, which is also the periodic mixed-precision refresh.

   The working state is an explicit record so that the scalar component
   closures and the crowd batch entry points ([grad_into],
   [ratio_grad_into], [accept_move]) share the same ratio/dot routines —
   batched crowd sweeps stay bit-identical to the scalar path by
   construction.

   Kernel timing keys come from the SPO engine ([Spo.v_key] /
   [Spo.vgh_key], "Bspline-v"/"Bspline-vgh" for the flat table and the
   "-tiled" variants for the tiled one) for SPO evaluation inside [ratio]
   and [ratio_grad]; SPO-vgl times the per-electron measurement sweep and
   DetUpdate the inverse update.  The crowd entry points are UNtimed: the
   crowd driver wraps each batched stage in a single timer window per
   crowd instead of one per walker.

   Two precisions parameterize the state: [R] is the walker/positions
   precision (particle sets, Wfc interface), [I] the inverse-matrix
   storage precision — B = M⁻ᵀ, the Slater matrix and the delayed-update
   panels narrow through [I] while every dot product and update
   accumulates in double (the precision_inv knob of the mixed-precision
   scheme).  [evaluate_log]'s full recompute doubles as the periodic
   refresh that bounds f32 inverse drift. *)

module Make (R : Precision.REAL) (I : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (I)
  module M = Matrix.Make (I)
  module L = Lu.Make (I)
  module B = Blas.Make (I)
  module Sm = Sherman_morrison.Make (I)
  module Du = Delayed_update.Make (I)

  type scheme = Sherman_morrison | Delayed of int

  type state = {
    spo : Spo.t;
    timers : Timers.t;
    staged : Spo.vgl option ref;
    first : int;
    n : int;
    binv : M.t;
    phim : M.t;
    vgl : Spo.vgl;
    vbuf : float array;
    psiv : A.t;
    ws : Sm.workspace;
    du : Du.t option;
    last_ratio : float ref;
    log_abs : float ref;
    (* Whole-determinant sweeps (recompute, measurement) evaluate all n
       electron positions through one batched kernel call: the scratch
       arena is shared across the rows instead of re-allocated per
       electron.  Lazy so single-move-only paths never pay for it. *)
    row_pos : Vec3.t array;
    v_rows : Spo.v_batch Lazy.t;
    vgl_rows : Spo.vgl_batch Lazy.t;
    dot_scratch : A.t;
    pad : float array; (* unboxed landing pad for staged row dots *)
  }

  let make ?(timers = Timers.null) ?(scheme = Sherman_morrison)
      ?(staged = ref None) ~(spo : Spo.t) ~first ~count (ps : Ps.t) : state =
    let n = count in
    if n < 1 then invalid_arg "Slater_det.create: empty determinant";
    if spo.Spo.n_orb < n then
      invalid_arg "Slater_det.create: fewer orbitals than electrons";
    if first < 0 || first + n > Ps.n ps then
      invalid_arg "Slater_det.create: electron range out of bounds";
    let binv = M.create n n in
    {
      spo;
      timers;
      staged;
      first;
      n;
      binv;
      phim = M.create n n;
      vgl = Spo.make_vgl spo.Spo.n_orb;
      vbuf = Array.make spo.Spo.n_orb 0.;
      psiv = A.create n;
      ws = Sm.make_workspace n;
      du =
        (match scheme with
        | Delayed d -> Some (Du.create ~delay:d binv)
        | Sherman_morrison -> None);
      last_ratio = ref 1.;
      log_abs = ref 0.;
      row_pos = Array.make n Vec3.zero;
      v_rows = lazy (spo.Spo.make_v_batch n);
      vgl_rows = lazy (spo.Spo.make_vgl_batch n);
      dot_scratch = A.create n;
      pad = [| 0. |];
    }

  let in_group st k = k >= st.first && k < st.first + st.n
  let flush st = match st.du with Some d -> Du.flush d | None -> ()

  (* One bulk narrowing store instead of a boxed crossing per element;
     write_from rounds through the storage width exactly like the
     per-element stores it replaces. *)
  let load_psiv st = A.write_from st.vbuf st.psiv ~pos:0 ~n:st.n

  let det_ratio st kl =
    match st.du with
    | Some d -> Du.ratio d kl st.psiv
    | None -> Sm.ratio st.binv kl st.psiv

  (* Row dot of B[kl] against one gradient component, with the delayed
     corrections when a queue is pending. *)
  let corrected_dot st kl (comp : float array) =
    match st.du with
    | Some d when Du.pending d > 0 ->
        (* Route through the delayed ratio on a scratch copy: the
           correction formula is identical for any replacement vector
           ([Du.ratio] only reads it, so the scratch is reusable). *)
        let tmp = st.dot_scratch in
        A.write_from comp tmp ~pos:0 ~n:st.n;
        Du.ratio d kl tmp
    | _ ->
        A.dot_arr_into (M.data st.binv)
          ~pos:(kl * M.ld st.binv)
          comp ~n:st.n st.pad 0;
        st.pad.(0)

  (* Commit the staged move of electron [k] (the engine must have routed
     the matching ratio/ratio_grad through this state first).  Untimed:
     crowd drivers take one DetUpdate window per batched commit stage. *)
  let accept_move st k =
    if in_group st k then begin
      let kl = k - st.first in
      (match st.du with
      | Some d -> Du.accept d kl st.psiv
      | None ->
          Sm.update_row st.binv kl st.psiv ~ratio:!(st.last_ratio)
            ~ws:st.ws);
      st.log_abs := !(st.log_abs) +. log (abs_float !(st.last_ratio))
    end

  (* Crowd gradient stage: accumulate ∇ log D at the CURRENT position of
     electron [k] into slot [s], from a pre-computed SPO result.
     Out-of-group electrons contribute exactly +0. in the scalar path, so
     skipping them leaves the accumulators bit-identical. *)
  let grad_into st (vgl : Spo.vgl) k ~s ~(gx : float array)
      ~(gy : float array) ~(gz : float array) =
    if in_group st k then begin
      let kl = k - st.first in
      let denom = corrected_dot st kl vgl.Spo.v in
      gx.(s) <- gx.(s) +. (corrected_dot st kl vgl.Spo.gx /. denom);
      gy.(s) <- gy.(s) +. (corrected_dot st kl vgl.Spo.gy /. denom);
      gz.(s) <- gz.(s) +. (corrected_dot st kl vgl.Spo.gz /. denom)
    end

  (* Crowd ratio+gradient stage at the PROPOSED position: multiplies
     [ratio.(s)] (out-of-group factor is exactly 1., so skipping is
     bit-identical) and accumulates the gradient.  Mirrors the scalar
     [ratio_grad] arithmetic exactly, including the near-singular
     zero-gradient guard. *)
  let ratio_grad_into st (vgl : Spo.vgl) k ~s ~(ratio : float array)
      ~(gx : float array) ~(gy : float array) ~(gz : float array) =
    if in_group st k then begin
      let kl = k - st.first in
      Array.blit vgl.Spo.v 0 st.vbuf 0 st.n;
      load_psiv st;
      let r = det_ratio st kl in
      st.last_ratio := r;
      ratio.(s) <- ratio.(s) *. r;
      if abs_float r >= 1e-300 then begin
        gx.(s) <- gx.(s) +. (corrected_dot st kl vgl.Spo.gx /. r);
        gy.(s) <- gy.(s) +. (corrected_dot st kl vgl.Spo.gy /. r);
        gz.(s) <- gz.(s) +. (corrected_dot st kl vgl.Spo.gz /. r)
      end
    end

  (* ---- the W.t component over a [state] ---- *)

  let component (st : state) : W.t =
    let n = st.n and first = st.first in
    let spo = st.spo and timers = st.timers in
    (* A crowd driver may stage a pre-computed SPO result for the
       position the next in-group grad/ratio_grad would evaluate; it is
       consumed exactly once (the batch slot is reused for the next
       lockstep step).  The batch kernel times itself, so no Bspline-vgh
       sample is recorded here for staged evaluations. *)
    let take_staged eval =
      match !(st.staged) with
      | Some s ->
          st.staged := None;
          s
      | None ->
          Timers.time timers spo.Spo.vgh_key (fun () -> eval st.vgl);
          st.vgl
    in
    let load_row_pos ps =
      for i = 0 to n - 1 do
        st.row_pos.(i) <- Ps.get ps (first + i)
      done
    in
    let evaluate_log ps =
      flush st;
      let b = Lazy.force st.v_rows in
      load_row_pos ps;
      Timers.time timers spo.Spo.v_key (fun () -> b.Spo.vrun st.row_pos n);
      for i = 0 to n - 1 do
        A.write_from b.Spo.vslots.(i) (M.data st.phim)
          ~pos:(i * M.ld st.phim) ~n
      done;
      let _sign, logd =
        Timers.time timers "DetUpdate" (fun () ->
            L.invert_transpose ~src:st.phim ~dst:st.binv)
      in
      st.log_abs := logd;
      logd
    in
    let ratio ps k =
      if not (in_group st k) then 1.
      else begin
        Timers.time timers spo.Spo.v_key (fun () ->
            spo.Spo.eval_v (Ps.active_pos ps) st.vbuf);
        load_psiv st;
        let r =
          Timers.time timers "DetUpdate" (fun () -> det_ratio st (k - first))
        in
        st.last_ratio := r;
        r
      end
    in
    let ratio_grad ps k =
      if not (in_group st k) then (1., Vec3.zero)
      else begin
        let kl = k - first in
        let vgl = take_staged (spo.Spo.eval_vgl (Ps.active_pos ps)) in
        Array.blit vgl.Spo.v 0 st.vbuf 0 n;
        load_psiv st;
        let r = Timers.time timers "DetUpdate" (fun () -> det_ratio st kl) in
        st.last_ratio := r;
        if abs_float r < 1e-300 then (r, Vec3.zero)
        else begin
          let gx = corrected_dot st kl vgl.Spo.gx /. r in
          let gy = corrected_dot st kl vgl.Spo.gy /. r in
          let gz = corrected_dot st kl vgl.Spo.gz /. r in
          (r, Vec3.make gx gy gz)
        end
      end
    in
    let grad ps k =
      if not (in_group st k) then Vec3.zero
      else begin
        let kl = k - first in
        let vgl = take_staged (spo.Spo.eval_vgl (Ps.get ps k)) in
        (* The denominator is 1 in exact arithmetic (row kl of M is the
           orbital vector at r_k); dividing by it stabilizes the mixed
           precision path.  With pending delayed updates every dot routes
           through the corrected form. *)
        let denom = corrected_dot st kl vgl.Spo.v in
        Vec3.make
          (corrected_dot st kl vgl.Spo.gx /. denom)
          (corrected_dot st kl vgl.Spo.gy /. denom)
          (corrected_dot st kl vgl.Spo.gz /. denom)
      end
    in
    let accept _ps k =
      if in_group st k then
        Timers.time timers "DetUpdate" (fun () -> accept_move st k)
    in
    let reject _ps _k = () in
    let accumulate_gl ps (g : W.gl) =
      flush st;
      let b = Lazy.force st.vgl_rows in
      load_row_pos ps;
      Timers.time timers "SPO-vgl" (fun () -> b.Spo.run st.row_pos n);
      for i = 0 to n - 1 do
        let k = first + i in
        let vgl = b.Spo.slots.(i) in
        let dot comp =
          A.dot_arr_into (M.data st.binv)
            ~pos:(i * M.ld st.binv)
            comp ~n st.pad 0;
          st.pad.(0)
        in
        let denom = dot vgl.Spo.v in
        let gx = dot vgl.Spo.gx /. denom in
        let gy = dot vgl.Spo.gy /. denom in
        let gz = dot vgl.Spo.gz /. denom in
        let lap = dot vgl.Spo.lap /. denom in
        g.W.ggx.(k) <- g.W.ggx.(k) +. gx;
        g.W.ggy.(k) <- g.W.ggy.(k) +. gy;
        g.W.ggz.(k) <- g.W.ggz.(k) +. gz;
        (* ∇² log D = ∇²D/D − |∇D/D|². *)
        g.W.glap.(k) <-
          g.W.glap.(k) +. lap -. ((gx *. gx) +. (gy *. gy) +. (gz *. gz))
      done
    in
    let register buf =
      for _ = 1 to (n * n) + 1 do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      flush st;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Wbuffer.put buf (M.get st.binv i j)
        done
      done;
      Wbuffer.put buf !(st.log_abs)
    in
    let copy_from_buffer _ps buf =
      flush st;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          M.set st.binv i j (Wbuffer.get buf)
        done
      done;
      st.log_abs := Wbuffer.get buf
    in
    let bytes () = M.bytes st.binv + M.bytes st.phim in
    {
      W.name = Printf.sprintf "Det[%d..%d)" first (first + n);
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }

  let create ?timers ?scheme ?staged ~spo ~first ~count ps =
    component (make ?timers ?scheme ?staged ~spo ~first ~count ps)
end
