open Oqmc_containers
open Oqmc_linalg

(* Slater determinant component for one spin group.

   The Slater matrix is M(i,j) = φⱼ(r_{first+i}); the engine stores the
   transposed inverse B = M⁻ᵀ so that the determinant ratio for a move of
   electron k is the contiguous row dot B[k]·v (Eq. 6 of the paper) and
   the quantum-force gradient comes from the same row against ∇φ.

   On acceptance B is refreshed either by the Sherman–Morrison BLAS2
   update (the paper's DetUpdate) or by the delayed Woodbury scheme of
   Sec. 8.4.  [evaluate_log] recomputes B from scratch in double
   precision, which is also the periodic mixed-precision refresh.

   Kernel timing keys: Bspline-v for value-only SPO evaluation inside
   [ratio], Bspline-vgh for the SPO part of [ratio_grad], SPO-vgl for the
   per-electron measurement sweep, DetUpdate for the inverse update. *)

module Make (R : Precision.REAL) = struct
  module W = Wfc.Make (R)
  module Ps = W.Ps
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module L = Lu.Make (R)
  module B = Blas.Make (R)
  module Sm = Sherman_morrison.Make (R)
  module Du = Delayed_update.Make (R)

  type scheme = Sherman_morrison | Delayed of int

  let create ?(timers = Timers.null) ?(scheme = Sherman_morrison)
      ?(staged = ref None) ~(spo : Spo.t) ~first ~count (ps : Ps.t) : W.t =
    let n = count in
    if n < 1 then invalid_arg "Slater_det.create: empty determinant";
    if spo.Spo.n_orb < n then
      invalid_arg "Slater_det.create: fewer orbitals than electrons";
    if first < 0 || first + n > Ps.n ps then
      invalid_arg "Slater_det.create: electron range out of bounds";
    let binv = M.create n n in
    let phim = M.create n n in
    let vgl = Spo.make_vgl spo.Spo.n_orb in
    let vbuf = Array.make spo.Spo.n_orb 0. in
    let psiv = A.create n in
    let ws = Sm.make_workspace n in
    let du = match scheme with Delayed d -> Some (Du.create ~delay:d binv) | Sherman_morrison -> None in
    let last_ratio = ref 1. in
    let log_abs = ref 0. in
    let in_group k = k >= first && k < first + n in
    let flush () = match du with Some d -> Du.flush d | None -> () in
    (* A crowd driver may stage a pre-computed SPO result for the
       position the next in-group grad/ratio_grad would evaluate; it is
       consumed exactly once (the batch slot is reused for the next
       lockstep step).  The batch kernel times itself, so no Bspline-vgh
       sample is recorded here for staged evaluations. *)
    let take_staged eval =
      match !staged with
      | Some s ->
          staged := None;
          s
      | None ->
          Timers.time timers "Bspline-vgh" (fun () -> eval vgl);
          vgl
    in
    (* Whole-determinant sweeps (recompute, measurement) evaluate all n
       electron positions through one batched kernel call: the scratch
       arena is shared across the rows instead of re-allocated per
       electron.  Lazy so single-move-only paths never pay for it. *)
    let row_pos = Array.make n Vec3.zero in
    let v_rows = lazy (spo.Spo.make_v_batch n) in
    let vgl_rows = lazy (spo.Spo.make_vgl_batch n) in
    let load_row_pos ps =
      for i = 0 to n - 1 do
        row_pos.(i) <- Ps.get ps (first + i)
      done
    in
    let evaluate_log ps =
      flush ();
      let b = Lazy.force v_rows in
      load_row_pos ps;
      Timers.time timers "Bspline-v" (fun () -> b.Spo.vrun row_pos n);
      for i = 0 to n - 1 do
        let row = b.Spo.vslots.(i) in
        for j = 0 to n - 1 do
          M.set phim i j row.(j)
        done
      done;
      let _sign, logd =
        Timers.time timers "DetUpdate" (fun () ->
            L.invert_transpose ~src:phim ~dst:binv)
      in
      log_abs := logd;
      logd
    in
    let load_psiv () =
      for j = 0 to n - 1 do
        A.unsafe_set psiv j vbuf.(j)
      done
    in
    let det_ratio kl =
      match du with
      | Some d -> Du.ratio d kl psiv
      | None -> Sm.ratio binv kl psiv
    in
    let ratio ps k =
      if not (in_group k) then 1.
      else begin
        Timers.time timers "Bspline-v" (fun () ->
            spo.Spo.eval_v (Ps.active_pos ps) vbuf);
        load_psiv ();
        let r = Timers.time timers "DetUpdate" (fun () -> det_ratio (k - first)) in
        last_ratio := r;
        r
      end
    in
    (* Row dot of B[kl] against one gradient component, with the delayed
       corrections when a queue is pending. *)
    let corrected_dot kl (comp : float array) =
      match du with
      | Some d when Du.pending d > 0 ->
          (* Route through the delayed ratio on a scratch copy: the
             correction formula is identical for any replacement vector. *)
          let tmp = A.create n in
          for j = 0 to n - 1 do
            A.unsafe_set tmp j comp.(j)
          done;
          Du.ratio d kl tmp
      | _ ->
          let acc = ref 0. in
          for j = 0 to n - 1 do
            acc := !acc +. (M.unsafe_get binv kl j *. comp.(j))
          done;
          !acc
    in
    let ratio_grad ps k =
      if not (in_group k) then (1., Vec3.zero)
      else begin
        let kl = k - first in
        let vgl = take_staged (spo.Spo.eval_vgl (Ps.active_pos ps)) in
        Array.blit vgl.Spo.v 0 vbuf 0 n;
        load_psiv ();
        let r = Timers.time timers "DetUpdate" (fun () -> det_ratio kl) in
        last_ratio := r;
        if abs_float r < 1e-300 then (r, Vec3.zero)
        else begin
          let gx = corrected_dot kl vgl.Spo.gx /. r in
          let gy = corrected_dot kl vgl.Spo.gy /. r in
          let gz = corrected_dot kl vgl.Spo.gz /. r in
          (r, Vec3.make gx gy gz)
        end
      end
    in
    let grad ps k =
      if not (in_group k) then Vec3.zero
      else begin
        let kl = k - first in
        let vgl = take_staged (spo.Spo.eval_vgl (Ps.get ps k)) in
        (* The denominator is 1 in exact arithmetic (row kl of M is the
           orbital vector at r_k); dividing by it stabilizes the mixed
           precision path.  With pending delayed updates every dot routes
           through the corrected form. *)
        let dotc = corrected_dot kl in
        let denom = dotc vgl.Spo.v in
        Vec3.make
          (dotc vgl.Spo.gx /. denom)
          (dotc vgl.Spo.gy /. denom)
          (dotc vgl.Spo.gz /. denom)
      end
    in
    let accept _ps k =
      if in_group k then begin
        let kl = k - first in
        Timers.time timers "DetUpdate" (fun () ->
            match du with
            | Some d -> Du.accept d kl psiv
            | None -> Sm.update_row binv kl psiv ~ratio:!last_ratio ~ws);
        log_abs := !log_abs +. log (abs_float !last_ratio)
      end
    in
    let reject _ps _k = () in
    let accumulate_gl ps (g : W.gl) =
      flush ();
      let b = Lazy.force vgl_rows in
      load_row_pos ps;
      Timers.time timers "SPO-vgl" (fun () -> b.Spo.run row_pos n);
      for i = 0 to n - 1 do
        let k = first + i in
        let vgl = b.Spo.slots.(i) in
        let dot comp =
          let acc = ref 0. in
          for j = 0 to n - 1 do
            acc := !acc +. (M.unsafe_get binv i j *. comp.(j))
          done;
          !acc
        in
        let denom = dot vgl.Spo.v in
        let gx = dot vgl.Spo.gx /. denom in
        let gy = dot vgl.Spo.gy /. denom in
        let gz = dot vgl.Spo.gz /. denom in
        let lap = dot vgl.Spo.lap /. denom in
        g.W.ggx.(k) <- g.W.ggx.(k) +. gx;
        g.W.ggy.(k) <- g.W.ggy.(k) +. gy;
        g.W.ggz.(k) <- g.W.ggz.(k) +. gz;
        (* ∇² log D = ∇²D/D − |∇D/D|². *)
        g.W.glap.(k) <-
          g.W.glap.(k) +. lap -. ((gx *. gx) +. (gy *. gy) +. (gz *. gz))
      done
    in
    let register buf =
      for _ = 1 to (n * n) + 1 do
        Wbuffer.add buf 0.
      done
    in
    let update_buffer _ps buf =
      flush ();
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Wbuffer.put buf (M.get binv i j)
        done
      done;
      Wbuffer.put buf !log_abs
    in
    let copy_from_buffer _ps buf =
      flush ();
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          M.set binv i j (Wbuffer.get buf)
        done
      done;
      log_abs := Wbuffer.get buf
    in
    let bytes () = M.bytes binv + M.bytes phim in
    {
      W.name = Printf.sprintf "Det[%d..%d)" first (first + n);
      evaluate_log;
      ratio;
      ratio_grad;
      grad;
      accept;
      reject;
      accumulate_gl;
      register;
      update_buffer;
      copy_from_buffer;
      bytes;
    }
end
