open Oqmc_containers

(** Slater determinant component for one spin group, storing the
    transposed inverse B = M⁻ᵀ so the PbyP ratio is a contiguous row dot
    (Eq. 6).  Acceptance uses the Sherman–Morrison BLAS2 update or the
    delayed Woodbury scheme of Sec. 8.4; [evaluate_log] is the periodic
    double-precision recompute that anchors mixed-precision accuracy.

    [R] is the walker/positions precision, [I] the inverse-matrix storage
    precision (the [precision_inv] knob): B, the Slater matrix and the
    delayed-update panel storage narrow through [I] while all dots and
    updates accumulate in double. *)

module Make (R : Precision.REAL) (I : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps

  type scheme = Sherman_morrison | Delayed of int

  val create :
    ?timers:Timers.t ->
    ?scheme:scheme ->
    ?staged:Spo.vgl option ref ->
    spo:Spo.t ->
    first:int ->
    count:int ->
    Ps.t ->
    W.t
  (** Determinant over electrons [first, first + count); moves of
      electrons outside the group have ratio 1.  Kernel timing keys: the
      SPO engine's [v_key] (value-only SPO) and [vgh_key] (SPO with
      derivatives) — "Bspline-v"/"Bspline-vgh" for the flat table,
      "-tiled" variants for the tiled one — plus SPO-vgl (measurement
      sweep) and DetUpdate (ratio dots and inverse updates).

      [staged], when supplied, lets a crowd driver hand the determinant
      a pre-computed SPO result for the position the next in-group
      [grad]/[ratio_grad] would evaluate; the staged value is consumed
      exactly once and no Bspline-vgh time is recorded for it (the batch
      kernel times itself).
      @raise Invalid_argument on an empty group, an out-of-range window,
      or fewer orbitals than electrons. *)

  type state
  (** The determinant working state, exposed so crowd drivers can run the
      batched move pipeline directly; [component] wraps it as the usual
      {!W.t} (and [create] = [make] + [component]).  The scalar closures
      and the crowd entry points share the same ratio/dot routines, so
      batched sweeps are bit-identical to the scalar path. *)

  val make :
    ?timers:Timers.t ->
    ?scheme:scheme ->
    ?staged:Spo.vgl option ref ->
    spo:Spo.t ->
    first:int ->
    count:int ->
    Ps.t ->
    state

  val component : state -> W.t

  val grad_into :
    state -> Spo.vgl -> int -> s:int -> gx:float array -> gy:float array ->
    gz:float array -> unit
  (** [grad_into st vgl k ~s ...]: accumulate ∇ log D at the current
      position of electron [k] into slot [s] from a pre-computed SPO
      result; a no-op (exactly +0.) for out-of-group electrons.
      Untimed — crowd drivers take one timer window per batched stage. *)

  val ratio_grad_into :
    state -> Spo.vgl -> int -> s:int -> ratio:float array ->
    gx:float array -> gy:float array -> gz:float array -> unit
  (** Proposed-position ratio and gradient: multiplies [ratio.(s)] by the
      determinant ratio (factor exactly 1. out of group) and accumulates
      the gradient, staging the move for {!accept_move}.  Untimed. *)

  val accept_move : state -> int -> unit
  (** Commit the move staged by the last [ratio_grad_into]/[ratio] for
      this electron (Sherman–Morrison row update or delayed Woodbury
      enqueue) and bump the stored log |det|.  Untimed. *)
end
