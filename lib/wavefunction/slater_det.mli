open Oqmc_containers

(** Slater determinant component for one spin group, storing the
    transposed inverse B = M⁻ᵀ so the PbyP ratio is a contiguous row dot
    (Eq. 6).  Acceptance uses the Sherman–Morrison BLAS2 update or the
    delayed Woodbury scheme of Sec. 8.4; [evaluate_log] is the periodic
    double-precision recompute that anchors mixed-precision accuracy. *)

module Make (R : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps

  type scheme = Sherman_morrison | Delayed of int

  val create :
    ?timers:Timers.t ->
    ?scheme:scheme ->
    ?staged:Spo.vgl option ref ->
    spo:Spo.t ->
    first:int ->
    count:int ->
    Ps.t ->
    W.t
  (** Determinant over electrons [first, first + count); moves of
      electrons outside the group have ratio 1.  Kernel timing keys:
      Bspline-v (value-only SPO), Bspline-vgh (SPO with derivatives),
      SPO-vgl (measurement sweep), DetUpdate (ratio dots and inverse
      updates).

      [staged], when supplied, lets a crowd driver hand the determinant
      a pre-computed SPO result for the position the next in-group
      [grad]/[ratio_grad] would evaluate; the staged value is consumed
      exactly once and no Bspline-vgh time is recorded for it (the batch
      kernel times itself).
      @raise Invalid_argument on an empty group, an out-of-range window,
      or fewer orbitals than electrons. *)
end
