open Oqmc_containers

(* Single-particle-orbital engine interface (QMCPACK's SPOSet).

   An SPO set evaluates all orbitals — values (the Bspline-v kernel) or
   values, Cartesian gradients and laplacians (the SPO-vgl kernel) — at one
   electron position.  Results land in caller-owned double-precision
   buffers; the storage precision of the backing table is the engine's own
   business.  Engines are runtime values (records of closures) exactly as
   QMCPACK dispatches SPOSet virtually.

   The batched entry points are the crowd-walker path: a batch context
   owns its scratch (one slot per crowd member), so each domain creates
   its own contexts and the shared backing table stays read-only.  Engines
   that have no native batched kernel fall back to a serial loop over the
   scalar evaluator — same results, no amortization. *)

type vgl = {
  v : float array;
  gx : float array;
  gy : float array;
  gz : float array;
  lap : float array;
}

(* A crowd-batch evaluation context: [run positions n] evaluates the
   first [n] positions into [slots.(0..n-1)].  All scratch is owned by
   the context — never share one context between domains. *)
type vgl_batch = {
  cap : int;
  slots : vgl array;
  run : Vec3.t array -> int -> unit;
}

type v_batch = {
  vcap : int;
  vslots : float array array;
  vrun : Vec3.t array -> int -> unit;
}

type t = {
  n_orb : int;
  label : string;
  v_key : string; (* Timers key charged for value evaluations *)
  vgh_key : string; (* Timers key charged for value+derivative evals *)
  eval_v : Vec3.t -> float array -> unit;
  eval_vgl : Vec3.t -> vgl -> unit;
  make_vgl_batch : int -> vgl_batch;
  make_v_batch : int -> v_batch;
  bytes : int; (* backing-table storage, shared across walkers/threads *)
}

let make_vgl n =
  {
    v = Array.make n 0.;
    gx = Array.make n 0.;
    gy = Array.make n 0.;
    gz = Array.make n 0.;
    lap = Array.make n 0.;
  }

let grad_of vgl m = Vec3.make vgl.gx.(m) vgl.gy.(m) vgl.gz.(m)

(* Generic fallbacks: loop the scalar evaluator over the batch. *)
let serial_vgl_batch ~n_orb ~eval_vgl cap =
  if cap < 1 then invalid_arg "Spo.serial_vgl_batch: cap < 1";
  let slots = Array.init cap (fun _ -> make_vgl n_orb) in
  {
    cap;
    slots;
    run =
      (fun pos n ->
        for s = 0 to n - 1 do
          eval_vgl pos.(s) slots.(s)
        done);
  }

let serial_v_batch ~n_orb ~eval_v cap =
  if cap < 1 then invalid_arg "Spo.serial_v_batch: cap < 1";
  let vslots = Array.init cap (fun _ -> Array.make n_orb 0.) in
  {
    vcap = cap;
    vslots;
    vrun =
      (fun pos n ->
        for s = 0 to n - 1 do
          eval_v pos.(s) vslots.(s)
        done);
  }

let make ?make_vgl_batch ?make_v_batch ?(v_key = "Bspline-v")
    ?(vgh_key = "Bspline-vgh") ~n_orb ~label ~eval_v ~eval_vgl ~bytes () =
  {
    n_orb;
    label;
    v_key;
    vgh_key;
    eval_v;
    eval_vgl;
    make_vgl_batch =
      (match make_vgl_batch with
      | Some f -> f
      | None -> serial_vgl_batch ~n_orb ~eval_vgl);
    make_v_batch =
      (match make_v_batch with
      | Some f -> f
      | None -> serial_v_batch ~n_orb ~eval_v);
    bytes;
  }
