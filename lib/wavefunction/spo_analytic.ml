open Oqmc_containers
open Oqmc_particle

(* Analytic SPO engines used for validation.

   [plane_waves] builds real combinations {1, cos G·r, sin G·r, ...} over
   reciprocal-lattice shells — the exact orbitals of the homogeneous
   electron gas, with closed-form derivatives, so the Slater-determinant
   machinery can be checked against exact kinetic energies in a periodic
   cell.  [harmonic] builds 3-D harmonic-oscillator eigenfunctions for
   open-boundary tests where the total energy is known exactly. *)

(* ---- plane waves ---- *)

let gvectors lattice count =
  (* Reciprocal vectors 2π (n₁g₁ + n₂g₂ + n₃g₃), sorted by |G|², excluding
     G = 0 and keeping one of each ±G pair. *)
  let g = Lattice.frac_rows lattice in
  let lim = 6 in
  let all = ref [] in
  for i = -lim to lim do
    for j = -lim to lim do
      for k = -lim to lim do
        if i <> 0 || j <> 0 || k <> 0 then begin
          (* Keep the lexicographically positive representative. *)
          if i > 0 || (i = 0 && (j > 0 || (j = 0 && k > 0))) then begin
            let v =
              Vec3.scale (2. *. Float.pi)
                (Vec3.add
                   (Vec3.scale (float_of_int i) g.(0))
                   (Vec3.add
                      (Vec3.scale (float_of_int j) g.(1))
                      (Vec3.scale (float_of_int k) g.(2))))
            in
            all := v :: !all
          end
        end
      done
    done
  done;
  let sorted =
    List.sort (fun a b -> compare (Vec3.norm2 a) (Vec3.norm2 b)) !all
  in
  let arr = Array.of_list sorted in
  if Array.length arr < count then
    invalid_arg "Spo_analytic.plane_waves: increase shell limit";
  Array.sub arr 0 count

let plane_waves ~lattice ~n_orb : Spo.t =
  if n_orb < 1 then invalid_arg "Spo_analytic.plane_waves: n_orb < 1";
  let gs = gvectors lattice ((n_orb / 2) + 1) in
  (* Orbital m: m = 0 → constant; odd m → cos(G·r); even m → sin(G·r) with
     G = gs.((m-1)/2). *)
  let eval_v (r : Vec3.t) out =
    out.(0) <- 1.;
    for m = 1 to n_orb - 1 do
      let gv = gs.((m - 1) / 2) in
      let phase = Vec3.dot gv r in
      out.(m) <- (if m land 1 = 1 then cos phase else sin phase)
    done
  in
  let eval_vgl (r : Vec3.t) (out : Spo.vgl) =
    out.Spo.v.(0) <- 1.;
    out.Spo.gx.(0) <- 0.;
    out.Spo.gy.(0) <- 0.;
    out.Spo.gz.(0) <- 0.;
    out.Spo.lap.(0) <- 0.;
    for m = 1 to n_orb - 1 do
      let gv = gs.((m - 1) / 2) in
      let phase = Vec3.dot gv r in
      let g2 = Vec3.norm2 gv in
      let c = cos phase and s = sin phase in
      if m land 1 = 1 then begin
        out.Spo.v.(m) <- c;
        out.Spo.gx.(m) <- -.gv.Vec3.x *. s;
        out.Spo.gy.(m) <- -.gv.Vec3.y *. s;
        out.Spo.gz.(m) <- -.gv.Vec3.z *. s;
        out.Spo.lap.(m) <- -.g2 *. c
      end
      else begin
        out.Spo.v.(m) <- s;
        out.Spo.gx.(m) <- gv.Vec3.x *. c;
        out.Spo.gy.(m) <- gv.Vec3.y *. c;
        out.Spo.gz.(m) <- gv.Vec3.z *. c;
        out.Spo.lap.(m) <- -.g2 *. s
      end
    done
  in
  Spo.make ~n_orb ~label:"plane-waves" ~eval_v ~eval_vgl ~bytes:0 ()

(* ---- harmonic oscillator ---- *)

(* Physicists' Hermite polynomials by recurrence: H₀=1, H₁=2ξ,
   H_{n+1} = 2ξH_n − 2nH_{n−1}. *)
let hermite n xi =
  if n = 0 then 1.
  else begin
    let hm = ref 1. and h = ref (2. *. xi) in
    for k = 1 to n - 1 do
      let next = (2. *. xi *. !h) -. (2. *. float_of_int k *. !hm) in
      hm := !h;
      h := next
    done;
    !h
  end

(* 1-D HO eigenfunction (unnormalized) and its first two derivatives. *)
let ho_1d n sqrt_omega x =
  let xi = sqrt_omega *. x in
  let h = hermite n xi in
  let hd = if n = 0 then 0. else 2. *. float_of_int n *. hermite (n - 1) xi in
  let hdd =
    if n < 2 then 0.
    else 4. *. float_of_int n *. float_of_int (n - 1) *. hermite (n - 2) xi
  in
  let e = exp (-0.5 *. xi *. xi) in
  let v = h *. e in
  let dv = sqrt_omega *. ((hd -. (xi *. h)) *. e) in
  let d2v =
    sqrt_omega *. sqrt_omega
    *. ((hdd -. (2. *. xi *. hd) +. (((xi *. xi) -. 1.) *. h)) *. e)
  in
  (v, dv, d2v)

(* Quantum numbers (nx,ny,nz) ordered by total excitation. *)
let ho_states count =
  let states = ref [] in
  let shell = ref 0 in
  while List.length !states < count do
    for nx = !shell downto 0 do
      for ny = !shell - nx downto 0 do
        let nz = !shell - nx - ny in
        states := (nx, ny, nz) :: !states
      done
    done;
    incr shell
  done;
  let arr = Array.of_list (List.rev !states) in
  Array.sub arr 0 count

let harmonic ~omega ~n_orb : Spo.t =
  if n_orb < 1 then invalid_arg "Spo_analytic.harmonic: n_orb < 1";
  if omega <= 0. then invalid_arg "Spo_analytic.harmonic: omega <= 0";
  let states = ho_states n_orb in
  let sq = sqrt omega in
  let eval_vgl (r : Vec3.t) (out : Spo.vgl) =
    for m = 0 to n_orb - 1 do
      let nx, ny, nz = states.(m) in
      let vx, dx, d2x = ho_1d nx sq r.Vec3.x in
      let vy, dy, d2y = ho_1d ny sq r.Vec3.y in
      let vz, dz, d2z = ho_1d nz sq r.Vec3.z in
      out.Spo.v.(m) <- vx *. vy *. vz;
      out.Spo.gx.(m) <- dx *. vy *. vz;
      out.Spo.gy.(m) <- vx *. dy *. vz;
      out.Spo.gz.(m) <- vx *. vy *. dz;
      out.Spo.lap.(m) <-
        (d2x *. vy *. vz) +. (vx *. d2y *. vz) +. (vx *. vy *. d2z)
    done
  in
  let scratch = Spo.make_vgl n_orb in
  let eval_v (r : Vec3.t) out =
    eval_vgl r scratch;
    Array.blit scratch.Spo.v 0 out 0 n_orb
  in
  Spo.make ~n_orb ~label:"harmonic" ~eval_v ~eval_vgl ~bytes:0 ()

(* ---- Slater-type 1s orbitals ---- *)

(* One e^{-zeta |r - R_m|} orbital per center: the minimal atomic basis.
   With zeta = Z this is the EXACT hydrogen-like ground state, giving the
   integration tests a zero-variance anchor that exercises the
   electron-ion Coulomb path (E_L = -zeta^2/2 + (zeta - Z)/r). *)
let slater_1s ~centers ~zeta : Spo.t =
  let n_orb = Array.length centers in
  if n_orb < 1 then invalid_arg "Spo_analytic.slater_1s: no centers";
  if zeta <= 0. then invalid_arg "Spo_analytic.slater_1s: zeta <= 0";
  let eval_vgl (r : Vec3.t) (out : Spo.vgl) =
    for m = 0 to n_orb - 1 do
      let d = Vec3.sub r centers.(m) in
      let rr = Float.max 1e-12 (Vec3.norm d) in
      let v = exp (-.zeta *. rr) in
      let f = -.zeta /. rr *. v in
      out.Spo.v.(m) <- v;
      out.Spo.gx.(m) <- f *. d.Vec3.x;
      out.Spo.gy.(m) <- f *. d.Vec3.y;
      out.Spo.gz.(m) <- f *. d.Vec3.z;
      (* laplacian of e^{-zeta r}: (zeta^2 - 2 zeta / r) e^{-zeta r} *)
      out.Spo.lap.(m) <- ((zeta *. zeta) -. (2. *. zeta /. rr)) *. v
    done
  in
  let scratch = Spo.make_vgl n_orb in
  let eval_v (r : Vec3.t) out =
    eval_vgl r scratch;
    Array.blit scratch.Spo.v 0 out 0 n_orb
  in
  Spo.make ~n_orb ~label:"slater-1s" ~eval_v ~eval_vgl ~bytes:0 ()

(* Exact ground-state energy of [n] non-interacting fermions of one spin
   filling the lowest HO orbitals (used by the integration tests). *)
let harmonic_total_energy ~omega ~n =
  let states = ho_states n in
  Array.fold_left
    (fun acc (nx, ny, nz) ->
      acc +. (omega *. (float_of_int (nx + ny + nz) +. 1.5)))
    0. states
