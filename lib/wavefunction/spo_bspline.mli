open Oqmc_containers
open Oqmc_particle

(** B-spline-backed SPO engine: maps Cartesian positions to fractional
    coordinates and pushes the table's fractional derivatives through the
    cell metric, so the determinant sees Cartesian gradients and
    laplacians.  The table is read-only and shared by every walker and
    thread.  Two backing layouts share the engine code: the flat
    multi-spline table and the tiled (array-of-SoA) table; the tiled
    engine reports its kernels under the "-tiled" Timers keys. *)

module Make (R : Precision.REAL) : sig
  module B3 : module type of Oqmc_spline.Bspline3d.Make (R)
  module T3 : module type of Oqmc_spline.Bspline3d_tiled.Make (R)

  val create : table:B3.t -> lattice:Lattice.t -> Spo.t

  val create_tiled : table:T3.t -> lattice:Lattice.t -> Spo.t
  (** Same engine over a tiled table; results are bit-identical to
      {!create} over a flat table with the same coefficients (the batched
      kernels share phase-1 staging and run the flat phase-2 accumulation
      per tile). *)
end
