open Oqmc_containers
open Oqmc_particle
open Oqmc_spline

(** Two-body Jastrow factor, log ψ = −Σ_{i<j} u_{σᵢσⱼ}(r_ij), with a
    radial B-spline functor per spin pair.  Two complete implementations:
    the Ref store-over-compute design (5N² stored scalars, row+column
    updates on acceptance) and the Current compute-on-the-fly design
    (5N per-electron accumulators, rows recomputed from the SoA table).

    [R] is the walker precision, [D] the SoA distance-table storage
    precision (the [precision_dt] knob) threaded through to the opt
    path's table reads; sums accumulate in double either way. *)

module Make (R : Precision.REAL) (D : Precision.REAL) : sig
  module W : module type of Wfc.Make (R)
  module Ps = W.Ps
  module A : module type of Aligned.Make (R)
  module Dref : module type of Dt_aa_ref.Make (R)
  module Dsoa : module type of Dt_aa_soa.Make (R) (D)

  type functors = Cubic_spline_1d.t array array
  (** Indexed by [species_i][species_j]; must be symmetric and match the
      electron species count. *)

  val create_opt : table:Dsoa.t -> functors:functors -> Ps.t -> W.t
  (** Compute-on-the-fly implementation over the shared SoA table.  The
      engine must [prepare]/[move] the table around ratio calls and
      accept the component BEFORE the table.
      @raise Invalid_argument on a species/functor mismatch. *)

  type opt
  (** Compute-on-the-fly state, exposed so crowds can drive the batch
      kernels directly; [opt_component] wraps it as the usual {!W.t}
      (and [create_opt] = [make_opt] + [opt_component]).  The scalar
      closures and the batch kernels share the same row routines, so
      batched results are bit-identical to the scalar path. *)

  val make_opt : table:Dsoa.t -> functors:functors -> Ps.t -> opt

  val opt_component : opt -> W.t

  val ratio_grad_batch :
    opt array -> k:int -> m:int -> ratio:float array -> gx:float array ->
    gy:float array -> gz:float array -> unit
  (** Fused acceptance-ratio + proposed-point gradient over slots
      [0..m-1]: multiplies each [ratio.(s)] and accumulates into the
      gradient slots, matching the trial-wavefunction accumulation
      order.  The engine must have run the table's prepare/move for
      electron [k] on every slot first. *)

  val grad_batch :
    opt array -> k:int -> m:int -> gx:float array -> gy:float array ->
    gz:float array -> unit

  val accept_batch : opt array -> k:int -> m:int -> acc:bool array -> unit
  (** Per accepted slot, identical to the scalar component accept; must
      run before the table accepts. *)

  val create_ref : table:Dref.t -> functors:functors -> Ps.t -> W.t
  (** Store-over-compute baseline over the packed Ref table. *)
end
