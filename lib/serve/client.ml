

(* Thin client over the {!Proto} frames: connect (with a bounded
   startup-race retry loop, since tests and scripts launch the daemon
   and submit immediately), one-request/one-reply helpers, and an
   [await] that blocks for the terminal frame of a waited submission.

   Transport failures surface as Wire exceptions — a client never
   hangs: the daemon answers every request, and if the daemon dies the
   socket closes and [Wire.Closed] is raised here. *)

let connect ?(attempts = 100) ?(delay_s = 0.05) path =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 1 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf delay_s;
        go (n - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  if attempts < 1 then invalid_arg "Client.connect: attempts < 1";
  go attempts

let close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let request ?(timeout = 60.) fd req =
  Proto.send_request fd req;
  Proto.recv_reply ~timeout fd

let submit ?(timeout = 60.) fd ~client ?(priority = 0) ?(deadline_s = 0.)
    ?(retries = -1) ?(wait = false) deck =
  request ~timeout fd
    (Proto.Submit
       { Proto.client; deck; priority; deadline_s; retries; wait })

let await ?(timeout = 600.) fd = Proto.recv_reply ~timeout fd

let query ?timeout fd id = request ?timeout fd (Proto.Query id)
let cancel ?timeout fd id = request ?timeout fd (Proto.Cancel id)

let status ?timeout fd =
  match request ?timeout fd Proto.Status with
  | Proto.Status_reply body -> body
  | other ->
      raise
        (Proto.Protocol_error
           (Printf.sprintf "status: unexpected reply %s"
              (Oqmc_obs.Jsonx.to_string (Proto.reply_to_json other))))

let stats ?timeout fd =
  match request ?timeout fd Proto.Stats with
  | Proto.Stats_reply s -> s
  | other ->
      raise
        (Proto.Protocol_error
           (Printf.sprintf "stats: unexpected reply %s"
              (Oqmc_obs.Jsonx.to_string (Proto.reply_to_json other))))

(* Submit and block to the terminal state: Ok outcome, or Error reason
   for every non-Done definite state.  The one-call path for scripts. *)
let run_deck ?(timeout = 600.) ~socket ~client ?priority ?deadline_s ?retries
    deck =
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () -> close fd)
    (fun () ->
      match
        submit ~timeout fd ~client ?priority ?deadline_s ?retries ~wait:true
          deck
      with
      | Proto.Rejected { reason; _ } -> Error ("rejected: " ^ reason)
      | Proto.Accepted { cached = true; _ } -> (
          match await ~timeout fd with
          | Proto.Job_done { outcome; _ } -> Ok outcome
          | other ->
              Error
                ("unexpected: "
                ^ Oqmc_obs.Jsonx.to_string (Proto.reply_to_json other)))
      | Proto.Accepted _ -> (
          match await ~timeout fd with
          | Proto.Job_done { outcome; _ } -> Ok outcome
          | Proto.Job_failed { reason; _ } -> Error ("failed: " ^ reason)
          | Proto.Rejected { reason; _ } -> Error ("rejected: " ^ reason)
          | other ->
              Error
                ("unexpected: "
                ^ Oqmc_obs.Jsonx.to_string (Proto.reply_to_json other)))
      | other ->
          Error
            ("unexpected: "
            ^ Oqmc_obs.Jsonx.to_string (Proto.reply_to_json other)))
