(* Bounded priority queue with per-client fairness — the daemon's
   admission-control surface.

   ADMISSION: [push] on a full queue returns [Error], never blocks and
   never drops silently; the server turns that into an explicit
   [Rejected] reply, which is the backpressure contract (a client is
   told "no" immediately rather than being queued into a hang).

   ORDERING: [pop] takes the highest priority first; within a priority
   level it takes the entry whose client has been SERVED least so far,
   breaking remaining ties FIFO.  The served counter makes a one-client
   flood interleave with other clients' work instead of starving them:
   after client A floods N jobs, a later job from idle client B runs
   after at most one more of A's. *)

type 'a entry = { seq : int; client : string; priority : int; item : 'a }

type 'a t = {
  bound : int;
  mutable entries : 'a entry list;  (* newest first *)
  served : (string, int) Hashtbl.t;  (* pops per client, lifetime *)
  mutable next_seq : int;
}

let create ~bound () =
  if bound < 1 then invalid_arg "Jqueue.create: bound < 1";
  { bound; entries = []; served = Hashtbl.create 16; next_seq = 0 }

let length q = List.length q.entries
let is_empty q = q.entries = []
let is_full q = length q >= q.bound
let served q client = Option.value ~default:0 (Hashtbl.find_opt q.served client)

(* [force] bypasses the bound for re-admissions (recovery, suspended
   requeue): those jobs were already admitted once and must not bounce
   off their own backlog. *)
let push ?(force = false) q ~client ~priority item =
  if (not force) && is_full q then Error "queue full"
  else begin
    let position =
      1 + List.length (List.filter (fun e -> e.priority >= priority) q.entries)
    in
    q.entries <- { seq = q.next_seq; client; priority; item } :: q.entries;
    q.next_seq <- q.next_seq + 1;
    Ok position
  end

(* (priority desc, served asc, seq asc): [a] pops before [b]? *)
let precedes q a b =
  if a.priority <> b.priority then a.priority > b.priority
  else
    let sa = served q a.client and sb = served q b.client in
    if sa <> sb then sa < sb else a.seq < b.seq

let pop q =
  match q.entries with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left (fun acc e -> if precedes q e acc then e else acc)
          first rest
      in
      q.entries <- List.filter (fun e -> e.seq <> best.seq) q.entries;
      Hashtbl.replace q.served best.client (served q best.client + 1);
      Some best.item

let remove q pred =
  (* Oldest matching entry, so "cancel" hits the first submission. *)
  match List.filter (fun e -> pred e.item) (List.rev q.entries) with
  | [] -> None
  | victim :: _ ->
      q.entries <- List.filter (fun e -> e.seq <> victim.seq) q.entries;
      Some victim.item

let to_list q = List.rev_map (fun e -> e.item) q.entries
