open Oqmc_core
open Oqmc_obs

(* Result cache keyed by the canonicalized deck hash (Input.deck_hash):
   two decks that parse to the same physics — whatever their key order,
   comments or spelling — share one entry.  One file per entry:

     <outcome json>\ncrc <8 hex>\n

   written atomically (tmp + rename).  A lookup that fails the CRC or
   the parse is a MISS, and the damaged file is removed so the slot
   heals on the next store — a corrupted entry must never surface as a
   wrong result (the Cache_corrupt chaos event asserts exactly this).

   Only COMPLETE outcomes are stored: a deadline-drained partial result
   covers fewer generations than the deck asks for, and the hash does
   not encode the deadline, so caching it would hand a future
   unconstrained client a truncated answer. *)

let trailer_len = String.length "crc 00000000\n"

let entry_path ~dir ~hash = Filename.concat dir hash

let valid_hash hash =
  hash <> ""
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       hash

let store ~dir ~hash (outcome : Job.outcome) =
  if not (valid_hash hash) then invalid_arg "Cache.store: bad hash";
  if outcome.Job.drained then invalid_arg "Cache.store: drained outcome";
  let payload = Jsonx.to_string (Job.outcome_to_json outcome) ^ "\n" in
  let file = entry_path ~dir ~hash in
  let tmp = file ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  output_string oc payload;
  Printf.fprintf oc "crc %08x\n" (Checkpoint.crc32 payload land 0xFFFFFFFF);
  close_out oc;
  Sys.rename tmp file

let lookup ~dir ~hash =
  if not (valid_hash hash) then None
  else
    let file = entry_path ~dir ~hash in
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error _ -> None
    | text -> (
        match
          let len = String.length text in
          if len < trailer_len then failwith "short";
          let payload = String.sub text 0 (len - trailer_len) in
          let stored =
            Scanf.sscanf
              (String.sub text (len - trailer_len) trailer_len)
              "crc %x" Fun.id
          in
          if stored <> Checkpoint.crc32 payload land 0xFFFFFFFF then
            failwith "crc";
          Job.outcome_of_json (Jsonx.parse_string_exn (String.trim payload))
        with
        | outcome -> Some outcome
        | exception
            ( Failure _ | Scanf.Scan_failure _ | End_of_file
            | Jsonx.Parse_error _ | Job.Codec_error _ ) ->
            (* Corrupt entry: heal to a miss, never a wrong result. *)
            (try Sys.remove file with Sys_error _ -> ());
            None)

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names -> List.filter valid_hash (Array.to_list names)
