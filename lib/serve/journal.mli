(** Crash journal: the serve daemon's write-ahead record of every job's
    life, one CRC-guarded JSON record per line, flushed per append.
    After SIGKILL the only possible damage is a torn final line;
    {!replay} stops at the first invalid line, making a torn tail
    equivalent to "never written".  A job is pending iff its [Submit]
    has no terminal record; its consumed crash budget is
    [Start] − [Suspend] records, so a graceful server drain never eats
    a retry. *)

type record =
  | Submit of Job.spec
  | Start of { id : string; attempt : int; pid : int; t : float }
  | Suspend of { id : string; t : float }
      (** graceful server-drain: snapshotted, still pending *)
  | Done of { id : string; hash : string; t : float }
  | Failed of { id : string; reason : string; t : float }
  | Rejected of { id : string; client : string; reason : string; t : float }
  | Cancelled of { id : string; t : float }

exception Corrupt of string

type t

val open_ : string -> t
(** Open (creating if needed) for appending. *)

val path : t -> string

val append : t -> record -> unit
(** Write + flush one record. @raise Sys_error when the disk is full. *)

val close : t -> unit

val replay : string -> record list
(** All valid records, stopping at the first torn/corrupt line.  A
    missing file is an empty journal. *)

type terminal =
  | Tdone of string  (** result hash, servable from the cache *)
  | Tfailed of string
  | Trejected of string
  | Tcancelled

type pending = {
  p_spec : Job.spec;
  p_attempts : int;  (** crash budget consumed: starts − suspends *)
  p_first_start : float;  (** 0. if never started (deadline anchor) *)
  p_stale_pid : int;  (** 0, or a runner pid possibly still alive *)
}

type recovered = {
  r_pending : pending list;  (** submission order *)
  r_terminal : (string * terminal) list;
  r_next_seq : int;  (** 1 + the largest numeric id suffix seen *)
}

val recover : record list -> recovered
(** Pure derivation of the restart state from a replayed record list. *)

val compact : path:string -> recovered -> unit
(** Clean-shutdown rewrite: pending [Submit]s plus synthetic [Start]s
    (pid 0) preserving each job's consumed budget and deadline anchor;
    terminal history is dropped.  Atomic (tmp + rename). *)
