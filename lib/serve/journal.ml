open Oqmc_core
open Oqmc_obs

(* Crash journal: the daemon's write-ahead record of every job's life.
   One record per line, each line self-verifying:

     <crc32 of json, 8 hex digits> <json>\n

   Appends are flushed per record, so after SIGKILL the only possible
   damage is a torn final line; [replay] stops at the first line that
   fails the CRC or the parse, which makes a torn tail indistinguishable
   from "the record was never written" — exactly the atomicity the
   recovery logic wants.  A job is PENDING iff its Submit has no
   terminal record (Done/Failed/Rejected/Cancelled); its crash budget
   consumed so far is (Start records - Suspend records), because a
   graceful suspension (server drain) must not eat a retry. *)

type record =
  | Submit of Job.spec
  | Start of { id : string; attempt : int; pid : int; t : float }
  | Suspend of { id : string; t : float }
      (* graceful server-drain: job snapshotted, still pending *)
  | Done of { id : string; hash : string; t : float }
  | Failed of { id : string; reason : string; t : float }
  | Rejected of { id : string; client : string; reason : string; t : float }
  | Cancelled of { id : string; t : float }

let jfloat v = Jsonx.Str (Printf.sprintf "%h" v)
let jint n = Jsonx.Num (float_of_int n)

let record_to_json = function
  | Submit spec -> Jsonx.Obj [ ("rec", Str "submit"); ("spec", Job.spec_to_json spec) ]
  | Start { id; attempt; pid; t } ->
      Jsonx.Obj
        [
          ("rec", Str "start");
          ("id", Str id);
          ("attempt", jint attempt);
          ("pid", jint pid);
          ("t", jfloat t);
        ]
  | Suspend { id; t } ->
      Jsonx.Obj [ ("rec", Str "suspend"); ("id", Str id); ("t", jfloat t) ]
  | Done { id; hash; t } ->
      Jsonx.Obj
        [ ("rec", Str "done"); ("id", Str id); ("hash", Str hash); ("t", jfloat t) ]
  | Failed { id; reason; t } ->
      Jsonx.Obj
        [
          ("rec", Str "failed");
          ("id", Str id);
          ("reason", Str reason);
          ("t", jfloat t);
        ]
  | Rejected { id; client; reason; t } ->
      Jsonx.Obj
        [
          ("rec", Str "rejected");
          ("id", Str id);
          ("client", Str client);
          ("reason", Str reason);
          ("t", jfloat t);
        ]
  | Cancelled { id; t } ->
      Jsonx.Obj [ ("rec", Str "cancelled"); ("id", Str id); ("t", jfloat t) ]

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let str key j =
  match Jsonx.(Option.bind (member key j) to_str) with
  | Some s -> s
  | None -> corrupt "journal: missing %S" key

let int_ key j =
  match Jsonx.(Option.bind (member key j) to_float) with
  | Some v when Float.is_integer v -> int_of_float v
  | _ -> corrupt "journal: bad %S" key

let float_ key j =
  try float_of_string (str key j)
  with Failure _ -> corrupt "journal: bad float %S" key

let record_of_json j =
  match str "rec" j with
  | "submit" -> (
      match Jsonx.member "spec" j with
      | Some spec -> (
          try Submit (Job.spec_of_json spec)
          with Job.Codec_error m -> corrupt "journal: %s" m)
      | None -> corrupt "journal: submit without spec")
  | "start" ->
      Start
        { id = str "id" j; attempt = int_ "attempt" j; pid = int_ "pid" j;
          t = float_ "t" j }
  | "suspend" -> Suspend { id = str "id" j; t = float_ "t" j }
  | "done" -> Done { id = str "id" j; hash = str "hash" j; t = float_ "t" j }
  | "failed" ->
      Failed { id = str "id" j; reason = str "reason" j; t = float_ "t" j }
  | "rejected" ->
      Rejected
        { id = str "id" j; client = str "client" j; reason = str "reason" j;
          t = float_ "t" j }
  | "cancelled" -> Cancelled { id = str "id" j; t = float_ "t" j }
  | other -> corrupt "journal: unknown record %S" other

let render r =
  let json = Jsonx.to_string (record_to_json r) in
  Printf.sprintf "%08x %s\n" (Checkpoint.crc32 json land 0xFFFFFFFF) json

let parse_line line =
  if String.length line < 9 || line.[8] <> ' ' then corrupt "journal: short line";
  let crc =
    match int_of_string_opt ("0x" ^ String.sub line 0 8) with
    | Some c -> c
    | None -> corrupt "journal: bad crc field"
  in
  let json = String.sub line 9 (String.length line - 9) in
  if crc <> Checkpoint.crc32 json land 0xFFFFFFFF then
    corrupt "journal: crc mismatch";
  match Jsonx.parse_string_exn json with
  | j -> record_of_json j
  | exception Jsonx.Parse_error m -> corrupt "journal: %s" m

(* ---------- the append handle ---------- *)

type t = { path : string; oc : out_channel }

let open_ path =
  { path; oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path }

let path t = t.path

let append t r =
  output_string t.oc (render r);
  flush t.oc

let close t = close_out t.oc

(* ---------- replay + recovery ---------- *)

let replay path =
  if not (Sys.file_exists path) then []
  else
    let text = In_channel.with_open_bin path In_channel.input_all in
    let rec go acc = function
      | [] -> List.rev acc
      | line :: rest ->
          if String.trim line = "" then go acc rest
          else (
            match parse_line line with
            | r -> go (r :: acc) rest
            | exception Corrupt _ ->
                (* Torn or corrupt tail: everything after it is garbage
                   by construction (appends are sequential). *)
                List.rev acc)
    in
    go [] (String.split_on_char '\n' text)

type terminal =
  | Tdone of string  (* result hash, servable from the cache *)
  | Tfailed of string
  | Trejected of string
  | Tcancelled

type pending = {
  p_spec : Job.spec;
  p_attempts : int;  (* crash budget consumed: starts - suspends *)
  p_first_start : float;  (* 0. if never started (deadline anchor) *)
  p_stale_pid : int;  (* 0, or a runner pid possibly still alive *)
}

type recovered = {
  r_pending : pending list;  (* submission order *)
  r_terminal : (string * terminal) list;
  r_next_seq : int;  (* 1 + the largest numeric id suffix seen *)
}

let id_seq id =
  (* ids are "j<NNNN>"; anything else contributes 0. *)
  if String.length id > 1 && id.[0] = 'j' then
    Option.value ~default:0
      (int_of_string_opt (String.sub id 1 (String.length id - 1)))
  else 0

let recover records =
  let submits = ref [] in
  let starts = Hashtbl.create 16 in
  let suspends = Hashtbl.create 16 in
  let first_start = Hashtbl.create 16 in
  let last_pid = Hashtbl.create 16 in
  let terminals = ref [] in
  let next_seq = ref 1 in
  let bump id = next_seq := max !next_seq (id_seq id + 1) in
  let count tbl id =
    Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  List.iter
    (fun r ->
      match r with
      | Submit spec ->
          bump spec.Job.id;
          submits := spec :: !submits
      | Start { id; pid; t; _ } ->
          count starts id;
          if not (Hashtbl.mem first_start id) then Hashtbl.replace first_start id t;
          Hashtbl.replace last_pid id pid
      | Suspend { id; _ } ->
          count suspends id;
          Hashtbl.remove last_pid id
      | Done { id; hash; _ } ->
          bump id;
          terminals := (id, Tdone hash) :: !terminals
      | Failed { id; reason; _ } ->
          bump id;
          terminals := (id, Tfailed reason) :: !terminals
      | Rejected { id; reason; _ } ->
          bump id;
          terminals := (id, Trejected reason) :: !terminals
      | Cancelled { id; _ } ->
          bump id;
          terminals := (id, Tcancelled) :: !terminals)
    records;
  let terminal_ids = List.map fst !terminals in
  let pending =
    List.filter_map
      (fun spec ->
        let id = spec.Job.id in
        if List.mem id terminal_ids then None
        else
          let n tbl = Option.value ~default:0 (Hashtbl.find_opt tbl id) in
          Some
            {
              p_spec = spec;
              p_attempts = max 0 (n starts - n suspends);
              p_first_start =
                Option.value ~default:0. (Hashtbl.find_opt first_start id);
              p_stale_pid =
                Option.value ~default:0 (Hashtbl.find_opt last_pid id);
            })
      (List.rev !submits)
  in
  {
    r_pending = pending;
    r_terminal = List.rev !terminals;
    r_next_seq = !next_seq;
  }

let compact ~path recovered =
  (* Clean-shutdown rewrite: one Submit per pending job plus enough
     synthetic Start records (pid 0 — never a killable pid) to preserve
     its consumed crash budget and deadline anchor.  Terminal history is
     dropped; the result cache still serves Done results by hash.
     Atomic via tmp+rename like every other state file. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
  List.iter
    (fun p ->
      output_string oc (render (Submit p.p_spec));
      for attempt = 1 to p.p_attempts do
        output_string oc
          (render (Start { id = p.p_spec.Job.id; attempt; pid = 0;
                           t = p.p_first_start }))
      done)
    recovered.r_pending;
  close_out oc;
  Sys.rename tmp path
