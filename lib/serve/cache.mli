(** Result cache keyed by the canonicalized deck hash
    ({!Oqmc_core.Input.deck_hash}): decks that parse to the same physics
    share one CRC-trailed entry file, written atomically.  A lookup
    that fails validation is a miss and removes the damaged file — a
    corrupted entry must never surface as a wrong result. *)

val store : dir:string -> hash:string -> Job.outcome -> unit
(** @raise Invalid_argument on a malformed hash or a drained (partial)
    outcome — partial results are never cached, the hash does not
    encode the deadline that truncated them. *)

val lookup : dir:string -> hash:string -> Job.outcome option
(** [None] on absence, CRC mismatch or parse failure; the latter two
    also remove the entry so the slot heals on the next store. *)

val entries : dir:string -> string list
(** Hashes currently cached (a missing directory is empty). *)
