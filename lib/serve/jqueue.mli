(** Bounded priority queue with per-client fairness — the serve
    daemon's admission-control surface.  [push] on a full queue returns
    [Error] (explicit backpressure, never a silent drop); [pop] takes
    the highest priority first, then the least-served client, then
    FIFO, so a one-client flood cannot starve other tenants. *)

type 'a t

val create : bound:int -> unit -> 'a t
(** @raise Invalid_argument if [bound < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val served : 'a t -> string -> int
(** Lifetime pops credited to this client (the fairness counter). *)

val push :
  ?force:bool -> 'a t -> client:string -> priority:int -> 'a ->
  (int, string) result
(** [Ok position] (1-based, counting entries at [>=] priority) or
    [Error reason] when the queue is at its admission bound.
    [~force:true] bypasses the bound: it is for re-admitting jobs that
    were ALREADY admitted in a previous incarnation (journal recovery,
    suspended-runner requeue) — the admission contract applies to new
    submissions, not to jobs the server has promised to finish. *)

val pop : 'a t -> 'a option
(** Highest priority; ties to the least-served client, then FIFO.
    Credits the winning client's served counter. *)

val remove : 'a t -> ('a -> bool) -> 'a option
(** Remove and return the oldest entry matching the predicate. *)

val to_list : 'a t -> 'a list
(** Entries in submission order (no fairness applied). *)
