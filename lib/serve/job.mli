(** The unit of work the serve daemon multiplexes: an input deck plus
    the client's fault budget (priority, wall-clock deadline, crash
    retries).  Every job ends in exactly one definite terminal state —
    the invariant the journal and [@serve-soak] accounting rest on.

    The JSON codecs are shared by the wire protocol ({!Proto}), the
    crash journal ({!Journal}) and the result cache ({!Cache}); floats
    that must round-trip bit-exactly are encoded as [%h] hex strings. *)

type state = Queued | Running | Done | Failed | Rejected | Cancelled

val state_name : state -> string
val terminal : state -> bool

type spec = {
  id : string;
  client : string;
  deck : string;  (** raw deck text; re-parsed by the runner *)
  hash : string;  (** {!Oqmc_core.Input.deck_hash} — the cache key *)
  priority : int;  (** higher runs sooner *)
  deadline_s : float;
      (** wall-clock budget measured from first execution; 0 = none *)
  retries : int;  (** crash respawns allowed after the first attempt *)
  submitted_at : float;
}

type outcome = {
  energy : float;
  error : float;
  variance : float;
  acceptance : float;
  series : float array;  (** measured energy series, for bit-identity *)
  gens : int;  (** generations (DMC) / blocks (VMC) measured *)
  drained : bool;
      (** ended early at a generation boundary (deadline drain) *)
  resumed_from : int;  (** > 0: continued from a snapshot of that gen *)
  wall_s : float;
}

exception Codec_error of string

val spec_to_json : spec -> Oqmc_obs.Jsonx.t

val spec_of_json : Oqmc_obs.Jsonx.t -> spec
(** @raise Codec_error on a malformed document. *)

val outcome_to_json : outcome -> Oqmc_obs.Jsonx.t

val outcome_of_json : Oqmc_obs.Jsonx.t -> outcome
(** @raise Codec_error on a malformed document. *)
