(** The oqmc-serve daemon: a single-threaded select loop multiplexing
    QMC jobs over a Unix-domain socket, with admission control (bounded
    queue → explicit [Rejected]), per-client fairness, per-job fault
    budgets (crash retries with exponential backoff from snapshots,
    wall-clock deadlines draining at generation boundaries), a
    write-ahead crash journal replayed on restart, and a result cache
    keyed by the canonicalized deck hash.  See docs/ROBUSTNESS.md for
    the service-layer failure matrix. *)

type config = {
  socket : string;  (** Unix-domain socket path (OS limit ~100 bytes) *)
  dir : string;  (** state directory: journal, cache/, snap/ *)
  max_queue : int;  (** admission bound: queue depth before [Rejected] *)
  max_running : int;  (** concurrent runner processes *)
  default_retries : int;  (** crash respawns when the client says -1 *)
  backoff_s : float;  (** respawn backoff base, doubled per attempt *)
  grace_s : float;
      (** drain grace before SIGKILL (deadline and shutdown paths) *)
  snapshot_every : int;  (** generations between job snapshots *)
  telemetry : string option;  (** per-job JSONL event stream *)
  flightrec : string option;
      (** dump the daemon's flight recorder (recent scheduler events)
          to this postmortem file if the select loop dies fatally *)
}

val default_config : config

val serve : config -> unit
(** Run the daemon until SIGTERM/SIGINT, then drain: stop admitting,
    suspend every runner (snapshot + journal [Suspend]), answer
    waiting clients, compact the journal and return.  On entry, replays
    the journal: pending jobs re-queue with their consumed crash budget
    and deadline anchor, interrupted jobs resume bit-identically from
    their snapshots, stale runner pids are killed.
    @raise Invalid_argument on a non-positive [max_queue],
    [max_running] or [snapshot_every]. *)
