open Oqmc_obs

(* Client <-> daemon protocol: one JSON document per CRC-framed raw
   frame (Wire.send_str / Wire.recv_str) over the Unix-domain socket.
   The framing layer already rejects truncation and corruption
   (Wire.Garbage), so this module only has to agree on the documents.

   Every request gets exactly one immediate reply; a Submit with
   [wait = true] additionally gets one TERMINAL frame (Job_done /
   Job_failed) on the same connection when the job ends.  There is no
   reply that leaves a client hanging: full queue, malformed deck and
   shutting-down server all answer [Rejected] with a reason. *)

type submit = {
  client : string;
  deck : string;  (* raw deck text *)
  priority : int;
  deadline_s : float;  (* 0 = no deadline *)
  retries : int;  (* crash respawns allowed; < 0 = server default *)
  wait : bool;  (* hold the connection for the terminal frame *)
}

type request =
  | Submit of submit
  | Query of string  (* job id *)
  | Cancel of string
  | Stats
  | Status  (* full live snapshot: daemon + registry + per-job status *)
  | Ping

(* Conserved accounting, exposed so the soak harness can assert
   accepted = done + failed + cancelled + queued + running + retrying
   across arbitrary chaos. *)
type stats = {
  submitted : int;
  accepted : int;
  rejected : int;
  done_ : int;
  failed : int;
  cancelled : int;
  queued : int;
  running : int;
  retrying : int;
  cache_hits : int;
  suspended : int;
}

type reply =
  | Accepted of { id : string; cached : bool; position : int }
  | Rejected of { id : string; reason : string }
  | State of { id : string; state : string; attempt : int }
  | Job_done of { id : string; outcome : Job.outcome; cached : bool }
  | Job_failed of { id : string; reason : string }
  | Stats_reply of stats
  | Status_reply of Jsonx.t
      (* opaque snapshot document: stats + daemon metrics + running
         jobs' live status files (ledger windows, audit gauges) *)
  | Pong
  | Error of string

exception Protocol_error of string

let proto_fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt
let jint n = Jsonx.Num (float_of_int n)
let jfloat v = Jsonx.Str (Printf.sprintf "%h" v)

let str key j =
  match Jsonx.(Option.bind (member key j) to_str) with
  | Some s -> s
  | None -> proto_fail "missing %S" key

let int_ key j =
  match Jsonx.(Option.bind (member key j) to_float) with
  | Some v when Float.is_integer v -> int_of_float v
  | _ -> proto_fail "bad %S" key

let float_ key j =
  try float_of_string (str key j) with Failure _ -> proto_fail "bad float %S" key

let bool_ key j =
  match Jsonx.member key j with
  | Some (Jsonx.Bool b) -> b
  | _ -> proto_fail "bad %S" key

(* ---------- requests ---------- *)

let request_to_json = function
  | Submit s ->
      Jsonx.Obj
        [
          ("req", Str "submit");
          ("client", Str s.client);
          ("deck", Str s.deck);
          ("priority", jint s.priority);
          ("deadline_s", jfloat s.deadline_s);
          ("retries", jint s.retries);
          ("wait", Bool s.wait);
        ]
  | Query id -> Jsonx.Obj [ ("req", Str "query"); ("id", Str id) ]
  | Cancel id -> Jsonx.Obj [ ("req", Str "cancel"); ("id", Str id) ]
  | Stats -> Jsonx.Obj [ ("req", Str "stats") ]
  | Status -> Jsonx.Obj [ ("req", Str "status") ]
  | Ping -> Jsonx.Obj [ ("req", Str "ping") ]

let request_of_json j =
  match str "req" j with
  | "submit" ->
      Submit
        {
          client = str "client" j;
          deck = str "deck" j;
          priority = int_ "priority" j;
          deadline_s = float_ "deadline_s" j;
          retries = int_ "retries" j;
          wait = bool_ "wait" j;
        }
  | "query" -> Query (str "id" j)
  | "cancel" -> Cancel (str "id" j)
  | "stats" -> Stats
  | "status" -> Status
  | "ping" -> Ping
  | other -> proto_fail "unknown request %S" other

(* ---------- replies ---------- *)

let stats_to_json s =
  Jsonx.Obj
    [
      ("submitted", jint s.submitted);
      ("accepted", jint s.accepted);
      ("rejected", jint s.rejected);
      ("done", jint s.done_);
      ("failed", jint s.failed);
      ("cancelled", jint s.cancelled);
      ("queued", jint s.queued);
      ("running", jint s.running);
      ("retrying", jint s.retrying);
      ("cache_hits", jint s.cache_hits);
      ("suspended", jint s.suspended);
    ]

let stats_of_json j =
  {
    submitted = int_ "submitted" j;
    accepted = int_ "accepted" j;
    rejected = int_ "rejected" j;
    done_ = int_ "done" j;
    failed = int_ "failed" j;
    cancelled = int_ "cancelled" j;
    queued = int_ "queued" j;
    running = int_ "running" j;
    retrying = int_ "retrying" j;
    cache_hits = int_ "cache_hits" j;
    suspended = int_ "suspended" j;
  }

let reply_to_json = function
  | Accepted { id; cached; position } ->
      Jsonx.Obj
        [
          ("re", Str "accepted");
          ("id", Str id);
          ("cached", Bool cached);
          ("position", jint position);
        ]
  | Rejected { id; reason } ->
      Jsonx.Obj [ ("re", Str "rejected"); ("id", Str id); ("reason", Str reason) ]
  | State { id; state; attempt } ->
      Jsonx.Obj
        [
          ("re", Str "state");
          ("id", Str id);
          ("state", Str state);
          ("attempt", jint attempt);
        ]
  | Job_done { id; outcome; cached } ->
      Jsonx.Obj
        [
          ("re", Str "done");
          ("id", Str id);
          ("outcome", Job.outcome_to_json outcome);
          ("cached", Bool cached);
        ]
  | Job_failed { id; reason } ->
      Jsonx.Obj [ ("re", Str "failed"); ("id", Str id); ("reason", Str reason) ]
  | Stats_reply s -> Jsonx.Obj [ ("re", Str "stats"); ("stats", stats_to_json s) ]
  | Status_reply body -> Jsonx.Obj [ ("re", Str "status"); ("body", body) ]
  | Pong -> Jsonx.Obj [ ("re", Str "pong") ]
  | Error reason -> Jsonx.Obj [ ("re", Str "error"); ("reason", Str reason) ]

let reply_of_json j =
  match str "re" j with
  | "accepted" ->
      Accepted
        { id = str "id" j; cached = bool_ "cached" j; position = int_ "position" j }
  | "rejected" -> Rejected { id = str "id" j; reason = str "reason" j }
  | "state" ->
      State { id = str "id" j; state = str "state" j; attempt = int_ "attempt" j }
  | "done" -> (
      match Jsonx.member "outcome" j with
      | Some o -> (
          try
            Job_done
              { id = str "id" j; outcome = Job.outcome_of_json o;
                cached = bool_ "cached" j }
          with Job.Codec_error m -> proto_fail "%s" m)
      | None -> proto_fail "done without outcome")
  | "failed" -> Job_failed { id = str "id" j; reason = str "reason" j }
  | "stats" -> (
      match Jsonx.member "stats" j with
      | Some s -> Stats_reply (stats_of_json s)
      | None -> proto_fail "stats without stats")
  | "status" -> (
      match Jsonx.member "body" j with
      | Some body -> Status_reply body
      | None -> proto_fail "status without body")
  | "pong" -> Pong
  | "error" -> Error (str "reason" j)
  | other -> proto_fail "unknown reply %S" other

(* ---------- framing ---------- *)

let parse conv s =
  match Jsonx.parse_string_exn s with
  | j -> conv j
  | exception Jsonx.Parse_error m -> proto_fail "%s" m

let send_request fd r =
  Oqmc_dist.Wire.send_str fd (Jsonx.to_string (request_to_json r))

let recv_request ?timeout fd =
  parse request_of_json (Oqmc_dist.Wire.recv_str ?timeout fd)

let send_reply fd r =
  Oqmc_dist.Wire.send_str fd (Jsonx.to_string (reply_to_json r))

let recv_reply ?timeout fd =
  parse reply_of_json (Oqmc_dist.Wire.recv_str ?timeout fd)
