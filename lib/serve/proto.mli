(** Client ↔ daemon protocol: one JSON document per CRC-framed raw
    frame ({!Oqmc_dist.Wire.send_str}) over the Unix-domain socket.
    Every request gets exactly one immediate reply; a [Submit] with
    [wait = true] additionally gets one terminal frame ([Job_done] /
    [Job_failed]) when the job ends.  No path leaves a client hanging:
    full queue, malformed deck and shutting-down server all answer
    [Rejected] with a reason. *)

type submit = {
  client : string;
  deck : string;  (** raw deck text *)
  priority : int;
  deadline_s : float;  (** 0 = no deadline *)
  retries : int;  (** crash respawns allowed; < 0 = server default *)
  wait : bool;  (** hold the connection for the terminal frame *)
}

type request =
  | Submit of submit
  | Query of string  (** job id *)
  | Cancel of string
  | Stats
  | Status
      (** full live snapshot: daemon counters + metrics registry +
          every running job's status file (per-rank ledger windows,
          audit gauges), answered without blocking the select loop *)
  | Ping

(** Conserved accounting: the soak harness asserts
    [accepted = done + failed + cancelled + queued + running +
    retrying] across arbitrary chaos. *)
type stats = {
  submitted : int;
  accepted : int;
  rejected : int;
  done_ : int;
  failed : int;
  cancelled : int;
  queued : int;
  running : int;
  retrying : int;
  cache_hits : int;
  suspended : int;
}

type reply =
  | Accepted of { id : string; cached : bool; position : int }
  | Rejected of { id : string; reason : string }
  | State of { id : string; state : string; attempt : int }
  | Job_done of { id : string; outcome : Job.outcome; cached : bool }
  | Job_failed of { id : string; reason : string }
  | Stats_reply of stats
  | Status_reply of Oqmc_obs.Jsonx.t
      (** opaque snapshot document; see {!Status} *)
  | Pong
  | Error of string

exception Protocol_error of string

val stats_to_json : stats -> Oqmc_obs.Jsonx.t
val stats_of_json : Oqmc_obs.Jsonx.t -> stats
val request_to_json : request -> Oqmc_obs.Jsonx.t
val request_of_json : Oqmc_obs.Jsonx.t -> request
val reply_to_json : reply -> Oqmc_obs.Jsonx.t
val reply_of_json : Oqmc_obs.Jsonx.t -> reply

val send_request : Unix.file_descr -> request -> unit
val recv_request : ?timeout:float -> Unix.file_descr -> request
val send_reply : Unix.file_descr -> reply -> unit
val recv_reply : ?timeout:float -> Unix.file_descr -> reply
(** Framed IO.  @raise Protocol_error on a well-framed but malformed
    document; {!Oqmc_dist.Wire} exceptions propagate for transport
    failures (Closed / Timeout / Garbage). *)
