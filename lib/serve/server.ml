open Oqmc_core
open Oqmc_workloads
open Oqmc_obs
open Oqmc_dist

(* The oqmc-serve daemon: a single-threaded select loop multiplexing
   QMC jobs over a Unix-domain socket.

   LIFE OF A JOB.  A deck arrives framed by {!Proto}; admission parses
   and canonicalizes it, consults the result cache, and either answers
   from the cache, queues it (journaled Submit first — the write-ahead
   rule), or REJECTS it with a reason (malformed deck, queue at its
   bound, server draining).  A scheduler slot forks one RUNNER process
   per running job; the runner executes the deck through the reentrant
   [Supervisor.run_job], snapshotting its full dynamical state every
   few generations, and ships its outcome back as a single CRC-framed
   JSON document on a pipe.  Every fault budget is enforced here:

   - crash (runner dies without a frame): respawn from the newest
     snapshot with exponential backoff, up to the job's retry budget,
     then Failed with a structured reason;
   - wall-clock deadline (measured from the job's FIRST execution,
     surviving retries and server restarts via the journal): SIGUSR1
     asks the runner to drain at the next generation boundary (partial
     Done), and a grace period later SIGKILL forces Failed;
   - server SIGTERM: stop admitting, SIGTERM every runner (suspend: it
     snapshots and exits without a terminal record), compact the
     journal and leave; the next incarnation resumes every pending job
     bit-identically from its snapshot;
   - server SIGKILL: nothing graceful ran, but the journal's
     write-ahead records and the flushed-per-append discipline mean
     replay loses nothing: pending jobs re-queue, interrupted jobs
     resume from their snapshots, stale runner pids are killed.

   Nothing in this file blocks on a client: a dead client's fd is
   dropped and its job keeps running to the cache; a slow client only
   delays its own replies. *)

type config = {
  socket : string;  (* Unix-domain socket path (OS limit ~100 bytes) *)
  dir : string;  (* state directory: journal, cache/, snap/ *)
  max_queue : int;  (* admission bound: queue depth before Rejected *)
  max_running : int;  (* concurrent runner processes *)
  default_retries : int;  (* crash respawns when the client says -1 *)
  backoff_s : float;  (* respawn backoff base, doubled per attempt *)
  grace_s : float;  (* drain grace before SIGKILL (deadline, shutdown) *)
  snapshot_every : int;  (* generations between job snapshots *)
  telemetry : string option;  (* per-job JSONL event stream *)
  flightrec : string option;  (* daemon postmortem dump on fatal exit *)
}

let default_config =
  {
    socket = "oqmc-serve.sock";
    dir = "oqmc-serve.state";
    max_queue = 16;
    max_running = 2;
    default_retries = 2;
    backoff_s = 0.25;
    grace_s = 5.0;
    snapshot_every = 5;
    telemetry = None;
    flightrec = None;
  }

(* ---------- the runner child ---------- *)

let make_system name reduction with_nlpp precision seed =
  match String.lowercase_ascii name with
  | "harmonic" -> Validation.harmonic ~n:6 ~omega:1.0
  | "hydrogen" -> Validation.hydrogen ()
  | "heg" -> Validation.electron_gas ~n_up:8 ~n_down:8 ~box:6.0 ()
  | _ ->
      let table_prec = match precision with Some `F64 -> `F64 | _ -> `F32 in
      Builder.make ~seed ~with_nlpp ~reduction ~precision:table_prec
        (Spec.find name)

let outcome_of_job (o : Supervisor.job_outcome) : Job.outcome =
  let r = o.Supervisor.job_result in
  {
    Job.energy = r.Supervisor.energy;
    error = r.Supervisor.energy_error;
    variance = r.Supervisor.variance;
    acceptance = r.Supervisor.acceptance;
    series = r.Supervisor.energy_series;
    (* Total generations the estimators cover — a resumed job's
       [gens_done] counts only the post-resume stretch, but its series
       and energy span the whole run. *)
    gens = o.Supervisor.resumed_from + o.Supervisor.gens_done;
    drained = o.Supervisor.drained;
    resumed_from = o.Supervisor.resumed_from;
    wall_s = r.Supervisor.wall_time;
  }

let outcome_of_vmc (r : Vmc.result) : Job.outcome =
  {
    Job.energy = r.Vmc.energy;
    error = r.Vmc.energy_error;
    variance = r.Vmc.variance;
    acceptance = r.Vmc.acceptance;
    series = r.Vmc.block_energies;
    gens = Array.length r.Vmc.block_energies;
    drained = false;
    resumed_from = 0;
    wall_s = r.Vmc.wall_time;
  }

(* Runner exit codes when no frame could carry the news.  3 and 4 are
   deliberate (suspend / deadline without a partial result); anything
   else that arrives frameless is a crash and feeds the retry budget. *)
let exit_suspended = 3
let exit_deadline = 4

(* Executes [spec] in a freshly forked child and never returns: ships
   exactly one frame on [wfd] — {"outcome":…}, {"suspended":true} or
   {"crashed":reason} — or dies with one of the codes above. *)
let exec_runner cfg (spec : Job.spec) wfd =
  let drain = ref false and suspend = ref false in
  Sys.set_signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> drain := true));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> suspend := true));
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  let send json = Wire.send_str wfd (Jsonx.to_string json) in
  let verdict =
    try
     let d = Input.parse_string spec.Job.deck in
     let sys =
       make_system d.Input.workload d.Input.reduction d.Input.nlpp
         d.Input.precision d.Input.seed
     in
     let factory =
       Build.factory
         ?delay:(if d.Input.delay <= 1 then None else Some d.Input.delay)
         ?precision:d.Input.precision ~variant:d.Input.variant
         ~seed:d.Input.seed sys
     in
     match d.Input.method_ with
     | "vmc" ->
         (* No generation-boundary stop polling on the VMC path: a
            suspend restarts from scratch, a deadline has no partial
            result to drain into. *)
         Sys.set_signal Sys.sigterm
           (Sys.Signal_handle (fun _ -> Stdlib.exit exit_suspended));
         Sys.set_signal Sys.sigusr1
           (Sys.Signal_handle (fun _ -> Stdlib.exit exit_deadline));
         if !suspend then Stdlib.exit exit_suspended;
         if !drain then Stdlib.exit exit_deadline;
         let r =
           Vmc.run ~crowd:d.Input.crowd ~factory
             {
               Vmc.n_walkers = d.Input.walkers;
               warmup = d.Input.steps;
               blocks = d.Input.blocks;
               steps_per_block = d.Input.steps;
               tau = d.Input.tau;
               seed = d.Input.seed + 1;
               n_domains = d.Input.domains;
             }
         in
         `Outcome (outcome_of_vmc r)
     | "dmc" ->
         let stop () = !drain || !suspend in
         let snap = Filename.concat cfg.dir "snap" in
         let snapshot = Filename.concat snap spec.Job.id in
         let plan =
           match Supervisor.plan_mode_of_string d.Input.plan with
           | Some pm -> pm
           | None -> Supervisor.Count_level
         in
         (* Efficiency audit: project the calibrated roofline for this
            run shape once, then refresh the [audit.*] gauges at every
            ledger window so the status snapshot (and any Status query)
            carries the live measured-vs-model ratio. *)
         let audit =
           let precision =
             match d.Input.precision with
             | Some p -> p
             | None -> (
                 match d.Input.variant with
                 | Variant.Ref | Variant.Current_f64 -> `F64
                 | Variant.Ref_mp | Variant.Current -> `F32)
           in
           try
             Some
               (Oqmc_autotune.Audit.create ~walkers:d.Input.walkers
                  ~domains:d.Input.domains ~ranks:(max 1 d.Input.ranks)
                  ~variant:d.Input.variant ~precision ~sys ())
           with _ -> None
         in
         let params =
           {
             Supervisor.default_params with
             ranks = max 1 d.Input.ranks;
             target_walkers = d.Input.walkers;
             warmup = d.Input.steps;
             generations = d.Input.blocks * d.Input.steps;
             tau = d.Input.tau;
             seed = d.Input.seed + 1;
             n_domains = d.Input.domains;
             plan;
             (* Live introspection: the runner keeps a ~4 Hz status
                snapshot next to its job snapshots (the daemon's Status
                endpoint reads it) and dumps a flight-recorder
                postmortem there on any abort.  Both files share the
                job-id prefix, so the finished-job scrub removes them. *)
             status = Some (Filename.concat snap (spec.Job.id ^ ".status"));
             flightrec =
               Some (Filename.concat snap (spec.Job.id ^ ".flightrec"));
             on_window =
               Option.map
                 (fun a _gen -> ignore (Oqmc_autotune.Audit.observe a))
                 audit;
           }
         in
         let out =
           Supervisor.run_job ~factory ~local:true ~stop ~snapshot
             ~snapshot_every:cfg.snapshot_every params
         in
         if !suspend && out.Supervisor.drained then `Suspended
         else `Outcome (outcome_of_job out)
     | m -> failwith (Printf.sprintf "unknown method %S" m)
    with e -> `Crashed (Printexc.to_string e)
  in
  (* The daemon may have died while we ran (pipe reader gone): the
     frame send itself must not escape as an exception — an orphan
     exits quietly and the next incarnation resumes from the
     snapshot. *)
  let code =
    match verdict with
    | `Suspended -> (
        try
          send (Jsonx.Obj [ ("suspended", Bool true) ]);
          0
        with _ -> 2)
    | `Outcome o -> (
        try
          send (Jsonx.Obj [ ("outcome", Job.outcome_to_json o) ]);
          0
        with _ -> 2)
    | `Crashed m ->
        (try send (Jsonx.Obj [ ("crashed", Str m) ]) with _ -> ());
        2
  in
  Stdlib.exit code

(* ---------- server state ---------- *)

type terminal =
  | Tdone of Job.outcome * bool  (* outcome, answered-from-cache *)
  | Tfailed of string
  | Trejected of string
  | Tcancelled
  | Tlost  (* journal says done, cache entry gone (healed corruption) *)

type kill_reason = Knone | Kdeadline | Kcancel

type runner = {
  r_spec : Job.spec;
  r_pid : int;
  r_pipe : Unix.file_descr;
  r_attempt : int;
  r_first_started : float;  (* deadline anchor across retries/restarts *)
  mutable r_drain_sent : float;  (* 0. = SIGUSR1 not sent *)
  mutable r_killed : kill_reason;
}

type retry_entry = {
  y_spec : Job.spec;
  y_attempts : int;  (* crash budget consumed *)
  y_due : float;
  y_first_started : float;
  y_reason : string;  (* the crash that put it here *)
}

type counters = {
  mutable c_submitted : int;
  mutable c_accepted : int;
  mutable c_rejected : int;
  mutable c_done : int;
  mutable c_failed : int;
  mutable c_cancelled : int;
  mutable c_cache_hits : int;
  mutable c_suspended : int;
}

type t = {
  cfg : config;
  listener : Unix.file_descr;
  journal : Journal.t;
  sink : Telemetry.sink option;
  queue : Job.spec Jqueue.t;
  running : (string, runner) Hashtbl.t;
  mutable retries : retry_entry list;
  attempts : (string, int) Hashtbl.t;  (* consumed crash budget *)
  first_start : (string, float) Hashtbl.t;
  terminal : (string, terminal) Hashtbl.t;
  waiters : (string, Unix.file_descr list ref) Hashtbl.t;
  mutable clients : Unix.file_descr list;
  mutable next_seq : int;
  k : counters;
  mutable draining : bool;
}

let cache_dir t = Filename.concat t.cfg.dir "cache"
let snap_dir t = Filename.concat t.cfg.dir "snap"

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (Unix.ENOENT, _, _) ->
      invalid_arg (Printf.sprintf "Server: cannot create %s" dir)

let now () = Unix.gettimeofday ()

let emit t ~event ~id ~client ?(attempt = 0) ?(priority = 0) ?queue_wait_s
    ?reason () =
  let base =
    [
      ("t", Jsonx.Num (now ()));
      ("job", Jsonx.Str id);
      ("client", Jsonx.Str client);
      ("event", Jsonx.Str event);
      ("attempt", Jsonx.Num (float_of_int attempt));
      ("priority", Jsonx.Num (float_of_int priority));
    ]
  in
  let base =
    match queue_wait_s with
    | Some w -> base @ [ ("queue_wait_s", Jsonx.Num w) ]
    | None -> base
  in
  let base =
    match reason with
    | Some r -> base @ [ ("reason", Jsonx.Str r) ]
    | None -> base
  in
  (* Every scheduler event also lands in the daemon's in-memory flight
     recorder, so a fatal exit leaves the recent job history behind. *)
  Flightrec.record "serve" (Jsonx.Obj base);
  match t.sink with
  | None -> ()
  | Some sink -> Telemetry.emit sink (Jsonx.Obj base)

let fresh_id t =
  let id = Printf.sprintf "j%04d" t.next_seq in
  t.next_seq <- t.next_seq + 1;
  id

(* Remove every snapshot/shard file belonging to a finished job.  A
   failed job keeps its flight-recorder postmortem — that file is the
   evidence of why it failed. *)
let scrub_snapshots ?(keep_flightrec = false) t id =
  match Sys.readdir (snap_dir t) with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          if
            String.length name > String.length id
            && String.sub name 0 (String.length id + 1) = id ^ "."
            && not (keep_flightrec && Filename.check_suffix name ".flightrec")
          then
            try Sys.remove (Filename.concat (snap_dir t) name)
            with Sys_error _ -> ())
        names

let drop_client t fd =
  t.clients <- List.filter (fun c -> c <> fd) t.clients;
  Hashtbl.iter (fun _ ws -> ws := List.filter (fun c -> c <> fd) !ws) t.waiters;
  try Unix.close fd with Unix.Unix_error _ -> ()

let reply_of_terminal id = function
  | Tdone (outcome, cached) -> Proto.Job_done { id; outcome; cached }
  | Tfailed reason -> Proto.Job_failed { id; reason }
  | Trejected reason -> Proto.Rejected { id; reason }
  | Tcancelled -> Proto.State { id; state = "cancelled"; attempt = 0 }
  | Tlost -> Proto.Error (id ^ ": result no longer cached")

(* A waiter that died just gets dropped; its job is unaffected. *)
let notify_waiters t id =
  match Hashtbl.find_opt t.waiters id with
  | None -> ()
  | Some ws ->
      let reply =
        reply_of_terminal id (Hashtbl.find t.terminal id)
      in
      List.iter
        (fun fd ->
          try Proto.send_reply fd reply
          with Wire.Closed | Unix.Unix_error _ -> drop_client t fd)
        !ws;
      Hashtbl.remove t.waiters id

let journal_safe t record =
  try
    Journal.append t.journal record;
    true
  with Sys_error m ->
    Printf.eprintf "oqmc-serve: journal write failed: %s\n%!" m;
    false

let finalize t (spec : Job.spec) term =
  let id = spec.Job.id in
  Hashtbl.remove t.running id;
  Hashtbl.replace t.terminal id term;
  let tnow = now () in
  (match term with
  | Tdone (outcome, cached) ->
      t.k.c_done <- t.k.c_done + 1;
      ignore
        (journal_safe t
           (Journal.Done
              {
                id;
                hash = (if outcome.Job.drained then "" else spec.Job.hash);
                t = tnow;
              }));
      emit t ~event:"done" ~id ~client:spec.Job.client
        ~priority:spec.Job.priority
        ?reason:(if cached then Some "cache" else None)
        ()
  | Tfailed reason ->
      t.k.c_failed <- t.k.c_failed + 1;
      ignore (journal_safe t (Journal.Failed { id; reason; t = tnow }));
      emit t ~event:"failed" ~id ~client:spec.Job.client
        ~priority:spec.Job.priority ~reason ()
  | Trejected reason ->
      t.k.c_rejected <- t.k.c_rejected + 1;
      ignore
        (journal_safe t
           (Journal.Rejected { id; client = spec.Job.client; reason; t = tnow }));
      emit t ~event:"rejected" ~id ~client:spec.Job.client
        ~priority:spec.Job.priority ~reason ()
  | Tcancelled ->
      t.k.c_cancelled <- t.k.c_cancelled + 1;
      ignore (journal_safe t (Journal.Cancelled { id; t = tnow }));
      emit t ~event:"cancelled" ~id ~client:spec.Job.client
        ~priority:spec.Job.priority ()
  | Tlost -> ());
  (match term with
  | Tdone _ | Tcancelled -> scrub_snapshots t id
  | Tfailed _ -> scrub_snapshots ~keep_flightrec:true t id
  | _ -> ());
  notify_waiters t id

(* ---------- scheduling ---------- *)

let start_job t (spec : Job.spec) ~attempt ~first_started =
  let rfd, wfd = Unix.pipe () in
  let tnow = now () in
  let first_started = if first_started > 0. then first_started else tnow in
  match Unix.fork () with
  | 0 ->
      (* Child: shed every server fd so the daemon's death (or ours)
         propagates only through our own pipe. *)
      let close_q fd = try Unix.close fd with Unix.Unix_error _ -> () in
      close_q rfd;
      close_q t.listener;
      List.iter close_q t.clients;
      Hashtbl.iter (fun _ r -> close_q r.r_pipe) t.running;
      exec_runner t.cfg spec wfd
  | pid ->
      Unix.close wfd;
      Hashtbl.replace t.running spec.Job.id
        {
          r_spec = spec;
          r_pid = pid;
          r_pipe = rfd;
          r_attempt = attempt;
          r_first_started = first_started;
          r_drain_sent = 0.;
          r_killed = Knone;
        };
      Hashtbl.replace t.attempts spec.Job.id attempt;
      Hashtbl.replace t.first_start spec.Job.id first_started;
      ignore
        (journal_safe t
           (Journal.Start { id = spec.Job.id; attempt; pid; t = tnow }));
      emit t ~event:"start" ~id:spec.Job.id ~client:spec.Job.client ~attempt
        ~priority:spec.Job.priority
        ~queue_wait_s:(tnow -. spec.Job.submitted_at) ()

(* Fill free slots: due retries first (they carry a consumed budget and
   an armed deadline), then the fair queue. *)
let start_ready t =
  let continue_ = ref true in
  while
    !continue_ && (not t.draining)
    && Hashtbl.length t.running < t.cfg.max_running
  do
    let tnow = now () in
    let due, still = List.partition (fun y -> y.y_due <= tnow) t.retries in
    match due with
    | y :: rest ->
        t.retries <- rest @ still;
        if
          y.y_spec.Job.deadline_s > 0.
          && y.y_first_started > 0.
          && tnow -. y.y_first_started > y.y_spec.Job.deadline_s
        then
          finalize t y.y_spec
            (Tfailed
               (Printf.sprintf "deadline exceeded after crash: %s" y.y_reason))
        else
          start_job t y.y_spec ~attempt:(y.y_attempts + 1)
            ~first_started:y.y_first_started
    | [] -> (
        match Jqueue.pop t.queue with
        | Some spec ->
            let consumed =
              Option.value ~default:0 (Hashtbl.find_opt t.attempts spec.Job.id)
            in
            let first =
              Option.value ~default:0.
                (Hashtbl.find_opt t.first_start spec.Job.id)
            in
            start_job t spec ~attempt:(consumed + 1) ~first_started:first
        | None -> continue_ := false)
  done

let schedule_retry t (spec : Job.spec) ~attempts ~first_started ~reason =
  let budget =
    if spec.Job.retries >= 0 then spec.Job.retries
    else t.cfg.default_retries
  in
  if attempts > budget then
    finalize t spec
      (Tfailed (Printf.sprintf "crashed (%d attempts): %s" attempts reason))
  else begin
    let backoff = t.cfg.backoff_s *. (2. ** float_of_int (attempts - 1)) in
    t.retries <-
      t.retries
      @ [
          {
            y_spec = spec;
            y_attempts = attempts;
            y_due = now () +. backoff;
            y_first_started = first_started;
            y_reason = reason;
          };
        ];
    emit t ~event:"retry" ~id:spec.Job.id ~client:spec.Job.client
      ~attempt:attempts ~priority:spec.Job.priority ~reason ()
  end

(* One runner finished (its pipe went readable): collect the frame if
   any, reap the child, and route to done / suspend / retry / failed. *)
let handle_runner_event t runner =
  let spec = runner.r_spec in
  let frame =
    match Wire.recv_str ~timeout:10.0 runner.r_pipe with
    | s -> Some s
    | exception (Wire.Closed | Wire.Garbage _ | Wire.Timeout) -> None
  in
  let _, status = Unix.waitpid [] runner.r_pid in
  (try Unix.close runner.r_pipe with Unix.Unix_error _ -> ());
  Hashtbl.remove t.running spec.Job.id;
  let suspend () =
    t.k.c_suspended <- t.k.c_suspended + 1;
    ignore (journal_safe t (Journal.Suspend { id = spec.Job.id; t = now () }));
    emit t ~event:"suspend" ~id:spec.Job.id ~client:spec.Job.client
      ~attempt:runner.r_attempt ~priority:spec.Job.priority ();
    if not t.draining then
      (* A mid-run suspension outside shutdown (operator signal to the
         runner): the budget stays, the job queues again — forced past
         the admission bound, since it was already admitted once. *)
      ignore
        (Jqueue.push ~force:true t.queue ~client:spec.Job.client
           ~priority:spec.Job.priority spec)
  in
  let crash reason =
    if t.draining then
      (* Shutting down: leave the job pending; the Start record without
         a terminal already charges this attempt to the budget. *)
      emit t ~event:"crash_at_shutdown" ~id:spec.Job.id
        ~client:spec.Job.client ~attempt:runner.r_attempt
        ~priority:spec.Job.priority ~reason ()
    else
      schedule_retry t spec ~attempts:runner.r_attempt
        ~first_started:runner.r_first_started ~reason
  in
  let parsed =
    Option.bind frame (fun s ->
        match Jsonx.parse_string_exn s with
        | j -> Some j
        | exception Jsonx.Parse_error _ -> None)
  in
  match parsed with
  | Some j when Jsonx.member "outcome" j <> None -> (
      match Job.outcome_of_json (Option.get (Jsonx.member "outcome" j)) with
      | outcome ->
          if not outcome.Job.drained then
            (try Cache.store ~dir:(cache_dir t) ~hash:spec.Job.hash outcome
             with Sys_error _ | Invalid_argument _ -> ());
          finalize t spec (Tdone (outcome, false))
      | exception Job.Codec_error m -> crash ("bad outcome frame: " ^ m))
  | Some j when Jsonx.member "suspended" j <> None -> suspend ()
  | Some j when Jsonx.member "crashed" j <> None ->
      let reason =
        Option.value ~default:"crashed"
          Jsonx.(Option.bind (member "crashed" j) to_str)
      in
      crash reason
  | Some _ | None -> (
      match runner.r_killed with
      | Kcancel -> finalize t spec Tcancelled
      | Kdeadline -> finalize t spec (Tfailed "deadline exceeded")
      | Knone -> (
          match status with
          | Unix.WEXITED c when c = exit_suspended -> suspend ()
          | Unix.WEXITED c when c = exit_deadline ->
              finalize t spec (Tfailed "deadline exceeded")
          | Unix.WEXITED c ->
              crash (Printf.sprintf "runner exited with code %d" c)
          | Unix.WSIGNALED s ->
              crash (Printf.sprintf "runner killed by signal %d" s)
          | Unix.WSTOPPED s ->
              crash (Printf.sprintf "runner stopped by signal %d" s)))

(* Wall-clock deadlines: first the drain request, a grace later the axe. *)
let enforce_deadlines t =
  let tnow = now () in
  Hashtbl.iter
    (fun _ r ->
      if
        r.r_spec.Job.deadline_s > 0.
        && tnow -. r.r_first_started > r.r_spec.Job.deadline_s
      then
        if r.r_drain_sent = 0. then begin
          r.r_drain_sent <- tnow;
          emit t ~event:"deadline_drain" ~id:r.r_spec.Job.id
            ~client:r.r_spec.Job.client ~attempt:r.r_attempt
            ~priority:r.r_spec.Job.priority ();
          try Unix.kill r.r_pid Sys.sigusr1 with Unix.Unix_error _ -> ()
        end
        else if
          tnow -. r.r_drain_sent > t.cfg.grace_s && r.r_killed = Knone
        then begin
          r.r_killed <- Kdeadline;
          try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end)
    t.running

(* ---------- request handling ---------- *)

let handle_submit t fd (s : Proto.submit) =
  t.k.c_submitted <- t.k.c_submitted + 1;
  let reject id reason =
    t.k.c_rejected <- t.k.c_rejected + 1;
    ignore
      (journal_safe t
         (Journal.Rejected { id; client = s.Proto.client; reason; t = now () }));
    Hashtbl.replace t.terminal id (Trejected reason);
    emit t ~event:"rejected" ~id ~client:s.Proto.client ~reason ();
    Proto.send_reply fd (Proto.Rejected { id; reason })
  in
  if t.draining then reject (fresh_id t) "server shutting down"
  else
    match Input.parse_string s.Proto.deck with
    | exception Input.Parse_error m -> reject (fresh_id t) ("deck: " ^ m)
    | exception Invalid_argument m -> reject (fresh_id t) ("deck: " ^ m)
    | d -> (
        let id = fresh_id t in
        let bad reason = reject id reason in
        let known_workload =
          match String.lowercase_ascii d.Input.workload with
          | "harmonic" | "hydrogen" | "heg" -> true
          | name -> ( match Spec.find name with _ -> true | exception _ -> false)
        in
        if d.Input.method_ <> "vmc" && d.Input.method_ <> "dmc" then
          bad (Printf.sprintf "deck: unknown method %S" d.Input.method_)
        else if not known_workload then
          bad (Printf.sprintf "deck: unknown workload %S" d.Input.workload)
        else
          let hash = Input.deck_hash d in
          let spec =
            {
              Job.id;
              client = s.Proto.client;
              deck = s.Proto.deck;
              hash;
              priority = s.Proto.priority;
              deadline_s = max 0. s.Proto.deadline_s;
              retries = s.Proto.retries;
              submitted_at = now ();
            }
          in
          match Cache.lookup ~dir:(cache_dir t) ~hash with
          | Some outcome ->
              t.k.c_accepted <- t.k.c_accepted + 1;
              t.k.c_cache_hits <- t.k.c_cache_hits + 1;
              if journal_safe t (Journal.Submit spec) then
                ignore
                  (journal_safe t
                     (Journal.Done { id; hash; t = now () }));
              Hashtbl.replace t.terminal id (Tdone (outcome, true));
              t.k.c_done <- t.k.c_done + 1;
              emit t ~event:"submit" ~id ~client:spec.Job.client
                ~priority:spec.Job.priority ();
              emit t ~event:"done" ~id ~client:spec.Job.client
                ~priority:spec.Job.priority ~reason:"cache" ();
              Proto.send_reply fd (Proto.Accepted { id; cached = true; position = 0 });
              if s.Proto.wait then
                Proto.send_reply fd (Proto.Job_done { id; outcome; cached = true })
          | None -> (
              if Jqueue.is_full t.queue then bad "queue full"
              else if not (journal_safe t (Journal.Submit spec)) then
                bad "journal write failed (disk full?)"
              else
                match
                  Jqueue.push t.queue ~client:spec.Job.client
                    ~priority:spec.Job.priority spec
                with
                | Error reason ->
                    (* Can't happen (is_full checked), but never hang. *)
                    bad reason
                | Ok position ->
                    t.k.c_accepted <- t.k.c_accepted + 1;
                    emit t ~event:"submit" ~id ~client:spec.Job.client
                      ~priority:spec.Job.priority ();
                    if s.Proto.wait then begin
                      let ws =
                        match Hashtbl.find_opt t.waiters id with
                        | Some ws -> ws
                        | None ->
                            let ws = ref [] in
                            Hashtbl.replace t.waiters id ws;
                            ws
                      in
                      ws := fd :: !ws
                    end;
                    Proto.send_reply fd
                      (Proto.Accepted { id; cached = false; position })))

let find_queued t id =
  List.find_opt (fun (s : Job.spec) -> s.Job.id = id) (Jqueue.to_list t.queue)

let handle_query t fd id =
  let reply =
    match Hashtbl.find_opt t.terminal id with
    | Some term -> reply_of_terminal id term
    | None -> (
        match Hashtbl.find_opt t.running id with
        | Some r ->
            Proto.State { id; state = "running"; attempt = r.r_attempt }
        | None ->
            if find_queued t id <> None then
              Proto.State { id; state = "queued"; attempt = 0 }
            else if List.exists (fun y -> y.y_spec.Job.id = id) t.retries then
              Proto.State { id; state = "retrying"; attempt = 0 }
            else Proto.Error (id ^ ": unknown job"))
  in
  Proto.send_reply fd reply

let handle_cancel t fd id =
  let reply =
    match Hashtbl.find_opt t.terminal id with
    | Some term -> reply_of_terminal id term
    | None -> (
        match Jqueue.remove t.queue (fun (s : Job.spec) -> s.Job.id = id) with
        | Some spec ->
            finalize t spec Tcancelled;
            Proto.State { id; state = "cancelled"; attempt = 0 }
        | None -> (
            match
              List.find_opt (fun y -> y.y_spec.Job.id = id) t.retries
            with
            | Some y ->
                t.retries <-
                  List.filter (fun e -> e.y_spec.Job.id <> id) t.retries;
                finalize t y.y_spec Tcancelled;
                Proto.State { id; state = "cancelled"; attempt = 0 }
            | None -> (
                match Hashtbl.find_opt t.running id with
                | Some r ->
                    r.r_killed <- Kcancel;
                    (try Unix.kill r.r_pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    Proto.State { id; state = "cancelling"; attempt = r.r_attempt }
                | None -> Proto.Error (id ^ ": unknown job"))))
  in
  Proto.send_reply fd reply

(* ---------- the Status snapshot ---------- *)

let status_file t id = Filename.concat (snap_dir t) (id ^ ".status")

let read_small path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Some s
  | exception Sys_error _ -> None

let stats_of t =
  {
    Proto.submitted = t.k.c_submitted;
    accepted = t.k.c_accepted;
    rejected = t.k.c_rejected;
    done_ = t.k.c_done;
    failed = t.k.c_failed;
    cancelled = t.k.c_cancelled;
    queued = Jqueue.length t.queue;
    running = Hashtbl.length t.running;
    retrying = List.length t.retries;
    cache_hits = t.k.c_cache_hits;
    suspended = t.k.c_suspended;
  }

(* The whole snapshot is assembled from state already in hand plus one
   small atomic-renamed file read per running job — nothing here waits
   on a runner, so the select loop never blocks on Status. *)
let status_of t =
  let tnow = now () in
  let job_json id (r : runner) =
    let live =
      match read_small (status_file t id) with
      | Some s -> (
          match Jsonx.parse_string_exn (String.trim s) with
          | j -> j
          | exception Jsonx.Parse_error _ -> Jsonx.Null)
      | None -> Jsonx.Null
    in
    Jsonx.Obj
      [
        ("id", Jsonx.Str id);
        ("client", Jsonx.Str r.r_spec.Job.client);
        ("attempt", Jsonx.Num (float_of_int r.r_attempt));
        ("running_s", Jsonx.Num (tnow -. r.r_first_started));
        ("live", live);
      ]
  in
  Jsonx.Obj
    [
      ("t", Jsonx.Num tnow);
      ("stats", Proto.stats_to_json (stats_of t));
      ("metrics", Expo.json (Metrics.snapshot ()));
      ( "jobs",
        Jsonx.Arr
          (List.sort compare
             (Hashtbl.fold (fun id _ acc -> id :: acc) t.running [])
          |> List.map (fun id -> job_json id (Hashtbl.find t.running id))) );
    ]

let handle_request t fd = function
  | Proto.Submit s -> handle_submit t fd s
  | Proto.Query id -> handle_query t fd id
  | Proto.Cancel id -> handle_cancel t fd id
  | Proto.Stats -> Proto.send_reply fd (Proto.Stats_reply (stats_of t))
  | Proto.Status -> Proto.send_reply fd (Proto.Status_reply (status_of t))
  | Proto.Ping -> Proto.send_reply fd Proto.Pong

let handle_client t fd =
  match Proto.recv_request ~timeout:10.0 fd with
  | req -> (
      try handle_request t fd req
      with Wire.Closed | Unix.Unix_error (Unix.EPIPE, _, _) -> drop_client t fd)
  | exception Wire.Closed -> drop_client t fd
  | exception (Wire.Timeout | Wire.Garbage _ | Proto.Protocol_error _) ->
      (try Proto.send_reply fd (Proto.Error "malformed request")
       with Wire.Closed | Unix.Unix_error _ -> ());
      drop_client t fd

(* ---------- recovery ---------- *)

(* A stale pid from the journal may have been REUSED by an unrelated
   process since the previous incarnation died (pid_max wraps fast on a
   busy box, and the daemon itself is forked from whoever launched it).
   Only kill a pid we can positively identify as one of our own runner
   forks: same executable image, and neither ourselves nor our parent.
   When in doubt, leave it alone — an unkilled orphan finishes its job
   and exits quietly; a miskilled pid is someone else's process. *)
let stale_pid_is_ours pid =
  pid > 1
  && pid <> Unix.getpid ()
  && pid <> Unix.getppid ()
  &&
  match
    In_channel.with_open_bin
      (Printf.sprintf "/proc/%d/cmdline" pid)
      In_channel.input_all
  with
  | "" -> false
  | cmd ->
      let argv0 =
        match String.index_opt cmd '\000' with
        | Some i -> String.sub cmd 0 i
        | None -> cmd
      in
      Filename.basename argv0 = Filename.basename Sys.executable_name
  | exception Sys_error _ -> false

let recover_state t =
  let rec_ = Journal.recover (Journal.replay (Journal.path t.journal)) in
  t.next_seq <- rec_.Journal.r_next_seq;
  (* Terminal history: Done resolves through the cache (a healed
     corruption demotes it to Tlost — never a wrong result).  The
     counters are restored alongside so stats survive a crash: an
     operator's `rejected` or `done` tally must not reset to zero just
     because the daemon was relaunched on the same state directory. *)
  List.iter
    (fun (id, term) ->
      let term =
        match term with
        | Journal.Tdone "" -> Tlost (* drained partial: never cached *)
        | Journal.Tdone hash -> (
            match Cache.lookup ~dir:(cache_dir t) ~hash with
            | Some outcome -> Tdone (outcome, true)
            | None -> Tlost)
        | Journal.Tfailed reason -> Tfailed reason
        | Journal.Trejected reason -> Trejected reason
        | Journal.Tcancelled -> Tcancelled
      in
      (match term with
      | Tdone _ | Tlost -> t.k.c_done <- t.k.c_done + 1
      | Tfailed _ -> t.k.c_failed <- t.k.c_failed + 1
      | Trejected _ -> t.k.c_rejected <- t.k.c_rejected + 1
      | Tcancelled -> t.k.c_cancelled <- t.k.c_cancelled + 1);
      Hashtbl.replace t.terminal id term)
    rec_.Journal.r_terminal;
  (* Pending jobs: kill any runner the dead incarnation left behind,
     restore the consumed budget and deadline anchor, re-queue. *)
  List.iter
    (fun (p : Journal.pending) ->
      let spec = p.Journal.p_spec in
      if stale_pid_is_ours p.Journal.p_stale_pid then
        (try Unix.kill p.Journal.p_stale_pid Sys.sigkill
         with Unix.Unix_error _ -> ());
      Hashtbl.replace t.attempts spec.Job.id p.Journal.p_attempts;
      if p.Journal.p_first_start > 0. then
        Hashtbl.replace t.first_start spec.Job.id p.Journal.p_first_start;
      (* Already admitted by the dead incarnation: the pending set can
         legitimately exceed the queue bound (it also held the running
         slots), so recovery must never bounce its own backlog. *)
      ignore
        (Jqueue.push ~force:true t.queue ~client:spec.Job.client
           ~priority:spec.Job.priority spec);
      emit t ~event:"recovered" ~id:spec.Job.id ~client:spec.Job.client
        ~attempt:p.Journal.p_attempts ~priority:spec.Job.priority ())
    rec_.Journal.r_pending;
  (* Every admitted job across all incarnations: the ones that already
     finished plus the ones just re-queued.  This keeps the accounting
     identity (accepted = done + failed + cancelled + in-flight) true
     from the first post-recovery stats reply onward. *)
  t.k.c_accepted <-
    List.length rec_.Journal.r_pending
    + t.k.c_done + t.k.c_failed + t.k.c_cancelled;
  t.k.c_submitted <- t.k.c_accepted + t.k.c_rejected

(* ---------- shutdown ---------- *)

let shutdown t =
  t.draining <- true;
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.socket with Sys_error _ -> ());
  (* Ask every runner to suspend (snapshot + exit, no terminal). *)
  Hashtbl.iter
    (fun _ r ->
      try Unix.kill r.r_pid Sys.sigterm with Unix.Unix_error _ -> ())
    t.running;
  let deadline = now () +. t.cfg.grace_s in
  while Hashtbl.length t.running > 0 && now () < deadline do
    let pipes = Hashtbl.fold (fun _ r acc -> r.r_pipe :: acc) t.running [] in
    match Unix.select pipes [] [] 0.1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            let found =
              Hashtbl.fold
                (fun _ r acc -> if r.r_pipe = fd then Some r else acc)
                t.running None
            in
            match found with
            | Some r -> handle_runner_event t r
            | None -> ())
          ready
  done;
  (* Stragglers past the grace: the axe; their budget was charged at
     Start, the journal keeps them pending. *)
  Hashtbl.iter
    (fun _ r ->
      (try Unix.kill r.r_pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] r.r_pid) with Unix.Unix_error _ -> ());
      try Unix.close r.r_pipe with Unix.Unix_error _ -> ())
    t.running;
  Hashtbl.reset t.running;
  (* Waiters get a definite answer before their fd closes. *)
  Hashtbl.iter
    (fun id ws ->
      List.iter
        (fun fd ->
          try
            Proto.send_reply fd
              (Proto.Error (id ^ ": server shutting down; job suspended"))
          with Wire.Closed | Unix.Unix_error _ -> ())
        !ws)
    t.waiters;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) t.clients;
  Journal.close t.journal;
  (* Compact: pending Submits + synthetic Starts preserving budgets. *)
  (try
     Journal.compact ~path:(Filename.concat t.cfg.dir "journal")
       (Journal.recover (Journal.replay (Filename.concat t.cfg.dir "journal")))
   with Sys_error _ -> ());
  match t.sink with Some s -> Telemetry.close s | None -> ()

(* ---------- the daemon ---------- *)

let term_flag = ref false

let rec serve cfg =
  if cfg.max_queue < 1 then invalid_arg "Server.serve: max_queue < 1";
  if cfg.max_running < 1 then invalid_arg "Server.serve: max_running < 1";
  if cfg.snapshot_every < 1 then invalid_arg "Server.serve: snapshot_every < 1";
  mkdir_p cfg.dir;
  mkdir_p (Filename.concat cfg.dir "cache");
  mkdir_p (Filename.concat cfg.dir "snap");
  Wire.mask_sigpipe ();
  let journal = Journal.open_ (Filename.concat cfg.dir "journal") in
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Sys.remove cfg.socket with Sys_error _ -> ());
  Unix.bind listener (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listener 64;
  let t =
    {
      cfg;
      listener;
      journal;
      (* Append, not truncate: a restarted incarnation must extend the
         event stream its predecessor left behind, not erase it. *)
      sink = Option.map (Telemetry.create ~append:true) cfg.telemetry;
      queue = Jqueue.create ~bound:cfg.max_queue ();
      running = Hashtbl.create 8;
      retries = [];
      attempts = Hashtbl.create 16;
      first_start = Hashtbl.create 16;
      terminal = Hashtbl.create 16;
      waiters = Hashtbl.create 16;
      clients = [];
      next_seq = 1;
      k =
        {
          c_submitted = 0;
          c_accepted = 0;
          c_rejected = 0;
          c_done = 0;
          c_failed = 0;
          c_cancelled = 0;
          c_cache_hits = 0;
          c_suspended = 0;
        };
      draining = false;
    }
  in
  recover_state t;
  term_flag := false;
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term_flag := true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> term_flag := true))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm old_term;
      Sys.set_signal Sys.sigint old_int)
    (fun () ->
      (* A fatal daemon exit dumps the flight recorder (recent scheduler
         events) before the exception escapes. *)
      try serve_loop t
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        (match cfg.flightrec with
        | Some path -> (
            try Flightrec.dump ~reason:(Printexc.to_string e) ~path ()
            with _ -> ())
        | None -> ());
        Printexc.raise_with_backtrace e bt)

and serve_loop t =
  while not !term_flag do
    start_ready t;
    enforce_deadlines t;
    let pipes = Hashtbl.fold (fun _ r acc -> r.r_pipe :: acc) t.running [] in
    let fds = (t.listener :: t.clients) @ pipes in
    match Unix.select fds [] [] 0.05 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listener then begin
              match Unix.accept t.listener with
              | conn, _ -> t.clients <- conn :: t.clients
              | exception Unix.Unix_error _ -> ()
            end
            else
              let runner =
                Hashtbl.fold
                  (fun _ r acc -> if r.r_pipe = fd then Some r else acc)
                  t.running None
              in
              match runner with
              | Some r -> handle_runner_event t r
              | None -> if List.mem fd t.clients then handle_client t fd)
          ready
  done;
  shutdown t
