(** Thin client over the {!Proto} frames.  A client never hangs: the
    daemon answers every request, and a dead daemon closes the socket,
    surfacing as [Wire.Closed]. *)

val connect :
  ?attempts:int -> ?delay_s:float -> string -> Unix.file_descr
(** Connect to the daemon socket, retrying the startup race (missing or
    refusing socket) up to [attempts] times [delay_s] apart. *)

val close : Unix.file_descr -> unit

val request :
  ?timeout:float -> Unix.file_descr -> Proto.request -> Proto.reply

val submit :
  ?timeout:float ->
  Unix.file_descr ->
  client:string ->
  ?priority:int ->
  ?deadline_s:float ->
  ?retries:int ->
  ?wait:bool ->
  string ->
  Proto.reply
(** Submit a raw deck.  [retries = -1] (default) takes the server's
    default crash budget; [wait] holds the connection for the terminal
    frame (collect it with {!await}). *)

val await : ?timeout:float -> Unix.file_descr -> Proto.reply
(** Block for the next frame — the terminal reply of a waited submit. *)

val query : ?timeout:float -> Unix.file_descr -> string -> Proto.reply
val cancel : ?timeout:float -> Unix.file_descr -> string -> Proto.reply

val stats : ?timeout:float -> Unix.file_descr -> Proto.stats
(** @raise Proto.Protocol_error on a non-stats reply. *)

val status : ?timeout:float -> Unix.file_descr -> Oqmc_obs.Jsonx.t
(** Full live snapshot: daemon counters, metrics registry (with
    quantiles), and every running job's status file (per-rank ledger
    windows, audit gauges).
    @raise Proto.Protocol_error on a non-status reply. *)

val run_deck :
  ?timeout:float ->
  socket:string ->
  client:string ->
  ?priority:int ->
  ?deadline_s:float ->
  ?retries:int ->
  string ->
  (Job.outcome, string) result
(** Connect, submit with [wait], block to the terminal state and
    disconnect: [Ok outcome] or [Error reason] for every non-Done
    definite state. *)
