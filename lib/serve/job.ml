open Oqmc_obs

(* The unit of work the serve daemon multiplexes: an input deck plus the
   client's fault budget (priority, wall-clock deadline, crash retries).
   Every job ends in exactly one DEFINITE terminal state — Done, Failed,
   Rejected or Cancelled — never a hung client; the journal and the
   @serve-soak accounting are built on that invariant.

   JSON codecs live here because three layers share them: the wire
   protocol (Proto), the crash journal (Journal) and the result cache
   (Cache).  Floats that must survive a round trip bit-exactly (deck
   deadlines are mere seconds, but result energies feed the
   bit-identity acceptance test) are encoded as %h hex strings, not
   JSON numbers — hex also keeps NaN/Inf representable where Jsonx
   would emit null. *)

type state = Queued | Running | Done | Failed | Rejected | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Rejected -> "rejected"
  | Cancelled -> "cancelled"

let terminal = function
  | Done | Failed | Rejected | Cancelled -> true
  | Queued | Running -> false

type spec = {
  id : string;
  client : string;
  deck : string;  (* raw deck text; re-parsed by the runner *)
  hash : string;  (* Input.deck_hash of the parsed deck — the cache key *)
  priority : int;  (* higher runs sooner *)
  deadline_s : float;  (* wall-clock budget from first execution; 0 = none *)
  retries : int;  (* crash respawns allowed after the first attempt *)
  submitted_at : float;
}

type outcome = {
  energy : float;
  error : float;
  variance : float;
  acceptance : float;
  series : float array;  (* measured energy series, for bit-identity *)
  gens : int;  (* generations (DMC) / blocks (VMC) measured *)
  drained : bool;  (* ended early at a generation boundary (deadline) *)
  resumed_from : int;  (* > 0: continued from a snapshot of that gen *)
  wall_s : float;
}

(* ---------- JSON helpers ---------- *)

exception Codec_error of string

let codec_fail fmt = Printf.ksprintf (fun m -> raise (Codec_error m)) fmt
let jfloat v = Jsonx.Str (Printf.sprintf "%h" v)
let jint n = Jsonx.Num (float_of_int n)

let get key j =
  match Jsonx.member key j with
  | Some v -> v
  | None -> codec_fail "job json: missing %S" key

let to_float_exn key j =
  match get key j with
  | Jsonx.Str s -> (
      try float_of_string s with Failure _ -> codec_fail "job json: bad %S" key)
  | _ -> codec_fail "job json: %S not a hex float" key

let to_int_exn key j =
  match Jsonx.to_float (get key j) with
  | Some v when Float.is_integer v -> int_of_float v
  | _ -> codec_fail "job json: %S not an int" key

let to_str_exn key j =
  match Jsonx.to_str (get key j) with
  | Some s -> s
  | None -> codec_fail "job json: %S not a string" key

let to_bool_exn key j =
  match get key j with
  | Jsonx.Bool b -> b
  | _ -> codec_fail "job json: %S not a bool" key

(* ---------- codecs ---------- *)

let spec_to_json s =
  Jsonx.Obj
    [
      ("id", Str s.id);
      ("client", Str s.client);
      ("deck", Str s.deck);
      ("hash", Str s.hash);
      ("priority", jint s.priority);
      ("deadline_s", jfloat s.deadline_s);
      ("retries", jint s.retries);
      ("submitted_at", jfloat s.submitted_at);
    ]

let spec_of_json j =
  {
    id = to_str_exn "id" j;
    client = to_str_exn "client" j;
    deck = to_str_exn "deck" j;
    hash = to_str_exn "hash" j;
    priority = to_int_exn "priority" j;
    deadline_s = to_float_exn "deadline_s" j;
    retries = to_int_exn "retries" j;
    submitted_at = to_float_exn "submitted_at" j;
  }

let outcome_to_json o =
  Jsonx.Obj
    [
      ("energy", jfloat o.energy);
      ("error", jfloat o.error);
      ("variance", jfloat o.variance);
      ("acceptance", jfloat o.acceptance);
      ("series", Arr (Array.to_list (Array.map (fun e -> jfloat e) o.series)));
      ("gens", jint o.gens);
      ("drained", Bool o.drained);
      ("resumed_from", jint o.resumed_from);
      ("wall_s", jfloat o.wall_s);
    ]

let outcome_of_json j =
  let series =
    match Jsonx.to_list (get "series" j) with
    | Some xs ->
        Array.of_list
          (List.map
             (function
               | Jsonx.Str s -> (
                   try float_of_string s
                   with Failure _ -> codec_fail "job json: bad series element")
               | _ -> codec_fail "job json: series element not a hex float")
             xs)
    | None -> codec_fail "job json: series not an array"
  in
  {
    energy = to_float_exn "energy" j;
    error = to_float_exn "error" j;
    variance = to_float_exn "variance" j;
    acceptance = to_float_exn "acceptance" j;
    series;
    gens = to_int_exn "gens" j;
    drained = to_bool_exn "drained" j;
    resumed_from = to_int_exn "resumed_from" j;
    wall_s = to_float_exn "wall_s" j;
  }
