(* Analytic per-kernel operation and byte counts for one DMC step of one
   walker (a full particle-by-particle sweep plus measurement), derived by
   inspection of the kernels in lib/particle and lib/wavefunction.  These
   are properties of the algorithms — flops and bytes do not depend on the
   machine — and feed the roofline (Fig. 7) and the cross-platform
   projections (Table 2).

   Each kernel carries two efficiency constants — [eff], the fraction of
   the machine's (precision-appropriate) peak it reaches when
   compute-bound, and [stream], the fraction of a memory level's STREAM
   bandwidth it reaches when memory-bound — plus [vectorized], which
   controls whether the machine's scalar-issue penalty applies.  These
   are the model's only calibration constants; they are set so the BDW
   per-kernel speedups land near the paper's measured 5x / 8x / 1.7x /
   1.3x (Sec. 8.1), and are machine-independent. *)

type level_hint = Cache | Dram

type kernel_cost = {
  kernel : string;
  flops : float;
  bytes : float;
  eff : float;
      (* compute-bound efficiency: fraction of the precision peak for
         vectorized kernels, fraction of the scalar-issue peak otherwise *)
  stream : float; (* fraction of STREAM bandwidth when memory-bound *)
  vectorized : bool;
  single : bool; (* storage precision of the streamed data *)
  level : level_hint;
      (* which memory level bounds the kernel: [Cache] for compact
         working sets (Current tables, determinant inverses), [Dram] for
         ones that spill (Ref stored state, the shared B-spline table) *)
}

type params = {
  n : int; (* electrons *)
  n_ion : int;
  n_spo : int; (* orbitals per spin determinant *)
  elt_bytes : int; (* 4 (MP) or 8 (double) for the key structures *)
  layout : [ `Store | `Otf ];
  acceptance : float; (* fraction of accepted moves *)
  nlpp_evals : float; (* value-only SPO evaluations per sweep *)
  tile : int; (* orbital tile of the tiled B-spline table; 0 = flat *)
}

let default_acceptance = 0.5

(* Effective-bandwidth factor of the tiled (array-of-SoA) orbital table
   relative to the flat one, applied to the [stream] constant of the
   B-spline kernels.  The tiled layout bounds one stencil pass's staged
   slab to 64·tile coefficients plus a tile-wide output strip, which
   stays cache-resident between the stage and accumulate halves — but a
   small tile repays that with per-tile loop startup and base-pointer
   chasing.  Reuse therefore saturates in the tile size while a spill
   term grows once the slab outsizes the first cache level; the peak
   sits near tile = 32..64.  Like [eff]/[stream] this is a calibration
   constant, machine-independent by design. *)
let tile_stream_boost tile =
  if tile <= 0 then 1.0
  else begin
    let t = float_of_int tile in
    let reuse = 1.4 *. t /. (t +. 8.) in
    let spill = 1. +. (t /. 512.) in
    Float.max 0.5 (reuse /. spill)
  end

(* Per-element costs of a distance-row evaluation (subtract, minimum
   image, square, sqrt). *)
let dist_flops = 18.

let step_costs (p : params) =
  let n = float_of_int p.n in
  let ni = float_of_int p.n_ion in
  let m = float_of_int p.n_spo in
  let s = float_of_int p.elt_bytes in
  let single = p.elt_bytes = 4 in
  let acc = p.acceptance in
  let spline_flops = 14. in
  let tb = tile_stream_boost p.tile in
  match p.layout with
  | `Otf ->
      [
        (* prepare + temp rows per move, full re-evaluate at measurement;
           contiguous SIMD rows. *)
        {
          kernel = "DistTable";
          flops = dist_flops *. ((n *. ((2. *. n) +. ni)) +. (n *. n));
          bytes = 7. *. s *. ((n *. ((2. *. n) +. ni)) +. (n *. n));
          eff = 0.35;
          stream = 0.3;
          vectorized = true;
          single;
          level = Cache;
        };
        (* two spline rows per move (old + new), 5N accumulator updates on
           acceptance. *)
        {
          kernel = "J2";
          flops = (spline_flops *. 2. *. n *. n) +. (acc *. 10. *. n *. n);
          bytes = (2. *. n *. n *. (s +. 8.)) +. (acc *. n *. 5. *. 8.);
          eff = 0.22;
          stream = 0.12;
          vectorized = true;
          single;
          level = Cache;
        };
        {
          kernel = "J1";
          flops = spline_flops *. 2. *. n *. ni;
          bytes = 2. *. n *. ni *. (s +. 8.);
          eff = 0.22;
          stream = 0.12;
          vectorized = true;
          single;
          level = Cache;
        };
        {
          kernel = "Bspline-v";
          flops = p.nlpp_evals *. 64. *. m *. 2.;
          bytes = p.nlpp_evals *. 64. *. m *. 4.;
          eff = 0.10;
          stream = 0.52 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        {
          kernel = "Bspline-vgh";
          flops = n *. 64. *. m *. 20.;
          bytes = n *. 64. *. m *. 4.;
          eff = 0.13;
          stream = 0.27 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        {
          kernel = "SPO-vgl";
          flops = (n *. 64. *. m *. 20.) +. (n *. 10. *. m);
          bytes = n *. ((64. *. m *. 4.) +. (m *. s));
          eff = 0.13;
          stream = 0.27 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        (* ratio dots for every move and NLPP evaluation; Sherman–Morrison
           rank-1 on acceptance. *)
        {
          kernel = "DetUpdate";
          flops =
            ((n +. p.nlpp_evals) *. 2. *. m) +. (acc *. n *. 4. *. m *. m);
          bytes = ((n +. p.nlpp_evals) *. m *. s) +. (acc *. n *. 3. *. m *. m *. s);
          eff = 0.25;
          stream = 0.7;
          vectorized = true;
          single;
          level = Cache;
        };
      ]
  | `Store ->
      [
        (* temp rows per move + scattered triangle copies on acceptance;
           strided AoS access defeats vectorization. *)
        {
          kernel = "DistTable";
          flops = dist_flops *. n *. (n +. ni);
          bytes =
            (7. *. s *. n *. (n +. ni)) +. (acc *. n *. n *. 8. *. s);
          eff = 0.045;
          stream = 0.15;
          vectorized = false;
          single;
          level = Dram;
        };
        (* new row computed, old values retrieved from the 5N² store; row
           and column rewritten on acceptance. *)
        {
          kernel = "J2";
          flops = spline_flops *. n *. n;
          bytes =
            (n *. n *. (s +. 8.)) +. (n *. n *. s)
            +. (acc *. n *. 10. *. n *. s)
            +. (5. *. n *. n *. s) (* measurement reads the matrices *);
          eff = 0.045;
          stream = 0.22;
          vectorized = false;
          single;
          level = Dram;
        };
        {
          kernel = "J1";
          flops = spline_flops *. n *. ni;
          bytes = (2. *. n *. ni *. (s +. 8.)) +. (acc *. n *. 5. *. ni *. s);
          eff = 0.045;
          stream = 0.22;
          vectorized = false;
          single;
          level = Dram;
        };
        {
          kernel = "Bspline-v";
          flops = p.nlpp_evals *. 64. *. m *. 2.;
          bytes = p.nlpp_evals *. 64. *. m *. 4.;
          eff = 0.08;
          stream = 0.4 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        {
          kernel = "Bspline-vgh";
          flops = n *. 64. *. m *. 20.;
          bytes = n *. 64. *. m *. 4. *. 2.5 (* AoS outputs spill *);
          eff = 0.08;
          stream = 0.4 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        {
          kernel = "SPO-vgl";
          flops = (n *. 64. *. m *. 20.) +. (n *. 10. *. m);
          bytes = n *. ((64. *. m *. 4. *. 2.5) +. (m *. s));
          eff = 0.08;
          stream = 0.4 *. tb;
          vectorized = true;
          single = true;
          level = Dram;
        };
        {
          kernel = "DetUpdate";
          flops =
            ((n +. p.nlpp_evals) *. 2. *. m) +. (acc *. n *. 4. *. m *. m);
          bytes =
            ((n +. p.nlpp_evals) *. m *. s) +. (acc *. n *. 3. *. m *. m *. s);
          eff = 0.25;
          stream = 0.7;
          vectorized = true;
          single;
          level = Cache;
        };
      ]

let arithmetic_intensity c = if c.bytes > 0. then c.flops /. c.bytes else 0.

let total_flops costs = List.fold_left (fun a c -> a +. c.flops) 0. costs
let total_bytes costs = List.fold_left (fun a c -> a +. c.bytes) 0. costs

(* Estimated number of value-only SPO evaluations a pseudopotential
   workload performs per sweep: electrons within the PP cutoff of an ion
   each cost a 12-point quadrature shell. *)
let nlpp_evals_estimate ~n ~has_pp =
  if has_pp then 0.5 *. float_of_int n else 0.
