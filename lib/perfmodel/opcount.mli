(** Analytic per-kernel operation/byte counts for one DMC step of one
    walker, derived from the kernels in [lib/particle] and
    [lib/wavefunction].  Flops and bytes are machine-independent
    properties of the algorithms; [eff]/[stream]/[vectorized]/[level] are
    the model's calibration constants (see the implementation header). *)

type level_hint = Cache | Dram

type kernel_cost = {
  kernel : string;
  flops : float;
  bytes : float;
  eff : float;
  stream : float;
  vectorized : bool;
  single : bool;
  level : level_hint;
}

type params = {
  n : int;
  n_ion : int;
  n_spo : int;
  elt_bytes : int;  (** 4 (mixed precision) or 8 *)
  layout : [ `Store | `Otf ];
  acceptance : float;
  nlpp_evals : float;
  tile : int;
      (** orbital tile size of the tiled (array-of-SoA) B-spline table;
          0 = flat layout *)
}

val default_acceptance : float
val dist_flops : float

val tile_stream_boost : int -> float
(** Effective-bandwidth factor of the tiled orbital table relative to
    flat, applied to the B-spline kernels' [stream] constant; 1.0 at
    tile = 0 (flat), peaking near tile = 32..64. *)

val step_costs : params -> kernel_cost list
(** One entry per kernel of the paper's profiles. *)

val arithmetic_intensity : kernel_cost -> float
val total_flops : kernel_cost list -> float
val total_bytes : kernel_cost list -> float

val nlpp_evals_estimate : n:int -> has_pp:bool -> float
(** Value-only SPO evaluations per sweep from the pseudopotential
    quadrature. *)
