open Oqmc_containers
open Oqmc_perfmodel

(* On-node machine calibration for the autotuner.

   The roofline/memory models normally run against published SKU
   constants ({!Machine.knl} etc.) — hardware this repository cannot run
   on.  When tuning for the node we are actually executing on, those
   constants are wrong; this module measures the two numbers the models
   need (sustained scalar flop rate; streaming bandwidth at a
   cache-resident and a DRAM-sized footprint) with microbenchmarks built
   from the same monomorphic float-array loops the kernels use, and
   packages them as a single-core {!Machine.t}.

   The encoding: with [simd_bits = 64], [fma_units = 1] and [cores = 1],
   {!Machine.flops_per_cycle_dp} is exactly 2, so setting
   [freq_ghz = gflops / 2] makes {!Machine.peak_gflops} reproduce the
   measured rate at either precision ([sp_vector = false]: OCaml scalar
   code gains no width from f32 — f32 wins come from bandwidth, which the
   level table carries). *)

let kib = 1024

(* Sustained scalar FMA-shaped rate: 4 independent accumulator chains
   over an L1-resident array, 2 flops per element.  The sink defeats
   dead-code elimination. *)
let sink = ref 0.

let measure_gflops ~reps =
  let n = 4 * kib in
  let a = Array.init n (fun i -> 1. +. (float_of_int i *. 1e-9)) in
  let run () =
    let s0 = ref 0. and s1 = ref 0. and s2 = ref 0. and s3 = ref 0. in
    let i = ref 0 in
    while !i + 3 < n do
      s0 := !s0 +. (Array.unsafe_get a !i *. 1.0000001);
      s1 := !s1 +. (Array.unsafe_get a (!i + 1) *. 0.9999999);
      s2 := !s2 +. (Array.unsafe_get a (!i + 2) *. 1.0000002);
      s3 := !s3 +. (Array.unsafe_get a (!i + 3) *. 0.9999998);
      i := !i + 4
    done;
    sink := !sink +. !s0 +. !s1 +. !s2 +. !s3
  in
  run ();
  (* warmup *)
  let t0 = Timers.now () in
  for _ = 1 to reps do
    run ()
  done;
  let dt = Timers.now () -. t0 in
  let flops = 2. *. float_of_int n *. float_of_int reps in
  if dt <= 0. then 1. else flops /. dt /. 1e9

(* STREAM-triad bandwidth over a given per-array element count:
   a(i) = b(i) + s·c(i) moves 24 bytes per element (one write allocate
   counted with the write). *)
let measure_triad ~n ~reps =
  let a = Array.make n 0. in
  let b = Array.init n (fun i -> float_of_int i) in
  let c = Array.init n (fun i -> float_of_int (n - i)) in
  let run () =
    for i = 0 to n - 1 do
      Array.unsafe_set a i
        (Array.unsafe_get b i +. (0.5 *. Array.unsafe_get c i))
    done
  in
  run ();
  let t0 = Timers.now () in
  for _ = 1 to reps do
    run ()
  done;
  let dt = Timers.now () -. t0 in
  sink := !sink +. a.(n / 2);
  let bytes = 24. *. float_of_int n *. float_of_int reps in
  if dt <= 0. then 1. else bytes /. dt /. 1e9

let machine ?(quick = true) () =
  let scale r = if quick then r else r * 8 in
  (* Best-of-3 defends against scheduler noise on a shared node. *)
  let best f = max (f ()) (max (f ()) (f ())) in
  let gflops = best (fun () -> measure_gflops ~reps:(scale 2_000)) in
  (* 48 KiB/array: L1/L2-resident.  16 MiB/array: past any private
     cache, so the triad streams from DRAM. *)
  let bw_cache =
    best (fun () -> measure_triad ~n:(6 * kib) ~reps:(scale 2_000))
  in
  let bw_dram =
    best (fun () -> measure_triad ~n:(2048 * kib) ~reps:(scale 2))
  in
  (* Caches never make streaming slower than DRAM; clamp the rare noisy
     inversion so the tuner's level choice stays monotone. *)
  let bw_cache = Float.max bw_cache bw_dram in
  {
    Machine.mname = "calibrated";
    cores = 1;
    threads_per_core = 1;
    freq_ghz = gflops /. 2.;
    simd_bits = 64;
    fma_units = 1;
    levels =
      [
        { Machine.level = "CACHE"; bandwidth = bw_cache; capacity_gb = 0.002 };
        { Machine.level = "DRAM"; bandwidth = bw_dram; capacity_gb = 4. };
      ];
    package_watts = 65.;
    dram_watts = 5.;
    smt_uplift = 1.0;
    scalar_factor = 1.0;
    stream_factor = 1.0;
    sp_vector = false;
  }
