open Oqmc_wavefunction
open Oqmc_core
open Oqmc_perfmodel
module Mx = Oqmc_obs.Metrics
module J = Oqmc_obs.Jsonx

(* Efficiency audit: measured generation wall time and per-kernel timer
   totals vs the calibrated roofline projection for the same system and
   run shape.

   The projection side reuses exactly the analytic pipeline the tuner
   optimizes over — {!Opcount.step_costs} for the per-kernel op/byte
   counts, {!Roofline.project_all} through the machine descriptor — so
   the audit answers "how close is this run to the model the knobs were
   chosen against", not "how close to an aspirational peak".  The
   measured side reads the global {!Oqmc_obs.Metrics} registry: the
   supervisor's [sup.generation_s] histogram and the [timer_us.*]
   kernel counters that both executors (forked rank piggyback, local
   {!Oqmc_dist.Supervisor} timer absorption) feed.  Everything is
   published back into the registry as [audit.*] gauges, which the
   status snapshot echoes — a Status query surfaces the live ratio. *)

type t = {
  machine : Machine.t;
  calibrated : bool;  (* machine came from on-node calibration *)
  points : Roofline.point list;
  step_s : float;  (* modeled one-walker step seconds *)
  projected_gen_s : float;  (* modeled generation wall for this shape *)
  walkers : int;
  lanes : int;  (* ranks × domains: the ideal parallel width *)
}

type kernel_verdict = {
  kernel : string;
  measured_s : float;  (* total seconds in this kernel, all lanes *)
  measured_frac : float;  (* share of total measured kernel time *)
  projected_frac : float;  (* share the roofline predicts *)
}

type report = {
  machine_name : string;
  calibrated : bool;
  projected_gen_s : float;
  measured_gen_s : float;
  efficiency : float;  (* projected / measured: 1.0 = at the model *)
  gens : int;  (* generations behind the measured mean *)
  kernels : kernel_verdict list;
}

let create ?machine ?(walkers = 8) ?(domains = 1) ?(ranks = 1) ?(tile = 0)
    ~variant ~precision ~(sys : System.t) () =
  let calibrated = machine = None in
  let mach = match machine with Some m -> m | None -> Calibrate.machine () in
  let n = System.n_electrons sys in
  let n_ion = System.n_ions sys in
  let n_spo = sys.System.spo.Spo.n_orb in
  let elt_bytes = match precision with `F32 -> 4 | `F64 -> 8 in
  let layout =
    match Variant.layout variant with
    | Variant.Store -> `Store
    | Variant.Otf -> `Otf
  in
  let has_pp = sys.System.ham.System.nlpp <> None in
  let costs =
    Opcount.step_costs
      {
        Opcount.n;
        n_ion;
        n_spo;
        elt_bytes;
        layout;
        acceptance = Opcount.default_acceptance;
        nlpp_evals = Opcount.nlpp_evals_estimate ~n ~has_pp;
        tile;
      }
  in
  let points = Roofline.project_all mach costs in
  let step_s = Roofline.total_time points in
  let lanes = max 1 ranks * max 1 domains in
  let projected_gen_s =
    step_s *. float_of_int (max 1 walkers) /. float_of_int lanes
  in
  {
    machine = mach;
    calibrated;
    points;
    step_s;
    projected_gen_s;
    walkers;
    lanes;
  }

let timer_prefix = "timer_us."

(* [timer_us.<kernel>] counters from a registry snapshot, as
   (kernel, seconds). *)
let registry_kernel_seconds snap =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Mx.Counter c
        when String.length name > String.length timer_prefix
             && String.sub name 0 (String.length timer_prefix) = timer_prefix
        ->
          Some
            ( String.sub name (String.length timer_prefix)
                (String.length name - String.length timer_prefix),
              float_of_int c /. 1e6 )
      | _ -> None)
    snap

(* The tiled B-spline engines charge their own timer keys
   ([Bspline-v-tiled] / [Bspline-vgh-tiled]); fold those into the base
   kernel names so the [frac.<kernel>] gauges and the verdict table stay
   comparable across layouts without new call sites. *)
let fold_tiled kernel_s =
  let suffix = "-tiled" in
  let base name =
    let ln = String.length name and ls = String.length suffix in
    if ln > ls && String.sub name (ln - ls) ls = suffix then
      String.sub name 0 (ln - ls)
    else name
  in
  List.fold_left
    (fun acc (k, s) ->
      let k = base k in
      match List.assoc_opt k acc with
      | Some prev -> (k, prev +. s) :: List.remove_assoc k acc
      | None -> (k, s) :: acc)
    [] kernel_s

let observe ?measured_gen_s ?kernel_seconds t =
  let snap = Mx.snapshot () in
  let measured =
    match measured_gen_s with
    | Some _ as m -> Option.map (fun s -> (s, 0)) m
    | None -> (
        match Mx.find snap "sup.generation_s" with
        | Some (Mx.Histogram hv) when hv.Mx.count > 0 ->
            Some (hv.Mx.sum /. float_of_int hv.Mx.count, hv.Mx.count)
        | _ -> None)
  in
  match measured with
  | None -> None
  | Some (measured_gen_s, gens) ->
      let kernel_s =
        fold_tiled
          (match kernel_seconds with
          | Some ks -> ks
          | None -> registry_kernel_seconds snap)
      in
      let total_kernel_s =
        List.fold_left (fun a (_, s) -> a +. s) 0. kernel_s
      in
      let projected_fracs = Roofline.profile t.points in
      let kernels =
        List.map
          (fun (pt : Roofline.point) ->
            let m_s =
              Option.value ~default:0.
                (List.assoc_opt pt.Roofline.kernel kernel_s)
            in
            {
              kernel = pt.Roofline.kernel;
              measured_s = m_s;
              measured_frac =
                (if total_kernel_s > 0. then m_s /. total_kernel_s else 0.);
              projected_frac =
                Option.value ~default:0.
                  (List.assoc_opt pt.Roofline.kernel projected_fracs);
            })
          t.points
      in
      let efficiency =
        if measured_gen_s > 0. then t.projected_gen_s /. measured_gen_s
        else 0.
      in
      Mx.set (Mx.gauge "audit.efficiency") efficiency;
      Mx.set (Mx.gauge "audit.projected_gen_s") t.projected_gen_s;
      Mx.set (Mx.gauge "audit.measured_gen_s") measured_gen_s;
      List.iter
        (fun kv ->
          Mx.set (Mx.gauge ("audit.frac." ^ kv.kernel)) kv.measured_frac)
        kernels;
      Some
        {
          machine_name = t.machine.Machine.mname;
          calibrated = t.calibrated;
          projected_gen_s = t.projected_gen_s;
          measured_gen_s;
          efficiency;
          gens;
          kernels;
        }

let table r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "efficiency audit [%s%s]: generation %.3f ms measured vs %.3f ms \
     projected -> %.0f%% of the roofline model%s\n"
    r.machine_name
    (if r.calibrated then ", on-node calibration" else "")
    (r.measured_gen_s *. 1e3)
    (r.projected_gen_s *. 1e3)
    (r.efficiency *. 100.)
    (if r.gens > 0 then Printf.sprintf " (%d generations)" r.gens else "");
  Printf.bprintf b "  %-14s %12s %8s %8s\n" "kernel" "measured_s" "meas%"
    "model%";
  List.iter
    (fun k ->
      Printf.bprintf b "  %-14s %12.4f %7.1f%% %7.1f%%\n" k.kernel
        k.measured_s
        (k.measured_frac *. 100.)
        (k.projected_frac *. 100.))
    r.kernels;
  let verdict =
    if r.efficiency >= 0.5 then
      "verdict: within 2x of the projection; kernel mix above shows \
       where the rest goes"
    else if r.efficiency > 0. then
      "verdict: more than 2x off the projection; compare meas% vs \
       model% above for the hot spot"
    else "verdict: no measured generation time"
  in
  Buffer.add_string b verdict;
  Buffer.add_char b '\n';
  Buffer.contents b

let json r =
  J.Obj
    [
      ("machine", J.Str r.machine_name);
      ("calibrated", J.Bool r.calibrated);
      ("projected_gen_s", J.Num r.projected_gen_s);
      ("measured_gen_s", J.Num r.measured_gen_s);
      ("efficiency", J.Num r.efficiency);
      ("gens", J.Num (float_of_int r.gens));
      ( "kernels",
        J.Arr
          (List.map
             (fun k ->
               J.Obj
                 [
                   ("kernel", J.Str k.kernel);
                   ("measured_s", J.Num k.measured_s);
                   ("measured_frac", J.Num k.measured_frac);
                   ("projected_frac", J.Num k.projected_frac);
                 ])
             r.kernels) );
    ]
