open Oqmc_containers
open Oqmc_particle
open Oqmc_wavefunction
open Oqmc_rng
open Oqmc_core
open Oqmc_perfmodel

(* Roofline-driven knob selection.

   Given a system and a machine descriptor (published SKU or on-node
   calibration), pick the four throughput knobs of the optimized
   pipeline — crowd size, delayed-update rank, scheduler grain and the
   orbital-table tile (0 = flat layout) — by minimizing a modeled
   one-walker step time, optionally refined for the delay rank and the
   tile by short measured sweeps on the node itself.

   The model starts from the repo's analytic per-kernel op/byte counts
   ({!Opcount.step_costs}) projected through the cache-aware roofline
   ({!Roofline.project}), then adjusts the two knob-sensitive parts:

   - crowd batching amortizes per-call overhead and table traversal
     across [c] lockstep walkers.  Each kernel class approaches a
     saturating speedup [s] (calibrated against BENCH_crowd on this
     code: distance tables ≈ 4×, Jastrows ≈ 3×, spline/SPO ≈ 2×):
     t(c) = t(1) · (1/s + (1 − 1/s)/c).  A crowd whose combined walker
     state falls out of the first memory level pays a spill penalty.

   - the delayed determinant update trades the per-accept O(N²)
     Sherman–Morrison stream for O(kN) ratio corrections plus a blocked
     O(kN²) flush every k accepts.  In the flush kernels one inverse
     element load/store serves up to 4 rank corrections (the 4-way rank
     unroll in {!Oqmc_linalg.Blas.rank_update}), so the effective
     compute rate rises with k while the per-accept memory traffic falls
     as 1/k; the ratio corrections grow linearly with k and eventually
     win.  k = 2 is never chosen: it pays the correction tax with no
     register reuse.  When the two spin inverses fit in cache the
     traffic term is already cheap and k = 1 wins — matching the
     measured crossover (k1 fastest at N = 32, k8 ≈ 1.6× faster at
     N = 192). *)

module Ps64 = Particle_set.Make (Precision.F64)
module Det64 = Slater_det.Make (Precision.F64) (Precision.F64)
module W64 = Wfc.Make (Precision.F64)

type knobs = { crowd : int; delay : int; grain : int; tile : int }

type candidate = {
  cand : knobs;
  model_step_s : float;
  measured_det_ns : float option;
  measured_spline_ns : float option;
}

type choice = {
  knobs : knobs;
  machine : Machine.t;
  calibrated : bool;
  refined : bool;
  baseline_step_s : float;
  tuned_step_s : float;
  predicted_speedup : float;
  candidates : candidate list;
}

let crowd_candidates = [ 1; 2; 4; 8; 16; 32 ]
let delay_candidates = [ 1; 4; 8; 16 ]

(* Orbital-tile candidates; 0 = flat layout.  Tiles at or above the
   orbital count degenerate to a one-tile table and are filtered out in
   {!choose}. *)
let tile_candidates = [ 0; 8; 16; 32; 64 ]

let spline_kernel = function
  | "Bspline-v" | "Bspline-vgh" | "SPO-vgl" -> true
  | _ -> false

(* Saturating crowd-batching speedup per kernel class. *)
let batch_saturation = function
  | "DistTable" -> 4.0
  | "J2" | "J1" -> 3.0
  | "Bspline-v" | "Bspline-vgh" | "SPO-vgl" -> 2.0
  | _ -> 1.0

(* Rank-direction register reuse of the blocked flush kernels: one
   scratch load/store serves min(k,4) corrections; sustained gain
   saturates near 2 (loads of T rows and the fused-chain latency cap
   it below the 4× naive bound). *)
let rank_reuse k = if k >= 8 then 2.0 else if k >= 4 then 1.7 else 1.0

(* First memory level whose capacity holds [bytes]. *)
let level_for (m : Machine.t) bytes =
  let n_levels = List.length m.Machine.levels in
  let rec go i = function
    | [] -> n_levels - 1
    | l :: rest ->
        if bytes <= l.Machine.capacity_gb *. 1e9 then i else go (i + 1) rest
  in
  go 0 m.Machine.levels

(* Modeled determinant-update time for one walker step (n one-particle
   moves against two per-spin inverses of order [m]) at delay rank k.
   eff/stream constants are inherited from the DetUpdate entry of
   {!Opcount.step_costs} so the k = 1 point stays anchored to the
   repo's calibrated roofline. *)
let det_time (mach : Machine.t) (det_cost : Opcount.kernel_cost) ~m ~n
    ~elt_bytes ~acceptance k =
  let fm = float_of_int m in
  let moves = float_of_int n in
  let accepts = acceptance *. moves in
  let flush_flops = 4. *. fm *. fm *. accepts in
  (* Every move's ratio carries O(k·m) queue corrections (average queue
     depth k/2) plus the O(k²) Schur solve. *)
  let ratio_flops =
    moves *. ((2. *. float_of_int (k - 1) *. fm) +. float_of_int (k * k))
  in
  let rate = Roofline.compute_rate mach det_cost *. 1e9 in
  let t_compute =
    (flush_flops /. (rate *. rank_reuse k)) +. (ratio_flops /. rate)
  in
  let elt = float_of_int elt_bytes in
  (* Flush streams the inverse 3× (read for the panel, read+write for
     the rank update) once per k accepts; staging moves O(k·m) rows. *)
  let bytes =
    accepts
    *. ((3. *. fm *. fm *. elt /. float_of_int k)
       +. (32. *. float_of_int k *. fm))
  in
  let ws = 2. *. fm *. fm *. elt in
  let lvl = level_for mach ws in
  let bw =
    Machine.bandwidth ~level:lvl mach *. mach.Machine.stream_factor
    *. det_cost.Opcount.stream *. 1e9
  in
  Float.max t_compute (bytes /. bw)

(* Modeled time of the B-spline/SPO kernels at crowd [c], batched the
   same way {!model_step_time} batches them — the component the tile
   knob rescales (pass the costs/points projected at that tile). *)
let spline_time ~costs ~points c =
  let fc = float_of_int c in
  List.fold_left2
    (fun acc (q : Opcount.kernel_cost) (p : Roofline.point) ->
      if spline_kernel q.Opcount.kernel then begin
        let s = batch_saturation q.Opcount.kernel in
        acc
        +. (p.Roofline.time_s *. ((1. /. s) +. ((1. -. (1. /. s)) /. fc)))
      end
      else acc)
    0. costs points

(* Modeled one-walker step time at the given knobs ([costs]/[points]
   must be projected at the knobs' tile). *)
let model_step_time (mach : Machine.t) ~costs ~points ~m ~n ~elt_bytes
    ~acceptance ~walker_bytes { crowd = c; delay = k; grain = _; tile = _ } =
  let det_cost =
    List.find (fun q -> q.Opcount.kernel = "DetUpdate") costs
  in
  let spill =
    let ws = float_of_int (c * walker_bytes) in
    if level_for mach ws > 0 then 1.25 else 1.0
  in
  List.fold_left2
    (fun acc (q : Opcount.kernel_cost) (p : Roofline.point) ->
      if q.Opcount.kernel = "DetUpdate" then
        acc +. det_time mach det_cost ~m ~n ~elt_bytes ~acceptance k
      else begin
        let s = batch_saturation q.Opcount.kernel in
        let fc = float_of_int c in
        acc +. (p.Roofline.time_s *. ((1. /. s) +. ((1. -. (1. /. s)) /. fc)) *. spill)
      end)
    0. costs points

(* Measured delay refinement: ns/move of the real determinant component
   (plane-wave orbitals, per-spin order [m]) at rank [kd] — the same
   micro-workload as the BENCH_crowd delay sweep, at a fraction of the
   reps.  Best-of-2 against scheduler noise. *)
let measure_det_ns ~m ~sweeps kd =
  let once () =
    let lattice = Lattice.cubic 8. in
    let ps =
      Ps64.create ~lattice
        [ { Particle_set.name = "e"; charge = -1.; count = m } ]
    in
    let r = Xoshiro.create 23 in
    Ps64.randomize ps (fun () -> Xoshiro.uniform r);
    let spo = Spo_analytic.plane_waves ~lattice ~n_orb:m in
    let scheme =
      if kd = 1 then Det64.Sherman_morrison else Det64.Delayed kd
    in
    let d = Det64.create ~scheme ~spo ~first:0 ~count:m ps in
    ignore (d.W64.evaluate_log ps);
    let rng = Xoshiro.create 29 in
    let t0 = Timers.now () in
    for _ = 1 to sweeps do
      for k = 0 to m - 1 do
        let np =
          Vec3.add (Ps64.get ps k)
            (Vec3.make
               (Xoshiro.gaussian rng *. 0.05)
               (Xoshiro.gaussian rng *. 0.05)
               (Xoshiro.gaussian rng *. 0.05))
        in
        Ps64.propose ps k np;
        ignore (d.W64.ratio ps k);
        d.W64.accept ps k;
        Ps64.accept ps
      done
    done;
    (Timers.now () -. t0) *. 1e9 /. float_of_int (sweeps * m)
  in
  Float.min (once ()) (once ())

(* Measured tile refinement: ns per batched Bspline-vgh evaluation at
   the system's real orbital count on a small grid.  The grid dimensions
   only move the stencil origins; per-eval cost is dominated by the
   64 × n_orb coefficient stream, which is exactly what the tile
   reshapes, so a small grid at the real orbital count captures the
   crossover.  Coefficient values are irrelevant to cost.  [tile = 0]
   measures the flat layout.  Best-of-2 against scheduler noise. *)
let measure_spline_ns ~n_spo tile =
  let module B = Oqmc_spline.Bspline3d.Make (Precision.F32) in
  let module T = Oqmc_spline.Bspline3d_tiled.Make (Precision.F32) in
  let g = 12 and batch = 8 in
  let coeff ~orb ~i ~j ~k =
    float_of_int ((orb + i + j + k) land 7) *. 0.125
  in
  let rng = Xoshiro.create 37 in
  let u () = Array.init batch (fun _ -> Xoshiro.uniform rng) in
  let u0 = u () and u1 = u () and u2 = u () in
  let reps = max 4 (2_000_000 / (64 * n_spo * batch)) in
  let once () =
    if tile <= 0 then begin
      let t = B.create ~nx:g ~ny:g ~nz:g ~n_orb:n_spo in
      B.fill t coeff;
      let arena = B.make_vgh_batch t ~cap:batch in
      let t0 = Timers.now () in
      for _ = 1 to reps do
        B.eval_vgh_batch t arena ~n:batch ~u0 ~u1 ~u2
      done;
      (Timers.now () -. t0) *. 1e9 /. float_of_int (reps * batch)
    end
    else begin
      let t = T.create ~nx:g ~ny:g ~nz:g ~n_orb:n_spo ~tile in
      T.fill t coeff;
      let arena = T.make_vgh_batch t ~cap:batch in
      let t0 = Timers.now () in
      for _ = 1 to reps do
        T.eval_vgh_batch t arena ~n:batch ~u0 ~u1 ~u2
      done;
      (Timers.now () -. t0) *. 1e9 /. float_of_int (reps * batch)
    end
  in
  Float.min (once ()) (once ())

let choose ?machine ?(refine = false) ?(walkers = 8) ?(domains = 1)
    ~variant ~precision ~(sys : System.t) () =
  let calibrated = machine = None in
  let mach =
    match machine with Some m -> m | None -> Calibrate.machine ()
  in
  let n = System.n_electrons sys in
  let n_ion = System.n_ions sys in
  let n_spo = sys.System.spo.Spo.n_orb in
  let m = max 1 (max sys.System.n_up sys.System.n_down) in
  let elt_bytes = match precision with `F32 -> 4 | `F64 -> 8 in
  let layout =
    match Variant.layout variant with
    | Variant.Store -> `Store
    | Variant.Otf -> `Otf
  in
  let has_pp = sys.System.ham.System.nlpp <> None in
  let acceptance = Opcount.default_acceptance in
  (* Tile candidates: only a B-spline orbital table can be re-laid out,
     and a tile at or above the orbital count degenerates to one tile. *)
  let spo_label = sys.System.spo.Spo.label in
  let tileable =
    String.length spo_label >= 7 && String.sub spo_label 0 7 = "bspline"
  in
  let tile_cands =
    if not tileable then [ 0 ]
    else List.filter (fun t -> t = 0 || t < n_spo) tile_candidates
  in
  let costs_for =
    let memo =
      List.map
        (fun tile ->
          let costs =
            Opcount.step_costs
              {
                Opcount.n;
                n_ion;
                n_spo;
                elt_bytes;
                layout;
                acceptance;
                nlpp_evals = Opcount.nlpp_evals_estimate ~n ~has_pp;
                tile;
              }
          in
          (tile, (costs, Roofline.project_all mach costs)))
        tile_cands
    in
    fun tile -> List.assoc tile memo
  in
  let costs, _ = costs_for 0 in
  let kind =
    match variant with
    | Variant.Ref -> `Ref
    | Variant.Ref_mp -> `Ref_mp
    | Variant.Current | Variant.Current_f64 -> `Current
  in
  let walker_bytes = Memory_model.walker_bytes kind ~n ~n_ion ~n_spo in
  let max_crowd = max 1 (walkers / domains) in
  let grain_of c =
    max (Runner.grain_for ~n:walkers ~n_domains:domains) c
  in
  let time_of knobs =
    let costs, points = costs_for knobs.tile in
    model_step_time mach ~costs ~points ~m ~n ~elt_bytes ~acceptance
      ~walker_bytes knobs
  in
  let baseline_step_s =
    time_of { crowd = 1; delay = 1; grain = 1; tile = 0 }
  in
  (* Measured refinement replaces the modeled delay and tile rankings
     with real measurements — ns/move of the determinant component at
     this system's per-spin order, and ns/eval of the batched vgh kernel
     at this system's real orbital count — the two knobs whose
     crossovers are too close to call from counts alone. *)
  let measured_det =
    if not refine then fun _ -> None
    else begin
      let mm = max 8 (min m 128) in
      let sweeps = max 2 (min 20 (2_000_000 / (mm * mm))) in
      let tbl =
        List.map (fun k -> (k, measure_det_ns ~m:mm ~sweeps k)) delay_candidates
      in
      fun k -> List.assoc_opt k tbl
    end
  in
  let measured_spline =
    if not (refine && List.length tile_cands > 1) then fun _ -> None
    else begin
      let tbl =
        List.map (fun t -> (t, measure_spline_ns ~n_spo t)) tile_cands
      in
      fun t -> List.assoc_opt t tbl
    end
  in
  let candidates =
    List.concat_map
      (fun c ->
        if c > max_crowd then []
        else
          List.concat_map
            (fun k ->
              List.map
                (fun t ->
                  let cand =
                    { crowd = c; delay = k; grain = grain_of c; tile = t }
                  in
                  {
                    cand;
                    model_step_s = time_of cand;
                    measured_det_ns = measured_det k;
                    measured_spline_ns = measured_spline t;
                  })
                tile_cands)
            delay_candidates)
      crowd_candidates
  in
  (* Rank by model time; under refinement the delay and tile dimensions
     are ranked by their measured components instead, each scaled into
     the model's share and anchored at the delay = 1 / flat point (so a
     candidate's score stays the plain model time when no measurement
     covers it). *)
  let det_cost = List.find (fun q -> q.Opcount.kernel = "DetUpdate") costs in
  let det1 = det_time mach det_cost ~m ~n ~elt_bytes ~acceptance 1 in
  let spill c =
    let ws = float_of_int (c * walker_bytes) in
    if level_for mach ws > 0 then 1.25 else 1.0
  in
  let spline_share ~tile c =
    let costs, points = costs_for tile in
    spill c *. spline_time ~costs ~points c
  in
  let score cd =
    let c = cd.cand.crowd in
    let det_term =
      match (cd.measured_det_ns, measured_det 1) with
      | Some ns, Some ns1 when ns1 > 0. -> det1 *. ns /. ns1
      | _ -> det_time mach det_cost ~m ~n ~elt_bytes ~acceptance cd.cand.delay
    in
    let spline0 = spline_share ~tile:0 c in
    let spline_term =
      match (cd.measured_spline_ns, measured_spline 0) with
      | Some ns, Some ns0 when ns0 > 0. -> spline0 *. ns /. ns0
      | _ -> spline_share ~tile:cd.cand.tile c
    in
    let base = time_of { cd.cand with delay = 1; tile = 0 } in
    base -. det1 -. spline0 +. det_term +. spline_term
  in
  let best =
    List.fold_left
      (fun acc cd ->
        match acc with
        | None -> Some cd
        | Some b -> if score cd < score b then Some cd else Some b)
      None candidates
  in
  let best =
    match best with
    | Some b -> b
    | None -> { cand = { crowd = 1; delay = 1; grain = 1; tile = 0 };
                model_step_s = baseline_step_s; measured_det_ns = None;
                measured_spline_ns = None }
  in
  {
    knobs = best.cand;
    machine = mach;
    calibrated;
    refined = refine;
    baseline_step_s;
    tuned_step_s = best.model_step_s;
    predicted_speedup =
      (if best.model_step_s > 0. then baseline_step_s /. best.model_step_s
       else 1.);
    candidates;
  }

let publish (c : choice) =
  let module Mx = Oqmc_obs.Metrics in
  Mx.set (Mx.gauge "autotune.crowd") (float_of_int c.knobs.crowd);
  Mx.set (Mx.gauge "autotune.delay") (float_of_int c.knobs.delay);
  Mx.set (Mx.gauge "autotune.grain") (float_of_int c.knobs.grain);
  Mx.set (Mx.gauge "autotune.tile") (float_of_int c.knobs.tile);
  Mx.set (Mx.gauge "autotune.predicted_speedup") c.predicted_speedup;
  Mx.set
    (Mx.gauge "autotune.machine_gflops")
    (Machine.peak_gflops c.machine ~single:false);
  Mx.set
    (Mx.gauge "autotune.machine_bw_gbs")
    (Machine.bandwidth c.machine)

let knobs_json (k : knobs) =
  let module J = Oqmc_obs.Jsonx in
  J.Obj
    [
      ("crowd", J.Num (float_of_int k.crowd));
      ("delay", J.Num (float_of_int k.delay));
      ("grain", J.Num (float_of_int k.grain));
      ("tile", J.Num (float_of_int k.tile));
    ]

let choice_json (c : choice) =
  let module J = Oqmc_obs.Jsonx in
  J.Obj
    [
      ("knobs", knobs_json c.knobs);
      ( "machine",
        J.Obj
          [
            ("name", J.Str c.machine.Machine.mname);
            ("calibrated", J.Bool c.calibrated);
            ( "gflops",
              J.Num (Machine.peak_gflops c.machine ~single:false) );
            ("bandwidth_gbs", J.Num (Machine.bandwidth c.machine));
          ] );
      ("refined", J.Bool c.refined);
      ("baseline_us_per_step", J.Num (c.baseline_step_s *. 1e6));
      ("tuned_us_per_step", J.Num (c.tuned_step_s *. 1e6));
      ("predicted_speedup", J.Num c.predicted_speedup);
      ( "candidates",
        J.Arr
          (List.map
             (fun cd ->
               J.Obj
                 (("knobs", knobs_json cd.cand)
                 :: ("model_us_per_step", J.Num (cd.model_step_s *. 1e6))
                 :: ((match cd.measured_det_ns with
                     | None -> []
                     | Some ns -> [ ("measured_det_ns", J.Num ns) ])
                    @
                    match cd.measured_spline_ns with
                    | None -> []
                    | Some ns -> [ ("measured_spline_ns", J.Num ns) ])))
             c.candidates) );
    ]

let describe (c : choice) =
  Printf.sprintf
    "autotune[%s%s]: crowd=%d delay=%d grain=%d tile=%s  (model %.1f -> \
     %.1f us/step/walker, x%.2f)"
    c.machine.Machine.mname
    (if c.refined then ", refined" else "")
    c.knobs.crowd c.knobs.delay c.knobs.grain
    (if c.knobs.tile = 0 then "flat" else string_of_int c.knobs.tile)
    (c.baseline_step_s *. 1e6)
    (c.tuned_step_s *. 1e6) c.predicted_speedup
