open Oqmc_core
open Oqmc_perfmodel

(** Roofline-driven selection of the optimized pipeline's throughput
    knobs — crowd size, delayed-update rank, scheduler grain and the
    orbital-table tile — from the analytic op/byte counts projected on a
    machine descriptor (published SKU or {!Calibrate} microbench),
    optionally refined by short measured sweeps of the delay rank and
    the tile on the node itself. *)

type knobs = {
  crowd : int;
  delay : int;
  grain : int;
  tile : int;
      (** orbital tile of the tiled B-spline table; 0 = flat layout.
          Only candidates below the system's orbital count are scored,
          and only for B-spline orbital tables. *)
}

type candidate = {
  cand : knobs;
  model_step_s : float;  (** modeled one-walker step time *)
  measured_det_ns : float option;
      (** measured det-component ns/move under [~refine:true] *)
  measured_spline_ns : float option;
      (** measured batched-vgh ns/eval at this tile under
          [~refine:true] (real orbital count, small grid) *)
}

type choice = {
  knobs : knobs;  (** the winner *)
  machine : Machine.t;
  calibrated : bool;  (** machine came from on-node calibration *)
  refined : bool;
  baseline_step_s : float;  (** modeled step time at crowd=1, delay=1 *)
  tuned_step_s : float;
  predicted_speedup : float;
  candidates : candidate list;  (** the full scored grid *)
}

val choose :
  ?machine:Machine.t ->
  ?refine:bool ->
  ?walkers:int ->
  ?domains:int ->
  variant:Variant.t ->
  precision:[ `F32 | `F64 ] ->
  sys:System.t ->
  unit ->
  choice
(** Pick knobs for running [sys] with [walkers] walkers over [domains]
    domains.  Without [?machine] the node is calibrated first
    ({!Calibrate.machine}, tens of milliseconds).  [refine] (default
    [false]) additionally measures the determinant component at each
    delay rank and the batched vgh kernel at each tile candidate — at
    the system's real orbital count — and ranks those knobs by
    measurement instead of the model. *)

val choice_json : choice -> Oqmc_obs.Jsonx.t
(** The choice, machine projection and scored candidate grid as a JSON
    object — the ["autotune"] section of [BENCH_autotune.json]. *)

val publish : choice -> unit
(** Record the chosen knobs and model projections as [autotune.*] gauges
    in the {!Oqmc_obs.Metrics} registry. *)

val describe : choice -> string
(** One-line human summary for run logs. *)
