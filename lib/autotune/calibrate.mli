open Oqmc_perfmodel

(** On-node calibration microbenchmarks: measure the sustained scalar
    flop rate and the streaming bandwidth at a cache-resident and a
    DRAM-sized footprint, packaged as a single-core {!Machine.t} whose
    roofline reproduces the measured rates.  Used by {!Tuner.choose} when
    no machine descriptor is supplied. *)

val measure_gflops : reps:int -> float
(** Sustained scalar multiply–add rate (GFLOP/s), 4 independent
    accumulator chains over an L1-resident array. *)

val measure_triad : n:int -> reps:int -> float
(** STREAM-triad bandwidth (GB/s) over [n]-element arrays. *)

val machine : ?quick:bool -> unit -> Machine.t
(** Calibrate this node.  [quick] (default [true]) keeps the whole run
    in the low tens of milliseconds; [quick:false] runs 8× longer for
    steadier numbers. *)
