open Oqmc_core
open Oqmc_perfmodel

(** Efficiency audit: measured run performance vs the calibrated
    roofline projection for the same system and run shape.

    The projection reuses the tuner's analytic pipeline
    ({!Opcount.step_costs} → {!Roofline.project_all}); the measurement
    reads the global {!Oqmc_obs.Metrics} registry (the supervisor's
    [sup.generation_s] histogram and the [timer_us.*] kernel counters
    both executors feed).  {!observe} publishes [audit.efficiency],
    [audit.projected_gen_s], [audit.measured_gen_s] and per-kernel
    [audit.frac.*] gauges back into the registry — the supervisor's
    status snapshot echoes them, so a live Status query carries the
    current ratio. *)

type t
(** Projection context for one run shape (system × machine × walkers ×
    ranks × domains). *)

val create :
  ?machine:Machine.t ->
  ?walkers:int ->
  ?domains:int ->
  ?ranks:int ->
  ?tile:int ->
  variant:Variant.t ->
  precision:[ `F32 | `F64 ] ->
  sys:System.t ->
  unit ->
  t
(** Build the projection.  [machine] defaults to on-node calibration
    ({!Calibrate.machine}, quick mode — tens of milliseconds);
    [walkers] (default 8) is the GLOBAL walker count, spread over
    [ranks] × [domains] ideal lanes (both default 1).  [tile] (default
    0 = flat) projects the tiled orbital layout's bandwidth boost so
    tiled runs are audited against the model they were tuned by. *)

(** Measured-vs-projected share of one kernel. *)
type kernel_verdict = {
  kernel : string;
  measured_s : float;  (** total seconds in this kernel, all lanes *)
  measured_frac : float;  (** share of total measured kernel time *)
  projected_frac : float;  (** share the roofline model predicts *)
}

type report = {
  machine_name : string;
  calibrated : bool;  (** machine came from on-node calibration *)
  projected_gen_s : float;
  measured_gen_s : float;
  efficiency : float;  (** projected / measured; 1.0 = at the model *)
  gens : int;  (** generations behind the measured mean (0 = override) *)
  kernels : kernel_verdict list;
}

val observe :
  ?measured_gen_s:float ->
  ?kernel_seconds:(string * float) list ->
  t ->
  report option
(** Compare the registry's current totals against the projection and set
    the [audit.*] gauges.  [measured_gen_s] overrides the
    [sup.generation_s] mean (for drivers outside the supervisor);
    [kernel_seconds] overrides the [timer_us.*] counters; either way
    the tiled engines' [-tiled] timer keys are folded into the base
    kernel names before comparison.  [None] when
    no generation time is available from either source.  Cheap enough to
    call per ledger window ({!Oqmc_dist.Supervisor} [on_window]). *)

val table : report -> string
(** Human-readable verdict table (multi-line, trailing newline). *)

val json : report -> Oqmc_obs.Jsonx.t
