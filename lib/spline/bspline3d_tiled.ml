open Oqmc_containers

(* Tiled (AoSoA) orbital table — the paper's future-work proposal
   (Sec. 8.4, after Mathuriya et al. IPDPS'17): split the orbitals into
   tiles of [tile] orbitals, each tile holding its own contiguous
   grid-major coefficient block.  The outer structure is an array over
   tiles (AoS), the inner layout is the SoA multi-spline of {!Bspline3d}
   — an array-of-SoA.

   Why it matters: the tile-bounded blocks are small enough that the
   batched phase 2 can FUSE the coefficient loads into the accumulation
   ({!Bspline3d.accum_vgh_slot_fused}): coefficients are read directly
   out of each tile's bigarray instead of being copied through the flat
   kernel's 64·n_orb-double gather slab, and the ten vgh weight products
   are staged once per slot instead of recomputed per stencil walk.
   Tiling also bounds the stride between stencil points and exposes an
   outer loop that parallelizes over threads.  Evaluation results are
   identical to the untiled table by construction: phase 1 (stencil
   locate + 1-D weights) is staged once per batch through the shared
   {!Bspline3d} arena, and the fused phase 2 consumes the same doubles
   in the same (a,b,c,m) order as the flat kernels, once per tile at the
   tile's orbital offset.  Each orbital's 64-point accumulation is
   independent of the tile partition, so the f64 results are
   bit-identical to flat. *)

module Make (R : Precision.REAL) = struct
  module B = Bspline3d.Make (R)

  type t = {
    tiles : B.t array;
    tile : int; (* orbitals per tile (last tile may be smaller) *)
    n_orb : int;
    scratch_v : float array array; (* per-tile value buffers *)
    scratch_vgh : B.vgh_buf array;
  }

  (* The batch arenas are the flat module's: phase-1 staging (origins +
     weights) is tile-independent, the gather slab is sized for one tile
     (64 × tile doubles — the cache-blocking that motivates the layout),
     and the per-slot result buffers span the full orbital range so the
     SPO layer consumes them exactly like flat arenas. *)
  type vgh_batch = B.vgh_batch
  type v_batch = B.v_batch

  let create ~nx ~ny ~nz ~n_orb ~tile =
    if tile < 1 then invalid_arg "Bspline3d_tiled.create: tile < 1";
    if n_orb < 1 then invalid_arg "Bspline3d_tiled.create: n_orb < 1";
    let n_tiles = (n_orb + tile - 1) / tile in
    let tiles =
      Array.init n_tiles (fun t ->
          let this = min tile (n_orb - (t * tile)) in
          B.create ~nx ~ny ~nz ~n_orb:this)
    in
    {
      tiles;
      tile;
      n_orb;
      scratch_v = Array.map (fun b -> Array.make (B.n_orb b) 0.) tiles;
      scratch_vgh = Array.map B.make_vgh_buf tiles;
    }

  let n_orb t = t.n_orb
  let n_tiles t = Array.length t.tiles
  let tile_size t = t.tile
  let dims t = B.dims t.tiles.(0)

  let bytes t = Array.fold_left (fun acc b -> acc + B.bytes b) 0 t.tiles

  let locate t orb =
    if orb < 0 || orb >= t.n_orb then
      invalid_arg "Bspline3d_tiled: orbital out of range";
    (orb / t.tile, orb mod t.tile)

  let set_base t ~orb ~i ~j ~k v =
    let ti, o = locate t orb in
    B.set_base t.tiles.(ti) ~orb:o ~i ~j ~k v

  let get_base t ~orb ~i ~j ~k =
    let ti, o = locate t orb in
    B.get_base t.tiles.(ti) ~orb:o ~i ~j ~k

  (* Construction goes through the layout-shared driver (Bspline_fit):
     one copy of the sweep and of the periodic prefilter serves both the
     flat and the tiled layout, writing through this layout's set_base,
     so the produced coefficients are identical to a flat table's. *)
  let fill t f =
    let nx, ny, nz = dims t in
    Bspline_fit.fill ~nx ~ny ~nz ~n_orb:t.n_orb ~f
      ~set:(fun ~orb ~i ~j ~k v -> set_base t ~orb ~i ~j ~k v)

  let fit_periodic t ~samples =
    let nx, ny, nz = dims t in
    Bspline_fit.fit_periodic ~nx ~ny ~nz ~n_orb:t.n_orb ~samples
      ~set:(fun ~orb ~i ~j ~k v -> set_base t ~orb ~i ~j ~k v)

  (* Values of all orbitals; the outer tile loop is the unit that a
     task-parallel evaluation distributes over threads. *)
  let eval_v t ~u0 ~u1 ~u2 (out : float array) =
    Array.iteri
      (fun ti b ->
        let s = t.scratch_v.(ti) in
        B.eval_v b ~u0 ~u1 ~u2 s;
        Array.blit s 0 out (ti * t.tile) (B.n_orb b))
      t.tiles

  let eval_vgh t ~u0 ~u1 ~u2 (buf : B.vgh_buf) =
    Array.iteri
      (fun ti b ->
        let s = t.scratch_vgh.(ti) in
        B.eval_vgh b ~u0 ~u1 ~u2 s;
        let n = B.n_orb b and off = ti * t.tile in
        Array.blit s.B.v 0 buf.B.v off n;
        Array.blit s.B.gx 0 buf.B.gx off n;
        Array.blit s.B.gy 0 buf.B.gy off n;
        Array.blit s.B.gz 0 buf.B.gz off n;
        Array.blit s.B.hxx 0 buf.B.hxx off n;
        Array.blit s.B.hxy 0 buf.B.hxy off n;
        Array.blit s.B.hxz 0 buf.B.hxz off n;
        Array.blit s.B.hyy 0 buf.B.hyy off n;
        Array.blit s.B.hyz 0 buf.B.hyz off n;
        Array.blit s.B.hzz 0 buf.B.hzz off n)
      t.tiles

  let make_vgh_buf t =
    {
      B.v = Array.make t.n_orb 0.;
      gx = Array.make t.n_orb 0.;
      gy = Array.make t.n_orb 0.;
      gz = Array.make t.n_orb 0.;
      hxx = Array.make t.n_orb 0.;
      hxy = Array.make t.n_orb 0.;
      hxz = Array.make t.n_orb 0.;
      hyy = Array.make t.n_orb 0.;
      hyz = Array.make t.n_orb 0.;
      hzz = Array.make t.n_orb 0.;
    }

  (* ---------- crowd-batched kernels ----------

     Tile 0 is the widest tile, so its arena's gather slab (64 × its
     orbital count doubles) fits every tile's stencil block; only the
     per-slot result buffers need replacing with full-width ones. *)

  let make_vgh_batch t ~cap =
    let b = B.make_vgh_batch t.tiles.(0) ~cap in
    { b with B.outs = Array.init cap (fun _ -> make_vgh_buf t) }

  let make_v_batch t ~cap =
    let b = B.make_v_batch t.tiles.(0) ~cap in
    { b with B.vouts = Array.init cap (fun _ -> Array.make t.n_orb 0.) }

  (* Stage once (every tile shares the grid), then run the FUSED phase 2
     tile by tile: the fused accumulators read each tile's coefficient
     block directly out of its bigarray — no gather slab, so the
     64·n_orb-double write+read copy the flat kernel pays per eval
     disappears — and the ten vgh weight products are staged once per
     slot instead of recomputed per tile.  Same doubles in the same
     order, so f64 results stay bit-identical to the flat layout.  Zero
     allocation throughout. *)
  let eval_vgh_batch t (b : vgh_batch) ~n ~(u0 : float array)
      ~(u1 : float array) ~(u2 : float array) =
    B.stage_vgh_batch t.tiles.(0) b ~n ~u0 ~u1 ~u2;
    let nt = Array.length t.tiles in
    for s = 0 to n - 1 do
      B.stage_vgh_products b ~s;
      let buf = b.B.outs.(s) in
      for ti = 0 to nt - 1 do
        B.accum_vgh_slot_fused t.tiles.(ti) b ~s ~buf ~orb_off:(ti * t.tile)
      done
    done

  let eval_v_batch t (b : v_batch) ~n ~(u0 : float array)
      ~(u1 : float array) ~(u2 : float array) =
    B.stage_v_batch t.tiles.(0) b ~n ~u0 ~u1 ~u2;
    let nt = Array.length t.tiles in
    for s = 0 to n - 1 do
      let out = b.B.vouts.(s) in
      for ti = 0 to nt - 1 do
        B.accum_v_slot_fused t.tiles.(ti) b ~s ~out ~orb_off:(ti * t.tile)
      done
    done
end
