(* One-dimensional cubic B-spline on a uniform grid over [0, cutoff].

   This is the radial-functor engine behind the Jastrow factors (Fig. 3 of
   the paper): short coefficient tables, evaluated with value / first /
   second derivatives, identically zero at and beyond the cutoff.

   Precision: the table is fitted in double; [narrow] rounds every
   control point through f32 storage (the [precision_jastrow] knob), so
   an f32-Jastrow build evaluates the same polynomials from narrowed
   coefficients while all basis arithmetic stays double.  The table is
   tiny, so the point is drift behaviour and parity with QMCPACK's
   single-precision Jastrow splines, not memory. *)

type t = {
  coeffs : float array; (* n_intervals + 3 control points *)
  cutoff : float;
  delta : float;
  delta_inv : float;
  n_intervals : int;
  narrowed : bool; (* coefficients rounded through f32 storage *)
}

let of_coefficients ~cutoff coeffs =
  let m = Array.length coeffs in
  if m < 4 then invalid_arg "Cubic_spline_1d: need at least 4 coefficients";
  if cutoff <= 0. then invalid_arg "Cubic_spline_1d: cutoff <= 0";
  let n_intervals = m - 3 in
  let delta = cutoff /. float_of_int n_intervals in
  { coeffs = Array.copy coeffs; cutoff; delta; delta_inv = 1. /. delta;
    n_intervals; narrowed = false }

let narrow t =
  if t.narrowed then t
  else
    {
      t with
      coeffs = Array.map Oqmc_containers.Precision.F32.round t.coeffs;
      narrowed = true;
    }

let is_narrowed t = t.narrowed

let cutoff t = t.cutoff
let coefficients t = Array.copy t.coeffs
let n_intervals t = t.n_intervals

let locate t r =
  let s = r *. t.delta_inv in
  let i = int_of_float s in
  let i = if i >= t.n_intervals then t.n_intervals - 1 else i in
  let i = if i < 0 then 0 else i in
  (i, s -. float_of_int i)

let evaluate t r =
  if r >= t.cutoff || r < 0. then 0.
  else begin
    let i, u = locate t r in
    let w = Bspline_basis.value u in
    (t.coeffs.(i) *. w.Bspline_basis.w0)
    +. (t.coeffs.(i + 1) *. w.Bspline_basis.w1)
    +. (t.coeffs.(i + 2) *. w.Bspline_basis.w2)
    +. (t.coeffs.(i + 3) *. w.Bspline_basis.w3)
  end

let evaluate_vgl t r =
  if r >= t.cutoff || r < 0. then (0., 0., 0.)
  else begin
    let i, u = locate t r in
    let c0 = t.coeffs.(i) and c1 = t.coeffs.(i + 1) in
    let c2 = t.coeffs.(i + 2) and c3 = t.coeffs.(i + 3) in
    let w = Bspline_basis.value u in
    let d = Bspline_basis.first u in
    let s = Bspline_basis.second u in
    let v =
      (c0 *. w.Bspline_basis.w0) +. (c1 *. w.Bspline_basis.w1)
      +. (c2 *. w.Bspline_basis.w2) +. (c3 *. w.Bspline_basis.w3)
    in
    let dv =
      ((c0 *. d.Bspline_basis.w0) +. (c1 *. d.Bspline_basis.w1)
      +. (c2 *. d.Bspline_basis.w2) +. (c3 *. d.Bspline_basis.w3))
      *. t.delta_inv
    in
    let d2v =
      ((c0 *. s.Bspline_basis.w0) +. (c1 *. s.Bspline_basis.w1)
      +. (c2 *. s.Bspline_basis.w2) +. (c3 *. s.Bspline_basis.w3))
      *. t.delta_inv *. t.delta_inv
    in
    (v, dv, d2v)
  end

(* Scratch-writing form of [evaluate_vgl] for allocation-free hot loops:
   the interval search and basis weights are inlined (no tuple, no weight
   records) and (u, du/dr, d²u/dr²) land in [out.(0..2)].  The arithmetic
   — expressions and evaluation order — is exactly that of [evaluate_vgl],
   so results are bit-identical. *)
let evaluate_vgl3 t r (out : float array) =
  if r >= t.cutoff || r < 0. then begin
    out.(0) <- 0.;
    out.(1) <- 0.;
    out.(2) <- 0.
  end
  else begin
    let s = r *. t.delta_inv in
    let i = int_of_float s in
    let i = if i >= t.n_intervals then t.n_intervals - 1 else i in
    let i = if i < 0 then 0 else i in
    let u = s -. float_of_int i in
    let c0 = t.coeffs.(i) and c1 = t.coeffs.(i + 1) in
    let c2 = t.coeffs.(i + 2) and c3 = t.coeffs.(i + 3) in
    let t2 = u *. u in
    let t3 = t2 *. u in
    let mt = 1. -. u in
    let vw0 = mt *. mt *. mt /. 6. in
    let vw1 = ((3. *. t3) -. (6. *. t2) +. 4.) /. 6. in
    let vw2 = ((-3. *. t3) +. (3. *. t2) +. (3. *. u) +. 1.) /. 6. in
    let vw3 = t3 /. 6. in
    let dw0 = -.(mt *. mt) /. 2. in
    let dw1 = ((9. *. t2) -. (12. *. u)) /. 6. in
    let dw2 = ((-9. *. t2) +. (6. *. u) +. 3.) /. 6. in
    let dw3 = t2 /. 2. in
    let sw0 = 1. -. u in
    let sw1 = (3. *. u) -. 2. in
    let sw2 = 1. -. (3. *. u) in
    let sw3 = u in
    out.(0) <-
      (c0 *. vw0) +. (c1 *. vw1) +. (c2 *. vw2) +. (c3 *. vw3);
    out.(1) <-
      ((c0 *. dw0) +. (c1 *. dw1) +. (c2 *. dw2) +. (c3 *. dw3))
      *. t.delta_inv;
    out.(2) <-
      ((c0 *. sw0) +. (c1 *. sw1) +. (c2 *. sw2) +. (c3 *. sw3))
      *. t.delta_inv *. t.delta_inv
  end

(* Row form of [evaluate_vgl3] with the Jastrow radial transform fused:
   for each i in [off, off + n), with r = dist.(i),
     u.(i) = u(r),  f.(i) = u'(r)/r,  l.(i) = u''(r) + 2 u'(r)/r,
   and zeros when r <= 0 (self/padding entries) or r >= cutoff.  The
   per-element arithmetic — expressions and evaluation order — is exactly
   [evaluate_vgl3] followed by the two divisions the Jastrow factors
   apply, so results are bit-identical to the scalar path.  Everything is
   plain [float array] traffic: the loop allocates nothing, which is what
   lets the crowd-batched Jastrow kernels stay allocation-free. *)
let evaluate_ufl_row t (dist : float array) ~off ~n ~(u : float array)
    ~(f : float array) ~(l : float array) =
  let cut = t.cutoff in
  for i = off to off + n - 1 do
    let r = Array.unsafe_get dist i in
    if r <= 0. || r >= cut then begin
      Array.unsafe_set u i 0.;
      Array.unsafe_set f i 0.;
      Array.unsafe_set l i 0.
    end
    else begin
      let s = r *. t.delta_inv in
      let j = int_of_float s in
      let j = if j >= t.n_intervals then t.n_intervals - 1 else j in
      let j = if j < 0 then 0 else j in
      let x = s -. float_of_int j in
      let c0 = t.coeffs.(j) and c1 = t.coeffs.(j + 1) in
      let c2 = t.coeffs.(j + 2) and c3 = t.coeffs.(j + 3) in
      let t2 = x *. x in
      let t3 = t2 *. x in
      let mt = 1. -. x in
      let vw0 = mt *. mt *. mt /. 6. in
      let vw1 = ((3. *. t3) -. (6. *. t2) +. 4.) /. 6. in
      let vw2 = ((-3. *. t3) +. (3. *. t2) +. (3. *. x) +. 1.) /. 6. in
      let vw3 = t3 /. 6. in
      let dw0 = -.(mt *. mt) /. 2. in
      let dw1 = ((9. *. t2) -. (12. *. x)) /. 6. in
      let dw2 = ((-9. *. t2) +. (6. *. x) +. 3.) /. 6. in
      let dw3 = t2 /. 2. in
      let sw0 = 1. -. x in
      let sw1 = (3. *. x) -. 2. in
      let sw2 = 1. -. (3. *. x) in
      let sw3 = x in
      let v = (c0 *. vw0) +. (c1 *. vw1) +. (c2 *. vw2) +. (c3 *. vw3) in
      let dv =
        ((c0 *. dw0) +. (c1 *. dw1) +. (c2 *. dw2) +. (c3 *. dw3))
        *. t.delta_inv
      in
      let d2v =
        ((c0 *. sw0) +. (c1 *. sw1) +. (c2 *. sw2) +. (c3 *. sw3))
        *. t.delta_inv *. t.delta_inv
      in
      Array.unsafe_set u i v;
      Array.unsafe_set f i (dv /. r);
      Array.unsafe_set l i (d2v +. (2. *. dv /. r))
    end
  done

(* Banded Gaussian elimination with partial pivoting for the interpolation
   system; the matrix is (n+3)×(n+3) with bandwidth <= 2, and n is small,
   so a dense solve is perfectly adequate. *)
let solve_dense a b =
  let n = Array.length b in
  let a = Array.init n (fun i -> Array.copy a.(i)) in
  let b = Array.copy b in
  for k = 0 to n - 1 do
    let pmax = ref (abs_float a.(k).(k)) and prow = ref k in
    for i = k + 1 to n - 1 do
      if abs_float a.(i).(k) > !pmax then begin
        pmax := abs_float a.(i).(k);
        prow := i
      end
    done;
    if !pmax = 0. then failwith "Cubic_spline_1d: singular fit system";
    if !prow <> k then begin
      let tmp = a.(k) in a.(k) <- a.(!prow); a.(!prow) <- tmp;
      let tb = b.(k) in b.(k) <- b.(!prow); b.(!prow) <- tb
    end;
    for i = k + 1 to n - 1 do
      let f = a.(i).(k) /. a.(k).(k) in
      if f <> 0. then begin
        for j = k to n - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(k).(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(k))
      end
    done
  done;
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref b.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. a.(i).(i)
  done;
  x

let fit ~f ?(deriv0 = None) ?(deriv_cut = Some 0.) ~cutoff ~intervals () =
  if intervals < 1 then invalid_arg "Cubic_spline_1d.fit: intervals < 1";
  if cutoff <= 0. then invalid_arg "Cubic_spline_1d.fit: cutoff <= 0";
  let n = intervals in
  let m = n + 3 in
  let delta = cutoff /. float_of_int n in
  let a = Array.make_matrix m m 0. in
  let b = Array.make m 0. in
  (* Interpolation rows: u(r_i) = (c_i + 4 c_{i+1} + c_{i+2}) / 6. *)
  for i = 0 to n do
    a.(i).(i) <- 1. /. 6.;
    a.(i).(i + 1) <- 4. /. 6.;
    a.(i).(i + 2) <- 1. /. 6.;
    b.(i) <- f (float_of_int i *. delta)
  done;
  (* Boundary row at 0: either a prescribed derivative (cusp condition) or
     a natural (zero second derivative) end. *)
  (match deriv0 with
  | Some d ->
      a.(n + 1).(0) <- -1. /. (2. *. delta);
      a.(n + 1).(2) <- 1. /. (2. *. delta);
      b.(n + 1) <- d
  | None ->
      a.(n + 1).(0) <- 1.;
      a.(n + 1).(1) <- -2.;
      a.(n + 1).(2) <- 1.;
      b.(n + 1) <- 0.);
  (* Boundary row at the cutoff. *)
  (match deriv_cut with
  | Some d ->
      a.(n + 2).(n) <- -1. /. (2. *. delta);
      a.(n + 2).(n + 2) <- 1. /. (2. *. delta);
      b.(n + 2) <- d
  | None ->
      a.(n + 2).(n) <- 1.;
      a.(n + 2).(n + 1) <- -2.;
      a.(n + 2).(n + 2) <- 1.;
      b.(n + 2) <- 0.);
  of_coefficients ~cutoff (solve_dense a b)

let bytes t = (if t.narrowed then 4 else 8) * Array.length t.coeffs
