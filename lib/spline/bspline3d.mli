open Oqmc_containers

(** Periodic tricubic B-spline tables holding all single-particle orbitals
    on one shared grid with the orbital index innermost (einspline's
    multi-spline layout) — the paper's Bspline-v / Bspline-vgh kernels.
    Coefficients live at the build's storage precision; accumulation is in
    double.  Positions are fractional supercell coordinates [s ∈ [0,1)³]
    and derivatives are with respect to [s]; the SPO layer applies the
    lattice metric. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)

  type t

  type vgh_buf = {
    v : float array;
    gx : float array;
    gy : float array;
    gz : float array;
    hxx : float array;
    hxy : float array;
    hxz : float array;
    hyy : float array;
    hyz : float array;
    hzz : float array;
  }

  val create : nx:int -> ny:int -> nz:int -> n_orb:int -> t
  (** Zero table on an [nx × ny × nz] periodic grid.
      @raise Invalid_argument if any dimension is below 4 or [n_orb < 1]. *)

  val n_orb : t -> int
  val dims : t -> int * int * int

  val bytes : t -> int
  (** Allocated coefficient storage. *)

  val make_vgh_buf : t -> vgh_buf
  (** Double-precision result buffers sized for this table. *)

  val set_base : t -> orb:int -> i:int -> j:int -> k:int -> float -> unit
  (** Write one base coefficient, maintaining the periodic wrap layers.
      @raise Invalid_argument outside the base grid. *)

  val get_base : t -> orb:int -> i:int -> j:int -> k:int -> float

  val fill : t -> (orb:int -> i:int -> j:int -> k:int -> float) -> unit
  (** Set every base coefficient directly (synthetic tables). *)

  val fit_periodic :
    t -> samples:(orb:int -> ix:int -> iy:int -> iz:int -> float) -> unit
  (** Prefilter so the spline interpolates the given grid samples
      (separable cyclic-tridiagonal solves per dimension). *)

  val eval_v : t -> u0:float -> u1:float -> u2:float -> float array -> unit
  (** Bspline-v: values of all orbitals into a caller array of length
      [>= n_orb]. *)

  val eval_vgh : t -> u0:float -> u1:float -> u2:float -> vgh_buf -> unit
  (** Bspline-vgh: values, fractional-coordinate gradients and Hessian
      components of all orbitals. *)

  type vgh_batch = {
    cap : int;
    bix : int array;
    biy : int array;
    biz : int array;
    bwx : float array;
    bwy : float array;
    bwz : float array;
    bdx : float array;
    bdy : float array;
    bdz : float array;
    bsx : float array;
    bsy : float array;
    bsz : float array;
    bslab : float array;
    bprod : float array;
    outs : vgh_buf array;
  }
  (** Crowd-sized scratch arena for {!eval_vgh_batch}: per-slot stencil
      origins, flat 1-D weight vectors (offset [4*slot]), a gather slab
      holding one walker's 4×4×4 coefficient block as unboxed doubles, a
      staged weight-product buffer ([bprod], used by the fused phase 2),
      and one result buffer per slot.  Allocate once per domain, reuse
      forever. *)

  type v_batch = {
    vcap : int;
    vix : int array;
    viy : int array;
    viz : int array;
    vwx : float array;
    vwy : float array;
    vwz : float array;
    vslab : float array;
    vouts : float array array;
  }

  val make_vgh_batch : t -> cap:int -> vgh_batch
  (** @raise Invalid_argument if [cap < 1]. *)

  val make_v_batch : t -> cap:int -> v_batch

  val eval_vgh_batch :
    t ->
    vgh_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Batched Bspline-vgh over the first [n] fractional positions: each
      walker's 1-D weights are computed once into the arena, then the
      coefficient blocks are streamed with zero allocation.  Results land
      in [outs.(0..n-1)].  Per walker the arithmetic matches {!eval_vgh}
      exactly (bit-identical on the double path).
      @raise Invalid_argument if [n > cap]. *)

  val eval_v_batch :
    t ->
    v_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Batched Bspline-v into [vouts.(0..n-1)]; same contract as
      {!eval_vgh_batch}. *)

  (** {2 Batch phases}

      The batched kernels split into a position-staging phase 1 (stencil
      origins + 1-D weights, no coefficient traffic) and a per-slot
      gather/accumulate phase 2.  They are exposed so the tiled layout
      ({!Bspline3d_tiled}) can stage once per batch and accumulate once
      per tile into an orbital segment of a full-width buffer — running
      the very same phase-2 code as the flat layout, which is what makes
      tiled-vs-flat bit-identity structural rather than coincidental. *)

  val stage_v_batch :
    t ->
    v_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Phase 1 of {!eval_v_batch}; only the grid dimensions of [t] are
      read.  @raise Invalid_argument if [n > cap]. *)

  val stage_vgh_batch :
    t ->
    vgh_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Phase 1 of {!eval_vgh_batch}. *)

  val accum_v_slot : t -> v_batch -> s:int -> out:float array -> orb_off:int -> unit
  (** Phase 2 of {!eval_v_batch} for walker slot [s]: zero, gather and
      accumulate orbitals [orb_off, orb_off + n_orb t) of [out] from this
      table.  Requires a staged arena whose slab holds at least
      [64 * n_orb t] doubles. *)

  val accum_vgh_slot : t -> vgh_batch -> s:int -> buf:vgh_buf -> orb_off:int -> unit
  (** Phase 2 of {!eval_vgh_batch} for walker slot [s] (vgh analogue of
      {!accum_v_slot}), including the metric scaling of the segment. *)

  (** {2 Fused phase 2}

      The slab kernels above copy every stencil coefficient through a
      double slab before accumulating (64·n_orb write+read per eval).
      The fused variants read the coefficient bigarray directly inside a
      kind-specialized accumulation loop — same doubles, same (a,b,c,m)
      order, so the results are bit-identical to the slab kernels.  The
      tiled layout uses them as its per-tile phase 2: the slab traffic
      disappears and the ten vgh weight products are staged once per
      slot instead of recomputed per tile. *)

  val stage_vgh_products : vgh_batch -> s:int -> unit
  (** Stage the 64×10 vgh weight products for slot [s] into the arena's
      [bprod] (requires a staged phase 1 for [s]); the exact expressions
      of {!accum_vgh_slot}. *)

  val accum_vgh_slot_fused :
    t -> vgh_batch -> s:int -> buf:vgh_buf -> orb_off:int -> unit
  (** Fused {!accum_vgh_slot}; requires {!stage_vgh_products} for [s]. *)

  val accum_v_slot_fused :
    t -> v_batch -> s:int -> out:float array -> orb_off:int -> unit
  (** Fused {!accum_v_slot}; no product staging needed (three mults per
      stencil point are recomputed in place). *)

  val table_bytes :
    nx:int -> ny:int -> nz:int -> n_orb:int -> elt_bytes:int -> int
  (** Analytic table size used by the memory-footprint accounting for
      workloads too large to allocate. *)
end
