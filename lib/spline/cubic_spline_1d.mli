(** One-dimensional cubic B-spline on a uniform grid over [\[0, cutoff\]] —
    the radial engine of the Jastrow functors.  Evaluations return 0 at and
    beyond the cutoff (the finite-range branch whose cost the paper notes in
    the Jastrow vectorization efficiency). *)

type t

val of_coefficients : cutoff:float -> float array -> t
(** Spline from [n + 3] control points over [n] intervals.
    @raise Invalid_argument for fewer than 4 coefficients or a
    non-positive cutoff. *)

val fit :
  f:(float -> float) ->
  ?deriv0:float option ->
  ?deriv_cut:float option ->
  cutoff:float ->
  intervals:int ->
  unit ->
  t
(** Interpolating spline through [f] at the grid points.  [deriv0] /
    [deriv_cut] prescribe end derivatives (e.g. the electron-electron cusp
    at 0); [None] selects a natural (zero-curvature) end.  Defaults:
    natural at 0, zero slope at the cutoff. *)

val narrow : t -> t
(** Round every control point through f32 storage (the
    [precision_jastrow] knob): evaluations run the same double-precision
    basis arithmetic over the narrowed coefficients.  Idempotent. *)

val is_narrowed : t -> bool

val cutoff : t -> float
val coefficients : t -> float array
val n_intervals : t -> int

val evaluate : t -> float -> float
(** u(r); 0 outside [\[0, cutoff)]. *)

val evaluate_vgl : t -> float -> float * float * float
(** (u, du/dr, d²u/dr²); zeros outside [\[0, cutoff)]. *)

val evaluate_vgl3 : t -> float -> float array -> unit
(** [evaluate_vgl] into [out.(0..2)] with no allocation (interval search
    and basis weights inlined) — bit-identical results, for the batched
    Jastrow hot loops.  [out] must have length at least 3. *)

val evaluate_ufl_row :
  t ->
  float array ->
  off:int ->
  n:int ->
  u:float array ->
  f:float array ->
  l:float array ->
  unit
(** Fused Jastrow row: for each [i] in [\[off, off + n)], with
    [r = dist.(i)], writes [u.(i) = u(r)], [f.(i) = u'(r)/r] and
    [l.(i) = u''(r) + 2 u'(r)/r], zeros when [r <= 0] or [r >= cutoff].
    Per-element arithmetic is exactly [evaluate_vgl3] plus the two
    divisions, so results are bit-identical to the scalar path; the loop
    performs no allocation and no per-element calls. *)

val bytes : t -> int
