(* Shared coefficient-construction driver for the flat ({!Bspline3d}) and
   tiled ({!Bspline3d_tiled}) orbital tables.

   Both layouts expose the same base-grid writer [set_base]; everything
   above that writer — the raw [fill] sweep and the separable periodic
   B-spline prefilter (cyclic [1 4 1]/6 interpolation solves along z,
   then y, then x, per orbital) — is layout-independent and lives here
   exactly once, so the fitting math cannot drift between the two
   layouts.  The work arrays are plain doubles regardless of the table's
   storage precision; narrowing happens inside the layout's [set]
   callback.  This is a cold path (table construction), so the callback
   indirection costs nothing that matters. *)

let fill ~nx ~ny ~nz ~n_orb ~f ~set =
  for i = 0 to nx - 1 do
    for j = 0 to ny - 1 do
      for k = 0 to nz - 1 do
        for orb = 0 to n_orb - 1 do
          set ~orb ~i ~j ~k (f ~orb ~i ~j ~k)
        done
      done
    done
  done

let fit_periodic ~nx ~ny ~nz ~n_orb ~samples ~set =
  let work = Array.init nx (fun _ -> Array.make_matrix ny nz 0.) in
  let solve_line line =
    let n = Array.length line in
    let rhs = Array.map (fun v -> 6. *. v) line in
    let e = Tridiag.solve_cyclic ~diag:4. ~off:1. rhs in
    (* c_j = e_{(j-1) mod n} restores the original index convention. *)
    Array.init n (fun j -> e.((j - 1 + n) mod n))
  in
  for orb = 0 to n_orb - 1 do
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        for k = 0 to nz - 1 do
          work.(i).(j).(k) <- samples ~orb ~ix:i ~iy:j ~iz:k
        done;
        let c = solve_line work.(i).(j) in
        Array.blit c 0 work.(i).(j) 0 nz
      done
    done;
    let line = Array.make ny 0. in
    for i = 0 to nx - 1 do
      for k = 0 to nz - 1 do
        for j = 0 to ny - 1 do
          line.(j) <- work.(i).(j).(k)
        done;
        let c = solve_line line in
        for j = 0 to ny - 1 do
          work.(i).(j).(k) <- c.(j)
        done
      done
    done;
    let linex = Array.make nx 0. in
    for j = 0 to ny - 1 do
      for k = 0 to nz - 1 do
        for i = 0 to nx - 1 do
          linex.(i) <- work.(i).(j).(k)
        done;
        let c = solve_line linex in
        for i = 0 to nx - 1 do
          work.(i).(j).(k) <- c.(i)
        done
      done
    done;
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        for k = 0 to nz - 1 do
          set ~orb ~i ~j ~k work.(i).(j).(k)
        done
      done
    done
  done
