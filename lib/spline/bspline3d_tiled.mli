open Oqmc_containers

(** Tiled (array-of-SoA) orbital table — the paper's future-work tiling
    proposal.  Orbitals are split into fixed-size tiles, each with its own
    contiguous multi-spline block, bounding the per-stencil stride and
    exposing a thread-parallel outer loop.  The batched phase 2 is FUSED
    (coefficients read straight out of each tile's bigarray, no gather
    slab, weight products staged once per slot), which is where the
    layout's measured win over flat comes from.  Results are identical to
    {!Bspline3d}: the batched kernels stage positions once through the
    shared flat arena and the fused accumulation consumes the same
    doubles in the same order as the flat phase 2, so f64 results are
    bit-identical to the flat layout by construction. *)

module Make (R : Precision.REAL) : sig
  module B : module type of Bspline3d.Make (R)

  type t

  type vgh_batch = B.vgh_batch
  (** The flat module's arenas, with full-width ([n_orb]-long) per-slot
      result buffers; the fused phase 2 leaves the gather slab unused. *)

  type v_batch = B.v_batch

  val create : nx:int -> ny:int -> nz:int -> n_orb:int -> tile:int -> t
  (** @raise Invalid_argument for non-positive sizes. *)

  val n_orb : t -> int
  val n_tiles : t -> int
  val tile_size : t -> int
  val dims : t -> int * int * int
  val bytes : t -> int

  val set_base : t -> orb:int -> i:int -> j:int -> k:int -> float -> unit
  val get_base : t -> orb:int -> i:int -> j:int -> k:int -> float
  val fill : t -> (orb:int -> i:int -> j:int -> k:int -> float) -> unit

  val fit_periodic :
    t -> samples:(orb:int -> ix:int -> iy:int -> iz:int -> float) -> unit

  val eval_v : t -> u0:float -> u1:float -> u2:float -> float array -> unit
  val eval_vgh : t -> u0:float -> u1:float -> u2:float -> B.vgh_buf -> unit
  val make_vgh_buf : t -> B.vgh_buf

  val make_vgh_batch : t -> cap:int -> vgh_batch
  (** @raise Invalid_argument if [cap < 1]. *)

  val make_v_batch : t -> cap:int -> v_batch

  val eval_vgh_batch :
    t ->
    vgh_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Batched Bspline-vgh: positions are staged once, then the fused
      per-tile accumulation streams each tile's coefficient block
      directly from its bigarray.  Results land in [outs.(0..n-1)]
      across the full orbital range, bit-identical to the flat batched
      kernel on the double path, with zero allocation.
      @raise Invalid_argument if [n > cap]. *)

  val eval_v_batch :
    t ->
    v_batch ->
    n:int ->
    u0:float array ->
    u1:float array ->
    u2:float array ->
    unit
  (** Batched Bspline-v into [vouts.(0..n-1)]; same contract as
      {!eval_vgh_batch}. *)
end
