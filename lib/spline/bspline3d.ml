open Oqmc_containers

(* Periodic tricubic B-spline tables for single-particle orbitals.

   This is the Bspline-SPO engine (Bspline-v / Bspline-vgh kernels of the
   paper).  All orbitals share one coefficient grid with the orbital index
   innermost, so the hot loops stream [n_orb] consecutive coefficients per
   (i,j,k) stencil point — einspline's multi-spline layout.  Coefficients
   are stored at the build's storage precision (single precision for every
   variant since QMCPACK 3.0.0, per the paper); accumulation happens in
   double-precision scratch buffers.

   Positions are fractional supercell coordinates s ∈ [0,1)³; derivatives
   are returned with respect to s.  The SPO wrapper applies the lattice
   metric to produce Cartesian gradients and laplacians.

   The wrap-around of the periodic grid is pre-baked: each dimension stores
   n + 3 coefficient planes where the top three duplicate the first three,
   so the stencil never needs a modulo. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)

  type t = {
    coeffs : A.t;
    nx : int;
    ny : int;
    nz : int;
    n_orb : int;
    orb_stride : int;
    cy : int; (* ny + 3 *)
    cz : int; (* nz + 3 *)
  }

  type vgh_buf = {
    v : float array;
    gx : float array;
    gy : float array;
    gz : float array;
    hxx : float array;
    hxy : float array;
    hxz : float array;
    hyy : float array;
    hyz : float array;
    hzz : float array;
  }

  (* Crowd-sized scratch arena for the batched kernels: stencil origins
     and 1-D basis weights for up to [cap] walkers (4 weights per axis and
     derivative order, stored flat at offset 4·slot), plus one result
     buffer per slot.  Allocated once per domain and reused across every
     generation, so the batched hot loops never touch the allocator. *)
  type vgh_batch = {
    cap : int;
    bix : int array;
    biy : int array;
    biz : int array;
    bwx : float array;
    bwy : float array;
    bwz : float array;
    bdx : float array;
    bdy : float array;
    bdz : float array;
    bsx : float array;
    bsy : float array;
    bsz : float array;
    bslab : float array;
    bprod : float array;
    outs : vgh_buf array;
  }

  type v_batch = {
    vcap : int;
    vix : int array;
    viy : int array;
    viz : int array;
    vwx : float array;
    vwy : float array;
    vwz : float array;
    vslab : float array;
    vouts : float array array;
  }

  let create ~nx ~ny ~nz ~n_orb =
    if nx < 4 || ny < 4 || nz < 4 then
      invalid_arg "Bspline3d.create: grid must be at least 4 per dimension";
    if n_orb < 1 then invalid_arg "Bspline3d.create: n_orb < 1";
    let orb_stride = A.padded_len n_orb in
    let coeffs = A.create ((nx + 3) * (ny + 3) * (nz + 3) * orb_stride) in
    { coeffs; nx; ny; nz; n_orb; orb_stride; cy = ny + 3; cz = nz + 3 }

  let n_orb t = t.n_orb
  let dims t = (t.nx, t.ny, t.nz)
  let bytes t = A.bytes t.coeffs

  let make_vgh_buf t =
    let z () = Array.make t.n_orb 0. in
    { v = z (); gx = z (); gy = z (); gz = z (); hxx = z (); hxy = z ();
      hxz = z (); hyy = z (); hyz = z (); hzz = z () }

  let index t i j k m = ((((i * t.cy) + j) * t.cz) + k) * t.orb_stride + m

  (* Write a base coefficient (i < nx etc.) and its wrap duplicates. *)
  let set_base t ~orb ~i ~j ~k value =
    if i < 0 || i >= t.nx || j < 0 || j >= t.ny || k < 0 || k >= t.nz then
      invalid_arg "Bspline3d.set_base: index out of base grid";
    let is = if i < 3 then [ i; i + t.nx ] else [ i ] in
    let js = if j < 3 then [ j; j + t.ny ] else [ j ] in
    let ks = if k < 3 then [ k; k + t.nz ] else [ k ] in
    List.iter
      (fun ii ->
        List.iter
          (fun jj ->
            List.iter
              (fun kk -> A.set t.coeffs (index t ii jj kk orb) value)
              ks)
          js)
      is

  let get_base t ~orb ~i ~j ~k = A.get t.coeffs (index t i j k orb)

  (* Construction goes through the layout-shared driver (one copy of the
     sweep and of the periodic prefilter for both the flat and the tiled
     layouts — see Bspline_fit). *)
  let fill t f =
    Bspline_fit.fill ~nx:t.nx ~ny:t.ny ~nz:t.nz ~n_orb:t.n_orb ~f
      ~set:(fun ~orb ~i ~j ~k v -> set_base t ~orb ~i ~j ~k v)

  let fit_periodic t ~samples =
    Bspline_fit.fit_periodic ~nx:t.nx ~ny:t.ny ~nz:t.nz ~n_orb:t.n_orb
      ~samples ~set:(fun ~orb ~i ~j ~k v -> set_base t ~orb ~i ~j ~k v)

  let wrap s = s -. Float.of_int (int_of_float (Float.floor s))

  let locate n s =
    let x = wrap s *. float_of_int n in
    let i = int_of_float x in
    let i = if i >= n then n - 1 else if i < 0 then 0 else i in
    (i, x -. float_of_int i)

  let weights_of basis tx =
    let w = basis tx in
    [| w.Bspline_basis.w0; w.Bspline_basis.w1; w.Bspline_basis.w2;
       w.Bspline_basis.w3 |]

  (* Bspline-v: values of all orbitals at s = (u0,u1,u2). *)
  let eval_v t ~u0 ~u1 ~u2 (out : float array) =
    let ix, tx = locate t.nx u0 in
    let iy, ty = locate t.ny u1 in
    let iz, tz = locate t.nz u2 in
    let wx = weights_of Bspline_basis.value tx in
    let wy = weights_of Bspline_basis.value ty in
    let wz = weights_of Bspline_basis.value tz in
    let n = t.n_orb in
    Array.fill out 0 n 0.;
    let coeffs = t.coeffs in
    for a = 0 to 3 do
      for b = 0 to 3 do
        let wab = wx.(a) *. wy.(b) in
        let row = (((ix + a) * t.cy) + iy + b) * t.cz + iz in
        for c = 0 to 3 do
          let p = wab *. wz.(c) in
          let base = (row + c) * t.orb_stride in
          for m = 0 to n - 1 do
            out.(m) <- out.(m) +. (p *. A.unsafe_get coeffs (base + m))
          done
        done
      done
    done

  (* Bspline-vgh: values, fractional-coordinate gradients and hessians. *)
  let eval_vgh t ~u0 ~u1 ~u2 (buf : vgh_buf) =
    let ix, tx = locate t.nx u0 in
    let iy, ty = locate t.ny u1 in
    let iz, tz = locate t.nz u2 in
    let wx = weights_of Bspline_basis.value tx in
    let wy = weights_of Bspline_basis.value ty in
    let wz = weights_of Bspline_basis.value tz in
    let dx = weights_of Bspline_basis.first tx in
    let dy = weights_of Bspline_basis.first ty in
    let dz = weights_of Bspline_basis.first tz in
    let sx = weights_of Bspline_basis.second tx in
    let sy = weights_of Bspline_basis.second ty in
    let sz = weights_of Bspline_basis.second tz in
    let n = t.n_orb in
    Array.fill buf.v 0 n 0.;
    Array.fill buf.gx 0 n 0.;
    Array.fill buf.gy 0 n 0.;
    Array.fill buf.gz 0 n 0.;
    Array.fill buf.hxx 0 n 0.;
    Array.fill buf.hxy 0 n 0.;
    Array.fill buf.hxz 0 n 0.;
    Array.fill buf.hyy 0 n 0.;
    Array.fill buf.hyz 0 n 0.;
    Array.fill buf.hzz 0 n 0.;
    let coeffs = t.coeffs in
    for a = 0 to 3 do
      for b = 0 to 3 do
        let wxa = wx.(a) and dxa = dx.(a) and sxa = sx.(a) in
        let wyb = wy.(b) and dyb = dy.(b) and syb = sy.(b) in
        let row = (((ix + a) * t.cy) + iy + b) * t.cz + iz in
        for c = 0 to 3 do
          let wzc = wz.(c) and dzc = dz.(c) and szc = sz.(c) in
          let p_v = wxa *. wyb *. wzc in
          let p_gx = dxa *. wyb *. wzc in
          let p_gy = wxa *. dyb *. wzc in
          let p_gz = wxa *. wyb *. dzc in
          let p_hxx = sxa *. wyb *. wzc in
          let p_hxy = dxa *. dyb *. wzc in
          let p_hxz = dxa *. wyb *. dzc in
          let p_hyy = wxa *. syb *. wzc in
          let p_hyz = wxa *. dyb *. dzc in
          let p_hzz = wxa *. wyb *. szc in
          let base = (row + c) * t.orb_stride in
          for m = 0 to n - 1 do
            let cf = A.unsafe_get coeffs (base + m) in
            buf.v.(m) <- buf.v.(m) +. (p_v *. cf);
            buf.gx.(m) <- buf.gx.(m) +. (p_gx *. cf);
            buf.gy.(m) <- buf.gy.(m) +. (p_gy *. cf);
            buf.gz.(m) <- buf.gz.(m) +. (p_gz *. cf);
            buf.hxx.(m) <- buf.hxx.(m) +. (p_hxx *. cf);
            buf.hxy.(m) <- buf.hxy.(m) +. (p_hxy *. cf);
            buf.hxz.(m) <- buf.hxz.(m) +. (p_hxz *. cf);
            buf.hyy.(m) <- buf.hyy.(m) +. (p_hyy *. cf);
            buf.hyz.(m) <- buf.hyz.(m) +. (p_hyz *. cf);
            buf.hzz.(m) <- buf.hzz.(m) +. (p_hzz *. cf)
          done
        done
      done
    done;
    (* Convert t-space derivatives to fractional-coordinate derivatives. *)
    let fx = float_of_int t.nx and fy = float_of_int t.ny in
    let fz = float_of_int t.nz in
    for m = 0 to n - 1 do
      buf.gx.(m) <- buf.gx.(m) *. fx;
      buf.gy.(m) <- buf.gy.(m) *. fy;
      buf.gz.(m) <- buf.gz.(m) *. fz;
      buf.hxx.(m) <- buf.hxx.(m) *. fx *. fx;
      buf.hxy.(m) <- buf.hxy.(m) *. fx *. fy;
      buf.hxz.(m) <- buf.hxz.(m) *. fx *. fz;
      buf.hyy.(m) <- buf.hyy.(m) *. fy *. fy;
      buf.hyz.(m) <- buf.hyz.(m) *. fy *. fz;
      buf.hzz.(m) <- buf.hzz.(m) *. fz *. fz
    done

  (* ---------- crowd-batched kernels ----------

     The batched entry points take [n] fractional positions (one per
     walker of the crowd) and evaluate them through preallocated scratch:
     phase 1 locates every walker's stencil and computes its 1-D basis
     weights once into the flat arena; phase 2 streams the coefficient
     cache blocks walker by walker with zero allocation.  Per walker the
     arithmetic (expressions and accumulation order) is exactly that of
     the scalar kernels, so the double path is bit-identical to [n]
     scalar calls — the scalar kernel stays the reference oracle. *)

  let make_vgh_batch t ~cap =
    if cap < 1 then invalid_arg "Bspline3d.make_vgh_batch: cap < 1";
    let fa () = Array.make (4 * cap) 0. in
    let ia () = Array.make cap 0 in
    {
      cap;
      bix = ia ();
      biy = ia ();
      biz = ia ();
      bwx = fa ();
      bwy = fa ();
      bwz = fa ();
      bdx = fa ();
      bdy = fa ();
      bdz = fa ();
      bsx = fa ();
      bsy = fa ();
      bsz = fa ();
      bslab = Array.make (64 * t.n_orb) 0.;
      bprod = Array.make (640 * cap) 0.;
      outs = Array.init cap (fun _ -> make_vgh_buf t);
    }

  let make_v_batch t ~cap =
    if cap < 1 then invalid_arg "Bspline3d.make_v_batch: cap < 1";
    let fa () = Array.make (4 * cap) 0. in
    let ia () = Array.make cap 0 in
    {
      vcap = cap;
      vix = ia ();
      viy = ia ();
      viz = ia ();
      vwx = fa ();
      vwy = fa ();
      vwz = fa ();
      vslab = Array.make (64 * t.n_orb) 0.;
      vouts = Array.init cap (fun _ -> Array.make t.n_orb 0.);
    }

  (* Kind-specialized gather of the 4×4×4 stencil's coefficients into a
     flat double slab (cell layout [((a·4+b)·4+c)·n_orb + m]).  Reading a
     bigarray whose element kind is only known through the functor
     argument goes through an indirect call that boxes every float it
     returns — ~2·n_orb·64 words of garbage per evaluation.  Matching the
     kind GADT once recovers the static kind, so these loops compile to
     direct unboxed loads; the generic accumulation loops then run over
     the plain-float slab, also allocation-free.  The loads produce the
     same doubles [A.unsafe_get] would, so results stay bit-identical to
     the scalar kernels. *)
  let gather_f64
      (coeffs : (float, Bigarray.float64_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (slab : float array) ~ix ~iy ~iz ~cy ~cz
      ~orb_stride ~norb =
    let q = ref 0 in
    for a = 0 to 3 do
      for b = 0 to 3 do
        let row = (((ix + a) * cy) + iy + b) * cz + iz in
        for c = 0 to 3 do
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            Array.unsafe_set slab !q
              (Bigarray.Array1.unsafe_get coeffs (base + m));
            incr q
          done
        done
      done
    done

  let gather_f32
      (coeffs : (float, Bigarray.float32_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (slab : float array) ~ix ~iy ~iz ~cy ~cz
      ~orb_stride ~norb =
    let q = ref 0 in
    for a = 0 to 3 do
      for b = 0 to 3 do
        let row = (((ix + a) * cy) + iy + b) * cz + iz in
        for c = 0 to 3 do
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            Array.unsafe_set slab !q
              (Bigarray.Array1.unsafe_get coeffs (base + m));
            incr q
          done
        done
      done
    done

  let gather_coeffs :
      A.t -> float array -> ix:int -> iy:int -> iz:int -> cy:int -> cz:int ->
      orb_stride:int -> norb:int -> unit =
    match R.kind with
    | Bigarray.Float64 -> gather_f64
    | Bigarray.Float32 -> gather_f32

  (* Allocation-free weight fills; same formulas as Bspline_basis.  The
     interpolation parameter is read from [w.(off)] (stashed there by the
     caller) rather than passed as an argument: a float argument to a
     non-inlined call gets boxed, and these run nine times per walker per
     move. *)
  let put_value (w : float array) off =
    let t = Array.unsafe_get w off in
    let t2 = t *. t in
    let t3 = t2 *. t in
    let mt = 1. -. t in
    w.(off) <- mt *. mt *. mt /. 6.;
    w.(off + 1) <- ((3. *. t3) -. (6. *. t2) +. 4.) /. 6.;
    w.(off + 2) <- ((-3. *. t3) +. (3. *. t2) +. (3. *. t) +. 1.) /. 6.;
    w.(off + 3) <- t3 /. 6.

  let put_first (w : float array) off =
    let t = Array.unsafe_get w off in
    let t2 = t *. t in
    let mt = 1. -. t in
    w.(off) <- -.(mt *. mt) /. 2.;
    w.(off + 1) <- ((9. *. t2) -. (12. *. t)) /. 6.;
    w.(off + 2) <- ((-9. *. t2) +. (6. *. t) +. 3.) /. 6.;
    w.(off + 3) <- t2 /. 2.

  let put_second (w : float array) off =
    let t = Array.unsafe_get w off in
    w.(off) <- 1. -. t;
    w.(off + 1) <- (3. *. t) -. 2.;
    w.(off + 2) <- 1. -. (3. *. t);
    w.(off + 3) <- t

  (* Phase 1 of the batched Bspline-v: per-walker stencil origin + value
     weights into the arena.  Split out so the tiled layout (which shares
     the grid dimensions across tiles) can stage once and run phase 2 per
     tile.  [locate] written out so no (int, float) tuple is allocated. *)
  let stage_v_batch t (b : v_batch) ~n ~(u0 : float array)
      ~(u1 : float array) ~(u2 : float array) =
    if n < 0 || n > b.vcap then invalid_arg "Bspline3d.eval_v_batch: bad n";
    for s = 0 to n - 1 do
      let x = wrap u0.(s) *. float_of_int t.nx in
      let ix = int_of_float x in
      let ix = if ix >= t.nx then t.nx - 1 else if ix < 0 then 0 else ix in
      let tx = x -. float_of_int ix in
      let y = wrap u1.(s) *. float_of_int t.ny in
      let iy = int_of_float y in
      let iy = if iy >= t.ny then t.ny - 1 else if iy < 0 then 0 else iy in
      let ty = y -. float_of_int iy in
      let z = wrap u2.(s) *. float_of_int t.nz in
      let iz = int_of_float z in
      let iz = if iz >= t.nz then t.nz - 1 else if iz < 0 then 0 else iz in
      let tz = z -. float_of_int iz in
      b.vix.(s) <- ix;
      b.viy.(s) <- iy;
      b.viz.(s) <- iz;
      let off = 4 * s in
      b.vwx.(off) <- tx;
      b.vwy.(off) <- ty;
      b.vwz.(off) <- tz;
      put_value b.vwx off;
      put_value b.vwy off;
      put_value b.vwz off
    done

  (* Phase 2 for one walker slot: zero, gather and accumulate the orbital
     segment [orb_off, orb_off + n_orb t) of [out] from this table's
     coefficients.  With [orb_off = 0] and a full-width table this is
     exactly the flat kernel; the tiled layout calls it once per tile at
     the tile's orbital offset, so per orbital the arithmetic —
     expressions and accumulation order — is identical in both layouts
     and the double-path results are bit-identical by construction. *)
  let accum_v_slot t (b : v_batch) ~s ~(out : float array) ~orb_off =
    let norb = t.n_orb in
    Array.fill out orb_off norb 0.;
    gather_coeffs t.coeffs b.vslab ~ix:b.vix.(s) ~iy:b.viy.(s)
      ~iz:b.viz.(s) ~cy:t.cy ~cz:t.cz ~orb_stride:t.orb_stride ~norb;
    let slab = b.vslab in
    let off = 4 * s in
    for a = 0 to 3 do
      for bb = 0 to 3 do
        let wab = b.vwx.(off + a) *. b.vwy.(off + bb) in
        for c = 0 to 3 do
          let p = wab *. b.vwz.(off + c) in
          let cell = ((((a * 4) + bb) * 4) + c) * norb in
          for m = 0 to norb - 1 do
            out.(orb_off + m) <-
              out.(orb_off + m) +. (p *. Array.unsafe_get slab (cell + m))
          done
        done
      done
    done

  let eval_v_batch t (b : v_batch) ~n ~(u0 : float array) ~(u1 : float array)
      ~(u2 : float array) =
    stage_v_batch t b ~n ~u0 ~u1 ~u2;
    for s = 0 to n - 1 do
      accum_v_slot t b ~s ~out:b.vouts.(s) ~orb_off:0
    done

  (* Phase 1 of the batched Bspline-vgh: per-walker stencil origin + the
     nine weight vectors.  [locate] written out so no (int, float) tuples
     are allocated. *)
  let stage_vgh_batch t (b : vgh_batch) ~n ~(u0 : float array)
      ~(u1 : float array) ~(u2 : float array) =
    if n < 0 || n > b.cap then invalid_arg "Bspline3d.eval_vgh_batch: bad n";
    for s = 0 to n - 1 do
      let x = wrap u0.(s) *. float_of_int t.nx in
      let ix = int_of_float x in
      let ix = if ix >= t.nx then t.nx - 1 else if ix < 0 then 0 else ix in
      let tx = x -. float_of_int ix in
      let y = wrap u1.(s) *. float_of_int t.ny in
      let iy = int_of_float y in
      let iy = if iy >= t.ny then t.ny - 1 else if iy < 0 then 0 else iy in
      let ty = y -. float_of_int iy in
      let z = wrap u2.(s) *. float_of_int t.nz in
      let iz = int_of_float z in
      let iz = if iz >= t.nz then t.nz - 1 else if iz < 0 then 0 else iz in
      let tz = z -. float_of_int iz in
      b.bix.(s) <- ix;
      b.biy.(s) <- iy;
      b.biz.(s) <- iz;
      let off = 4 * s in
      b.bwx.(off) <- tx;
      b.bwy.(off) <- ty;
      b.bwz.(off) <- tz;
      b.bdx.(off) <- tx;
      b.bdy.(off) <- ty;
      b.bdz.(off) <- tz;
      b.bsx.(off) <- tx;
      b.bsy.(off) <- ty;
      b.bsz.(off) <- tz;
      put_value b.bwx off;
      put_value b.bwy off;
      put_value b.bwz off;
      put_first b.bdx off;
      put_first b.bdy off;
      put_first b.bdz off;
      put_second b.bsx off;
      put_second b.bsy off;
      put_second b.bsz off
    done

  (* Phase 2 for one walker slot (vgh analogue of [accum_v_slot]): zero,
     gather, accumulate and metric-scale the orbital segment
     [orb_off, orb_off + n_orb t) of [buf] from this table. *)
  let accum_vgh_slot t (b : vgh_batch) ~s ~(buf : vgh_buf) ~orb_off =
    let norb = t.n_orb in
    Array.fill buf.v orb_off norb 0.;
    Array.fill buf.gx orb_off norb 0.;
    Array.fill buf.gy orb_off norb 0.;
    Array.fill buf.gz orb_off norb 0.;
    Array.fill buf.hxx orb_off norb 0.;
    Array.fill buf.hxy orb_off norb 0.;
    Array.fill buf.hxz orb_off norb 0.;
    Array.fill buf.hyy orb_off norb 0.;
    Array.fill buf.hyz orb_off norb 0.;
    Array.fill buf.hzz orb_off norb 0.;
    gather_coeffs t.coeffs b.bslab ~ix:b.bix.(s) ~iy:b.biy.(s)
      ~iz:b.biz.(s) ~cy:t.cy ~cz:t.cz ~orb_stride:t.orb_stride ~norb;
    let slab = b.bslab in
    let off = 4 * s in
    for a = 0 to 3 do
      let wxa = b.bwx.(off + a)
      and dxa = b.bdx.(off + a)
      and sxa = b.bsx.(off + a) in
      for bb = 0 to 3 do
        let wyb = b.bwy.(off + bb)
        and dyb = b.bdy.(off + bb)
        and syb = b.bsy.(off + bb) in
        for c = 0 to 3 do
          let wzc = b.bwz.(off + c)
          and dzc = b.bdz.(off + c)
          and szc = b.bsz.(off + c) in
          let p_v = wxa *. wyb *. wzc in
          let p_gx = dxa *. wyb *. wzc in
          let p_gy = wxa *. dyb *. wzc in
          let p_gz = wxa *. wyb *. dzc in
          let p_hxx = sxa *. wyb *. wzc in
          let p_hxy = dxa *. dyb *. wzc in
          let p_hxz = dxa *. wyb *. dzc in
          let p_hyy = wxa *. syb *. wzc in
          let p_hyz = wxa *. dyb *. dzc in
          let p_hzz = wxa *. wyb *. szc in
          let cell = ((((a * 4) + bb) * 4) + c) * norb in
          for m = 0 to norb - 1 do
            let cf = Array.unsafe_get slab (cell + m) in
            let q = orb_off + m in
            buf.v.(q) <- buf.v.(q) +. (p_v *. cf);
            buf.gx.(q) <- buf.gx.(q) +. (p_gx *. cf);
            buf.gy.(q) <- buf.gy.(q) +. (p_gy *. cf);
            buf.gz.(q) <- buf.gz.(q) +. (p_gz *. cf);
            buf.hxx.(q) <- buf.hxx.(q) +. (p_hxx *. cf);
            buf.hxy.(q) <- buf.hxy.(q) +. (p_hxy *. cf);
            buf.hxz.(q) <- buf.hxz.(q) +. (p_hxz *. cf);
            buf.hyy.(q) <- buf.hyy.(q) +. (p_hyy *. cf);
            buf.hyz.(q) <- buf.hyz.(q) +. (p_hyz *. cf);
            buf.hzz.(q) <- buf.hzz.(q) +. (p_hzz *. cf)
          done
        done
      done
    done;
    let fx = float_of_int t.nx and fy = float_of_int t.ny in
    let fz = float_of_int t.nz in
    for m = orb_off to orb_off + norb - 1 do
      buf.gx.(m) <- buf.gx.(m) *. fx;
      buf.gy.(m) <- buf.gy.(m) *. fy;
      buf.gz.(m) <- buf.gz.(m) *. fz;
      buf.hxx.(m) <- buf.hxx.(m) *. fx *. fx;
      buf.hxy.(m) <- buf.hxy.(m) *. fx *. fy;
      buf.hxz.(m) <- buf.hxz.(m) *. fx *. fz;
      buf.hyy.(m) <- buf.hyy.(m) *. fy *. fy;
      buf.hyz.(m) <- buf.hyz.(m) *. fy *. fz;
      buf.hzz.(m) <- buf.hzz.(m) *. fz *. fz
    done

  let eval_vgh_batch t (b : vgh_batch) ~n ~(u0 : float array)
      ~(u1 : float array) ~(u2 : float array) =
    stage_vgh_batch t b ~n ~u0 ~u1 ~u2;
    for s = 0 to n - 1 do
      accum_vgh_slot t b ~s ~buf:b.outs.(s) ~orb_off:0
    done

  (* ---------- fused phase 2 (tiled layout's accumulators) ----------

     The slab kernels above pay a full write+read copy of every stencil
     coefficient (64·n_orb doubles per eval) to keep the kind-specialized
     loads separate from the generic accumulation.  The tiled layout's
     per-tile blocks are small enough to fuse instead: one monomorphic
     kernel per storage kind reads the bigarray directly inside the
     accumulation loop, eliminating the slab traffic entirely.  The
     coefficients are the same doubles in the same (a,b,c,m) order and
     the weight products are the same expressions, so results stay
     bit-identical to the slab kernels (and hence to the scalar ones).

     The ten vgh weight products depend only on the slot, so the tiled
     driver stages them once per slot ({!stage_vgh_products}) instead of
     recomputing 64×10 of them for every tile. *)

  (* Products for slot [s] into [b.bprod] at [(s·64 + point)·10 + field],
     field order v,gx,gy,gz,hxx,hxy,hxz,hyy,hyz,hzz — the exact
     expressions of [accum_vgh_slot]. *)
  let stage_vgh_products (b : vgh_batch) ~s =
    let off = 4 * s in
    let prod = b.bprod in
    let q = ref (640 * s) in
    for a = 0 to 3 do
      let wxa = b.bwx.(off + a)
      and dxa = b.bdx.(off + a)
      and sxa = b.bsx.(off + a) in
      for bb = 0 to 3 do
        let wyb = b.bwy.(off + bb)
        and dyb = b.bdy.(off + bb)
        and syb = b.bsy.(off + bb) in
        for c = 0 to 3 do
          let wzc = b.bwz.(off + c)
          and dzc = b.bdz.(off + c)
          and szc = b.bsz.(off + c) in
          let p = !q in
          Array.unsafe_set prod p (wxa *. wyb *. wzc);
          Array.unsafe_set prod (p + 1) (dxa *. wyb *. wzc);
          Array.unsafe_set prod (p + 2) (wxa *. dyb *. wzc);
          Array.unsafe_set prod (p + 3) (wxa *. wyb *. dzc);
          Array.unsafe_set prod (p + 4) (sxa *. wyb *. wzc);
          Array.unsafe_set prod (p + 5) (dxa *. dyb *. wzc);
          Array.unsafe_set prod (p + 6) (dxa *. wyb *. dzc);
          Array.unsafe_set prod (p + 7) (wxa *. syb *. wzc);
          Array.unsafe_set prod (p + 8) (wxa *. dyb *. dzc);
          Array.unsafe_set prod (p + 9) (wxa *. wyb *. szc);
          q := p + 10
        done
      done
    done

  let accum_vgh_direct_f64
      (coeffs : (float, Bigarray.float64_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (b : vgh_batch) ~s ~(buf : vgh_buf)
      ~orb_off ~norb ~cy ~cz ~orb_stride =
    let ix = b.bix.(s) and iy = b.biy.(s) and iz = b.biz.(s) in
    let prod = b.bprod in
    let q = ref (640 * s) in
    for a = 0 to 3 do
      for bb = 0 to 3 do
        let row = (((ix + a) * cy) + iy + bb) * cz + iz in
        for c = 0 to 3 do
          let p = !q in
          let p_v = Array.unsafe_get prod p in
          let p_gx = Array.unsafe_get prod (p + 1) in
          let p_gy = Array.unsafe_get prod (p + 2) in
          let p_gz = Array.unsafe_get prod (p + 3) in
          let p_hxx = Array.unsafe_get prod (p + 4) in
          let p_hxy = Array.unsafe_get prod (p + 5) in
          let p_hxz = Array.unsafe_get prod (p + 6) in
          let p_hyy = Array.unsafe_get prod (p + 7) in
          let p_hyz = Array.unsafe_get prod (p + 8) in
          let p_hzz = Array.unsafe_get prod (p + 9) in
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            let cf = Bigarray.Array1.unsafe_get coeffs (base + m) in
            let o = orb_off + m in
            buf.v.(o) <- buf.v.(o) +. (p_v *. cf);
            buf.gx.(o) <- buf.gx.(o) +. (p_gx *. cf);
            buf.gy.(o) <- buf.gy.(o) +. (p_gy *. cf);
            buf.gz.(o) <- buf.gz.(o) +. (p_gz *. cf);
            buf.hxx.(o) <- buf.hxx.(o) +. (p_hxx *. cf);
            buf.hxy.(o) <- buf.hxy.(o) +. (p_hxy *. cf);
            buf.hxz.(o) <- buf.hxz.(o) +. (p_hxz *. cf);
            buf.hyy.(o) <- buf.hyy.(o) +. (p_hyy *. cf);
            buf.hyz.(o) <- buf.hyz.(o) +. (p_hyz *. cf);
            buf.hzz.(o) <- buf.hzz.(o) +. (p_hzz *. cf)
          done;
          q := p + 10
        done
      done
    done

  let accum_vgh_direct_f32
      (coeffs : (float, Bigarray.float32_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (b : vgh_batch) ~s ~(buf : vgh_buf)
      ~orb_off ~norb ~cy ~cz ~orb_stride =
    let ix = b.bix.(s) and iy = b.biy.(s) and iz = b.biz.(s) in
    let prod = b.bprod in
    let q = ref (640 * s) in
    for a = 0 to 3 do
      for bb = 0 to 3 do
        let row = (((ix + a) * cy) + iy + bb) * cz + iz in
        for c = 0 to 3 do
          let p = !q in
          let p_v = Array.unsafe_get prod p in
          let p_gx = Array.unsafe_get prod (p + 1) in
          let p_gy = Array.unsafe_get prod (p + 2) in
          let p_gz = Array.unsafe_get prod (p + 3) in
          let p_hxx = Array.unsafe_get prod (p + 4) in
          let p_hxy = Array.unsafe_get prod (p + 5) in
          let p_hxz = Array.unsafe_get prod (p + 6) in
          let p_hyy = Array.unsafe_get prod (p + 7) in
          let p_hyz = Array.unsafe_get prod (p + 8) in
          let p_hzz = Array.unsafe_get prod (p + 9) in
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            let cf = Bigarray.Array1.unsafe_get coeffs (base + m) in
            let o = orb_off + m in
            buf.v.(o) <- buf.v.(o) +. (p_v *. cf);
            buf.gx.(o) <- buf.gx.(o) +. (p_gx *. cf);
            buf.gy.(o) <- buf.gy.(o) +. (p_gy *. cf);
            buf.gz.(o) <- buf.gz.(o) +. (p_gz *. cf);
            buf.hxx.(o) <- buf.hxx.(o) +. (p_hxx *. cf);
            buf.hxy.(o) <- buf.hxy.(o) +. (p_hxy *. cf);
            buf.hxz.(o) <- buf.hxz.(o) +. (p_hxz *. cf);
            buf.hyy.(o) <- buf.hyy.(o) +. (p_hyy *. cf);
            buf.hyz.(o) <- buf.hyz.(o) +. (p_hyz *. cf);
            buf.hzz.(o) <- buf.hzz.(o) +. (p_hzz *. cf)
          done;
          q := p + 10
        done
      done
    done

  let accum_vgh_direct :
      A.t -> vgh_batch -> s:int -> buf:vgh_buf -> orb_off:int -> norb:int ->
      cy:int -> cz:int -> orb_stride:int -> unit =
    match R.kind with
    | Bigarray.Float64 -> accum_vgh_direct_f64
    | Bigarray.Float32 -> accum_vgh_direct_f32

  (* Fused variant of [accum_vgh_slot]: requires the slot's products to
     be staged ({!stage_vgh_products}) — the tiled driver stages once per
     slot and calls this per tile. *)
  let accum_vgh_slot_fused t (b : vgh_batch) ~s ~(buf : vgh_buf) ~orb_off =
    let norb = t.n_orb in
    Array.fill buf.v orb_off norb 0.;
    Array.fill buf.gx orb_off norb 0.;
    Array.fill buf.gy orb_off norb 0.;
    Array.fill buf.gz orb_off norb 0.;
    Array.fill buf.hxx orb_off norb 0.;
    Array.fill buf.hxy orb_off norb 0.;
    Array.fill buf.hxz orb_off norb 0.;
    Array.fill buf.hyy orb_off norb 0.;
    Array.fill buf.hyz orb_off norb 0.;
    Array.fill buf.hzz orb_off norb 0.;
    accum_vgh_direct t.coeffs b ~s ~buf ~orb_off ~norb ~cy:t.cy ~cz:t.cz
      ~orb_stride:t.orb_stride;
    let fx = float_of_int t.nx and fy = float_of_int t.ny in
    let fz = float_of_int t.nz in
    for m = orb_off to orb_off + norb - 1 do
      buf.gx.(m) <- buf.gx.(m) *. fx;
      buf.gy.(m) <- buf.gy.(m) *. fy;
      buf.gz.(m) <- buf.gz.(m) *. fz;
      buf.hxx.(m) <- buf.hxx.(m) *. fx *. fx;
      buf.hxy.(m) <- buf.hxy.(m) *. fx *. fy;
      buf.hxz.(m) <- buf.hxz.(m) *. fx *. fz;
      buf.hyy.(m) <- buf.hyy.(m) *. fy *. fy;
      buf.hyz.(m) <- buf.hyz.(m) *. fy *. fz;
      buf.hzz.(m) <- buf.hzz.(m) *. fz *. fz
    done

  let accum_v_direct_f64
      (coeffs : (float, Bigarray.float64_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (b : v_batch) ~s ~(out : float array)
      ~orb_off ~norb ~cy ~cz ~orb_stride =
    let ix = b.vix.(s) and iy = b.viy.(s) and iz = b.viz.(s) in
    let off = 4 * s in
    for a = 0 to 3 do
      for bb = 0 to 3 do
        let wab = b.vwx.(off + a) *. b.vwy.(off + bb) in
        let row = (((ix + a) * cy) + iy + bb) * cz + iz in
        for c = 0 to 3 do
          let p = wab *. b.vwz.(off + c) in
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            let o = orb_off + m in
            out.(o) <-
              out.(o) +. (p *. Bigarray.Array1.unsafe_get coeffs (base + m))
          done
        done
      done
    done

  let accum_v_direct_f32
      (coeffs : (float, Bigarray.float32_elt, Bigarray.c_layout)
                  Bigarray.Array1.t) (b : v_batch) ~s ~(out : float array)
      ~orb_off ~norb ~cy ~cz ~orb_stride =
    let ix = b.vix.(s) and iy = b.viy.(s) and iz = b.viz.(s) in
    let off = 4 * s in
    for a = 0 to 3 do
      for bb = 0 to 3 do
        let wab = b.vwx.(off + a) *. b.vwy.(off + bb) in
        let row = (((ix + a) * cy) + iy + bb) * cz + iz in
        for c = 0 to 3 do
          let p = wab *. b.vwz.(off + c) in
          let base = (row + c) * orb_stride in
          for m = 0 to norb - 1 do
            let o = orb_off + m in
            out.(o) <-
              out.(o) +. (p *. Bigarray.Array1.unsafe_get coeffs (base + m))
          done
        done
      done
    done

  let accum_v_direct :
      A.t -> v_batch -> s:int -> out:float array -> orb_off:int ->
      norb:int -> cy:int -> cz:int -> orb_stride:int -> unit =
    match R.kind with
    | Bigarray.Float64 -> accum_v_direct_f64
    | Bigarray.Float32 -> accum_v_direct_f32

  (* Fused variant of [accum_v_slot]; the value products are three mults
     per stencil point, cheap enough to recompute per tile. *)
  let accum_v_slot_fused t (b : v_batch) ~s ~(out : float array) ~orb_off =
    let norb = t.n_orb in
    Array.fill out orb_off norb 0.;
    accum_v_direct t.coeffs b ~s ~out ~orb_off ~norb ~cy:t.cy ~cz:t.cz
      ~orb_stride:t.orb_stride

  (* Analytic size of a table in bytes for workloads too big to allocate
     (the B-spline column of Table 1). *)
  let table_bytes ~nx ~ny ~nz ~n_orb ~elt_bytes =
    (nx + 3) * (ny + 3) * (nz + 3) * n_orb * elt_bytes
end
