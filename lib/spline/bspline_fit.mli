(** Layout-independent coefficient construction shared by {!Bspline3d}
    (flat) and {!Bspline3d_tiled}: the raw base-grid sweep and the
    separable periodic B-spline prefilter exist exactly once, writing
    through the layout's [set] callback, so the fitting math cannot
    drift between layouts. *)

val fill :
  nx:int ->
  ny:int ->
  nz:int ->
  n_orb:int ->
  f:(orb:int -> i:int -> j:int -> k:int -> float) ->
  set:(orb:int -> i:int -> j:int -> k:int -> float -> unit) ->
  unit
(** Set every base coefficient directly (synthetic tables). *)

val fit_periodic :
  nx:int ->
  ny:int ->
  nz:int ->
  n_orb:int ->
  samples:(orb:int -> ix:int -> iy:int -> iz:int -> float) ->
  set:(orb:int -> i:int -> j:int -> k:int -> float -> unit) ->
  unit
(** Prefilter so the spline interpolates the given grid samples
    (cyclic [1 4 1]/6 tridiagonal solves along z, then y, then x). *)
