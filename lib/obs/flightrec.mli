(** Crash flight recorder: a bounded in-memory ring of recent telemetry
    records per process, dumped together with the newest trace spans to
    a CRC-trailed postmortem file on abort paths, and replayed by
    [oqmc_submit postmortem].

    Recording is always on and cheap (one mutex-protected ring slot per
    record; call sites are per-generation or per-event).  A dump that
    died mid-write leaves a torn tail; {!replay} recovers every complete
    line and reports [complete = false] instead of refusing. *)

type entry = { ts : float; kind : string; data : Jsonx.t }

val set_capacity : int -> unit
(** Resize the ring (default 512 records); drops current contents. *)

val clear : unit -> unit
val record : string -> Jsonx.t -> unit
(** [record kind data] appends to the ring, overwriting the oldest
    record when full. *)

val note : ('a, unit, string, unit) format4 -> 'a
(** Printf-style free-text record (kind ["note"]). *)

val recorded : unit -> int
(** Total records ever recorded (>= ring occupancy). *)

val entries : unit -> entry list
(** Current ring contents, oldest first. *)

val dump : ?reason:string -> path:string -> unit -> unit
(** Write the postmortem file: meta header, ring records, the newest
    trace spans (when tracing is enabled), CRC-32 trailer. *)

type postmortem = {
  meta : Jsonx.t;
  records : entry list;
  spans : Jsonx.t list;
  complete : bool;  (** the CRC trailer was present and matched *)
}

exception Not_flightrec of string

val replay : path:string -> postmortem
(** Parse a postmortem file, tolerating a torn tail.
    @raise Not_flightrec when [path] is not a flight-recorder dump. *)

val describe : postmortem -> string
(** Human-readable rendering (the [oqmc_submit postmortem] output). *)

val crc32 : string -> int
(** The recorder's own IEEE CRC-32 (exposed for tests). *)
