(* Live progress line: a single self-overwriting status line on stderr
   (gen, E_T, population, acceptance, walkers/s, per-rank lag), throttled
   so a fast run is not dominated by terminal writes.  [finish] moves to
   a fresh line so subsequent output does not clobber the last status. *)

type t = {
  oc : out_channel;
  min_interval : float; (* seconds between repaints *)
  mutable last : float;
  mutable active : bool; (* a line is currently painted *)
}

let create ?(oc = stderr) ?(min_interval = 0.1) () =
  { oc; min_interval; last = 0.; active = false }

let update t line =
  let now = Unix.gettimeofday () in
  if now -. t.last >= t.min_interval then begin
    t.last <- now;
    t.active <- true;
    (* \r + erase-to-end keeps a shrinking line from leaving residue. *)
    output_string t.oc ("\r" ^ line ^ "\027[K");
    flush t.oc
  end

let finish t =
  if t.active then begin
    output_string t.oc "\n";
    flush t.oc;
    t.active <- false
  end

(* A warning sharing the progress fd must not land mid-line: clear the
   painted status first, emit the message on its own line, and let the
   next [update] repaint immediately (torn fragments came from writers
   appending after the \r-positioned status). *)
let interject t msg =
  if t.active then output_string t.oc "\r\027[K";
  output_string t.oc (msg ^ "\n");
  flush t.oc;
  t.active <- false;
  t.last <- 0.
