(* Per-rank throughput ledger: rolling windows of the per-generation
   facts the supervisor already collects (shard size, proposed moves,
   generation wall time, exchange traffic, straggle time), summarized
   per rank as an EWMA-smoothed walkers·moves/sec plus windowed wall
   p50/p99 via the bucketed [Metrics.quantile].

   The ledger answers two questions: "how fast is each rank *really*
   going" (the Status endpoint / JSONL export) and "how should the
   exchange planner split walkers to level throughput instead of raw
   counts" ([speed_weights], the [plan = load] deck mode).  It is pure
   bookkeeping — no locks beyond its owner's thread, no RNG, no effect
   on the trajectory unless the caller opts into load-weighted
   planning. *)

type window = {
  rank : int;
  gens : int; (* generations summarized in this window *)
  last_gen : int;
  walkers_moves_per_s : float; (* EWMA across windows, 0 until first *)
  exchange_walkers : int;
  straggle_s : float;
  wall_p50_s : float;
  wall_p99_s : float;
}

type rankstate = {
  rank : int;
  mutable total_gens : int;
  mutable ewma : float; (* walkers·moves/sec, 0 = no sample yet *)
  mutable win_walls : float list; (* current window, newest first *)
  mutable win_moves_per_s : float list;
  mutable win_exchange : int;
  mutable win_straggle_s : float;
  mutable win_first_gen : int;
  mutable win_last_gen : int;
  mutable last : window option; (* newest completed window *)
}

type t = {
  window : int; (* generations per window *)
  retain : float; (* EWMA retention of the previous value *)
  ranks : (int, rankstate) Hashtbl.t;
}

let create ?(window = 16) ?(retain = 0.8) () =
  if window < 1 then invalid_arg "Ledger.create: window must be >= 1";
  if retain < 0. || retain >= 1. then
    invalid_arg "Ledger.create: retain must be in [0, 1)";
  { window; retain; ranks = Hashtbl.create 8 }

let rankstate t rank =
  match Hashtbl.find_opt t.ranks rank with
  | Some rs -> rs
  | None ->
      let rs =
        {
          rank;
          total_gens = 0;
          ewma = 0.;
          win_walls = [];
          win_moves_per_s = [];
          win_exchange = 0;
          win_straggle_s = 0.;
          win_first_gen = 0;
          win_last_gen = 0;
          last = None;
        }
      in
      Hashtbl.add t.ranks rank rs;
      rs

let wall_quantiles walls =
  let hv = Metrics.hview_of_values walls in
  let q p = match Metrics.quantile hv p with Some (e, _) -> e | None -> 0. in
  (q 0.5, q 0.99)

(* Close the current window: fold its mean throughput into the EWMA and
   publish it as [last]. *)
let roll t rs =
  let n = List.length rs.win_moves_per_s in
  if n > 0 then begin
    let mean =
      List.fold_left ( +. ) 0. rs.win_moves_per_s /. float_of_int n
    in
    rs.ewma <-
      (if rs.ewma = 0. then mean
       else (t.retain *. rs.ewma) +. ((1. -. t.retain) *. mean));
    let p50, p99 = wall_quantiles rs.win_walls in
    rs.last <-
      Some
        {
          rank = rs.rank;
          gens = n;
          last_gen = rs.win_last_gen;
          walkers_moves_per_s = rs.ewma;
          exchange_walkers = rs.win_exchange;
          straggle_s = rs.win_straggle_s;
          wall_p50_s = p50;
          wall_p99_s = p99;
        }
  end;
  rs.win_walls <- [];
  rs.win_moves_per_s <- [];
  rs.win_exchange <- 0;
  rs.win_straggle_s <- 0.;
  rs.win_first_gen <- rs.win_last_gen + 1

(* [moves] is the shard's proposed-move delta for the generation (it
   already scales with the shard's walker count, so moves/wall is the
   walkers·moves/sec figure of merit). *)
let observe_gen t ~rank ~gen ~moves ~wall_s =
  let rs = rankstate t rank in
  rs.total_gens <- rs.total_gens + 1;
  if rs.win_walls = [] then rs.win_first_gen <- gen;
  rs.win_last_gen <- gen;
  if wall_s > 0. then begin
    rs.win_walls <- wall_s :: rs.win_walls;
    rs.win_moves_per_s <-
      (float_of_int moves /. wall_s) :: rs.win_moves_per_s
  end;
  if List.length rs.win_walls >= t.window then roll t rs

let add_exchange t ~rank ~walkers =
  let rs = rankstate t rank in
  rs.win_exchange <- rs.win_exchange + walkers

let add_straggle t ~rank ~seconds =
  let rs = rankstate t rank in
  rs.win_straggle_s <- rs.win_straggle_s +. seconds

let drop_rank t ~rank = Hashtbl.remove t.ranks rank

(* Newest per-rank summary: the completed window when the current one is
   empty, otherwise the partial window (live view), always carrying the
   cross-window EWMA. *)
let window_of rs =
  match (rs.win_moves_per_s, rs.last) with
  | [], Some w -> Some { w with walkers_moves_per_s = rs.ewma }
  | [], None -> None
  | mps, _ ->
      let n = List.length mps in
      let mean = List.fold_left ( +. ) 0. mps /. float_of_int n in
      let live =
        if rs.ewma = 0. then mean else (rs.ewma +. mean) /. 2.
      in
      let p50, p99 = wall_quantiles rs.win_walls in
      Some
        {
          rank = rs.rank;
          gens = n;
          last_gen = rs.win_last_gen;
          walkers_moves_per_s = live;
          exchange_walkers = rs.win_exchange;
          straggle_s = rs.win_straggle_s;
          wall_p50_s = p50;
          wall_p99_s = p99;
        }

let windows t =
  Hashtbl.fold
    (fun _ rs acc -> match window_of rs with Some w -> w :: acc | None -> acc)
    t.ranks []
  |> List.sort (fun (a : window) (b : window) -> compare a.rank b.rank)

(* Relative speeds for the exchange planner.  Only meaningful once every
   listed rank has at least one sample; otherwise the caller must fall
   back to count levelling (None). *)
let speed_weights t ranks =
  let ws =
    List.map
      (fun r ->
        match Hashtbl.find_opt t.ranks r with
        | Some rs when rs.ewma > 0. -> rs.ewma
        | Some rs -> (
            match window_of rs with
            | Some w when w.walkers_moves_per_s > 0. -> w.walkers_moves_per_s
            | _ -> 0.)
        | None -> 0.)
      ranks
  in
  if List.exists (fun w -> w <= 0.) ws then None
  else Some (Array.of_list ws)

let json_of_window (w : window) =
  Jsonx.Obj
    [
      ("rank", Jsonx.Num (float_of_int w.rank));
      ("gens", Jsonx.Num (float_of_int w.gens));
      ("last_gen", Jsonx.Num (float_of_int w.last_gen));
      ("walkers_moves_per_s", Jsonx.Num w.walkers_moves_per_s);
      ("exchange_walkers", Jsonx.Num (float_of_int w.exchange_walkers));
      ("straggle_s", Jsonx.Num w.straggle_s);
      ("wall_p50_s", Jsonx.Num w.wall_p50_s);
      ("wall_p99_s", Jsonx.Num w.wall_p99_s);
    ]

let json t = Jsonx.Arr (List.map json_of_window (windows t))
