(** Per-rank throughput ledger: rolling windows over the per-generation
    facts the supervisor already absorbs — proposed-move throughput
    (EWMA-smoothed across windows), exchange volume, straggle time and
    generation wall p50/p99 (via {!Metrics.quantile}) — exported through
    the Status endpoint / JSONL sink, and convertible into per-rank
    speed weights for load-levelled exchange planning. *)

type t

type window = {
  rank : int;
  gens : int;  (** generations summarized in this window *)
  last_gen : int;
  walkers_moves_per_s : float;  (** EWMA across windows *)
  exchange_walkers : int;
  straggle_s : float;
  wall_p50_s : float;
  wall_p99_s : float;
}

val create : ?window:int -> ?retain:float -> unit -> t
(** [window] generations per summary window (default 16); [retain] is
    the EWMA retention of the previous value (default 0.8). *)

val observe_gen : t -> rank:int -> gen:int -> moves:int -> wall_s:float -> unit
(** One generation on one rank: [moves] is the shard's proposed-move
    delta (already proportional to its walker count), [wall_s] the
    generation wall time.  Closes the window every [window]
    observations. *)

val add_exchange : t -> rank:int -> walkers:int -> unit
(** Walkers shipped to or from the rank this window. *)

val add_straggle : t -> rank:int -> seconds:float -> unit
val drop_rank : t -> rank:int -> unit

val windows : t -> window list
(** Newest per-rank summaries, sorted by rank: the last completed window
    (or the live partial one), always carrying the cross-window EWMA. *)

val speed_weights : t -> int list -> float array option
(** Relative speeds for [ranks], in order, for the exchange planner —
    [None] until every listed rank has at least one sample (fall back to
    count levelling). *)

val json : t -> Jsonx.t
val json_of_window : window -> Jsonx.t
