(** JSONL telemetry sink: one JSON record per line, flushed per record.
    The per-generation schema is documented in docs/OBSERVABILITY.md. *)

type sink

(** [create ?append path] opens a sink; [~append:true] preserves an
    existing file instead of truncating it — use it for services that
    may restart onto the same telemetry path. *)
val create : ?append:bool -> string -> sink
val path : sink -> string
val records : sink -> int
(** Records emitted so far. *)

val emit : sink -> Jsonx.t -> unit
val close : sink -> unit
val with_sink : string -> (sink -> 'a) -> 'a
