(* Crash flight recorder: a bounded in-memory ring of recent telemetry
   records per process, dumped together with the most recent trace spans
   to a CRC-trailed postmortem file on an abort path.

   Recording is cheap (one mutex-protected ring slot per record; call
   sites are per-generation or per-event, never per-electron) and always
   on — the cost of remembering the last few hundred records is what
   buys a usable postmortem when a rank dies without warning.

   File format, line-oriented so a torn tail truncates to whole records:

     oqmc-flightrec v1 <meta JSON>
     E <entry JSON>          (ring records, oldest first)
     S <span JSON>           (recent trace events, oldest first)
     C <crc32 hex> <lines>   (trailer over every preceding byte)

   A dump that itself died mid-write leaves a file without (or with a
   mismatched) trailer; [replay] still recovers every complete line and
   reports [complete = false] instead of refusing. *)

type entry = { ts : float; kind : string; data : Jsonx.t }

(* Local IEEE CRC-32: this library sits below the checkpoint layer, so
   it carries its own copy of the standard table-driven loop. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let t = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff land 0xffffffff

(* ---------- the ring ---------- *)

let default_capacity = 512
let lock = Mutex.create ()
let ring = ref (Array.make default_capacity None)
let head = ref 0 (* total records ever; next slot = head mod capacity *)

let set_capacity n =
  let n = max 1 n in
  Mutex.lock lock;
  ring := Array.make n None;
  head := 0;
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  Array.fill !ring 0 (Array.length !ring) None;
  head := 0;
  Mutex.unlock lock

let record kind data =
  let e = { ts = Unix.gettimeofday (); kind; data } in
  Mutex.lock lock;
  !ring.(!head mod Array.length !ring) <- Some e;
  incr head;
  Mutex.unlock lock

let note fmt = Printf.ksprintf (fun s -> record "note" (Jsonx.Str s)) fmt

let recorded () = !head

(* Ring contents, oldest first. *)
let entries () =
  Mutex.lock lock;
  let cap = Array.length !ring in
  let n = min !head cap in
  let out = ref [] in
  for i = 0 to n - 1 do
    match !ring.((!head - 1 - i + (2 * cap)) mod cap) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock lock;
  !out

(* ---------- dump ---------- *)

let span_cap = 256

let json_of_span (e : Trace.event) =
  Jsonx.Obj
    [
      ("name", Jsonx.Str e.Trace.name);
      ("ph", Jsonx.Str (String.make 1 e.Trace.ph));
      ("ts", Jsonx.Num e.Trace.ts);
      ("dur", Jsonx.Num e.Trace.dur);
      ("pid", Jsonx.Num (float_of_int e.Trace.pid));
      ("tid", Jsonx.Num (float_of_int e.Trace.tid));
      ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) e.Trace.args));
    ]

let json_of_entry e =
  Jsonx.Obj
    [ ("ts", Jsonx.Num e.ts); ("kind", Jsonx.Str e.kind); ("data", e.data) ]

(* Newest [span_cap] trace events by end time, re-sorted oldest first:
   the crashing generation's spans, whatever lane recorded them. *)
let recent_spans () =
  if not (Trace.enabled ()) then []
  else
    let by_end a b =
      compare (a.Trace.ts +. a.Trace.dur) (b.Trace.ts +. b.Trace.dur)
    in
    let evs = List.stable_sort by_end (Trace.events ()) in
    let n = List.length evs in
    if n <= span_cap then evs
    else List.filteri (fun i _ -> i >= n - span_cap) evs

let dump ?(reason = "abort") ~path () =
  let buf = Buffer.create 4096 in
  let meta =
    Jsonx.Obj
      [
        ("reason", Jsonx.Str reason);
        ("ts", Jsonx.Num (Unix.gettimeofday ()));
        ("pid", Jsonx.Num (float_of_int (Unix.getpid ())));
        ("recorded", Jsonx.Num (float_of_int (recorded ())));
      ]
  in
  Buffer.add_string buf ("oqmc-flightrec v1 " ^ Jsonx.to_string meta ^ "\n");
  let lines = ref 0 in
  List.iter
    (fun e ->
      incr lines;
      Buffer.add_string buf ("E " ^ Jsonx.to_string (json_of_entry e) ^ "\n"))
    (entries ());
  List.iter
    (fun s ->
      incr lines;
      Buffer.add_string buf ("S " ^ Jsonx.to_string (json_of_span s) ^ "\n"))
    (recent_spans ());
  let body = Buffer.contents buf in
  let trailer = Printf.sprintf "C %08x %d\n" (crc32 body) !lines in
  (* Plain write, no tempfile dance: an abort path must not depend on
     rename working, and replay tolerates a torn tail by design. *)
  let oc = open_out path in
  output_string oc body;
  output_string oc trailer;
  close_out oc

(* ---------- replay ---------- *)

type postmortem = {
  meta : Jsonx.t;
  records : entry list;
  spans : Jsonx.t list;
  complete : bool; (* the CRC trailer was present and matched *)
}

exception Not_flightrec of string

let parse_entry j =
  let get f k = Option.bind (Jsonx.member k j) f in
  match (get Jsonx.to_float "ts", get Jsonx.to_str "kind", Jsonx.member "data" j) with
  | Some ts, Some kind, Some data -> Some { ts; kind; data }
  | _ -> None

let replay ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let raw = really_input_string ic len in
  close_in ic;
  let lines = String.split_on_char '\n' raw in
  let header, rest =
    match lines with
    | h :: rest when String.length h >= 18 && String.sub h 0 18 = "oqmc-flightrec v1 "
      -> (h, rest)
    | _ -> raise (Not_flightrec path)
  in
  let meta =
    try Jsonx.parse_string_exn (String.sub header 18 (String.length header - 18))
    with Jsonx.Parse_error _ -> raise (Not_flightrec path)
  in
  (* Walk the lines, collecting every record that parses whole; a line
     that fails (torn tail, bit rot) ends collection. *)
  let records = ref [] and spans = ref [] and complete = ref false in
  let body_len = String.length header + 1 in
  let rec go consumed = function
    | [] | [ "" ] -> ()
    | line :: rest ->
        let tagged p = String.length line >= 2 && String.sub line 0 2 = p in
        let payload () =
          try
            Some
              (Jsonx.parse_string_exn
                 (String.sub line 2 (String.length line - 2)))
          with _ -> None
        in
        if tagged "E " then (
          match Option.bind (payload ()) parse_entry with
          | Some e ->
              records := e :: !records;
              go (consumed + String.length line + 1) rest
          | None -> ())
        else if tagged "S " then (
          match payload () with
          | Some j ->
              spans := j :: !spans;
              go (consumed + String.length line + 1) rest
          | None -> ())
        else if tagged "C " then
          match String.split_on_char ' ' line with
          | [ "C"; crc_hex; _count ] -> (
              match int_of_string_opt ("0x" ^ crc_hex) with
              | Some stored ->
                  if stored = crc32 (String.sub raw 0 consumed) then
                    complete := true
              | None -> ())
          | _ -> ()
  in
  go body_len rest;
  {
    meta;
    records = List.rev !records;
    spans = List.rev !spans;
    complete = !complete;
  }

let describe pm =
  let buf = Buffer.create 1024 in
  let m k f = Option.bind (Jsonx.member k pm.meta) f in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder postmortem: reason=%s pid=%.0f %s\n"
       (Option.value ~default:"?" (m "reason" Jsonx.to_str))
       (Option.value ~default:Float.nan (m "pid" Jsonx.to_float))
       (if pm.complete then "(complete)" else "(TORN TAIL: trailer missing or mismatched)"));
  Buffer.add_string buf
    (Printf.sprintf "%d record(s), %d span(s)\n" (List.length pm.records)
       (List.length pm.spans));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  [%.3f] %-10s %s\n" e.ts e.kind
           (Jsonx.to_string e.data)))
    pm.records;
  List.iter
    (fun s ->
      let g k f = Option.bind (Jsonx.member k s) f in
      let args =
        match Jsonx.member "args" s with
        | Some (Jsonx.Obj kvs) ->
            String.concat " "
              (List.map
                 (fun (k, v) ->
                   Printf.sprintf "%s=%s" k
                     (Option.value ~default:"?" (Jsonx.to_str v)))
                 kvs)
        | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  span pid=%.0f tid=%.0f %s +%.6fs %.3fms %s\n"
           (Option.value ~default:Float.nan (g "pid" Jsonx.to_float))
           (Option.value ~default:Float.nan (g "tid" Jsonx.to_float))
           (Option.value ~default:"?" (g "name" Jsonx.to_str))
           (Option.value ~default:Float.nan (g "ts" Jsonx.to_float))
           (1e3 *. Option.value ~default:0. (g "dur" Jsonx.to_float))
           args))
    pm.spans;
  Buffer.contents buf
