(** Structured tracing: lock-free per-domain span ring buffers with a
    Chrome [trace_event] JSON exporter ([chrome://tracing] / Perfetto).

    The disabled path is one atomic load and a branch — no allocation —
    so instrumentation can live permanently in hot code.  Memory is
    bounded: a full ring overwrites its oldest events.  Spans are
    attributed as pid = rank, tid = recording domain, plus free-form
    string args. *)

type event = {
  name : string;
  ph : char;  (** ['X'] complete span, ['i'] instant *)
  ts : float;  (** seconds since {!enable} *)
  dur : float;  (** span duration in seconds; 0 for instants *)
  pid : int;  (** rank *)
  tid : int;  (** recording domain *)
  args : (string * string) list;
}

val enabled : unit -> bool
(** The static check every recording call performs first. *)

val enable : ?capacity:int -> unit -> unit
(** Start tracing: reset the epoch, clear all rings, set the per-domain
    ring capacity (default 65536 events). *)

val disable : unit -> unit

val set_rank : int -> unit
(** Attribution for every subsequent event from this process. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; exception-safe.  When tracing is
    disabled this is just the thunk call. *)

val span_begin : ?args:(string * string) list -> string -> unit
val span_end : unit -> unit
(** Non-lexical span pair; ends are matched to begins per domain,
    stack-wise, so spans in one lane always nest. *)

val instant : ?args:(string * string) list -> string -> unit

val clear : unit -> unit
(** Drop all recorded and ingested events (rings stay allocated). *)

val events : unit -> event list
(** All recorded + ingested events, sorted by (pid, tid, time). *)

val dropped : unit -> int
(** Events lost to ring overwrite since the last {!enable}/{!clear}. *)

val serialize : unit -> string
(** This process's events as a compact binary blob for cross-process
    shipping (the payload a rank piggybacks on its final frame). *)

val ingest : pid:int -> string -> unit
(** Merge a blob from another process under the given pid.
    @raise Malformed on a corrupt blob. *)

exception Malformed

val export : path:string -> unit
(** Write the merged Chrome trace_event JSON file. *)

val export_string : unit -> string
