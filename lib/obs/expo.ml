(* Exposition: render a metrics snapshot for scraping — Prometheus-style
   text (one # TYPE line per metric, cumulative le-labelled histogram
   buckets) and a Jsonx document (histograms augmented with interpolated
   p50/p90/p99 from the log2 buckets).  Both renderings are pure
   functions of the snapshot, so a server can answer a status query from
   whatever snapshot it already holds without re-locking the registry. *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; the registry uses dotted
   names, so dots (and anything else) become underscores. *)
let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c | _ -> '_')
    name

(* Deterministic number rendering (golden-tested): integral values print
   exactly, everything else shortest-roundtrip. *)
let fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let add_histogram buf name (h : Metrics.hview) =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
  let cum = ref 0 in
  List.iter
    (fun (bound, n) ->
      cum := !cum + n;
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (fmt bound) !cum))
    h.Metrics.buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name h.Metrics.count);
  Buffer.add_string buf
    (Printf.sprintf "%s_sum %s\n" name (fmt h.Metrics.sum));
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" name h.Metrics.count)

let text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let name = sanitize name in
      match v with
      | Metrics.Counter c ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" name c)
      | Metrics.Gauge g ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" name (fmt g))
      | Metrics.Histogram h -> add_histogram buf name h)
    snap;
  Buffer.contents buf

let json_of_hview (h : Metrics.hview) =
  let q p =
    match Metrics.quantile h p with Some (est, _) -> est | None -> 0.
  in
  Jsonx.Obj
    [
      ("count", Jsonx.Num (float_of_int h.Metrics.count));
      ("sum", Jsonx.Num h.Metrics.sum);
      ("min", Jsonx.Num h.Metrics.min);
      ("max", Jsonx.Num h.Metrics.max);
      ("p50", Jsonx.Num (q 0.5));
      ("p90", Jsonx.Num (q 0.9));
      ("p99", Jsonx.Num (q 0.99));
      ( "buckets",
        Jsonx.Arr
          (List.map
             (fun (b, n) ->
               Jsonx.Arr [ Jsonx.Num b; Jsonx.Num (float_of_int n) ])
             h.Metrics.buckets) );
    ]

let json snap =
  Jsonx.Obj
    (List.map
       (fun (name, v) ->
         match v with
         | Metrics.Counter c -> (name, Jsonx.Num (float_of_int c))
         | Metrics.Gauge g -> (name, Jsonx.Num g)
         | Metrics.Histogram h -> (name, json_of_hview h))
       snap)
