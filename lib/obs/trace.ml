(* Structured tracing: per-domain span ring buffers with a Chrome
   trace_event exporter.

   Every domain that records events owns a private ring buffer reached
   through domain-local storage, so the hot path — push one event — is
   lock-free: no sharing, no CAS, just an array store and two field
   writes.  The global mutex is touched only when a domain's ring is
   created and when the rings are drained for export.  Memory is bounded
   by construction: a full ring overwrites its oldest events (and counts
   them in [dropped]) instead of growing.

   The DISABLED path is a single atomic load and a branch: no
   allocation, no timestamp, no DLS access.  Tracing therefore never
   perturbs physics — spans observe wall-clock time only, never the RNG
   stream or any arithmetic — which is what lets the drivers assert
   bit-identical trajectories with tracing on and off.

   Spans are recorded as Chrome "complete" events (ph = "X"): a begin
   pushes onto a per-domain stack, the matching end pops it and writes
   one event carrying (start, duration).  Nesting within a (pid, tid)
   lane is correct by construction.  [instant] records point events
   (ph = "i").  Attribution: pid = rank (set once per process by
   [set_rank]), tid = the recording domain, free-form args carry
   crowd/walker/generation labels.

   Cross-rank: a worker rank serializes its rings to a compact binary
   blob ([serialize]) shipped over the wire; the supervisor [ingest]s
   each blob under the rank's pid, and [export] writes one merged
   Chrome-loadable JSON file covering every rank and domain. *)

type event = {
  name : string;
  ph : char; (* 'X' = complete span, 'i' = instant *)
  ts : float; (* seconds since [enable] *)
  dur : float; (* seconds; 0 for instants *)
  pid : int; (* rank *)
  tid : int; (* recording domain *)
  args : (string * string) list;
}

let default_capacity = 65536

(* ---------- global state ---------- *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let rank = Atomic.make 0
let set_rank r = Atomic.set rank r

(* Trace epoch: wall-clock origin of every timestamp.  Wall clock (not a
   per-process monotonic counter) so events from forked ranks land on
   the same axis as the supervisor's. *)
let t0 = Atomic.make 0.
let capacity = Atomic.make default_capacity
let now = Unix.gettimeofday

type ring = {
  tid : int;
  cap : int;
  buf : event array;
  mutable len : int; (* total events ever written; ring index = len mod cap *)
  mutable stack : (string * float * (string * string) list) list;
  mutable dropped : int; (* events overwritten by ring wrap-around *)
}

let dummy =
  { name = ""; ph = 'i'; ts = 0.; dur = 0.; pid = 0; tid = 0; args = [] }

let registry : ring list ref = ref []
let registry_mutex = Mutex.create ()

(* Events ingested from other processes, tagged with their pid. *)
let foreign : event list ref = ref []

let dls_ring : ring option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let ring () =
  let slot = Domain.DLS.get dls_ring in
  match !slot with
  | Some r -> r
  | None ->
      let cap = max 16 (Atomic.get capacity) in
      let r =
        {
          tid = (Domain.self () :> int);
          cap;
          buf = Array.make cap dummy;
          len = 0;
          stack = [];
          dropped = 0;
        }
      in
      Mutex.lock registry_mutex;
      registry := r :: !registry;
      Mutex.unlock registry_mutex;
      slot := Some r;
      r

let push r ev =
  if r.len >= r.cap then r.dropped <- r.dropped + 1;
  r.buf.(r.len mod r.cap) <- ev;
  r.len <- r.len + 1

(* ---------- recording ---------- *)

let span_begin ?(args = []) name =
  if enabled () then begin
    let r = ring () in
    r.stack <- (name, now (), args) :: r.stack
  end

let span_end () =
  if enabled () then begin
    let r = ring () in
    match r.stack with
    | [] -> () (* unmatched end: ignore rather than corrupt the ring *)
    | (name, start, args) :: rest ->
        r.stack <- rest;
        push r
          {
            name;
            ph = 'X';
            ts = start -. Atomic.get t0;
            dur = now () -. start;
            pid = Atomic.get rank;
            tid = r.tid;
            args;
          }
  end

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    span_begin ?args name;
    match f () with
    | v ->
        span_end ();
        v
    | exception e ->
        span_end ();
        raise e
  end

let instant ?(args = []) name =
  if enabled () then begin
    let r = ring () in
    push r
      {
        name;
        ph = 'i';
        ts = now () -. Atomic.get t0;
        dur = 0.;
        pid = Atomic.get rank;
        tid = r.tid;
        args;
      }
  end

(* ---------- lifecycle ---------- *)

let clear () =
  Mutex.lock registry_mutex;
  List.iter
    (fun r ->
      r.len <- 0;
      r.stack <- [];
      r.dropped <- 0)
    !registry;
  foreign := [];
  Mutex.unlock registry_mutex

let enable ?capacity:(cap = default_capacity) () =
  Atomic.set capacity cap;
  Atomic.set t0 (now ());
  clear ();
  Atomic.set enabled_flag true

let disable () = Atomic.set enabled_flag false

let dropped () =
  Mutex.lock registry_mutex;
  let d = List.fold_left (fun a r -> a + r.dropped) 0 !registry in
  Mutex.unlock registry_mutex;
  d

(* ---------- draining ---------- *)

let ring_events r =
  let n = min r.len r.cap in
  let start = r.len - n in
  List.init n (fun i -> r.buf.((start + i) mod r.cap))

let local_events () =
  Mutex.lock registry_mutex;
  let evs = List.concat_map ring_events !registry in
  Mutex.unlock registry_mutex;
  evs

let by_lane a b =
  compare (a.pid, a.tid, a.ts, a.ts +. a.dur) (b.pid, b.tid, b.ts, b.ts +. b.dur)

let events () = List.sort by_lane (local_events () @ !foreign)

(* ---------- cross-process transport ---------- *)

(* Compact binary codec for shipping a rank's events to the supervisor.
   Layout: u32 count, then per event
     u8 ph | u32 tid | f64 ts | f64 dur | str name | u32 nargs | (str str)*
   where str = u32 length + bytes.  Integers big-endian, floats as IEEE
   bits — the same conventions as the wire protocol that carries it. *)

let put_i32 buf n = Buffer.add_int32_be buf (Int32.of_int n)
let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_str buf s =
  put_i32 buf (String.length s);
  Buffer.add_string buf s

let serialize () =
  let evs = List.sort by_lane (local_events ()) in
  let buf = Buffer.create 4096 in
  put_i32 buf (List.length evs);
  List.iter
    (fun e ->
      Buffer.add_uint8 buf (Char.code e.ph);
      put_i32 buf e.tid;
      put_f64 buf e.ts;
      put_f64 buf e.dur;
      put_str buf e.name;
      put_i32 buf (List.length e.args);
      List.iter
        (fun (k, v) ->
          put_str buf k;
          put_str buf v)
        e.args)
    evs;
  Buffer.contents buf

exception Malformed

let get_i32 s pos =
  if !pos + 4 > String.length s then raise Malformed;
  let v = Int32.to_int (String.get_int32_be s !pos) in
  pos := !pos + 4;
  v

let get_f64 s pos =
  if !pos + 8 > String.length s then raise Malformed;
  let v = Int64.float_of_bits (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_str s pos =
  let len = get_i32 s pos in
  if len < 0 || !pos + len > String.length s then raise Malformed;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

let deserialize ~pid blob =
  let pos = ref 0 in
  let count = get_i32 blob pos in
  if count < 0 then raise Malformed;
  let evs =
    List.init count (fun _ ->
        if !pos >= String.length blob then raise Malformed;
        let ph = Char.chr (Char.code blob.[!pos]) in
        incr pos;
        let tid = get_i32 blob pos in
        let ts = get_f64 blob pos in
        let dur = get_f64 blob pos in
        let name = get_str blob pos in
        let nargs = get_i32 blob pos in
        if nargs < 0 then raise Malformed;
        let args =
          List.init nargs (fun _ ->
              let k = get_str blob pos in
              let v = get_str blob pos in
              (k, v))
        in
        { name; ph; ts; dur; pid; tid; args })
  in
  if !pos <> String.length blob then raise Malformed;
  evs

let ingest ~pid blob =
  let evs = deserialize ~pid blob in
  Mutex.lock registry_mutex;
  foreign := !foreign @ evs;
  Mutex.unlock registry_mutex

(* ---------- Chrome trace_event export ---------- *)

let json_of_event e =
  let base =
    [
      ("name", Jsonx.Str e.name);
      ("cat", Jsonx.Str "oqmc");
      ("ph", Jsonx.Str (String.make 1 e.ph));
      ("ts", Jsonx.Num (e.ts *. 1e6));
      ("pid", Jsonx.Num (float_of_int e.pid));
      ("tid", Jsonx.Num (float_of_int e.tid));
    ]
  in
  let timing =
    if e.ph = 'X' then [ ("dur", Jsonx.Num (e.dur *. 1e6)) ]
    else [ ("s", Jsonx.Str "t") ] (* thread-scoped instant *)
  in
  let args =
    match e.args with
    | [] -> []
    | kvs ->
        [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) kvs)) ]
  in
  Jsonx.Obj (base @ timing @ args)

let export_json () =
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (List.map json_of_event (events ())));
      ("displayTimeUnit", Jsonx.Str "ms");
      ("otherData", Jsonx.Obj [ ("dropped", Jsonx.Num (float_of_int (dropped ()))) ]);
    ]

let export_string () = Jsonx.to_string (export_json ())

let export ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Jsonx.to_buffer buf (export_json ());
      Buffer.output_buffer oc buf)
