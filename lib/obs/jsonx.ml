(* Minimal JSON tree, encoder and parser — just enough for the trace
   exporter, the telemetry sink and their validation tests.  No
   dependencies; strict on output (always valid JSON: non-finite floats
   encode as null, strings are escaped) and strict enough on input to
   reject the truncation/corruption failure modes the tests exercise. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- encoding ---------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else
    (* Shortest roundtrip representation keeps telemetry lines compact
       without losing precision. *)
    let s = Printf.sprintf "%.17g" v in
    let shorter = Printf.sprintf "%.12g" v in
    Buffer.add_string buf (if float_of_string shorter = v then shorter else s)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s -> add_escaped buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type state = { s : string; mutable pos : int }

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let next st =
  match peek st with
  | Some c ->
      st.pos <- st.pos + 1;
      c
  | None -> fail "unexpected end of input at %d" st.pos

let skip_ws st =
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') -> st.pos <- st.pos + 1
    | _ -> continue_ := false
  done

let expect st c =
  let got = next st in
  if got <> c then fail "expected %c, got %c at %d" c got (st.pos - 1)

let parse_lit st lit v =
  String.iter (fun c -> expect st c) lit;
  v

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | c -> fail "bad hex digit %c" c

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let continue_ = ref true in
  while !continue_ do
    match next st with
    | '"' -> continue_ := false
    | '\\' -> (
        match next st with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            let cp =
              (hex_digit (next st) lsl 12)
              lor (hex_digit (next st) lsl 8)
              lor (hex_digit (next st) lsl 4)
              lor hex_digit (next st)
            in
            (* UTF-8 encode the code point (surrogate pairs are passed
               through as two separate 3-byte sequences — fine for the
               control characters we actually emit). *)
            if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
        | c -> fail "bad escape \\%c" c)
    | c -> Buffer.add_char buf c
  done;
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some v -> Num v
  | None -> fail "bad number %S at %d" text start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let kvs = ref [] in
        let continue_ = ref true in
        while !continue_ do
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          kvs := (k, v) :: !kvs;
          skip_ws st;
          match next st with
          | ',' -> ()
          | '}' -> continue_ := false
          | c -> fail "expected , or } in object, got %c" c
        done;
        Obj (List.rev !kvs)
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let xs = ref [] in
        let continue_ = ref true in
        while !continue_ do
          let v = parse_value st in
          xs := v :: !xs;
          skip_ws st;
          match next st with
          | ',' -> ()
          | ']' -> continue_ := false
          | c -> fail "expected , or ] in array, got %c" c
        done;
        Arr (List.rev !xs)
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> parse_lit st "true" (Bool true)
  | Some 'f' -> parse_lit st "false" (Bool false)
  | Some 'n' -> parse_lit st "null" Null
  | Some _ -> parse_number st

let parse_string_exn s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then
    fail "trailing garbage at %d" st.pos;
  v

(* ---------- accessors (for tests and the smoke harness) ---------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
