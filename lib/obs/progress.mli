(** Self-overwriting live progress line (stderr), throttled to at most
    one repaint per [min_interval] seconds. *)

type t

val create : ?oc:out_channel -> ?min_interval:float -> unit -> t
val update : t -> string -> unit
val finish : t -> unit
(** Terminate the painted line with a newline (idempotent). *)
