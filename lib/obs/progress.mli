(** Self-overwriting live progress line (stderr), throttled to at most
    one repaint per [min_interval] seconds. *)

type t

val create : ?oc:out_channel -> ?min_interval:float -> unit -> t
val update : t -> string -> unit
val finish : t -> unit
(** Terminate the painted line with a newline (idempotent). *)

val interject : t -> string -> unit
(** Emit [msg] on its own line *through* the progress display: the
    painted status is cleared first so the message never lands mid-line,
    and the throttle is reset so the next [update] repaints at once.
    Use this for any warning sharing the progress channel. *)
