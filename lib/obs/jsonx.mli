(** Minimal JSON tree, encoder and parser for the observability layer:
    the trace exporter and telemetry sink build values, the tests and
    the [@obs-smoke] harness parse them back to validate output. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Always valid JSON: non-finite numbers encode as [null], strings are
    escaped. *)

val parse_string_exn : string -> t
(** Strict parse of a complete document.
    @raise Parse_error on malformed or trailing input. *)

val member : string -> t -> t option
(** First binding of a key in an object; [None] on non-objects. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
