(** Exposition: pure renderings of a {!Metrics.snapshot} for scraping.

    [text] is Prometheus-style: a [# TYPE] line per metric, dotted names
    sanitized to [a-zA-Z0-9_:], histograms as cumulative
    [le]-labelled buckets plus [_sum]/[_count].  [json] is the same
    snapshot as a Jsonx document, with histograms augmented by
    interpolated p50/p90/p99 (see {!Metrics.quantile}). *)

val text : Metrics.snapshot -> string
val json : Metrics.snapshot -> Jsonx.t
val json_of_hview : Metrics.hview -> Jsonx.t

val sanitize : string -> string
(** Prometheus name mangling: anything outside [a-zA-Z0-9_:] becomes
    ['_']. *)
