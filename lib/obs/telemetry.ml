(* Periodic JSONL telemetry sink: one JSON object per line, flushed per
   record so a crashed run leaves every completed generation on disk.
   Records are built as [Jsonx.t] objects by the drivers (one per
   generation/block); the schema is documented in
   docs/OBSERVABILITY.md. *)

type sink = { path : string; oc : out_channel; mutable closed : bool; mutable records : int }

(* [append] is for long-lived services that restart onto the same
   telemetry path: a fresh incarnation must not truncate the event
   history its predecessor flushed before crashing. *)
let create ?(append = false) path =
  let oc =
    if append then
      open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
    else open_out path
  in
  { path; oc; closed = false; records = 0 }

let path s = s.path
let records s = s.records

let emit s json =
  if not s.closed then begin
    let buf = Buffer.create 256 in
    Jsonx.to_buffer buf json;
    Buffer.add_char buf '\n';
    Buffer.output_buffer s.oc buf;
    flush s.oc;
    s.records <- s.records + 1
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    close_out_noerr s.oc
  end

let with_sink path f =
  let s = create path in
  Fun.protect ~finally:(fun () -> close s) (fun () -> f s)
