(** Metrics registry: named counters, gauges and log-bucketed
    histograms with a snapshot/diff API and a flat (kind, key, value)
    encoding for cross-rank transport.

    One global registry; names are bound to their first kind (asking for
    an existing name as a different kind raises [Invalid_argument]).
    Counters are atomic; histograms take a private mutex per
    observation — all call sites are per-generation or per-event. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create. *)

val inc : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Non-finite observations are dropped. *)

type hview = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list;
      (** (upper bound = power of two, count), non-empty buckets only *)
}

type value = Counter of int | Gauge of float | Histogram of hview

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : unit -> snapshot

val diff : prev:snapshot -> snapshot -> snapshot
(** Counters and histogram totals since [prev]; gauges current. *)

val find : snapshot -> string -> value option

val hview_of_values : float list -> hview
(** Bucket a free-standing value list into a view (no registry entry),
    for running {!quantile} over bounded sample windows.  Non-finite
    values are dropped. *)

val quantile : hview -> float -> (float * float) option
(** [quantile hv q] estimates the [q]-quantile (clamped to [0, 1]) of
    the observations behind a histogram view from its log2 buckets,
    interpolating linearly inside the winning bucket.  Returns
    [(estimate, err)] where the exact order statistic is within
    [estimate +/- err] (the bucket width clipped to the observed
    min/max), or [None] on an empty view.  Estimates are monotone in
    [q] and always within [hv.min, hv.max]. *)

val reset : unit -> unit
(** Zero every registered metric (tests). *)

type kv = { kind : char; key : string; value : float }

val wire_kvs : snapshot -> kv list
(** Flatten for the wire: counters as ['c'], gauges as ['g'], histograms
    as their [.count] / [.sum_1e6] integer counters.  Zero counters are
    elided. *)

val absorb_kvs : kv list -> unit
(** Fold wire triples into this process's registry: ['c'] adds, ['g']
    sets, unknown kinds are ignored. *)

val json_of_snapshot : snapshot -> Jsonx.t
