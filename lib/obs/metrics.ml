(* Metrics registry: named counters, gauges and log-bucketed histograms
   with a snapshot/diff API.

   One global registry (get-or-create by name; a name is permanently
   bound to its first kind).  Counters are atomic and safe to bump from
   any domain; gauges are last-writer-wins; histograms take a private
   mutex per observation — every call site is per-generation or per-
   event (checkpoint latency, heartbeat RTT, branch multiplicity), never
   per-electron, so contention is nil.

   Histogram buckets are powers of two: a value lands in the bucket
   whose upper bound is the smallest 2^k >= value, clamped to
   [2^-20, 2^20] with an extra bucket for v <= 0.  Log bucketing keeps
   the footprint fixed (42 ints) while resolving latencies from
   microseconds to seconds.

   Cross-rank transport: [wire_kvs] flattens a snapshot (usually a
   [diff] since the last send) into (kind, key, value) triples a wire
   frame can carry; [absorb_kvs] folds them back into this process's
   registry — counters add, gauges set, histograms travel as their
   [.count] and [.sum_1e6] integer counters (the per-bucket shape stays
   rank-local; the merged stream keeps totals and rates exact). *)

type counter = { cname : string; v : int Atomic.t }
type gauge = { gname : string; g : float Atomic.t }

let n_buckets = 42 (* bucket 0: v <= 0; buckets 1..41: 2^-20 .. 2^20 *)

let bucket_index v =
  if v <= 0. then 0
  else
    let e = snd (Float.frexp v) in
    (* v in [2^(e-1), 2^e) => upper bound 2^e *)
    1 + (max (-20) (min 20 e) + 20)

let bucket_bound i = if i = 0 then 0. else Float.ldexp 1. (i - 21)

type histogram = {
  hname : string;
  lock : Mutex.t;
  counts : int array;
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let counter name =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (C c) -> Ok c
    | Some _ -> Error name
    | None ->
        let c = { cname = name; v = Atomic.make 0 } in
        Hashtbl.add registry name (C c);
        Ok c
  in
  Mutex.unlock registry_mutex;
  match r with
  | Ok c -> c
  | Error n -> invalid_arg (Printf.sprintf "Metrics: %S is not a counter" n)

let gauge name =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (G g) -> Ok g
    | Some _ -> Error name
    | None ->
        let g = { gname = name; g = Atomic.make 0. } in
        Hashtbl.add registry name (G g);
        Ok g
  in
  Mutex.unlock registry_mutex;
  match r with
  | Ok g -> g
  | Error n -> invalid_arg (Printf.sprintf "Metrics: %S is not a gauge" n)

let histogram name =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (H h) -> Ok h
    | Some _ -> Error name
    | None ->
        let h =
          {
            hname = name;
            lock = Mutex.create ();
            counts = Array.make n_buckets 0;
            hcount = 0;
            hsum = 0.;
            hmin = Float.infinity;
            hmax = Float.neg_infinity;
          }
        in
        Hashtbl.add registry name (H h);
        Ok h
  in
  Mutex.unlock registry_mutex;
  match r with
  | Ok h -> h
  | Error n -> invalid_arg (Printf.sprintf "Metrics: %S is not a histogram" n)

let inc c = Atomic.incr c.v
let add c n = ignore (Atomic.fetch_and_add c.v n)
let counter_value c = Atomic.get c.v

let set g v = Atomic.set g.g v
let gauge_value g = Atomic.get g.g

let observe h v =
  if Float.is_finite v then begin
    Mutex.lock h.lock;
    h.counts.(bucket_index v) <- h.counts.(bucket_index v) + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    Mutex.unlock h.lock
  end

(* ---------- snapshots ---------- *)

type hview = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * int) list; (* (upper bound, count), non-empty only *)
}

type value = Counter of int | Gauge of float | Histogram of hview

type snapshot = (string * value) list

let hview h =
  Mutex.lock h.lock;
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      buckets := (bucket_bound i, h.counts.(i)) :: !buckets
  done;
  let v =
    {
      count = h.hcount;
      sum = h.hsum;
      min = (if h.hcount = 0 then 0. else h.hmin);
      max = (if h.hcount = 0 then 0. else h.hmax);
      buckets = !buckets;
    }
  in
  Mutex.unlock h.lock;
  v

(* A free-standing view over a value list (no registry entry): lets any
   bounded sample window reuse the bucketed [quantile] machinery instead
   of ad-hoc sort-and-index percentile math. *)
let hview_of_values vs =
  let counts = Array.make n_buckets 0 in
  let count = ref 0 in
  let sum = ref 0. in
  let mn = ref Float.infinity in
  let mx = ref Float.neg_infinity in
  List.iter
    (fun v ->
      if Float.is_finite v then begin
        counts.(bucket_index v) <- counts.(bucket_index v) + 1;
        incr count;
        sum := !sum +. v;
        if v < !mn then mn := v;
        if v > !mx then mx := v
      end)
    vs;
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if counts.(i) > 0 then buckets := (bucket_bound i, counts.(i)) :: !buckets
  done;
  {
    count = !count;
    sum = !sum;
    min = (if !count = 0 then 0. else !mn);
    max = (if !count = 0 then 0. else !mx);
    buckets = !buckets;
  }

let snapshot () =
  Mutex.lock registry_mutex;
  let entries =
    Hashtbl.fold
      (fun name m acc ->
        let v =
          match m with
          | C c -> Counter (counter_value c)
          | G g -> Gauge (gauge_value g)
          | H h -> Histogram (hview h)
        in
        (name, v) :: acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let find snap name = List.assoc_opt name snap

(* Quantile estimate from the log2 buckets.  The winning bucket is found
   by cumulative count at rank q*count; the estimate interpolates
   linearly inside the bucket, whose true extent is [bound/2, bound)
   (bucket 0 holds v <= 0) intersected with the observed [min, max].
   The width of that intersection is returned as the error bound: both
   the estimate and the exact order statistic lie inside the bucket, so
   the exact value is provably within estimate +/- err. *)
let quantile hv q =
  if hv.count = 0 then None
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int hv.count in
    let rec pick cum = function
      | [] -> None (* unreachable: count > 0 implies a non-empty bucket *)
      | (bound, n) :: rest ->
          let cum' = cum +. float_of_int n in
          if cum' >= target || rest = [] then begin
            let lo = if bound <= 0. then Float.neg_infinity else bound /. 2. in
            let lo = Float.max lo hv.min in
            let hi = Float.min bound hv.max in
            let hi = Float.max hi lo in
            let frac =
              if n = 0 then 0.
              else Float.max 0. (Float.min 1. ((target -. cum) /. float_of_int n))
            in
            Some (lo +. (frac *. (hi -. lo)), hi -. lo)
          end
          else pick cum' rest
    in
    pick 0. hv.buckets
  end

(* Counters and histogram totals subtract (a missing previous entry
   counts as zero); gauges report their current value. *)
let diff ~prev curr =
  List.map
    (fun (name, v) ->
      match (v, find prev name) with
      | Counter c, Some (Counter p) -> (name, Counter (c - p))
      | Histogram h, Some (Histogram p) ->
          let pb b = match List.assoc_opt b p.buckets with Some n -> n | None -> 0 in
          ( name,
            Histogram
              {
                count = h.count - p.count;
                sum = h.sum -. p.sum;
                min = h.min;
                max = h.max;
                buckets =
                  List.filter_map
                    (fun (b, n) ->
                      let d = n - pb b in
                      if d > 0 then Some (b, d) else None)
                    h.buckets;
              } )
      | v, _ -> (name, v))
    curr

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.v 0
      | G g -> Atomic.set g.g 0.
      | H h ->
          Mutex.lock h.lock;
          Array.fill h.counts 0 n_buckets 0;
          h.hcount <- 0;
          h.hsum <- 0.;
          h.hmin <- Float.infinity;
          h.hmax <- Float.neg_infinity;
          Mutex.unlock h.lock)
    registry;
  Mutex.unlock registry_mutex

(* ---------- cross-rank transport ---------- *)

type kv = { kind : char; key : string; value : float }

let wire_kvs snap =
  List.concat_map
    (fun (name, v) ->
      match v with
      | Counter c ->
          if c = 0 then [] else [ { kind = 'c'; key = name; value = float_of_int c } ]
      | Gauge g -> [ { kind = 'g'; key = name; value = g } ]
      | Histogram h ->
          if h.count = 0 then []
          else
            [
              { kind = 'c'; key = name ^ ".count"; value = float_of_int h.count };
              {
                kind = 'c';
                key = name ^ ".sum_1e6";
                value = Float.round (h.sum *. 1e6);
              };
            ])
    snap

let absorb_kvs kvs =
  List.iter
    (fun { kind; key; value } ->
      match kind with
      | 'c' -> add (counter key) (int_of_float value)
      | 'g' -> set (gauge key) value
      | _ -> () (* unknown kinds from newer peers are skipped, not fatal *))
    kvs

(* ---------- telemetry rendering ---------- *)

let json_of_value = function
  | Counter c -> Jsonx.Num (float_of_int c)
  | Gauge g -> Jsonx.Num g
  | Histogram h ->
      Jsonx.Obj
        [
          ("count", Jsonx.Num (float_of_int h.count));
          ("sum", Jsonx.Num h.sum);
          ("min", Jsonx.Num h.min);
          ("max", Jsonx.Num h.max);
          ( "buckets",
            Jsonx.Arr
              (List.map
                 (fun (b, n) ->
                   Jsonx.Arr [ Jsonx.Num b; Jsonx.Num (float_of_int n) ])
                 h.buckets) );
        ]

let json_of_snapshot snap =
  Jsonx.Obj (List.map (fun (name, v) -> (name, json_of_value v)) snap)
