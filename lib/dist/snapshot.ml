open Oqmc_core

(* Mid-run job snapshots: the full dynamical state of an in-process
   (run_local) supervised run, captured at a generation boundary so the
   run can be SUSPENDED and later RESUMED bit-identically — the serve
   layer's crash/deadline recovery primitive.

   A checkpoint shard (Checkpoint.save_shard) holds walkers + e_trial
   only; resuming from one replays the walkers but reseeds the RNG
   streams and forgets the measured series, so it is statistically sound
   but not bit-identical.  A job snapshot adds everything else the
   trajectory depends on: per-rank RNG stream states (master + pool),
   lifetime move totals, the measured energy/population series, sample
   and comm counters, and the current trial energy.  Walkers still go
   through the battle-tested shard files; the extra state lands in a
   CRC-trailed [path.job.gen-N] metadata file written atomically next to
   them, rotated like any other checkpoint generation and validated on
   load with fallback past corrupt generations. *)

type rank_state = {
  r_rank : int;
  r_master : string; (* Xoshiro.state_string of the branching stream *)
  r_pool : string; (* ... and of the per-walker split pool *)
  r_acc : int; (* lifetime accepted moves at snapshot time *)
  r_prop : int;
}

type state = {
  gen : int; (* completed generations (absolute) *)
  seed : int; (* identity echo: a snapshot from different *)
  ranks : int; (* run parameters is ignored, not misapplied *)
  target : int;
  e_trial : float;
  energy : float array; (* measured energy series so far *)
  pops : int array; (* measured population series, chronological *)
  samples : int;
  comm_messages : int;
  comm_bytes : int;
  rank_states : rank_state list; (* ascending rank order *)
}

let magic = "oqmc-job-snapshot v1"
let job_path path = path ^ ".job"

let corrupt fmt =
  Printf.ksprintf (fun s -> raise (Checkpoint.Corrupt s)) fmt

let render st =
  let b = Buffer.create 512 in
  Printf.bprintf b "%s\n" magic;
  Printf.bprintf b "gen %d\n" st.gen;
  Printf.bprintf b "seed %d\n" st.seed;
  Printf.bprintf b "ranks %d\n" st.ranks;
  Printf.bprintf b "target %d\n" st.target;
  Printf.bprintf b "e_trial %h\n" st.e_trial;
  Printf.bprintf b "samples %d\n" st.samples;
  Printf.bprintf b "comm %d %d\n" st.comm_messages st.comm_bytes;
  Printf.bprintf b "energy %d" (Array.length st.energy);
  Array.iter (fun e -> Printf.bprintf b " %h" e) st.energy;
  Buffer.add_char b '\n';
  Printf.bprintf b "pops %d" (Array.length st.pops);
  Array.iter (fun n -> Printf.bprintf b " %d" n) st.pops;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Printf.bprintf b "rank %d %d %d %s %s\n" r.r_rank r.r_acc r.r_prop
        r.r_master r.r_pool)
    st.rank_states;
  Buffer.contents b

(* "key N v1 .. vN" with [conv] per token. *)
let counted_line ~key ~conv line =
  match String.split_on_char ' ' (String.trim line) with
  | k :: n :: rest when k = key -> (
      match int_of_string_opt n with
      | Some n when n >= 0 && List.length rest = n ->
          Array.of_list (List.map conv rest)
      | _ -> corrupt "job snapshot: bad %s line" key)
  | _ -> corrupt "job snapshot: expected %s line" key

let int_field ~key line =
  match String.split_on_char ' ' (String.trim line) with
  | [ k; v ] when k = key -> (
      match int_of_string_opt v with
      | Some v -> v
      | None -> corrupt "job snapshot: bad %s" key)
  | _ -> corrupt "job snapshot: expected %s" key

let parse_rank_line line =
  match String.split_on_char ' ' (String.trim line) with
  | "rank" :: r :: acc :: prop :: rest when List.length rest = 12 ->
      let master = String.concat " " (List.filteri (fun i _ -> i < 6) rest) in
      let pool = String.concat " " (List.filteri (fun i _ -> i >= 6) rest) in
      {
        r_rank = int_of_string r;
        r_master = master;
        r_pool = pool;
        r_acc = int_of_string acc;
        r_prop = int_of_string prop;
      }
  | _ -> corrupt "job snapshot: bad rank line"

let parse payload =
  match
    String.split_on_char '\n' payload
    |> List.filter (fun l -> String.trim l <> "")
  with
  | m :: gen_l :: seed_l :: ranks_l :: target_l :: et_l :: samples_l
    :: comm_l :: energy_l :: pops_l :: rank_lines ->
      if m <> magic then corrupt "job snapshot: bad magic %S" m;
      let comm_messages, comm_bytes =
        match String.split_on_char ' ' (String.trim comm_l) with
        | [ "comm"; a; b ] -> (int_of_string a, int_of_string b)
        | _ -> corrupt "job snapshot: bad comm line"
      in
      let e_trial =
        match String.split_on_char ' ' (String.trim et_l) with
        | [ "e_trial"; v ] -> float_of_string v
        | _ -> corrupt "job snapshot: bad e_trial line"
      in
      let st =
        {
          gen = int_field ~key:"gen" gen_l;
          seed = int_field ~key:"seed" seed_l;
          ranks = int_field ~key:"ranks" ranks_l;
          target = int_field ~key:"target" target_l;
          e_trial;
          samples = int_field ~key:"samples" samples_l;
          comm_messages;
          comm_bytes;
          energy = counted_line ~key:"energy" ~conv:float_of_string energy_l;
          pops = counted_line ~key:"pops" ~conv:int_of_string pops_l;
          rank_states = List.map parse_rank_line rank_lines;
        }
      in
      if List.length st.rank_states <> st.ranks then
        corrupt "job snapshot: %d rank lines for %d ranks"
          (List.length st.rank_states) st.ranks;
      st
  | _ -> corrupt "job snapshot: truncated"

let trailer_len = String.length "crc 00000000\n"

let split_trailer text =
  let len = String.length text in
  if len < trailer_len then corrupt "job snapshot: too short";
  let payload = String.sub text 0 (len - trailer_len) in
  let stored =
    try Scanf.sscanf (String.sub text (len - trailer_len) trailer_len) "crc %x" Fun.id
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      corrupt "job snapshot: missing crc trailer"
  in
  if stored <> Checkpoint.crc32 payload land 0xFFFFFFFF then
    corrupt "job snapshot: crc mismatch";
  payload

let save ?(keep = 2) ~path st shards =
  if keep < 1 then invalid_arg "Snapshot.save: keep < 1";
  List.iter
    (fun (rank, ws) ->
      Checkpoint.save_shard ~keep ~path ~rank ~gen:st.gen ~e_trial:st.e_trial
        ws)
    shards;
  (* The metadata file lands LAST: a crash between the two leaves the
     previous complete generation as the newest loadable snapshot. *)
  let payload = render st in
  let file = Checkpoint.generation_path ~path:(job_path path) st.gen in
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc payload;
  Printf.fprintf oc "crc %08x\n" (Checkpoint.crc32 payload land 0xFFFFFFFF);
  close_out oc;
  Sys.rename tmp file;
  let gens = Checkpoint.list_generations ~path:(job_path path) in
  let n = List.length gens in
  List.iteri
    (fun i (_, f) ->
      if i < n - keep then try Sys.remove f with Sys_error _ -> ())
    gens

let read_file f = In_channel.with_open_bin f In_channel.input_all

let load_latest ~path =
  let gens = List.rev (Checkpoint.list_generations ~path:(job_path path)) in
  let rec try_gens = function
    | [] -> None
    | (gen, file) :: rest -> (
        match
          let st = parse (split_trailer (read_file file)) in
          if st.gen <> gen then corrupt "job snapshot: gen mismatch";
          let shards =
            List.map
              (fun rs ->
                let _e, ws = Checkpoint.load_shard ~path ~rank:rs.r_rank ~gen in
                (rs.r_rank, ws))
              st.rank_states
          in
          (st, shards)
        with
        | v -> Some v
        | exception
            ( Checkpoint.Corrupt _ | Sys_error _ | Failure _
            | Invalid_argument _ ) ->
            try_gens rest)
  in
  try_gens gens
