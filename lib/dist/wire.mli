open Oqmc_particle

(** Length-prefixed, CRC-trailed binary frames over pipes: the wire
    protocol between the rank supervisor and its worker processes.
    Corrupted or desynchronized streams raise {!Garbage} instead of
    mis-parsing; reads honor a deadline ({!Timeout}) so a stalled peer
    never hangs the supervisor; EOF raises {!Closed}. *)

exception Closed
(** The peer's pipe reached EOF (the process died) or broke. *)

exception Timeout
(** The deadline passed before a full frame arrived. *)

exception Garbage of string
(** Bad length, bad CRC, unknown tag or a malformed frame body. *)

type msg =
  | Hello of { rank : int; pid : int }
      (** rank → supervisor once on startup *)
  | Init of { count : int }
      (** supervisor → fresh rank: build your initial [count]-walker
          sub-ensemble and reply with a gen-0 [Reduce] *)
  | Heartbeat of { gen : int }
      (** rank → supervisor at the start of each generation's work *)
  | Begin_gen of { gen : int; e_trial : float }
      (** supervisor → rank: sweep + reweight your shard *)
  | Reduce of {
      gen : int;
      wsum : float;
      esum : float;
      acc : int;
      prop : int;
      n : int;
      telemetry : (char * string * float) list;
    }
      (** rank → supervisor: shard estimator terms and move counts, plus
          piggybacked per-generation metric/timer deltas in
          [Oqmc_obs.Metrics.wire_kvs] form ('c' counter delta, 'g'
          gauge); empty when telemetry is off *)
  | Branch of { gen : int }  (** supervisor → rank: branch your shard *)
  | Count of { gen : int; n : int }
      (** rank → supervisor: shard size after branching *)
  | Give of { gen : int; count : int }
      (** supervisor → rank: ship your last [count] walkers *)
  | Walkers of { gen : int; walkers : Walker.t list }
      (** either direction: a serialized walker batch *)
  | Checkpoint_cmd of { gen : int; e_trial : float }
      (** supervisor → rank: write your shard checkpoint *)
  | Ack of { gen : int; ok : bool }  (** rank → supervisor *)
  | Finish  (** supervisor → rank: send your final state and exit *)
  | Final of {
      acc : int;
      prop : int;
      walkers : Walker.t list;
      trace : string;
    }
      (** rank → supervisor: final shard and lifetime move totals; when
          tracing is enabled, [trace] carries the rank's serialized span
          ring ([Oqmc_obs.Trace.serialize]) for supervisor-side merge *)
  | Join of { gen : int; e_trial : float }
      (** supervisor → freshly forked rank: you are live as of [gen];
          acked, then populated through the rebalancing relays *)
  | Drain of { gen : int }
      (** supervisor → retiring rank: ship your WHOLE shard (a
          [Walkers] batch) and confirm with [Leave] *)
  | Leave of { gen : int; count : int }
      (** rank → supervisor: drain complete, [count] walkers shipped *)

val send : Unix.file_descr -> msg -> unit
(** Write one frame, fully.  @raise Closed on a broken pipe. *)

val send_corrupt : Unix.file_descr -> unit
(** Emit one deliberately corrupted frame (valid length, wrong CRC) —
    the [Fault.Rank_garbage] injector's payload. *)

val recv : ?timeout:float -> Unix.file_descr -> msg
(** Read one frame.  [timeout] is in seconds and bounds the whole frame.
    @raise Closed on EOF, @raise Timeout past the deadline,
    @raise Garbage on a corrupt frame. *)

val frame_bytes : msg -> Bytes.t
(** The serialized frame (exposed for tests and size accounting). *)

val mask_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent).  The write path calls this
    itself, so a peer hanging up surfaces as {!Closed} rather than
    killing the process — required for socket transports.  Never
    restored: wire IO wants EPIPE semantics for the process lifetime. *)

val send_str : Unix.file_descr -> string -> unit
(** Write one raw string frame: the same length-prefixed, CRC-trailed
    envelope as {!send} but carrying an opaque payload instead of a
    tagged {!msg}.  The serve daemon's request/reply layer (JSON over a
    Unix-domain socket) rides on these.  @raise Closed on a broken
    peer. *)

val recv_str : ?timeout:float -> Unix.file_descr -> string
(** Read one raw string frame.  Same failure contract as {!recv}. *)
