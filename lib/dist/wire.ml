open Oqmc_particle
open Oqmc_core

(* Length-prefixed binary frames over pipes: the wire protocol between
   the rank supervisor and its worker processes.

   Frame layout (all integers big-endian):

     u32 length      of (tag + payload), bounds-checked before reading
     u8  tag         message discriminator
     ... payload
     u32 crc32       IEEE CRC-32 over (tag + payload)

   The CRC means a corrupted or desynchronized stream is *detected*
   ([Garbage]) instead of silently mis-parsed — the supervisor treats a
   garbage frame exactly like a crashed rank.  Reads take an optional
   deadline enforced with [Unix.select] before every chunk, so a stalled
   peer surfaces as [Timeout] rather than a hung supervisor.  EOF (the
   peer died and its pipe closed) raises [Closed]. *)

exception Closed
exception Timeout
exception Garbage of string

let garbage fmt = Printf.ksprintf (fun s -> raise (Garbage s)) fmt

(* A frame bigger than this is a desynchronized stream, not a message:
   even a NiO-64 walker batch is far below 256 MiB. *)
let max_frame = 256 * 1024 * 1024

type msg =
  | Hello of { rank : int; pid : int }
  | Init of { count : int }
  | Heartbeat of { gen : int }
  | Begin_gen of { gen : int; e_trial : float }
  | Reduce of {
      gen : int;
      wsum : float;
      esum : float;
      acc : int;
      prop : int;
      n : int;
      telemetry : (char * string * float) list;
          (* piggybacked metric/timer deltas: (kind, key, value) triples
             in [Oqmc_obs.Metrics.wire_kvs] form — 'c' counter deltas,
             'g' gauge values.  Empty when telemetry is off, costing the
             frame a single zero count field. *)
    }
  | Branch of { gen : int }
  | Count of { gen : int; n : int }
  | Give of { gen : int; count : int }
  | Walkers of { gen : int; walkers : Walker.t list }
  | Checkpoint_cmd of { gen : int; e_trial : float }
  | Ack of { gen : int; ok : bool }
  | Finish
  | Final of {
      acc : int;
      prop : int;
      walkers : Walker.t list;
      trace : string;
          (* the rank's serialized span ring ([Oqmc_obs.Trace.serialize])
             shipped once at shutdown; empty when tracing is off *)
    }
  (* ---- elastic membership (supervisor-driven) ----
     [Join] tells a freshly forked rank which generation it is live from
     (it is acked and followed by walker rebalancing relays); [Drain]
     asks a retiring rank to ship its ENTIRE shard, which the rank
     acknowledges with a [Walkers] batch followed by [Leave] — after
     which the supervisor finishes and reaps it.  A rank slot retired
     this way can be refilled by a later [Join]. *)
  | Join of { gen : int; e_trial : float }
  | Drain of { gen : int }
  | Leave of { gen : int; count : int }

(* ---------- encoding ---------- *)

let put_u8 buf n = Buffer.add_uint8 buf n
let put_i32 buf n = Buffer.add_int32_be buf (Int32.of_int n)
let put_i64 buf n = Buffer.add_int64_be buf (Int64.of_int n)
let put_f64 buf v = Buffer.add_int64_be buf (Int64.bits_of_float v)

let put_walkers buf ws =
  put_i32 buf (List.length ws);
  List.iter (fun w -> Walker.encode buf w) ws

let put_str buf s =
  put_i32 buf (String.length s);
  Buffer.add_string buf s

let put_kvs buf kvs =
  put_i32 buf (List.length kvs);
  List.iter
    (fun (kind, key, value) ->
      put_u8 buf (Char.code kind);
      put_str buf key;
      put_f64 buf value)
    kvs

let tag_of = function
  | Hello _ -> 1
  | Heartbeat _ -> 2
  | Begin_gen _ -> 3
  | Reduce _ -> 4
  | Branch _ -> 5
  | Count _ -> 6
  | Give _ -> 7
  | Walkers _ -> 8
  | Checkpoint_cmd _ -> 9
  | Ack _ -> 10
  | Finish -> 11
  | Final _ -> 12
  | Init _ -> 13
  | Join _ -> 14
  | Drain _ -> 15
  | Leave _ -> 16

let encode_payload buf = function
  | Hello { rank; pid } ->
      put_i32 buf rank;
      put_i32 buf pid
  | Heartbeat { gen } -> put_i32 buf gen
  | Begin_gen { gen; e_trial } ->
      put_i32 buf gen;
      put_f64 buf e_trial
  | Reduce { gen; wsum; esum; acc; prop; n; telemetry } ->
      put_i32 buf gen;
      put_f64 buf wsum;
      put_f64 buf esum;
      put_i64 buf acc;
      put_i64 buf prop;
      put_i32 buf n;
      put_kvs buf telemetry
  | Branch { gen } -> put_i32 buf gen
  | Count { gen; n } ->
      put_i32 buf gen;
      put_i32 buf n
  | Give { gen; count } ->
      put_i32 buf gen;
      put_i32 buf count
  | Walkers { gen; walkers } ->
      put_i32 buf gen;
      put_walkers buf walkers
  | Checkpoint_cmd { gen; e_trial } ->
      put_i32 buf gen;
      put_f64 buf e_trial
  | Ack { gen; ok } ->
      put_i32 buf gen;
      put_u8 buf (if ok then 1 else 0)
  | Finish -> ()
  | Init { count } -> put_i32 buf count
  | Join { gen; e_trial } ->
      put_i32 buf gen;
      put_f64 buf e_trial
  | Drain { gen } -> put_i32 buf gen
  | Leave { gen; count } ->
      put_i32 buf gen;
      put_i32 buf count
  | Final { acc; prop; walkers; trace } ->
      put_i64 buf acc;
      put_i64 buf prop;
      put_walkers buf walkers;
      put_str buf trace

(* ---------- decoding ---------- *)

let get_u8 s pos =
  let v = Char.code s.[!pos] in
  incr pos;
  v

let get_i32 s pos =
  let v = Int32.to_int (String.get_int32_be s !pos) in
  pos := !pos + 4;
  v

let get_i64 s pos =
  let v = Int64.to_int (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_f64 s pos =
  let v = Int64.float_of_bits (String.get_int64_be s !pos) in
  pos := !pos + 8;
  v

let get_walkers s pos =
  let count = get_i32 s pos in
  if count < 0 then garbage "negative walker count %d" count;
  List.init count (fun _ -> Walker.decode s pos)

let get_str s pos =
  let len = get_i32 s pos in
  if len < 0 || !pos + len > String.length s then
    garbage "bad string length %d" len;
  let v = String.sub s !pos len in
  pos := !pos + len;
  v

let get_kvs s pos =
  let count = get_i32 s pos in
  if count < 0 then garbage "negative kv count %d" count;
  List.init count (fun _ ->
      let kind = Char.chr (get_u8 s pos) in
      let key = get_str s pos in
      let value = get_f64 s pos in
      (kind, key, value))

let decode_body body =
  let pos = ref 0 in
  let tag = get_u8 body pos in
  let msg =
    match tag with
    | 1 ->
        let rank = get_i32 body pos in
        let pid = get_i32 body pos in
        Hello { rank; pid }
    | 2 -> Heartbeat { gen = get_i32 body pos }
    | 3 ->
        let gen = get_i32 body pos in
        let e_trial = get_f64 body pos in
        Begin_gen { gen; e_trial }
    | 4 ->
        let gen = get_i32 body pos in
        let wsum = get_f64 body pos in
        let esum = get_f64 body pos in
        let acc = get_i64 body pos in
        let prop = get_i64 body pos in
        let n = get_i32 body pos in
        let telemetry = get_kvs body pos in
        Reduce { gen; wsum; esum; acc; prop; n; telemetry }
    | 5 -> Branch { gen = get_i32 body pos }
    | 6 ->
        let gen = get_i32 body pos in
        let n = get_i32 body pos in
        Count { gen; n }
    | 7 ->
        let gen = get_i32 body pos in
        let count = get_i32 body pos in
        Give { gen; count }
    | 8 ->
        let gen = get_i32 body pos in
        let walkers = get_walkers body pos in
        Walkers { gen; walkers }
    | 9 ->
        let gen = get_i32 body pos in
        let e_trial = get_f64 body pos in
        Checkpoint_cmd { gen; e_trial }
    | 10 ->
        let gen = get_i32 body pos in
        let ok = get_u8 body pos = 1 in
        Ack { gen; ok }
    | 11 -> Finish
    | 13 -> Init { count = get_i32 body pos }
    | 12 ->
        let acc = get_i64 body pos in
        let prop = get_i64 body pos in
        let walkers = get_walkers body pos in
        let trace = get_str body pos in
        Final { acc; prop; walkers; trace }
    | 14 ->
        let gen = get_i32 body pos in
        let e_trial = get_f64 body pos in
        Join { gen; e_trial }
    | 15 -> Drain { gen = get_i32 body pos }
    | 16 ->
        let gen = get_i32 body pos in
        let count = get_i32 body pos in
        Leave { gen; count }
    | t -> garbage "unknown tag %d" t
  in
  if !pos <> String.length body then
    garbage "frame has %d trailing byte(s) after tag %d"
      (String.length body - !pos)
      tag;
  msg

let decode body =
  try decode_body body
  with Invalid_argument _ -> garbage "truncated or malformed frame body"

(* ---------- framed IO with deadlines ---------- *)

let now () = Unix.gettimeofday ()

let wait_readable fd deadline =
  match deadline with
  | None -> ()
  | Some t ->
      let rec go () =
        let remaining = t -. now () in
        if remaining <= 0. then raise Timeout
        else begin
          match Unix.select [ fd ] [] [] remaining with
          | [], _, _ -> go ()
          | _ -> ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        end
      in
      go ()

let read_exact ?deadline fd buf ofs len =
  let got = ref 0 in
  while !got < len do
    wait_readable fd deadline;
    match Unix.read fd buf (ofs + !got) (len - !got) with
    | 0 -> raise Closed
    | k -> got := !got + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
        raise Closed
  done

(* A write to a fd whose peer vanished must surface as [Closed], never as
   a fatal SIGPIPE.  Sockets (the serve daemon) hit this constantly —
   clients hang up whenever they like — so the write path masks the
   signal itself instead of trusting every caller to.  The mask is
   process-global and never restored: any process doing wire IO wants
   EPIPE semantics for its whole lifetime. *)
let sigpipe_masked = ref false

let mask_sigpipe () =
  if not !sigpipe_masked then begin
    ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
    sigpipe_masked := true
  end

let write_all fd bytes =
  mask_sigpipe ();
  let len = Bytes.length bytes in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd bytes !sent (len - !sent) with
    | k -> sent := !sent + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
        raise Closed
  done

let frame_bytes msg =
  let body = Buffer.create 64 in
  put_u8 body (tag_of msg);
  encode_payload body msg;
  let body = Buffer.to_bytes body in
  let frame = Buffer.create (Bytes.length body + 8) in
  put_i32 frame (Bytes.length body);
  Buffer.add_bytes frame body;
  put_i32 frame (Checkpoint.crc32 (Bytes.to_string body));
  Buffer.to_bytes frame

let send fd msg = write_all fd (frame_bytes msg)

(* One deliberately corrupted frame (valid length, wrong CRC): the
   [Fault.Rank_garbage] injector's payload. *)
let send_corrupt fd =
  let frame = frame_bytes (Heartbeat { gen = 0 }) in
  let last = Bytes.length frame - 1 in
  Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 0x55));
  write_all fd frame

let read_frame ?timeout ~min_len fd =
  let deadline = Option.map (fun s -> now () +. s) timeout in
  let head = Bytes.create 4 in
  read_exact ?deadline fd head 0 4;
  let len = Int32.to_int (Bytes.get_int32_be head 0) in
  if len < min_len || len > max_frame then garbage "bad frame length %d" len;
  let body = Bytes.create len in
  read_exact ?deadline fd body 0 len;
  let trailer = Bytes.create 4 in
  read_exact ?deadline fd trailer 0 4;
  let body = Bytes.to_string body in
  let stored = Int32.to_int (Bytes.get_int32_be trailer 0) land 0xFFFFFFFF in
  let actual = Checkpoint.crc32 body land 0xFFFFFFFF in
  if stored <> actual then
    garbage "crc mismatch: stored %08x, computed %08x" stored actual;
  body

let recv ?timeout fd = decode (read_frame ?timeout ~min_len:1 fd)

(* ---------- raw string frames ----------

   The same length + CRC envelope carrying an opaque string instead of a
   tagged [msg]: the serve daemon's request/reply layer (JSON payloads)
   rides on these, over any fd — Unix-domain sockets included. *)

let send_str fd s =
  if String.length s > max_frame then invalid_arg "Wire.send_str: too large";
  let frame = Buffer.create (String.length s + 8) in
  put_i32 frame (String.length s);
  Buffer.add_string frame s;
  put_i32 frame (Checkpoint.crc32 s);
  write_all fd (Buffer.to_bytes frame)

let recv_str ?timeout fd = read_frame ?timeout ~min_len:0 fd
