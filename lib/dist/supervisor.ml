open Oqmc_particle
open Oqmc_core
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry
module Progress = Oqmc_obs.Progress
module Ledger = Oqmc_obs.Ledger
module Flightrec = Oqmc_obs.Flightrec

(* Supervised multi-rank DMC execution.

   [run] forks N worker rank processes (Unix processes — real fault
   isolation: a segfault, OOM kill or poisoned domain takes down ONE
   rank, not the run) and drives them through a generation protocol
   over pipes (Wire):

     Begin_gen → (Heartbeat, Reduce) → Branch → Count
       → Give/Walkers relays (real load-balance exchange)
       → Checkpoint_cmd/Ack rounds → … → Finish/Final

   The rank set is ELASTIC: the membership plan can grow the set
   mid-run (fork + [Join] + rebalance through the exchange relays) and
   retire ranks gracefully ([Drain] → the whole shard ships to the
   survivors → Finish/reap).  Slots lost to unrecoverable failures are
   refillable by later joins, so degraded mode is reversible.

   Generations are deadline-budgeted rather than hard-lockstep: phase 2
   collects heartbeat/reduce frames in ARRIVAL order over a select
   loop (folding the float reduction in ascending rank order, so the
   trajectory stays bit-identical to the lockstep reference), and a
   rank that blows its soft deadline — [gen_deadline_ms] plus three
   heartbeat-RTT EWMAs of slack — is handled per [straggler_policy]:
   warn (count it), steal (shed a quarter of its walkers to the
   fastest rank), or quarantine (three consecutive misses → treated as
   a stall and respawned).

   Robustness machinery, exercised deterministically by the Fault rank
   injectors and the [Chaos] schedule planner:

   - every read of a rank carries the heartbeat deadline: a stalled rank
     surfaces as [Wire.Timeout], a crashed one as [Wire.Closed] (EOF,
     confirmed by [waitpid]), a corrupted stream as [Wire.Garbage];
   - a failed rank is SIGKILLed, reaped and respawned with exponential
     backoff from its newest *valid* checkpoint shard
     ([Checkpoint.load_latest_shard]) — or from fresh walkers when it
     never checkpointed — rejoining at the next generation;
   - after [max_respawn] respawns the rank is declared unrecoverable:
     its last shard is salvaged and redistributed over the survivors,
     its slot is marked vacant (a later Join refills it with a fresh
     incarnation), and the run continues degraded.  The mixed estimator
     Σw·E_L / Σw is self-normalizing, so dropping a rank's terms from a
     generation leaves the energy unbiased (see docs/ROBUSTNESS.md);
   - SIGTERM/SIGINT raise [Interrupted] so the normal unwind path runs:
     children reaped, telemetry/trace sinks flushed and closed — the
     JSONL tail stays parseable even on abort;
   - with zero injected faults and no membership events the run is
     BIT-IDENTICAL to [run_local], the in-process reference executor
     over the same logical shards (asserted in test/test_dist.ml) —
     with membership events it is bit-identical to [run_local] driven
     by the same membership plan.

   The supervisor itself never spawns OCaml domains, so forking stays
   safe at any point of the run; callers must not hold live domains of
   their own across a [run] call.  (Rank processes DO spawn domains —
   including the [Checkpoint.Async] writer — but only after the fork.) *)

type straggler_policy = Warn | Steal | Quarantine

let straggler_policy_of_string = function
  | "warn" -> Some Warn
  | "steal" -> Some Steal
  | "quarantine" -> Some Quarantine
  | _ -> None

let straggler_policy_name = function
  | Warn -> "warn"
  | Steal -> "steal"
  | Quarantine -> "quarantine"

(* How the exchange planner splits walkers: [Count_level] is the
   historical even split (bit-identical default); [Load_level] levels
   throughput instead, weighting each rank by its ledger speed. *)
type plan_mode = Count_level | Load_level

let plan_mode_of_string = function
  | "count" -> Some Count_level
  | "load" -> Some Load_level
  | _ -> None

let plan_mode_name = function Count_level -> "count" | Load_level -> "load"

(* Elastic membership plan entry: at the END of generation [gen] (first
   element of the pair), grow the rank set by one ([Join]) or retire a
   specific rank gracefully ([Leave r]). *)
type member_event = Join | Leave of int

type params = {
  ranks : int;
  target_walkers : int; (* global population target *)
  warmup : int;
  generations : int;
  tau : float;
  seed : int;
  n_domains : int; (* per rank *)
  feedback : float;
  heartbeat_s : float; (* per-message deadline on every rank read *)
  max_respawn : int; (* respawns per rank before it is abandoned *)
  respawn_backoff : float; (* base seconds, doubled per respawn *)
  checkpoint : string option;
  checkpoint_every : int;
  checkpoint_keep : int;
  restore : bool; (* resume from the newest complete shard generation *)
  faults : (int * int * Fault.rank_fault) list; (* rank, gen, fault *)
  trace : string option; (* Chrome trace_event JSON output path *)
  telemetry : string option; (* per-generation JSONL output path *)
  telemetry_every : int;
  progress : bool; (* live one-line progress on stderr *)
  elastic : bool; (* enable membership events + async checkpoints *)
  gen_deadline_ms : int; (* soft per-generation budget; 0 = lockstep *)
  straggler_policy : straggler_policy;
  membership : (int * member_event) list; (* (gen, event), any order *)
  plan : plan_mode; (* exchange planning: count levelling | load levelling *)
  flightrec : string option; (* postmortem dump path for abort paths *)
  status : string option; (* live status-snapshot file (atomic rename) *)
  on_window : (int -> unit) option; (* ledger-window boundary callback *)
}

let default_params =
  {
    ranks = 4;
    target_walkers = 16;
    warmup = 20;
    generations = 100;
    tau = 0.01;
    seed = 11;
    n_domains = 1;
    feedback = 1.;
    heartbeat_s = 5.;
    max_respawn = 2;
    respawn_backoff = 0.05;
    checkpoint = None;
    checkpoint_every = 0;
    checkpoint_keep = 3;
    restore = false;
    faults = [];
    trace = None;
    telemetry = None;
    telemetry_every = 1;
    progress = false;
    elastic = false;
    gen_deadline_ms = 0;
    straggler_policy = Warn;
    membership = [];
    plan = Count_level;
    flightrec = None;
    status = None;
    on_window = None;
  }

(* One membership transition as it happened: generation, "join"/"leave",
   live ranks after, total walkers before/after.  before = after is the
   conservation invariant the chaos soak asserts. *)
type member_record = {
  m_gen : int;
  m_kind : string;
  m_rank : int;
  m_live : int;
  m_walkers_before : int;
  m_walkers_after : int;
}

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  acceptance : float;
  wall_time : float;
  mean_population : float;
  energy_series : float array;
  population_series : int array;
  comm_messages : int;
  comm_bytes : int;
  respawns : int;
  heartbeat_timeouts : int;
  garbage_frames : int;
  crashes : int;
  ranks_failed : int list; (* abandonment events, ascending *)
  live_ranks : int; (* live member count at the end of the run *)
  degraded_generations : int;
  joins : int;
  leaves : int;
  stragglers : int;
  steals : int;
  membership_skipped : int; (* events that could not be applied *)
  membership_log : member_record list; (* chronological *)
  gen_p50_s : float; (* per-generation wall-time percentiles *)
  gen_p99_s : float;
  final_walkers : Walker.t list;
  final_e_trial : float;
}

exception All_ranks_lost
exception Interrupted of int

(* What a [run_job] call produced: the usual result plus how the job
   ended.  [drained = true] means the [stop] poll ended it early at a
   generation boundary (deadline/shutdown), with the estimators covering
   the generations actually run; [resumed_from > 0] means the job
   continued bit-identically from a [Snapshot] of that generation
   instead of starting fresh. *)
type job_outcome = {
  job_result : result;
  gens_done : int; (* generations executed by THIS call *)
  drained : bool;
  resumed_from : int;
}

let validate p =
  if p.ranks < 1 then invalid_arg "Supervisor: ranks < 1";
  if p.target_walkers < p.ranks then
    invalid_arg "Supervisor: target_walkers < ranks";
  if p.heartbeat_s <= 0. then invalid_arg "Supervisor: heartbeat_s <= 0";
  if p.max_respawn < 0 then invalid_arg "Supervisor: max_respawn < 0";
  if p.gen_deadline_ms < 0 then invalid_arg "Supervisor: gen_deadline_ms < 0";
  if p.membership <> [] && not p.elastic then
    invalid_arg "Supervisor: membership plan requires elastic = true";
  List.iter
    (fun (g, ev) ->
      if g < 1 then invalid_arg "Supervisor: membership gen < 1";
      match ev with
      | Leave r when r < 0 -> invalid_arg "Supervisor: membership leave rank < 0"
      | _ -> ())
    p.membership

(* Split a [Chaos] schedule into the two supervisor inputs it feeds:
   the rank-fault plan and the membership plan. *)
let of_chaos schedule =
  let faults = Chaos.faults_of schedule in
  let membership =
    List.filter_map
      (fun (g, e) ->
        match e with
        | Chaos.Join -> Some (g, Join)
        | Chaos.Leave r -> Some (g, Leave r)
        | _ -> None)
      schedule
  in
  (faults, membership)

(* Ideal initial split of the global target over the ranks. *)
let shard_counts ~target ~ranks =
  let per = target / ranks and extra = target mod ranks in
  Array.init ranks (fun r -> per + if r < extra then 1 else 0)

(* [after] filters the fault plan to generations this incarnation has
   not yet reached, so a respawned (or slot-refilled) rank cannot
   re-fire the fault that killed its predecessor; the initial spawn
   passes [after = -1]. *)
let rank_config (p : params) ~rank ~incarnation ~after =
  {
    Rank.rank;
    ranks = p.ranks;
    seed = p.seed;
    tau = p.tau;
    target = p.target_walkers;
    n_domains = p.n_domains;
    checkpoint = p.checkpoint;
    checkpoint_keep = p.checkpoint_keep;
    async_checkpoint = p.elastic && p.gen_deadline_ms > 0;
    incarnation;
    faults =
      List.filter_map
        (fun (r, g, f) -> if r = rank && g > after then Some (g, f) else None)
        p.faults;
  }

(* ---------- result statistics (shared by run and run_local) ---------- *)

(* Generation wall-time percentiles via the shared bucketed quantile
   estimator — the same estimator the ledger and Status views use, so
   every reported percentile carries the same semantics. *)
let wall_percentile gen_times q =
  match Metrics.quantile (Metrics.hview_of_values gen_times) q with
  | Some (estimate, _) -> estimate
  | None -> 0.

let finalize ~p ~t0 ~energy_series ~pop_series ~comm_messages ~comm_bytes
    ~respawns ~heartbeat_timeouts ~garbage_frames ~crashes ~ranks_failed
    ~live_ranks ~degraded_generations ~joins ~leaves ~stragglers ~steals
    ~membership_skipped ~membership_log ~gen_times ~acc ~prop ~final_walkers
    ~final_e_trial =
  ignore p;
  let wall_time = Oqmc_containers.Timers.now () -. t0 in
  let energy = Stats.series_mean energy_series in
  let variance = Stats.series_variance energy_series in
  let pops = Array.of_list (List.rev pop_series) in
  {
    energy;
    energy_error = Stats.series_error energy_series;
    variance;
    tau_corr = Stats.autocorrelation_time energy_series;
    acceptance = float_of_int acc /. float_of_int (max 1 prop);
    wall_time;
    mean_population =
      (if Array.length pops = 0 then 0.
       else
         float_of_int (Array.fold_left ( + ) 0 pops)
         /. float_of_int (Array.length pops));
    energy_series = Stats.to_array energy_series;
    population_series = pops;
    comm_messages;
    comm_bytes;
    respawns;
    heartbeat_timeouts;
    garbage_frames;
    crashes;
    ranks_failed = List.sort compare ranks_failed;
    live_ranks;
    degraded_generations;
    joins;
    leaves;
    stragglers;
    steals;
    membership_skipped;
    membership_log = List.rev membership_log;
    gen_p50_s = wall_percentile gen_times 0.50;
    gen_p99_s = wall_percentile gen_times 0.99;
    final_walkers;
    final_e_trial;
  }

(* ---------- observability plumbing (shared by run and run_local) ----------

   Enables tracing when a trace path is requested (forked ranks inherit
   the enabled flag, so this must happen BEFORE any fork), opens the
   JSONL sink and the live progress line, and hands back emit/update
   callbacks plus a [close] that flushes and exports everything.
   [close] is failure-isolated: a broken progress line or sink cannot
   keep the others from flushing, so the telemetry tail stays
   parseable on every abort path.  None of this touches the physics or
   the RNG streams. *)
let obs_setup (p : params) =
  if p.trace <> None && not (Trace.enabled ()) then Trace.enable ();
  let sink = Option.map Telemetry.create p.telemetry in
  let prog = if p.progress then Some (Progress.create ()) else None in
  let every = max 1 p.telemetry_every in
  let emit ~gen record =
    match sink with
    | Some s when gen mod every = 0 -> Telemetry.emit s record
    | _ -> ()
  in
  (* Unfiltered emit for sparse structural records (membership events):
     these must never be dropped by the telemetry_every decimation. *)
  let emit_event record =
    match sink with Some s -> Telemetry.emit s record | None -> ()
  in
  let update line =
    match prog with Some pr -> Progress.update pr line | None -> ()
  in
  let close () =
    (try match prog with Some pr -> Progress.finish pr | None -> ()
     with _ -> ());
    (try match sink with Some s -> Telemetry.close s | None -> ()
     with _ -> ());
    try match p.trace with Some path -> Trace.export ~path | None -> ()
    with _ -> ()
  in
  (emit, emit_event, update, close)

(* Route SIGTERM/SIGINT through the normal exception unwind so every
   [Fun.protect] finally — child reaping, sink flushing — runs on
   abort.  Returns the saved dispositions for [restore_signals]. *)
let install_signals () =
  List.filter_map
    (fun s ->
      match Sys.signal s (Sys.Signal_handle (fun s -> raise (Interrupted s))) with
      | old -> Some (s, old)
      | exception (Invalid_argument _ | Sys_error _) -> None)
    [ Sys.sigterm; Sys.sigint ]

let restore_signals saved =
  List.iter (fun (s, old) -> try Sys.set_signal s old with _ -> ()) saved

let membership_json (m : member_record) =
  Oqmc_obs.Jsonx.(
    Obj
      [
        ("event", Str m.m_kind);
        ("gen", Num (float_of_int m.m_gen));
        ("rank", Num (float_of_int m.m_rank));
        ("live_ranks", Num (float_of_int m.m_live));
        ("walkers_before", Num (float_of_int m.m_walkers_before));
        ("walkers_after", Num (float_of_int m.m_walkers_after));
      ])

(* Dump the flight-recorder ring to the configured postmortem path.
   Failures are swallowed — the recorder must never turn one abort into
   a different one. *)
let flight_dump (p : params) reason =
  match p.flightrec with
  | None -> ()
  | Some path -> ( try Flightrec.dump ~reason ~path () with _ -> ())

(* Live per-job status file: a small JSON snapshot written to a temp
   file and atomically renamed into place, throttled to ~4 Hz.  The
   serve daemon's Status endpoint reads (never writes) this file, so a
   crashed runner leaves its last consistent snapshot behind. *)
let status_writer (p : params) =
  match p.status with
  | None -> fun ~force:_ _ -> ()
  | Some path ->
      let last = ref 0. in
      fun ~force mk ->
        let now = Oqmc_containers.Timers.now () in
        if force || now -. !last >= 0.25 then begin
          last := now;
          try
            let tmp = path ^ ".tmp" in
            let oc = open_out tmp in
            output_string oc (Oqmc_obs.Jsonx.to_string (mk ()));
            output_char oc '\n';
            close_out oc;
            Sys.rename tmp path
          with Sys_error _ | Unix.Unix_error _ -> ()
        end

(* Sparse structural telemetry record carrying the per-rank ledger
   windows (emitted every ledger window, decimation-proof). *)
let ledger_event ~gen ledger =
  Oqmc_obs.Jsonx.(
    Obj
      [
        ("event", Str "ledger");
        ("gen", Num (float_of_int gen));
        ("ranks", Ledger.json ledger);
      ])

(* How often (in generations) the ledger windows are pushed to the
   JSONL sink — matches [Ledger.create]'s default window. *)
let ledger_emit_every = 16

(* Registry [audit.*] gauges — set by the driver's efficiency audit
   through the [on_window] hook — echoed verbatim into the status
   snapshot so a Status query surfaces live efficiency numbers. *)
let audit_json () =
  Oqmc_obs.Jsonx.Obj
    (List.filter_map
       (fun (name, v) ->
         match v with
         | Metrics.Gauge g
           when String.length name > 6 && String.sub name 0 6 = "audit." ->
             Some (name, Oqmc_obs.Jsonx.Num g)
         | _ -> None)
       (Metrics.snapshot ()))

let fire_window (p : params) gen =
  if gen mod ledger_emit_every = 0 then
    match p.on_window with
    | None -> ()
    | Some f -> ( try f gen with _ -> ())

(* In-process analogue of a forked rank's [timer_us.*] piggyback: fold
   each shard's kernel-timer deltas into the global registry so the
   efficiency audit sees per-kernel time regardless of executor. *)
let absorb_timer_deltas prev_timers shards =
  List.iter
    (fun (r, s) ->
      let now = Rank.timer_totals s in
      let before =
        Option.value ~default:[] (Hashtbl.find_opt prev_timers r)
      in
      Hashtbl.replace prev_timers r now;
      List.iter
        (fun (k, sec) ->
          let d =
            sec -. Option.value ~default:0. (List.assoc_opt k before)
          in
          if d > 0. then
            Metrics.add
              (Metrics.counter ("timer_us." ^ k))
              (int_of_float (Float.round (d *. 1e6))))
        now)
    shards

(* ---------- in-process reference executor ---------- *)

(* The same rank-sharded algorithm as [run], executed over logical
   shards inside this process: no fork, no pipes, no serialization.
   This is the oracle the forked path is asserted bit-identical
   against — including elastic membership, which is applied here with
   the same slot-refill and lowest-survivor rules — and a convenient
   single-process driver for rank-shaped runs. *)
let run_local_ext ~(factory : int -> Engine_api.t) ~handle_signals ~stop
    ~snapshot ~snapshot_every (p : params) : job_outcome =
  validate p;
  if snapshot <> None && p.membership <> [] then
    invalid_arg "Supervisor: job snapshots require an empty membership plan";
  if snapshot_every < 1 then invalid_arg "Supervisor: snapshot_every < 1";
  let emit, emit_event, update_progress, obs_close = obs_setup p in
  let saved_signals = if handle_signals then install_signals () else [] in
  Fun.protect
    ~finally:(fun () ->
      restore_signals saved_signals;
      obs_close ())
  @@ fun () ->
  try
  (* A valid snapshot of THIS job (parameters echoed and matching)
     resumes the run bit-identically; anything else starts fresh. *)
  let resume =
    match snapshot with
    | None -> None
    | Some path -> (
        match Snapshot.load_latest ~path with
        | Some (st, shards)
          when st.Snapshot.seed = p.seed
               && st.Snapshot.ranks = p.ranks
               && st.Snapshot.target = p.target_walkers
               && st.Snapshot.gen <= p.warmup + p.generations ->
            Some (st, shards)
        | _ -> None)
  in
  let counts = shard_counts ~target:p.target_walkers ~ranks:p.ranks in
  (* Sorted ascending by rank id; grows and shrinks with membership. *)
  let members : (int * Rank.shard) list ref =
    ref
      (match resume with
      | None ->
          List.init p.ranks (fun r ->
              ( r,
                Rank.init_shard ~factory ~count:counts.(r) ~e_trial:0.
                  (rank_config p ~rank:r ~incarnation:0 ~after:(-1)) ))
      | Some (st, shards) ->
          List.map
            (fun (rs : Snapshot.rank_state) ->
              let ws = List.assoc rs.Snapshot.r_rank shards in
              let s =
                Rank.restore_shard ~factory ~walkers:ws
                  ~e_trial:st.Snapshot.e_trial
                  (rank_config p ~rank:rs.Snapshot.r_rank ~incarnation:0
                     ~after:(-1))
              in
              Rank.set_rng_states s (rs.Snapshot.r_master, rs.Snapshot.r_pool);
              Rank.set_move_totals s ~acc:rs.Snapshot.r_acc
                ~prop:rs.Snapshot.r_prop;
              (rs.Snapshot.r_rank, s))
            st.Snapshot.rank_states)
  in
  let vacant = ref [] and next_id = ref p.ranks in
  let incarnations : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (_, s) -> Rank.shutdown_shard s) !members)
  @@ fun () ->
  (* Global starting trial energy from the per-rank initial sums,
     reduced in ascending rank order — or, on resume, the snapshot's
     running state (series, counters, trial energy) verbatim. *)
  let e_trial =
    ref
      (match resume with
      | Some (st, _) -> st.Snapshot.e_trial
      | None ->
          let w0 = ref 0. and e0 = ref 0. in
          List.iter
            (fun (_, s) ->
              let w, e = Rank.initial_sums s in
              w0 := !w0 +. w;
              e0 := !e0 +. e)
            !members;
          if !w0 > 0. then !e0 /. !w0 else 0.)
  in
  let energy_series = Stats.make_series () in
  let pop_series = ref [] in
  let comm_messages = ref 0 and comm_bytes = ref 0 in
  let samples = ref 0 in
  (match resume with
  | None -> ()
  | Some (st, _) ->
      Array.iter (fun e -> Stats.append energy_series e) st.Snapshot.energy;
      pop_series := List.rev (Array.to_list st.Snapshot.pops);
      comm_messages := st.Snapshot.comm_messages;
      comm_bytes := st.Snapshot.comm_bytes;
      samples := st.Snapshot.samples);
  let joins = ref 0 and leaves = ref 0 and skipped = ref 0 in
  let membership_log = ref [] in
  let gen_times = ref [] in
  let acc_extra = ref 0 and prop_extra = ref 0 in
  let t0 = Oqmc_containers.Timers.now () in
  let total_gens = p.warmup + p.generations in
  let start_gen = match resume with Some (st, _) -> st.Snapshot.gen | None -> 0 in
  let total_walkers () =
    List.fold_left (fun a (_, s) -> a + Population.size (Rank.pop s)) 0 !members
  in
  let m_gen_s = Metrics.histogram "sup.generation_s" in
  let ledger = Ledger.create () in
  let write_status = status_writer p in
  (* Per-shard proposed-move watermarks, so the ledger sees deltas even
     though [Rank.move_totals] is cumulative (and may be nonzero on a
     snapshot resume). *)
  let prev_prop : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (r, s) -> Hashtbl.replace prev_prop r (snd (Rank.move_totals s)))
    !members;
  (* Kernel-timer watermarks feeding [absorb_timer_deltas]. *)
  let prev_timers : (int, (string * float) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let plan_weights () =
    match p.plan with
    | Count_level -> None
    | Load_level -> Ledger.speed_weights ledger (List.map fst !members)
  in
  (* Snapshot the complete dynamical state at a generation boundary:
     everything [resume] restores above.  IO failures are swallowed — a
     snapshot that does not land only costs resume granularity. *)
  let save_snap ~gen =
    match snapshot with
    | None -> ()
    | Some path -> (
        let rank_states =
          List.map
            (fun (r, s) ->
              let master, pool = Rank.rng_states s in
              let a, pr = Rank.move_totals s in
              {
                Snapshot.r_rank = r;
                r_master = master;
                r_pool = pool;
                r_acc = a;
                r_prop = pr;
              })
            !members
        in
        let st =
          {
            Snapshot.gen;
            seed = p.seed;
            ranks = p.ranks;
            target = p.target_walkers;
            e_trial = !e_trial;
            energy = Stats.to_array energy_series;
            pops = Array.of_list (List.rev !pop_series);
            samples = !samples;
            comm_messages = !comm_messages;
            comm_bytes = !comm_bytes;
            rank_states;
          }
        in
        try
          Snapshot.save ~path st
            (List.map
               (fun (r, s) -> (r, Population.walkers (Rank.pop s)))
               !members)
        with Sys_error _ | Checkpoint.Corrupt _ -> ())
  in
  let gen_ref = ref (start_gen + 1) in
  let job_drained = ref false in
  while (not !job_drained) && !gen_ref <= total_gens do
    let gen = !gen_ref in
    Trace.with_span ~args:[ ("gen", string_of_int gen) ] "sup.generation"
    @@ fun () ->
    let gen_t0 = Oqmc_containers.Timers.now () in
    let measuring = gen > p.warmup in
    let wsum_t = ref 0. and esum_t = ref 0. and n_t = ref 0 in
    List.iter
      (fun (r, s) ->
        let sh_t0 = Oqmc_containers.Timers.now () in
        let w, e = Rank.sweep s ~gen ~e_trial:!e_trial in
        wsum_t := !wsum_t +. w;
        esum_t := !esum_t +. e;
        n_t := !n_t + Population.size (Rank.pop s);
        (* Feed the throughput ledger: proposed-move delta over the
           shard's sweep wall — the in-process analogue of the forked
           path's arrival-time accounting. *)
        let _, pr = Rank.move_totals s in
        let before = Option.value ~default:0 (Hashtbl.find_opt prev_prop r) in
        Hashtbl.replace prev_prop r pr;
        Ledger.observe_gen ledger ~rank:r ~gen ~moves:(max 0 (pr - before))
          ~wall_s:(Oqmc_containers.Timers.now () -. sh_t0))
      !members;
    let e_gen = if !wsum_t > 0. then !esum_t /. !wsum_t else !e_trial in
    if measuring then begin
      Stats.append energy_series e_gen;
      pop_series := !n_t :: !pop_series;
      samples := !samples + !n_t
    end;
    List.iter (fun (_, s) -> Rank.branch s) !members;
    let weights = plan_weights () in
    let shards =
      Array.of_list (List.map (fun (_, s) -> Rank.pop s) !members)
    in
    let ids = Array.of_list (List.map fst !members) in
    (* Account the exchange volume per rank before applying the (same,
       deterministic) plan. *)
    List.iter
      (fun { Population.src; dst; count } ->
        Ledger.add_exchange ledger ~rank:ids.(src) ~walkers:count;
        Ledger.add_exchange ledger ~rank:ids.(dst) ~walkers:count)
      (Population.plan ?weights (Array.map Population.size shards));
    let report = Population.exchange ?weights shards in
    comm_messages := !comm_messages + report.Population.messages;
    comm_bytes := !comm_bytes + report.Population.bytes;
    let total = total_walkers () in
    e_trial :=
      Population.trial_energy_update ~feedback:p.feedback ~tau:p.tau
        ~target:p.target_walkers ~population:total ~e_estimate:e_gen;
    (match p.checkpoint with
    | Some path when p.checkpoint_every > 0 && gen mod p.checkpoint_every = 0
      ->
        let acked = ref [] in
        List.iter
          (fun (r, s) ->
            try
              Checkpoint.save_shard ~keep:p.checkpoint_keep ~path ~rank:r
                ~gen ~e_trial:!e_trial
                (Population.walkers (Rank.pop s));
              acked := r :: !acked
            with Sys_error _ | Checkpoint.Corrupt _ -> ())
          !members;
        (try
           Checkpoint.save_manifest ~path ~gen ~ranks:(List.rev !acked) ()
         with Sys_error _ -> ())
    | _ -> ());
    let elapsed = Oqmc_containers.Timers.now () -. t0 in
    let gen_record =
      Oqmc_obs.Jsonx.(Obj
         [
           ("gen", Num (float_of_int gen));
           ("e_gen", Num e_gen);
           ("e_trial", Num !e_trial);
           ("population", Num (float_of_int total));
           ("ranks", Num (float_of_int (List.length !members)));
           ( "walkers_per_s",
             Num
               (if elapsed > 0. then float_of_int !samples /. elapsed
                else 0.) );
           ("wall_s", Num elapsed);
         ])
    in
    Flightrec.record "gen" gen_record;
    if measuring then emit ~gen:(gen - p.warmup) gen_record;
    update_progress
      (Printf.sprintf "dmc[local %d ranks] gen %d/%d  E %+.6f  E_T %+.6f  pop %d"
         (List.length !members) gen total_gens e_gen !e_trial total);
    (* Membership events scheduled for this generation, applied with
       the SAME slot and delivery rules as the forked supervisor so the
       two paths stay bit-identical under a shared plan. *)
    List.iter
      (fun (g, ev) ->
        if g = gen then
          match ev with
          | Join ->
              let before = total_walkers () in
              let id, incarnation =
                match List.sort compare !vacant with
                | v :: rest ->
                    vacant := rest;
                    (v, Option.value ~default:0 (Hashtbl.find_opt incarnations v))
                | [] ->
                    let id = !next_id in
                    incr next_id;
                    (id, 0)
              in
              let shard =
                Rank.init_shard ~factory ~count:0 ~e_trial:0.
                  (rank_config p ~rank:id ~incarnation ~after:gen)
              in
              members :=
                List.sort
                  (fun (a, _) (b, _) -> compare a b)
                  ((id, shard) :: !members);
              let report =
                Population.exchange ?weights:(plan_weights ())
                  (Array.of_list (List.map (fun (_, s) -> Rank.pop s) !members))
              in
              comm_messages := !comm_messages + report.Population.messages;
              comm_bytes := !comm_bytes + report.Population.bytes;
              incr joins;
              Metrics.inc (Metrics.counter "sup.joins");
              Trace.instant
                ~args:[ ("rank", string_of_int id) ]
                "sup.join";
              let m =
                {
                  m_gen = gen;
                  m_kind = "join";
                  m_rank = id;
                  m_live = List.length !members;
                  m_walkers_before = before;
                  m_walkers_after = total_walkers ();
                }
              in
              membership_log := m :: !membership_log;
              emit_event (membership_json m)
          | Leave r -> (
              match List.assoc_opt r !members with
              | None -> incr skipped
              | Some _ when List.length !members <= 1 -> incr skipped
              | Some shard ->
                  let before = total_walkers () in
                  let drained = Population.drain (Rank.pop shard) in
                  let a, pr = Rank.move_totals shard in
                  acc_extra := !acc_extra + a;
                  prop_extra := !prop_extra + pr;
                  let incarnation = (Rank.config shard).Rank.incarnation in
                  Rank.shutdown_shard shard;
                  members := List.remove_assoc r !members;
                  Ledger.drop_rank ledger ~rank:r;
                  Hashtbl.remove prev_prop r;
                  vacant := r :: !vacant;
                  Hashtbl.replace incarnations r (incarnation + 1);
                  (match !members with
                  | [] -> ()
                  | (_, dst) :: _ ->
                      List.iter
                        (fun w ->
                          incr comm_messages;
                          comm_bytes := !comm_bytes + Walker.message_bytes w)
                        drained;
                      Population.absorb (Rank.pop dst) drained);
                  incr leaves;
                  Metrics.inc (Metrics.counter "sup.leaves");
                  Trace.instant
                    ~args:[ ("rank", string_of_int r) ]
                    "sup.leave";
                  let m =
                    {
                      m_gen = gen;
                      m_kind = "leave";
                      m_rank = r;
                      m_live = List.length !members;
                      m_walkers_before = before;
                      m_walkers_after = total_walkers ();
                    }
                  in
                  membership_log := m :: !membership_log;
                  emit_event (membership_json m)))
      p.membership;
    let dt = Oqmc_containers.Timers.now () -. gen_t0 in
    Metrics.observe m_gen_s dt;
    gen_times := dt :: !gen_times;
    absorb_timer_deltas prev_timers !members;
    if gen mod ledger_emit_every = 0 then emit_event (ledger_event ~gen ledger);
    fire_window p gen;
    (* Drain/snapshot at the generation boundary: the [stop] poll ends
       the job gracefully with consistent estimators, and the snapshot
       cadence always covers the drain point and the final generation
       so a suspended job never replays work. *)
    if stop () then job_drained := true;
    write_status ~force:(!job_drained || gen = total_gens) (fun () ->
        Oqmc_obs.Jsonx.(Obj
           [
             ("gen", Num (float_of_int gen));
             ("total_gens", Num (float_of_int total_gens));
             ("e_gen", Num e_gen);
             ("e_trial", Num !e_trial);
             ("population", Num (float_of_int total));
             ("live_ranks", Num (float_of_int (List.length !members)));
             ( "walkers_per_s",
               Num
                 (if elapsed > 0. then float_of_int !samples /. elapsed
                  else 0.) );
             ("wall_s", Num elapsed);
             ("ledger", Ledger.json ledger);
             ("audit", audit_json ());
           ]));
    if
      snapshot <> None
      && (!job_drained || gen = total_gens || gen mod snapshot_every = 0)
    then save_snap ~gen;
    incr gen_ref
  done;
  let last_gen = !gen_ref - 1 in
  let acc = ref !acc_extra and prop = ref !prop_extra in
  List.iter
    (fun (_, s) ->
      let a, pr = Rank.move_totals s in
      acc := !acc + a;
      prop := !prop + pr)
    !members;
  let final_walkers =
    List.concat_map (fun (_, s) -> Population.walkers (Rank.pop s)) !members
  in
  let job_result =
    finalize ~p ~t0 ~energy_series ~pop_series:!pop_series
      ~comm_messages:!comm_messages ~comm_bytes:!comm_bytes ~respawns:0
      ~heartbeat_timeouts:0 ~garbage_frames:0 ~crashes:0 ~ranks_failed:[]
      ~live_ranks:(List.length !members) ~degraded_generations:0 ~joins:!joins
      ~leaves:!leaves ~stragglers:0 ~steals:0 ~membership_skipped:!skipped
      ~membership_log:!membership_log ~gen_times:!gen_times ~acc:!acc
      ~prop:!prop ~final_walkers ~final_e_trial:!e_trial
  in
  {
    job_result;
    gens_done = last_gen - start_gen;
    drained = !job_drained && last_gen < total_gens;
    resumed_from = start_gen;
  }
  with e ->
    (* Abort unwind (SIGTERM/SIGINT via [Interrupted], or any fatal
       error): dump the flight recorder before the sinks close, so the
       postmortem carries the still-enabled trace spans. *)
    let bt = Printexc.get_raw_backtrace () in
    flight_dump p (Printexc.to_string e);
    Printexc.raise_with_backtrace e bt

let run_local ~(factory : int -> Engine_api.t) (p : params) : result =
  (run_local_ext ~factory ~handle_signals:true
     ~stop:(fun () -> false)
     ~snapshot:None ~snapshot_every:1 p)
    .job_result

(* ---------- forked execution ---------- *)

type proc = {
  id : int;
  mutable pid : int;
  mutable r_fd : Unix.file_descr; (* supervisor reads rank output here *)
  mutable w_fd : Unix.file_descr; (* supervisor writes commands here *)
  mutable dead : bool; (* permanently abandoned *)
  mutable fds_closed : bool; (* pipe ends already closed (torn down) *)
  mutable incarnation : int;
  mutable count : int; (* last known shard size *)
  mutable begin_t : float; (* when this gen's Begin_gen was sent *)
  mutable rtt_ewma : float; (* smoothed heartbeat RTT, seconds *)
  mutable straggles : int; (* consecutive soft-deadline misses *)
}

(* Why the rank failed: drives the failure counters. *)
type failure = Crash | Stall | Corrupt_stream

let startup_timeout (p : params) = Float.max 30. (10. *. p.heartbeat_s)

(* Wait for [pid] without losing the reap to a signal ([EINTR] restarts
   the wait) or double-reaping ([ECHILD] means some earlier path already
   collected the child — fine either way). *)
let rec waitpid_robust pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_robust pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let reap pid =
  (try Unix.kill pid Sys.sigkill
   with Unix.Unix_error ((Unix.ESRCH | Unix.EPERM), _, _) -> ());
  waitpid_robust pid

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one rank.  [all_fds] are every other live pipe end: the child
   must close them, or a crashed sibling's EOF would never surface.
   The child builds its engines, runs the protocol and _exits without
   touching the parent's buffered channels. *)
let fork_rank ~(factory : int -> Engine_api.t) ~cfg ~init ~all_fds =
  let sup_r, rank_w = Unix.pipe ~cloexec:false () in
  let rank_r, sup_w = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      close_fd sup_r;
      close_fd sup_w;
      List.iter close_fd all_fds;
      let code =
        try
          Rank.serve ~cfg ~factory ~init ~fd_in:rank_r ~fd_out:rank_w;
          0
        with _ -> 3
      in
      Unix._exit code
  | pid ->
      close_fd rank_r;
      close_fd rank_w;
      {
        id = cfg.Rank.rank;
        pid;
        r_fd = sup_r;
        w_fd = sup_w;
        dead = false;
        fds_closed = false;
        incarnation = cfg.Rank.incarnation;
        count = 0;
        begin_t = 0.;
        rtt_ewma = 0.;
        straggles = 0;
      }

let run_ext ~(factory : int -> Engine_api.t) ~stop (p : params) : job_outcome =
  validate p;
  (* Observability must attach BEFORE any fork so children inherit the
     tracing-enabled flag; the supervisor's own spans carry pid -1,
     rank blobs are ingested under their rank id at Final time. *)
  let emit, emit_event, update_progress, obs_close = obs_setup p in
  if Trace.enabled () then Trace.set_rank (-1);
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let saved_signals = install_signals () in
  (* The member table: rank id → process.  Abandoned members stay in
     the table (dead = true) until their slot is refilled by a Join,
     which overwrites the entry with a fresh incarnation. *)
  let members : (int, proc) Hashtbl.t = Hashtbl.create 16 in
  let vacant = ref [] and next_id = ref p.ranks in
  let incarnations : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Every pipe end still OPEN in the supervisor: the set a fresh child
     must close.  Torn-down fds must be excluded — their numbers get
     reused by the very pipes the new child is being given. *)
  let all_fds () =
    Hashtbl.fold
      (fun _ s acc -> if s.fds_closed then acc else s.r_fd :: s.w_fd :: acc)
      members []
  in
  let cleanup () =
    Hashtbl.iter
      (fun _ s ->
        if not s.fds_closed then begin
          close_fd s.r_fd;
          close_fd s.w_fd;
          s.fds_closed <- true;
          reap s.pid
        end)
      members;
    Sys.set_signal Sys.sigpipe old_sigpipe;
    restore_signals saved_signals;
    obs_close ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  try
  let hb = p.heartbeat_s in
  let respawns = ref 0 in
  let hb_timeouts = ref 0 and garbage_frames = ref 0 and crashes = ref 0 in
  let ranks_failed = ref [] in
  let degraded_generations = ref 0 in
  let comm_messages = ref 0 and comm_bytes = ref 0 in
  let joins = ref 0 and leaves = ref 0 in
  let stragglers = ref 0 and steals = ref 0 in
  let skipped = ref 0 in
  let membership_log = ref [] in
  let gen_times = ref [] in
  let acc_left = ref 0 and prop_left = ref 0 in
  let energy_series = Stats.make_series () in
  let pop_series = ref [] in
  (* -------- spawn + initial ensemble -------- *)
  let restore_init =
    if not p.restore then None
    else
      match p.checkpoint with
      | None -> None
      | Some path -> (
          match Checkpoint.latest_complete ~path ~ranks:p.ranks with
          | None -> None
          | Some gen ->
              Some
                (Array.init p.ranks (fun r ->
                     Checkpoint.load_shard ~path ~rank:r ~gen)))
  in
  let counts = shard_counts ~target:p.target_walkers ~ranks:p.ranks in
  for r = 0 to p.ranks - 1 do
    let cfg = rank_config p ~rank:r ~incarnation:0 ~after:(-1) in
    let init = Option.map (fun shards -> shards.(r)) restore_init in
    let s = fork_rank ~factory ~cfg ~init ~all_fds:(all_fds ()) in
    Hashtbl.replace members r s
  done;
  let find r = Hashtbl.find_opt members r in
  let proc r = Hashtbl.find members r in
  let live () =
    Hashtbl.fold (fun id s acc -> if s.dead then acc else id :: acc) members []
    |> List.sort compare
  in
  (* Record a failure and tear the process down; respawn happens at the
     end of the generation so surviving ranks stay in lockstep. *)
  let failed_this_gen = ref [] in
  let cur_gen = ref 0 in
  let fail_rank r why =
    match find r with
    | None -> ()
    | Some s ->
        if (not s.dead) && not (List.mem r !failed_this_gen) then begin
          let reason =
            match why with
            | Crash -> incr crashes; "crash"
            | Stall -> incr hb_timeouts; "stall"
            | Corrupt_stream -> incr garbage_frames; "garbage"
          in
          Metrics.inc (Metrics.counter ("sup.rank_failures." ^ reason));
          Trace.instant
            ~args:[ ("rank", string_of_int r); ("reason", reason) ]
            "sup.rank_failed";
          Flightrec.record "rank_failed"
            Oqmc_obs.Jsonx.(
              Obj
                [
                  ("rank", Num (float_of_int r));
                  ("reason", Str reason);
                  ("gen", Num (float_of_int !cur_gen));
                  ("incarnation", Num (float_of_int s.incarnation));
                ]);
          flight_dump p ("rank_failed:" ^ reason);
          close_fd s.r_fd;
          close_fd s.w_fd;
          s.fds_closed <- true;
          reap s.pid;
          failed_this_gen := r :: !failed_this_gen
        end
  in
  let ok_rank r =
    match find r with
    | Some s -> (not s.dead) && not (List.mem r !failed_this_gen)
    | None -> false
  in
  (* Run [f] against rank [r], converting wire failures into rank
     failures.  Returns [None] when the rank just failed. *)
  let guard r f =
    if not (ok_rank r) then None
    else
      match f (proc r) with
      | v -> Some v
      | exception Wire.Closed -> fail_rank r Crash; None
      | exception Wire.Timeout -> fail_rank r Stall; None
      | exception Wire.Garbage _ -> fail_rank r Corrupt_stream; None
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
          fail_rank r Crash; None
  in
  let recv_expect ?(timeout = hb) r match_ =
    guard r (fun s ->
        let m = Wire.recv ~timeout s.r_fd in
        match match_ m with
        | Some v -> v
        | None -> raise (Wire.Garbage "unexpected frame"))
  in
  (* -------- handshake: Hello (+ Init reduce on fresh spawns) -------- *)
  let startup = startup_timeout p in
  let w0 = ref 0. and e0 = ref 0. in
  for r = 0 to p.ranks - 1 do
    ignore
      (recv_expect ~timeout:startup r (function
        | Wire.Hello _ -> Some ()
        | _ -> None))
  done;
  (match restore_init with
  | Some shards ->
      Array.iteri (fun r (_, ws) -> (proc r).count <- List.length ws) shards
  | None ->
      for r = 0 to p.ranks - 1 do
        ignore
          (guard r (fun s -> Wire.send s.w_fd (Wire.Init { count = counts.(r) })))
      done;
      for r = 0 to p.ranks - 1 do
        match
          recv_expect ~timeout:startup r (function
            | Wire.Reduce { gen = 0; wsum; esum; n; _ } -> Some (wsum, esum, n)
            | _ -> None)
        with
        | Some (w, e, n) ->
            w0 := !w0 +. w;
            e0 := !e0 +. e;
            (proc r).count <- n
        | None -> ()
      done);
  let e_trial =
    ref
      (match restore_init with
      | Some shards -> fst shards.(0)
      | None -> if !w0 > 0. then !e0 /. !w0 else 0.)
  in
  if !failed_this_gen <> [] then
    (* A rank that cannot even start is not worth respawning: fail fast
       rather than mask a broken factory. *)
    failwith "Supervisor: rank startup failed";
  let t0 = Oqmc_containers.Timers.now () in
  let total_gens = p.warmup + p.generations in
  let total_walkers () =
    List.fold_left
      (fun a r -> if ok_rank r then a + (proc r).count else a)
      0 (live ())
  in
  (* Heartbeat RTT is measured supervisor-side — Begin_gen send to
     Heartbeat receipt — so the wire protocol needs no clock exchange. *)
  let m_rtt = Metrics.histogram "sup.heartbeat_rtt_s" in
  let m_gen_s = Metrics.histogram "sup.generation_s" in
  let ledger = Ledger.create () in
  let write_status = status_writer p in
  (* Per-rank proposed-move watermarks for the ledger ([Reduce] carries
     cumulative totals; a respawn resets them, the delta clamps to 0). *)
  let rank_prop : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let prev_acc = ref 0 and prev_prop = ref 0 in
  let samples = ref 0 in
  let rtt_max = ref 0. in
  (* Phase 2 collector: heartbeat + reduce frames accepted in ARRIVAL
     order over a select loop, each rank on its own hard deadline
     (heartbeat_s per frame, as in lockstep).  Fast ranks are never
     blocked behind a stalled sibling's timeout — the soak's barrier
     softening — while the caller folds the results in ascending rank
     order, keeping the float reduction bit-identical to [run_local].
     Returns rank → (wsum, esum, acc, prop, n, kvs, arrival_time). *)
  let collect_phase2 ~gen participants =
    let now () = Oqmc_containers.Timers.now () in
    let stage : (int, [ `Hb | `Reduce ]) Hashtbl.t = Hashtbl.create 8 in
    let deadline : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let results = Hashtbl.create 8 in
    List.iter
      (fun r ->
        Hashtbl.replace stage r `Hb;
        Hashtbl.replace deadline r ((proc r).begin_t +. hb))
      participants;
    let pending () =
      List.filter
        (fun r -> ok_rank r && not (Hashtbl.mem results r))
        participants
    in
    let handle r m =
      let s = proc r in
      match (Hashtbl.find stage r, m) with
      | `Hb, Wire.Heartbeat _ ->
          let rtt = now () -. s.begin_t in
          Metrics.observe m_rtt rtt;
          rtt_max := Float.max !rtt_max rtt;
          s.rtt_ewma <-
            (if s.rtt_ewma = 0. then rtt
             else (0.8 *. s.rtt_ewma) +. (0.2 *. rtt));
          Trace.instant
            ~args:
              [
                ("rank", string_of_int r);
                ("rtt_us", string_of_int (int_of_float (rtt *. 1e6)));
              ]
            "sup.heartbeat";
          Hashtbl.replace stage r `Reduce;
          Hashtbl.replace deadline r (now () +. hb)
      | `Reduce, Wire.Reduce { gen = g; wsum; esum; acc; prop; n; telemetry }
        when g = gen ->
          Hashtbl.replace results r
            (wsum, esum, acc, prop, n, telemetry, now ())
      | _ -> fail_rank r Corrupt_stream
    in
    let rec loop () =
      match pending () with
      | [] -> ()
      | ps -> (
          let t = now () in
          List.iter
            (fun r -> if t > Hashtbl.find deadline r then fail_rank r Stall)
            ps;
          match pending () with
          | [] -> ()
          | ps ->
              let fds = List.map (fun r -> (proc r).r_fd) ps in
              let wait =
                List.fold_left
                  (fun a r -> Float.min a (Hashtbl.find deadline r -. t))
                  hb ps
                |> Float.max 0.005
              in
              let readable =
                match Unix.select fds [] [] wait with
                | rs, _, _ -> rs
                | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _)
                  ->
                    []
              in
              List.iter
                (fun r ->
                  if
                    ok_rank r
                    && (not (Hashtbl.mem results r))
                    && List.mem (proc r).r_fd readable
                  then
                    match guard r (fun s -> Wire.recv ~timeout:hb s.r_fd) with
                    | Some m -> handle r m
                    | None -> ())
                ps;
              loop ())
    in
    loop ();
    results
  in
  (* Relay one walker batch rank→rank through the supervisor, counting
     the communication volume; if the destination dies mid-relay the
     batch is rerouted to the first other healthy rank in [others]
     rather than lost. *)
  let relay_move ~gen rs rd count ~others =
    match
      guard rs (fun s ->
          Wire.send s.w_fd (Wire.Give { gen; count });
          match Wire.recv ~timeout:hb s.r_fd with
          | Wire.Walkers { walkers; _ } -> walkers
          | _ -> raise (Wire.Garbage "expected walker batch"))
    with
    | None -> ()
    | Some walkers ->
        (proc rs).count <- (proc rs).count - List.length walkers;
        List.iter
          (fun w ->
            incr comm_messages;
            comm_bytes := !comm_bytes + Walker.message_bytes w)
          walkers;
        let deliver rank =
          guard rank (fun s ->
              Wire.send s.w_fd (Wire.Walkers { gen; walkers });
              s.count <- s.count + List.length walkers)
        in
        (match deliver rd with
        | Some () -> ()
        | None -> (
            match
              List.find_opt (fun r -> ok_rank r && r <> rd) others
            with
            | Some alt -> ignore (deliver alt)
            | None -> ()))
  in
  (* Full load-balance exchange over [ids] (healthy subset), relayed in
     deterministic [Population.plan] order — shared by phase 4, the
     post-join rebalance and walker stealing. *)
  let relay_exchange ~gen ids =
    let ids = Array.of_list (List.filter ok_rank ids) in
    let plan_counts = Array.map (fun r -> (proc r).count) ids in
    let weights =
      match p.plan with
      | Count_level -> None
      | Load_level -> Ledger.speed_weights ledger (Array.to_list ids)
    in
    let moves = Population.plan ?weights plan_counts in
    List.iter
      (fun { Population.src; dst; count } ->
        Ledger.add_exchange ledger ~rank:ids.(src) ~walkers:count;
        Ledger.add_exchange ledger ~rank:ids.(dst) ~walkers:count;
        relay_move ~gen ids.(src) ids.(dst) count
          ~others:(Array.to_list ids))
      moves
  in
  (* -------- elastic membership -------- *)
  let do_join ~gen =
    let before = total_walkers () in
    let id, incarnation =
      match List.sort compare !vacant with
      | v :: rest ->
          vacant := rest;
          (v, Option.value ~default:0 (Hashtbl.find_opt incarnations v))
      | [] ->
          let id = !next_id in
          incr next_id;
          (id, 0)
    in
    let cfg = rank_config p ~rank:id ~incarnation ~after:gen in
    let fresh = fork_rank ~factory ~cfg ~init:None ~all_fds:(all_fds ()) in
    Hashtbl.replace members id fresh;
    failed_this_gen := List.filter (fun x -> x <> id) !failed_this_gen;
    let ok =
      match
        recv_expect ~timeout:(startup_timeout p) id (function
          | Wire.Hello _ -> Some ()
          | _ -> None)
      with
      | None -> false
      | Some () -> (
          ignore
            (guard id (fun s ->
                 Wire.send s.w_fd (Wire.Join { gen; e_trial = !e_trial })));
          match
            recv_expect ~timeout:(startup_timeout p) id (function
              | Wire.Ack { ok; _ } -> Some ok
              | _ -> None)
          with
          | Some true -> true
          | _ -> false)
    in
    if not ok then begin
      (* The joiner never came up: restore the vacancy (with a fresh
         incarnation so a retry gets its own RNG block) and move on —
         an elastic run must not die because a grow step failed. *)
      (match find id with
      | Some s when not s.fds_closed ->
          close_fd s.r_fd;
          close_fd s.w_fd;
          s.fds_closed <- true;
          reap s.pid
      | _ -> ());
      Hashtbl.remove members id;
      vacant := id :: !vacant;
      Hashtbl.replace incarnations id (incarnation + 1);
      incr skipped
    end
    else begin
      (proc id).count <- 0;
      relay_exchange ~gen (live ());
      incr joins;
      Metrics.inc (Metrics.counter "sup.joins");
      Trace.instant ~args:[ ("rank", string_of_int id) ] "sup.join";
      let m =
        {
          m_gen = gen;
          m_kind = "join";
          m_rank = id;
          m_live = List.length (List.filter ok_rank (live ()));
          m_walkers_before = before;
          m_walkers_after = total_walkers ();
        }
      in
      membership_log := m :: !membership_log;
      emit_event (membership_json m)
    end
  in
  let do_leave ~gen r =
    if (not (ok_rank r)) || List.length (List.filter ok_rank (live ())) <= 1
    then begin
      incr skipped;
      Trace.instant ~args:[ ("rank", string_of_int r) ] "sup.leave_skipped"
    end
    else begin
      let before = total_walkers () in
      let s = proc r in
      let incarnation = s.incarnation in
      let drained =
        guard r (fun s ->
            Wire.send s.w_fd (Wire.Drain { gen });
            let ws =
              match Wire.recv ~timeout:hb s.r_fd with
              | Wire.Walkers { walkers; _ } -> walkers
              | _ -> raise (Wire.Garbage "expected drain batch")
            in
            (match Wire.recv ~timeout:hb s.r_fd with
            | Wire.Leave { count; _ } when count = List.length ws -> ()
            | _ -> raise (Wire.Garbage "drain count mismatch"));
            Wire.send s.w_fd Wire.Finish;
            (match Wire.recv ~timeout:(startup_timeout p) s.r_fd with
            | Wire.Final { acc = a; prop = pr; trace; _ } ->
                acc_left := !acc_left + a;
                prop_left := !prop_left + pr;
                if trace <> "" then (
                  try Trace.ingest ~pid:r trace with Trace.Malformed -> ())
            | _ -> raise (Wire.Garbage "expected final"));
            ws)
      in
      match drained with
      | None ->
          (* The rank died mid-drain: [guard] already reaped it and its
             shard walkers are gone until the next checkpoint salvage.
             Record the slot as vacant so a later join can refill it. *)
          Hashtbl.remove members r;
          vacant := r :: !vacant;
          Hashtbl.replace incarnations r (incarnation + 1);
          incr skipped
      | Some ws ->
          close_fd s.r_fd;
          close_fd s.w_fd;
          s.fds_closed <- true;
          waitpid_robust s.pid;
          Hashtbl.remove members r;
          Ledger.drop_rank ledger ~rank:r;
          Hashtbl.remove rank_prop r;
          vacant := r :: !vacant;
          Hashtbl.replace incarnations r (incarnation + 1);
          (match List.filter ok_rank (live ()) with
          | [] -> ()
          | dst :: _ ->
              List.iter
                (fun w ->
                  incr comm_messages;
                  comm_bytes := !comm_bytes + Walker.message_bytes w)
                ws;
              if ws <> [] then
                ignore
                  (guard dst (fun sd ->
                       Wire.send sd.w_fd (Wire.Walkers { gen; walkers = ws });
                       sd.count <- sd.count + List.length ws)));
          incr leaves;
          Metrics.inc (Metrics.counter "sup.leaves");
          Trace.instant ~args:[ ("rank", string_of_int r) ] "sup.leave";
          let m =
            {
              m_gen = gen;
              m_kind = "leave";
              m_rank = r;
              m_live = List.length (List.filter ok_rank (live ()));
              m_walkers_before = before;
              m_walkers_after = total_walkers ();
            }
          in
          membership_log := m :: !membership_log;
          emit_event (membership_json m)
    end
  in
  (* -------- generation loop -------- *)
  let gen_ref = ref 1 in
  let job_drained = ref false in
  while (not !job_drained) && !gen_ref <= total_gens do
    let gen = !gen_ref in
    Trace.with_span ~args:[ ("gen", string_of_int gen) ] "sup.generation"
    @@ fun () ->
    let gen_t0 = Oqmc_containers.Timers.now () in
    cur_gen := gen;
    failed_this_gen := [];
    rtt_max := 0.;
    let participants = live () in
    (* Phase 1: open the generation. *)
    List.iter
      (fun r ->
        ignore
          (guard r (fun s ->
               s.begin_t <- Oqmc_containers.Timers.now ();
               Wire.send s.w_fd (Wire.Begin_gen { gen; e_trial = !e_trial }))))
      participants;
    (* Phase 2: arrival-order collection, ascending-order reduction. *)
    let arrivals = collect_phase2 ~gen participants in
    let wsum_t = ref 0. and esum_t = ref 0. and n_t = ref 0 in
    let acc_t = ref 0 and prop_t = ref 0 in
    let steal_from = ref [] in
    List.iter
      (fun r ->
        match Hashtbl.find_opt arrivals r with
        | None -> ()
        | Some (w, e, a, pr, n, kvs, arrival) ->
            wsum_t := !wsum_t +. w;
            esum_t := !esum_t +. e;
            acc_t := !acc_t + a;
            prop_t := !prop_t + pr;
            n_t := !n_t + n;
            let s = proc r in
            s.count <- n;
            Metrics.absorb_kvs
              (List.map
                 (fun (kind, key, value) -> { Metrics.kind; key; value })
                 kvs);
            (* Ledger feed: supervisor-side generation wall (Begin_gen
               send to Reduce arrival) over the rank's proposed-move
               delta. *)
            let gen_time = arrival -. s.begin_t in
            let before =
              Option.value ~default:0 (Hashtbl.find_opt rank_prop r)
            in
            Hashtbl.replace rank_prop r pr;
            Ledger.observe_gen ledger ~rank:r ~gen
              ~moves:(max 0 (pr - before)) ~wall_s:gen_time;
            (* Soft-deadline straggler check: the budget plus three
               smoothed RTTs of slack, so policy only fires on ranks
               genuinely slower than their own recent history. *)
            if p.gen_deadline_ms > 0 then begin
              let soft =
                (float_of_int p.gen_deadline_ms /. 1000.)
                +. (3. *. s.rtt_ewma)
              in
              if gen_time > soft then begin
                incr stragglers;
                Ledger.add_straggle ledger ~rank:r
                  ~seconds:(gen_time -. soft);
                s.straggles <- s.straggles + 1;
                Metrics.inc (Metrics.counter "sup.stragglers");
                Trace.instant
                  ~args:
                    [
                      ("rank", string_of_int r);
                      ("gen_ms", string_of_int (int_of_float (gen_time *. 1e3)));
                      ("policy", straggler_policy_name p.straggler_policy);
                    ]
                  "sup.straggler";
                match p.straggler_policy with
                | Warn -> ()
                | Steal -> steal_from := r :: !steal_from
                | Quarantine -> if s.straggles >= 3 then fail_rank r Stall
              end
              else s.straggles <- 0
            end)
      participants;
    let reduced = List.filter ok_rank participants in
    if reduced = [] then raise All_ranks_lost;
    if List.length reduced < p.ranks then incr degraded_generations;
    let e_gen = if !wsum_t > 0. then !esum_t /. !wsum_t else !e_trial in
    if gen > p.warmup then begin
      Stats.append energy_series e_gen;
      pop_series := !n_t :: !pop_series;
      samples := !samples + !n_t
    end;
    (* Per-generation acceptance from the cumulative move totals the
       ranks report; a respawned rank resets its totals, so the delta is
       clamped at zero for that generation. *)
    let gen_acc = max 0 (!acc_t - !prev_acc)
    and gen_prop = max 0 (!prop_t - !prev_prop) in
    prev_acc := !acc_t;
    prev_prop := !prop_t;
    (* Phase 3: branch, collect post-branch counts. *)
    List.iter
      (fun r -> ignore (guard r (fun s -> Wire.send s.w_fd (Wire.Branch { gen }))))
      reduced;
    List.iter
      (fun r ->
        match
          recv_expect r (function
            | Wire.Count { gen = g; n } when g = gen -> Some n
            | _ -> None)
        with
        | Some n -> (proc r).count <- n
        | None -> ())
      reduced;
    (* Phase 4: real load-balance exchange, relayed through the
       supervisor in deterministic plan order. *)
    relay_exchange ~gen reduced;
    (* Straggler stealing: shed a quarter of each flagged rank's shard
       to the currently fastest rank, AFTER the exchange so the plan
       stays deterministic. *)
    List.iter
      (fun r ->
        if ok_rank r then begin
          let k = (proc r).count / 4 in
          let candidates =
            List.filter (fun x -> ok_rank x && x <> r) (live ())
          in
          let fastest =
            List.fold_left
              (fun best x ->
                match best with
                | None -> Some x
                | Some b ->
                    if (proc x).rtt_ewma < (proc b).rtt_ewma then Some x
                    else best)
              None candidates
          in
          match fastest with
          | Some dst when k > 0 ->
              relay_move ~gen r dst k ~others:candidates;
              incr steals;
              Metrics.inc (Metrics.counter "sup.steals");
              Trace.instant
                ~args:
                  [
                    ("from", string_of_int r);
                    ("to", string_of_int dst);
                    ("walkers", string_of_int k);
                  ]
                "sup.steal"
          | _ -> ()
        end)
      (List.rev !steal_from);
    (* Phase 5: global trial-energy feedback from the reduced counts. *)
    let total =
      List.fold_left
        (fun a r -> if ok_rank r then a + (proc r).count else a)
        0 reduced
    in
    e_trial :=
      Population.trial_energy_update ~feedback:p.feedback ~tau:p.tau
        ~target:p.target_walkers ~population:total ~e_estimate:e_gen;
    (* Phase 6: sharded checkpoint round + manifest. *)
    (match p.checkpoint with
    | Some path when p.checkpoint_every > 0 && gen mod p.checkpoint_every = 0
      ->
        let acked = ref [] in
        List.iter
          (fun r ->
            ignore
              (guard r (fun s ->
                   Wire.send s.w_fd
                     (Wire.Checkpoint_cmd { gen; e_trial = !e_trial }))))
          (List.filter ok_rank reduced);
        List.iter
          (fun r ->
            match
              recv_expect r (function
                | Wire.Ack { gen = g; ok } when g = gen -> Some ok
                | _ -> None)
            with
            | Some true -> acked := r :: !acked
            | _ -> ())
          (List.filter ok_rank reduced);
        (try
           Checkpoint.save_manifest ~path ~gen ~ranks:(List.rev !acked) ()
         with Sys_error _ -> ())
    | _ -> ());
    (* Phase 7: recovery — respawn this generation's casualties, or
       degrade once the respawn budget is spent.  An abandoned slot is
       recorded VACANT, so a later membership Join can refill it with a
       fresh incarnation: degradation is reversible. *)
    List.iter
      (fun r ->
        let s = proc r in
        if s.incarnation >= p.max_respawn then begin
          s.dead <- true;
          ranks_failed := r :: !ranks_failed;
          Ledger.drop_rank ledger ~rank:r;
          Hashtbl.remove rank_prop r;
          vacant := r :: !vacant;
          Hashtbl.replace incarnations r (s.incarnation + 1);
          Metrics.inc (Metrics.counter "sup.ranks_abandoned");
          Trace.instant
            ~args:
              [
                ("rank", string_of_int r);
                ("incarnation", string_of_int s.incarnation);
              ]
            "sup.rank_abandoned";
          (* Salvage the lost shard from its newest valid checkpoint and
             spread it over the survivors. *)
          let salvaged =
            match p.checkpoint with
            | None -> []
            | Some path -> (
                match Checkpoint.load_latest_shard ~path ~rank:r with
                | _, (_, ws) -> ws
                | exception Checkpoint.Corrupt _ -> [])
          in
          let survivors = List.filter ok_rank (live ()) in
          match (salvaged, survivors) with
          | [], _ | _, [] -> ()
          | ws, survivors ->
              let k = List.length survivors in
              List.iteri
                (fun i dst ->
                    let mine =
                      List.filteri (fun j _ -> j mod k = i) ws
                    in
                    if mine <> [] then
                      ignore
                        (guard dst (fun sd ->
                             Wire.send sd.w_fd
                               (Wire.Walkers { gen; walkers = mine });
                             sd.count <- sd.count + List.length mine)))
                survivors
        end
        else begin
          incr respawns;
          let incarnation = s.incarnation + 1 in
          let backoff =
            p.respawn_backoff *. float_of_int (1 lsl (incarnation - 1))
          in
          Metrics.inc (Metrics.counter "sup.respawns");
          Trace.instant
            ~args:
              [
                ("rank", string_of_int r);
                ("incarnation", string_of_int incarnation);
                ("backoff_s", Printf.sprintf "%.3f" backoff);
              ]
            "sup.respawn";
          Unix.sleepf backoff;
          let init =
            match p.checkpoint with
            | None -> None
            | Some path -> (
                match Checkpoint.load_latest_shard ~path ~rank:r with
                | _, restored -> Some restored
                | exception Checkpoint.Corrupt _ -> None)
          in
          let cfg = rank_config p ~rank:r ~incarnation ~after:gen in
          let fresh = fork_rank ~factory ~cfg ~init ~all_fds:(all_fds ()) in
          Hashtbl.replace members r fresh;
          let startup = startup_timeout p in
          failed_this_gen := List.filter (fun x -> x <> r) !failed_this_gen;
          match
            recv_expect ~timeout:startup r (function
              | Wire.Hello _ -> Some ()
              | _ -> None)
          with
          | None -> (proc r).dead <- true; ranks_failed := r :: !ranks_failed
          | Some () -> (
              match init with
              | Some (_, ws) -> (proc r).count <- List.length ws
              | None -> (
                  (* No shard to restore: restart the rank from fresh
                     walkers at its ideal share of the target. *)
                  let want =
                    max 1 (p.target_walkers / max 1 (List.length (live ())))
                  in
                  ignore
                    (guard r (fun s2 ->
                         Wire.send s2.w_fd (Wire.Init { count = want })));
                  match
                    recv_expect ~timeout:startup r (function
                      | Wire.Reduce { gen = 0; n; _ } -> Some n
                      | _ -> None)
                  with
                  | Some n -> (proc r).count <- n
                  | None ->
                      (proc r).dead <- true;
                      ranks_failed := r :: !ranks_failed))
        end)
      (List.rev !failed_this_gen);
    if live () = [] then raise All_ranks_lost;
    let elapsed = Oqmc_containers.Timers.now () -. t0 in
    let acceptance =
      float_of_int gen_acc /. float_of_int (max 1 gen_prop)
    in
    let walkers_per_s =
      if elapsed > 0. then float_of_int !samples /. elapsed else 0.
    in
    let gen_record =
      Oqmc_obs.Jsonx.(Obj
         [
           ("gen", Num (float_of_int gen));
           ("e_gen", Num e_gen);
           ("e_trial", Num !e_trial);
           ("population", Num (float_of_int total));
           ("acceptance", Num acceptance);
           ("walkers_per_s", Num walkers_per_s);
           ("live_ranks", Num (float_of_int (List.length (live ()))));
           ("rtt_max_s", Num !rtt_max);
           ( "respawns",
             Num
               (float_of_int
                  (Metrics.counter_value
                     (Metrics.counter "sup.respawns"))) );
           ("wall_s", Num elapsed);
         ])
    in
    Flightrec.record "gen" gen_record;
    if gen > p.warmup then emit ~gen:(gen - p.warmup) gen_record;
    update_progress
      (Printf.sprintf
         "dmc[%d/%d ranks] gen %d/%d  E %+.6f  E_T %+.6f  pop %d  acc %.3f  %.0f w/s  lag %.1fms"
         (List.length (live ())) p.ranks gen total_gens e_gen !e_trial
         total acceptance walkers_per_s (1e3 *. !rtt_max));
    (* Membership events scheduled for this generation, applied after
       recovery so joins see a settled member set. *)
    if p.elastic then
      List.iter
        (fun (g, ev) ->
          if g = gen then
            match ev with
            | Join -> do_join ~gen
            | Leave r -> do_leave ~gen r)
        p.membership;
    let dt = Oqmc_containers.Timers.now () -. gen_t0 in
    Metrics.observe m_gen_s dt;
    gen_times := dt :: !gen_times;
    if gen mod ledger_emit_every = 0 then emit_event (ledger_event ~gen ledger);
    fire_window p gen;
    (* Graceful early drain: the [stop] poll ends the run at the next
       generation boundary and the normal finals collection below still
       runs, so a deadline-stopped job reports consistent partial
       estimators instead of dying mid-protocol. *)
    if stop () then job_drained := true;
    write_status ~force:(!job_drained || gen = total_gens) (fun () ->
        Oqmc_obs.Jsonx.(Obj
           [
             ("gen", Num (float_of_int gen));
             ("total_gens", Num (float_of_int total_gens));
             ("e_gen", Num e_gen);
             ("e_trial", Num !e_trial);
             ("population", Num (float_of_int total));
             ("live_ranks", Num (float_of_int (List.length (live ()))));
             ("walkers_per_s", Num walkers_per_s);
             ("wall_s", Num elapsed);
             ("ledger", Ledger.json ledger);
             ("audit", audit_json ());
           ]));
    incr gen_ref
  done;
  let last_gen = !gen_ref - 1 in
  (* -------- collect finals -------- *)
  let live_at_end = List.length (live ()) in
  let acc = ref !acc_left and prop = ref !prop_left in
  let final_walkers = ref [] in
  List.iter
    (fun r ->
      failed_this_gen := [];
      ignore (guard r (fun s -> Wire.send s.w_fd Wire.Finish));
      (match
         recv_expect ~timeout:(startup_timeout p) r (function
           | Wire.Final { acc = a; prop = pr; walkers; trace } ->
               Some (a, pr, walkers, trace)
           | _ -> None)
       with
      | Some (a, pr, walkers, trace) ->
          acc := !acc + a;
          prop := !prop + pr;
          (* Merge the rank's span ring into the supervisor's trace
             under the rank's id, so the exported timeline shows every
             process on its own track. *)
          (if trace <> "" then
             try Trace.ingest ~pid:r trace with Trace.Malformed -> ());
          final_walkers := !final_walkers @ walkers
      | None -> ());
      let s = proc r in
      if not s.fds_closed then begin
        close_fd s.r_fd;
        close_fd s.w_fd;
        s.fds_closed <- true;
        waitpid_robust s.pid;
        s.dead <- true
      end)
    (live ());
  let job_result =
    finalize ~p ~t0 ~energy_series ~pop_series:!pop_series
      ~comm_messages:!comm_messages ~comm_bytes:!comm_bytes
      ~respawns:!respawns ~heartbeat_timeouts:!hb_timeouts
      ~garbage_frames:!garbage_frames ~crashes:!crashes
      ~ranks_failed:!ranks_failed ~live_ranks:live_at_end
      ~degraded_generations:!degraded_generations ~joins:!joins
      ~leaves:!leaves ~stragglers:!stragglers ~steals:!steals
      ~membership_skipped:!skipped ~membership_log:!membership_log
      ~gen_times:!gen_times ~acc:!acc ~prop:!prop
      ~final_walkers:!final_walkers ~final_e_trial:!e_trial
  in
  {
    job_result;
    gens_done = last_gen;
    drained = !job_drained && last_gen < total_gens;
    resumed_from = 0;
  }
  with e ->
    (* Abort unwind — [All_ranks_lost], [Interrupted], startup failure:
       dump the flight recorder before [cleanup] closes the sinks. *)
    let bt = Printexc.get_raw_backtrace () in
    flight_dump p (Printexc.to_string e);
    Printexc.raise_with_backtrace e bt

let run ~(factory : int -> Engine_api.t) (p : params) : result =
  (run_ext ~factory ~stop:(fun () -> false) p).job_result

(* ---------- the reentrant per-job entry point ----------

   What the serve daemon calls once per accepted job.  Unlike [run] and
   [run_local] it NEVER installs signal handlers — the caller (a job
   runner process) owns its own signal policy and threads it through
   [stop] — and with [local = true] (the default) it can snapshot the
   full dynamical state every [snapshot_every] generations and resume
   bit-identically from the newest valid snapshot, which is how a
   crashed or suspended job continues without replaying work. *)
let run_job ~(factory : int -> Engine_api.t) ?(local = true)
    ?(stop = fun () -> false) ?snapshot ?(snapshot_every = 1) (p : params) :
    job_outcome =
  if snapshot <> None && not local then
    invalid_arg "Supervisor.run_job: snapshots require local execution";
  if local then
    run_local_ext ~factory ~handle_signals:false ~stop ~snapshot
      ~snapshot_every p
  else run_ext ~factory ~stop p
