open Oqmc_particle
open Oqmc_core
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry
module Progress = Oqmc_obs.Progress

(* Supervised multi-rank DMC execution.

   [run] forks N worker rank processes (Unix processes — real fault
   isolation: a segfault, OOM kill or poisoned domain takes down ONE
   rank, not the run) and drives them through a lockstep generation
   protocol over pipes (Wire):

     Begin_gen → (Heartbeat, Reduce) → Branch → Count
       → Give/Walkers relays (real load-balance exchange)
       → Checkpoint_cmd/Ack rounds → … → Finish/Final

   Robustness machinery, exercised deterministically by the Fault rank
   injectors:

   - every read of a rank carries the heartbeat deadline: a stalled rank
     surfaces as [Wire.Timeout], a crashed one as [Wire.Closed] (EOF,
     confirmed by [waitpid]), a corrupted stream as [Wire.Garbage];
   - a failed rank is SIGKILLed, reaped and respawned with exponential
     backoff from its newest *valid* checkpoint shard
     ([Checkpoint.load_latest_shard]) — or from fresh walkers when it
     never checkpointed — rejoining at the next generation;
   - after [max_respawn] respawns the rank is declared unrecoverable:
     its last shard is salvaged and redistributed over the survivors and
     the run continues degraded on N−1 ranks.  The mixed estimator
     Σw·E_L / Σw is self-normalizing, so dropping a rank's terms from a
     generation leaves the energy unbiased (see docs/ROBUSTNESS.md);
   - with zero injected faults the run is BIT-IDENTICAL to [run_local],
     the in-process reference executor over the same logical shards
     (asserted in test/test_dist.ml).

   The supervisor itself never spawns OCaml domains, so forking stays
   safe at any point of the run; callers must not hold live domains of
   their own across a [run] call. *)

type params = {
  ranks : int;
  target_walkers : int; (* global population target *)
  warmup : int;
  generations : int;
  tau : float;
  seed : int;
  n_domains : int; (* per rank *)
  feedback : float;
  heartbeat_s : float; (* per-message deadline on every rank read *)
  max_respawn : int; (* respawns per rank before it is abandoned *)
  respawn_backoff : float; (* base seconds, doubled per respawn *)
  checkpoint : string option;
  checkpoint_every : int;
  checkpoint_keep : int;
  restore : bool; (* resume from the newest complete shard generation *)
  faults : (int * int * Fault.rank_fault) list; (* rank, gen, fault *)
  trace : string option; (* Chrome trace_event JSON output path *)
  telemetry : string option; (* per-generation JSONL output path *)
  telemetry_every : int;
  progress : bool; (* live one-line progress on stderr *)
}

let default_params =
  {
    ranks = 4;
    target_walkers = 16;
    warmup = 20;
    generations = 100;
    tau = 0.01;
    seed = 11;
    n_domains = 1;
    feedback = 1.;
    heartbeat_s = 5.;
    max_respawn = 2;
    respawn_backoff = 0.05;
    checkpoint = None;
    checkpoint_every = 0;
    checkpoint_keep = 3;
    restore = false;
    faults = [];
    trace = None;
    telemetry = None;
    telemetry_every = 1;
    progress = false;
  }

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  acceptance : float;
  wall_time : float;
  mean_population : float;
  energy_series : float array;
  population_series : int array;
  comm_messages : int;
  comm_bytes : int;
  respawns : int;
  heartbeat_timeouts : int;
  garbage_frames : int;
  crashes : int;
  ranks_failed : int list; (* permanently lost, ascending *)
  live_ranks : int;
  degraded_generations : int;
  final_walkers : Walker.t list;
  final_e_trial : float;
}

exception All_ranks_lost

let validate p =
  if p.ranks < 1 then invalid_arg "Supervisor: ranks < 1";
  if p.target_walkers < p.ranks then
    invalid_arg "Supervisor: target_walkers < ranks";
  if p.heartbeat_s <= 0. then invalid_arg "Supervisor: heartbeat_s <= 0";
  if p.max_respawn < 0 then invalid_arg "Supervisor: max_respawn < 0"

(* Ideal initial split of the global target over the ranks. *)
let shard_counts ~target ~ranks =
  let per = target / ranks and extra = target mod ranks in
  Array.init ranks (fun r -> per + if r < extra then 1 else 0)

let rank_config (p : params) ~rank ~incarnation =
  {
    Rank.rank;
    ranks = p.ranks;
    seed = p.seed;
    tau = p.tau;
    target = p.target_walkers;
    n_domains = p.n_domains;
    checkpoint = p.checkpoint;
    checkpoint_keep = p.checkpoint_keep;
    incarnation;
    faults =
      List.filter_map
        (fun (r, g, f) -> if r = rank then Some (g, f) else None)
        p.faults;
  }

(* ---------- result statistics (shared by run and run_local) ---------- *)

let finalize ~p ~t0 ~energy_series ~pop_series ~comm_messages ~comm_bytes
    ~respawns ~heartbeat_timeouts ~garbage_frames ~crashes ~ranks_failed
    ~live_ranks ~degraded_generations ~acc ~prop ~final_walkers ~final_e_trial
    =
  ignore p;
  let wall_time = Oqmc_containers.Timers.now () -. t0 in
  let energy = Stats.series_mean energy_series in
  let variance = Stats.series_variance energy_series in
  let pops = Array.of_list (List.rev pop_series) in
  {
    energy;
    energy_error = Stats.series_error energy_series;
    variance;
    tau_corr = Stats.autocorrelation_time energy_series;
    acceptance = float_of_int acc /. float_of_int (max 1 prop);
    wall_time;
    mean_population =
      (if Array.length pops = 0 then 0.
       else
         float_of_int (Array.fold_left ( + ) 0 pops)
         /. float_of_int (Array.length pops));
    energy_series = Stats.to_array energy_series;
    population_series = pops;
    comm_messages;
    comm_bytes;
    respawns;
    heartbeat_timeouts;
    garbage_frames;
    crashes;
    ranks_failed = List.sort compare ranks_failed;
    live_ranks;
    degraded_generations;
    final_walkers;
    final_e_trial;
  }

(* ---------- observability plumbing (shared by run and run_local) ----------

   Enables tracing when a trace path is requested (forked ranks inherit
   the enabled flag, so this must happen BEFORE any fork), opens the
   JSONL sink and the live progress line, and hands back emit/update
   callbacks plus a [close] that flushes and exports everything.  None
   of it touches the physics or the RNG streams. *)
let obs_setup (p : params) =
  if p.trace <> None && not (Trace.enabled ()) then Trace.enable ();
  let sink = Option.map Telemetry.create p.telemetry in
  let prog = if p.progress then Some (Progress.create ()) else None in
  let every = max 1 p.telemetry_every in
  let emit ~gen record =
    match sink with
    | Some s when gen mod every = 0 -> Telemetry.emit s record
    | _ -> ()
  in
  let update line =
    match prog with Some pr -> Progress.update pr line | None -> ()
  in
  let close () =
    (match prog with Some pr -> Progress.finish pr | None -> ());
    (match sink with Some s -> Telemetry.close s | None -> ());
    match p.trace with Some path -> Trace.export ~path | None -> ()
  in
  (emit, update, close)

(* ---------- in-process reference executor ---------- *)

(* The same rank-sharded algorithm as [run], executed over logical
   shards inside this process: no fork, no pipes, no serialization.
   This is the oracle the forked path is asserted bit-identical
   against — and a convenient single-process driver for rank-shaped
   runs. *)
let run_local ~(factory : int -> Engine_api.t) (p : params) : result =
  validate p;
  let emit, update_progress, obs_close = obs_setup p in
  Fun.protect ~finally:obs_close @@ fun () ->
  let counts = shard_counts ~target:p.target_walkers ~ranks:p.ranks in
  let shards =
    Array.init p.ranks (fun r ->
        Rank.init_shard ~factory ~count:counts.(r) ~e_trial:0.
          (rank_config p ~rank:r ~incarnation:0))
  in
  Fun.protect
    ~finally:(fun () -> Array.iter Rank.shutdown_shard shards)
  @@ fun () ->
  (* Global starting trial energy from the per-rank initial sums,
     reduced in ascending rank order. *)
  let w0 = ref 0. and e0 = ref 0. in
  Array.iter
    (fun s ->
      let w, e = Rank.initial_sums s in
      w0 := !w0 +. w;
      e0 := !e0 +. e)
    shards;
  let e_trial = ref (if !w0 > 0. then !e0 /. !w0 else 0.) in
  let energy_series = Stats.make_series () in
  let pop_series = ref [] in
  let comm_messages = ref 0 and comm_bytes = ref 0 in
  let t0 = Oqmc_containers.Timers.now () in
  let samples = ref 0 in
  let total_gens = p.warmup + p.generations in
  for gen = 1 to total_gens do
    Trace.with_span ~args:[ ("gen", string_of_int gen) ] "sup.generation"
    @@ fun () ->
    let measuring = gen > p.warmup in
    let wsum_t = ref 0. and esum_t = ref 0. and n_t = ref 0 in
    Array.iter
      (fun s ->
        let w, e = Rank.sweep s ~gen ~e_trial:!e_trial in
        wsum_t := !wsum_t +. w;
        esum_t := !esum_t +. e;
        n_t := !n_t + Population.size (Rank.pop s))
      shards;
    let e_gen = if !wsum_t > 0. then !esum_t /. !wsum_t else !e_trial in
    if measuring then begin
      Stats.append energy_series e_gen;
      pop_series := !n_t :: !pop_series;
      samples := !samples + !n_t
    end;
    Array.iter Rank.branch shards;
    let report = Population.exchange (Array.map Rank.pop shards) in
    comm_messages := !comm_messages + report.Population.messages;
    comm_bytes := !comm_bytes + report.Population.bytes;
    let total =
      Array.fold_left (fun a s -> a + Population.size (Rank.pop s)) 0 shards
    in
    e_trial :=
      Population.trial_energy_update ~feedback:p.feedback ~tau:p.tau
        ~target:p.target_walkers ~population:total ~e_estimate:e_gen;
    (match p.checkpoint with
    | Some path when p.checkpoint_every > 0 && gen mod p.checkpoint_every = 0
      ->
        let acked = ref [] in
        Array.iteri
          (fun r s ->
            try
              Checkpoint.save_shard ~keep:p.checkpoint_keep ~path ~rank:r
                ~gen ~e_trial:!e_trial
                (Population.walkers (Rank.pop s));
              acked := r :: !acked
            with Sys_error _ | Checkpoint.Corrupt _ -> ())
          shards;
        (try
           Checkpoint.save_manifest ~path ~gen ~ranks:(List.rev !acked) ()
         with Sys_error _ -> ())
    | _ -> ());
    let elapsed = Oqmc_containers.Timers.now () -. t0 in
    if measuring then
      emit ~gen:(gen - p.warmup)
        Oqmc_obs.Jsonx.(Obj
           [
             ("gen", Num (float_of_int gen));
             ("e_gen", Num e_gen);
             ("e_trial", Num !e_trial);
             ("population", Num (float_of_int total));
             ("ranks", Num (float_of_int p.ranks));
             ( "walkers_per_s",
               Num
                 (if elapsed > 0. then float_of_int !samples /. elapsed
                  else 0.) );
             ("wall_s", Num elapsed);
           ]);
    update_progress
      (Printf.sprintf "dmc[local %d ranks] gen %d/%d  E %+.6f  E_T %+.6f  pop %d"
         p.ranks gen total_gens e_gen !e_trial total)
  done;
  let acc = ref 0 and prop = ref 0 in
  Array.iter
    (fun s ->
      let a, pr = Rank.move_totals s in
      acc := !acc + a;
      prop := !prop + pr)
    shards;
  let final_walkers =
    Array.to_list shards
    |> List.concat_map (fun s -> Population.walkers (Rank.pop s))
  in
  finalize ~p ~t0 ~energy_series ~pop_series:!pop_series
    ~comm_messages:!comm_messages ~comm_bytes:!comm_bytes ~respawns:0
    ~heartbeat_timeouts:0 ~garbage_frames:0 ~crashes:0 ~ranks_failed:[]
    ~live_ranks:p.ranks ~degraded_generations:0 ~acc:!acc ~prop:!prop
    ~final_walkers ~final_e_trial:!e_trial

(* ---------- forked execution ---------- *)

type proc = {
  id : int;
  mutable pid : int;
  mutable r_fd : Unix.file_descr; (* supervisor reads rank output here *)
  mutable w_fd : Unix.file_descr; (* supervisor writes commands here *)
  mutable dead : bool; (* permanently abandoned *)
  mutable fds_closed : bool; (* pipe ends already closed (torn down) *)
  mutable incarnation : int;
  mutable count : int; (* last known shard size *)
}

(* Why the rank failed: drives the failure counters. *)
type failure = Crash | Stall | Corrupt_stream

let startup_timeout (p : params) = Float.max 30. (10. *. p.heartbeat_s)

let reap pid =
  (try Unix.kill pid Sys.sigkill
   with Unix.Unix_error ((Unix.ESRCH | Unix.EPERM), _, _) -> ());
  try ignore (Unix.waitpid [] pid)
  with Unix.Unix_error (Unix.ECHILD, _, _) -> ()

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one rank.  [all_fds] are every other live pipe end: the child
   must close them, or a crashed sibling's EOF would never surface.
   The child builds its engines, runs the protocol and _exits without
   touching the parent's buffered channels. *)
let fork_rank ~(factory : int -> Engine_api.t) ~cfg ~init ~all_fds =
  let sup_r, rank_w = Unix.pipe ~cloexec:false () in
  let rank_r, sup_w = Unix.pipe ~cloexec:false () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      close_fd sup_r;
      close_fd sup_w;
      List.iter close_fd all_fds;
      let code =
        try
          Rank.serve ~cfg ~factory ~init ~fd_in:rank_r ~fd_out:rank_w;
          0
        with _ -> 3
      in
      Unix._exit code
  | pid ->
      close_fd rank_r;
      close_fd rank_w;
      {
        id = cfg.Rank.rank;
        pid;
        r_fd = sup_r;
        w_fd = sup_w;
        dead = false;
        fds_closed = false;
        incarnation = cfg.Rank.incarnation;
        count = 0;
      }

let run ~(factory : int -> Engine_api.t) (p : params) : result =
  validate p;
  (* Observability must attach BEFORE any fork so children inherit the
     tracing-enabled flag; the supervisor's own spans carry pid -1,
     rank blobs are ingested under their rank id at Final time. *)
  let emit, update_progress, obs_close = obs_setup p in
  if Trace.enabled () then Trace.set_rank (-1);
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let states : proc option array = Array.make p.ranks None in
  (* Every pipe end still OPEN in the supervisor: the set a fresh child
     must close.  Torn-down fds must be excluded — their numbers get
     reused by the very pipes the new child is being given. *)
  let all_fds () =
    Array.to_list states
    |> List.concat_map (function
         | Some s when not s.fds_closed -> [ s.r_fd; s.w_fd ]
         | _ -> [])
  in
  let cleanup () =
    Array.iter
      (function
        | Some s when not s.fds_closed ->
            close_fd s.r_fd;
            close_fd s.w_fd;
            s.fds_closed <- true;
            reap s.pid
        | _ -> ())
      states;
    Sys.set_signal Sys.sigpipe old_sigpipe;
    obs_close ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let hb = p.heartbeat_s in
  let respawns = ref 0 in
  let hb_timeouts = ref 0 and garbage_frames = ref 0 and crashes = ref 0 in
  let ranks_failed = ref [] in
  let degraded_generations = ref 0 in
  let comm_messages = ref 0 and comm_bytes = ref 0 in
  let energy_series = Stats.make_series () in
  let pop_series = ref [] in
  (* -------- spawn + initial ensemble -------- *)
  let restore_init =
    if not p.restore then None
    else
      match p.checkpoint with
      | None -> None
      | Some path -> (
          match Checkpoint.latest_complete ~path ~ranks:p.ranks with
          | None -> None
          | Some gen ->
              Some
                (Array.init p.ranks (fun r ->
                     Checkpoint.load_shard ~path ~rank:r ~gen)))
  in
  let counts = shard_counts ~target:p.target_walkers ~ranks:p.ranks in
  for r = 0 to p.ranks - 1 do
    let cfg = rank_config p ~rank:r ~incarnation:0 in
    let init = Option.map (fun shards -> shards.(r)) restore_init in
    let s = fork_rank ~factory ~cfg ~init ~all_fds:(all_fds ()) in
    states.(r) <- Some s
  done;
  let proc r = Option.get states.(r) in
  let live () =
    List.filter (fun r -> not (proc r).dead) (List.init p.ranks Fun.id)
  in
  (* Record a failure and tear the process down; respawn happens at the
     end of the generation so surviving ranks stay in lockstep. *)
  let failed_this_gen = ref [] in
  let fail_rank r why =
    let s = proc r in
    if not s.dead && not (List.mem r !failed_this_gen) then begin
      let reason =
        match why with
        | Crash -> incr crashes; "crash"
        | Stall -> incr hb_timeouts; "stall"
        | Corrupt_stream -> incr garbage_frames; "garbage"
      in
      Metrics.inc (Metrics.counter ("sup.rank_failures." ^ reason));
      Trace.instant
        ~args:[ ("rank", string_of_int r); ("reason", reason) ]
        "sup.rank_failed";
      close_fd s.r_fd;
      close_fd s.w_fd;
      s.fds_closed <- true;
      reap s.pid;
      failed_this_gen := r :: !failed_this_gen
    end
  in
  let ok_rank r =
    (not (proc r).dead) && not (List.mem r !failed_this_gen)
  in
  (* Run [f] against rank [r], converting wire failures into rank
     failures.  Returns [None] when the rank just failed. *)
  let guard r f =
    if not (ok_rank r) then None
    else
      match f (proc r) with
      | v -> Some v
      | exception Wire.Closed -> fail_rank r Crash; None
      | exception Wire.Timeout -> fail_rank r Stall; None
      | exception Wire.Garbage _ -> fail_rank r Corrupt_stream; None
      | exception Unix.Unix_error (Unix.EPIPE, _, _) ->
          fail_rank r Crash; None
  in
  let recv_expect ?(timeout = hb) r match_ =
    guard r (fun s ->
        let m = Wire.recv ~timeout s.r_fd in
        match match_ m with
        | Some v -> v
        | None -> raise (Wire.Garbage "unexpected frame"))
  in
  (* -------- handshake: Hello (+ Init reduce on fresh spawns) -------- *)
  let startup = startup_timeout p in
  let w0 = ref 0. and e0 = ref 0. in
  for r = 0 to p.ranks - 1 do
    ignore
      (recv_expect ~timeout:startup r (function
        | Wire.Hello _ -> Some ()
        | _ -> None))
  done;
  (match restore_init with
  | Some shards ->
      Array.iteri (fun r (_, ws) -> (proc r).count <- List.length ws) shards
  | None ->
      for r = 0 to p.ranks - 1 do
        ignore
          (guard r (fun s -> Wire.send s.w_fd (Wire.Init { count = counts.(r) })))
      done;
      for r = 0 to p.ranks - 1 do
        match
          recv_expect ~timeout:startup r (function
            | Wire.Reduce { gen = 0; wsum; esum; n; _ } -> Some (wsum, esum, n)
            | _ -> None)
        with
        | Some (w, e, n) ->
            w0 := !w0 +. w;
            e0 := !e0 +. e;
            (proc r).count <- n
        | None -> ()
      done);
  let e_trial =
    ref
      (match restore_init with
      | Some shards -> fst shards.(0)
      | None -> if !w0 > 0. then !e0 /. !w0 else 0.)
  in
  if !failed_this_gen <> [] then
    (* A rank that cannot even start is not worth respawning: fail fast
       rather than mask a broken factory. *)
    failwith "Supervisor: rank startup failed";
  let t0 = Oqmc_containers.Timers.now () in
  let total_gens = p.warmup + p.generations in
  (* Heartbeat RTT is measured supervisor-side — Begin_gen send to
     Heartbeat receipt — so the wire protocol needs no clock exchange. *)
  let m_rtt = Metrics.histogram "sup.heartbeat_rtt_s" in
  let begin_sent = Array.make p.ranks 0. in
  let prev_acc = ref 0 and prev_prop = ref 0 in
  let samples = ref 0 in
  for gen = 1 to total_gens do
    Trace.with_span ~args:[ ("gen", string_of_int gen) ] "sup.generation"
    @@ fun () ->
    failed_this_gen := [];
    let participants = live () in
    (* Phase 1: open the generation. *)
    List.iter
      (fun r ->
        ignore
          (guard r (fun s ->
               begin_sent.(r) <- Oqmc_containers.Timers.now ();
               Wire.send s.w_fd (Wire.Begin_gen { gen; e_trial = !e_trial }))))
      participants;
    (* Phase 2: heartbeat + shard reduction, ascending rank order so the
       float reduction matches [run_local] exactly. *)
    let wsum_t = ref 0. and esum_t = ref 0. and n_t = ref 0 in
    let acc_t = ref 0 and prop_t = ref 0 in
    let rtt_max = ref 0. in
    List.iter
      (fun r ->
        (match
           recv_expect r (function
             | Wire.Heartbeat _ -> Some ()
             | _ -> None)
         with
        | Some () ->
            let rtt = Oqmc_containers.Timers.now () -. begin_sent.(r) in
            Metrics.observe m_rtt rtt;
            rtt_max := Float.max !rtt_max rtt;
            Trace.instant
              ~args:
                [
                  ("rank", string_of_int r);
                  ("rtt_us", string_of_int (int_of_float (rtt *. 1e6)));
                ]
              "sup.heartbeat"
        | None -> ());
        match
          recv_expect r (function
            | Wire.Reduce { gen = g; wsum; esum; acc; prop; n; telemetry }
              when g = gen ->
                Some (wsum, esum, acc, prop, n, telemetry)
            | _ -> None)
        with
        | Some (w, e, a, pr, n, kvs) ->
            wsum_t := !wsum_t +. w;
            esum_t := !esum_t +. e;
            acc_t := !acc_t + a;
            prop_t := !prop_t + pr;
            n_t := !n_t + n;
            (proc r).count <- n;
            Metrics.absorb_kvs
              (List.map
                 (fun (kind, key, value) -> { Metrics.kind; key; value })
                 kvs)
        | None -> ())
      participants;
    let reduced = List.filter ok_rank participants in
    if reduced = [] then raise All_ranks_lost;
    if List.length reduced < p.ranks then incr degraded_generations;
    let e_gen = if !wsum_t > 0. then !esum_t /. !wsum_t else !e_trial in
    if gen > p.warmup then begin
      Stats.append energy_series e_gen;
      pop_series := !n_t :: !pop_series;
      samples := !samples + !n_t
    end;
    (* Per-generation acceptance from the cumulative move totals the
       ranks report; a respawned rank resets its totals, so the delta is
       clamped at zero for that generation. *)
    let gen_acc = max 0 (!acc_t - !prev_acc)
    and gen_prop = max 0 (!prop_t - !prev_prop) in
    prev_acc := !acc_t;
    prev_prop := !prop_t;
    (* Phase 3: branch, collect post-branch counts. *)
    List.iter
      (fun r -> ignore (guard r (fun s -> Wire.send s.w_fd (Wire.Branch { gen }))))
      reduced;
    List.iter
      (fun r ->
        match
          recv_expect r (function
            | Wire.Count { gen = g; n } when g = gen -> Some n
            | _ -> None)
        with
        | Some n -> (proc r).count <- n
        | None -> ())
      reduced;
    (* Phase 4: real load-balance exchange, relayed through the
       supervisor in deterministic plan order. *)
    let balanced = List.filter ok_rank reduced in
    let ids = Array.of_list balanced in
    let plan_counts = Array.map (fun r -> (proc r).count) ids in
    let moves = Population.plan plan_counts in
    List.iter
      (fun { Population.src; dst; count } ->
        let rs = ids.(src) and rd = ids.(dst) in
        match
          guard rs (fun s ->
              Wire.send s.w_fd (Wire.Give { gen; count });
              match Wire.recv ~timeout:hb s.r_fd with
              | Wire.Walkers { walkers; _ } -> walkers
              | _ -> raise (Wire.Garbage "expected walker batch"))
        with
        | None -> ()
        | Some walkers ->
            (proc rs).count <- (proc rs).count - List.length walkers;
            List.iter
              (fun w ->
                incr comm_messages;
                comm_bytes := !comm_bytes + Walker.message_bytes w)
              walkers;
            let deliver rank =
              guard rank (fun s ->
                  Wire.send s.w_fd (Wire.Walkers { gen; walkers });
                  s.count <- s.count + List.length walkers)
            in
            (match deliver rd with
            | Some () -> ()
            | None -> (
                (* The destination just died: reroute the batch to the
                   first other healthy rank rather than lose walkers. *)
                match
                  List.find_opt (fun r -> ok_rank r && r <> rd) balanced
                with
                | Some alt -> ignore (deliver alt)
                | None -> ())))
      moves;
    (* Phase 5: global trial-energy feedback from the reduced counts. *)
    let total =
      List.fold_left
        (fun a r -> if ok_rank r then a + (proc r).count else a)
        0 reduced
    in
    e_trial :=
      Population.trial_energy_update ~feedback:p.feedback ~tau:p.tau
        ~target:p.target_walkers ~population:total ~e_estimate:e_gen;
    (* Phase 6: sharded checkpoint round + manifest. *)
    (match p.checkpoint with
    | Some path when p.checkpoint_every > 0 && gen mod p.checkpoint_every = 0
      ->
        let acked = ref [] in
        List.iter
          (fun r ->
            ignore
              (guard r (fun s ->
                   Wire.send s.w_fd
                     (Wire.Checkpoint_cmd { gen; e_trial = !e_trial }))))
          (List.filter ok_rank reduced);
        List.iter
          (fun r ->
            match
              recv_expect r (function
                | Wire.Ack { gen = g; ok } when g = gen -> Some ok
                | _ -> None)
            with
            | Some true -> acked := r :: !acked
            | _ -> ())
          (List.filter ok_rank reduced);
        (try
           Checkpoint.save_manifest ~path ~gen ~ranks:(List.rev !acked) ()
         with Sys_error _ -> ())
    | _ -> ());
    (* Phase 7: recovery — respawn this generation's casualties, or
       degrade permanently once the respawn budget is spent. *)
    List.iter
      (fun r ->
        let s = proc r in
        if s.incarnation >= p.max_respawn then begin
          s.dead <- true;
          ranks_failed := r :: !ranks_failed;
          Metrics.inc (Metrics.counter "sup.ranks_abandoned");
          Trace.instant
            ~args:
              [
                ("rank", string_of_int r);
                ("incarnation", string_of_int s.incarnation);
              ]
            "sup.rank_abandoned";
          (* Salvage the lost shard from its newest valid checkpoint and
             spread it over the survivors. *)
          let salvaged =
            match p.checkpoint with
            | None -> []
            | Some path -> (
                match Checkpoint.load_latest_shard ~path ~rank:r with
                | _, (_, ws) -> ws
                | exception Checkpoint.Corrupt _ -> [])
          in
          let survivors = List.filter ok_rank (live ()) in
          match (salvaged, survivors) with
          | [], _ | _, [] -> ()
          | ws, survivors ->
              let k = List.length survivors in
              List.iteri
                (fun i dst ->
                    let mine =
                      List.filteri (fun j _ -> j mod k = i) ws
                    in
                    if mine <> [] then
                      ignore
                        (guard dst (fun sd ->
                             Wire.send sd.w_fd
                               (Wire.Walkers { gen; walkers = mine });
                             sd.count <- sd.count + List.length mine)))
                survivors
        end
        else begin
          incr respawns;
          let incarnation = s.incarnation + 1 in
          let backoff =
            p.respawn_backoff *. float_of_int (1 lsl (incarnation - 1))
          in
          Metrics.inc (Metrics.counter "sup.respawns");
          Trace.instant
            ~args:
              [
                ("rank", string_of_int r);
                ("incarnation", string_of_int incarnation);
                ("backoff_s", Printf.sprintf "%.3f" backoff);
              ]
            "sup.respawn";
          Unix.sleepf backoff;
          let init =
            match p.checkpoint with
            | None -> None
            | Some path -> (
                match Checkpoint.load_latest_shard ~path ~rank:r with
                | _, restored -> Some restored
                | exception Checkpoint.Corrupt _ -> None)
          in
          let cfg = rank_config p ~rank:r ~incarnation in
          let fresh = fork_rank ~factory ~cfg ~init ~all_fds:(all_fds ()) in
          states.(r) <- Some fresh;
          let startup = startup_timeout p in
          failed_this_gen := List.filter (fun x -> x <> r) !failed_this_gen;
          match
            recv_expect ~timeout:startup r (function
              | Wire.Hello _ -> Some ()
              | _ -> None)
          with
          | None -> (proc r).dead <- true; ranks_failed := r :: !ranks_failed
          | Some () -> (
              match init with
              | Some (_, ws) -> (proc r).count <- List.length ws
              | None -> (
                  (* No shard to restore: restart the rank from fresh
                     walkers at its ideal share of the target. *)
                  let want =
                    max 1 (p.target_walkers / max 1 (List.length (live ())))
                  in
                  ignore
                    (guard r (fun s2 ->
                         Wire.send s2.w_fd (Wire.Init { count = want })));
                  match
                    recv_expect ~timeout:startup r (function
                      | Wire.Reduce { gen = 0; n; _ } -> Some n
                      | _ -> None)
                  with
                  | Some n -> (proc r).count <- n
                  | None ->
                      (proc r).dead <- true;
                      ranks_failed := r :: !ranks_failed))
        end)
      (List.rev !failed_this_gen);
    if live () = [] then raise All_ranks_lost;
    let elapsed = Oqmc_containers.Timers.now () -. t0 in
    let acceptance =
      float_of_int gen_acc /. float_of_int (max 1 gen_prop)
    in
    let walkers_per_s =
      if elapsed > 0. then float_of_int !samples /. elapsed else 0.
    in
    if gen > p.warmup then
      emit ~gen:(gen - p.warmup)
        Oqmc_obs.Jsonx.(Obj
           [
             ("gen", Num (float_of_int gen));
             ("e_gen", Num e_gen);
             ("e_trial", Num !e_trial);
             ("population", Num (float_of_int total));
             ("acceptance", Num acceptance);
             ("walkers_per_s", Num walkers_per_s);
             ("live_ranks", Num (float_of_int (List.length (live ()))));
             ("rtt_max_s", Num !rtt_max);
             ( "respawns",
               Num
                 (float_of_int
                    (Metrics.counter_value
                       (Metrics.counter "sup.respawns"))) );
             ("wall_s", Num elapsed);
           ]);
    update_progress
      (Printf.sprintf
         "dmc[%d/%d ranks] gen %d/%d  E %+.6f  E_T %+.6f  pop %d  acc %.3f  %.0f w/s  lag %.1fms"
         (List.length (live ())) p.ranks gen total_gens e_gen !e_trial
         total acceptance walkers_per_s (1e3 *. !rtt_max))
  done;
  (* -------- collect finals -------- *)
  let acc = ref 0 and prop = ref 0 in
  let final_walkers = ref [] in
  List.iter
    (fun r ->
      failed_this_gen := [];
      ignore (guard r (fun s -> Wire.send s.w_fd Wire.Finish));
      (match
         recv_expect ~timeout:(startup_timeout p) r (function
           | Wire.Final { acc = a; prop = pr; walkers; trace } ->
               Some (a, pr, walkers, trace)
           | _ -> None)
       with
      | Some (a, pr, walkers, trace) ->
          acc := !acc + a;
          prop := !prop + pr;
          (* Merge the rank's span ring into the supervisor's trace
             under the rank's id, so the exported timeline shows every
             process on its own track. *)
          (if trace <> "" then
             try Trace.ingest ~pid:r trace with Trace.Malformed -> ());
          final_walkers := !final_walkers @ walkers
      | None -> ());
      let s = proc r in
      if not s.fds_closed then begin
        close_fd s.r_fd;
        close_fd s.w_fd;
        s.fds_closed <- true;
        (try ignore (Unix.waitpid [] s.pid)
         with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
        s.dead <- true
      end)
    (live ());
  finalize ~p ~t0 ~energy_series ~pop_series:!pop_series
    ~comm_messages:!comm_messages ~comm_bytes:!comm_bytes ~respawns:!respawns
    ~heartbeat_timeouts:!hb_timeouts ~garbage_frames:!garbage_frames
    ~crashes:!crashes ~ranks_failed:!ranks_failed
    ~live_ranks:(p.ranks - List.length !ranks_failed)
    ~degraded_generations:!degraded_generations ~acc:!acc ~prop:!prop
    ~final_walkers:!final_walkers ~final_e_trial:!e_trial
