open Oqmc_particle
open Oqmc_core

(** Supervised multi-rank DMC execution: a single-threaded supervisor
    forks N worker rank processes, drives them through a lockstep
    generation protocol ({!Wire}) with per-read heartbeat deadlines,
    performs real walker exchange for load balance, and recovers from
    rank crashes, stalls and corrupted streams by respawning from
    per-rank checkpoint shards — degrading gracefully to N−1 ranks when
    the respawn budget is exhausted.  With zero injected faults [run]
    is bit-identical to {!run_local}, the in-process reference executor
    over the same logical shards. *)

type params = {
  ranks : int;
  target_walkers : int;  (** global population target *)
  warmup : int;
  generations : int;
  tau : float;
  seed : int;
  n_domains : int;  (** worker domains per rank *)
  feedback : float;
  heartbeat_s : float;  (** deadline on every read from a rank *)
  max_respawn : int;  (** respawns per rank before it is abandoned *)
  respawn_backoff : float;  (** base seconds, doubled per respawn *)
  checkpoint : string option;
  checkpoint_every : int;
  checkpoint_keep : int;
  restore : bool;  (** resume from the newest complete shard generation *)
  faults : (int * int * Fault.rank_fault) list;
      (** (rank, generation, fault) injection plan *)
  trace : string option;
      (** write a merged Chrome trace_event JSON timeline here: the
          supervisor's spans (pid -1) plus every rank's span ring,
          ingested from the [Final] frame under its rank id *)
  telemetry : string option;
      (** write one merged JSON record per measured generation here
          (gen, e_gen, e_trial, population, acceptance, walkers_per_s,
          live_ranks, rtt_max_s, respawns, wall_s) *)
  telemetry_every : int;  (** emit every n-th measured generation *)
  progress : bool;  (** live one-line progress on stderr *)
}

val default_params : params

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  acceptance : float;
  wall_time : float;
  mean_population : float;
  energy_series : float array;
  population_series : int array;
  comm_messages : int;  (** walkers exchanged for load balance *)
  comm_bytes : int;  (** payload bytes of those walkers *)
  respawns : int;
  heartbeat_timeouts : int;
  garbage_frames : int;
  crashes : int;
  ranks_failed : int list;  (** permanently lost ranks, ascending *)
  live_ranks : int;
  degraded_generations : int;
      (** generations reduced over fewer than [ranks] shards *)
  final_walkers : Walker.t list;
  final_e_trial : float;
}

exception All_ranks_lost
(** Every rank is dead and the run cannot continue. *)

val run : factory:(int -> Engine_api.t) -> params -> result
(** Forked execution.  The caller must not hold live OCaml domains
    across this call (the supervisor forks).  @raise All_ranks_lost
    when no rank survives, [Failure] when a rank fails during startup. *)

val run_local : factory:(int -> Engine_api.t) -> params -> result
(** In-process reference executor: the same rank-sharded algorithm over
    logical shards — no fork, no pipes.  The bit-identity oracle for
    [run], and the single-process driver for rank-shaped runs. *)
