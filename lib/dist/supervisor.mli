open Oqmc_particle
open Oqmc_core

(** Supervised multi-rank DMC execution: a single-threaded supervisor
    forks N worker rank processes, drives them through a deadline-
    budgeted generation protocol ({!Wire}) with per-read heartbeat
    deadlines, performs real walker exchange for load balance, and
    recovers from rank crashes, stalls and corrupted streams by
    respawning from per-rank checkpoint shards.

    The rank set is ELASTIC: a membership plan can grow it mid-run
    (fork + [Join] + rebalance) and retire ranks gracefully ([Drain] →
    shard ships to the survivors → reap).  Slots abandoned when the
    respawn budget runs out become vacant and refillable by later
    joins, so degraded mode is reversible.  Ranks that blow the soft
    generation deadline are handled per {!straggler_policy}.

    With zero injected faults and no membership events [run] is
    bit-identical to {!run_local}, the in-process reference executor
    over the same logical shards — and with a shared membership plan
    the two stay bit-identical through every join and leave. *)

type straggler_policy =
  | Warn  (** count + trace the straggler, nothing else *)
  | Steal
      (** shed a quarter of the straggler's walkers to the currently
          fastest rank *)
  | Quarantine
      (** three consecutive misses → treated as a stall: the rank is
          killed and respawned from its newest checkpoint shard *)

val straggler_policy_of_string : string -> straggler_policy option
(** ["warn" | "steal" | "quarantine"]. *)

val straggler_policy_name : straggler_policy -> string

(** How the exchange planner splits walkers across ranks. *)
type plan_mode =
  | Count_level
      (** even split — the historical, bit-identical default *)
  | Load_level
      (** throughput-proportional split from the per-rank ledger's
          speed weights; falls back to count levelling until every
          live rank has a throughput sample *)

val plan_mode_of_string : string -> plan_mode option
(** ["count" | "load"]. *)

val plan_mode_name : plan_mode -> string

type member_event =
  | Join  (** grow the rank set by one (lowest vacant slot, else a
              fresh id) *)
  | Leave of int  (** gracefully drain + retire this rank *)

type params = {
  ranks : int;
  target_walkers : int;  (** global population target *)
  warmup : int;
  generations : int;
  tau : float;
  seed : int;
  n_domains : int;  (** worker domains per rank *)
  feedback : float;
  heartbeat_s : float;  (** deadline on every read from a rank *)
  max_respawn : int;  (** respawns per rank before it is abandoned *)
  respawn_backoff : float;  (** base seconds, doubled per respawn *)
  checkpoint : string option;
  checkpoint_every : int;
  checkpoint_keep : int;
  restore : bool;  (** resume from the newest complete shard generation *)
  faults : (int * int * Fault.rank_fault) list;
      (** (rank, generation, fault) injection plan *)
  trace : string option;
      (** write a merged Chrome trace_event JSON timeline here: the
          supervisor's spans (pid -1) plus every rank's span ring,
          ingested from the [Final] frame under its rank id *)
  telemetry : string option;
      (** write one merged JSON record per measured generation here
          (gen, e_gen, e_trial, population, acceptance, walkers_per_s,
          live_ranks, rtt_max_s, respawns, wall_s), plus one record per
          membership transition *)
  telemetry_every : int;  (** emit every n-th measured generation *)
  progress : bool;  (** live one-line progress on stderr *)
  elastic : bool;
      (** enable the membership plan and (with [gen_deadline_ms > 0])
          asynchronous double-buffered shard checkpoints *)
  gen_deadline_ms : int;
      (** soft per-generation budget feeding the straggler policy;
          0 = classic lockstep behavior *)
  straggler_policy : straggler_policy;
  membership : (int * member_event) list;
      (** (generation, event): applied at the END of that generation,
          in list order.  Requires [elastic = true] *)
  plan : plan_mode;
      (** exchange planning mode; {!Count_level} (the default) keeps
          the trajectory bit-identical to the historical planner *)
  flightrec : string option;
      (** dump the {!Oqmc_obs.Flightrec} ring to this postmortem file
          on every abort path (rank failure, [All_ranks_lost],
          [Interrupted], fatal errors) *)
  status : string option;
      (** write a small live status JSON snapshot (progress + per-rank
          ledger windows) here, atomically renamed into place and
          throttled to ~4 Hz — what the serve daemon's Status endpoint
          reads *)
  on_window : (int -> unit) option;
      (** called (with the generation number) at every ledger-window
          boundary, before the status snapshot is written — the driver's
          hook for refreshing live gauges such as the efficiency audit.
          Exceptions are swallowed *)
}

val default_params : params

(** One membership transition as it happened; [m_walkers_before =
    m_walkers_after] is the conservation invariant the chaos soak
    asserts. *)
type member_record = {
  m_gen : int;
  m_kind : string;  (** ["join"] or ["leave"] *)
  m_rank : int;
  m_live : int;  (** live ranks after the transition *)
  m_walkers_before : int;
  m_walkers_after : int;
}

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  acceptance : float;
  wall_time : float;
  mean_population : float;
  energy_series : float array;
  population_series : int array;
  comm_messages : int;  (** walkers exchanged for load balance *)
  comm_bytes : int;  (** payload bytes of those walkers *)
  respawns : int;
  heartbeat_timeouts : int;
  garbage_frames : int;
  crashes : int;
  ranks_failed : int list;  (** abandonment events, ascending *)
  live_ranks : int;  (** live member count at the end of the run *)
  degraded_generations : int;
      (** generations reduced over fewer than [ranks] shards *)
  joins : int;
  leaves : int;
  stragglers : int;  (** soft-deadline misses observed *)
  steals : int;  (** walker-steal transfers performed *)
  membership_skipped : int;
      (** membership events that could not be applied (target rank
          gone, last rank, joiner failed to start) *)
  membership_log : member_record list;  (** chronological *)
  gen_p50_s : float;  (** per-generation wall-time percentiles *)
  gen_p99_s : float;
  final_walkers : Walker.t list;
  final_e_trial : float;
}

exception All_ranks_lost
(** Every rank is dead and the run cannot continue. *)

exception Interrupted of int
(** SIGTERM/SIGINT arrived; raised so the normal unwind path runs
    (children reaped, telemetry and trace sinks flushed + closed). *)

val of_chaos :
  Chaos.schedule ->
  (int * int * Fault.rank_fault) list * (int * member_event) list
(** Split a {!Chaos} schedule into the [faults] and [membership] params
    it drives. *)

val run : factory:(int -> Engine_api.t) -> params -> result
(** Forked execution.  The caller must not hold live OCaml domains
    across this call (the supervisor forks).  @raise All_ranks_lost
    when no rank survives, [Failure] when a rank fails during startup. *)

val run_local : factory:(int -> Engine_api.t) -> params -> result
(** In-process reference executor: the same rank-sharded algorithm over
    logical shards — no fork, no pipes, including the elastic
    membership plan.  The bit-identity oracle for [run], and the
    single-process driver for rank-shaped runs. *)

(** {1 Reentrant per-job execution (the serve layer's entry point)} *)

(** How a {!run_job} call ended, alongside the usual {!result}. *)
type job_outcome = {
  job_result : result;
  gens_done : int;  (** generations executed by THIS call *)
  drained : bool;
      (** the [stop] poll ended the job early at a generation boundary;
          the estimators cover the generations actually run *)
  resumed_from : int;
      (** > 0: the job continued bit-identically from a {!Snapshot} of
          that generation instead of starting fresh *)
}

val run_job :
  factory:(int -> Engine_api.t) ->
  ?local:bool ->
  ?stop:(unit -> bool) ->
  ?snapshot:string ->
  ?snapshot_every:int ->
  params ->
  job_outcome
(** Run one job to completion (or graceful drain) and return.  Reentrant
    and signal-neutral: unlike {!run}/{!run_local} it NEVER installs
    SIGTERM/SIGINT handlers — the caller owns its signal policy and
    threads shutdown through [stop], polled at every generation
    boundary.  With [local = true] (default) the job executes on the
    in-process reference path and, given [snapshot], persists its full
    dynamical state every [snapshot_every] generations (plus at drain
    and completion) via {!Snapshot}, resuming bit-identically from the
    newest valid snapshot on the next call with the same parameters.
    [local = false] uses the forked supervisor (no snapshot support).
    @raise Invalid_argument for [snapshot] with [local = false], a
    snapshot with a non-empty membership plan, or [snapshot_every < 1]. *)
