open Oqmc_particle
open Oqmc_rng
open Oqmc_core

(* One worker rank of a supervised multi-rank DMC run.

   A rank owns a SHARD of the walker population and its own domain pool
   (engines are created inside the rank process, after the fork), and
   executes the supervisor's lockstep protocol: sweep + reweight on
   [Begin_gen], report the shard's estimator terms ([Reduce]), branch on
   command, and ship/absorb serialized walker batches for load balance.

   The per-generation physics is [Dmc.sweep_generation] — the exact
   function the single-process driver runs — so a shard's trajectory is
   the single-process trajectory by construction.  All shard-local
   randomness derives from (seed, rank, incarnation): deterministic for
   a fault-free run, fresh after a respawn. *)

type config = {
  rank : int;
  ranks : int;
  seed : int;
  tau : float;
  target : int; (* GLOBAL walker target; feedback is supervisor-side *)
  n_domains : int; (* worker domains inside this rank *)
  checkpoint : string option;
  checkpoint_keep : int;
  async_checkpoint : bool;
      (* overlap shard writes with the next generation's compute
         (double-buffered [Checkpoint.Async]); false = write-then-ack *)
  incarnation : int; (* 0 = first spawn; respawns count up *)
  faults : (int * Fault.rank_fault) list;
      (* this rank's injection plan.  The supervisor filters the plan to
         generations the incarnation has not yet reached, so a respawned
         rank arms only its FUTURE faults and cannot re-kill itself. *)
}

(* Disjoint, deterministic seed blocks per (rank, incarnation). *)
let rank_seed cfg = cfg.seed + (7919 * (cfg.rank + 1)) + (104729 * cfg.incarnation)

type shard = {
  cfg : config;
  pop : Population.t;
  runner : Runner.t;
  master_rng : Xoshiro.t; (* branching *)
  rng_pool : Xoshiro.t; (* split per walker per generation *)
  mutable acc : int;
  mutable prop : int;
}

(* Build this rank's engines: the factory sees globally distinct indices
   so every (rank, domain) pair gets an independent engine seed. *)
let rank_factory ~(factory : int -> Engine_api.t) cfg d =
  factory ((cfg.rank * cfg.n_domains) + d)

(* Fresh shard: [count] walkers randomized from the rank's master RNG,
   local energies measured, buffers registered. *)
let init_shard ~factory ~count ~e_trial cfg =
  let runner =
    Runner.create ~n_domains:cfg.n_domains ~factory:(rank_factory ~factory cfg)
  in
  let e0 = Runner.engine runner 0 in
  let n = e0.Engine_api.n_electrons in
  let master_rng = Xoshiro.create (rank_seed cfg) in
  let rng_pool = Xoshiro.create (rank_seed cfg + 1) in
  let walkers =
    List.init count (fun _ ->
        let w = Walker.create n in
        e0.Engine_api.randomize master_rng;
        let el = e0.Engine_api.measure () in
        w.Walker.e_local <- el;
        e0.Engine_api.register_walker w;
        w)
  in
  let pop = Population.create ~target:cfg.target ~e_trial walkers in
  { cfg; pop; runner; master_rng; rng_pool; acc = 0; prop = 0 }

(* Restored shard (respawn path): walkers come from a checkpoint shard,
   RNGs from the new incarnation's seed block. *)
let restore_shard ~factory ~walkers ~e_trial cfg =
  let runner =
    Runner.create ~n_domains:cfg.n_domains ~factory:(rank_factory ~factory cfg)
  in
  let pop = Population.create ~target:cfg.target ~e_trial walkers in
  {
    cfg;
    pop;
    runner;
    master_rng = Xoshiro.create (rank_seed cfg);
    rng_pool = Xoshiro.create (rank_seed cfg + 1);
    acc = 0;
    prop = 0;
  }

let shutdown_shard s = Runner.shutdown s.runner
let pop s = s.pop
let config s = s.cfg
let move_totals s = (s.acc, s.prop)

(* Cumulative merged kernel-timer totals (key, seconds) of the shard's
   runner pool — the in-process executor's equivalent of the
   [timer_us.*] counters a forked rank piggybacks on its Reduce. *)
let timer_totals s =
  List.map
    (fun (k, sec, _) -> (k, sec))
    (Oqmc_containers.Timers.snapshot (Runner.merged_timers s.runner))
let set_move_totals s ~acc ~prop =
  s.acc <- acc;
  s.prop <- prop

(* Bit-exact RNG stream capture/restore: the job snapshot layer saves
   (master, pool) mid-run and a resumed shard continues the exact draw
   sequence — unlike the respawn path, which reseeds by incarnation. *)
let rng_states s =
  (Xoshiro.state_string s.master_rng, Xoshiro.state_string s.rng_pool)

let set_rng_states s (master, pool) =
  Xoshiro.restore s.master_rng (Xoshiro.of_state_string master);
  Xoshiro.restore s.rng_pool (Xoshiro.of_state_string pool)

(* Initial-ensemble estimator terms: unit weights, measured energies. *)
let initial_sums s =
  List.fold_left
    (fun (ws, es) w -> (ws +. 1., es +. w.Walker.e_local))
    (0., 0.)
    (Population.walkers s.pop)

(* One generation of shard physics: sweep + reweight every walker
   against [e_trial], accumulate move totals, return the shard's
   weighted estimator terms. *)
let sweep s ~gen ~e_trial =
  let acc, prop =
    Dmc.sweep_generation s.runner s.pop
      ~next_rng:(fun () -> Xoshiro.split s.rng_pool)
      ~gen ~tau:s.cfg.tau ~e_trial
  in
  s.acc <- s.acc + acc;
  s.prop <- s.prop + prop;
  Population.weighted_energy_sums s.pop

let branch s = Population.branch s.pop s.master_rng

(* ---------- the worker process ---------- *)

(* Serve the supervisor's protocol until [Finish].  Runs inside the
   forked child; all faults in [cfg.faults] are armed here (first
   incarnation only — a respawned rank must not re-kill itself). *)
let serve ~cfg ~(factory : int -> Engine_api.t) ~init ~fd_in ~fd_out =
  let module Trace = Oqmc_obs.Trace in
  let module Metrics = Oqmc_obs.Metrics in
  let module Timers = Oqmc_containers.Timers in
  Fault.reset ();
  (* The fork inherits the parent's span ring and metric registry: wipe
     the ring and diff metrics against a serve-entry baseline so this
     rank only ever reports its OWN activity.  [set_rank] stamps every
     span this process emits with its rank id (the trace pid). *)
  Trace.clear ();
  Trace.set_rank cfg.rank;
  let metrics_base = ref (Metrics.snapshot ()) in
  let timers_base = ref [] in
  (* Per-generation metric/timer deltas piggybacked on the Reduce frame:
     counters since the last Reduce, gauges as-is, plus kernel-timer
     increments as [timer_us.<key>] counters (µs, integral). *)
  let telemetry_kvs shard =
    let curr = Metrics.snapshot () in
    let kvs = Metrics.wire_kvs (Metrics.diff ~prev:!metrics_base curr) in
    metrics_base := curr;
    let tcurr = Timers.snapshot (Runner.merged_timers shard.runner) in
    let prev = !timers_base in
    timers_base := tcurr;
    let prev_of k =
      match List.find_opt (fun (k', _, _) -> k' = k) prev with
      | Some (_, s, _) -> s
      | None -> 0.
    in
    let timer_kvs =
      List.filter_map
        (fun (k, s, _) ->
          let d = s -. prev_of k in
          if d > 0. then
            Some ('c', "timer_us." ^ k, Float.round (d *. 1e6))
          else None)
        tcurr
    in
    List.map (fun kv -> Metrics.(kv.kind, kv.key, kv.value)) kvs
    @ timer_kvs
  in
  List.iter (fun (gen, f) -> Fault.arm_rank_fault ~gen f) cfg.faults;
  let shard =
    match init with
    | Some (e_trial, walkers) -> restore_shard ~factory ~walkers ~e_trial cfg
    | None -> init_shard ~factory ~count:0 ~e_trial:0. cfg
  in
  Wire.send fd_out (Wire.Hello { rank = cfg.rank; pid = Unix.getpid () });
  let fresh_init ~count =
    (* First spawn: build the initial sub-ensemble and report its sums
       so the supervisor can form the global starting trial energy. *)
    let ws, es =
      if count = 0 then (0., 0.)
      else begin
        let e0 = Runner.engine shard.runner 0 in
        let n = e0.Engine_api.n_electrons in
        let walkers =
          List.init count (fun _ ->
              let w = Walker.create n in
              e0.Engine_api.randomize shard.master_rng;
              let el = e0.Engine_api.measure () in
              w.Walker.e_local <- el;
              e0.Engine_api.register_walker w;
              w)
        in
        Population.absorb shard.pop walkers;
        initial_sums shard
      end
    in
    Wire.send fd_out
      (Wire.Reduce
         {
           gen = 0;
           wsum = ws;
           esum = es;
           acc = 0;
           prop = 0;
           n = Population.size shard.pop;
           telemetry = telemetry_kvs shard;
         })
  in
  let fire_faults ~gen =
    match Fault.rank_fault_due ~gen with
    | Some Fault.Rank_kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | Some (Fault.Rank_stall s) -> Unix.sleepf s
    | Some Fault.Rank_garbage -> Wire.send_corrupt fd_out
    | Some (Fault.Rank_disk_full times) ->
        (* Observable in the merged telemetry: the counter delta ships
           with this generation's Reduce frame. *)
        Metrics.inc (Metrics.counter "chaos.disk_full");
        Fault.arm_io_failure Fault.Checkpoint_write ~times
    | None -> ()
  in
  (* Double-buffered background shard writer, created on first use. *)
  let async_writer = ref None in
  let writer () =
    match !async_writer with
    | Some w -> w
    | None ->
        let w = Checkpoint.Async.create () in
        async_writer := Some w;
        w
  in
  let drain_writer () =
    match !async_writer with
    | Some w -> ignore (Checkpoint.Async.drain w)
    | None -> ()
  in
  let running = ref true in
  while !running do
    match Wire.recv fd_in with
    | Wire.Begin_gen { gen; e_trial } ->
        (* Heartbeat first: it marks the start of the generation's work,
           so the supervisor's RTT EWMA tracks the healthy round-trip
           and injected stalls (slow work) land where real slowness
           would — between the heartbeat and the Reduce. *)
        Wire.send fd_out (Wire.Heartbeat { gen });
        fire_faults ~gen;
        let wsum, esum =
          Trace.with_span
            ~args:[ ("gen", string_of_int gen) ]
            "rank.generation"
            (fun () -> sweep shard ~gen ~e_trial)
        in
        Wire.send fd_out
          (Wire.Reduce
             {
               gen;
               wsum;
               esum;
               acc = shard.acc;
               prop = shard.prop;
               n = Population.size shard.pop;
               telemetry = telemetry_kvs shard;
             })
    | Wire.Branch { gen } ->
        branch shard;
        Wire.send fd_out (Wire.Count { gen; n = Population.size shard.pop })
    | Wire.Give { gen; count } ->
        let ws = Population.give shard.pop count in
        Wire.send fd_out (Wire.Walkers { gen; walkers = ws })
    | Wire.Walkers { walkers; _ } -> Population.absorb shard.pop walkers
    | Wire.Checkpoint_cmd { gen; e_trial } ->
        let ok =
          match cfg.checkpoint with
          | None -> false
          | Some path when cfg.async_checkpoint -> (
              (* Render the shard image now, publish it from a background
                 domain overlapped with the next generation's sweep.  The
                 ack covers the render + the PREVIOUS write's landing;
                 [Checkpoint.latest_complete] revalidates shards on
                 restore, so an optimistic ack can delay recovery by one
                 round but never corrupt it. *)
              try
                Checkpoint.Async.save_generation (writer ())
                  ~keep:cfg.checkpoint_keep
                  ~path:(Checkpoint.shard_path ~path ~rank:cfg.rank)
                  ~gen ~e_trial
                  (Population.walkers shard.pop)
              with Sys_error _ | Checkpoint.Corrupt _ -> false)
          | Some path -> (
              try
                Checkpoint.save_shard ~keep:cfg.checkpoint_keep ~path
                  ~rank:cfg.rank ~gen ~e_trial
                  (Population.walkers shard.pop);
                true
              with Sys_error _ | Checkpoint.Corrupt _ -> false)
        in
        Wire.send fd_out (Wire.Ack { gen; ok })
    | Wire.Join { gen; e_trial = _ } ->
        (* Mid-run membership: this freshly forked rank is live as of
           [gen]; its walkers arrive through the rebalancing relays that
           follow the ack. *)
        Wire.send fd_out (Wire.Ack { gen; ok = true })
    | Wire.Drain { gen } ->
        (* Graceful leave: ship the WHOLE shard (order preserved), then
           confirm the drain; the supervisor finishes and reaps us. *)
        drain_writer ();
        let ws = Population.drain shard.pop in
        Wire.send fd_out (Wire.Walkers { gen; walkers = ws });
        Wire.send fd_out (Wire.Leave { gen; count = List.length ws })
    | Wire.Finish ->
        drain_writer ();
        Wire.send fd_out
          (Wire.Final
             {
               acc = shard.acc;
               prop = shard.prop;
               walkers = Population.walkers shard.pop;
               trace =
                 (if Trace.enabled () then Trace.serialize () else "");
             });
        running := false
    | Wire.Init { count } -> fresh_init ~count
    | _ -> () (* ignore unexpected frames; the supervisor drives *)
  done;
  shutdown_shard shard
