open Oqmc_particle
open Oqmc_core

(** One worker rank of a supervised multi-rank DMC run: a population
    shard plus its own domain pool, driven by the supervisor's lockstep
    wire protocol.  The per-generation physics is
    [Dmc.sweep_generation] — the same function the single-process
    driver runs — so fault-free multi-rank trajectories are
    bit-identical to the in-process reference executor. *)

type config = {
  rank : int;
  ranks : int;
  seed : int;
  tau : float;
  target : int;  (** GLOBAL walker target (feedback is supervisor-side) *)
  n_domains : int;  (** worker domains inside this rank *)
  checkpoint : string option;
  checkpoint_keep : int;
  async_checkpoint : bool;
      (** overlap shard writes with the next generation's compute
          ({!Checkpoint.Async}); false = write-then-ack *)
  incarnation : int;  (** 0 = first spawn; respawns count up *)
  faults : (int * Fault.rank_fault) list;
      (** (generation, fault) injection plan for THIS rank.  The
          supervisor filters the plan to generations this incarnation
          has not yet reached, so a respawn cannot re-kill itself *)
}

val rank_seed : config -> int
(** Disjoint deterministic seed block for (rank, incarnation). *)

(** {1 Shard executor (shared with the in-process reference)} *)

type shard

val init_shard :
  factory:(int -> Engine_api.t) ->
  count:int ->
  e_trial:float ->
  config ->
  shard
(** Fresh shard: [count] randomized walkers with measured local
    energies and registered buffers, plus this rank's runner pool. *)

val restore_shard :
  factory:(int -> Engine_api.t) ->
  walkers:Walker.t list ->
  e_trial:float ->
  config ->
  shard
(** Respawn path: walkers from a checkpoint shard, RNGs from the new
    incarnation's seed block. *)

val shutdown_shard : shard -> unit

val pop : shard -> Population.t
val config : shard -> config
val move_totals : shard -> int * int
(** Lifetime (accepted, proposed) move totals. *)

val timer_totals : shard -> (string * float) list
(** Cumulative merged kernel-timer totals (key, seconds) of this shard's
    runner pool — what a forked rank exports as [timer_us.*] counters.
    Lets the in-process executor feed the same registry counters the
    efficiency audit reads. *)

val set_move_totals : shard -> acc:int -> prop:int -> unit
(** Overwrite the lifetime move totals (job-snapshot resume). *)

val rng_states : shard -> string * string
(** Bit-exact (master, pool) RNG stream states ({!Xoshiro.state_string})
    for the job-snapshot layer. *)

val set_rng_states : shard -> string * string -> unit
(** Restore streams captured by {!rng_states}, so a resumed shard
    continues the exact draw sequence.
    @raise Invalid_argument on malformed state strings. *)

val initial_sums : shard -> float * float
(** (Σ1, ΣE_L) of the initial unit-weight ensemble — the gen-0 terms of
    the global starting trial energy. *)

val sweep : shard -> gen:int -> e_trial:float -> float * float
(** One generation of shard physics; returns the shard's weighted
    estimator terms (Σw, Σw·E_L). *)

val branch : shard -> unit

(** {1 The worker process} *)

val serve :
  cfg:config ->
  factory:(int -> Engine_api.t) ->
  init:(float * Walker.t list) option ->
  fd_in:Unix.file_descr ->
  fd_out:Unix.file_descr ->
  unit
(** Run the rank protocol until [Finish].  Called inside the forked
    child; [init = Some (e_trial, walkers)] restores a respawned rank
    from its checkpoint shard, [None] starts empty and waits for the
    supervisor's [Init]. *)
