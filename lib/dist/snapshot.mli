open Oqmc_particle

(** Mid-run job snapshots for the in-process ([run_local]) supervised
    executor: walkers go through the checkpoint shard files, and a
    CRC-trailed [path.job.gen-N] metadata file captures everything else
    the trajectory depends on — per-rank RNG stream states, lifetime
    move totals, the measured energy/population series, sample and comm
    counters, and the trial energy — so a suspended or crashed job
    resumes {e bit-identically} where it stopped.  This is the serve
    layer's crash/deadline recovery primitive. *)

type rank_state = {
  r_rank : int;
  r_master : string;  (** [Xoshiro.state_string] of the branching stream *)
  r_pool : string;  (** ... and of the per-walker split pool *)
  r_acc : int;  (** lifetime accepted moves at snapshot time *)
  r_prop : int;
}

type state = {
  gen : int;  (** completed generations (absolute) *)
  seed : int;
  ranks : int;
  target : int;
      (** [seed]/[ranks]/[target] echo the run parameters; a mismatched
          snapshot is ignored on load, never misapplied *)
  e_trial : float;
  energy : float array;  (** measured energy series so far *)
  pops : int array;  (** measured population series, chronological *)
  samples : int;
  comm_messages : int;
  comm_bytes : int;
  rank_states : rank_state list;  (** ascending rank order *)
}

val save : ?keep:int -> path:string -> state -> (int * Walker.t list) list -> unit
(** Write the shard files then (last, atomically) the metadata for
    generation [state.gen], rotating both to the newest [keep]
    (default 2) generations.  A crash at any point leaves the previous
    complete generation as the newest loadable snapshot.
    @raise Invalid_argument if [keep < 1]. *)

val load_latest : path:string -> (state * (int * Walker.t list) list) option
(** Newest generation whose metadata {e and} every shard load cleanly,
    falling back past corrupt or torn generations; [None] when no valid
    snapshot exists. *)
