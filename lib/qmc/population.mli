open Oqmc_particle

(** DMC walker population: branching, trial-energy feedback and a
    simulated-rank load-balance accounting of walker messages (the MPI
    exchange of Sec. 8). *)

type t

val create :
  target:int -> e_trial:float -> ?feedback:float -> Walker.t list -> t
(** @raise Invalid_argument if [target < 1]. *)

val size : t -> int
val walkers : t -> Walker.t list
val e_trial : t -> float

val set_walkers : t -> Walker.t list -> unit
(** Replace the ensemble (the watchdog's quarantine/recovery path).
    @raise Invalid_argument on an empty list. *)

val average_weight : t -> float

val dmc_weight :
  tau:float -> e_trial:float -> e_old:float -> e_new:float -> Walker.t -> unit
(** Multiply the walker weight by the (clamped) branching factor
    exp(τ(E_T − ½(E_old + E_new))). *)

val branch : t -> Oqmc_rng.Xoshiro.t -> unit
(** Stochastic branching: floor(weight + u) unit-weight copies per
    walker; never lets the population go extinct. *)

val weighted_energy_sums : t -> float * float
(** [(Σw, Σw·E_L)] over the ensemble, in ensemble order — the inputs of
    the weighted mixed estimator, reduced identically everywhere. *)

val trial_energy_update :
  feedback:float ->
  tau:float ->
  target:int ->
  population:int ->
  e_estimate:float ->
  float
(** The pure trial-energy feedback formula; the multi-rank supervisor
    applies it from globally-reduced population counts. *)

val update_trial_energy : t -> tau:float -> e_estimate:float -> unit
(** Feedback that pulls the population toward its target. *)

type balance_report = { messages : int; bytes : int; imbalance : float }

val load_balance : t -> ranks:int -> balance_report
(** Walker messages an even re-spread across [ranks] would send.
    @raise Invalid_argument if [ranks < 1]. *)

(** {1 Real walker exchange}

    Primitives for the multi-rank layer, which actually moves walkers
    between per-rank shard populations.  All are deterministic in shard
    order so forked and in-process executions stay bit-identical. *)

val give : t -> int -> Walker.t list
(** Remove and return the last [k] walkers (clamped to the shard size),
    preserving order.  @raise Invalid_argument if [k < 0]. *)

val absorb : t -> Walker.t list -> unit
(** Append received walkers at the end of the shard. *)

val drain : t -> Walker.t list
(** Remove and return the whole shard (in order), leaving it empty —
    the graceful-leave path of the elastic supervisor. *)

type move = { src : int; dst : int; count : int }

val plan : ?weights:float array -> int array -> move list
(** Deterministic rebalancing plan toward the ideal split: surplus
    shards (ascending index) matched against deficit shards (ascending
    index).  Without [weights] the ideal is the even split (remainder on
    the lowest indices) — unchanged, bit-identical behaviour.  With
    [weights] (one positive relative speed per shard) the ideal is
    throughput-proportional, integerized by largest-remainder rounding
    with ties to the lower index.
    @raise Invalid_argument on a length mismatch or non-positive
    weight. *)

val exchange : ?weights:float array -> t array -> balance_report
(** Apply {!plan} in-process — really move walkers between the shards —
    and report the exchange volume the moves represent. *)
