open Oqmc_particle

(** DMC walker population: branching, trial-energy feedback and a
    simulated-rank load-balance accounting of walker messages (the MPI
    exchange of Sec. 8). *)

type t

val create :
  target:int -> e_trial:float -> ?feedback:float -> Walker.t list -> t
(** @raise Invalid_argument if [target < 1]. *)

val size : t -> int
val walkers : t -> Walker.t list
val e_trial : t -> float

val set_walkers : t -> Walker.t list -> unit
(** Replace the ensemble (the watchdog's quarantine/recovery path).
    @raise Invalid_argument on an empty list. *)

val average_weight : t -> float

val dmc_weight :
  tau:float -> e_trial:float -> e_old:float -> e_new:float -> Walker.t -> unit
(** Multiply the walker weight by the (clamped) branching factor
    exp(τ(E_T − ½(E_old + E_new))). *)

val branch : t -> Oqmc_rng.Xoshiro.t -> unit
(** Stochastic branching: floor(weight + u) unit-weight copies per
    walker; never lets the population go extinct. *)

val update_trial_energy : t -> tau:float -> e_estimate:float -> unit
(** Feedback that pulls the population toward its target. *)

type balance_report = { messages : int; bytes : int; imbalance : float }

val load_balance : t -> ranks:int -> balance_report
(** Walker messages an even re-spread across [ranks] would send.
    @raise Invalid_argument if [ranks < 1]. *)
