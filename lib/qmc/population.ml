open Oqmc_particle
open Oqmc_rng

(* DMC walker population: stochastic branching on walker weights, the
   trial-energy feedback that holds the population at its target, and a
   simulated-rank load-balance step that reports the communication volume
   (walker messages) the paper's Fig.-1 runs incur. *)

type t = {
  mutable walkers : Walker.t list;
  target : int;
  mutable e_trial : float;
  feedback : float; (* population-control feedback strength *)
}

let create ~target ~e_trial ?(feedback = 1.) walkers =
  if target < 1 then invalid_arg "Population.create: target < 1";
  { walkers; target; e_trial; feedback }

let size t = List.length t.walkers
let walkers t = t.walkers
let e_trial t = t.e_trial

(* Replace the ensemble wholesale — the quarantine/recovery path of the
   integrity watchdog. *)
let set_walkers t ws =
  if ws = [] then invalid_arg "Population.set_walkers: empty population";
  t.walkers <- ws

let average_weight t =
  match t.walkers with
  | [] -> 0.
  | ws ->
      List.fold_left (fun acc w -> acc +. w.Walker.weight) 0. ws
      /. float_of_int (List.length ws)

(* Reweight one walker for a step from E_L to E_L' (Alg. 1 L13). *)
let dmc_weight ~tau ~e_trial ~e_old ~e_new w =
  let arg = tau *. (e_trial -. (0.5 *. (e_old +. e_new))) in
  (* Clamp the branching factor to keep a bad configuration from
     exploding the population. *)
  let factor = exp (Float.max (-2.) (Float.min 2. arg)) in
  w.Walker.weight <- w.Walker.weight *. factor

(* Stochastic branching: each walker yields floor(weight + u) copies of
   unit weight; walkers with zero copies die. *)
let branch t rng =
  let spawned =
    List.concat_map
      (fun w ->
        let copies = int_of_float (w.Walker.weight +. Xoshiro.uniform rng) in
        let copies = min copies 4 (* limit runaway multiplication *) in
        w.Walker.multiplicity <- copies;
        if copies = 0 then []
        else begin
          w.Walker.weight <- 1.;
          w :: List.init (copies - 1) (fun _ -> Walker.copy w)
        end)
      t.walkers
  in
  (* Guard against extinction: keep at least one walker alive. *)
  t.walkers <-
    (match spawned with
    | [] -> (
        match t.walkers with [] -> [] | w :: _ -> [ Walker.copy w ])
    | ws -> ws)

(* Trial-energy feedback (Alg. 1 L14). *)
let update_trial_energy t ~tau ~e_estimate =
  let pop = float_of_int (max 1 (size t)) in
  t.e_trial <-
    e_estimate
    -. (t.feedback /. tau *. log (pop /. float_of_int t.target))

(* Simulated load balancing across [ranks]: walkers are re-spread evenly;
   returns the number of walker messages and bytes a real MPI exchange
   would send (the send/recv of serialized Walker objects in Sec. 8). *)
type balance_report = { messages : int; bytes : int; imbalance : float }

let load_balance t ~ranks =
  if ranks < 1 then invalid_arg "Population.load_balance: ranks < 1";
  let n = size t in
  let per = n / ranks and extra = n mod ranks in
  let ideal r = per + if r < extra then 1 else 0 in
  (* Walkers are currently distributed round-robin by index; compute how
     many must move to restore the ideal split after branching changed
     counts. *)
  let counts = Array.make ranks 0 in
  List.iteri (fun i _ -> counts.(i mod ranks) <- counts.(i mod ranks) + 1)
    t.walkers;
  let moved = ref 0 in
  let maxc = ref 0 and minc = ref max_int in
  Array.iteri
    (fun r c ->
      maxc := max !maxc c;
      minc := min !minc c;
      if c > ideal r then moved := !moved + (c - ideal r))
    counts;
  let message_bytes =
    match t.walkers with [] -> 0 | w :: _ -> Walker.message_bytes w
  in
  {
    messages = !moved;
    bytes = !moved * message_bytes;
    imbalance =
      (if n = 0 then 0.
       else float_of_int (!maxc - !minc) /. float_of_int (max 1 per));
  }
