open Oqmc_particle
open Oqmc_rng

(* DMC walker population: stochastic branching on walker weights, the
   trial-energy feedback that holds the population at its target, and a
   simulated-rank load-balance step that reports the communication volume
   (walker messages) the paper's Fig.-1 runs incur. *)

type t = {
  mutable walkers : Walker.t list;
  target : int;
  mutable e_trial : float;
  feedback : float; (* population-control feedback strength *)
}

let create ~target ~e_trial ?(feedback = 1.) walkers =
  if target < 1 then invalid_arg "Population.create: target < 1";
  { walkers; target; e_trial; feedback }

let size t = List.length t.walkers
let walkers t = t.walkers
let e_trial t = t.e_trial

(* Replace the ensemble wholesale — the quarantine/recovery path of the
   integrity watchdog. *)
let set_walkers t ws =
  if ws = [] then invalid_arg "Population.set_walkers: empty population";
  t.walkers <- ws

let average_weight t =
  match t.walkers with
  | [] -> 0.
  | ws ->
      List.fold_left (fun acc w -> acc +. w.Walker.weight) 0. ws
      /. float_of_int (List.length ws)

(* Reweight one walker for a step from E_L to E_L' (Alg. 1 L13). *)
let dmc_weight ~tau ~e_trial ~e_old ~e_new w =
  let arg = tau *. (e_trial -. (0.5 *. (e_old +. e_new))) in
  (* Clamp the branching factor to keep a bad configuration from
     exploding the population. *)
  let factor = exp (Float.max (-2.) (Float.min 2. arg)) in
  w.Walker.weight <- w.Walker.weight *. factor

(* Stochastic branching: each walker yields floor(weight + u) copies of
   unit weight; walkers with zero copies die. *)
let branch t rng =
  let spawned =
    List.concat_map
      (fun w ->
        let copies = int_of_float (w.Walker.weight +. Xoshiro.uniform rng) in
        let copies = min copies 4 (* limit runaway multiplication *) in
        w.Walker.multiplicity <- copies;
        if copies = 0 then []
        else begin
          w.Walker.weight <- 1.;
          w :: List.init (copies - 1) (fun _ -> Walker.copy w)
        end)
      t.walkers
  in
  (* Guard against extinction: keep at least one walker alive.  The
     survivor is a *fresh* unit-weight clone — the dead walker's stale
     weight/multiplicity/age must not leak into the reborn ensemble. *)
  t.walkers <-
    (match spawned with
    | [] -> (
        match t.walkers with
        | [] -> []
        | w :: _ ->
            let fresh = Walker.copy w in
            fresh.Walker.weight <- 1.;
            fresh.Walker.multiplicity <- 1;
            fresh.Walker.age <- 0;
            [ fresh ])
    | ws -> ws)

(* Weighted sums feeding the mixed estimator: (Σw, Σw·E_L) in ensemble
   order, so every caller reduces in the same float order. *)
let weighted_energy_sums t =
  List.fold_left
    (fun (ws, es) w ->
      (ws +. w.Walker.weight, es +. (w.Walker.weight *. w.Walker.e_local)))
    (0., 0.) t.walkers

(* Trial-energy feedback (Alg. 1 L14), exposed as a pure function so the
   multi-rank supervisor can apply the *global* update from reduced
   counts. *)
let trial_energy_update ~feedback ~tau ~target ~population ~e_estimate =
  let pop = float_of_int (max 1 population) in
  e_estimate -. (feedback /. tau *. log (pop /. float_of_int target))

let update_trial_energy t ~tau ~e_estimate =
  t.e_trial <-
    trial_energy_update ~feedback:t.feedback ~tau ~target:t.target
      ~population:(size t) ~e_estimate

(* Simulated load balancing across [ranks]: walkers are re-spread evenly;
   returns the number of walker messages and bytes a real MPI exchange
   would send (the send/recv of serialized Walker objects in Sec. 8). *)
type balance_report = { messages : int; bytes : int; imbalance : float }

let load_balance t ~ranks =
  if ranks < 1 then invalid_arg "Population.load_balance: ranks < 1";
  let n = size t in
  let per = n / ranks and extra = n mod ranks in
  let ideal r = per + if r < extra then 1 else 0 in
  (* Walkers are currently distributed round-robin by index; compute how
     many must move to restore the ideal split after branching changed
     counts. *)
  let counts = Array.make ranks 0 in
  List.iteri (fun i _ -> counts.(i mod ranks) <- counts.(i mod ranks) + 1)
    t.walkers;
  let moved = ref 0 in
  let maxc = ref 0 and minc = ref max_int in
  Array.iteri
    (fun r c ->
      maxc := max !maxc c;
      minc := min !minc c;
      if c > ideal r then moved := !moved + (c - ideal r))
    counts;
  let message_bytes =
    match t.walkers with [] -> 0 | w :: _ -> Walker.message_bytes w
  in
  {
    messages = !moved;
    bytes = !moved * message_bytes;
    imbalance =
      (if n = 0 then 0.
       else float_of_int (!maxc - !minc) /. float_of_int (max 1 per));
  }

(* ---------- real walker exchange ----------

   The primitives the multi-rank layer uses to actually *move* walkers
   between per-rank shard populations (each shard is a [t]), instead of
   the simulated accounting above.  Everything here is deterministic in
   shard order, so the forked supervisor and the in-process reference
   executor produce bit-identical trajectories. *)

(* Remove and return the LAST [k] walkers (in their original order);
   the remainder keeps its order.  [k] is clamped to the shard size. *)
let give t k =
  if k < 0 then invalid_arg "Population.give: negative count";
  let n = List.length t.walkers in
  let k = min k n in
  let rec split i acc rest =
    if i = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | w :: ws -> split (i - 1) (w :: acc) ws
  in
  let kept, given = split (n - k) [] t.walkers in
  t.walkers <- kept;
  given

(* Append received walkers at the end of the shard. *)
let absorb t ws = t.walkers <- t.walkers @ ws

(* Remove and return the WHOLE shard (in order) — the graceful-leave
   path of the elastic supervisor: a retiring rank drains itself into
   the survivors before being reaped. *)
let drain t =
  let ws = t.walkers in
  t.walkers <- [];
  ws

type move = { src : int; dst : int; count : int }

(* Ideal per-shard targets.  Unweighted: the even split with the
   remainder on the lowest indices — this arm is the pre-existing
   formula, untouched, so default planning stays bit-identical.
   Weighted: targets proportional to the (positive) weights, integerized
   by largest-remainder rounding with ties to the lower index, so the
   split is deterministic and sums exactly to [total]. *)
let ideal_targets ?weights counts total =
  let k = Array.length counts in
  match weights with
  | None ->
      let per = total / k and extra = total mod k in
      Array.init k (fun i -> per + if i < extra then 1 else 0)
  | Some w ->
      if Array.length w <> k then
        invalid_arg "Population.plan: weights length mismatch";
      Array.iter
        (fun x ->
          if not (Float.is_finite x) || x <= 0. then
            invalid_arg "Population.plan: weights must be finite and positive")
        w;
      let wsum = Array.fold_left ( +. ) 0. w in
      let exact = Array.map (fun x -> float_of_int total *. x /. wsum) w in
      let base = Array.map (fun x -> int_of_float (Float.floor x)) exact in
      let rem = max 0 (total - Array.fold_left ( + ) 0 base) in
      let idx = Array.init k (fun i -> i) in
      let frac i = exact.(i) -. float_of_int base.(i) in
      Array.sort
        (fun a b ->
          match compare (frac b) (frac a) with 0 -> compare a b | c -> c)
        idx;
      for j = 0 to min rem k - 1 do
        base.(idx.(j)) <- base.(idx.(j)) + 1
      done;
      base

(* Deterministic all-to-ideal rebalancing plan: [counts.(i)] walkers
   currently live on shard [i]; surplus shards (ascending) are matched
   greedily against deficit shards (ascending).  Σsurplus = Σdeficit, so
   the recursion exhausts both lists together.  [weights] switches the
   ideal from the even split to a throughput-proportional one (the
   [plan = load] deck mode). *)
let plan ?weights counts =
  let k = Array.length counts in
  if k = 0 then []
  else begin
    let total = Array.fold_left ( + ) 0 counts in
    let targets = ideal_targets ?weights counts total in
    let ideal i = targets.(i) in
    let surplus = ref [] and deficit = ref [] in
    for i = k - 1 downto 0 do
      let diff = counts.(i) - ideal i in
      if diff > 0 then surplus := (i, diff) :: !surplus
      else if diff < 0 then deficit := (i, -diff) :: !deficit
    done;
    let rec go s d acc =
      match (s, d) with
      | [], _ | _, [] -> List.rev acc
      | (si, sc) :: srest, (di, dc) :: drest ->
          let m = min sc dc in
          go
            (if sc = m then srest else (si, sc - m) :: srest)
            (if dc = m then drest else (di, dc - m) :: drest)
            ({ src = si; dst = di; count = m } :: acc)
    in
    go !surplus !deficit []
  end

(* Apply the plan in-process: really move walkers between the shard
   populations and report the communication volume the moves represent. *)
let exchange ?weights shards =
  let counts = Array.map size shards in
  let moves = plan ?weights counts in
  let messages = ref 0 and bytes = ref 0 in
  List.iter
    (fun { src; dst; count } ->
      let ws = give shards.(src) count in
      List.iter
        (fun w ->
          incr messages;
          bytes := !bytes + Walker.message_bytes w)
        ws;
      absorb shards.(dst) ws)
    moves;
  let total = Array.fold_left (fun a s -> a + size s) 0 shards in
  let per = total / max 1 (Array.length shards) in
  let maxc = Array.fold_left (fun a s -> max a (size s)) 0 shards in
  let minc = Array.fold_left (fun a s -> min a (size s)) max_int shards in
  {
    messages = !messages;
    bytes = !bytes;
    imbalance =
      (if total = 0 || Array.length shards = 0 then 0.
       else float_of_int (maxc - minc) /. float_of_int (max 1 per));
  }
