(** Variational Monte Carlo driver with particle-by-particle updates and
    domain-parallel walkers. *)

type params = {
  n_walkers : int;
  warmup : int;  (** equilibration sweeps per walker, not measured *)
  blocks : int;
  steps_per_block : int;
  tau : float;
  seed : int;
  n_domains : int;
}

val default_params : params

type result = {
  energy : float;
  energy_error : float;  (** block-based error bar *)
  variance : float;  (** local-energy variance (Ψ_T quality, Sec. 3) *)
  acceptance : float;
  throughput : float;  (** MC samples per second — the figure of merit *)
  wall_time : float;
  tau_corr : float;
  samples : int;
  block_energies : float array;
  drift_max : float;
      (** largest |incremental log Ψ − full recompute| observed at the
          per-block refresh (mixed-precision drift) *)
}

val run :
  ?observe:(Oqmc_particle.Walker.t -> unit) ->
  ?crowd:int ->
  ?rank:int ->
  ?telemetry:Oqmc_obs.Telemetry.sink ->
  ?telemetry_every:int ->
  ?progress:Oqmc_obs.Progress.t ->
  factory:(int -> Engine_api.t) ->
  params ->
  result
(** [observe] is called once per walker per block (serially, after the
    parallel sweeps) for observable accumulation.

    [telemetry] attaches a JSONL sink receiving one record per
    [telemetry_every]-th block (block / e_block / acceptance /
    walkers_per_s / wall_s); [progress] attaches a live progress line.
    Blocks are recorded as [vmc.block] trace spans when
    {!Oqmc_obs.Trace} is enabled.  Observability never touches the RNG
    stream, so results are bit-identical with it on or off.

    [crowd] (default 1) sets the number of walkers each domain advances
    in lockstep through batched SPO kernels; results are bit-identical
    to the scalar path for any crowd size (clamped to [n_walkers]).

    [rank] (default 0) offsets the walker RNG streams into a disjoint
    seed block, so shard [rank] of a rank-split VMC run never shares a
    random sequence with its siblings; [rank = 0] reproduces the
    single-rank streams exactly.
    @raise Invalid_argument if [n_walkers < 1], [crowd < 1] or
    [rank < 0]. *)
