open Oqmc_particle
open Oqmc_rng

(* Variational Monte Carlo driver with particle-by-particle updates.

   Walkers are sampled from |Ψ_T|² by drifted-Gaussian Metropolis sweeps;
   the local energy is measured every [steps_between_measure] sweeps.
   Thread-level parallelism follows the paper's design: each domain's
   engine loads a walker, restores its wavefunction state from the
   anonymous buffer, runs its sweeps, and stores the state back. *)

type params = {
  n_walkers : int;
  warmup : int; (* sweeps discarded before measuring *)
  blocks : int;
  steps_per_block : int;
  tau : float;
  seed : int;
  n_domains : int;
}

let default_params =
  {
    n_walkers = 8;
    warmup = 50;
    blocks = 10;
    steps_per_block = 20;
    tau = 0.3;
    seed = 7;
    n_domains = 1;
  }

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  acceptance : float;
  throughput : float; (* MC samples (walker·steps) per second *)
  wall_time : float;
  tau_corr : float;
  samples : int;
  block_energies : float array;
  drift_max : float;
      (* largest |incremental log Ψ − recompute| seen at the per-block
         refresh: the mixed-precision drift the paper's periodic
         recompute bounds *)
}

type wstate = {
  walker : Walker.t;
  rng : Xoshiro.t;
  mutable e_sum : float;
  mutable e2_sum : float;
  mutable n_meas : int;
  mutable accepted : int;
  mutable proposed : int;
  mutable drift : float;
}

let run ?observe ~(factory : int -> Engine_api.t) (p : params) : result =
  if p.n_walkers < 1 then invalid_arg "Vmc.run: n_walkers < 1";
  let runner = Runner.create ~n_domains:p.n_domains ~factory in
  let e0 = Runner.engine runner 0 in
  let n = e0.Engine_api.n_electrons in
  let rngs = Xoshiro.streams ~seed:p.seed (p.n_walkers + 1) in
  (* Independent starting configurations, registered buffers. *)
  let states =
    Array.init p.n_walkers (fun i ->
        let w = Walker.create n in
        e0.Engine_api.randomize rngs.(i);
        e0.Engine_api.register_walker w;
        {
          walker = w;
          rng = rngs.(i);
          e_sum = 0.;
          e2_sum = 0.;
          n_meas = 0;
          accepted = 0;
          proposed = 0;
          drift = 0.;
        })
  in
  (* Warmup: equilibrate each walker. *)
  Runner.iter_walkers runner states ~f:(fun e s ->
      e.Engine_api.restore_walker s.walker;
      for _ = 1 to p.warmup do
        ignore (e.Engine_api.sweep s.rng ~tau:p.tau)
      done;
      (* Re-derive the wavefunction state from scratch after
         equilibration to shed accumulated update error. *)
      ignore (e.Engine_api.refresh ());
      e.Engine_api.save_walker s.walker);
  let block_energies = Array.make p.blocks 0. in
  let t0 = Oqmc_containers.Timers.now () in
  for b = 0 to p.blocks - 1 do
    Runner.iter_walkers runner states ~f:(fun e s ->
        e.Engine_api.restore_walker s.walker;
        for _ = 1 to p.steps_per_block do
          let r = e.Engine_api.sweep s.rng ~tau:p.tau in
          s.accepted <- s.accepted + r.Engine_api.accepted;
          s.proposed <- s.proposed + r.Engine_api.proposed;
          let el = e.Engine_api.measure () in
          s.walker.Walker.e_local <- el;
          s.e_sum <- s.e_sum +. el;
          s.e2_sum <- s.e2_sum +. (el *. el);
          s.n_meas <- s.n_meas + 1
        done;
        (* Periodic recompute-from-scratch: the mixed-precision accuracy
           safeguard of the paper — and the watchdog's drift metric. *)
        s.drift <- Float.max s.drift (Engine_api.drift e);
        e.Engine_api.save_walker s.walker);
    (* Observables accumulate serially from the stored walkers. *)
    (match observe with
    | Some f -> Array.iter (fun s -> f s.walker) states
    | None -> ());
    let bsum =
      Array.fold_left (fun acc s -> acc +. s.walker.Walker.e_local) 0. states
    in
    block_energies.(b) <- bsum /. float_of_int p.n_walkers
  done;
  let wall_time = Oqmc_containers.Timers.now () -. t0 in
  let tot_meas = Array.fold_left (fun a s -> a + s.n_meas) 0 states in
  let e_sum = Array.fold_left (fun a s -> a +. s.e_sum) 0. states in
  let e2_sum = Array.fold_left (fun a s -> a +. s.e2_sum) 0. states in
  let energy =
    if tot_meas = 0 then 0. else e_sum /. float_of_int tot_meas
  in
  let variance =
    if tot_meas = 0 then 0.
    else (e2_sum /. float_of_int tot_meas) -. (energy *. energy)
  in
  let acc = Array.fold_left (fun a s -> a + s.accepted) 0 states in
  let prop = Array.fold_left (fun a s -> a + s.proposed) 0 states in
  let bseries = Stats.make_series () in
  Array.iter (fun e -> Stats.append bseries e) block_energies;
  let tau_corr = Stats.autocorrelation_time bseries in
  {
    energy;
    energy_error =
      sqrt (Stats.series_variance bseries /. float_of_int p.blocks);
    variance;
    acceptance = float_of_int acc /. float_of_int (max 1 prop);
    throughput =
      (if wall_time > 0. then
         float_of_int (p.n_walkers * p.blocks * p.steps_per_block)
         /. wall_time
       else 0.);
    wall_time;
    tau_corr;
    samples = tot_meas;
    block_energies;
    drift_max = Array.fold_left (fun a s -> Float.max a s.drift) 0. states;
  }
