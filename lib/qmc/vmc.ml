open Oqmc_particle
open Oqmc_rng
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry
module Progress = Oqmc_obs.Progress

(* Variational Monte Carlo driver with particle-by-particle updates.

   Walkers are sampled from |Ψ_T|² by drifted-Gaussian Metropolis sweeps;
   the local energy is measured every [steps_between_measure] sweeps.
   Thread-level parallelism follows the paper's design: each domain's
   engine loads a walker, restores its wavefunction state from the
   anonymous buffer, runs its sweeps, and stores the state back.

   With [crowd > 1] each domain instead owns a crowd of engines and
   advances [crowd] resident walkers in lockstep, so the SPO work of
   every per-electron move is evaluated in one batched kernel call
   (Crowd.sweep).  The per-walker arithmetic and RNG draw order are
   unchanged, so results are bit-identical to [crowd = 1]. *)

type params = {
  n_walkers : int;
  warmup : int; (* sweeps discarded before measuring *)
  blocks : int;
  steps_per_block : int;
  tau : float;
  seed : int;
  n_domains : int;
}

let default_params =
  {
    n_walkers = 8;
    warmup = 50;
    blocks = 10;
    steps_per_block = 20;
    tau = 0.3;
    seed = 7;
    n_domains = 1;
  }

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  acceptance : float;
  throughput : float; (* MC samples (walker·steps) per second *)
  wall_time : float;
  tau_corr : float;
  samples : int;
  block_energies : float array;
  drift_max : float;
      (* largest |incremental log Ψ − recompute| seen at the per-block
         refresh: the mixed-precision drift the paper's periodic
         recompute bounds *)
}

type wstate = {
  walker : Walker.t;
  rng : Xoshiro.t;
  mutable e_sum : float;
  mutable e2_sum : float;
  mutable n_meas : int;
  mutable accepted : int;
  mutable proposed : int;
  mutable drift : float;
}

let run ?observe ?(crowd = 1) ?(rank = 0) ?telemetry ?(telemetry_every = 1)
    ?progress ~(factory : int -> Engine_api.t) (p : params) : result =
  if p.n_walkers < 1 then invalid_arg "Vmc.run: n_walkers < 1";
  if crowd < 1 then invalid_arg "Vmc.run: crowd < 1";
  if rank < 0 then invalid_arg "Vmc.run: rank < 0";
  let telemetry_every = max 1 telemetry_every in
  let crowd = min crowd p.n_walkers in
  (* Crowd mode: [crowd] engines per domain marching in lockstep; the
     runner's per-domain engine is each crowd's slot-0 engine, so
     engine-0 bookkeeping (registration, audits) works unchanged. *)
  let crowds =
    if crowd > 1 then
      Array.init p.n_domains (fun d ->
          Crowd.create ~factory ~base:(d * crowd) ~size:crowd ())
    else [||]
  in
  let runner_factory =
    if crowd > 1 then fun d -> Crowd.engine crowds.(d) 0 else factory
  in
  Runner.with_runner ~n_domains:p.n_domains ~factory:runner_factory
  @@ fun runner ->
  let e0 = Runner.engine runner 0 in
  let n = e0.Engine_api.n_electrons in
  (* Rank-aware seeding: shard [rank] of a multi-rank VMC run draws its
     walker streams from a disjoint seed block, so rank ensembles never
     share a random sequence.  [rank = 0] reproduces the single-rank
     streams exactly. *)
  let rngs = Xoshiro.streams ~seed:(p.seed + (7919 * rank)) (p.n_walkers + 1) in
  (* Independent starting configurations, registered buffers. *)
  let states =
    Array.init p.n_walkers (fun i ->
        let w = Walker.create n in
        e0.Engine_api.randomize rngs.(i);
        e0.Engine_api.register_walker w;
        {
          walker = w;
          rng = rngs.(i);
          e_sum = 0.;
          e2_sum = 0.;
          n_meas = 0;
          accepted = 0;
          proposed = 0;
          drift = 0.;
        })
  in
  (* A "pass" runs [steps] sweeps for every walker, calling [measure]
     after each sweep when set, then [finish] once per walker.  The
     scalar path iterates walkers over the pool; the crowd path iterates
     walker GROUPS, each processed in lockstep by its domain's crowd. *)
  let pass ~steps ~measuring ~finish =
    let sweep_account (s : wstate) (r : Engine_api.sweep_result) =
      s.accepted <- s.accepted + r.Engine_api.accepted;
      s.proposed <- s.proposed + r.Engine_api.proposed
    in
    let measure_into (e : Engine_api.t) (s : wstate) =
      let el = e.Engine_api.measure () in
      s.walker.Walker.e_local <- el;
      s.e_sum <- s.e_sum +. el;
      s.e2_sum <- s.e2_sum +. (el *. el);
      s.n_meas <- s.n_meas + 1
    in
    if crowd = 1 then
      Runner.iter_walkers runner states ~f:(fun e s ->
          e.Engine_api.restore_walker s.walker;
          for _ = 1 to steps do
            let r = e.Engine_api.sweep s.rng ~tau:p.tau in
            if measuring then begin
              sweep_account s r;
              measure_into e s
            end
          done;
          finish e s)
    else begin
      let n_groups = (p.n_walkers + crowd - 1) / crowd in
      Runner.parallel_for runner ~n:n_groups ~f:(fun ~domain g ->
          let cr = crowds.(domain) in
          let lo = g * crowd in
          let m = min crowd (p.n_walkers - lo) in
          for s = 0 to m - 1 do
            (Crowd.engine cr s).Engine_api.restore_walker
              states.(lo + s).walker
          done;
          for _ = 1 to steps do
            let rs =
              Crowd.sweep cr ~active:m
                ~rng:(fun s -> states.(lo + s).rng)
                ~tau:p.tau
            in
            if measuring then
              for s = 0 to m - 1 do
                let st = states.(lo + s) in
                sweep_account st rs.(s);
                measure_into (Crowd.engine cr s) st
              done
          done;
          for s = 0 to m - 1 do
            finish (Crowd.engine cr s) states.(lo + s)
          done)
    end
  in
  (* Warmup: equilibrate each walker, then re-derive the wavefunction
     state from scratch to shed accumulated update error. *)
  Trace.with_span "vmc.warmup" (fun () ->
      pass ~steps:p.warmup ~measuring:false ~finish:(fun e s ->
          ignore (e.Engine_api.refresh ());
          e.Engine_api.save_walker s.walker));
  let block_energies = Array.make p.blocks 0. in
  let m_e_block = Metrics.gauge "vmc.e_block"
  and m_blocks = Metrics.counter "vmc.blocks"
  and m_acc = Metrics.counter "vmc.accepted"
  and m_prop = Metrics.counter "vmc.proposed" in
  let prev_acc = ref 0 and prev_prop = ref 0 in
  let t0 = Oqmc_containers.Timers.now () in
  for b = 0 to p.blocks - 1 do
    Trace.with_span ~args:[ ("block", string_of_int b) ] "vmc.block"
    @@ fun () ->
    (* Periodic recompute-from-scratch at block end: the mixed-precision
       accuracy safeguard of the paper — and the watchdog's drift
       metric. *)
    pass ~steps:p.steps_per_block ~measuring:true ~finish:(fun e s ->
        s.drift <- Float.max s.drift (Engine_api.drift e);
        e.Engine_api.save_walker s.walker);
    (* Observables accumulate serially from the stored walkers. *)
    (match observe with
    | Some f -> Array.iter (fun s -> f s.walker) states
    | None -> ());
    let bsum =
      Array.fold_left (fun acc s -> acc +. s.walker.Walker.e_local) 0. states
    in
    block_energies.(b) <- bsum /. float_of_int p.n_walkers;
    let cum_acc = Array.fold_left (fun a s -> a + s.accepted) 0 states in
    let cum_prop = Array.fold_left (fun a s -> a + s.proposed) 0 states in
    let b_acc = cum_acc - !prev_acc and b_prop = cum_prop - !prev_prop in
    prev_acc := cum_acc;
    prev_prop := cum_prop;
    Metrics.set m_e_block block_energies.(b);
    Metrics.inc m_blocks;
    Metrics.add m_acc b_acc;
    Metrics.add m_prop b_prop;
    let elapsed = Oqmc_containers.Timers.now () -. t0 in
    let acc_frac = float_of_int b_acc /. float_of_int (max 1 b_prop) in
    (if b mod telemetry_every = 0 then
       match telemetry with
       | Some sink ->
           Telemetry.emit sink
             Oqmc_obs.Jsonx.(Obj
                [
                  ("block", Num (float_of_int b));
                  ("e_block", Num block_energies.(b));
                  ("acceptance", Num acc_frac);
                  ( "walkers_per_s",
                    Num
                      (if elapsed > 0. then
                         float_of_int
                           (p.n_walkers * (b + 1) * p.steps_per_block)
                         /. elapsed
                       else 0.) );
                  ("wall_s", Num elapsed);
                ])
       | None -> ());
    match progress with
    | Some pr ->
        Progress.update pr
          (Printf.sprintf "vmc block %d/%d  E %+.6f  acc %.3f" (b + 1)
             p.blocks block_energies.(b) acc_frac)
    | None -> ()
  done;
  let wall_time = Oqmc_containers.Timers.now () -. t0 in
  (* Export the merged kernel-timer totals as [timer_us.*] counters for
     the efficiency audit (same counters the multi-rank executors feed). *)
  List.iter
    (fun (k, sec, _) ->
      if sec > 0. then
        Metrics.add
          (Metrics.counter ("timer_us." ^ k))
          (int_of_float (Float.round (sec *. 1e6))))
    (Oqmc_containers.Timers.snapshot (Runner.merged_timers runner));
  let tot_meas = Array.fold_left (fun a s -> a + s.n_meas) 0 states in
  let e_sum = Array.fold_left (fun a s -> a +. s.e_sum) 0. states in
  let e2_sum = Array.fold_left (fun a s -> a +. s.e2_sum) 0. states in
  let energy =
    if tot_meas = 0 then 0. else e_sum /. float_of_int tot_meas
  in
  let variance =
    if tot_meas = 0 then 0.
    else (e2_sum /. float_of_int tot_meas) -. (energy *. energy)
  in
  let acc = Array.fold_left (fun a s -> a + s.accepted) 0 states in
  let prop = Array.fold_left (fun a s -> a + s.proposed) 0 states in
  let bseries = Stats.make_series () in
  Array.iter (fun e -> Stats.append bseries e) block_energies;
  let tau_corr = Stats.autocorrelation_time bseries in
  {
    energy;
    energy_error =
      sqrt (Stats.series_variance bseries /. float_of_int p.blocks);
    variance;
    acceptance = float_of_int acc /. float_of_int (max 1 prop);
    throughput =
      (if wall_time > 0. then
         float_of_int (p.n_walkers * p.blocks * p.steps_per_block)
         /. wall_time
       else 0.);
    wall_time;
    tau_corr;
    samples = tot_meas;
    block_energies;
    drift_max = Array.fold_left (fun a s -> Float.max a s.drift) 0. states;
  }
