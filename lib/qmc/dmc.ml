open Oqmc_particle
open Oqmc_rng
module Trace = Oqmc_obs.Trace
module Metrics = Oqmc_obs.Metrics
module Telemetry = Oqmc_obs.Telemetry
module Progress = Oqmc_obs.Progress

(* Diffusion Monte Carlo driver (Alg. 1 of the paper).

   Each generation: every walker runs one particle-by-particle
   drift-and-diffusion sweep, measures its local energy, and is reweighted
   against the trial energy; then the population branches, the trial
   energy is updated by feedback, and a simulated load-balance step
   accounts for the walker messages a multi-rank run would exchange.

   Observability: each generation is a [dmc.generation] span with
   [dmc.sweep] / [dmc.watchdog] / [dmc.branch] / [dmc.checkpoint]
   children; per-generation estimator state lands in the metrics
   registry and, when a telemetry sink is attached, as one JSONL record
   per measured generation.  None of it touches the RNG stream or the
   arithmetic, so trajectories are bit-identical with tracing on or off
   (asserted in test/test_obs.ml). *)

type params = {
  target_walkers : int;
  warmup : int; (* equilibration generations, not measured *)
  generations : int;
  tau : float;
  seed : int;
  n_domains : int;
  ranks : int; (* simulated MPI ranks for the load-balance accounting *)
}

let default_params =
  {
    target_walkers = 16;
    warmup = 20;
    generations = 100;
    tau = 0.01;
    seed = 11;
    n_domains = 1;
    ranks = 1;
  }

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  efficiency : float; (* κ = 1/(σ² τ_corr T_MC) *)
  acceptance : float;
  throughput : float; (* MC samples per second *)
  wall_time : float;
  mean_population : float;
  energy_series : float array; (* per-generation weighted estimate *)
  population_series : int array;
  comm_messages : int;
  comm_bytes : int;
  final_walkers : Walker.t list; (* for checkpointing *)
  final_e_trial : float;
  integrity : Integrity.stats; (* watchdog + checkpoint counters *)
}

type wslot = { mutable walker : Walker.t; rng : Xoshiro.t }

(* Everything after a walker's sweep is per-walker and identical in the
   scalar and crowd paths: measure, reweight against the trial energy,
   age bookkeeping, state saved back into the walker.  The accepted-move
   count rides in [multiplicity] until the serial accounting pass. *)
let settle ~tau ~e_trial ~gen (e : Engine_api.t) (s : wslot)
    (r : Engine_api.sweep_result) =
  let w = s.walker in
  let e_old = w.Walker.e_local in
  let e_new = e.Engine_api.measure () in
  let e_new = Fault.tamper_energy ~gen ~walker_id:w.Walker.id e_new in
  Population.dmc_weight ~tau ~e_trial ~e_old ~e_new w;
  w.Walker.e_local <- e_new;
  w.Walker.age <-
    (if r.Engine_api.accepted = 0 then w.Walker.age + 1 else 0);
  e.Engine_api.save_walker w;
  w.Walker.multiplicity <- r.Engine_api.accepted

(* One generation's drift-diffusion sweep + reweighting over [pop],
   fanned out over the runner's engines.  This is THE per-generation
   DMC physics: the single-process driver below and the multi-rank
   shard executor (lib/dist) both call it, so a rank shard's
   trajectory is the single-process trajectory by construction.
   Returns the (accepted, proposed) move totals. *)
let sweep_generation runner pop ~next_rng ~gen ~tau ~e_trial =
  let ws = Array.of_list (Population.walkers pop) in
  let slots = Array.map (fun w -> { walker = w; rng = next_rng () }) ws in
  Runner.iter_walkers runner slots ~f:(fun e s ->
      e.Engine_api.restore_walker s.walker;
      let r = e.Engine_api.sweep s.rng ~tau in
      settle ~tau ~e_trial ~gen e s r);
  let n = (Runner.engine runner 0).Engine_api.n_electrons in
  let acc = ref 0 and prop = ref 0 in
  Array.iter
    (fun s ->
      acc := !acc + s.walker.Walker.multiplicity;
      prop := !prop + n;
      s.walker.Walker.multiplicity <- 1)
    slots;
  (!acc, !prop)

let run ?initial ?observe ?(checkpoint_every = 0) ?checkpoint_path
    ?(checkpoint_keep = 3) ?watchdog ?(crowd = 1) ?telemetry
    ?(telemetry_every = 1) ?progress
    ~(factory : int -> Engine_api.t) (p : params) : result =
  if p.target_walkers < 1 then invalid_arg "Dmc.run: target_walkers < 1";
  if crowd < 1 then invalid_arg "Dmc.run: crowd < 1";
  let telemetry_every = max 1 telemetry_every in
  (* Crowd mode: each domain owns [crowd] lockstep engines; the runner's
     per-domain engine is the crowd's slot 0, so watchdog audits and
     engine-0 bookkeeping work unchanged. *)
  let crowds =
    if crowd > 1 then
      Array.init p.n_domains (fun d ->
          Crowd.create ~factory ~base:(d * crowd) ~size:crowd ())
    else [||]
  in
  let runner_factory =
    if crowd > 1 then fun d -> Crowd.engine crowds.(d) 0 else factory
  in
  Runner.with_runner ~n_domains:p.n_domains ~factory:runner_factory
  @@ fun runner ->
  let e0 = Runner.engine runner 0 in
  let n = e0.Engine_api.n_electrons in
  let master_rng = Xoshiro.create p.seed in
  let rng_pool = ref (Xoshiro.create (p.seed + 1)) in
  let next_rng () = Xoshiro.split !rng_pool in
  (* Initial population: restored from a checkpoint, or fresh walkers
     with measured local energies. *)
  let init_walkers, e_init =
    match initial with
    | Some (e_trial, walkers) when walkers <> [] -> (walkers, e_trial)
    | _ ->
        let ws =
          List.init p.target_walkers (fun _ ->
              let w = Walker.create n in
              e0.Engine_api.randomize master_rng;
              let el = e0.Engine_api.measure () in
              w.Walker.e_local <- el;
              e0.Engine_api.register_walker w;
              w)
        in
        ( ws,
          List.fold_left (fun a w -> a +. w.Walker.e_local) 0. ws
          /. float_of_int p.target_walkers )
  in
  let pop =
    Population.create ~target:p.target_walkers ~e_trial:e_init init_walkers
  in
  let acc_total = ref 0 and prop_total = ref 0 in
  let comm_messages = ref 0 and comm_bytes = ref 0 in
  let energy_series = Stats.make_series () in
  let pop_series = ref [] in
  let sample_count = ref 0 in
  let integrity = Integrity.create_stats () in
  let gen_index = ref 0 in (* absolute generation counter, warmup included *)
  (* Metric handles are created once; the registry is global, so a
     multi-run process accumulates across runs (counters) while gauges
     always reflect the latest generation. *)
  let m_population = Metrics.gauge "dmc.population"
  and m_e_gen = Metrics.gauge "dmc.e_gen"
  and m_e_trial = Metrics.gauge "dmc.e_trial"
  and m_acc = Metrics.counter "dmc.accepted"
  and m_prop = Metrics.counter "dmc.proposed"
  and m_gens = Metrics.counter "dmc.generations"
  and m_branch = Metrics.histogram "dmc.branch_multiplicity"
  and m_ckpt = Metrics.histogram "dmc.checkpoint_s"
  and m_ckpt_fail = Metrics.counter "dmc.checkpoint_failures" in
  let run_t0 = Oqmc_containers.Timers.now () in
  let total_gens = p.warmup + p.generations in
  let step ~measure_stats =
    incr gen_index;
    let gen = !gen_index in
    Trace.with_span ~args:[ ("gen", string_of_int gen) ] "dmc.generation"
    @@ fun () ->
    let e_trial = Population.e_trial pop in
    let gen_acc = ref 0 and gen_prop = ref 0 in
    Trace.with_span "dmc.sweep" (fun () ->
        if crowd = 1 then begin
          let acc, prop =
            sweep_generation runner pop ~next_rng ~gen ~tau:p.tau ~e_trial
          in
          gen_acc := acc;
          gen_prop := prop
        end
        else begin
          (* Branching changes the population every generation, so groups
             are re-formed each step; the last group may be partial. *)
          let ws = Array.of_list (Population.walkers pop) in
          let slots =
            Array.map (fun w -> { walker = w; rng = next_rng () }) ws
          in
          let nw = Array.length slots in
          let n_groups = (nw + crowd - 1) / crowd in
          Runner.parallel_for runner ~n:n_groups ~f:(fun ~domain g ->
              let cr = crowds.(domain) in
              let lo = g * crowd in
              let m = min crowd (nw - lo) in
              for s = 0 to m - 1 do
                (Crowd.engine cr s).Engine_api.restore_walker
                  slots.(lo + s).walker
              done;
              let rs =
                Crowd.sweep cr ~active:m
                  ~rng:(fun s -> slots.(lo + s).rng)
                  ~tau:p.tau
              in
              for s = 0 to m - 1 do
                settle ~tau:p.tau ~e_trial ~gen
                  (Crowd.engine cr s) slots.(lo + s) rs.(s)
              done);
          Array.iter
            (fun s ->
              gen_acc := !gen_acc + s.walker.Walker.multiplicity;
              gen_prop := !gen_prop + n;
              s.walker.Walker.multiplicity <- 1)
            slots
        end);
    acc_total := !acc_total + !gen_acc;
    prop_total := !prop_total + !gen_prop;
    Metrics.add m_acc !gen_acc;
    Metrics.add m_prop !gen_prop;
    Metrics.inc m_gens;
    (* Watchdog before the estimator: poisoned walkers must never feed
       the mixed estimator or the trial-energy feedback. *)
    (match watchdog with
    | Some cfg ->
        Trace.with_span "dmc.watchdog" (fun () ->
            Integrity.watchdog cfg integrity ~gen ~rng:master_rng runner pop)
    | None -> ());
    (* Weighted mixed estimator for this generation. *)
    let wsum, esum = Population.weighted_energy_sums pop in
    let e_gen = if wsum > 0. then esum /. wsum else e_trial in
    let measured_pop = Population.size pop in
    if measure_stats then begin
      Stats.append energy_series e_gen;
      pop_series := measured_pop :: !pop_series;
      sample_count := !sample_count + measured_pop;
      match observe with
      | Some f -> List.iter f (Population.walkers pop)
      | None -> ()
    end;
    Trace.with_span "dmc.branch" (fun () ->
        Population.branch pop master_rng);
    let size_after = Population.size pop in
    Metrics.observe m_branch
      (float_of_int size_after /. float_of_int (max 1 measured_pop));
    Population.update_trial_energy pop ~tau:p.tau ~e_estimate:e_gen;
    Metrics.set m_population (float_of_int size_after);
    Metrics.set m_e_gen e_gen;
    Metrics.set m_e_trial (Population.e_trial pop);
    if p.ranks > 1 then begin
      let report = Population.load_balance pop ~ranks:p.ranks in
      comm_messages := !comm_messages + report.Population.messages;
      comm_bytes := !comm_bytes + report.Population.bytes
    end;
    (* Periodic crash-safe checkpoint: a failed write must not kill the
       run — it is counted and retried at the next interval. *)
    (match checkpoint_path with
    | Some path when checkpoint_every > 0 && gen mod checkpoint_every = 0
      -> (
        Trace.with_span "dmc.checkpoint" @@ fun () ->
        let ck0 = Oqmc_containers.Timers.now () in
        try
          Checkpoint.save_generation ~keep:checkpoint_keep ~path ~gen
            ~e_trial:(Population.e_trial pop)
            (Population.walkers pop);
          Metrics.observe m_ckpt (Oqmc_containers.Timers.now () -. ck0);
          integrity.Integrity.checkpoints_written <-
            integrity.Integrity.checkpoints_written + 1
        with Sys_error _ | Checkpoint.Corrupt _ ->
          Metrics.inc m_ckpt_fail;
          integrity.Integrity.checkpoint_failures <-
            integrity.Integrity.checkpoint_failures + 1)
    | _ -> ());
    let elapsed = Oqmc_containers.Timers.now () -. run_t0 in
    (if measure_stats && (gen - p.warmup) mod telemetry_every = 0 then
       match telemetry with
       | Some sink ->
           Telemetry.emit sink
             Oqmc_obs.Jsonx.(Obj
                [
                  ("gen", Num (float_of_int gen));
                  ("e_gen", Num e_gen);
                  ("e_trial", Num (Population.e_trial pop));
                  ("population", Num (float_of_int size_after));
                  ( "acceptance",
                    Num
                      (float_of_int !gen_acc
                      /. float_of_int (max 1 !gen_prop)) );
                  ( "walkers_per_s",
                    Num
                      (if elapsed > 0. then
                         float_of_int !sample_count /. elapsed
                       else 0.) );
                  ( "quarantined",
                    Num (float_of_int integrity.Integrity.quarantined) );
                  ("wall_s", Num elapsed);
                ])
       | None -> ());
    match progress with
    | Some pr ->
        Progress.update pr
          (Printf.sprintf
             "dmc gen %d/%d  E %+.6f  E_T %+.6f  pop %d  acc %.3f" gen
             total_gens e_gen (Population.e_trial pop) size_after
             (float_of_int !gen_acc /. float_of_int (max 1 !gen_prop)))
    | None -> ()
  in
  for _ = 1 to p.warmup do
    step ~measure_stats:false
  done;
  let t0 = Oqmc_containers.Timers.now () in
  for _ = 1 to p.generations do
    step ~measure_stats:true
  done;
  let wall_time = Oqmc_containers.Timers.now () -. t0 in
  (* Export the merged kernel-timer totals as [timer_us.*] counters so
     the efficiency audit sees per-kernel time on the single-process
     path too (the multi-rank executors feed the same counters). *)
  List.iter
    (fun (k, sec, _) ->
      if sec > 0. then
        Metrics.add
          (Metrics.counter ("timer_us." ^ k))
          (int_of_float (Float.round (sec *. 1e6))))
    (Oqmc_containers.Timers.snapshot (Runner.merged_timers runner));
  let energy = Stats.series_mean energy_series in
  let variance = Stats.series_variance energy_series in
  let tau_corr = Stats.autocorrelation_time energy_series in
  let pops = Array.of_list (List.rev !pop_series) in
  (* Tiny runs can finish between two clock ticks: guard every division
     by [wall_time] so the result is NaN-free. *)
  {
    energy;
    energy_error = Stats.series_error energy_series;
    variance;
    tau_corr;
    efficiency =
      (if wall_time > 0. then
         Stats.efficiency ~variance ~tau_corr ~t_mc:wall_time
       else 0.);
    acceptance = float_of_int !acc_total /. float_of_int (max 1 !prop_total);
    throughput =
      (if wall_time > 0. then float_of_int !sample_count /. wall_time
       else 0.);
    wall_time;
    mean_population =
      (if Array.length pops = 0 then 0.
       else
         float_of_int (Array.fold_left ( + ) 0 pops)
         /. float_of_int (Array.length pops));
    energy_series = Stats.to_array energy_series;
    population_series = pops;
    comm_messages = !comm_messages;
    comm_bytes = !comm_bytes;
    final_walkers = Population.walkers pop;
    final_e_trial = Population.e_trial pop;
    integrity = Integrity.copy_stats integrity;
  }
