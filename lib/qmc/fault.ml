open Oqmc_particle
open Oqmc_containers

(* Deterministic, seeded fault injection for the run-integrity tests.

   Every recovery path in the checkpoint/watchdog subsystem is proved by
   firing the corresponding injector: NaN local energies mid-sweep,
   bit-flipped walker-buffer entries, truncated or garbled checkpoint
   files, and transient IO failures during checkpoint writes.  All
   injectors are disarmed by default and cost one atomic/ref read on the
   hot path; [reset] returns the harness to the disarmed state. *)

(* ---------- transient IO failures ---------- *)

type io_point = Checkpoint_write | Checkpoint_rename

let write_failures = Atomic.make 0
let rename_failures = Atomic.make 0
let io_injected = Atomic.make 0

let slot = function
  | Checkpoint_write -> write_failures
  | Checkpoint_rename -> rename_failures

let arm_io_failure point ~times =
  if times < 0 then invalid_arg "Fault.arm_io_failure: times < 0";
  Atomic.set (slot point) times

(* Consume one armed failure; true when the caller must raise. *)
let should_fail_io point =
  let s = slot point in
  let rec go () =
    let v = Atomic.get s in
    if v <= 0 then false
    else if Atomic.compare_and_set s v (v - 1) then begin
      Atomic.incr io_injected;
      true
    end
    else go ()
  in
  go ()

let io_injected_count () = Atomic.get io_injected

(* ---------- NaN local energies ---------- *)

type nan_plan = { seed : int; rate : float }

let nan_energy : nan_plan option ref = ref None
let nans_injected = Atomic.make 0

let arm_nan_energy ~seed ~rate =
  if rate < 0. || rate > 1. then
    invalid_arg "Fault.arm_nan_energy: rate outside [0,1]";
  nan_energy := Some { seed; rate }

(* Applied by the DMC sweep to every measured local energy.  The decision
   is a pure hash of (seed, generation, walker id), so injections are
   reproducible regardless of domain count or scheduling. *)
let tamper_energy ~gen ~walker_id e =
  match !nan_energy with
  | None -> e
  | Some { seed; rate } ->
      if
        Hashtbl.hash (seed, gen, walker_id) mod 10_000
        < int_of_float (rate *. 10_000.)
      then begin
        Atomic.incr nans_injected;
        Float.nan
      end
      else e

let nans_injected_count () = Atomic.get nans_injected

(* ---------- rank-level faults ----------

   Process-level failures of the supervised multi-rank layer, armed
   INSIDE the worker rank process (the supervisor forwards each rank its
   own plan before the generation loop starts).  A fault fires when the
   rank begins the generation it is armed for, exactly once:

   - [Rank_kill]: the rank SIGKILLs itself — a segfault/OOM stand-in;
   - [Rank_stall s]: the rank sleeps [s] seconds without heartbeating,
     tripping the supervisor's heartbeat deadline;
   - [Rank_garbage]: the rank emits one corrupted wire frame, exercising
     the protocol's CRC rejection path;
   - [Rank_disk_full n]: the rank's next [n] checkpoint writes fail with
     [Sys_error] (armed through [arm_io_failure]), simulating a full or
     flaky filesystem under the shard-save path. *)

type rank_fault =
  | Rank_kill
  | Rank_stall of float
  | Rank_garbage
  | Rank_disk_full of int

let rank_faults : (int, rank_fault) Hashtbl.t = Hashtbl.create 8

let arm_rank_fault ~gen f =
  if gen < 0 then invalid_arg "Fault.arm_rank_fault: gen < 0";
  Hashtbl.replace rank_faults gen f

(* Consume the fault armed for [gen], if any. *)
let rank_fault_due ~gen =
  match Hashtbl.find_opt rank_faults gen with
  | Some f ->
      Hashtbl.remove rank_faults gen;
      Some f
  | None -> None

let reset () =
  Atomic.set write_failures 0;
  Atomic.set rename_failures 0;
  Atomic.set io_injected 0;
  nan_energy := None;
  Atomic.set nans_injected 0;
  Hashtbl.reset rank_faults

(* ---------- direct walker poisoners ---------- *)

let poison_energy (w : Walker.t) = w.Walker.e_local <- Float.nan
let poison_weight (w : Walker.t) = w.Walker.weight <- Float.nan

let poison_position (w : Walker.t) ~index =
  Walker.Aos.set w.Walker.r index (Vec3.make Float.nan 0. 0.)

let drift_log_psi (w : Walker.t) ~delta =
  w.Walker.log_psi <- w.Walker.log_psi +. delta

let flip_buffer_bit (w : Walker.t) ~index ~bit =
  if bit < 0 || bit > 63 then invalid_arg "Fault.flip_buffer_bit: bit";
  let buf = w.Walker.buffer in
  let data = Wbuffer.contents buf in
  if index < 0 || index >= Array.length data then
    invalid_arg "Fault.flip_buffer_bit: index";
  data.(index) <-
    Int64.float_of_bits
      (Int64.logxor
         (Int64.bits_of_float data.(index))
         (Int64.shift_left 1L bit));
  Wbuffer.clear buf;
  Array.iter (Wbuffer.add buf) data;
  Wbuffer.rewind buf

(* ---------- checkpoint-file corrupters ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

(* Keep only the first [lines] lines of the file. *)
let truncate_file ~path ~lines =
  if lines < 0 then invalid_arg "Fault.truncate_file: lines < 0";
  let content = read_file path in
  let len = String.length content in
  let rec cut i remaining =
    if remaining = 0 || i >= len then i
    else
      match String.index_from_opt content i '\n' with
      | None -> len
      | Some j -> cut (j + 1) (remaining - 1)
  in
  write_file path (String.sub content 0 (cut 0 lines))

(* Keep only the first [bytes] bytes of the file. *)
let truncate_file_bytes ~path ~bytes =
  if bytes < 0 then invalid_arg "Fault.truncate_file_bytes: bytes < 0";
  let content = read_file path in
  write_file path (String.sub content 0 (min bytes (String.length content)))

(* Deterministically corrupt ~1/64 of the bytes (at least one) by xoring
   with 0x55, which always changes the byte. *)
let garble_file ~path ~seed =
  let content = Bytes.of_string (read_file path) in
  let n = Bytes.length content in
  if n > 0 then begin
    let rng = Oqmc_rng.Xoshiro.create seed in
    for _ = 1 to max 1 (n / 64) do
      let i =
        min (n - 1) (int_of_float (Oqmc_rng.Xoshiro.uniform rng *. float_of_int n))
      in
      Bytes.set content i (Char.chr (Char.code (Bytes.get content i) lxor 0x55))
    done;
    write_file path (Bytes.to_string content)
  end
