(** Minimal line-oriented input deck ([key = value], [#] comments) for the
    production driver.  Unknown keys are rejected. *)

type t = {
  method_ : string;
  workload : string;
  variant : Variant.t;
  reduction : int;
  walkers : int;
  blocks : int;
  steps : int;
  tau : float;
  domains : int;
  crowd : int;
      (** walkers advanced in lockstep per domain through batched SPO
          kernels; 1 = scalar reference path *)
  delay : int;
      (** delayed determinant-update rank (Woodbury block size); 1 (the
          default) keeps the rank-1 Sherman–Morrison update.  Values < 1
          are rejected at parse time. *)
  precision : [ `F32 | `F64 ] option;
      (** [precision = f32|f64] working-precision override (orbital table
          storage + engine arithmetic); [None] keeps the variant's
          default.  Also accepts [single]/[double]. *)
  precision_dt : [ `F32 | `F64 ] option;
      (** SoA distance-table storage precision; [None] follows
          [precision].  Setting f32 explicitly auto-arms the DMC
          watchdog drift audit. *)
  precision_jastrow : [ `F32 | `F64 ] option;
      (** Jastrow radial-spline coefficient precision (coefficients are
          rounded through f32 storage at build time); [None] follows
          [precision]. *)
  precision_inv : [ `F32 | `F64 ] option;
      (** Inverse-matrix / delayed-update panel storage precision;
          [None] follows [precision]. *)
  layout : [ `Flat | `Tiled ] option;
      (** [layout = flat|tiled] orbital-table layout.  [None] keeps the
          flat table unless [autotune = true] picks the tiled one. *)
  tile : int;
      (** Orbital tile size for [layout = tiled]; 0 (the default) lets
          the tuner/builder choose.  Values < 0 are rejected. *)
  autotune : bool;
      (** [autotune = true] lets {!Oqmc_autotune} pick crowd, delay,
          grain and orbital tile from the roofline/memory model before
          the run starts *)
  nlpp : bool;
  seed : int;
  checkpoint : string option;
  checkpoint_every : int;
      (** DMC: checkpoint every N generations (0 disables) *)
  checkpoint_keep : int;  (** checkpoint generations retained *)
  watchdog : int;
      (** DMC: recompute-audit cadence of the walker watchdog
          (0 disables the watchdog) *)
  restore : string option;
  ranks : int;
      (** > 1 = supervised multi-process execution ({!Oqmc_dist}) *)
  heartbeat_ms : int;  (** per-rank message deadline in milliseconds *)
  max_respawn : int;
      (** respawns per rank before it is abandoned and the run degrades *)
  elastic : bool;
      (** enable elastic rank membership (join/leave/drain) and, with
          [gen_deadline_ms > 0], async double-buffered shard
          checkpoints *)
  gen_deadline_ms : int;
      (** soft per-generation budget feeding the straggler policy;
          0 = classic lockstep.  Values < 0 are rejected at parse time *)
  straggler_policy : string;
      (** ["warn"], ["steal"] or ["quarantine"] (validated at parse
          time) *)
  plan : string;
      (** exchange planning mode: ["count"] (even split, the default,
          bit-identical to the historical planner) or ["load"]
          (throughput-proportional split from the per-rank ledger).
          Result-determining, so it is part of the canonical deck *)
  trace : string option;
      (** write a Chrome trace_event JSON timeline here (load it in
          Perfetto / chrome://tracing) *)
  telemetry : string option;
      (** write one JSON record per measured generation/block here *)
  telemetry_every : int;  (** emit every n-th record (default 1) *)
  progress : bool;  (** live one-line progress on stderr *)
}

val default : t

exception Parse_error of string

val parse_string : string -> t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> t

val canonical : t -> string
(** Canonical deck text: the result-determining knobs only (physics,
    sampling, sharding, precision — not checkpoint/telemetry/trace
    paths), in a fixed order with floats printed as hex.  Two decks that
    parse to the same physics yield byte-identical canonical forms
    regardless of key order, comments, whitespace or case. *)

val deck_hash : t -> string
(** Hex digest of {!canonical} — the serve-layer result-cache key. *)
