(** A crowd of walkers marching in lockstep through the PbP sweep (the
    hierarchical-parallelism layer of QMCPACK's batched drivers): one
    crowd per domain, [size] engines (one per resident walker) and one
    batched SPO context, so each per-electron move costs two batched
    kernel calls for the whole crowd instead of two scalar calls per
    walker.  Per walker, arithmetic and RNG draw order are identical to
    [Engine_api.sweep] — crowd trajectories are bit-identical to the
    scalar reference on the double path. *)

type t

val create : factory:(int -> Engine_api.t) -> base:int -> size:int -> t
(** Engines are built by [factory (base + s)] for slot [s < size] — give
    each domain's crowd a distinct [base] so engine seeds stay unique.
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val engine : t -> int -> Engine_api.t
(** The engine holding slot [s]'s walker state — use it to
    restore/measure/save that walker exactly as in the scalar driver. *)

val sweep :
  t ->
  active:int ->
  rng:(int -> Oqmc_rng.Xoshiro.t) ->
  tau:float ->
  Engine_api.sweep_result array
(** One drift-and-diffusion sweep of walkers [0..active-1] in lockstep;
    [rng s] is slot [s]'s stream.
    @raise Invalid_argument unless [1 <= active <= size]. *)
