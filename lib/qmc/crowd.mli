(** A crowd of walkers marching in lockstep through the PbP sweep (the
    hierarchical-parallelism layer of QMCPACK's batched drivers): one
    crowd per domain, [size] engines (one per resident walker) and one
    batched SPO context, so each per-electron move costs two batched
    kernel calls for the whole crowd instead of two scalar calls per
    walker.  Per walker, arithmetic and RNG draw order are identical to
    [Engine_api.sweep] — crowd trajectories are bit-identical to the
    scalar reference on the double path. *)

type t

val create :
  ?pipeline:bool -> factory:(int -> Engine_api.t) -> base:int -> size:int ->
  unit -> t
(** Engines are built by [factory (base + s)] for slot [s < size] — give
    each domain's crowd a distinct [base] so engine seeds stay unique.

    [pipeline] (default [true]) asks for the full-pipeline batched sweep:
    distance-table, Jastrow and determinant kernels fused across the
    crowd per stage, in addition to the batched SPO evaluations.  It
    takes effect only when every engine publishes a matching crowd hook
    ({!pipelined} reports the outcome); otherwise — and always with
    [pipeline:false] — the crowd runs the staged per-walker path with
    batched SPO only.  Both paths are bit-identical to the scalar
    [Engine_api.sweep] on the double-precision path.
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

val pipelined : t -> bool
(** Whether this crowd runs the full batched pipeline. *)

val engine : t -> int -> Engine_api.t
(** The engine holding slot [s]'s walker state — use it to
    restore/measure/save that walker exactly as in the scalar driver. *)

val sweep :
  t ->
  active:int ->
  rng:(int -> Oqmc_rng.Xoshiro.t) ->
  tau:float ->
  Engine_api.sweep_result array
(** One drift-and-diffusion sweep of walkers [0..active-1] in lockstep;
    [rng s] is slot [s]'s stream.
    @raise Invalid_argument unless [1 <= active <= size]. *)
