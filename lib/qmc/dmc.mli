(** Diffusion Monte Carlo driver (Alg. 1 of the paper): drift-and-diffusion
    sweeps, reweighting against the trial energy, stochastic branching,
    feedback population control and simulated-rank load balancing. *)

type params = {
  target_walkers : int;
  warmup : int;  (** equilibration generations, not measured *)
  generations : int;
  tau : float;
  seed : int;
  n_domains : int;
  ranks : int;  (** simulated MPI ranks for the exchange accounting *)
}

val default_params : params

val sweep_generation :
  Runner.t ->
  Population.t ->
  next_rng:(unit -> Oqmc_rng.Xoshiro.t) ->
  gen:int ->
  tau:float ->
  e_trial:float ->
  int * int
(** One generation's drift-diffusion sweep + reweighting over the
    population, fanned out over the runner's engines — the
    per-generation DMC physics shared by {!run} and the multi-rank
    shard executor (lib/dist), so a rank shard's trajectory is the
    single-process trajectory by construction.  Each walker draws a
    fresh stream from [next_rng] in ensemble order.  Returns the
    (accepted, proposed) move totals. *)

type result = {
  energy : float;
  energy_error : float;
  variance : float;
  tau_corr : float;
  efficiency : float;  (** κ = 1/(σ² τ_corr T_MC) *)
  acceptance : float;
  throughput : float;
  wall_time : float;
  mean_population : float;
  energy_series : float array;
  population_series : int array;
  comm_messages : int;
  comm_bytes : int;  (** serialized-walker exchange volume *)
  final_walkers : Oqmc_particle.Walker.t list;  (** for checkpointing *)
  final_e_trial : float;
  integrity : Integrity.stats;
      (** watchdog quarantine/recovery/drift counters plus periodic
          checkpoint successes and failures *)
}

val run :
  ?initial:float * Oqmc_particle.Walker.t list ->
  ?observe:(Oqmc_particle.Walker.t -> unit) ->
  ?checkpoint_every:int ->
  ?checkpoint_path:string ->
  ?checkpoint_keep:int ->
  ?watchdog:Integrity.config ->
  ?crowd:int ->
  ?telemetry:Oqmc_obs.Telemetry.sink ->
  ?telemetry_every:int ->
  ?progress:Oqmc_obs.Progress.t ->
  factory:(int -> Engine_api.t) ->
  params ->
  result
(** [initial] resumes from a checkpointed (e_trial, walkers) ensemble;
    [observe] is called per walker per measured generation.

    [telemetry] attaches a JSONL sink that receives one record per
    measured generation (every [telemetry_every]-th, default 1) with
    gen / e_gen / e_trial / population / acceptance / walkers_per_s /
    quarantined / wall_s; [progress] attaches a live single-line
    progress display updated every generation.  Each generation is also
    recorded as a [dmc.generation] trace span (with sweep / watchdog /
    branch / checkpoint children) when {!Oqmc_obs.Trace} is enabled,
    and estimator state lands in the {!Oqmc_obs.Metrics} registry.
    None of this perturbs the RNG stream: trajectories are
    bit-identical with observability on or off.

    When [checkpoint_path] is given and [checkpoint_every > 0], the
    ensemble is checkpointed every [checkpoint_every] generations
    (warmup included) via {!Checkpoint.save_generation}, rotating the
    newest [checkpoint_keep] (default 3) generations; a failed write is
    counted in [integrity.checkpoint_failures] and the run continues.

    [watchdog] enables the {!Integrity} walker watchdog: a NaN/Inf
    poison scan every generation plus a sampled full-recompute audit
    every [check_every] generations, run before the mixed estimator so
    poisoned walkers never bias the energy or the trial-energy feedback.

    [crowd] (default 1) sets the number of walkers each domain advances
    in lockstep through batched SPO kernels; per-walker trajectories are
    bit-identical to the scalar path.
    @raise Invalid_argument if [target_walkers < 1] or [crowd < 1]. *)
