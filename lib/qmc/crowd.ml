open Oqmc_containers
open Oqmc_rng

(* A crowd of walkers marching in lockstep through the PbP sweep — the
   hierarchical-parallelism layer of Luo et al. 2022 on top of the
   paper's walker-per-thread design.  One crowd lives inside one domain:
   it owns [size] engines (one mutable engine state per resident walker)
   and a single batched SPO context, and advances every walker through
   electron k together.

   Two sweep paths share the driver:

   - the full pipeline (default, when every engine publishes a matching
     crowd hook): EVERY move kernel is batched — distance-table rows,
     one-/two-body Jastrow rows, determinant ratio dots and inverse
     updates each run as one fused call per crowd per stage, on top of
     the two batched SPO evaluations;

   - the staged fallback (PR 2 behavior, [pipeline:false] or a declined
     hook): only the SPO evaluations are batched, and each engine runs
     its scalar per-walker stages around them.

   Per walker the arithmetic and RNG draw order are identical to
   [Engine_api.sweep] (gaussian at k, then uniform at k), so crowd
   trajectories on the double-precision path are bit-identical to the
   scalar reference on BOTH paths. *)

type t = {
  engines : Engine_api.t array;
  batch : Oqmc_wavefunction.Spo.vgl_batch;
  stages : Engine_api.crowd_stage option;
  pos : Vec3.t array; (* current positions of electron k, per slot *)
  newpos : Vec3.t array;
  chi : Vec3.t array; (* gaussian displacements, for the GF correction *)
  accepted : int array;
  (* pipeline-path scratch *)
  ratio : float array;
  gx : float array;
  gy : float array;
  gz : float array;
  acc : bool array;
}

let create ?(pipeline = true) ~(factory : int -> Engine_api.t) ~base ~size
    () =
  if size < 1 then invalid_arg "Crowd.create: size < 1";
  let engines = Array.init size (fun s -> factory (base + s)) in
  let stages =
    if pipeline then
      engines.(0).Engine_api.make_crowd_stages
        (Array.map (fun e -> e.Engine_api.crowd_hook) engines)
    else None
  in
  {
    engines;
    batch = engines.(0).Engine_api.make_vgl_batch size;
    stages;
    pos = Array.make size Vec3.zero;
    newpos = Array.make size Vec3.zero;
    chi = Array.make size Vec3.zero;
    accepted = Array.make size 0;
    ratio = Array.make size 1.;
    gx = Array.make size 0.;
    gy = Array.make size 0.;
    gz = Array.make size 0.;
    acc = Array.make size false;
  }

let size t = Array.length t.engines
let engine t s = t.engines.(s)
let pipelined t = Option.is_some t.stages

(* Staged fallback: batched SPO only, scalar per-walker stages. *)
let sweep_staged t ~active ~(rng : int -> Xoshiro.t) ~tau =
  let n = t.engines.(0).Engine_api.n_electrons in
  let sqrt_tau = sqrt tau in
  let timers0 = t.engines.(0).Engine_api.timers in
  for k = 0 to n - 1 do
    (* Stage 1: batched SPO at the crowd's current electron-k positions,
       then per-walker drift, diffusion draw and proposal. *)
    for s = 0 to active - 1 do
      let pb = t.engines.(s).Engine_api.pbp in
      pb.Engine_api.prepare k;
      t.pos.(s) <- pb.Engine_api.current_pos k
    done;
    Timers.time timers0 "Bspline-vgh" (fun () ->
        t.batch.Oqmc_wavefunction.Spo.run t.pos active);
    for s = 0 to active - 1 do
      let pb = t.engines.(s).Engine_api.pbp in
      pb.Engine_api.stage_vgl t.batch.Oqmc_wavefunction.Spo.slots.(s);
      let gold = pb.Engine_api.grad k in
      let cx, cy, cz = Xoshiro.gaussian_vec3 (rng s) in
      let chi =
        Vec3.make (sqrt_tau *. cx) (sqrt_tau *. cy) (sqrt_tau *. cz)
      in
      let rk = t.pos.(s) in
      let newpos = Vec3.add rk (Vec3.add (Vec3.scale tau gold) chi) in
      t.chi.(s) <- chi;
      t.newpos.(s) <- newpos;
      pb.Engine_api.propose k newpos
    done;
    (* Stage 2: batched SPO at the proposed positions, then per-walker
       Metropolis decision with the drifted-Gaussian GF correction. *)
    Timers.time timers0 "Bspline-vgh" (fun () ->
        t.batch.Oqmc_wavefunction.Spo.run t.newpos active);
    for s = 0 to active - 1 do
      let pb = t.engines.(s).Engine_api.pbp in
      pb.Engine_api.stage_vgl t.batch.Oqmc_wavefunction.Spo.slots.(s);
      let ratio, gnew = pb.Engine_api.ratio_grad k in
      let rk = t.pos.(s) and newpos = t.newpos.(s) and chi = t.chi.(s) in
      let back = Vec3.sub (Vec3.sub rk newpos) (Vec3.scale tau gnew) in
      let log_gf = -.Vec3.norm2 chi /. (2. *. tau) in
      let log_gb = -.Vec3.norm2 back /. (2. *. tau) in
      let p = ratio *. ratio *. exp (log_gb -. log_gf) in
      if Xoshiro.uniform (rng s) < p then begin
        t.accepted.(s) <- t.accepted.(s) + 1;
        pb.Engine_api.accept k ~ratio
      end
      else pb.Engine_api.reject k
    done
  done

(* Full pipeline: the per-walker expressions (drift, proposal, GF
   correction, Metropolis) are kept verbatim from the staged path; every
   engine-side kernel goes through the fused crowd stages. *)
let sweep_pipeline t (cs : Engine_api.crowd_stage) ~active
    ~(rng : int -> Xoshiro.t) ~tau =
  let n = t.engines.(0).Engine_api.n_electrons in
  let sqrt_tau = sqrt tau in
  let timers0 = t.engines.(0).Engine_api.timers in
  for k = 0 to n - 1 do
    cs.Engine_api.cs_prepare ~k ~m:active;
    for s = 0 to active - 1 do
      t.pos.(s) <- (t.engines.(s).Engine_api.pbp).Engine_api.current_pos k
    done;
    Timers.time timers0 "Bspline-vgh" (fun () ->
        t.batch.Oqmc_wavefunction.Spo.run t.pos active);
    Array.fill t.gx 0 active 0.;
    Array.fill t.gy 0 active 0.;
    Array.fill t.gz 0 active 0.;
    cs.Engine_api.cs_grad ~k ~m:active
      ~slots:t.batch.Oqmc_wavefunction.Spo.slots ~gx:t.gx ~gy:t.gy ~gz:t.gz;
    for s = 0 to active - 1 do
      let gold = Vec3.make t.gx.(s) t.gy.(s) t.gz.(s) in
      let cx, cy, cz = Xoshiro.gaussian_vec3 (rng s) in
      let chi =
        Vec3.make (sqrt_tau *. cx) (sqrt_tau *. cy) (sqrt_tau *. cz)
      in
      let rk = t.pos.(s) in
      let newpos = Vec3.add rk (Vec3.add (Vec3.scale tau gold) chi) in
      t.chi.(s) <- chi;
      t.newpos.(s) <- newpos
    done;
    cs.Engine_api.cs_propose ~k ~m:active ~pos:t.newpos;
    Timers.time timers0 "Bspline-vgh" (fun () ->
        t.batch.Oqmc_wavefunction.Spo.run t.newpos active);
    Array.fill t.ratio 0 active 1.;
    Array.fill t.gx 0 active 0.;
    Array.fill t.gy 0 active 0.;
    Array.fill t.gz 0 active 0.;
    cs.Engine_api.cs_ratio_grad ~k ~m:active
      ~slots:t.batch.Oqmc_wavefunction.Spo.slots ~ratio:t.ratio ~gx:t.gx
      ~gy:t.gy ~gz:t.gz;
    for s = 0 to active - 1 do
      let ratio = t.ratio.(s) in
      let gnew = Vec3.make t.gx.(s) t.gy.(s) t.gz.(s) in
      let rk = t.pos.(s) and newpos = t.newpos.(s) and chi = t.chi.(s) in
      let back = Vec3.sub (Vec3.sub rk newpos) (Vec3.scale tau gnew) in
      let log_gf = -.Vec3.norm2 chi /. (2. *. tau) in
      let log_gb = -.Vec3.norm2 back /. (2. *. tau) in
      let p = ratio *. ratio *. exp (log_gb -. log_gf) in
      if Xoshiro.uniform (rng s) < p then begin
        t.accepted.(s) <- t.accepted.(s) + 1;
        t.acc.(s) <- true
      end
      else t.acc.(s) <- false
    done;
    cs.Engine_api.cs_commit ~k ~m:active ~acc:t.acc ~ratio:t.ratio
  done

(* One sweep of all [active] resident walkers ([rng s] is walker s's
   stream).  Returns per-slot sweep results; [accepted] scratch is
   reused, so consume before the next call. *)
let sweep t ~active ~(rng : int -> Xoshiro.t) ~tau =
  if active < 1 || active > size t then invalid_arg "Crowd.sweep: active";
  Oqmc_obs.Trace.with_span
    ~args:[ ("active", string_of_int active) ]
    "crowd.sweep"
  @@ fun () ->
  let n = t.engines.(0).Engine_api.n_electrons in
  Array.fill t.accepted 0 active 0;
  (match t.stages with
  | Some cs -> sweep_pipeline t cs ~active ~rng ~tau
  | None -> sweep_staged t ~active ~rng ~tau);
  Array.init active (fun s ->
      { Engine_api.accepted = t.accepted.(s); proposed = n })
