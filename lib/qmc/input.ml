(* Input-deck parsing for the production driver.

   Production QMC codes are driven by input files; this is a minimal
   line-oriented deck:

     # comment
     method    = dmc
     workload  = NiO-32
     variant   = Current
     reduction = 8
     walkers   = 64
     blocks    = 10
     steps     = 20
     tau       = 0.005
     domains   = 4
     nlpp      = true
     seed      = 7

   Keys are case-insensitive; later lines override earlier ones; unknown
   keys are an error (catching typos beats silently ignoring them). *)

type t = {
  method_ : string;
  workload : string;
  variant : Variant.t;
  reduction : int;
  walkers : int;
  blocks : int;
  steps : int;
  tau : float;
  domains : int;
  crowd : int; (* walkers advanced in lockstep per domain; 1 = scalar *)
  delay : int; (* delayed determinant-update rank; 1 = Sherman–Morrison *)
  precision : [ `F32 | `F64 ] option;
      (* working-precision override; None = variant default *)
  precision_dt : [ `F32 | `F64 ] option;
      (* SoA distance-table storage; None = follow precision *)
  precision_jastrow : [ `F32 | `F64 ] option;
      (* Jastrow radial-spline coefficients; None = follow precision *)
  precision_inv : [ `F32 | `F64 ] option;
      (* inverse / delayed-update storage; None = follow precision *)
  layout : [ `Flat | `Tiled ] option;
      (* orbital-table layout; None = flat unless the tuner picks tiled *)
  tile : int; (* tiled-layout orbital tile size; 0 = autotune/default *)
  autotune : bool; (* model-driven crowd/delay/grain/tile selection *)
  nlpp : bool;
  seed : int;
  checkpoint : string option;
  checkpoint_every : int;
  checkpoint_keep : int;
  watchdog : int;
  restore : string option;
  ranks : int; (* > 1 = supervised multi-process execution *)
  heartbeat_ms : int; (* per-rank message deadline *)
  max_respawn : int; (* respawns per rank before it is abandoned *)
  elastic : bool; (* elastic rank membership + async checkpoints *)
  gen_deadline_ms : int; (* soft generation budget; 0 = lockstep *)
  straggler_policy : string; (* warn | steal | quarantine *)
  plan : string; (* exchange planning: count (even split) | load *)
  trace : string option; (* Chrome trace_event JSON output *)
  telemetry : string option; (* per-generation JSONL output *)
  telemetry_every : int;
  progress : bool; (* live one-line progress on stderr *)
}

let default =
  {
    method_ = "vmc";
    workload = "heg";
    variant = Variant.Current;
    reduction = 8;
    walkers = 8;
    blocks = 5;
    steps = 10;
    tau = 0.1;
    domains = 1;
    crowd = 1;
    delay = 1;
    precision = None;
    precision_dt = None;
    precision_jastrow = None;
    precision_inv = None;
    layout = None;
    tile = 0;
    autotune = false;
    nlpp = false;
    seed = 1;
    checkpoint = None;
    checkpoint_every = 0;
    checkpoint_keep = 3;
    watchdog = 0;
    restore = None;
    ranks = 1;
    heartbeat_ms = 5000;
    max_respawn = 2;
    elastic = false;
    gen_deadline_ms = 0;
    straggler_policy = "warn";
    plan = "count";
    trace = None;
    telemetry = None;
    telemetry_every = 1;
    progress = false;
  }

exception Parse_error of string

let fail line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

let parse_bool line v =
  match String.lowercase_ascii v with
  | "true" | "yes" | "1" -> true
  | "false" | "no" | "0" -> false
  | _ -> fail line "expected a boolean, got %S" v

let parse_int line v =
  try int_of_string (String.trim v)
  with Failure _ -> fail line "expected an integer, got %S" v

let parse_float line v =
  try float_of_string (String.trim v)
  with Failure _ -> fail line "expected a number, got %S" v

let parse_precision line key v =
  match String.lowercase_ascii v with
  | "f32" | "single" -> Some `F32
  | "f64" | "double" -> Some `F64
  | "" | "default" -> None
  | other -> fail line "%s must be f32 or f64, got %S" key other

let apply cfg ~line key value =
  match String.lowercase_ascii key with
  | "method" -> { cfg with method_ = String.lowercase_ascii value }
  | "workload" -> { cfg with workload = value }
  | "variant" -> (
      try { cfg with variant = Variant.of_string value }
      with Invalid_argument _ -> fail line "unknown variant %S" value)
  | "reduction" -> { cfg with reduction = parse_int line value }
  | "walkers" -> { cfg with walkers = parse_int line value }
  | "blocks" -> { cfg with blocks = parse_int line value }
  | "steps" -> { cfg with steps = parse_int line value }
  | "tau" -> { cfg with tau = parse_float line value }
  | "domains" -> { cfg with domains = parse_int line value }
  | "crowd" -> { cfg with crowd = parse_int line value }
  | "delay" ->
      let d = parse_int line value in
      if d < 1 then fail line "delay must be >= 1, got %d" d;
      { cfg with delay = d }
  | "precision" -> (
      match String.lowercase_ascii value with
      | "f32" | "single" -> { cfg with precision = Some `F32 }
      | "f64" | "double" -> { cfg with precision = Some `F64 }
      | "" | "default" -> { cfg with precision = None }
      | other -> fail line "precision must be f32 or f64, got %S" other)
  | "precision_dt" ->
      { cfg with precision_dt = parse_precision line "precision_dt" value }
  | "precision_jastrow" ->
      {
        cfg with
        precision_jastrow = parse_precision line "precision_jastrow" value;
      }
  | "precision_inv" ->
      { cfg with precision_inv = parse_precision line "precision_inv" value }
  | "layout" -> (
      match String.lowercase_ascii value with
      | "flat" -> { cfg with layout = Some `Flat }
      | "tiled" -> { cfg with layout = Some `Tiled }
      | "" | "default" -> { cfg with layout = None }
      | other -> fail line "layout must be flat or tiled, got %S" other)
  | "tile" ->
      let v = parse_int line value in
      if v < 0 then fail line "tile must be >= 0, got %d" v;
      { cfg with tile = v }
  | "autotune" -> { cfg with autotune = parse_bool line value }
  | "nlpp" -> { cfg with nlpp = parse_bool line value }
  | "seed" -> { cfg with seed = parse_int line value }
  | "checkpoint" -> { cfg with checkpoint = Some value }
  | "checkpoint_every" -> { cfg with checkpoint_every = parse_int line value }
  | "checkpoint_keep" -> { cfg with checkpoint_keep = parse_int line value }
  | "watchdog" -> { cfg with watchdog = parse_int line value }
  | "restore" -> { cfg with restore = Some value }
  | "ranks" -> { cfg with ranks = parse_int line value }
  | "heartbeat_ms" -> { cfg with heartbeat_ms = parse_int line value }
  | "max_respawn" -> { cfg with max_respawn = parse_int line value }
  | "elastic" -> { cfg with elastic = parse_bool line value }
  | "gen_deadline_ms" ->
      let d = parse_int line value in
      if d < 0 then fail line "gen_deadline_ms must be >= 0, got %d" d;
      { cfg with gen_deadline_ms = d }
  | "straggler_policy" -> (
      match String.lowercase_ascii value with
      | ("warn" | "steal" | "quarantine") as pol ->
          { cfg with straggler_policy = pol }
      | other ->
          fail line
            "straggler_policy must be warn, steal or quarantine, got %S"
            other)
  | "plan" -> (
      match String.lowercase_ascii value with
      | ("count" | "load") as p -> { cfg with plan = p }
      | other -> fail line "plan must be count or load, got %S" other)
  | "trace" -> { cfg with trace = Some value }
  | "telemetry" -> { cfg with telemetry = Some value }
  | "telemetry_every" -> { cfg with telemetry_every = parse_int line value }
  | "progress" -> { cfg with progress = parse_bool line value }
  | other -> fail line "unknown key %S" other

let parse_string contents =
  let cfg = ref default in
  String.split_on_char '\n' contents
  |> List.iteri (fun i raw ->
         let line = i + 1 in
         let text =
           match String.index_opt raw '#' with
           | Some p -> String.sub raw 0 p
           | None -> raw
         in
         let text = String.trim text in
         if text <> "" then begin
           match String.index_opt text '=' with
           | None -> fail line "expected key = value, got %S" text
           | Some p ->
               let key = String.trim (String.sub text 0 p) in
               let value =
                 String.trim
                   (String.sub text (p + 1) (String.length text - p - 1))
               in
               if key = "" then fail line "empty key";
               cfg := apply !cfg ~line key value
         end);
  !cfg

(* ---------- canonicalization ----------

   The serve-layer result cache is keyed by deck *meaning*, not deck
   text: two decks that differ only in key order, comments, whitespace,
   case, or operational knobs (where to checkpoint, whether to trace)
   must hit the same cache entry, while any change to a
   result-determining knob must miss.  Canonical form is the fixed list
   below, one [key = value] line each, floats printed as hex so the hash
   never depends on decimal formatting. *)

let canonical cfg =
  let b = Buffer.create 256 in
  let put key value = Printf.bprintf b "%s = %s\n" key value in
  put "method" cfg.method_;
  put "workload" cfg.workload;
  put "variant" (Variant.to_string cfg.variant);
  put "reduction" (string_of_int cfg.reduction);
  put "walkers" (string_of_int cfg.walkers);
  put "blocks" (string_of_int cfg.blocks);
  put "steps" (string_of_int cfg.steps);
  put "tau" (Printf.sprintf "%h" cfg.tau);
  put "domains" (string_of_int cfg.domains);
  put "crowd" (string_of_int cfg.crowd);
  put "delay" (string_of_int cfg.delay);
  let prec_str = function
    | None -> "default"
    | Some `F32 -> "f32"
    | Some `F64 -> "f64"
  in
  put "precision" (prec_str cfg.precision);
  put "precision_dt" (prec_str cfg.precision_dt);
  put "precision_jastrow" (prec_str cfg.precision_jastrow);
  put "precision_inv" (prec_str cfg.precision_inv);
  put "layout"
    (match cfg.layout with
    | None -> "default"
    | Some `Flat -> "flat"
    | Some `Tiled -> "tiled");
  put "tile" (string_of_int cfg.tile);
  put "autotune" (string_of_bool cfg.autotune);
  put "nlpp" (string_of_bool cfg.nlpp);
  put "seed" (string_of_int cfg.seed);
  put "watchdog" (string_of_int cfg.watchdog);
  put "ranks" (string_of_int cfg.ranks);
  put "elastic" (string_of_bool cfg.elastic);
  put "gen_deadline_ms" (string_of_int cfg.gen_deadline_ms);
  put "straggler_policy" cfg.straggler_policy;
  put "plan" cfg.plan;
  Buffer.contents b

let deck_hash cfg = Digest.to_hex (Digest.string (canonical cfg))

let parse_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      parse_string (really_input_string ic len))
