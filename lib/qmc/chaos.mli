(** Deterministic schedule-driven chaos injection for the supervised
    multi-rank layer: a seeded, replayable sequence of kills, stalls,
    corrupted frames, full disks and elastic membership changes, each
    attached to a specific generation.  [Fault] events are armed inside
    the worker ranks; membership events are interpreted by the
    supervisor (which exposes its own converter from this type). *)

type event =
  | Kill of int  (** rank: SIGKILL mid-generation *)
  | Stall of int * float  (** rank, seconds: miss the heartbeat *)
  | Garbage of int  (** rank: one corrupted wire frame *)
  | Disk_full of int * int  (** rank, times: checkpoint writes fail *)
  | Join  (** grow the rank set by one *)
  | Leave of int  (** rank: graceful drain + retire *)

type schedule = (int * event) list
(** (generation, event) pairs, ascending by generation. *)

val pp_event : event -> string

type counts = {
  kills : int;
  stalls : int;
  garbage : int;
  disk_full : int;
  joins : int;
  leaves : int;
}

val count : schedule -> counts
(** Aggregate event counts, for asserting every scheduled event surfaced
    in telemetry. *)

val total : schedule -> int

val faults_of : schedule -> (int * int * Fault.rank_fault) list
(** The fault part of a schedule in [Supervisor.params.faults] form
    (rank, gen, fault); membership events are skipped. *)

val plan :
  seed:int ->
  gens:int ->
  ranks:int ->
  ?trajectory:int list ->
  ?events:int ->
  ?stall_s:float ->
  ?disk_failures:int ->
  unit ->
  schedule
(** Deterministic schedule: membership waypoints walking the live-rank
    count through [trajectory] (evenly spaced, one join/leave per
    generation, joins refilling the lowest vacant slot — mirroring the
    supervisor's rule, never draining the last rank), then [events]
    fault events scattered over the remaining generations, each
    targeting a rank live at that point.  All randomness derives from
    [seed].  @raise Invalid_argument if [gens < 4], [ranks < 1] or a
    trajectory waypoint is [< 1]. *)

(** {1 Service-level chaos (the serve daemon)}

    Events that attack the layer multiplexing many supervised runs:
    clients hanging up before their reply, the daemon SIGKILLed mid-job
    (restart + journal replay must lose nothing), submission storms
    that must be {e rejected} at the admission bound rather than
    silently dropped, and cache entries corrupted on disk (must read as
    a miss, never a wrong result).  Anchored to job indices of a seeded
    submission mix; the @serve-soak harness interprets them as it
    submits. *)

type service_event =
  | Client_disconnect  (** submitter hangs up before its terminal reply *)
  | Server_kill  (** SIGKILL the daemon mid-job; restart + replay *)
  | Queue_storm of int  (** n submissions beyond the admission bound *)
  | Cache_corrupt  (** garble a cache entry; must surface as a miss *)

type service_schedule = (int * service_event) list
(** (job index, event) pairs, ascending by job index. *)

val pp_service_event : service_event -> string

type service_counts = {
  disconnects : int;
  server_kills : int;
  storms : int;
  corruptions : int;
}

val service_count : service_schedule -> service_counts

val plan_service :
  seed:int -> jobs:int -> ?events:int -> ?storm:int -> unit -> service_schedule
(** Deterministic service schedule: [events] (default 4) events over a
    [jobs]-submission mix, at most one per job index, storm bursts of
    [storm] (default 4) extra submissions.  All randomness derives from
    [seed].  @raise Invalid_argument if [jobs < 1], [events < 0] or
    [storm < 1]. *)
