open Oqmc_containers

(** Variant factory: instantiates the engine functor at the storage
    precision and update policy of a build variant. *)

module E64 : module type of Engine.Make (Precision.F64)
module E32 : module type of Engine.Make (Precision.F32)

val engine :
  ?timers:Timers.t ->
  ?delay:int ->
  ?precision:[ `F32 | `F64 ] ->
  variant:Variant.t ->
  seed:int ->
  System.t ->
  Engine_api.t
(** One compute engine.  [delay] switches the determinant update to the
    delayed (Woodbury) scheme with the given block size.  [precision]
    overrides the working precision implied by [variant] (layout still
    follows the variant), letting the [precision=] deck key compose
    orthogonally with [variant=]. *)

val factory :
  ?delay:int ->
  ?precision:[ `F32 | `F64 ] ->
  variant:Variant.t ->
  seed:int ->
  System.t ->
  int ->
  Engine_api.t
(** Per-domain factory with fresh timers and domain-offset seeds, for
    {!Runner.create}. *)
