open Oqmc_containers

(** Variant factory: instantiates the engine functor at the storage
    precisions and update policy of a build variant.  The engine functor
    is three-way precision-parametric — walkers, SoA distance tables
    ([precision_dt]) and inverse storage ([precision_inv]) — and every
    combination is instantiated once here so all engines of a run share
    one crowd-hook constructor. *)

module E64 :
    module type of Engine.Make (Precision.F64) (Precision.F64)
      (Precision.F64)

module E32 :
    module type of Engine.Make (Precision.F32) (Precision.F32)
      (Precision.F32)

val engine :
  ?timers:Timers.t ->
  ?delay:int ->
  ?precision:[ `F32 | `F64 ] ->
  ?precision_dt:[ `F32 | `F64 ] ->
  ?precision_jastrow:[ `F32 | `F64 ] ->
  ?precision_inv:[ `F32 | `F64 ] ->
  variant:Variant.t ->
  seed:int ->
  System.t ->
  Engine_api.t
(** One compute engine.  [delay] switches the determinant update to the
    delayed (Woodbury) scheme with the given block size.  [precision]
    overrides the working precision implied by [variant] (layout still
    follows the variant), letting the [precision=] deck key compose
    orthogonally with [variant=].  [precision_dt], [precision_jastrow]
    and [precision_inv] narrow (or widen) the SoA distance tables, the
    Jastrow radial-spline coefficients and the inverse/delayed-update
    storage independently; each defaults to the resolved working
    precision, which reproduces the uniform-precision engines exactly. *)

val factory :
  ?delay:int ->
  ?precision:[ `F32 | `F64 ] ->
  ?precision_dt:[ `F32 | `F64 ] ->
  ?precision_jastrow:[ `F32 | `F64 ] ->
  ?precision_inv:[ `F32 | `F64 ] ->
  variant:Variant.t ->
  seed:int ->
  System.t ->
  int ->
  Engine_api.t
(** Per-domain factory with fresh timers and domain-offset seeds, for
    {!Runner.create}. *)
