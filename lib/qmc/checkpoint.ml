open Oqmc_particle
open Oqmc_containers

(* Crash-safe checkpoint/restart for walker populations (format v2).

   Production DMC runs over days checkpoint their walker ensemble so a
   job can resume mid-propagation; a crash *during* the checkpoint write
   must never cost the run.  The v2 format keeps the versioned
   plain-text stream of v1 (portable, diffable, hex-floats so restart is
   bit-exact) and adds the integrity machinery:

   - the file is rendered in memory, written to [path.tmp] and published
     by an atomic rename, so a reader never sees a half-written file;
   - a CRC-32 trailer over the payload detects truncation and bit rot;
   - transient IO errors are retried with exponential backoff;
   - [save_generation] rotates [path.gen-N] files, keeping the last K,
     and [load_latest] falls back to the newest *valid* generation when
     the latest is corrupt.

   v1 files (no CRC trailer) are still readable. *)

let magic = "OQMC-CHECKPOINT-2"
let magic_v1 = "OQMC-CHECKPOINT-1"

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ---------- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

(* ---------- rendering ---------- *)

let write_walker buf (w : Walker.t) =
  let n = Walker.n_particles w in
  Printf.bprintf buf "walker %d %h %d %d %h %h\n" n w.Walker.weight
    w.Walker.multiplicity w.Walker.age w.Walker.log_psi w.Walker.e_local;
  for i = 0 to n - 1 do
    let p = Walker.Aos.get w.Walker.r i in
    Printf.bprintf buf "%h %h %h\n" p.Vec3.x p.Vec3.y p.Vec3.z
  done;
  let b = Wbuffer.contents w.Walker.buffer in
  Printf.bprintf buf "buffer %d\n" (Array.length b);
  Array.iter (fun v -> Printf.bprintf buf "%h\n" v) b

let render ~e_trial walkers =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%s\n" magic;
  Printf.bprintf buf "e_trial %h\n" e_trial;
  Printf.bprintf buf "walkers %d\n" (List.length walkers);
  List.iter (write_walker buf) walkers;
  let payload = Buffer.contents buf in
  payload ^ Printf.sprintf "crc %08x\n" (crc32 payload)

(* ---------- atomic write with retry ---------- *)

let write_atomic ~path data =
  if Fault.should_fail_io Fault.Checkpoint_write then
    raise (Sys_error (path ^ ": injected write failure"));
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  if Fault.should_fail_io Fault.Checkpoint_rename then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Sys_error (path ^ ": injected rename failure"))
  end;
  Sys.rename tmp path

let save ?(retries = 3) ?(backoff = 0.05) ~path ~e_trial walkers =
  let data = render ~e_trial walkers in
  let rec attempt k =
    try write_atomic ~path data
    with Sys_error _ when k < retries ->
      Unix.sleepf (backoff *. float_of_int (1 lsl k));
      attempt (k + 1)
  in
  attempt 0

(* ---------- strict parsing ---------- *)

type cursor = { lines : string array; mutable pos : int }

let next c what =
  if c.pos >= Array.length c.lines then
    fail "unexpected end of file reading %s" what
  else begin
    let l = c.lines.(c.pos) in
    c.pos <- c.pos + 1;
    l
  end

let scan c what fmt f =
  let line = next c what in
  try Scanf.sscanf line fmt f
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail "malformed %s line: %S" what line

let read_walker c =
  let n, weight, multiplicity, age, log_psi, e_local =
    scan c "walker header" "walker %d %h %d %d %h %h%!"
      (fun a b c d e f -> (a, b, c, d, e, f))
  in
  if n < 1 then fail "walker with %d particles" n;
  let w = Walker.create n in
  w.Walker.weight <- weight;
  w.Walker.multiplicity <- multiplicity;
  w.Walker.age <- age;
  w.Walker.log_psi <- log_psi;
  w.Walker.e_local <- e_local;
  for i = 0 to n - 1 do
    let x, y, z = scan c "position" "%h %h %h%!" (fun x y z -> (x, y, z)) in
    Walker.Aos.set w.Walker.r i (Vec3.make x y z)
  done;
  let nbuf = scan c "buffer header" "buffer %d%!" Fun.id in
  if nbuf < 0 then fail "negative buffer length";
  Wbuffer.clear w.Walker.buffer;
  for _ = 1 to nbuf do
    let v = scan c "buffer value" "%h%!" Fun.id in
    Wbuffer.add w.Walker.buffer v
  done;
  Wbuffer.rewind w.Walker.buffer;
  w

(* Parse payload lines (everything after the magic); strict: the walker
   count must agree with the stream and nothing may follow it. *)
let parse_payload lines =
  let c = { lines; pos = 0 } in
  let e_trial = scan c "e_trial" "e_trial %h%!" Fun.id in
  let count = scan c "walker count" "walkers %d%!" Fun.id in
  if count < 0 then fail "negative walker count";
  let walkers = ref [] in
  for _ = 1 to count do
    walkers := read_walker c :: !walkers
  done;
  if c.pos <> Array.length lines then
    fail "trailing garbage: %d unconsumed line(s) after walker %d"
      (Array.length lines - c.pos)
      count;
  (e_trial, List.rev !walkers)

let load_string content =
  let lines =
    (* A well-formed file ends with a newline, so splitting leaves one
       trailing "" to drop; anything else is parsed as-is and rejected. *)
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rest -> List.rev rest
    | _ -> String.split_on_char '\n' content
  in
  match lines with
  | [] -> fail "empty checkpoint"
  | first :: rest when first = magic_v1 ->
      parse_payload (Array.of_list rest)
  | first :: _ when first = magic -> (
      match List.rev lines with
      | crc_line :: rev_payload ->
          let expected =
            try Scanf.sscanf crc_line "crc %x%!" Fun.id
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail "missing or malformed crc trailer: %S" crc_line
          in
          let payload_lines = List.rev rev_payload in
          let payload =
            String.concat "" (List.map (fun l -> l ^ "\n") payload_lines)
          in
          let actual = crc32 payload in
          if actual <> expected then
            fail "crc mismatch: stored %08x, computed %08x" expected actual;
          parse_payload (Array.of_list (List.tl payload_lines))
      | [] -> fail "empty checkpoint")
  | first :: _ -> fail "bad magic %S" first

let load ~path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string content

(* ---------- generation rotation ---------- *)

let generation_path ~path gen = Printf.sprintf "%s.gen-%d" path gen

let list_generations ~path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".gen-" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if String.length name > plen && String.sub name 0 plen = prefix
             then
               match
                 int_of_string_opt
                   (String.sub name plen (String.length name - plen))
               with
               | Some g when g >= 0 -> Some (g, Filename.concat dir name)
               | _ -> None
             else None)
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let save_generation ?retries ?backoff ?(keep = 3) ~path ~gen ~e_trial walkers
    =
  if keep < 1 then invalid_arg "Checkpoint.save_generation: keep < 1";
  if gen < 0 then invalid_arg "Checkpoint.save_generation: gen < 0";
  save ?retries ?backoff ~path:(generation_path ~path gen) ~e_trial walkers;
  let gens = list_generations ~path in
  let excess = List.length gens - keep in
  if excess > 0 then
    List.iteri
      (fun i (_, p) ->
        if i < excess then try Sys.remove p with Sys_error _ -> ())
      gens

let load_latest ~path =
  let candidates =
    List.rev (list_generations ~path)
    @ (if Sys.file_exists path then [ (0, path) ] else [])
  in
  if candidates = [] then fail "no checkpoint found at %s" path;
  let rec go = function
    | [] -> fail "no valid checkpoint generation at %s" path
    | (g, p) :: rest -> (
        match load ~path:p with
        | res -> (g, res)
        | exception Corrupt _ -> go rest
        | exception Sys_error _ -> go rest)
  in
  go candidates
