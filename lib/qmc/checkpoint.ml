open Oqmc_particle
open Oqmc_containers

(* Crash-safe checkpoint/restart for walker populations (format v2).

   Production DMC runs over days checkpoint their walker ensemble so a
   job can resume mid-propagation; a crash *during* the checkpoint write
   must never cost the run.  The v2 format keeps the versioned
   plain-text stream of v1 (portable, diffable, hex-floats so restart is
   bit-exact) and adds the integrity machinery:

   - the file is rendered in memory, written to [path.tmp] and published
     by an atomic rename, so a reader never sees a half-written file;
   - a CRC-32 trailer over the payload detects truncation and bit rot;
   - transient IO errors are retried with exponential backoff;
   - [save_generation] rotates [path.gen-N] files, keeping the last K,
     and [load_latest] falls back to the newest *valid* generation when
     the latest is corrupt.

   v1 files (no CRC trailer) are still readable. *)

let magic = "OQMC-CHECKPOINT-2"
let magic_v1 = "OQMC-CHECKPOINT-1"

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ---------- CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xFFFFFFFF

(* ---------- rendering ---------- *)

let write_walker buf (w : Walker.t) =
  let n = Walker.n_particles w in
  Printf.bprintf buf "walker %d %h %d %d %h %h\n" n w.Walker.weight
    w.Walker.multiplicity w.Walker.age w.Walker.log_psi w.Walker.e_local;
  for i = 0 to n - 1 do
    let p = Walker.Aos.get w.Walker.r i in
    Printf.bprintf buf "%h %h %h\n" p.Vec3.x p.Vec3.y p.Vec3.z
  done;
  let b = Wbuffer.contents w.Walker.buffer in
  Printf.bprintf buf "buffer %d\n" (Array.length b);
  Array.iter (fun v -> Printf.bprintf buf "%h\n" v) b

let render ~e_trial walkers =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "%s\n" magic;
  Printf.bprintf buf "e_trial %h\n" e_trial;
  Printf.bprintf buf "walkers %d\n" (List.length walkers);
  List.iter (write_walker buf) walkers;
  let payload = Buffer.contents buf in
  payload ^ Printf.sprintf "crc %08x\n" (crc32 payload)

(* ---------- atomic write with retry ---------- *)

let write_atomic ~path data =
  if Fault.should_fail_io Fault.Checkpoint_write then
    raise (Sys_error (path ^ ": injected write failure"));
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc data;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  if Fault.should_fail_io Fault.Checkpoint_rename then begin
    (try Sys.remove tmp with Sys_error _ -> ());
    raise (Sys_error (path ^ ": injected rename failure"))
  end;
  Sys.rename tmp path

let save ?(retries = 3) ?(backoff = 0.05) ~path ~e_trial walkers =
  Oqmc_obs.Trace.with_span
    ~args:[ ("path", Filename.basename path) ]
    "checkpoint.save"
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let data = render ~e_trial walkers in
  let rec attempt k =
    try write_atomic ~path data
    with Sys_error _ when k < retries ->
      Unix.sleepf (backoff *. float_of_int (1 lsl k));
      attempt (k + 1)
  in
  attempt 0;
  Oqmc_obs.Metrics.observe
    (Oqmc_obs.Metrics.histogram "checkpoint.save_s")
    (Unix.gettimeofday () -. t0)

(* ---------- strict parsing ---------- *)

type cursor = { lines : string array; mutable pos : int }

let next c what =
  if c.pos >= Array.length c.lines then
    fail "unexpected end of file reading %s" what
  else begin
    let l = c.lines.(c.pos) in
    c.pos <- c.pos + 1;
    l
  end

let scan c what fmt f =
  let line = next c what in
  try Scanf.sscanf line fmt f
  with Scanf.Scan_failure _ | Failure _ | End_of_file ->
    fail "malformed %s line: %S" what line

let read_walker c =
  let n, weight, multiplicity, age, log_psi, e_local =
    scan c "walker header" "walker %d %h %d %d %h %h%!"
      (fun a b c d e f -> (a, b, c, d, e, f))
  in
  if n < 1 then fail "walker with %d particles" n;
  let w = Walker.create n in
  w.Walker.weight <- weight;
  w.Walker.multiplicity <- multiplicity;
  w.Walker.age <- age;
  w.Walker.log_psi <- log_psi;
  w.Walker.e_local <- e_local;
  for i = 0 to n - 1 do
    let x, y, z = scan c "position" "%h %h %h%!" (fun x y z -> (x, y, z)) in
    Walker.Aos.set w.Walker.r i (Vec3.make x y z)
  done;
  let nbuf = scan c "buffer header" "buffer %d%!" Fun.id in
  if nbuf < 0 then fail "negative buffer length";
  Wbuffer.clear w.Walker.buffer;
  for _ = 1 to nbuf do
    let v = scan c "buffer value" "%h%!" Fun.id in
    Wbuffer.add w.Walker.buffer v
  done;
  Wbuffer.rewind w.Walker.buffer;
  w

(* Parse payload lines (everything after the magic); strict: the walker
   count must agree with the stream and nothing may follow it. *)
let parse_payload lines =
  let c = { lines; pos = 0 } in
  let e_trial = scan c "e_trial" "e_trial %h%!" Fun.id in
  let count = scan c "walker count" "walkers %d%!" Fun.id in
  if count < 0 then fail "negative walker count";
  let walkers = ref [] in
  for _ = 1 to count do
    walkers := read_walker c :: !walkers
  done;
  if c.pos <> Array.length lines then
    fail "trailing garbage: %d unconsumed line(s) after walker %d"
      (Array.length lines - c.pos)
      count;
  (e_trial, List.rev !walkers)

let load_string content =
  let lines =
    (* A well-formed file ends with a newline, so splitting leaves one
       trailing "" to drop; anything else is parsed as-is and rejected. *)
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rest -> List.rev rest
    | _ -> String.split_on_char '\n' content
  in
  match lines with
  | [] -> fail "empty checkpoint"
  | first :: rest when first = magic_v1 ->
      parse_payload (Array.of_list rest)
  | first :: _ when first = magic -> (
      match List.rev lines with
      | crc_line :: rev_payload ->
          let expected =
            try Scanf.sscanf crc_line "crc %x%!" Fun.id
            with Scanf.Scan_failure _ | Failure _ | End_of_file ->
              fail "missing or malformed crc trailer: %S" crc_line
          in
          let payload_lines = List.rev rev_payload in
          let payload =
            String.concat "" (List.map (fun l -> l ^ "\n") payload_lines)
          in
          let actual = crc32 payload in
          if actual <> expected then
            fail "crc mismatch: stored %08x, computed %08x" expected actual;
          parse_payload (Array.of_list (List.tl payload_lines))
      | [] -> fail "empty checkpoint")
  | first :: _ -> fail "bad magic %S" first

let load ~path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string content

(* ---------- generation rotation ---------- *)

let generation_path ~path gen = Printf.sprintf "%s.gen-%d" path gen

let list_generations ~path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".gen-" in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             if String.length name > plen && String.sub name 0 plen = prefix
             then
               match
                 int_of_string_opt
                   (String.sub name plen (String.length name - plen))
               with
               | Some g when g >= 0 -> Some (g, Filename.concat dir name)
               | _ -> None
             else None)
      |> List.sort (fun (a, _) (b, _) -> compare a b)

let save_generation ?retries ?backoff ?(keep = 3) ~path ~gen ~e_trial walkers
    =
  if keep < 1 then invalid_arg "Checkpoint.save_generation: keep < 1";
  if gen < 0 then invalid_arg "Checkpoint.save_generation: gen < 0";
  save ?retries ?backoff ~path:(generation_path ~path gen) ~e_trial walkers;
  let gens = list_generations ~path in
  let excess = List.length gens - keep in
  if excess > 0 then
    List.iteri
      (fun i (_, p) ->
        if i < excess then try Sys.remove p with Sys_error _ -> ())
      gens

(* ---------- double-buffered asynchronous saves ----------

   The elastic supervisor overlaps checkpoint IO with the next
   generation's compute: the shard image is RENDERED synchronously (so a
   later mutation of the walkers cannot tear it) and then written +
   rotated from a background domain while the rank returns to its sweep.
   At most one write is ever in flight — queueing a new save first joins
   the previous one (double buffering), so a slow disk backs pressure up
   instead of piling up writers.  The caller acks the *render*; whether
   the publish landed is discovered by [drain] (and, on restart, by
   [latest_complete] revalidating every shard it considers). *)

module Async = struct
  type t = {
    mutable pending : bool Domain.t option;
    mutable failures : int; (* background writes that did not land *)
  }

  let create () = { pending = None; failures = 0 }

  (* Join the in-flight write, if any; false when it failed. *)
  let drain t =
    match t.pending with
    | None -> true
    | Some d ->
        t.pending <- None;
        let ok = try Domain.join d with _ -> false in
        if not ok then t.failures <- t.failures + 1;
        ok

  let failures t = t.failures

  let save_generation ?(retries = 3) ?(backoff = 0.05) ?(keep = 3) t ~path
      ~gen ~e_trial walkers =
    if keep < 1 then invalid_arg "Checkpoint.Async.save_generation: keep < 1";
    if gen < 0 then invalid_arg "Checkpoint.Async.save_generation: gen < 0";
    let prev_ok = drain t in
    let data = render ~e_trial walkers in
    let gpath = generation_path ~path gen in
    t.pending <-
      Some
        (Domain.spawn (fun () ->
             match
               let rec attempt k =
                 try write_atomic ~path:gpath data
                 with Sys_error _ when k < retries ->
                   Unix.sleepf (backoff *. float_of_int (1 lsl k));
                   attempt (k + 1)
               in
               attempt 0
             with
             | () ->
                 let gens = list_generations ~path in
                 let excess = List.length gens - keep in
                 if excess > 0 then
                   List.iteri
                     (fun i (_, p) ->
                       if i < excess then
                         try Sys.remove p with Sys_error _ -> ())
                     gens;
                 true
             | exception Sys_error _ -> false));
    prev_ok
end

let load_latest ~path =
  let candidates =
    List.rev (list_generations ~path)
    @ (if Sys.file_exists path then [ (0, path) ] else [])
  in
  if candidates = [] then fail "no checkpoint found at %s" path;
  let rec go = function
    | [] -> fail "no valid checkpoint generation at %s" path
    | (g, p) :: rest -> (
        match load ~path:p with
        | res -> (g, res)
        | exception Corrupt _ -> go rest
        | exception Sys_error _ -> go rest)
  in
  go candidates

(* ---------- per-rank shards and the manifest ----------

   A multi-rank run checkpoints each rank's walker shard independently
   ([path.rank-R.gen-N], reusing the generation rotation above) so the
   supervisor can respawn one crashed rank from *its* newest valid shard
   without touching the others.  After every checkpoint round the
   supervisor publishes a manifest recording which ranks acked at which
   generation; [latest_complete] finds the newest generation for which
   every rank's shard still loads cleanly — the restart point of a full
   run resume. *)

let manifest_magic = "OQMC-MANIFEST-1"

let shard_path ~path ~rank =
  if rank < 0 then invalid_arg "Checkpoint.shard_path: rank < 0";
  Printf.sprintf "%s.rank-%d" path rank

let save_shard ?retries ?backoff ?keep ~path ~rank ~gen ~e_trial walkers =
  save_generation ?retries ?backoff ?keep
    ~path:(shard_path ~path ~rank)
    ~gen ~e_trial walkers

let load_latest_shard ~path ~rank =
  load_latest ~path:(shard_path ~path ~rank)

let load_shard ~path ~rank ~gen =
  load ~path:(generation_path ~path:(shard_path ~path ~rank) gen)

let manifest_path ~path = path ^ ".manifest"

let save_manifest ?retries ?backoff ~path ~gen ~ranks () =
  if gen < 0 then invalid_arg "Checkpoint.save_manifest: gen < 0";
  let buf = Buffer.create 128 in
  Printf.bprintf buf "%s\n" manifest_magic;
  Printf.bprintf buf "gen %d\n" gen;
  Printf.bprintf buf "ranks %s\n"
    (String.concat " " (List.map string_of_int ranks));
  let payload = Buffer.contents buf in
  let data = payload ^ Printf.sprintf "crc %08x\n" (crc32 payload) in
  let mpath = manifest_path ~path in
  let retries = Option.value retries ~default:3 in
  let backoff = Option.value backoff ~default:0.05 in
  let rec attempt k =
    try write_atomic ~path:mpath data
    with Sys_error _ when k < retries ->
      Unix.sleepf (backoff *. float_of_int (1 lsl k));
      attempt (k + 1)
  in
  attempt 0

let load_manifest ~path =
  let mpath = manifest_path ~path in
  let ic = try open_in_bin mpath with Sys_error e -> fail "%s" e in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    match List.rev (String.split_on_char '\n' content) with
    | "" :: rest -> Array.of_list (List.rev rest)
    | _ -> Array.of_list (String.split_on_char '\n' content)
  in
  if Array.length lines <> 4 then fail "manifest: expected 4 lines";
  if lines.(0) <> manifest_magic then fail "manifest: bad magic %S" lines.(0);
  let payload = lines.(0) ^ "\n" ^ lines.(1) ^ "\n" ^ lines.(2) ^ "\n" in
  let stored =
    try Scanf.sscanf lines.(3) "crc %x%!" Fun.id
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "manifest: malformed crc line %S" lines.(3)
  in
  if crc32 payload <> stored then fail "manifest: crc mismatch";
  let gen =
    try Scanf.sscanf lines.(1) "gen %d%!" Fun.id
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail "manifest: malformed gen line %S" lines.(1)
  in
  let plen = String.length "ranks" in
  if String.length lines.(2) < plen || String.sub lines.(2) 0 plen <> "ranks"
  then fail "manifest: malformed ranks line %S" lines.(2);
  let ranks =
    String.sub lines.(2) plen (String.length lines.(2) - plen)
    |> String.split_on_char ' '
    |> List.filter_map (fun s ->
           if String.trim s = "" then None
           else
             match int_of_string_opt (String.trim s) with
             | Some r when r >= 0 -> Some r
             | _ -> fail "manifest: bad rank entry %S" s)
  in
  (gen, ranks)

(* Newest generation at which EVERY rank 0..ranks-1 has a shard that
   loads cleanly; falls back past generations with any corrupt or
   missing shard. *)
let latest_complete ~path ~ranks =
  if ranks < 1 then invalid_arg "Checkpoint.latest_complete: ranks < 1";
  let gens_of r =
    List.rev_map fst (list_generations ~path:(shard_path ~path ~rank:r))
  in
  let common =
    match List.init ranks gens_of with
    | [] -> []
    | g0 :: rest ->
        List.filter (fun g -> List.for_all (List.mem g) rest) g0
  in
  let sorted = List.sort (fun a b -> compare b a) common in
  let shard_ok r g =
    match load_shard ~path ~rank:r ~gen:g with
    | _ -> true
    | exception (Corrupt _ | Sys_error _) -> false
  in
  List.find_opt
    (fun g -> List.for_all (fun r -> shard_ok r g) (List.init ranks Fun.id))
    sorted
