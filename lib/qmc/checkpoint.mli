open Oqmc_particle

(** Crash-safe checkpoint/restart of a walker ensemble (format v2):
    versioned plain-text with hex-float fields (resumes are bit-exact),
    written atomically (tmp + rename) with a CRC-32 trailer, retried
    with backoff on transient IO errors, and rotated by generation so a
    corrupt latest file falls back to the previous one.  The on-disk
    format and recovery semantics are documented in
    [docs/ROBUSTNESS.md].  v1 files (no CRC) are still readable. *)

exception Corrupt of string
(** Raised by the loaders on malformed, truncated or garbled files. *)

val magic : string
(** The v2 header line. *)

val magic_v1 : string

val crc32 : string -> int
(** The trailer checksum: CRC-32 (IEEE 802.3) of the payload bytes. *)

val save :
  ?retries:int ->
  ?backoff:float ->
  path:string ->
  e_trial:float ->
  Walker.t list ->
  unit
(** Serialize positions, DMC bookkeeping and the anonymous state buffer
    of every walker.  The file is written to [path ^ ".tmp"] and
    published by an atomic rename; [Sys_error]s are retried up to
    [retries] times (default 3) with exponential backoff starting at
    [backoff] seconds (default 0.05), then re-raised. *)

val load : path:string -> float * Walker.t list
(** Returns the trial energy and the walkers, with buffers rewound ready
    for [restore_walker].  Strict: the CRC must match (v2), the walker
    count must agree with the stream, and trailing garbage is rejected.
    @raise Corrupt on any violation. *)

val load_string : string -> float * Walker.t list
(** [load] on in-memory contents (exposed for tests). *)

(** {1 Generation rotation} *)

val generation_path : path:string -> int -> string
(** [generation_path ~path g] is ["path.gen-<g>"]. *)

val list_generations : path:string -> (int * string) list
(** Existing generations of [path], sorted oldest first. *)

val save_generation :
  ?retries:int ->
  ?backoff:float ->
  ?keep:int ->
  path:string ->
  gen:int ->
  e_trial:float ->
  Walker.t list ->
  unit
(** Atomically write generation [gen] and delete all but the newest
    [keep] (default 3) generations.
    @raise Invalid_argument if [keep < 1] or [gen < 0]. *)

val load_latest : path:string -> int * (float * Walker.t list)
(** Newest generation of [path] that loads cleanly, falling back past
    corrupt ones; a plain [path] file (no generation suffix) is the
    final fallback and reports generation 0.
    @raise Corrupt when nothing valid exists. *)
