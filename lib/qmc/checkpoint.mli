open Oqmc_particle

(** Crash-safe checkpoint/restart of a walker ensemble (format v2):
    versioned plain-text with hex-float fields (resumes are bit-exact),
    written atomically (tmp + rename) with a CRC-32 trailer, retried
    with backoff on transient IO errors, and rotated by generation so a
    corrupt latest file falls back to the previous one.  The on-disk
    format and recovery semantics are documented in
    [docs/ROBUSTNESS.md].  v1 files (no CRC) are still readable. *)

exception Corrupt of string
(** Raised by the loaders on malformed, truncated or garbled files. *)

val magic : string
(** The v2 header line. *)

val magic_v1 : string

val crc32 : string -> int
(** The trailer checksum: CRC-32 (IEEE 802.3) of the payload bytes. *)

val save :
  ?retries:int ->
  ?backoff:float ->
  path:string ->
  e_trial:float ->
  Walker.t list ->
  unit
(** Serialize positions, DMC bookkeeping and the anonymous state buffer
    of every walker.  The file is written to [path ^ ".tmp"] and
    published by an atomic rename; [Sys_error]s are retried up to
    [retries] times (default 3) with exponential backoff starting at
    [backoff] seconds (default 0.05), then re-raised. *)

val load : path:string -> float * Walker.t list
(** Returns the trial energy and the walkers, with buffers rewound ready
    for [restore_walker].  Strict: the CRC must match (v2), the walker
    count must agree with the stream, and trailing garbage is rejected.
    @raise Corrupt on any violation. *)

val load_string : string -> float * Walker.t list
(** [load] on in-memory contents (exposed for tests). *)

(** {1 Generation rotation} *)

val generation_path : path:string -> int -> string
(** [generation_path ~path g] is ["path.gen-<g>"]. *)

val list_generations : path:string -> (int * string) list
(** Existing generations of [path], sorted oldest first. *)

val save_generation :
  ?retries:int ->
  ?backoff:float ->
  ?keep:int ->
  path:string ->
  gen:int ->
  e_trial:float ->
  Walker.t list ->
  unit
(** Atomically write generation [gen] and delete all but the newest
    [keep] (default 3) generations.
    @raise Invalid_argument if [keep < 1] or [gen < 0]. *)

(** {1 Double-buffered asynchronous saves}

    Overlap checkpoint IO with the next generation's compute: the shard
    image is rendered synchronously (so later walker mutations cannot
    tear it) and published from a background domain.  At most one write
    is in flight; queueing a new save first joins the previous one.
    Must only be used inside a worker rank process — the forking
    supervisor itself never spawns domains. *)

module Async : sig
  type t

  val create : unit -> t

  val drain : t -> bool
  (** Join the in-flight write, if any; [false] when it failed (also
      counted in {!failures}). *)

  val failures : t -> int
  (** Background writes that did not land. *)

  val save_generation :
    ?retries:int ->
    ?backoff:float ->
    ?keep:int ->
    t ->
    path:string ->
    gen:int ->
    e_trial:float ->
    Walker.t list ->
    bool
  (** Render generation [gen] now, publish + rotate in the background.
      Returns whether the {e previous} in-flight write landed (the
      optimistic ack the caller forwards; restores revalidate shards, so
      an optimistic ack can delay recovery by one round but never
      corrupt it).  @raise Invalid_argument if [keep < 1] or [gen < 0]. *)
end

val load_latest : path:string -> int * (float * Walker.t list)
(** Newest generation of [path] that loads cleanly, falling back past
    corrupt ones; a plain [path] file (no generation suffix) is the
    final fallback and reports generation 0.
    @raise Corrupt when nothing valid exists. *)

(** {1 Per-rank shards and the manifest}

    A multi-rank run checkpoints each rank's shard independently as
    [path.rank-R.gen-N] (reusing the generation rotation), so the
    supervisor can respawn a single crashed rank from its own newest
    valid shard.  A manifest published after each checkpoint round
    records which ranks acked at which generation. *)

val manifest_magic : string

val shard_path : path:string -> rank:int -> string
(** ["path.rank-R"].  @raise Invalid_argument if [rank < 0]. *)

val save_shard :
  ?retries:int ->
  ?backoff:float ->
  ?keep:int ->
  path:string ->
  rank:int ->
  gen:int ->
  e_trial:float ->
  Walker.t list ->
  unit
(** {!save_generation} on the rank's shard path. *)

val load_latest_shard : path:string -> rank:int -> int * (float * Walker.t list)
(** Newest *valid* shard generation of [rank] — the respawn fallback.
    @raise Corrupt when the rank has no valid shard. *)

val load_shard : path:string -> rank:int -> gen:int -> float * Walker.t list
(** Load one specific shard generation.  @raise Corrupt when invalid. *)

val manifest_path : path:string -> string

val save_manifest :
  ?retries:int ->
  ?backoff:float ->
  path:string ->
  gen:int ->
  ranks:int list ->
  unit ->
  unit
(** Atomically publish [path.manifest] (CRC-trailed) recording that
    [ranks] checkpointed their shards at [gen]. *)

val load_manifest : path:string -> int * int list
(** The manifest's (generation, acked ranks).  @raise Corrupt when
    missing, garbled or failing its CRC. *)

val latest_complete : path:string -> ranks:int -> int option
(** Newest generation at which every rank [0..ranks-1] has a shard that
    loads cleanly — the restart point of a full multi-rank resume. *)
