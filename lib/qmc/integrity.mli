open Oqmc_particle

(** Walker watchdog: scans the DMC population for NaN/Inf poison every
    generation and periodically audits a sampled subset against a full
    recompute (the paper's mixed-precision safeguard, made active).
    Passing walkers are healed in place; poisoned or drifted walkers are
    quarantined and replaced by clones of healthy ones.  Thresholds are
    documented in [docs/ROBUSTNESS.md]. *)

type config = {
  check_every : int;
      (** generations between recompute audits (the poison scan runs
          every generation); [<= 0] disables the audit *)
  drift_tol : float;
      (** quarantine when |stored log Ψ − recomputed| exceeds this *)
  buffer_tol : float;
      (** quarantine when any serialized-state entry deviates relatively
          from its recomputed value by more than this *)
  sample : int;  (** walkers audited per recompute pass *)
}

val default_config : config
(** [{ check_every = 10; drift_tol = 1e-3; buffer_tol = 1e-2;
      sample = 4 }] *)

type stats = {
  mutable scans : int;
  mutable audits : int;
  mutable quarantined : int;
  mutable recoveries : int;
  mutable drift_max : float;
  mutable checkpoints_written : int;
  mutable checkpoint_failures : int;
}
(** Counters surfaced in [Dmc.result]; the checkpoint pair is filled by
    the DMC driver's periodic-checkpoint hook. *)

val create_stats : unit -> stats
val copy_stats : stats -> stats

val walker_finite : Walker.t -> bool
(** False when the weight, local energy, log Ψ or any position is
    NaN/Inf. *)

val audit : config -> Engine_api.t -> Walker.t -> Walker.t -> bool * float
(** [audit cfg engine scratch w] recomputes [w]'s wavefunction state
    from its positions and compares the stored log Ψ scalar and state
    buffer against it; heals [w] on pass (recomputed state saved back).
    [scratch] is a walker of the same size used for the ground-truth
    serialization.  Returns [(trustworthy, drift)]; does not touch any
    shared stats, so audits run in parallel across the pool (the
    watchdog reduces the verdicts serially). *)

val watchdog :
  config ->
  stats ->
  gen:int ->
  rng:Oqmc_rng.Xoshiro.t ->
  Runner.t ->
  Population.t ->
  unit
(** One watchdog pass: poison scan (always) + sampled recompute audit
    (when [gen mod check_every = 0]).  Quarantined walkers are replaced
    by unit-weight clones of healthy survivors — or by freshly
    randomized walkers if the entire population is poisoned — keeping
    the population size unchanged. *)
