open Oqmc_containers

(* Variant factory: instantiates the engine functor at the precision and
   update policy of a build variant.  The returned closure is a per-domain
   engine factory for the drivers ([Runner.create]). *)

module E64 = Engine.Make (Precision.F64)
module E32 = Engine.Make (Precision.F32)

let engine ?timers ?delay ?precision ~variant ~seed (sys : System.t) :
    Engine_api.t =
  let layout = Variant.layout variant in
  (* [precision] overrides the variant's working precision (layout and
     update policy still come from the variant), so the precision= deck
     key composes orthogonally with variant=. *)
  let prec =
    match (precision, variant) with
    | Some p, _ -> p
    | None, (Variant.Ref | Variant.Current_f64) -> `F64
    | None, (Variant.Ref_mp | Variant.Current) -> `F32
  in
  match prec with
  | `F64 ->
      let det_scheme =
        match delay with
        | None -> E64.Det.Sherman_morrison
        | Some d -> E64.Det.Delayed d
      in
      E64.create ?timers ~det_scheme ~layout ~seed sys
  | `F32 ->
      let det_scheme =
        match delay with
        | None -> E32.Det.Sherman_morrison
        | Some d -> E32.Det.Delayed d
      in
      E32.create ?timers ~det_scheme ~layout ~seed sys

(* Per-domain factory: every domain gets its own timer set and a distinct
   seed so its engine starts from an independent configuration. *)
let factory ?delay ?precision ~variant ~seed (sys : System.t) :
    int -> Engine_api.t =
 fun domain ->
  let timers = Timers.create () in
  engine ~timers ?delay ?precision ~variant ~seed:(seed + (1000 * domain))
    sys
