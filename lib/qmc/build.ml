open Oqmc_containers

(* Variant factory: instantiates the engine functor at the precisions and
   update policy of a build variant.  The returned closure is a per-domain
   engine factory for the drivers ([Runner.create]).

   The engine functor takes three precisions — walkers [R], SoA distance
   tables [D] ([precision_dt]) and inverse storage [I] ([precision_inv]) —
   so all 2³ combinations are instantiated once here.  Every engine of a
   run must come from the same instantiation (the crowd hook constructor
   is minted per functor application), which the single dispatch below
   guarantees. *)

module E64 = Engine.Make (Precision.F64) (Precision.F64) (Precision.F64)
module E32 = Engine.Make (Precision.F32) (Precision.F32) (Precision.F32)
module E64_d32 = Engine.Make (Precision.F64) (Precision.F32) (Precision.F64)
module E64_i32 = Engine.Make (Precision.F64) (Precision.F64) (Precision.F32)
module E64_d32_i32 =
  Engine.Make (Precision.F64) (Precision.F32) (Precision.F32)
module E32_d64 = Engine.Make (Precision.F32) (Precision.F64) (Precision.F32)
module E32_i64 = Engine.Make (Precision.F32) (Precision.F32) (Precision.F64)
module E32_d64_i64 =
  Engine.Make (Precision.F32) (Precision.F64) (Precision.F64)

let engine ?timers ?delay ?precision ?precision_dt ?precision_jastrow
    ?precision_inv ~variant ~seed (sys : System.t) : Engine_api.t =
  let layout = Variant.layout variant in
  (* [precision] overrides the variant's working precision (layout and
     update policy still come from the variant), so the precision= deck
     key composes orthogonally with variant=.  The per-structure keys
     default to the resolved working precision, which reproduces the
     uniform-precision engines exactly. *)
  let prec =
    match (precision, variant) with
    | Some p, _ -> p
    | None, (Variant.Ref | Variant.Current_f64) -> `F64
    | None, (Variant.Ref_mp | Variant.Current) -> `F32
  in
  let dt = Option.value precision_dt ~default:prec in
  let inv = Option.value precision_inv ~default:prec in
  let jastrow_f32 =
    Option.value precision_jastrow ~default:prec = `F32
  in
  match (prec, dt, inv) with
  | `F64, `F64, `F64 ->
      let det_scheme =
        match delay with
        | None -> E64.Det.Sherman_morrison
        | Some d -> E64.Det.Delayed d
      in
      E64.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F64, `F32, `F64 ->
      let det_scheme =
        match delay with
        | None -> E64_d32.Det.Sherman_morrison
        | Some d -> E64_d32.Det.Delayed d
      in
      E64_d32.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F64, `F64, `F32 ->
      let det_scheme =
        match delay with
        | None -> E64_i32.Det.Sherman_morrison
        | Some d -> E64_i32.Det.Delayed d
      in
      E64_i32.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F64, `F32, `F32 ->
      let det_scheme =
        match delay with
        | None -> E64_d32_i32.Det.Sherman_morrison
        | Some d -> E64_d32_i32.Det.Delayed d
      in
      E64_d32_i32.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F32, `F32, `F32 ->
      let det_scheme =
        match delay with
        | None -> E32.Det.Sherman_morrison
        | Some d -> E32.Det.Delayed d
      in
      E32.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F32, `F64, `F32 ->
      let det_scheme =
        match delay with
        | None -> E32_d64.Det.Sherman_morrison
        | Some d -> E32_d64.Det.Delayed d
      in
      E32_d64.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F32, `F32, `F64 ->
      let det_scheme =
        match delay with
        | None -> E32_i64.Det.Sherman_morrison
        | Some d -> E32_i64.Det.Delayed d
      in
      E32_i64.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys
  | `F32, `F64, `F64 ->
      let det_scheme =
        match delay with
        | None -> E32_d64_i64.Det.Sherman_morrison
        | Some d -> E32_d64_i64.Det.Delayed d
      in
      E32_d64_i64.create ?timers ~det_scheme ~jastrow_f32 ~layout ~seed sys

(* Per-domain factory: every domain gets its own timer set and a distinct
   seed so its engine starts from an independent configuration. *)
let factory ?delay ?precision ?precision_dt ?precision_jastrow
    ?precision_inv ~variant ~seed (sys : System.t) : int -> Engine_api.t =
 fun domain ->
  let timers = Timers.create () in
  engine ~timers ?delay ?precision ?precision_dt ?precision_jastrow
    ?precision_inv ~variant ~seed:(seed + (1000 * domain)) sys
