open Oqmc_particle

(** Deterministic, seeded fault injection for the run-integrity
    subsystem.  Injectors are disarmed by default; tests arm them, run
    the scenario, and call {!reset}.  Every knob is documented in
    [docs/ROBUSTNESS.md]. *)

(** {1 Transient IO failures} *)

type io_point =
  | Checkpoint_write  (** opening/writing the temporary checkpoint file *)
  | Checkpoint_rename  (** the atomic rename that publishes it *)

val arm_io_failure : io_point -> times:int -> unit
(** The next [times] hits of [io_point] raise [Sys_error]; exercises the
    retry-with-backoff path of {!Checkpoint.save}. *)

val should_fail_io : io_point -> bool
(** Consumed by the checkpoint writer: true when an injected failure
    must fire (decrements the armed count). *)

val io_injected_count : unit -> int

(** {1 NaN local energies} *)

val arm_nan_energy : seed:int -> rate:float -> unit
(** Poison roughly [rate] of all measured local energies with NaN.  The
    decision hashes (seed, generation, walker id), so it is reproducible
    across domain counts.  @raise Invalid_argument if [rate] ∉ [0,1]. *)

val tamper_energy : gen:int -> walker_id:int -> float -> float
(** Applied by the DMC sweep to each measured energy; identity when
    disarmed. *)

val nans_injected_count : unit -> int

(** {1 Rank-level faults}

    Process-level failures of the supervised multi-rank layer, armed
    inside the worker rank process.  Each fires exactly once, at the
    start of the generation it is armed for. *)

type rank_fault =
  | Rank_kill  (** the rank SIGKILLs itself (segfault/OOM stand-in) *)
  | Rank_stall of float
      (** sleep this many seconds without heartbeating — trips the
          supervisor's heartbeat deadline *)
  | Rank_garbage  (** emit one corrupted wire frame (CRC mismatch) *)
  | Rank_disk_full of int
      (** the rank's next [n] checkpoint writes raise [Sys_error]
          (armed through {!arm_io_failure}) — a full/flaky filesystem
          under the shard-save path *)

val arm_rank_fault : gen:int -> rank_fault -> unit
(** @raise Invalid_argument if [gen < 0]. *)

val rank_fault_due : gen:int -> rank_fault option
(** Consume the fault armed for [gen], if any. *)

val reset : unit -> unit
(** Disarm every injector and zero the counters. *)

(** {1 Direct walker poisoners (for unit tests)} *)

val poison_energy : Walker.t -> unit
val poison_weight : Walker.t -> unit
val poison_position : Walker.t -> index:int -> unit

val drift_log_psi : Walker.t -> delta:float -> unit
(** Offset the stored log Ψ, simulating accumulated mixed-precision
    incremental-update drift. *)

val flip_buffer_bit : Walker.t -> index:int -> bit:int -> unit
(** Flip one bit of entry [index] of the walker's serialized state
    buffer (a memory-corruption stand-in). *)

(** {1 Checkpoint-file corrupters} *)

val truncate_file : path:string -> lines:int -> unit
(** Keep only the first [lines] lines (a crash mid-write). *)

val truncate_file_bytes : path:string -> bytes:int -> unit

val garble_file : path:string -> seed:int -> unit
(** Deterministically flip bits in ~1/64 of the bytes. *)
