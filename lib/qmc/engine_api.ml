open Oqmc_containers
open Oqmc_particle

(* Variant-erased compute engine.

   Each build variant instantiates the engine functor at its storage
   precision and update policy and exposes this uniform record, so the
   VMC/DMC drivers, population control and benchmarks are written once.
   An engine is the per-thread pair (E_th, Psi_th) of the paper's Fig. 4:
   it owns mutable state and must never be shared between domains. *)

type sweep_result = { accepted : int; proposed : int }

(* The individual stages of one particle-by-particle move, exposed so a
   crowd driver can run many engines in lockstep over electron [k] and
   batch the SPO evaluations across walkers.  [stage_vgl] hands the
   engine a pre-computed SPO result for the position the next [grad] or
   [ratio_grad] call would otherwise evaluate; it is consumed exactly
   once.  The scalar [sweep] is the composition of these stages and
   stays the reference oracle. *)
type pbp = {
  prepare : int -> unit; (* distance-table prepare for electron k *)
  current_pos : int -> Vec3.t;
  grad : int -> Vec3.t; (* ∇ log Ψ at the current position *)
  propose : int -> Vec3.t -> unit; (* ParticleSet propose + table move *)
  ratio_grad : int -> float * Vec3.t; (* at the proposed position *)
  accept : int -> ratio:float -> unit;
  reject : int -> unit;
  stage_vgl : Oqmc_wavefunction.Spo.vgl -> unit;
}

type t = {
  label : string;
  n_electrons : int;
  timers : Timers.t;
  refresh : unit -> float;
      (* Rebuild distance tables and all wavefunction state from current
         positions (double-precision recompute); returns log Ψ. *)
  sweep : Oqmc_rng.Xoshiro.t -> tau:float -> sweep_result;
      (* One particle-by-particle drift-and-diffusion sweep (Alg. 1,
         L4-L10). *)
  measure : unit -> float;
      (* Local energy at the current configuration (refreshes what the
         update policy leaves stale). *)
  load_walker : Walker.t -> unit;
      (* Positions from the walker + full recompute (first touch). *)
  restore_walker : Walker.t -> unit;
      (* Positions + wavefunction state from the walker's buffer (the
         store-over-compute fast path; tables are still rebuilt). *)
  save_walker : Walker.t -> unit;
      (* Positions, log Ψ and serialized state back into the walker. *)
  register_walker : Walker.t -> unit;
      (* Size and fill a fresh walker's buffer. *)
  log_psi : unit -> float;
  randomize : Oqmc_rng.Xoshiro.t -> unit;
      (* Fresh uniform electron configuration + full recompute; used to
         seed independent walkers. *)
  memory_bytes : unit -> int;
      (* Persistent per-engine + per-walker-state footprint (excludes the
         shared read-only SPO table). *)
  pbp : pbp;
      (* Staged form of one PbP move, for crowd-lockstep drivers. *)
  make_vgl_batch : int -> Oqmc_wavefunction.Spo.vgl_batch;
      (* Crowd-sized batch context over this engine's SPO set; scratch
         is owned by the context, one per domain. *)
}

(* Drift of the incrementally-maintained log Ψ against a full
   double-precision recompute — the quantity the paper's periodic
   refresh bounds.  Leaves the engine in the refreshed state. *)
let drift (e : t) =
  let incremental = e.log_psi () in
  let fresh = e.refresh () in
  Float.abs (incremental -. fresh)
