open Oqmc_containers
open Oqmc_particle

(* Variant-erased compute engine.

   Each build variant instantiates the engine functor at its storage
   precision and update policy and exposes this uniform record, so the
   VMC/DMC drivers, population control and benchmarks are written once.
   An engine is the per-thread pair (E_th, Psi_th) of the paper's Fig. 4:
   it owns mutable state and must never be shared between domains. *)

type sweep_result = { accepted : int; proposed : int }

type t = {
  label : string;
  n_electrons : int;
  timers : Timers.t;
  refresh : unit -> float;
      (* Rebuild distance tables and all wavefunction state from current
         positions (double-precision recompute); returns log Ψ. *)
  sweep : Oqmc_rng.Xoshiro.t -> tau:float -> sweep_result;
      (* One particle-by-particle drift-and-diffusion sweep (Alg. 1,
         L4-L10). *)
  measure : unit -> float;
      (* Local energy at the current configuration (refreshes what the
         update policy leaves stale). *)
  load_walker : Walker.t -> unit;
      (* Positions from the walker + full recompute (first touch). *)
  restore_walker : Walker.t -> unit;
      (* Positions + wavefunction state from the walker's buffer (the
         store-over-compute fast path; tables are still rebuilt). *)
  save_walker : Walker.t -> unit;
      (* Positions, log Ψ and serialized state back into the walker. *)
  register_walker : Walker.t -> unit;
      (* Size and fill a fresh walker's buffer. *)
  log_psi : unit -> float;
  randomize : Oqmc_rng.Xoshiro.t -> unit;
      (* Fresh uniform electron configuration + full recompute; used to
         seed independent walkers. *)
  memory_bytes : unit -> int;
      (* Persistent per-engine + per-walker-state footprint (excludes the
         shared read-only SPO table). *)
}

(* Drift of the incrementally-maintained log Ψ against a full
   double-precision recompute — the quantity the paper's periodic
   refresh bounds.  Leaves the engine in the refreshed state. *)
let drift (e : t) =
  let incremental = e.log_psi () in
  let fresh = e.refresh () in
  Float.abs (incremental -. fresh)
