open Oqmc_containers
open Oqmc_particle

(* Variant-erased compute engine.

   Each build variant instantiates the engine functor at its storage
   precision and update policy and exposes this uniform record, so the
   VMC/DMC drivers, population control and benchmarks are written once.
   An engine is the per-thread pair (E_th, Psi_th) of the paper's Fig. 4:
   it owns mutable state and must never be shared between domains. *)

type sweep_result = { accepted : int; proposed : int }

(* The individual stages of one particle-by-particle move, exposed so a
   crowd driver can run many engines in lockstep over electron [k] and
   batch the SPO evaluations across walkers.  [stage_vgl] hands the
   engine a pre-computed SPO result for the position the next [grad] or
   [ratio_grad] call would otherwise evaluate; it is consumed exactly
   once.  The scalar [sweep] is the composition of these stages and
   stays the reference oracle. *)
type pbp = {
  prepare : int -> unit; (* distance-table prepare for electron k *)
  current_pos : int -> Vec3.t;
  grad : int -> Vec3.t; (* ∇ log Ψ at the current position *)
  propose : int -> Vec3.t -> unit; (* ParticleSet propose + table move *)
  ratio_grad : int -> float * Vec3.t; (* at the proposed position *)
  accept : int -> ratio:float -> unit;
  reject : int -> unit;
  stage_vgl : Oqmc_wavefunction.Spo.vgl -> unit;
}

(* Full-pipeline crowd batching.

   [crowd_hook] is the variant-private handle an engine publishes so a
   crowd driver can hand the WHOLE crowd back to the engine's own batched
   move stages: each build variant extends the type with a constructor
   wrapping its internal per-walker state, and [make_crowd_stages]
   recognizes its own constructor (and only it — a foreign or [No_crowd_hook]
   slot makes it return [None], telling the crowd to fall back to the
   staged per-walker path).

   A [crowd_stage] runs one stage of the PbP move for crowd slots
   [0..m-1] of electron [k] in a single fused pass per kernel —
   distance-table rows, Jastrow rows and determinant ratio dots each
   become one batched call per crowd instead of one per walker.  Slot
   arithmetic and ordering are exactly the scalar sweep's, so the
   double-precision path stays bit-identical to [sweep].  [slots] are the
   crowd's batched SPO results, one per walker. *)
type crowd_hook = ..
type crowd_hook += No_crowd_hook

type crowd_stage = {
  cs_prepare : k:int -> m:int -> unit;
      (* refresh distance-table rows k at the current positions *)
  cs_grad :
    k:int ->
    m:int ->
    slots:Oqmc_wavefunction.Spo.vgl array ->
    gx:float array ->
    gy:float array ->
    gz:float array ->
    unit;
      (* accumulate ∇ log Ψ at the current positions into gx/gy/gz
         (caller zero-initializes) *)
  cs_propose : k:int -> m:int -> pos:Vec3.t array -> unit;
      (* ParticleSet propose + batched table move rows *)
  cs_ratio_grad :
    k:int ->
    m:int ->
    slots:Oqmc_wavefunction.Spo.vgl array ->
    ratio:float array ->
    gx:float array ->
    gy:float array ->
    gz:float array ->
    unit;
      (* multiply ratios (caller initializes to 1.) and accumulate the
         proposed-position gradients *)
  cs_commit : k:int -> m:int -> acc:bool array -> ratio:float array -> unit;
      (* per-slot accept/reject with the scalar choreography: components,
         log Ψ, tables, ParticleSet *)
}

type t = {
  label : string;
  n_electrons : int;
  timers : Timers.t;
  refresh : unit -> float;
      (* Rebuild distance tables and all wavefunction state from current
         positions (double-precision recompute); returns log Ψ. *)
  sweep : Oqmc_rng.Xoshiro.t -> tau:float -> sweep_result;
      (* One particle-by-particle drift-and-diffusion sweep (Alg. 1,
         L4-L10). *)
  measure : unit -> float;
      (* Local energy at the current configuration (refreshes what the
         update policy leaves stale). *)
  load_walker : Walker.t -> unit;
      (* Positions from the walker + full recompute (first touch). *)
  restore_walker : Walker.t -> unit;
      (* Positions + wavefunction state from the walker's buffer (the
         store-over-compute fast path; tables are still rebuilt). *)
  save_walker : Walker.t -> unit;
      (* Positions, log Ψ and serialized state back into the walker. *)
  register_walker : Walker.t -> unit;
      (* Size and fill a fresh walker's buffer. *)
  log_psi : unit -> float;
  randomize : Oqmc_rng.Xoshiro.t -> unit;
      (* Fresh uniform electron configuration + full recompute; used to
         seed independent walkers. *)
  memory_bytes : unit -> int;
      (* Persistent per-engine + per-walker-state footprint (excludes the
         shared read-only SPO table). *)
  pbp : pbp;
      (* Staged form of one PbP move, for crowd-lockstep drivers. *)
  make_vgl_batch : int -> Oqmc_wavefunction.Spo.vgl_batch;
      (* Crowd-sized batch context over this engine's SPO set; scratch
         is owned by the context, one per domain. *)
  crowd_hook : crowd_hook;
      (* Variant-private handle to this engine's batched-pipeline state;
         [No_crowd_hook] when the variant has no batched pipeline. *)
  make_crowd_stages : crowd_hook array -> crowd_stage option;
      (* Build the fused move stages over a crowd of sibling engines
         (one hook per slot, this engine's included); [None] when any
         slot is foreign or the variant cannot batch (crowds then fall
         back to the staged per-walker path). *)
}

(* Drift of the incrementally-maintained log Ψ against a full
   double-precision recompute — the quantity the paper's periodic
   refresh bounds.  Leaves the engine in the refreshed state. *)
let drift (e : t) =
  let incremental = e.log_psi () in
  let fresh = e.refresh () in
  Float.abs (incremental -. fresh)
