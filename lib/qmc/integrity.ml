open Oqmc_particle
open Oqmc_containers

(* Walker watchdog: the run-integrity layer of the DMC driver.

   Mixed-precision engines (Ref+MP/Current) maintain the wavefunction
   state incrementally; the paper's safeguard is a periodic
   full-precision recompute.  This module turns that into an active
   defence: every generation the population is scanned for NaN/Inf
   poison (cheap, O(walkers x particles)), and every [check_every]
   generations a sampled subset is audited against a full recompute —
   both the incrementally-maintained log Psi scalar and the serialized
   state buffer are compared to freshly recomputed ground truth.
   Walkers that pass the audit are healed in place (the recomputed state
   is written back); poisoned or drifted walkers are quarantined and
   replaced by clones of healthy ones, so a single corrupted walker can
   never poison the ensemble averages or the trial-energy feedback. *)

type config = {
  check_every : int;
      (* generations between recompute audits; the NaN/Inf scan runs
         every generation regardless *)
  drift_tol : float; (* |stored log Psi - recomputed| quarantine bound *)
  buffer_tol : float; (* max relative buffer-entry deviation bound *)
  sample : int; (* walkers audited per recompute pass *)
}

let default_config =
  { check_every = 10; drift_tol = 1e-3; buffer_tol = 1e-2; sample = 4 }

type stats = {
  mutable scans : int;
  mutable audits : int; (* walkers put through the recompute audit *)
  mutable quarantined : int;
  mutable recoveries : int;
  mutable drift_max : float;
  mutable checkpoints_written : int;
  mutable checkpoint_failures : int;
}

let create_stats () =
  {
    scans = 0;
    audits = 0;
    quarantined = 0;
    recoveries = 0;
    drift_max = 0.;
    checkpoints_written = 0;
    checkpoint_failures = 0;
  }

let copy_stats (s : stats) = { s with scans = s.scans }

(* ---------- poison scan ---------- *)

let walker_finite (w : Walker.t) =
  Float.is_finite w.Walker.weight
  && Float.is_finite w.Walker.e_local
  && Float.is_finite w.Walker.log_psi
  &&
  let ok = ref true in
  for i = 0 to Walker.n_particles w - 1 do
    let p = Walker.Aos.get w.Walker.r i in
    if
      not
        (Float.is_finite p.Vec3.x && Float.is_finite p.Vec3.y
       && Float.is_finite p.Vec3.z)
    then ok := false
  done;
  !ok

(* ---------- recompute audit ---------- *)

(* Audit one walker against a full recompute from its positions.  On
   pass, the recomputed state is saved back into the walker (healing
   accumulated incremental error); on fail the walker is left as-is for
   quarantine.  Returns (trustworthy, observed drift); pure with respect
   to the shared stats so audits can run in parallel, one per domain
   engine. *)
let audit cfg (e : Engine_api.t) scratch (w : Walker.t) =
  e.Engine_api.load_walker w;
  let fresh = e.Engine_api.log_psi () in
  let drift = Float.abs (w.Walker.log_psi -. fresh) in
  (* Ground-truth serialization of the recomputed state, compared
     entry-wise against the walker's buffer: catches corruption the
     scalar comparison cannot see (flipped bits in stored matrices). *)
  e.Engine_api.register_walker scratch;
  let truth = Wbuffer.contents scratch.Walker.buffer in
  let mine = Wbuffer.contents w.Walker.buffer in
  let deviation =
    if Array.length truth <> Array.length mine then Float.infinity
    else begin
      let dev = ref 0. in
      Array.iteri
        (fun i t ->
          let d = Float.abs (t -. mine.(i)) /. (1. +. Float.abs t) in
          if not (Float.is_finite d) then dev := Float.infinity
          else dev := Float.max !dev d)
        truth;
      !dev
    end
  in
  let ok =
    Float.is_finite fresh && drift <= cfg.drift_tol
    && deviation <= cfg.buffer_tol
  in
  if ok then e.Engine_api.save_walker w;
  (ok, drift)

(* ---------- quarantine and recovery ---------- *)

let replacements (st : stats) (e : Engine_api.t) ~rng ~survivors ~count =
  match survivors with
  | [] ->
      (* Total loss: re-seed fresh walkers from the engine so the run
         can continue rather than propagate a poisoned ensemble. *)
      List.init count (fun _ ->
          let w = Walker.create e.Engine_api.n_electrons in
          e.Engine_api.randomize rng;
          e.Engine_api.register_walker w;
          w.Walker.e_local <- e.Engine_api.measure ();
          st.recoveries <- st.recoveries + 1;
          w)
  | s ->
      let arr = Array.of_list s in
      List.init count (fun i ->
          let clone = Walker.copy arr.(i mod Array.length arr) in
          clone.Walker.weight <- 1.;
          clone.Walker.age <- 0;
          clone.Walker.multiplicity <- 1;
          st.recoveries <- st.recoveries + 1;
          clone)

(* One watchdog pass over the population: always the poison scan, plus
   the sampled recompute audit when [gen] lands on [check_every].
   Quarantined walkers are replaced by clones of healthy ones (weight
   reset to 1) so the population size is preserved. *)
let watchdog cfg (st : stats) ~gen ~rng (runner : Runner.t)
    (pop : Population.t) =
  let module Trace = Oqmc_obs.Trace in
  let module Metrics = Oqmc_obs.Metrics in
  st.scans <- st.scans + 1;
  let e = Runner.engine runner 0 in
  let ws = Population.walkers pop in
  let healthy, poisoned = List.partition walker_finite ws in
  let drifted = ref [] in
  (if cfg.check_every > 0 && gen mod cfg.check_every = 0 then
     let arr = Array.of_list healthy in
     let nh = Array.length arr in
     let sample = min cfg.sample nh in
     if sample > 0 then begin
       let stride = max 1 (nh / sample) in
       (* Rotate the sampled subset between passes so every walker is
          eventually audited. *)
       let offset = if stride > 1 then gen / cfg.check_every mod stride else 0 in
       let picked = ref [] in
       let checked = ref 0 in
       let i = ref offset in
       while !checked < sample && !i < nh do
         picked := arr.(!i) :: !picked;
         incr checked;
         i := !i + stride
       done;
       (* Recompute audits are the expensive part of the watchdog:
          fan them out over the pool, one engine per domain, collecting
          per-walker verdicts; stats reduce serially afterwards. *)
       let audited =
         Array.map
           (fun w -> (w, ref (true, 0.)))
           (Array.of_list (List.rev !picked))
       in
       Trace.with_span
         ~args:[ ("sample", string_of_int sample) ]
         "integrity.audit"
         (fun () ->
           Runner.iter_walkers runner audited ~f:(fun e (w, res) ->
               let scratch = Walker.create e.Engine_api.n_electrons in
               res := audit cfg e scratch w));
       Array.iter
         (fun (w, res) ->
           let ok, drift = !res in
           st.audits <- st.audits + 1;
           Metrics.inc (Metrics.counter "integrity.audits");
           if Float.is_finite drift then
             st.drift_max <- Float.max st.drift_max drift;
           if not ok then drifted := w :: !drifted)
         audited
     end);
  let bad = poisoned @ !drifted in
  if bad <> [] then begin
    st.quarantined <- st.quarantined + List.length bad;
    (* Quarantine events are rare and load-bearing for post-mortems:
       each one lands as an instant marker on the timeline plus a
       registry counter, attributing poison vs drift. *)
    Metrics.add (Metrics.counter "integrity.quarantined") (List.length bad);
    Trace.instant
      ~args:
        [
          ("gen", string_of_int gen);
          ("poisoned", string_of_int (List.length poisoned));
          ("drifted", string_of_int (List.length !drifted));
        ]
      "integrity.quarantine";
    (* Filter by walker id through a hash set: ids are unique per
       process, so this is physical identity without the O(|healthy| ×
       |drifted|) [List.memq] scan that stalled large populations. *)
    let drift_ids = Hashtbl.create (max 8 (2 * List.length !drifted)) in
    List.iter (fun w -> Hashtbl.replace drift_ids w.Walker.id ()) !drifted;
    let survivors =
      List.filter (fun w -> not (Hashtbl.mem drift_ids w.Walker.id)) healthy
    in
    let fresh =
      replacements st e ~rng ~survivors ~count:(List.length bad)
    in
    Metrics.add (Metrics.counter "integrity.recoveries") (List.length fresh);
    Population.set_walkers pop (survivors @ fresh)
  end
