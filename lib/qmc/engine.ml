open Oqmc_containers
open Oqmc_particle
open Oqmc_wavefunction
open Oqmc_hamiltonian
open Oqmc_rng

(* The per-thread compute engine: ParticleSets, distance tables, trial
   wavefunction and Hamiltonian wired together for one build variant, plus
   the particle-by-particle drift-and-diffusion choreography of Alg. 1.

   The functor parameters fix the storage precisions independently:
   [R] is the walker/positions (working) precision, [D] the SoA
   distance-table storage precision ([precision_dt]) and [I] the inverse
   / delayed-update panel storage precision ([precision_inv]) — each
   O(N²)-class structure narrows on its own while every kernel still
   accumulates in double.  The Jastrow-coefficient narrowing
   ([precision_jastrow]) is a runtime choice ([create ~jastrow_f32]),
   since the 1-D spline tables are plain arrays rounded at build time.

   The [layout] argument picks between the Ref (store-over-compute,
   packed AoS tables) and Current (SoA, compute-on-the-fly) kernel sets.
   The accept choreography is ordered so components read the pre-move
   rows: wavefunction accepts, then table accepts, then the
   ParticleSet. *)

module Make (R : Precision.REAL) (D : Precision.REAL) (I : Precision.REAL) =
struct
  module Ps = Particle_set.Make (R)
  module W = Wfc.Make (R)
  module Twf = Trial_wavefunction.Make (R)
  module J1 = Jastrow_one.Make (R) (D)
  module J2 = Jastrow_two.Make (R) (D)
  module Det = Slater_det.Make (R) (I)
  module AAref = Dt_aa_ref.Make (R)
  module AAsoa = Dt_aa_soa.Make (R) (D)
  module ABref = Dt_ab_ref.Make (R)
  module ABsoa = Dt_ab_soa.Make (R) (D)

  type tables =
    | Store_t of AAref.t * ABref.t option
    | Otf_t of AAsoa.t * ABsoa.t option

  (* ---- full-pipeline crowd batching hook ----

     A [slot] is everything the batched move stages need from one
     engine: the determinant states, the Jastrow compute-on-the-fly
     states, the SoA tables and the particle set.  The extensible
     constructor is minted once per functor instantiation, so every
     engine built from the same instantiation (one per precision in
     [Build]) recognizes its siblings' hooks; a foreign hook makes
     [make_crowd_stages] decline and the crowd falls back to the staged
     per-walker path. *)
  type slot = {
    sl_dets : Det.state array;
    sl_j2 : J2.opt option;
    sl_j1 : J1.opt option;
    sl_tables : tables;
    sl_ps : Ps.t;
    sl_twf : Twf.t;
    sl_timers : Timers.t;
  }

  type Engine_api.crowd_hook += Crowd_slot of slot

  let make_crowd_stages (hooks : Engine_api.crowd_hook array) :
      Engine_api.crowd_stage option =
    let m = Array.length hooks in
    let opt_slots =
      Array.map
        (function Crowd_slot s -> Some s | _ -> None)
        hooks
    in
    if m = 0 || Array.exists Option.is_none opt_slots then None
    else begin
      let slots = Array.map Option.get opt_slots in
      let s0 = slots.(0) in
      let ndet = Array.length s0.sl_dets in
      let uniform =
        Array.for_all
          (fun s ->
            Array.length s.sl_dets = ndet
            && Option.is_some s.sl_j2 = Option.is_some s0.sl_j2
            && Option.is_some s.sl_j1 = Option.is_some s0.sl_j1
            &&
            match (s.sl_tables, s0.sl_tables) with
            | Otf_t (_, ab), Otf_t (_, ab0) ->
                Option.is_some ab = Option.is_some ab0
            | _ -> false (* Store tables have no batched kernels *))
          slots
      in
      if not uniform then None
      else begin
        let aa_of s =
          match s.sl_tables with
          | Otf_t (aa, _) -> aa
          | Store_t _ -> assert false
        in
        let ab_of s =
          match s.sl_tables with
          | Otf_t (_, ab) -> ab
          | Store_t _ -> assert false
        in
        let aab =
          AAsoa.make_batch (Array.map (fun s -> (aa_of s, s.sl_ps)) slots)
        in
        let abb =
          match ab_of s0 with
          | None -> None
          | Some _ ->
              Some
                (ABsoa.make_batch
                   (Array.map (fun s -> Option.get (ab_of s)) slots))
        in
        let j2s =
          match s0.sl_j2 with
          | None -> None
          | Some _ -> Some (Array.map (fun s -> Option.get s.sl_j2) slots)
        in
        let j1s =
          match s0.sl_j1 with
          | None -> None
          | Some _ -> Some (Array.map (fun s -> Option.get s.sl_j1) slots)
        in
        (* Timer attribution: one window per crowd per batched kernel on
           the slot-0 timers, mirroring the crowd's batched-SPO
           precedent (scalar engines take one window per walker). *)
        let timers0 = s0.sl_timers in
        (* The stage signatures name their SPO-slot argument [slots],
           shadowing the engine-slot array — flatten what the hot loops
           need up front. *)
        let det_states = Array.map (fun s -> s.sl_dets) slots in
        let px = Array.make m 0. and py = Array.make m 0. in
        let pz = Array.make m 0. in
        let cs_prepare ~k ~m =
          Timers.time timers0 "DistTable" (fun () ->
              AAsoa.prepare_batch aab ~k ~m)
        in
        let cs_grad ~k ~m ~(slots : Spo.vgl array) ~gx ~gy ~gz =
          (* Determinant gradients are untimed in the scalar path too
             (Twf times only J1/J2 components). *)
          for s = 0 to m - 1 do
            let sl_dets = det_states.(s) in
            for d = 0 to ndet - 1 do
              Det.grad_into sl_dets.(d) slots.(s) k ~s ~gx ~gy ~gz
            done
          done;
          (match j2s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J2" (fun () ->
                  J2.grad_batch js ~k ~m ~gx ~gy ~gz));
          match j1s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J1" (fun () ->
                  J1.grad_batch js ~k ~m ~gx ~gy ~gz)
        in
        let cs_propose ~k ~m ~(pos : Vec3.t array) =
          for s = 0 to m - 1 do
            let p = pos.(s) in
            Ps.propose slots.(s).sl_ps k p;
            px.(s) <- p.Vec3.x;
            py.(s) <- p.Vec3.y;
            pz.(s) <- p.Vec3.z
          done;
          Timers.time timers0 "DistTable" (fun () ->
              AAsoa.move_batch aab ~k ~px ~py ~pz ~m;
              match abb with
              | Some b -> ABsoa.move_batch b ~px ~py ~pz ~m
              | None -> ())
        in
        let cs_ratio_grad ~k ~m ~(slots : Spo.vgl array) ~ratio ~gx ~gy ~gz
            =
          Timers.time timers0 "DetUpdate" (fun () ->
              for s = 0 to m - 1 do
                let sl_dets = det_states.(s) in
                for d = 0 to ndet - 1 do
                  Det.ratio_grad_into sl_dets.(d) slots.(s) k ~s ~ratio ~gx
                    ~gy ~gz
                done
              done);
          (match j2s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J2" (fun () ->
                  J2.ratio_grad_batch js ~k ~m ~ratio ~gx ~gy ~gz));
          match j1s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J1" (fun () ->
                  J1.ratio_grad_batch js ~k ~m ~ratio ~gx ~gy ~gz)
        in
        let cs_commit ~k ~m ~(acc : bool array) ~(ratio : float array) =
          (* Scalar accept choreography per slot: components in
             dets → J2 → J1 order, then log Ψ, then tables (AA before
             AB), then the ParticleSet; reject touches only the set. *)
          Timers.time timers0 "DetUpdate" (fun () ->
              for s = 0 to m - 1 do
                if acc.(s) then begin
                  let sl_dets = slots.(s).sl_dets in
                  for d = 0 to ndet - 1 do
                    Det.accept_move sl_dets.(d) k
                  done
                end
              done);
          (match j2s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J2" (fun () ->
                  J2.accept_batch js ~k ~m ~acc));
          (match j1s with
          | None -> ()
          | Some js ->
              Timers.time timers0 "J1" (fun () ->
                  J1.accept_batch js ~k ~m ~acc));
          for s = 0 to m - 1 do
            if acc.(s) then begin
              let twf = slots.(s).sl_twf in
              Twf.set_log_psi twf
                (Twf.log_psi twf +. log (abs_float ratio.(s)))
            end
          done;
          Timers.time timers0 "DistTable" (fun () ->
              AAsoa.accept_batch aab ~k ~acc ~m;
              match abb with
              | Some b -> ABsoa.accept_batch b ~k ~acc ~m
              | None -> ());
          for s = 0 to m - 1 do
            if acc.(s) then Ps.accept slots.(s).sl_ps
            else Ps.reject slots.(s).sl_ps
          done
        in
        Some
          {
            Engine_api.cs_prepare;
            cs_grad;
            cs_propose;
            cs_ratio_grad;
            cs_commit;
          }
      end
    end

  let make_ions (sys : System.t) =
    match sys.System.ions with
    | [] -> None
    | groups ->
        let species =
          List.map
            (fun g ->
              {
                Particle_set.name = g.System.sname;
                charge = g.System.charge;
                count = List.length g.System.positions;
              })
            groups
        in
        let ions = Ps.create ~lattice:sys.System.lattice species in
        let all = List.concat_map (fun g -> g.System.positions) groups in
        Ps.set_all ions (Array.of_list all);
        Some ions

  let create ?(timers = Timers.null) ?(det_scheme = Det.Sherman_morrison)
      ?(jastrow_f32 = false) ~layout ~seed (sys : System.t) : Engine_api.t =
    let sys = System.validate sys in
    (* precision_jastrow: round every radial-functor control point through
       f32 storage once, up front; evaluation arithmetic stays double. *)
    let sys =
      if not jastrow_f32 then sys
      else
        let narrow = Oqmc_spline.Cubic_spline_1d.narrow in
        {
          sys with
          System.j2 = Option.map (Array.map (Array.map narrow)) sys.System.j2;
          j1 = Option.map (Array.map narrow) sys.System.j1;
        }
    in
    let lattice = sys.System.lattice in
    let n_up = sys.System.n_up and n_down = sys.System.n_down in
    let n = n_up + n_down in
    let especies =
      { Particle_set.name = "u"; charge = -1.; count = n_up }
      :: (if n_down > 0 then
            [ { Particle_set.name = "d"; charge = -1.; count = n_down } ]
          else [])
    in
    let ps = Ps.create ~lattice especies in
    let ions = make_ions sys in
    let tables =
      match (layout, ions) with
      | Variant.Store, io ->
          Store_t
            ( AAref.create ps,
              Option.map (fun i -> ABref.create ~sources:i ps) io )
      | Variant.Otf, io ->
          Otf_t
            ( AAsoa.create ps,
              Option.map (fun i -> ABsoa.create ~sources:i ps) io )
    in
    (* --- wavefunction components --- *)
    (* One staging slot shared by both spin determinants: exactly one of
       them is in-group for any electron k, so a staged SPO result is
       always consumed by the determinant the crowd driver aimed it at. *)
    let staged = ref None in
    let det_states =
      Det.make ~timers ~scheme:det_scheme ~staged ~spo:sys.System.spo
        ~first:0 ~count:n_up ps
      ::
      (if n_down > 0 then
         [
           Det.make ~timers ~scheme:det_scheme ~staged ~spo:sys.System.spo
             ~first:n_up ~count:n_down ps;
         ]
       else [])
    in
    let dets = List.map Det.component det_states in
    let j2_state =
      match (sys.System.j2, tables) with
      | Some functors, Otf_t (aa, _) ->
          Some (J2.make_opt ~table:aa ~functors ps)
      | _ -> None
    in
    let j2 =
      match (sys.System.j2, tables, j2_state) with
      | None, _, _ -> []
      | Some functors, Store_t (aa, _), _ ->
          [ J2.create_ref ~table:aa ~functors ps ]
      | Some _, Otf_t _, Some st -> [ J2.opt_component st ]
      | Some _, Otf_t _, None -> assert false
    in
    let j1_state =
      match (sys.System.j1, tables, ions) with
      | Some functors, Otf_t (_, Some ab), Some io ->
          Some (J1.make_opt ~table:ab ~functors ~ions:io ps)
      | _ -> None
    in
    let j1 =
      match (sys.System.j1, tables, ions, j1_state) with
      | None, _, _, _ -> []
      | Some _, _, None, _ -> invalid_arg "Engine: J1 requires ions"
      | Some functors, Store_t (_, Some ab), Some io, _ ->
          [ J1.create_ref ~table:ab ~functors ~ions:io ps ]
      | Some _, Otf_t _, Some _, Some st -> [ J1.opt_component st ]
      | Some _, _, _, _ -> assert false
    in
    let twf = Twf.create ~timers (dets @ j2 @ j1) in
    let gl = W.make_gl n in
    (* --- table choreography helpers --- *)
    let tables_evaluate () =
      Timers.time timers "DistTable" (fun () ->
          match tables with
          | Store_t (aa, ab) ->
              AAref.evaluate aa ps;
              Option.iter (fun t -> ABref.evaluate t ps) ab
          | Otf_t (aa, ab) ->
              AAsoa.evaluate aa ps;
              Option.iter (fun t -> ABsoa.evaluate t ps) ab)
    in
    let tables_prepare k =
      match tables with
      | Store_t _ -> ()
      | Otf_t (aa, _) ->
          Timers.time timers "DistTable" (fun () -> AAsoa.prepare aa ps k)
    in
    let tables_move k pos =
      Timers.time timers "DistTable" (fun () ->
          match tables with
          | Store_t (aa, ab) ->
              AAref.move aa ps k pos;
              Option.iter (fun t -> ABref.move t pos) ab
          | Otf_t (aa, ab) ->
              AAsoa.move aa ps k pos;
              Option.iter (fun t -> ABsoa.move t pos) ab)
    in
    let tables_accept k =
      Timers.time timers "DistTable" (fun () ->
          match tables with
          | Store_t (aa, ab) ->
              AAref.update aa k;
              Option.iter (fun t -> ABref.update t k) ab
          | Otf_t (aa, ab) ->
              AAsoa.accept aa k;
              Option.iter (fun t -> ABsoa.accept t k) ab)
    in
    (* --- Hamiltonian --- *)
    let dist_ee i j =
      match tables with
      | Store_t (aa, _) -> AAref.dist aa i j
      | Otf_t (aa, _) -> AAsoa.dist aa i j
    in
    let dist_ei k i =
      match tables with
      | Store_t (_, Some ab) -> ABref.dist ab k i
      | Otf_t (_, Some ab) -> ABsoa.dist ab k i
      | _ -> invalid_arg "Engine: no electron-ion table"
    in
    let nlpp_ratio k pos =
      Ps.propose ps k pos;
      tables_move k pos;
      let r = Twf.ratio twf ps k in
      Twf.reject twf ps k;
      Ps.reject ps;
      r
    in
    let timed_term (term : Hamiltonian.term) =
      {
        term with
        Hamiltonian.evaluate =
          (fun () -> Timers.time timers "Other" term.Hamiltonian.evaluate);
      }
    in
    let ham_terms =
      let spec = sys.System.ham in
      let coulomb_terms =
        if not spec.System.coulomb then []
        else if spec.System.ewald && Lattice.is_periodic lattice then begin
          (* Full periodic electrostatics over the combined charge set:
             electrons first, then the fixed ions. *)
          let n_ion = match ions with None -> 0 | Some io -> Ps.n io in
          let charges =
            Array.init (n + n_ion) (fun i ->
                if i < n then -1.
                else Ps.charge (Option.get ions) (i - n))
          in
          let position i =
            if i < n then Ps.get ps i else Ps.get (Option.get ions) (i - n)
          in
          [ timed_term (Ewald.term ~lattice ~charges ~position ()) ]
        end
        else begin
          let ee = timed_term (Coulomb.ee ~n ~dist:dist_ee) in
          match ions with
          | None -> [ ee ]
          | Some io ->
              let ni = Ps.n io in
              let charge i = Ps.charge io i in
              let ei =
                timed_term (Coulomb.ei ~n ~n_ion:ni ~charge ~dist:dist_ei)
              in
              let ii =
                Coulomb.ii ~n_ion:ni ~charge ~dist:(fun i j ->
                    Lattice.min_image_dist lattice (Ps.get io i) (Ps.get io j))
              in
              [ ee; ei; ii ]
        end
      in
      let harmonic_terms =
        match spec.System.harmonic with
        | None -> []
        | Some omega ->
            [
              timed_term
                (External_potential.harmonic ~omega ~n ~position:(Ps.get ps));
            ]
      in
      let nlpp_terms =
        match (spec.System.nlpp, ions) with
        | None, _ -> []
        | Some _, None -> invalid_arg "Engine: NLPP requires ions"
        | Some species, Some io ->
            [
              Nlpp.create ~quadrature:Quadrature.icosahedron ~species
                ~n_electrons:n
                ~ion_species_of:(fun i -> Ps.species_index io i)
                ~n_ions:(Ps.n io)
                ~ion_position:(Ps.get io)
                ~elec_position:(Ps.get ps) ~dist:dist_ei ~ratio:nlpp_ratio;
            ]
      in
      coulomb_terms @ harmonic_terms @ nlpp_terms
    in
    let ham = Hamiltonian.create ham_terms in
    (* --- engine operations --- *)
    let refresh () =
      tables_evaluate ();
      Twf.evaluate_log twf ps
    in
    let sweep rng ~tau =
      let sqrt_tau = sqrt tau in
      let accepted = ref 0 in
      for k = 0 to n - 1 do
        tables_prepare k;
        let gold = Twf.grad twf ps k in
        let cx, cy, cz = Xoshiro.gaussian_vec3 rng in
        let chi =
          Vec3.make (sqrt_tau *. cx) (sqrt_tau *. cy) (sqrt_tau *. cz)
        in
        let rk = Ps.get ps k in
        let newpos = Vec3.add rk (Vec3.add (Vec3.scale tau gold) chi) in
        Ps.propose ps k newpos;
        tables_move k newpos;
        let ratio, gnew = Twf.ratio_grad twf ps k in
        (* Green's-function correction for the drifted Gaussian proposal. *)
        let back =
          Vec3.sub (Vec3.sub rk newpos) (Vec3.scale tau gnew)
        in
        let log_gf = -.Vec3.norm2 chi /. (2. *. tau) in
        let log_gb = -.Vec3.norm2 back /. (2. *. tau) in
        let p = ratio *. ratio *. exp (log_gb -. log_gf) in
        if Xoshiro.uniform rng < p then begin
          incr accepted;
          Twf.accept twf ps k ~ratio;
          tables_accept k;
          Ps.accept ps
        end
        else begin
          Twf.reject twf ps k;
          Ps.reject ps
        end
      done;
      { Engine_api.accepted = !accepted; proposed = n }
    in
    let measure () =
      (* The compute-on-the-fly policy leaves AA rows of already-moved
         electrons stale within a sweep; measurements rebuild the table
         (the Ref policy maintains it incrementally). *)
      (match tables with
      | Otf_t (aa, _) ->
          Timers.time timers "DistTable" (fun () -> AAsoa.evaluate aa ps)
      | Store_t _ -> ());
      Twf.evaluate_gl twf ps gl;
      let kinetic = Twf.kinetic_energy gl in
      Hamiltonian.local_energy ham ~kinetic
    in
    let load_walker w =
      Ps.load_walker ps w;
      ignore (refresh ())
    in
    let restore_walker w =
      Ps.load_walker ps w;
      tables_evaluate ();
      Wbuffer.rewind w.Walker.buffer;
      Twf.copy_from_buffer twf ps w.Walker.buffer;
      Twf.set_log_psi twf w.Walker.log_psi
    in
    let save_walker w =
      Ps.store_walker ps w;
      w.Walker.log_psi <- Twf.log_psi twf;
      Wbuffer.rewind w.Walker.buffer;
      Twf.update_buffer twf ps w.Walker.buffer
    in
    let register_walker w =
      Wbuffer.clear w.Walker.buffer;
      Twf.register twf w.Walker.buffer;
      Ps.store_walker ps w;
      w.Walker.log_psi <- Twf.log_psi twf;
      Wbuffer.rewind w.Walker.buffer;
      Twf.update_buffer twf ps w.Walker.buffer
    in
    let randomize rng =
      Ps.randomize ps (fun () -> Xoshiro.uniform rng);
      ignore (refresh ())
    in
    let memory_bytes () =
      let table_bytes =
        match tables with
        | Store_t (aa, ab) ->
            AAref.bytes aa
            + Option.fold ~none:0 ~some:(fun t -> ABref.bytes t) ab
        | Otf_t (aa, ab) ->
            AAsoa.bytes aa
            + Option.fold ~none:0 ~some:(fun t -> ABsoa.bytes t) ab
      in
      Ps.bytes ps
      + Option.fold ~none:0 ~some:(fun i -> Ps.bytes i) ions
      + table_bytes + Twf.bytes twf
    in
    (* Staged form of the sweep's per-electron move for crowd-lockstep
       drivers; [sweep] above remains the reference composition. *)
    let pbp =
      {
        Engine_api.prepare = tables_prepare;
        current_pos = (fun k -> Ps.get ps k);
        grad = (fun k -> Twf.grad twf ps k);
        propose =
          (fun k pos ->
            Ps.propose ps k pos;
            tables_move k pos);
        ratio_grad = (fun k -> Twf.ratio_grad twf ps k);
        accept =
          (fun k ~ratio ->
            Twf.accept twf ps k ~ratio;
            tables_accept k;
            Ps.accept ps);
        reject =
          (fun k ->
            Twf.reject twf ps k;
            Ps.reject ps);
        stage_vgl = (fun v -> staged := Some v);
      }
    in
    (* Full-pipeline crowd hook: only the SoA/compute-on-the-fly layout
       has batched table kernels; Store engines decline and crowds fall
       back to the staged path. *)
    let crowd_hook =
      match tables with
      | Store_t _ -> Engine_api.No_crowd_hook
      | Otf_t _ ->
          Crowd_slot
            {
              sl_dets = Array.of_list det_states;
              sl_j2 = j2_state;
              sl_j1 = j1_state;
              sl_tables = tables;
              sl_ps = ps;
              sl_twf = twf;
              sl_timers = timers;
            }
    in
    (* Seed the electron configuration deterministically. *)
    let rng0 = Xoshiro.create seed in
    Ps.randomize ps (fun () -> Xoshiro.uniform rng0);
    ignore (refresh ());
    {
      Engine_api.label =
        Printf.sprintf "%s/%s/%s" sys.System.name R.name
          (match layout with Variant.Store -> "store" | Variant.Otf -> "otf");
      n_electrons = n;
      timers;
      refresh;
      sweep;
      measure;
      load_walker;
      restore_walker;
      save_walker;
      register_walker;
      log_psi = (fun () -> Twf.log_psi twf);
      randomize;
      memory_bytes;
      pbp;
      make_vgl_batch = sys.System.spo.Spo.make_vgl_batch;
      crowd_hook;
      make_crowd_stages;
    }
end
