open Oqmc_rng

(* Deterministic schedule-driven chaos injection for the supervised
   multi-rank layer.

   A chaos SCHEDULE is a seeded, reproducible sequence of adversarial
   events — process kills, stalls, corrupted streams, full disks, and
   elastic membership changes (ranks joining and leaving mid-run) —
   attached to specific generations of a supervised DMC run.  The same
   (seed, shape) always yields the same schedule, so a soak failure is
   replayable bit-for-bit.

   The fault events map onto the [Fault] rank injectors (armed inside
   the worker processes); membership events are interpreted by the
   supervisor, which this library cannot see (lib/dist depends on
   lib/qmc, not the reverse) — the supervisor exposes a converter from
   this event type to its own membership plan. *)

type event =
  | Kill of int (* rank: SIGKILL mid-generation *)
  | Stall of int * float (* rank, seconds: miss the heartbeat *)
  | Garbage of int (* rank: one corrupted wire frame *)
  | Disk_full of int * int (* rank, times: checkpoint writes fail *)
  | Join (* grow the rank set by one *)
  | Leave of int (* rank: graceful drain + retire *)

type schedule = (int * event) list (* (generation, event), ascending *)

let pp_event = function
  | Kill r -> Printf.sprintf "kill(rank %d)" r
  | Stall (r, s) -> Printf.sprintf "stall(rank %d, %.2fs)" r s
  | Garbage r -> Printf.sprintf "garbage(rank %d)" r
  | Disk_full (r, n) -> Printf.sprintf "disk_full(rank %d, %d writes)" r n
  | Join -> "join"
  | Leave r -> Printf.sprintf "leave(rank %d)" r

(* Aggregate event counts, for asserting that every scheduled event
   surfaced in the telemetry stream. *)
type counts = {
  kills : int;
  stalls : int;
  garbage : int;
  disk_full : int;
  joins : int;
  leaves : int;
}

let count schedule =
  List.fold_left
    (fun c (_, e) ->
      match e with
      | Kill _ -> { c with kills = c.kills + 1 }
      | Stall _ -> { c with stalls = c.stalls + 1 }
      | Garbage _ -> { c with garbage = c.garbage + 1 }
      | Disk_full _ -> { c with disk_full = c.disk_full + 1 }
      | Join -> { c with joins = c.joins + 1 }
      | Leave _ -> { c with leaves = c.leaves + 1 })
    { kills = 0; stalls = 0; garbage = 0; disk_full = 0; joins = 0; leaves = 0 }
    schedule

let total schedule = List.length schedule

(* The fault part of a schedule, in [Supervisor.params.faults] form.
   Membership events are skipped; the supervisor consumes those through
   its own converter. *)
let faults_of schedule =
  List.filter_map
    (fun (gen, e) ->
      match e with
      | Kill r -> Some (r, gen, Fault.Rank_kill)
      | Stall (r, s) -> Some (r, gen, Fault.Rank_stall s)
      | Garbage r -> Some (r, gen, Fault.Rank_garbage)
      | Disk_full (r, n) -> Some (r, gen, Fault.Rank_disk_full n)
      | Join | Leave _ -> None)
    schedule

(* ---------- schedule generation ----------

   [plan] lays the membership trajectory down FIRST — evenly spaced
   waypoints walking the live-rank count through [trajectory]
   (e.g. 4 -> 6 -> 3 -> 5) with joins refilling the lowest vacant slot,
   mirroring the supervisor's slot-refill rule — and then scatters
   [events] fault events over the remaining generations, each targeting
   a rank that is live at that point of the simulated membership.  All
   randomness comes from one Xoshiro stream seeded by [seed]. *)

let plan ~seed ~gens ~ranks ?(trajectory = []) ?(events = 0)
    ?(stall_s = 0.4) ?(disk_failures = 2) () =
  if gens < 4 then invalid_arg "Chaos.plan: gens < 4";
  if ranks < 1 then invalid_arg "Chaos.plan: ranks < 1";
  if List.exists (fun w -> w < 1) trajectory then
    invalid_arg "Chaos.plan: trajectory waypoint < 1";
  let rng = Xoshiro.create seed in
  let pick_int n = int_of_float (Xoshiro.uniform rng *. float_of_int n) in
  (* Simulated membership state, kept in lockstep with the supervisor's
     slot rules: live ids sorted ascending, vacancies refilled
     lowest-first, fresh ids past the current maximum otherwise. *)
  let live = ref (List.init ranks Fun.id) in
  let vacant = ref [] in
  let next_id = ref ranks in
  let used_gens = Hashtbl.create 32 in
  let schedule = ref [] in
  let add gen e =
    Hashtbl.replace used_gens gen ();
    schedule := (gen, e) :: !schedule
  in
  (* Membership waypoints: walk the live count to each target, one
     join/leave per generation so every transition is observable. *)
  let waypoints = List.length trajectory in
  List.iteri
    (fun i target ->
      let base = (i + 1) * gens / (waypoints + 1) in
      let delta = target - List.length !live in
      for k = 0 to abs delta - 1 do
        let gen = min (gens - 2) (base + k) in
        if delta > 0 then begin
          let id =
            match List.sort compare !vacant with
            | v :: rest ->
                vacant := rest;
                v
            | [] ->
                let id = !next_id in
                incr next_id;
                id
          in
          live := List.sort compare (id :: !live);
          add gen Join
        end
        else begin
          (* Never drain the last rank; pick the victim by seed. *)
          match !live with
          | [] | [ _ ] -> ()
          | ids ->
              let r = List.nth ids (pick_int (List.length ids)) in
              live := List.filter (fun x -> x <> r) ids;
              vacant := r :: !vacant;
              add gen (Leave r)
        end
      done)
    trajectory;
  (* Fault events on the free generations.  Kills/stalls/garbage leave
     membership unchanged (the supervisor respawns the rank), so the
     simulated live set stays valid; targets are drawn from the ranks
     live at that generation per the waypoint walk above. *)
  let live_at gen =
    (* Replay the membership part of the schedule up to [gen]. *)
    let ids = ref (List.init ranks Fun.id) in
    let nid = ref ranks in
    let vac = ref [] in
    List.iter
      (fun (g, e) ->
        if g <= gen then
          match e with
          | Join ->
              let id =
                match List.sort compare !vac with
                | v :: rest ->
                    vac := rest;
                    v
                | [] ->
                    let id = !nid in
                    incr nid;
                    id
              in
              ids := List.sort compare (id :: !ids)
          | Leave r ->
              ids := List.filter (fun x -> x <> r) !ids;
              vac := r :: !vac
          | _ -> ())
      (List.sort compare (List.rev !schedule));
    !ids
  in
  let free_gens =
    List.filter
      (fun g -> not (Hashtbl.mem used_gens g))
      (List.init (max 0 (gens - 4)) (fun i -> i + 2))
  in
  let free = ref free_gens in
  for i = 0 to events - 1 do
    match !free with
    | [] -> ()
    | gens_left ->
        let n = List.length gens_left in
        let gen = List.nth gens_left (pick_int n) in
        free := List.filter (fun g -> g <> gen) gens_left;
        let ids = live_at gen in
        let r = List.nth ids (pick_int (List.length ids)) in
        let e =
          match (i + pick_int 4) mod 4 with
          | 0 -> Kill r
          | 1 -> Stall (r, stall_s)
          | 2 -> Garbage r
          | _ -> Disk_full (r, disk_failures)
        in
        add gen e
  done;
  List.sort compare (List.rev !schedule)

(* ---------- service-level chaos (the serve daemon) ----------

   The rank-level events above attack ONE supervised run from the
   inside; service events attack the layer that multiplexes many runs:
   clients that hang up before their reply, the daemon SIGKILLed
   mid-job (restart + journal replay must lose nothing), submission
   storms that must be REJECTED at the admission bound rather than
   silently dropped, and cache entries corrupted on disk (must read as
   a miss, never as a wrong result).  Events are anchored to job
   indices of a seeded submission mix — the @serve-soak harness
   interprets them as it submits. *)

type service_event =
  | Client_disconnect (* submitter hangs up before its terminal reply *)
  | Server_kill (* SIGKILL the daemon mid-job; restart + replay *)
  | Queue_storm of int (* n submissions beyond the admission bound *)
  | Cache_corrupt (* garble a cache entry; must surface as a miss *)

type service_schedule = (int * service_event) list (* (job index, event) *)

let pp_service_event = function
  | Client_disconnect -> "client_disconnect"
  | Server_kill -> "server_kill"
  | Queue_storm n -> Printf.sprintf "queue_storm(%d)" n
  | Cache_corrupt -> "cache_corrupt"

type service_counts = {
  disconnects : int;
  server_kills : int;
  storms : int;
  corruptions : int;
}

let service_count schedule =
  List.fold_left
    (fun c (_, e) ->
      match e with
      | Client_disconnect -> { c with disconnects = c.disconnects + 1 }
      | Server_kill -> { c with server_kills = c.server_kills + 1 }
      | Queue_storm _ -> { c with storms = c.storms + 1 }
      | Cache_corrupt -> { c with corruptions = c.corruptions + 1 })
    { disconnects = 0; server_kills = 0; storms = 0; corruptions = 0 }
    schedule

let plan_service ~seed ~jobs ?(events = 4) ?(storm = 4) () =
  if jobs < 1 then invalid_arg "Chaos.plan_service: jobs < 1";
  if events < 0 then invalid_arg "Chaos.plan_service: events < 0";
  if storm < 1 then invalid_arg "Chaos.plan_service: storm < 1";
  let rng = Xoshiro.create seed in
  let pick_int n = int_of_float (Xoshiro.uniform rng *. float_of_int n) in
  (* At most one event per job index so every event is attributable. *)
  let free = ref (List.init jobs Fun.id) in
  let schedule = ref [] in
  for i = 0 to events - 1 do
    match !free with
    | [] -> ()
    | left ->
        let j = List.nth left (pick_int (List.length left)) in
        free := List.filter (fun x -> x <> j) left;
        let e =
          match (i + pick_int 4) mod 4 with
          | 0 -> Client_disconnect
          | 1 -> Server_kill
          | 2 -> Queue_storm storm
          | _ -> Cache_corrupt
        in
        schedule := (j, e) :: !schedule
  done;
  List.sort compare !schedule
