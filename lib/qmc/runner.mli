(** Walker-parallel execution over a persistent pool of OCaml 5 domains —
    the stand-in for OpenMP thread parallelism.  Each domain owns one
    engine (the paper's per-thread E_th / Psi_th) created once and reused
    across steps; worker domains are spawned once at {!create}, park on a
    condition variable between parallel regions, and pull walker indices
    from a shared atomic counter in small grains. *)

type t

val create : n_domains:int -> factory:(int -> Engine_api.t) -> t
(** One engine per domain, built by [factory domain_index], plus
    [n_domains - 1] parked worker domains (none when [n_domains = 1]).
    @raise Invalid_argument if [n_domains < 1]. *)

val shutdown : t -> unit
(** Wake and join all pool workers.  Idempotent.  Further parallel
    regions on this runner raise [Invalid_argument]. *)

val with_runner :
  n_domains:int -> factory:(int -> Engine_api.t) -> (t -> 'a) -> 'a
(** [create] + run + guaranteed [shutdown] (also on exceptions). *)

val n_domains : t -> int
val engine : t -> int -> Engine_api.t
val engines : t -> Engine_api.t array

val merged_timers : t -> Oqmc_containers.Timers.t
(** All per-domain kernel timers merged into one set. *)

val total_spawns : unit -> int
(** Process-lifetime count of domains spawned by this module — a run
    must account for exactly [n_domains - 1], independent of how many
    parallel regions it executes. *)

val grain_for : n:int -> n_domains:int -> int
(** Indices pulled per atomic-counter fetch: [max 1 (min 32
    (n / (n_domains * 4)))] — several grains per domain for balance,
    bounded counter traffic. *)

exception Domain_failures of (int * exn) list
(** Raised by parallel regions when more than one domain fails:
    [(domain_index, exn)] pairs sorted by domain.  A single failure is
    re-raised unchanged.  The pool remains usable afterwards. *)

val parallel_for :
  ?grain:int -> t -> n:int -> f:(domain:int -> int -> unit) -> unit
(** Run [f ~domain i] for every [i < n] exactly once, dynamically
    distributed: the caller participates as domain 0, parked workers as
    domains [1..n_domains-1].  Worker writes are published to the caller
    by the epoch handshake (mutex release/acquire), exactly as
    [Domain.join] would.  All failures are collected — see
    {!Domain_failures}.

    The grain (indices pulled per counter fetch) is [?grain] when given,
    else the [OQMC_GRAIN] environment variable (read once per process;
    invalid or < 1 values are ignored), else {!grain_for} — the tunable
    exists for bench sweeps over scheduling granularity.
    @raise Invalid_argument if [grain < 1]. *)

val iter_walkers : t -> 'w array -> f:(Engine_api.t -> 'w -> unit) -> unit
(** [parallel_for] specialized to walker arrays: [f engine walkers.(i)]
    where [engine] belongs to the executing domain. *)
