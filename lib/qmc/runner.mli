(** Walker-parallel execution over OCaml 5 domains — the stand-in for
    OpenMP thread parallelism.  Each domain owns one engine (the paper's
    per-thread E_th / Psi_th) created once and reused across steps. *)

type t

val create : n_domains:int -> factory:(int -> Engine_api.t) -> t
(** One engine per domain, built by [factory domain_index].
    @raise Invalid_argument if [n_domains < 1]. *)

val n_domains : t -> int
val engine : t -> int -> Engine_api.t
val engines : t -> Engine_api.t array

val merged_timers : t -> Oqmc_containers.Timers.t
(** All per-domain kernel timers merged into one set. *)

exception Domain_failures of (int * exn) list
(** Raised by {!iter_walkers} when more than one domain fails:
    [(domain_index, exn)] pairs in domain order.  A single failure is
    re-raised unchanged. *)

val iter_walkers : t -> 'w array -> f:(Engine_api.t -> 'w -> unit) -> unit
(** Apply [f engine walker] to every element, chunked contiguously
    across domains; mutations are published by [Domain.join].  All
    domains are joined even when some raise — failures are collected and
    re-raised (aggregated as {!Domain_failures} when several). *)
