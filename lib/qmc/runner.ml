open Oqmc_containers

(* Walker-parallel execution over OCaml 5 domains — the stand-in for the
   paper's OpenMP thread-level parallelism (Fig. 4).  Each domain owns one
   compute engine (E_th / Psi_th) created once by the factory; the shared
   read-only SPO table lives happily on the shared heap.

   Worker domains are a PERSISTENT POOL: spawned once at [create] and
   reused for every parallel region (each VMC/DMC generation,
   equilibration sweep and watchdog audit) instead of the former
   spawn/join per call — O(generations × domains) spawn cost becomes
   O(domains) per run.  Work is distributed dynamically: indices are
   pulled from a shared [Atomic.t] counter in small grains
   (work-stealing-lite), so uneven per-walker costs after branching no
   longer serialize on the slowest static chunk, and an uneven
   [n mod n_domains] can never hand a domain an empty chunk while
   another does double work.

   Parking protocol: workers sleep on a condition variable keyed by an
   epoch counter; posting a region bumps the epoch under the mutex and
   broadcasts.  Completion uses a join-free epoch handshake — each
   worker decrements [active] under the mutex when its grains are
   exhausted, and the caller waits for [active = 0].  The mutex
   release/acquire pair establishes the happens-before edge that
   [Domain.join] used to provide, so all worker writes (walker records,
   timers) are published to the caller. *)

(* Process-lifetime count of [Domain.spawn] calls issued by this module —
   pinned by the pool tests: a run must spawn exactly [n_domains - 1]
   domains total, not per generation. *)
let spawns = Atomic.make 0
let total_spawns () = Atomic.get spawns

(* Grain of indices pulled per counter fetch.  Small enough that every
   domain can get several grains (load balance), large enough to keep
   counter contention negligible.  Pure — pinned by tests. *)
let grain_for ~n ~n_domains =
  if n <= 0 then 1 else max 1 (min 32 (n / (n_domains * 4)))

(* Environment override for bench sweeps: OQMC_GRAIN=<g> forces every
   region's grain (clamped to >= 1); unset/invalid means the heuristic.
   Read once — a process's grain policy should not drift mid-run. *)
let env_grain =
  lazy
    (match Sys.getenv_opt "OQMC_GRAIN" with
    | None -> None
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some g when g >= 1 -> Some g
        | _ -> None))

(* Per-region grain resolution: explicit [?grain] beats OQMC_GRAIN beats
   [grain_for]. *)
let resolve_grain ?grain ~n ~n_domains () =
  match grain with
  | Some g when g >= 1 -> g
  | Some _ -> invalid_arg "Runner.parallel_for: grain < 1"
  | None -> (
      match Lazy.force env_grain with
      | Some g -> g
      | None -> grain_for ~n ~n_domains)

type pool = {
  mutex : Mutex.t;
  work_ready : Condition.t; (* workers: a new epoch was posted *)
  work_done : Condition.t; (* caller: all workers finished the epoch *)
  mutable epoch : int;
  mutable job : (int -> int -> unit) option; (* domain -> index -> unit *)
  mutable total : int;
  mutable grain : int;
  next : int Atomic.t;
  mutable active : int; (* workers still inside the current epoch *)
  mutable failures : (int * exn) list;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

type t = {
  engines : Engine_api.t array;
  n_domains : int;
  pool : pool option; (* None iff n_domains = 1: plain sequential loop *)
  mutable shut : bool;
}

exception Domain_failures of (int * exn) list

(* Pull and run grains until the counter is exhausted; never raises. *)
let run_grains ~job ~next ~total ~grain ~domain =
  try
    let continue_ = ref true in
    while !continue_ do
      let lo = Atomic.fetch_and_add next grain in
      if lo >= total then continue_ := false
      else
        let hi = min total (lo + grain) in
        for i = lo to hi - 1 do
          job domain i
        done
    done;
    None
  with e -> Some e

let worker pool d () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.epoch = !seen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if pool.stop then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = Option.get pool.job in
      let total = pool.total and grain = pool.grain in
      Mutex.unlock pool.mutex;
      let err =
        run_grains ~job ~next:pool.next ~total ~grain ~domain:d
      in
      Mutex.lock pool.mutex;
      (match err with
      | Some e -> pool.failures <- (d, e) :: pool.failures
      | None -> ());
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let create ~n_domains ~(factory : int -> Engine_api.t) =
  if n_domains < 1 then invalid_arg "Runner.create: n_domains < 1";
  let engines = Array.init n_domains factory in
  let pool =
    if n_domains = 1 then None
    else begin
      let p =
        {
          mutex = Mutex.create ();
          work_ready = Condition.create ();
          work_done = Condition.create ();
          epoch = 0;
          job = None;
          total = 0;
          grain = 1;
          next = Atomic.make 0;
          active = 0;
          failures = [];
          stop = false;
          workers = [||];
        }
      in
      p.workers <-
        Array.init (n_domains - 1) (fun i ->
            Atomic.incr spawns;
            Domain.spawn (worker p (i + 1)));
      Some p
    end
  in
  { engines; n_domains; pool; shut = false }

let n_domains t = t.n_domains
let engine t i = t.engines.(i)
let engines t = t.engines

(* Merge all per-domain kernel timers into one set. *)
let merged_timers t =
  let out = Timers.create () in
  Array.iter (fun e -> Timers.merge ~into:out e.Engine_api.timers) t.engines;
  out

(* Run [f ~domain i] for every [i < n] exactly once, the caller acting
   as domain 0 and pool workers as domains 1..n_domains-1.  All workers
   always return to the parked state, even when some indices raise: a
   lone failure is re-raised as-is, several are aggregated into
   [Domain_failures] in domain order — nothing is lost and no worker is
   leaked, poisoned epochs leave the pool usable. *)
let parallel_for ?grain t ~n ~(f : domain:int -> int -> unit) =
  if t.shut then invalid_arg "Runner: pool is shut down";
  if n > 0 then
    Oqmc_obs.Trace.with_span
      ~args:[ ("n", string_of_int n) ]
      "runner.region"
    @@ fun () ->
    match t.pool with
    | None ->
        ignore (resolve_grain ?grain ~n ~n_domains:1 ()); (* validate *)
        for i = 0 to n - 1 do
          f ~domain:0 i
        done
    | Some p ->
        let job d i = f ~domain:d i in
        (* resolve (and validate) before taking the mutex: a raise while
           holding it would poison the pool *)
        let g = resolve_grain ?grain ~n ~n_domains:t.n_domains () in
        Mutex.lock p.mutex;
        p.job <- Some job;
        p.total <- n;
        p.grain <- g;
        Atomic.set p.next 0;
        p.active <- t.n_domains - 1;
        p.failures <- [];
        p.epoch <- p.epoch + 1;
        Condition.broadcast p.work_ready;
        Mutex.unlock p.mutex;
        let my_err =
          run_grains ~job ~next:p.next ~total:n ~grain:p.grain ~domain:0
        in
        Mutex.lock p.mutex;
        (match my_err with
        | Some e -> p.failures <- (0, e) :: p.failures
        | None -> ());
        while p.active > 0 do
          Condition.wait p.work_done p.mutex
        done;
        let fs = p.failures in
        p.job <- None;
        Mutex.unlock p.mutex;
        let fs = List.sort (fun (a, _) (b, _) -> compare a b) fs in
        (match fs with
        | [] -> ()
        | [ (_, e) ] -> raise e
        | fs -> raise (Domain_failures fs))

(* Apply [f engine walker] to every walker; each executing domain uses
   its own engine regardless of which indices it pulls. *)
let iter_walkers t (walkers : 'w array) ~(f : Engine_api.t -> 'w -> unit) =
  parallel_for t
    ~n:(Array.length walkers)
    ~f:(fun ~domain i -> f t.engines.(domain) walkers.(i))

(* Park-to-join transition: wake every worker with the stop flag and
   join them.  Idempotent; the runner only rejects further parallel
   regions (single-domain use keeps working — there is nothing to
   leak). *)
let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    match t.pool with
    | None -> ()
    | Some p ->
        Mutex.lock p.mutex;
        p.stop <- true;
        Condition.broadcast p.work_ready;
        Mutex.unlock p.mutex;
        Array.iter Domain.join p.workers;
        p.workers <- [||]
  end

(* Convenience wrapper: run [f runner] and always return the workers to
   the OS, even on exceptions. *)
let with_runner ~n_domains ~factory f =
  let t = create ~n_domains ~factory in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
