open Oqmc_containers

(* Walker-parallel execution over OCaml 5 domains — the stand-in for the
   paper's OpenMP thread-level parallelism (Fig. 4).  Each domain owns one
   compute engine (E_th / Psi_th) created once by the factory and reused
   across steps; walkers are partitioned into contiguous chunks.  The
   shared read-only SPO table lives happily on the shared heap. *)

type t = {
  engines : Engine_api.t array;
  n_domains : int;
}

let create ~n_domains ~(factory : int -> Engine_api.t) =
  if n_domains < 1 then invalid_arg "Runner.create: n_domains < 1";
  { engines = Array.init n_domains factory; n_domains }

let n_domains t = t.n_domains
let engine t i = t.engines.(i)
let engines t = t.engines

(* Merge all per-domain kernel timers into one set. *)
let merged_timers t =
  let out = Timers.create () in
  Array.iter (fun e -> Timers.merge ~into:out e.Engine_api.timers) t.engines;
  out

exception Domain_failures of (int * exn) list

(* Apply [f engine walker] to every walker, chunked across domains.
   Mutations of walker records are published by Domain.join.  Every
   domain is always joined, even when some raise: a lone failure is
   re-raised as-is, several are aggregated into [Domain_failures] —
   nothing is lost and no domain is leaked unjoined. *)
let iter_walkers t (walkers : 'w array) ~(f : Engine_api.t -> 'w -> unit) =
  let n = Array.length walkers in
  if n = 0 then ()
  else if t.n_domains = 1 then
    Array.iter (fun w -> f t.engines.(0) w) walkers
  else begin
    let chunk = (n + t.n_domains - 1) / t.n_domains in
    let work d () =
      let lo = d * chunk in
      let hi = min n (lo + chunk) in
      let e = t.engines.(d) in
      for i = lo to hi - 1 do
        f e walkers.(i)
      done
    in
    let handles =
      Array.init (t.n_domains - 1) (fun d -> Domain.spawn (work (d + 1)))
    in
    let failures = ref [] in
    (try work 0 () with e -> failures := (0, e) :: !failures);
    Array.iteri
      (fun i h ->
        try Domain.join h
        with e -> failures := (i + 1, e) :: !failures)
      handles;
    match List.rev !failures with
    | [] -> ()
    | [ (_, e) ] -> raise e
    | fs -> raise (Domain_failures fs)
  end
