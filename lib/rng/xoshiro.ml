(* xoshiro256** 1.0 (Blackman & Vigna 2018).

   QMC correctness rests on long, independent per-walker random streams; a
   DMC run draws ~3N gaussians + N uniforms per walker per step for ~10⁶
   steps.  xoshiro256** has a 2²⁵⁶−1 period and a cheap [jump] function
   giving 2¹²⁸ non-overlapping subsequences, which we use to hand every
   walker/thread its own stream — the role MPI-rank- and thread-offset
   seeding plays in QMCPACK. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  (* Box–Muller produces gaussians in pairs; the spare is cached here. *)
  mutable cached_gaussian : float;
  mutable has_cached : bool;
}

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let create seed =
  let sm = Splitmix64.create seed in
  let s0 = Splitmix64.next sm in
  let s1 = Splitmix64.next sm in
  let s2 = Splitmix64.next sm in
  let s3 = Splitmix64.next sm in
  { s0; s1; s2; s3; cached_gaussian = 0.; has_cached = false }

let copy t = { t with s0 = t.s0 }

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

(* Uniform in [0,1): top 53 bits scaled by 2⁻⁵³. *)
let uniform t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform_range t ~lo ~hi = lo +. ((hi -. lo) *. uniform t)

let int t bound =
  if bound <= 0 then invalid_arg "Xoshiro.int: bound <= 0";
  (* Rejection-free for our purposes: bias is < bound/2⁶⁴, negligible. *)
  let u = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem u (Int64.of_int bound))

let gaussian t =
  if t.has_cached then begin
    t.has_cached <- false;
    t.cached_gaussian
  end
  else begin
    (* Box–Muller; u1 is kept away from 0 so log is finite. *)
    let rec draw () =
      let u = uniform t in
      if u > 1e-300 then u else draw ()
    in
    let u1 = draw () in
    let u2 = uniform t in
    let r = sqrt (-2. *. log u1) in
    let theta = 2. *. Float.pi *. u2 in
    t.cached_gaussian <- r *. sin theta;
    t.has_cached <- true;
    r *. cos theta
  end

let gaussian_vec3 t =
  let x = gaussian t in
  let y = gaussian t in
  let z = gaussian t in
  (x, y, z)

(* Jump polynomial of xoshiro256**: advances the stream by 2¹²⁸ draws. *)
let jump_table =
  [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL;
     0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun word ->
      for b = 0 to 63 do
        if Int64.logand word (Int64.shift_left 1L b) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next_int64 t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3;
  t.has_cached <- false

let split t =
  let child = copy t in
  jump t;
  child.has_cached <- false;
  child

let streams ~seed n =
  let master = create seed in
  Array.init n (fun _ -> split master)

(* State serialization: six hex fields (s0..s3, the Box–Muller cache as
   raw bits, and the cache flag).  Bit-exact round trip, so a restored
   generator continues the exact draw sequence — required by the job
   snapshot/resume path in lib/dist. *)

let state_string t =
  Printf.sprintf "%Lx %Lx %Lx %Lx %Lx %d" t.s0 t.s1 t.s2 t.s3
    (Int64.bits_of_float t.cached_gaussian)
    (if t.has_cached then 1 else 0)

let of_state_string s =
  try
    Scanf.sscanf s " %Lx %Lx %Lx %Lx %Lx %d"
      (fun s0 s1 s2 s3 cached flag ->
        if flag <> 0 && flag <> 1 then failwith "flag";
        {
          s0;
          s1;
          s2;
          s3;
          cached_gaussian = Int64.float_of_bits cached;
          has_cached = flag = 1;
        })
  with _ -> invalid_arg "Xoshiro.of_state_string: malformed state"

let restore t other =
  t.s0 <- other.s0;
  t.s1 <- other.s1;
  t.s2 <- other.s2;
  t.s3 <- other.s3;
  t.cached_gaussian <- other.cached_gaussian;
  t.has_cached <- other.has_cached
