(** xoshiro256** pseudo-random generator with jump-based stream splitting.
    Every walker and every domain gets its own non-overlapping stream, the
    role per-rank/per-thread seeding plays in QMCPACK. *)

type t

val create : int -> t
(** Generator seeded via SplitMix64 expansion of [seed]. *)

val copy : t -> t

val next_int64 : t -> int64

val uniform : t -> float
(** Uniform in [\[0,1)] with full 53-bit mantissa resolution. *)

val uniform_range : t -> lo:float -> hi:float -> float

val int : t -> int -> int
(** Uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller with pair caching). *)

val gaussian_vec3 : t -> float * float * float

val jump : t -> unit
(** Advance by 2¹²⁸ draws; used to carve independent substreams. *)

val split : t -> t
(** Return a generator positioned at the current state and [jump] the
    parent, so parent and child never overlap. *)

val streams : seed:int -> int -> t array
(** [n] mutually non-overlapping generators from one seed. *)

val state_string : t -> string
(** Full generator state (including the Box–Muller spare cache) as a
    printable token string; bit-exact under {!of_state_string}. *)

val of_state_string : string -> t
(** Inverse of {!state_string}.
    @raise Invalid_argument on malformed input. *)

val restore : t -> t -> unit
(** [restore t saved] overwrites [t]'s state in place with [saved]'s, so
    aliases of [t] observe the restored stream. *)
