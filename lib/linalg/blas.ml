open Oqmc_containers

(* Hand-rolled BLAS-1/2/3 kernels over precision-fixed aligned storage.

   These are the building blocks of DetUpdate (BLAS2 Sherman–Morrison) and
   of the delayed-update scheme (BLAS3 flush).  Accumulation is always in
   double; only loads/stores happen at the storage precision, matching the
   paper's mixed-precision policy.

   Without flambda, per-element access through the precision functor boxes
   a float on every call, so the kernels here cross the functor boundary
   through the bulk row primitives (Aligned.dot_into / dot_arr_into /
   axpy_from / read_into / write_from) — once per row, never per element —
   and run their inner loops monomorphically.  The zero-alloc hot paths
   (determinant ratios and the delayed flush) take caller-owned scratch;
   the classic BLAS entry points below allocate their own small pads and
   are kept for the cold paths and tests. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)

  let dot (x : A.t) (y : A.t) n =
    let pad = [| 0. |] in
    A.dot_into ~a:x ~apos:0 ~b:y ~bpos:0 ~n pad 0;
    pad.(0)

  let scal alpha (x : A.t) n =
    for i = 0 to n - 1 do
      A.unsafe_set x i (alpha *. A.unsafe_get x i)
    done

  let axpy alpha (x : A.t) (y : A.t) n =
    let c = [| alpha |] in
    let src = Array.make n 0. in
    A.read_into x ~pos:0 src ~n;
    A.axpy_from c ~ci:0 src y ~pos:0 ~n

  let copy (x : A.t) (y : A.t) n =
    A.copy_within ~src:x ~spos:0 ~dst:y ~dpos:0 ~n

  let asum (x : A.t) n =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. abs_float (A.unsafe_get x i)
    done;
    !acc

  let nrm2 (x : A.t) n = sqrt (dot x x n)

  (* y := A x, A is rows×cols (row-major, leading dimension honored). *)
  let gemv (a : M.t) (x : A.t) (y : A.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    let xs = Array.make cols 0. and ys = Array.make rows 0. in
    A.read_into x ~pos:0 xs ~n:cols;
    for i = 0 to rows - 1 do
      A.dot_arr_into data ~pos:(i * ld) xs ~n:cols ys i
    done;
    A.write_from ys y ~pos:0 ~n:rows

  (* y := Aᵀ x — accumulate in a plain-scratch mirror of y, then one
     narrowing write-back. *)
  let gemv_t (a : M.t) (x : A.t) (y : A.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    let acc = Array.make cols 0. and xs = Array.make rows 0. in
    let row = Array.make cols 0. in
    A.read_into x ~pos:0 xs ~n:rows;
    for i = 0 to rows - 1 do
      let xi = Array.unsafe_get xs i in
      if xi <> 0. then begin
        A.read_into data ~pos:(i * ld) row ~n:cols;
        for j = 0 to cols - 1 do
          Array.unsafe_set acc j
            (Array.unsafe_get acc j +. (xi *. Array.unsafe_get row j))
        done
      end
    done;
    A.write_from acc y ~pos:0 ~n:cols

  (* A := A + alpha · x yᵀ (rank-1 update): y staged once, one axpy_from
     per row with the coefficient read from scratch. *)
  let ger alpha (x : A.t) (y : A.t) (a : M.t) =
    let rows = M.rows a and cols = M.cols a and ld = M.ld a in
    let data = M.data a in
    let c = Array.make rows 0. and ys = Array.make cols 0. in
    A.read_into x ~pos:0 c ~n:rows;
    for i = 0 to rows - 1 do
      c.(i) <- alpha *. c.(i)
    done;
    A.read_into y ~pos:0 ys ~n:cols;
    for i = 0 to rows - 1 do
      if Array.unsafe_get c i <> 0. then
        A.axpy_from c ~ci:i ys data ~pos:(i * ld) ~n:cols
    done

  (* C := alpha · A B + beta · C — row-staged: each row of C accumulates in
     plain scratch across the k rank-1 contributions of A's row, preserving
     the unblocked per-element accumulation order. *)
  let gemm ?(alpha = 1.) ?(beta = 0.) (a : M.t) (b : M.t) (c : M.t) =
    if M.cols a <> M.rows b || M.rows a <> M.rows c || M.cols b <> M.cols c
    then invalid_arg "Blas.gemm: shape mismatch";
    let n = M.rows a and k = M.cols a and m = M.cols b in
    let arow = Array.make k 0.
    and brow = Array.make m 0.
    and crow = Array.make m 0. in
    let ad = M.data a and bd = M.data b and cd = M.data c in
    let ald = M.ld a and bld = M.ld b and cld = M.ld c in
    for i = 0 to n - 1 do
      A.read_into cd ~pos:(i * cld) crow ~n:m;
      for j = 0 to m - 1 do
        crow.(j) <- beta *. crow.(j)
      done;
      A.read_into ad ~pos:(i * ald) arow ~n:k;
      for p = 0 to k - 1 do
        let aip = alpha *. Array.unsafe_get arow p in
        if aip <> 0. then begin
          A.read_into bd ~pos:(p * bld) brow ~n:m;
          for j = 0 to m - 1 do
            Array.unsafe_set crow j
              (Array.unsafe_get crow j +. (aip *. Array.unsafe_get brow j))
          done
        end
      done;
      A.write_from crow cd ~pos:(i * cld) ~n:m
    done

  let row_dot (a : M.t) i (x : A.t) =
    let pad = [| 0. |] in
    A.dot_into ~a:(M.data a) ~apos:(i * M.ld a) ~b:x ~bpos:0 ~n:(M.cols a)
      pad 0;
    pad.(0)

  (* ---- Blocked GEMM-shaped kernels for the delayed-update flush ---- *)

  (* Y := B Vᵀ : y.(a·ystride + i) = B[a]·vs.(i) for i < k.

     Row-blocked: row a of B is staged into [scratch] once and dotted
     against all k (cache-resident) v rows, so B streams through memory
     once per flush instead of once per queued column.  Each Y element is
     a single in-order summation chain over the row, which keeps the
     result bit-identical to the unblocked reference. *)
  let mul_vt (bm : M.t) ~(vs : float array array) ~k ~(y : float array)
      ~ystride ~(scratch : float array) =
    let n = M.rows bm and cols = M.cols bm and ld = M.ld bm in
    let data = M.data bm in
    for a = 0 to n - 1 do
      A.read_into data ~pos:(a * ld) scratch ~n:cols;
      let yb = a * ystride in
      (* 4-way unroll over the rank dimension: one scratch load feeds four
         accumulators, the BLAS3 register reuse a rank-1 kernel can't
         have.  Each accumulator is still a single in-order chain over
         [b], so results are bit-identical to the rolled loop. *)
      let i = ref 0 in
      while !i + 4 <= k do
        let v0 = Array.unsafe_get vs !i
        and v1 = Array.unsafe_get vs (!i + 1)
        and v2 = Array.unsafe_get vs (!i + 2)
        and v3 = Array.unsafe_get vs (!i + 3) in
        let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. and a3 = ref 0. in
        for b = 0 to cols - 1 do
          let s = Array.unsafe_get scratch b in
          a0 := !a0 +. (s *. Array.unsafe_get v0 b);
          a1 := !a1 +. (s *. Array.unsafe_get v1 b);
          a2 := !a2 +. (s *. Array.unsafe_get v2 b);
          a3 := !a3 +. (s *. Array.unsafe_get v3 b)
        done;
        Array.unsafe_set y (yb + !i) !a0;
        Array.unsafe_set y (yb + !i + 1) !a1;
        Array.unsafe_set y (yb + !i + 2) !a2;
        Array.unsafe_set y (yb + !i + 3) !a3;
        i := !i + 4
      done;
      if !i + 2 <= k then begin
        let v0 = Array.unsafe_get vs !i and v1 = Array.unsafe_get vs (!i + 1) in
        let a0 = ref 0. and a1 = ref 0. in
        for b = 0 to cols - 1 do
          let s = Array.unsafe_get scratch b in
          a0 := !a0 +. (s *. Array.unsafe_get v0 b);
          a1 := !a1 +. (s *. Array.unsafe_get v1 b)
        done;
        Array.unsafe_set y (yb + !i) !a0;
        Array.unsafe_set y (yb + !i + 1) !a1;
        i := !i + 2
      end;
      while !i < k do
        let v = Array.unsafe_get vs !i in
        let acc = ref 0. in
        for b = 0 to cols - 1 do
          acc := !acc +. (Array.unsafe_get scratch b *. Array.unsafe_get v b)
        done;
        Array.unsafe_set y (yb + !i) !acc;
        i := !i + 1
      done
    done

  (* B := B − Y T : the rank-k flush apply.

     Tiled over columns so the k rows of T being broadcast stay L1-resident
     even when k·n outgrows the cache, and row-blocked within a tile: the
     row segment of B is staged once, receives all k rank-1 corrections in
     scratch (double accumulation), and is written back with one narrowing
     store per element.  Per-element accumulation order over i = 0..k−1 is
     identical to the unblocked reference, so the f64 result is
     bit-identical; at f32 the blocked path rounds once per element per
     flush instead of once per rank, which only tightens the error. *)
  let rank_update ?(tile = 512) (bm : M.t) ~(y : float array) ~ystride
      ~(tm : float array array) ~k ~(scratch : float array) =
    let n = M.rows bm and cols = M.cols bm and ld = M.ld bm in
    let data = M.data bm in
    let b0 = ref 0 in
    while !b0 < cols do
      let len = min tile (cols - !b0) in
      for a = 0 to n - 1 do
        let pos = (a * ld) + !b0 in
        A.read_into data ~pos scratch ~n:len;
        let yb = a * ystride in
        (* 4-way unroll over the rank dimension: each staged element takes
           four corrections per load/store round trip.  OCaml's [-.] is
           left-associative, so the per-element chain
           (((s − c₀t₀) − c₁t₁) − c₂t₂) − c₃t₃ is exactly the sequential
           rank-at-a-time order — bit-identical at f64 to the unblocked
           reference. *)
        let i = ref 0 in
        while !i + 4 <= k do
          let c0 = Array.unsafe_get y (yb + !i)
          and c1 = Array.unsafe_get y (yb + !i + 1)
          and c2 = Array.unsafe_get y (yb + !i + 2)
          and c3 = Array.unsafe_get y (yb + !i + 3) in
          let t0 = Array.unsafe_get tm !i
          and t1 = Array.unsafe_get tm (!i + 1)
          and t2 = Array.unsafe_get tm (!i + 2)
          and t3 = Array.unsafe_get tm (!i + 3) in
          for b = 0 to len - 1 do
            let o = !b0 + b in
            Array.unsafe_set scratch b
              (Array.unsafe_get scratch b
              -. (c0 *. Array.unsafe_get t0 o)
              -. (c1 *. Array.unsafe_get t1 o)
              -. (c2 *. Array.unsafe_get t2 o)
              -. (c3 *. Array.unsafe_get t3 o))
          done;
          i := !i + 4
        done;
        if !i + 2 <= k then begin
          let c0 = Array.unsafe_get y (yb + !i)
          and c1 = Array.unsafe_get y (yb + !i + 1) in
          let t0 = Array.unsafe_get tm !i
          and t1 = Array.unsafe_get tm (!i + 1) in
          for b = 0 to len - 1 do
            let o = !b0 + b in
            Array.unsafe_set scratch b
              (Array.unsafe_get scratch b
              -. (c0 *. Array.unsafe_get t0 o)
              -. (c1 *. Array.unsafe_get t1 o))
          done;
          i := !i + 2
        end;
        while !i < k do
          let c = Array.unsafe_get y (yb + !i) in
          if c <> 0. then begin
            let t = Array.unsafe_get tm !i in
            for b = 0 to len - 1 do
              Array.unsafe_set scratch b
                (Array.unsafe_get scratch b
                -. (c *. Array.unsafe_get t (!b0 + b)))
            done
          end;
          i := !i + 1
        done;
        A.write_from scratch data ~pos ~n:len
      done;
      b0 := !b0 + len
    done
end
