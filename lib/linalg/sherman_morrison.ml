open Oqmc_containers

(* Rank-1 Slater-determinant update (DetUpdate).

   The engine stores B = M⁻ᵀ, the transposed inverse of the Slater matrix
   M(i,j) = φⱼ(rᵢ).  Moving electron k replaces row k of M by the orbital
   vector v, so by the matrix-determinant lemma the acceptance ratio is the
   contiguous row dot  ρ = B[k]·v,  and on acceptance B is refreshed with a
   Sherman–Morrison rank-1 update:

     y  = B v − e_k            (gemv)
     B ← B − (1/ρ) y ⊗ B[k]    (ger)

   which is the BLAS2 O(N²) DetUpdate kernel of the paper.  The workspace
   is plain [float array] scratch: rows of B cross the precision functor
   once per row through the bulk primitives and every inner loop runs
   monomorphically (see Precision.REAL). *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module B = Blas.Make (R)

  type workspace = { y : float array; rk : float array; xv : float array }

  let make_workspace n =
    { y = Array.make n 0.; rk = Array.make n 0.; xv = Array.make n 0. }

  let ratio (binv : M.t) k (v : A.t) = B.row_dot binv k v

  let update_row (binv : M.t) k (v : A.t) ~ratio ~(ws : workspace) =
    let n = M.rows binv in
    if abs_float ratio < 1e-300 then
      invalid_arg "Sherman_morrison.update_row: zero ratio";
    let data = M.data binv and ld = M.ld binv in
    A.read_into v ~pos:0 ws.xv ~n;
    (* y := B v − e_k, one staged row dot per element. *)
    for i = 0 to n - 1 do
      A.dot_arr_into data ~pos:(i * ld) ws.xv ~n ws.y i
    done;
    ws.y.(k) <- ws.y.(k) -. 1.;
    (* Save the pre-update row k, then apply the rank-1 correction with
       the per-row coefficient read from scratch (no boxed crossing). *)
    A.read_into data ~pos:(k * ld) ws.rk ~n;
    let c = -1. /. ratio in
    for i = 0 to n - 1 do
      ws.y.(i) <- c *. ws.y.(i)
    done;
    for i = 0 to n - 1 do
      if Array.unsafe_get ws.y i <> 0. then
        A.axpy_from ws.y ~ci:i ws.rk data ~pos:(i * ld) ~n
    done
end
