open Oqmc_containers

(** Hand-rolled BLAS-1/2/3 kernels at a fixed storage precision with
    double-precision accumulation — the substrate of the determinant update
    (Sherman–Morrison, BLAS2) and the delayed-update flush (BLAS3). *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)

  val dot : A.t -> A.t -> int -> float
  val scal : float -> A.t -> int -> unit
  val axpy : float -> A.t -> A.t -> int -> unit
  (** [axpy alpha x y n] : [y := y + alpha x] over the first [n] entries. *)

  val copy : A.t -> A.t -> int -> unit
  val asum : A.t -> int -> float
  val nrm2 : A.t -> int -> float

  val gemv : M.t -> A.t -> A.t -> unit
  (** [gemv a x y] : [y := A x]. *)

  val gemv_t : M.t -> A.t -> A.t -> unit
  (** [gemv_t a x y] : [y := Aᵀ x]. *)

  val ger : float -> A.t -> A.t -> M.t -> unit
  (** [ger alpha x y a] : [A := A + alpha x yᵀ]. *)

  val gemm : ?alpha:float -> ?beta:float -> M.t -> M.t -> M.t -> unit
  (** [gemm a b c] : [C := alpha A B + beta C].
      @raise Invalid_argument on shape mismatch. *)

  val row_dot : M.t -> int -> A.t -> float
  (** Dot of matrix row [i] with a vector — the determinant-ratio kernel. *)

  val mul_vt :
    M.t ->
    vs:float array array ->
    k:int ->
    y:float array ->
    ystride:int ->
    scratch:float array ->
    unit
  (** [mul_vt b ~vs ~k ~y ~ystride ~scratch] :
      [y.(a·ystride + i) <- B[a]·vs.(i)] for [i < k] — the blocked
      Y := B·Vᵀ panel of the delayed-update flush.  Row-blocked so B
      streams through memory once per flush; each output element is a
      single in-order summation chain (bit-identical to the unblocked
      reference).  [scratch] must hold at least [cols b] elements. *)

  val rank_update :
    ?tile:int ->
    M.t ->
    y:float array ->
    ystride:int ->
    tm:float array array ->
    k:int ->
    scratch:float array ->
    unit
  (** [rank_update b ~y ~ystride ~tm ~k ~scratch] :
      [B := B − Y·T] with Y as laid out by {!mul_vt} and T given as [k]
      plain rows — the BLAS-3 rank-k apply.  Column-tiled ([tile],
      default 512) so the T panel stays L1-resident at large n, row
      segments staged once and written back once; per-element
      accumulation order matches the unblocked reference, so the f64
      result is bit-identical.  [scratch] must hold at least
      [min tile (cols b)] elements. *)
end
