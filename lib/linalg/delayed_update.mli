open Oqmc_containers

(** Delayed determinant updates via the Woodbury identity — the paper's
    future-work DetUpdate scheme.  Acceptances are queued and applied to
    the stored inverse in blocks of [delay], trading the per-move O(N²)
    Sherman–Morrison update for O(kN) ratios plus an O(kN²) BLAS3-style
    flush. *)

module Make (R : Precision.REAL) : sig
  module A : module type of Aligned.Make (R)
  module M : module type of Matrix.Make (R)

  type t

  val create : ?delay:int -> ?blocked:bool -> M.t -> t
  (** Wrap an inverse-transpose matrix [B = M⁻ᵀ].  The matrix is owned by
      the wrapper: it must only be mutated through {!accept}/{!flush}.
      [delay] (default 16, clamped to [n]) is the queue capacity.
      [blocked] (default [true]) applies the flush through the blocked
      GEMM-shaped {!Blas.rank_update}; [~blocked:false] keeps the
      unblocked per-rank reference apply, bit-identical at f64 — it
      exists for validation, not for speed.
      @raise Invalid_argument if the matrix is not square or [delay < 1]. *)

  val binv : t -> M.t
  (** The stored inverse.  Only current after {!flush}. *)

  val pending : t -> int
  (** Number of queued (unapplied) acceptances. *)

  val delay : t -> int

  val ratio : t -> int -> A.t -> float
  (** [ratio t r v] — determinant ratio for replacing row [r] with orbital
      values [v], correct with respect to all queued acceptances. *)

  val accept : t -> int -> A.t -> unit
  (** Queue an accepted replacement; flushes automatically when the queue
      is full or when [r] repeats a queued row. *)

  val flush : t -> unit
  (** Apply all queued acceptances to {!binv}. *)
end
