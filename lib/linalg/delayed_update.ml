open Oqmc_containers

(* Delayed determinant updates (Woodbury identity), the paper's proposed
   future-work DetUpdate scheme (Sec. 8.4, McDaniel et al. 2016).

   Instead of applying an O(N²) Sherman–Morrison update on every accepted
   move, accepted rows are queued; ratios against the implicit, partially
   updated inverse cost O(kN) via a k×k Schur system, and every [delay]
   acceptances the queue is flushed into the stored inverse with BLAS3
   O(kN²) work.  With distinct replaced rows (guaranteed by the ordered
   PbyP sweep; enforced here by flushing on a repeat) the correction reads

     ρ(r, v) = B₀[r]·v − p S⁻¹ q
     p_j = B₀[r_j]·v        q_i = (B₀ v_i)[r] − δ_{r_i r}
     S(i,j) = B₀[r_j]·v_i

   where B₀ = M⁻ᵀ is the last flushed inverse, r_i the queued rows and v_i
   the queued orbital vectors.  S⁻¹ is maintained incrementally by bordered
   (Schur-complement) extension, O(k²) per acceptance.

   Queue state (v_i, captured B₀ rows) lives in plain [float array]s:
   storage rows cross the precision functor once per row through the bulk
   primitives, and every O(kN)/O(kN²) loop runs monomorphically on plain
   scratch — this plus the blocked flush kernels in {!Blas} is what makes
   k > 1 *cheaper* per move than rank-1, instead of paying a boxed
   indirect call per element.  The flush applies through the blocked
   GEMM-shaped [Blas.mul_vt] / [Blas.rank_update] kernels by default; the
   unblocked per-rank reference apply is kept behind [~blocked:false] and
   is bit-identical at f64. *)

module Make (R : Precision.REAL) = struct
  module A = Aligned.Make (R)
  module M = Matrix.Make (R)
  module B = Blas.Make (R)

  let dotf (x : float array) (y : float array) n =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. (Array.unsafe_get x i *. Array.unsafe_get y i)
    done;
    !acc

  type t = {
    binv : M.t; (* B₀ = M⁻ᵀ, updated only at flush *)
    n : int;
    delay : int;
    blocked : bool;
    vs : float array array; (* queued orbital vectors, row i = v_i *)
    brows : float array array; (* row i = B₀[r_i] captured at acceptance *)
    rows : int array; (* queued replaced-row indices *)
    sinv : float array array; (* inverse of the k×k Schur matrix S *)
    mutable k : int;
    (* scratch *)
    p : float array;
    q : float array;
    eb : float array; (* bordered-extension column/row/projection pads *)
    ec : float array;
    esb : float array;
    ecs : float array;
    y : float array; (* n × delay flush panel, row-major *)
    tm : float array array; (* delay rows of n: T = S⁻ᵀ W *)
    rscr : float array; (* staged B₀ row / flush row I/O *)
    vscr : float array; (* staged proposal row *)
  }

  let create ?(delay = 16) ?(blocked = true) (binv : M.t) =
    let n = M.rows binv in
    if M.cols binv <> n then invalid_arg "Delayed_update.create: not square";
    if delay < 1 then invalid_arg "Delayed_update.create: delay < 1";
    let delay = min delay n in
    {
      binv;
      n;
      delay;
      blocked;
      vs = Array.init delay (fun _ -> Array.make n 0.);
      brows = Array.init delay (fun _ -> Array.make n 0.);
      rows = Array.make delay (-1);
      sinv = Array.make_matrix delay delay 0.;
      k = 0;
      p = Array.make delay 0.;
      q = Array.make delay 0.;
      eb = Array.make delay 0.;
      ec = Array.make delay 0.;
      esb = Array.make delay 0.;
      ecs = Array.make delay 0.;
      y = Array.make (n * delay) 0.;
      tm = Array.init delay (fun _ -> Array.make n 0.);
      rscr = Array.make n 0.;
      vscr = Array.make n 0.;
    }

  let binv t = t.binv
  let pending t = t.k
  let delay t = t.delay

  (* ρ(r,v) against the implicit inverse: two staged rows (B₀[r] and v),
     then O(kN) plain-scratch dots. *)
  let ratio t r (v : A.t) =
    let n = t.n in
    A.read_into (M.data t.binv) ~pos:(r * M.ld t.binv) t.rscr ~n;
    A.read_into v ~pos:0 t.vscr ~n;
    let base = dotf t.rscr t.vscr n in
    if t.k = 0 then base
    else begin
      let k = t.k in
      for j = 0 to k - 1 do
        t.p.(j) <- dotf t.brows.(j) t.vscr n
      done;
      for i = 0 to k - 1 do
        let qi = dotf t.vs.(i) t.rscr n in
        t.q.(i) <- (if t.rows.(i) = r then qi -. 1. else qi)
      done;
      let corr = ref 0. in
      for j = 0 to k - 1 do
        let acc = ref 0. in
        for i = 0 to k - 1 do
          acc := !acc +. (t.sinv.(j).(i) *. t.q.(i))
        done;
        corr := !corr +. (t.p.(j) *. !acc)
      done;
      base -. !corr
    end

  (* Unblocked reference apply: per-rank read-modify-write stores, the
     pre-blocking loop structure kept for the bit-identity check. *)
  let apply_ref t k =
    let n = t.n in
    let data = M.data t.binv and ld = M.ld t.binv in
    for a = 0 to n - 1 do
      let base = a * ld and yb = a * t.delay in
      for i = 0 to k - 1 do
        let y = Array.unsafe_get t.y (yb + i) in
        if y <> 0. then begin
          let ti = t.tm.(i) in
          for b = 0 to n - 1 do
            A.unsafe_set data (base + b)
              (A.unsafe_get data (base + b) -. (y *. Array.unsafe_get ti b))
          done
        end
      done
    done

  (* Flush the queue: B₀ ← B₀ − Y S⁻ᵀ W with Y = B₀Vᵀ − E and W = brows. *)
  let flush t =
    if t.k > 0 then begin
      let k = t.k and n = t.n in
      (* T := S⁻ᵀ W, i.e. T(i,:) = Σ_j S⁻¹(j,i) · brows(j,:). *)
      for i = 0 to k - 1 do
        let ti = t.tm.(i) in
        Array.fill ti 0 n 0.;
        for j = 0 to k - 1 do
          let c = t.sinv.(j).(i) in
          if c <> 0. then begin
            let w = t.brows.(j) in
            for b = 0 to n - 1 do
              Array.unsafe_set ti b
                (Array.unsafe_get ti b +. (c *. Array.unsafe_get w b))
            done
          end
        done
      done;
      (* Y(a,i) = B₀[a]·v_i − δ_{a,r_i} — blocked panel, B₀ streamed once. *)
      B.mul_vt t.binv ~vs:t.vs ~k ~y:t.y ~ystride:t.delay ~scratch:t.rscr;
      for i = 0 to k - 1 do
        let yi = (t.rows.(i) * t.delay) + i in
        t.y.(yi) <- t.y.(yi) -. 1.
      done;
      (* B₀ −= Y T *)
      if t.blocked then
        B.rank_update t.binv ~y:t.y ~ystride:t.delay ~tm:t.tm ~k
          ~scratch:t.rscr
      else apply_ref t k;
      t.k <- 0
    end

  (* Extend S⁻¹ by one bordered row/column via the Schur complement. *)
  let extend_sinv t =
    let k = t.k in
    (* New S entries: column b_i = S(i,k) = brows[k]·v_i,
       row c_j = S(k,j) = brows[j]·v_k, corner d = brows[k]·v_k. *)
    let b = t.eb and c = t.ec in
    for i = 0 to k - 1 do
      b.(i) <- dotf t.brows.(k) t.vs.(i) t.n;
      c.(i) <- dotf t.brows.(i) t.vs.(k) t.n
    done;
    let d = dotf t.brows.(k) t.vs.(k) t.n in
    (* sb = S⁻¹ b, cs = c S⁻¹, schur = d − c S⁻¹ b *)
    let sb = t.esb and cs = t.ecs in
    for i = 0 to k - 1 do
      let acc = ref 0. in
      for j = 0 to k - 1 do
        acc := !acc +. (t.sinv.(i).(j) *. b.(j))
      done;
      sb.(i) <- !acc
    done;
    for j = 0 to k - 1 do
      let acc = ref 0. in
      for i = 0 to k - 1 do
        acc := !acc +. (c.(i) *. t.sinv.(i).(j))
      done;
      cs.(j) <- !acc
    done;
    let schur = ref d in
    for i = 0 to k - 1 do
      schur := !schur -. (c.(i) *. sb.(i))
    done;
    if abs_float !schur < 1e-300 then
      invalid_arg "Delayed_update: singular Schur complement";
    let inv_s = 1. /. !schur in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        t.sinv.(i).(j) <- t.sinv.(i).(j) +. (sb.(i) *. cs.(j) *. inv_s)
      done
    done;
    for i = 0 to k - 1 do
      t.sinv.(i).(k) <- -.sb.(i) *. inv_s;
      t.sinv.(k).(i) <- -.cs.(i) *. inv_s
    done;
    t.sinv.(k).(k) <- inv_s

  let accept t r (v : A.t) =
    (* A repeat of a pending row would break the distinct-rows invariant;
       flush first (the ordered PbyP sweep never triggers this). *)
    let repeat = ref false in
    for i = 0 to t.k - 1 do
      if t.rows.(i) = r then repeat := true
    done;
    if !repeat then flush t;
    let k = t.k in
    t.rows.(k) <- r;
    A.read_into v ~pos:0 t.vs.(k) ~n:t.n;
    A.read_into (M.data t.binv) ~pos:(r * M.ld t.binv) t.brows.(k) ~n:t.n;
    extend_sinv t;
    t.k <- k + 1;
    if t.k = t.delay then flush t
end
