open Oqmc_containers
open Oqmc_hamiltonian
open Oqmc_core

(** Turn a Table 1 spec into a runnable {!System.t}.

    The paper's proprietary DFT orbital tables and pseudopotentials are
    substituted with synthetic equivalents of the right shape
    (deterministic smooth coefficients; Gaussian-shell PP channels) —
    kernel cost depends on dimensions, layout and precision, not on
    coefficient values.  [reduction] scales the problem down uniformly so
    the full machinery runs at laptop scale. *)

type scaled = {
  spec : Spec.t;
  reduction : int;
  n_el : int;
  n_ion : int;
  n_spo : int;
  grid : int * int * int;
  box : float * float * float;
}

val scale : Spec.t -> reduction:int -> scaled
(** @raise Invalid_argument if [reduction < 1]. *)

val ion_positions : float * float * float -> int -> Vec3.t array
(** Near-cubic grid placement of [n] ions inside the box. *)

val nlpp_channels : Spec.species list -> Nlpp.ion_species array
(** Synthetic Gaussian-shell channels; empty for all-electron species. *)

val system :
  ?seed:int ->
  ?with_nlpp:bool ->
  ?with_jastrow:bool ->
  ?precision:[ `F32 | `F64 ] ->
  ?layout:[ `Flat | `Tiled ] ->
  ?tile:int ->
  scaled ->
  System.t
(** [precision] (default [`F32]) selects the storage precision of the
    synthetic B-spline orbital table — coefficient {e values} are
    identical either way ([`F32] rounds them once at store time), so
    f32-vs-f64 comparisons isolate storage/bandwidth effects.

    [layout] (default [`Flat]) selects the orbital-table layout; with
    [`Tiled], [tile] sets the orbital tile size (0 = a default of
    [min 32 n_spo]).  Both layouts are filled through the same
    global-orbital callback, so their coefficients are identical and f64
    evaluations are bit-identical. *)

val make :
  ?seed:int ->
  ?with_nlpp:bool ->
  ?with_jastrow:bool ->
  ?reduction:int ->
  ?precision:[ `F32 | `F64 ] ->
  ?layout:[ `Flat | `Tiled ] ->
  ?tile:int ->
  Spec.t ->
  System.t
(** [scale] + [system]; default reduction 8. *)
