open Oqmc_containers
open Oqmc_particle
open Oqmc_rng
open Oqmc_wavefunction
open Oqmc_hamiltonian
open Oqmc_core

(* Turn a Table 1 spec into a runnable System.

   The paper's DFT-generated orbital tables and pseudopotentials are
   proprietary inputs; per the substitution rule the builder synthesizes
   a B-spline table of the right shape filled with deterministic smooth
   pseudo-random coefficients (kernel cost depends on table dimensions,
   layout and precision — not coefficient values) and Gaussian-shell
   pseudopotential channels.  [reduction] scales the problem down
   uniformly — electron count, ion count, orbital count and grid — so the
   full PbyP machinery runs in laptop-scale benchmarks while Table 1 and
   the memory model use the unscaled numbers. *)

type scaled = {
  spec : Spec.t;
  reduction : int;
  n_el : int;
  n_ion : int;
  n_spo : int;
  grid : int * int * int;
  box : float * float * float;
}

let scale (spec : Spec.t) ~reduction =
  if reduction < 1 then invalid_arg "Builder.scale: reduction < 1";
  let n_el = max 4 (spec.Spec.n / reduction / 2 * 2) in
  let n_ion =
    max (List.length spec.Spec.species) (spec.Spec.n_ion / reduction)
  in
  let n_spo = max (n_el / 2) (spec.Spec.n_spos / reduction) in
  let gscale = Float.cbrt (float_of_int reduction) in
  let gdim d = max 8 (int_of_float (float_of_int d /. gscale)) in
  let nx, ny, nz = spec.Spec.fft_grid in
  let lscale = 1. /. gscale in
  let bx, by, bz = spec.Spec.box in
  {
    spec;
    reduction;
    n_el;
    n_ion;
    n_spo;
    grid = (gdim nx, gdim ny, gdim nz);
    box = (bx *. lscale, by *. lscale, bz *. lscale);
  }

(* Near-cubic grid placement of [n] ions inside the box, species assigned
   round-robin (rock-salt-like alternation for NiO). *)
let ion_positions (bx, by, bz) n =
  let per_dim = int_of_float (Float.ceil (Float.cbrt (float_of_int n))) in
  let positions = ref [] in
  let count = ref 0 in
  for i = 0 to per_dim - 1 do
    for j = 0 to per_dim - 1 do
      for k = 0 to per_dim - 1 do
        if !count < n then begin
          let f d l =
            (float_of_int d +. 0.5) /. float_of_int per_dim *. l
          in
          positions := Vec3.make (f i bx) (f j by) (f k bz) :: !positions;
          incr count
        end
      done
    done
  done;
  Array.of_list (List.rev !positions)

(* The same synthetic orbital table at either storage precision: the
   [precision=] knob selects where the B-spline coefficients live (f32
   halves table bytes and bandwidth, per the paper's mixed-precision
   scheme) while the coefficient values themselves are computed in
   double either way.  The functor instantiations are precision-erased by
   [Spo.t]'s runtime closures, so both produce the same System shape.

   [layout]/[tile] pick the table layout: the tiled (array-of-SoA) table
   is filled through the same global-orbital [fill] callback, so its
   coefficients — and therefore every f64 evaluation — are bit-identical
   to the flat table's. *)
module Spline_builder (R : Precision.REAL) = struct
  module B = Oqmc_spline.Bspline3d.Make (R)
  module T = Oqmc_spline.Bspline3d_tiled.Make (R)
  module SpoB = Spo_bspline.Make (R)

  let coeff_fn ~seed ~grid ~n_spo =
    let nx, ny, nz = grid in
    let rng = Xoshiro.create seed in
    (* Each orbital: a random superposition of a few plane waves evaluated
       on the grid; filling coefficients directly (rather than
       prefiltering) keeps construction O(grid × n_spo). *)
    let n_modes = 4 in
    let modes =
      Array.init n_spo (fun _ ->
          Array.init n_modes (fun _ ->
              ( float_of_int (1 + Xoshiro.int rng 3),
                float_of_int (Xoshiro.int rng 3),
                float_of_int (Xoshiro.int rng 3),
                Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.,
                Xoshiro.uniform_range rng ~lo:0. ~hi:(2. *. Float.pi) )))
    in
    fun ~orb ~i ~j ~k ->
      let x = float_of_int i /. float_of_int nx in
      let y = float_of_int j /. float_of_int ny in
      let z = float_of_int k /. float_of_int nz in
      let acc = ref (if orb = 0 then 1.0 else 0.) in
      Array.iter
        (fun (gx, gy, gz, amp, phase) ->
          acc :=
            !acc
            +. amp
               *. cos
                    ((2. *. Float.pi
                     *. ((gx *. x) +. (gy *. y) +. (gz *. z)))
                    +. phase))
        modes.(orb);
      !acc

  let build ~seed ~grid ~n_spo ~lattice =
    let nx, ny, nz = grid in
    let table = B.create ~nx ~ny ~nz ~n_orb:n_spo in
    B.fill table (coeff_fn ~seed ~grid ~n_spo);
    SpoB.create ~table ~lattice

  let build_tiled ~seed ~grid ~n_spo ~tile ~lattice =
    let nx, ny, nz = grid in
    let tile = if tile <= 0 then min 32 n_spo else min tile n_spo in
    let table = T.create ~nx ~ny ~nz ~n_orb:n_spo ~tile in
    T.fill table (coeff_fn ~seed ~grid ~n_spo);
    SpoB.create_tiled ~table ~lattice
end

module Sp32 = Spline_builder (Precision.F32)
module Sp64 = Spline_builder (Precision.F64)

let synthetic_spo ?(precision = `F32) ?(layout = `Flat) ?(tile = 0) ~seed
    ~grid ~n_spo ~lattice () =
  match (precision, layout) with
  | `F32, `Flat -> Sp32.build ~seed ~grid ~n_spo ~lattice
  | `F64, `Flat -> Sp64.build ~seed ~grid ~n_spo ~lattice
  | `F32, `Tiled -> Sp32.build_tiled ~seed ~grid ~n_spo ~tile ~lattice
  | `F64, `Tiled -> Sp64.build_tiled ~seed ~grid ~n_spo ~tile ~lattice

(* Gaussian-shell pseudopotential channels per species. *)
let nlpp_channels (species : Spec.species list) =
  Array.of_list
    (List.map
       (fun (s : Spec.species) ->
         if not s.Spec.pseudopotential then { Nlpp.channels = [] }
         else begin
           let strength = 0.4 +. (0.04 *. s.Spec.z_eff) in
           let width = 0.9 /. sqrt s.Spec.z_eff in
           let cutoff = 3. *. width in
           let l = if s.Spec.z_eff > 10. then 2 else 1 in
           {
             Nlpp.channels =
               [
                 {
                   Nlpp.l;
                   v = (fun r -> strength *. exp (-.(r /. width) ** 2.));
                   cutoff;
                 };
               ];
           }
         end)
       species)

(* Build the runnable System for a (possibly scaled) workload. *)
let system ?(seed = 20170101) ?(with_nlpp = true) ?(with_jastrow = true)
    ?(precision = `F32) ?(layout = `Flat) ?(tile = 0) (s : scaled) : System.t
    =
  let bx, by, bz = s.box in
  let lattice = Lattice.orthorhombic bx by bz in
  let positions = ion_positions s.box s.n_ion in
  let species = s.spec.Spec.species in
  let nsp = List.length species in
  (* Round-robin species assignment over grid sites alternates species
     along the fastest axis — rock-salt-like for two species. *)
  let groups =
    List.mapi
      (fun si (sp : Spec.species) ->
        let mine =
          List.filteri
            (fun i _ -> i mod nsp = si)
            (Array.to_list positions)
        in
        {
          System.sname = sp.Spec.sp_name;
          charge = sp.Spec.z_eff;
          positions = mine;
        })
      species
  in
  let spo =
    synthetic_spo ~precision ~layout ~tile ~seed ~grid:s.grid ~n_spo:s.n_spo
      ~lattice ()
  in
  let cutoff = Lattice.wigner_seitz_radius lattice in
  let j2 = if with_jastrow then Some (Jastrow_sets.ee_set ~cutoff) else None in
  let j1 =
    if with_jastrow then Some (Jastrow_sets.ion_set ~cutoff species) else None
  in
  let has_pp = List.exists (fun sp -> sp.Spec.pseudopotential) species in
  let nlpp =
    if with_nlpp && has_pp then Some (nlpp_channels species) else None
  in
  System.validate
    {
      System.name =
        Printf.sprintf "%s/r%d" s.spec.Spec.wname s.reduction;
      lattice;
      n_up = s.n_el / 2;
      n_down = s.n_el / 2;
      ions = groups;
      spo;
      j1;
      j2;
      ham = { System.coulomb = true; ewald = false; harmonic = None; nlpp };
    }

let make ?(seed = 20170101) ?(with_nlpp = true) ?(with_jastrow = true)
    ?(reduction = 8) ?(precision = `F32) ?(layout = `Flat) ?(tile = 0)
    (spec : Spec.t) : System.t =
  system ~seed ~with_nlpp ~with_jastrow ~precision ~layout ~tile
    (scale spec ~reduction)
