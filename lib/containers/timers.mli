(** Per-kernel wall-clock accumulators — the instrumentation behind the
    hot-spot profiles.  One timer set per domain; merge after parallel
    regions. *)

type t

val create : unit -> t

val null : t
(** Disabled set: {!time} runs the thunk with no measurement. *)

val now : unit -> float

val add : t -> string -> float -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Accumulate the thunk's wall time under [key]; when structured
    tracing ([Oqmc_obs.Trace]) is enabled, also record the call as a
    span under the same key. *)

val total : t -> string -> float
val count : t -> string -> int
val keys : t -> string list
val merge : into:t -> t -> unit
val reset : t -> unit
val grand_total : t -> float

val profile : t -> (string * float) list
(** Normalized (key, fraction-of-total) pairs, hottest first (ties by
    key) — stable across runs, so profiles are diffable. *)

val pp : Format.formatter -> t -> unit
(** Rows ordered by descending total, like {!profile}. *)

val snapshot : t -> (string * float * int) list
(** [(key, total, count)] for every key, sorted by key — a
    point-in-time copy for monotonicity assertions across parallel
    regions. *)
