(** Per-kernel wall-clock accumulators — the instrumentation behind the
    hot-spot profiles.  One timer set per domain; merge after parallel
    regions. *)

type t

val create : unit -> t

val null : t
(** Disabled set: {!time} runs the thunk with no measurement. *)

val now : unit -> float

val add : t -> string -> float -> unit
val time : t -> string -> (unit -> 'a) -> 'a

val total : t -> string -> float
val count : t -> string -> int
val keys : t -> string list
val merge : into:t -> t -> unit
val reset : t -> unit
val grand_total : t -> float

val profile : t -> (string * float) list
(** Normalized (key, fraction-of-total) pairs. *)

val pp : Format.formatter -> t -> unit

val snapshot : t -> (string * float * int) list
(** [(key, total, count)] for every key, sorted by key — a
    point-in-time copy for monotonicity assertions across parallel
    regions. *)
