(** Contiguous, unboxed, padded arrays of reals backing every
    storage-heavy kernel.  The functor fixes the storage precision; values
    are plain C-layout bigarrays so kernels written against a concrete
    precision get monomorphic (fast) element access. *)

val round_up : int -> int -> int
(** [round_up n m] is the smallest multiple of [m] that is [>= n] ([m] for
    [n <= 0]).  @raise Invalid_argument if [m <= 0]. *)

module Make (R : Precision.REAL) : sig
  type t = (float, R.elt, Bigarray.c_layout) Bigarray.Array1.t

  val create : int -> t
  (** Zero-initialized array of [n] elements. *)

  val padded_len : int -> int
  (** Logical length rounded up to a whole number of SIMD vectors at this
      precision, matching the paper's cache-aligned row stride [Nᵖ]. *)

  val create_padded : int -> t
  val length : t -> int

  val get : t -> int -> float
  val set : t -> int -> float -> unit
  (** [set] rounds through the storage precision. *)

  val unsafe_get : t -> int -> float
  val unsafe_set : t -> int -> float -> unit
  (** Unchecked access for inner loops.  [unsafe_set] relies on the bigarray
      write itself to narrow to storage precision. *)

  val read_into : t -> pos:int -> float array -> n:int -> unit
  (** [read_into a ~pos dst ~n]: [dst.(i) <- a.(pos + i)], unchecked.
      Bulk row staging for the crowd-batched kernels: one call per row
      crosses the precision functor instead of one boxed float per
      element, so inner loops over the [float array] mirror allocate
      nothing. *)

  val write_from : float array -> t -> pos:int -> n:int -> unit
  (** [write_from src a ~pos ~n]: [a.(pos + i) <- src.(i)], unchecked,
      narrowing through the storage width exactly like a per-element
      store. *)

  val copy_within : src:t -> spos:int -> dst:t -> dpos:int -> n:int -> unit
  (** Contiguous unchecked element copy without slice proxies; both sides
      stay in the storage format (no widening round-trip). *)

  val get_into : t -> int -> float array -> int -> unit
  (** [get_into a i dst j]: [dst.(j) <- a.(i)] — a one-element read landing
      in unboxed scratch rather than a boxed return value. *)

  val dot_into :
    a:t -> apos:int -> b:t -> bpos:int -> n:int -> float array -> int -> unit
  (** [dot_into ~a ~apos ~b ~bpos ~n dst j]:
      [dst.(j) <- Σᵢ a.(apos+i)·b.(bpos+i)] with double accumulation —
      one functor crossing per row-dot, result in unboxed scratch. *)

  val dot_arr_into :
    t -> pos:int -> float array -> n:int -> float array -> int -> unit
  (** [dot_arr_into a ~pos x ~n dst j]: [dst.(j) <- Σᵢ a.(pos+i)·x.(i)] —
      storage row dotted against plain scratch. *)

  val axpy_from :
    float array -> ci:int -> float array -> t -> pos:int -> n:int -> unit
  (** [axpy_from c ~ci src a ~pos ~n]:
      [a.(pos+i) <- a.(pos+i) + c.(ci)·src.(i)] — rank-1 row update whose
      coefficient is read from scratch so no boxed float crosses the
      functor boundary. *)

  val fill : t -> float -> unit
  val blit : src:t -> dst:t -> unit
  val sub : t -> pos:int -> len:int -> t
  (** Shared-storage slice. *)

  val copy : t -> t
  val of_array : float array -> t
  val to_array : t -> float array
  val iteri : (int -> float -> unit) -> t -> unit
  val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

  val bytes : t -> int
  (** Allocated storage in bytes; feeds the memory-footprint accounting. *)
end
