(* Cache-aligned, padded flat arrays of reals.

   QMCPACK's SoA containers use cache-aligned allocators and pad each row to
   a multiple of the SIMD width so compilers can emit aligned vector loads.
   Bigarrays give us contiguous, unboxed storage outside the OCaml heap; we
   reproduce the padding discipline so that row strides match what the
   performance model counts. *)

let round_up n multiple =
  if multiple <= 0 then invalid_arg "Aligned.round_up: multiple <= 0";
  if n <= 0 then multiple else (n + multiple - 1) / multiple * multiple

module Make (R : Precision.REAL) = struct
  type t = (float, R.elt, Bigarray.c_layout) Bigarray.Array1.t

  let create n : t =
    let a = Bigarray.Array1.create R.kind Bigarray.c_layout n in
    Bigarray.Array1.fill a 0.;
    a

  (* Length padded so a row of [n] logical elements occupies a whole number
     of SIMD vectors at this precision. *)
  let padded_len n = round_up n R.simd_lanes

  let create_padded n = create (padded_len n)
  let length (a : t) = Bigarray.Array1.dim a
  let get (a : t) i = Bigarray.Array1.get a i
  let set (a : t) i v = Bigarray.Array1.set a i (R.round v)

  (* Kind-specialized fast path; see Precision.REAL.get. *)
  let unsafe_get (a : t) i = R.get a i
  let unsafe_set (a : t) i v = R.set a i v

  (* Bulk row staging (see Precision.REAL.read_row): without flambda the
     per-element accessors above box a float on every call through the
     functor boundary, so batched kernels mirror whole rows into plain
     [float array] scratch — one allocation-free call per row — and run
     their inner loops monomorphically on the scratch. *)
  let read_into (a : t) ~pos dst ~n = R.read_row a ~pos dst ~n
  let write_from src (a : t) ~pos ~n = R.write_row src a ~pos ~n

  let copy_within ~(src : t) ~spos ~(dst : t) ~dpos ~n =
    R.copy_row ~src ~spos ~dst ~dpos ~n

  let get_into (a : t) i dst j = R.get_into a i dst j

  let dot_into ~(a : t) ~apos ~(b : t) ~bpos ~n dst j =
    R.dot_rows a ~apos b ~bpos ~n dst j

  let dot_arr_into (a : t) ~pos x ~n dst j = R.dot_row a ~pos x ~n dst j
  let axpy_from c ~ci src (a : t) ~pos ~n = R.axpy_row c ~ci src a ~pos ~n

  let fill (a : t) v = Bigarray.Array1.fill a (R.round v)

  let blit ~(src : t) ~(dst : t) = Bigarray.Array1.blit src dst

  let sub (a : t) ~pos ~len : t = Bigarray.Array1.sub a pos len

  let copy (a : t) : t =
    let b = create (length a) in
    Bigarray.Array1.blit a b;
    b

  let of_array xs : t =
    let n = Array.length xs in
    let a = create n in
    for i = 0 to n - 1 do
      set a i xs.(i)
    done;
    a

  let to_array (a : t) = Array.init (length a) (fun i -> get a i)

  let iteri f (a : t) =
    for i = 0 to length a - 1 do
      f i (unsafe_get a i)
    done

  let fold f acc (a : t) =
    let r = ref acc in
    for i = 0 to length a - 1 do
      r := f !r (unsafe_get a i)
    done;
    !r

  let bytes (a : t) = length a * R.bytes
end
