(* Per-kernel wall-clock accumulators: the instrumentation standing in for
   VTune in the hot-spot profiles (Figs. 2 and 7).  Keys follow the
   paper's kernel names (DistTable, J1, J2, Bspline-v, Bspline-vgh,
   SPO-vgl, DetUpdate, Other).  A timer set is owned by one domain; sets
   are merged after a parallel region.

   Timers are now a shim over the observability layer: when structured
   tracing is enabled ([Oqmc_obs.Trace]), every [time] call also records
   a span under the same key in the calling domain's trace ring, so the
   flat per-kernel profile and the timeline view come from the SAME
   instrumentation points.  With tracing disabled the added cost is one
   atomic load. *)

type entry = { mutable sum : float; mutable count : int }

type t = { table : (string, entry) Hashtbl.t; enabled : bool }

let create () = { table = Hashtbl.create 16; enabled = true }

let null = { table = Hashtbl.create 1; enabled = false }

let now = Unix.gettimeofday

let entry t key =
  match Hashtbl.find_opt t.table key with
  | Some e -> e
  | None ->
      let e = { sum = 0.; count = 0 } in
      Hashtbl.add t.table key e;
      e

let add t key dt =
  if t.enabled then begin
    let e = entry t key in
    e.sum <- e.sum +. dt;
    e.count <- e.count + 1
  end

let timed t key f =
  if t.enabled then begin
    let t0 = now () in
    let r = f () in
    add t key (now () -. t0);
    r
  end
  else f ()

let time t key f =
  if Oqmc_obs.Trace.enabled () then
    Oqmc_obs.Trace.with_span key (fun () -> timed t key f)
  else timed t key f

let total t key =
  match Hashtbl.find_opt t.table key with Some e -> e.sum | None -> 0.

let count t key =
  match Hashtbl.find_opt t.table key with Some e -> e.count | None -> 0

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.table []
  |> List.sort compare

let merge ~into src =
  Hashtbl.iter
    (fun k (e : entry) ->
      let d = entry into k in
      d.sum <- d.sum +. e.sum;
      d.count <- d.count + e.count)
    src.table

let reset t = Hashtbl.reset t.table

let grand_total t = Hashtbl.fold (fun _ e acc -> acc +. e.sum) t.table 0.

(* Keys ordered hottest-first (descending total, then key) so profiles
   are stable across runs and diffable — hash-table iteration order must
   never leak into output. *)
let keys_by_total t =
  keys t
  |> List.sort (fun a b ->
         match compare (total t b) (total t a) with
         | 0 -> compare a b
         | c -> c)

(* Normalized profile: fraction of the summed kernel time per key,
   hottest first. *)
let profile t =
  let tot = grand_total t in
  if tot <= 0. then []
  else
    keys_by_total t
    |> List.map (fun k -> (k, total t k /. tot))

let pp ppf t =
  let tot = grand_total t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun k ->
      let c = count t k in
      (* Fixed column precisions (%.4f s, %.1f ns/call, %.1f %%) so
         reports diff cleanly across runs. *)
      Format.fprintf ppf "%-12s %10.4fs %9d calls %10.1f ns/call %5.1f%%@,"
        k (total t k) c
        (if c > 0 then 1e9 *. total t k /. float_of_int c else 0.)
        (if tot > 0. then 100. *. total t k /. tot else 0.))
    (keys_by_total t);
  Format.fprintf ppf "@]"

(* Point-in-time copy of every accumulator, for monotonicity checks
   across parallel regions (totals and counts must never decrease on a
   live timer set). *)
let snapshot t =
  keys t |> List.map (fun k -> (k, total t k, count t k))
