(* Precision selection for kernel storage.

   The paper's mixed-precision scheme stores bulk per-walker state (distance
   tables, Jastrow values, inverse matrices, B-spline coefficients) in single
   precision while keeping per-walker and ensemble accumulators in double
   precision.  We model that by functorizing storage-heavy kernels over a
   [REAL] module: [F64] for the reference build, [F32] for the
   mixed-precision builds.  Computations always happen in OCaml [float]
   (IEEE double); [F32] rounds through 32-bit storage on every write, which
   reproduces both the memory-footprint/bandwidth savings (bigarray storage
   is genuinely 4 bytes wide) and the rounding behaviour of the paper. *)

type f64_elt = Bigarray.float64_elt
type f32_elt = Bigarray.float32_elt

module type REAL = sig
  (** Element kind of the backing bigarrays. *)
  type elt

  val kind : (float, elt) Bigarray.kind

  val name : string
  (** ["f64"] or ["f32"]; used in reports and benchmark labels. *)

  val bytes : int
  (** Storage width in bytes (8 or 4). *)

  val simd_lanes : int
  (** Number of elements per 512-bit SIMD vector at this width; used for
      padding so that each row of a SoA container starts on a vector
      boundary, as the paper's cache-aligned allocators guarantee. *)

  val eps : float
  (** Machine epsilon of the storage format. *)

  val round : float -> float
  (** Round a double to this storage precision ([Fun.id] for f64). *)

  val get :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t -> int -> float

  val set :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t -> int -> float -> unit
  (** Unchecked element access, defined where the bigarray kind is
      statically known so the compiler emits direct loads/stores.  Going
      through [Bigarray.Array1.unsafe_get] inside a functor body (where
      the kind is abstract) falls back to the generic C path and is an
      order of magnitude slower — these accessors are the difference
      between abstraction and abstraction penalty in the hot loops.

      Caveat: without flambda, even these accessors box their float when
      CALLED through the functor parameter (a non-inlined call returns /
      receives floats boxed).  The bulk row primitives below move whole
      loops to where the kind is concrete, so batched kernels can stage
      rows in plain [float array] scratch — whose element access is
      monomorphic and allocation-free even inside a functor body — and
      cross the functor boundary once per row instead of once per
      element.  No [float] crosses these calls, so they allocate
      nothing. *)

  val read_row :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    pos:int -> float array -> n:int -> unit
  (** [read_row a ~pos dst ~n]: [dst.(i) <- a.(pos + i)] for [i < n];
      unchecked. *)

  val write_row :
    float array ->
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    pos:int -> n:int -> unit
  (** [write_row src a ~pos ~n]: [a.(pos + i) <- src.(i)] for [i < n];
      unchecked, rounding through the storage width exactly like a
      per-element store. *)

  val copy_row :
    src:(float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    spos:int ->
    dst:(float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    dpos:int -> n:int -> unit
  (** [copy_row ~src ~spos ~dst ~dpos ~n]: contiguous element copy with
      no slice proxies (and no widening round-trip: both sides share the
      storage format). *)

  val get_into :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    int -> float array -> int -> unit
  (** [get_into a i dst j]: [dst.(j) <- a.(i)] — a single-element read
      that lands in unboxed scratch instead of a boxed return value. *)

  val dot_rows :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    apos:int ->
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    bpos:int -> n:int -> float array -> int -> unit
  (** [dot_rows a ~apos b ~bpos ~n dst j]:
      [dst.(j) <- Σᵢ a.(apos+i)·b.(bpos+i)] with double accumulation —
      the determinant-ratio row dot, one functor crossing per row and no
      boxed intermediate (the result lands in unboxed scratch). *)

  val dot_row :
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    pos:int -> float array -> n:int -> float array -> int -> unit
  (** [dot_row a ~pos x ~n dst j]: [dst.(j) <- Σᵢ a.(pos+i)·x.(i)] —
      storage row against plain-[float array] scratch, double
      accumulation, result into unboxed scratch. *)

  val axpy_row :
    float array ->
    ci:int ->
    float array ->
    (float, elt, Bigarray.c_layout) Bigarray.Array1.t ->
    pos:int -> n:int -> unit
  (** [axpy_row c ~ci src a ~pos ~n]:
      [a.(pos+i) <- a.(pos+i) + c.(ci)·src.(i)] — a rank-1 row update
      whose coefficient is read from scratch at index [ci] so that no
      boxed float crosses the functor boundary; each store narrows
      through the storage width. *)
end

module F64 : REAL with type elt = f64_elt = struct
  type elt = f64_elt

  let kind = Bigarray.float64
  let name = "f64"
  let bytes = 8
  let simd_lanes = 8
  let eps = epsilon_float
  let round x = x

  let get (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i =
    Bigarray.Array1.unsafe_get a i

  let set (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i v =
    Bigarray.Array1.unsafe_set a i v

  let read_row (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos
      (dst : float array) ~n =
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Bigarray.Array1.unsafe_get a (pos + i))
    done

  let write_row (src : float array)
      (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos ~n =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set a (pos + i) (Array.unsafe_get src i)
    done

  let copy_row ~(src : (float, elt, Bigarray.c_layout) Bigarray.Array1.t)
      ~spos ~(dst : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~dpos
      ~n =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst (dpos + i)
        (Bigarray.Array1.unsafe_get src (spos + i))
    done

  let get_into (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i
      (dst : float array) j =
    Array.unsafe_set dst j (Bigarray.Array1.unsafe_get a i)

  let dot_rows (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~apos
      (b : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~bpos ~n
      (dst : float array) j =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get a (apos + i)
           *. Bigarray.Array1.unsafe_get b (bpos + i)
    done;
    Array.unsafe_set dst j !acc

  let dot_row (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos
      (x : float array) ~n (dst : float array) j =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get a (pos + i) *. Array.unsafe_get x i
    done;
    Array.unsafe_set dst j !acc

  let axpy_row (c : float array) ~ci (src : float array)
      (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos ~n =
    let f = Array.unsafe_get c ci in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set a (pos + i)
        (Bigarray.Array1.unsafe_get a (pos + i) +. (f *. Array.unsafe_get src i))
    done
end

module F32 : REAL with type elt = f32_elt = struct
  type elt = f32_elt

  let kind = Bigarray.float32
  let name = "f32"
  let bytes = 4
  let simd_lanes = 16
  let eps = 1.1920928955078125e-07
  let round x = Int32.float_of_bits (Int32.bits_of_float x)

  let get (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i =
    Bigarray.Array1.unsafe_get a i

  let set (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i v =
    Bigarray.Array1.unsafe_set a i v

  let read_row (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos
      (dst : float array) ~n =
    for i = 0 to n - 1 do
      Array.unsafe_set dst i (Bigarray.Array1.unsafe_get a (pos + i))
    done

  let write_row (src : float array)
      (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos ~n =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set a (pos + i) (Array.unsafe_get src i)
    done

  let copy_row ~(src : (float, elt, Bigarray.c_layout) Bigarray.Array1.t)
      ~spos ~(dst : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~dpos
      ~n =
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set dst (dpos + i)
        (Bigarray.Array1.unsafe_get src (spos + i))
    done

  let get_into (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) i
      (dst : float array) j =
    Array.unsafe_set dst j (Bigarray.Array1.unsafe_get a i)

  let dot_rows (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~apos
      (b : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~bpos ~n
      (dst : float array) j =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get a (apos + i)
           *. Bigarray.Array1.unsafe_get b (bpos + i)
    done;
    Array.unsafe_set dst j !acc

  let dot_row (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos
      (x : float array) ~n (dst : float array) j =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get a (pos + i) *. Array.unsafe_get x i
    done;
    Array.unsafe_set dst j !acc

  let axpy_row (c : float array) ~ci (src : float array)
      (a : (float, elt, Bigarray.c_layout) Bigarray.Array1.t) ~pos ~n =
    let f = Array.unsafe_get c ci in
    for i = 0 to n - 1 do
      Bigarray.Array1.unsafe_set a (pos + i)
        (Bigarray.Array1.unsafe_get a (pos + i) +. (f *. Array.unsafe_get src i))
    done
end
