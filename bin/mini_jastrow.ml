open Oqmc_containers
open Oqmc_particle
open Oqmc_rng
open Oqmc_workloads

(* Jastrow miniapp (Sec. 7.1): the J2 ratio/accept cycle per move in the
   Ref (5N² stored matrices) and Current (compute-on-the-fly, 5N state)
   implementations, at both storage precisions. *)

module type J_BENCH = sig
  val name : string
  val bench : n:int -> moves:int -> seed:int -> float
end

module Bench (R : Precision.REAL) = struct
  module Ps = Particle_set.Make (R)
  module AAref = Dt_aa_ref.Make (R)
  module AAsoa = Dt_aa_soa.Make (R) (R)
  module J2 = Oqmc_wavefunction.Jastrow_two.Make (R) (R)

  let setup n seed =
    let lattice = Lattice.cubic 10. in
    let ps =
      Ps.create ~lattice
        [
          { Particle_set.name = "u"; charge = -1.; count = n / 2 };
          { Particle_set.name = "d"; charge = -1.; count = n - (n / 2) };
        ]
    in
    let rng = Xoshiro.create seed in
    Ps.randomize ps (fun () -> Xoshiro.uniform rng);
    let functors = Jastrow_sets.ee_set ~cutoff:(Lattice.wigner_seitz_radius lattice) in
    (ps, functors, rng)

  module Ref_impl : J_BENCH = struct
    let name = "ref-" ^ R.name

    let bench ~n ~moves ~seed =
      let ps, functors, rng = setup n seed in
      let table = AAref.create ps in
      AAref.evaluate table ps;
      let j2 = J2.create_ref ~table ~functors ps in
      ignore (j2.J2.W.evaluate_log ps);
      let t0 = Timers.now () in
      for i = 1 to moves do
        let k = i mod n in
        let pos =
          Vec3.add (Ps.get ps k)
            (Vec3.make (Xoshiro.gaussian rng *. 0.1) 0. 0.)
        in
        Ps.propose ps k pos;
        AAref.move table ps k pos;
        let r = j2.J2.W.ratio ps k in
        if r > 0.5 then begin
          j2.J2.W.accept ps k;
          AAref.update table k;
          Ps.accept ps
        end
        else begin
          j2.J2.W.reject ps k;
          Ps.reject ps
        end
      done;
      (Timers.now () -. t0) /. float_of_int moves
  end

  module Opt_impl : J_BENCH = struct
    let name = "otf-" ^ R.name

    let bench ~n ~moves ~seed =
      let ps, functors, rng = setup n seed in
      let table = AAsoa.create ps in
      AAsoa.evaluate table ps;
      let j2 = J2.create_opt ~table ~functors ps in
      ignore (j2.J2.W.evaluate_log ps);
      let t0 = Timers.now () in
      for i = 1 to moves do
        let k = i mod n in
        let pos =
          Vec3.add (Ps.get ps k)
            (Vec3.make (Xoshiro.gaussian rng *. 0.1) 0. 0.)
        in
        AAsoa.prepare table ps k;
        Ps.propose ps k pos;
        AAsoa.move table ps k pos;
        let r = j2.J2.W.ratio ps k in
        if r > 0.5 then begin
          j2.J2.W.accept ps k;
          AAsoa.accept table k;
          Ps.accept ps
        end
        else begin
          j2.J2.W.reject ps k;
          Ps.reject ps
        end
      done;
      (Timers.now () -. t0) /. float_of_int moves
  end
end

module B64 = Bench (Precision.F64)
module B32 = Bench (Precision.F32)

let benches : (module J_BENCH) list =
  [
    (module B64.Ref_impl);
    (module B32.Ref_impl);
    (module B64.Opt_impl);
    (module B32.Opt_impl);
  ]

let run sizes moves seed =
  Printf.printf "%-8s" "N";
  List.iter (fun (module B : J_BENCH) -> Printf.printf " %12s" B.name) benches;
  Printf.printf "   (ns per move)\n";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter
        (fun (module B : J_BENCH) ->
          Printf.printf " %12.0f" (1e9 *. B.bench ~n ~moves ~seed))
        benches;
      print_newline ())
    sizes;
  Printf.printf
    "\nmemory per walker: ref keeps 5N^2 scalars, otf keeps 5N (paper \
     Sec. 7.5).\n"

open Cmdliner

let sizes =
  Arg.(
    value
    & opt (list int) [ 64; 128; 256; 512 ]
    & info [ "n" ] ~doc:"Comma-separated electron counts.")

let moves = Arg.(value & opt int 2000 & info [ "moves" ] ~doc:"Moves timed.")
let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"RNG seed.")

let cmd =
  Cmd.v
    (Cmd.info "mini_jastrow" ~doc:"Two-body Jastrow kernel miniapp")
    Term.(const run $ sizes $ moves $ seed)

let () = exit (Cmd.eval cmd)
