open Oqmc_containers
open Oqmc_particle
open Oqmc_rng

(* DistTable miniapp (Sec. 7.1): times one particle move against the
   electron-electron table for a sweep of N, in every storage/layout
   combination — the isolated view of the paper's top hot spot. *)

module type TABLE_BENCH = sig
  val name : string
  val bench : n:int -> moves:int -> seed:int -> float
  (* seconds per move *)
end

module Bench_ref (R : Precision.REAL) : TABLE_BENCH = struct
  module Ps = Particle_set.Make (R)
  module Dt = Dt_aa_ref.Make (R)

  let name = "ref-" ^ R.name

  let bench ~n ~moves ~seed =
    let ps =
      Ps.create ~lattice:(Lattice.cubic 10.)
        [ { Particle_set.name = "e"; charge = -1.; count = n } ]
    in
    let rng = Xoshiro.create seed in
    Ps.randomize ps (fun () -> Xoshiro.uniform rng);
    let t = Dt.create ps in
    Dt.evaluate t ps;
    let t0 = Timers.now () in
    for i = 1 to moves do
      let k = i mod n in
      Dt.move t ps k (Vec3.make 5. 5. 5.);
      if i land 1 = 0 then Dt.update t k
    done;
    (Timers.now () -. t0) /. float_of_int moves
end

module Bench_forward (R : Precision.REAL) : TABLE_BENCH = struct
  module Ps = Particle_set.Make (R)
  module Dt = Dt_aa_forward.Make (R)

  let name = "fwd-" ^ R.name

  let bench ~n ~moves ~seed =
    let ps =
      Ps.create ~lattice:(Lattice.cubic 10.)
        [ { Particle_set.name = "e"; charge = -1.; count = n } ]
    in
    let rng = Xoshiro.create seed in
    Ps.randomize ps (fun () -> Xoshiro.uniform rng);
    let t = Dt.create ps in
    Dt.evaluate t ps;
    let t0 = Timers.now () in
    for i = 1 to moves do
      let k = i mod n in
      Dt.move t ps k (Vec3.make 5. 5. 5.);
      if i land 1 = 0 then Dt.update t k
    done;
    (Timers.now () -. t0) /. float_of_int moves
end

module Bench_soa (R : Precision.REAL) : TABLE_BENCH = struct
  module Ps = Particle_set.Make (R)
  module Dt = Dt_aa_soa.Make (R) (R)

  let name = "soa-" ^ R.name

  let bench ~n ~moves ~seed =
    let ps =
      Ps.create ~lattice:(Lattice.cubic 10.)
        [ { Particle_set.name = "e"; charge = -1.; count = n } ]
    in
    let rng = Xoshiro.create seed in
    Ps.randomize ps (fun () -> Xoshiro.uniform rng);
    let t = Dt.create ps in
    Dt.evaluate t ps;
    let t0 = Timers.now () in
    for i = 1 to moves do
      let k = i mod n in
      Dt.prepare t ps k;
      Dt.move t ps k (Vec3.make 5. 5. 5.);
      if i land 1 = 0 then Dt.accept t k
    done;
    (Timers.now () -. t0) /. float_of_int moves
end

let benches : (module TABLE_BENCH) list =
  [
    (module Bench_ref (Precision.F64));
    (module Bench_ref (Precision.F32));
    (module Bench_forward (Precision.F64));
    (module Bench_forward (Precision.F32));
    (module Bench_soa (Precision.F64));
    (module Bench_soa (Precision.F32));
  ]

let run sizes moves seed =
  Printf.printf "%-8s" "N";
  List.iter
    (fun (module B : TABLE_BENCH) -> Printf.printf " %14s" B.name)
    benches;
  Printf.printf "   (ns per move)\n";
  List.iter
    (fun n ->
      Printf.printf "%-8d" n;
      List.iter
        (fun (module B : TABLE_BENCH) ->
          Printf.printf " %14.0f" (1e9 *. B.bench ~n ~moves ~seed))
        benches;
      print_newline ())
    sizes

open Cmdliner

let sizes =
  Arg.(
    value
    & opt (list int) [ 64; 128; 256; 512; 1024 ]
    & info [ "n" ] ~doc:"Comma-separated electron counts.")

let moves = Arg.(value & opt int 2000 & info [ "moves" ] ~doc:"Moves timed.")
let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.")

let cmd =
  Cmd.v
    (Cmd.info "mini_disttable" ~doc:"Distance-table kernel miniapp")
    Term.(const run $ sizes $ moves $ seed)

let () = exit (Cmd.eval cmd)
