open Oqmc_serve

(* Submit an input deck to a running oqmc_serve daemon and (by default)
   wait for the terminal state.  Exit code: 0 = Done, 1 = Failed or
   Rejected, 2 = transport/usage error — a definite answer always. *)

let read_deck = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_bin path In_channel.input_all

let print_outcome id (o : Job.outcome) cached =
  Printf.printf "%s: done%s%s  E = %.6f +/- %.6f  variance %.6f  (%d gens, %.2f s)\n"
    id
    (if cached then " [cached]" else "")
    (if o.Job.drained then " [drained at deadline]" else "")
    o.Job.energy o.Job.error o.Job.variance o.Job.gens o.Job.wall_s

let submit socket deck_path client priority deadline_s retries no_wait query
    cancel stats =
  match (query, cancel, stats) with
  | Some id, _, _ -> (
      let fd = Client.connect socket in
      match Client.query fd id with
      | Proto.Job_done { outcome; cached; _ } ->
          print_outcome id outcome cached;
          0
      | Proto.Job_failed { reason; _ } ->
          Printf.printf "%s: failed: %s\n" id reason;
          1
      | Proto.Rejected { reason; _ } ->
          Printf.printf "%s: rejected: %s\n" id reason;
          1
      | Proto.State { state; attempt; _ } ->
          Printf.printf "%s: %s (attempt %d)\n" id state attempt;
          0
      | Proto.Error reason ->
          Printf.printf "%s\n" reason;
          2
      | _ ->
          Printf.printf "%s: unexpected reply\n" id;
          2)
  | None, Some id, _ -> (
      let fd = Client.connect socket in
      match Client.cancel fd id with
      | Proto.State { state; _ } ->
          Printf.printf "%s: %s\n" id state;
          0
      | Proto.Error reason ->
          Printf.printf "%s\n" reason;
          2
      | _ ->
          Printf.printf "%s: unexpected reply\n" id;
          2)
  | None, None, true ->
      let fd = Client.connect socket in
      let s = Client.stats fd in
      Printf.printf
        "submitted %d  accepted %d  rejected %d  done %d  failed %d  \
         cancelled %d  queued %d  running %d  retrying %d  cache hits %d  \
         suspended %d\n"
        s.Proto.submitted s.Proto.accepted s.Proto.rejected s.Proto.done_
        s.Proto.failed s.Proto.cancelled s.Proto.queued s.Proto.running
        s.Proto.retrying s.Proto.cache_hits s.Proto.suspended;
      0
  | None, None, false -> (
      match deck_path with
      | None ->
          prerr_endline "oqmc_submit: a deck file is required (or - for stdin)";
          2
      | Some path -> (
          let deck = read_deck path in
          if no_wait then (
            let fd = Client.connect socket in
            match
              Client.submit fd ~client ~priority ~deadline_s ~retries
                ~wait:false deck
            with
            | Proto.Accepted { id; cached; position } ->
                Printf.printf "%s: accepted%s (position %d)\n" id
                  (if cached then " [cached]" else "")
                  position;
                0
            | Proto.Rejected { id; reason } ->
                Printf.printf "%s: rejected: %s\n" id reason;
                1
            | _ ->
                prerr_endline "oqmc_submit: unexpected reply";
                2)
          else
            match
              Client.run_deck ~socket ~client ~priority ~deadline_s ~retries
                deck
            with
            | Ok outcome ->
                print_outcome "job" outcome false;
                0
            | Error reason ->
                Printf.printf "job: %s\n" reason;
                1))

open Cmdliner

let socket =
  Arg.(
    value
    & opt string Server.default_config.Server.socket
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Daemon socket path.")

let deck =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"DECK" ~doc:"Input deck file, or - for stdin.")

let client =
  Arg.(
    value & opt string "cli"
    & info [ "c"; "client" ] ~docv:"NAME"
        ~doc:"Client identity for fair scheduling.")

let priority =
  Arg.(
    value & opt int 0
    & info [ "p"; "priority" ] ~docv:"P" ~doc:"Higher runs sooner.")

let deadline_s =
  Arg.(
    value & opt float 0.
    & info [ "deadline-s" ] ~docv:"S"
        ~doc:
          "Wall-clock budget from first execution; the job drains to a \
           partial result at the next generation boundary (0 = none).")

let retries =
  Arg.(
    value & opt int (-1)
    & info [ "retries" ] ~docv:"N"
        ~doc:"Crash respawns allowed (-1 = server default).")

let no_wait =
  Arg.(
    value & flag
    & info [ "no-wait" ]
        ~doc:"Return after admission; poll later with --query.")

let query =
  Arg.(
    value
    & opt (some string) None
    & info [ "query" ] ~docv:"ID" ~doc:"Query a job's state.")

let cancel =
  Arg.(
    value
    & opt (some string) None
    & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel a job.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print server accounting.")

let cmd =
  Cmd.v
    (Cmd.info "oqmc_submit" ~doc:"submit decks to oqmc_serve")
    Term.(
      const submit $ socket $ deck $ client $ priority $ deadline_s $ retries
      $ no_wait $ query $ cancel $ stats)

let () = exit (Cmd.eval' cmd)
