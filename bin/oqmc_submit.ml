open Oqmc_serve
module J = Oqmc_obs.Jsonx

(* Submit an input deck to a running oqmc_serve daemon and (by default)
   wait for the terminal state.  Two keyword forms ride on the deck
   position: [oqmc_submit status] renders the daemon's live snapshot
   (add --watch for a refreshing view) and [oqmc_submit postmortem F]
   replays a crash flight-recorder dump.  Exit code: 0 = Done, 1 =
   Failed or Rejected, 2 = transport/usage error — a definite answer
   always. *)

let read_deck = function
  | "-" -> In_channel.input_all In_channel.stdin
  | path -> In_channel.with_open_bin path In_channel.input_all

(* --- status rendering ------------------------------------------------ *)

let jnum key j = Option.bind (J.member key j) J.to_float
let jstr key j = Option.bind (J.member key j) J.to_str
let num ?(d = 0.) key j = Option.value ~default:d (jnum key j)

let print_job j =
  let id = Option.value ~default:"?" (jstr "id" j) in
  let client = Option.value ~default:"?" (jstr "client" j) in
  Printf.printf "  %-12s %-8s attempt %.0f  up %6.1fs" id client
    (num "attempt" j) (num "running_s" j);
  match J.member "live" j with
  | None | Some J.Null ->
      print_string "  (no status snapshot yet)\n"
  | Some live ->
      (match jnum "gen" live with
      | Some g ->
          Printf.printf "  gen %.0f" g;
          Option.iter (Printf.printf "/%.0f") (jnum "total_gens" live)
      | None -> ());
      Option.iter (Printf.printf "  E %+.6f") (jnum "e_gen" live);
      Option.iter (Printf.printf "  pop %.0f") (jnum "population" live);
      print_newline ();
      (match Option.bind (J.member "ledger" live) J.to_list with
      | None | Some [] -> ()
      | Some ranks ->
          List.iter
            (fun r ->
              Printf.printf
                "      rank %.0f: %9.0f moves/s  exch %4.0f walkers  \
                 straggle %6.3fs  wall p50 %.1fms p99 %.1fms\n"
                (num "rank" r)
                (num "walkers_moves_per_s" r)
                (num "exchange_walkers" r)
                (num "straggle_s" r)
                (1e3 *. num "wall_p50_s" r)
                (1e3 *. num "wall_p99_s" r))
            ranks);
      (match Option.bind (J.member "audit" live) (jnum "audit.efficiency") with
      | Some e ->
          Printf.printf "      audit: %.0f%% of the roofline model\n"
            (100. *. e)
      | None -> ())

let print_status body =
  (match J.member "stats" body with
  | Some s ->
      Printf.printf
        "server: %.0f running  %.0f queued  %.0f retrying  |  %.0f done  \
         %.0f failed  %.0f cancelled  (%.0f cache hits)\n"
        (num "running" s) (num "queued" s) (num "retrying" s) (num "done" s)
        (num "failed" s) (num "cancelled" s)
        (num "cache_hits" s)
  | None -> ());
  match Option.bind (J.member "jobs" body) J.to_list with
  | None | Some [] -> print_string "no jobs in flight\n"
  | Some jobs -> List.iter print_job jobs

let status_view socket watch =
  let once () =
    let fd = Client.connect socket in
    Fun.protect
      ~finally:(fun () -> Client.close fd)
      (fun () -> print_status (Client.status fd))
  in
  if not watch then (
    once ();
    0)
  else
    let stop = ref false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
    while not !stop do
      print_string "\027[2J\027[H";
      (try once ()
       with Oqmc_dist.Wire.Closed | Unix.Unix_error _ ->
         print_string "daemon unreachable\n");
      flush stdout;
      if not !stop then Unix.sleepf 2.0
    done;
    0

let postmortem_view path =
  match Oqmc_obs.Flightrec.replay ~path with
  | pm ->
      print_string (Oqmc_obs.Flightrec.describe pm);
      0
  | exception Oqmc_obs.Flightrec.Not_flightrec why ->
      Printf.eprintf "oqmc_submit: %s: not a flight-recorder dump (%s)\n" path
        why;
      2
  | exception Sys_error why ->
      Printf.eprintf "oqmc_submit: %s\n" why;
      2

let print_outcome id (o : Job.outcome) cached =
  Printf.printf "%s: done%s%s  E = %.6f +/- %.6f  variance %.6f  (%d gens, %.2f s)\n"
    id
    (if cached then " [cached]" else "")
    (if o.Job.drained then " [drained at deadline]" else "")
    o.Job.energy o.Job.error o.Job.variance o.Job.gens o.Job.wall_s

let submit socket deck_path arg2 client priority deadline_s retries no_wait
    query cancel stats watch =
  match (deck_path, query, cancel, stats) with
  | Some "status", None, None, false -> status_view socket watch
  | Some "postmortem", None, None, false -> (
      match arg2 with
      | Some path -> postmortem_view path
      | None ->
          prerr_endline "oqmc_submit: postmortem needs a dump file argument";
          2)
  | _ -> (
  match (query, cancel, stats) with
  | Some id, _, _ -> (
      let fd = Client.connect socket in
      match Client.query fd id with
      | Proto.Job_done { outcome; cached; _ } ->
          print_outcome id outcome cached;
          0
      | Proto.Job_failed { reason; _ } ->
          Printf.printf "%s: failed: %s\n" id reason;
          1
      | Proto.Rejected { reason; _ } ->
          Printf.printf "%s: rejected: %s\n" id reason;
          1
      | Proto.State { state; attempt; _ } ->
          Printf.printf "%s: %s (attempt %d)\n" id state attempt;
          0
      | Proto.Error reason ->
          Printf.printf "%s\n" reason;
          2
      | _ ->
          Printf.printf "%s: unexpected reply\n" id;
          2)
  | None, Some id, _ -> (
      let fd = Client.connect socket in
      match Client.cancel fd id with
      | Proto.State { state; _ } ->
          Printf.printf "%s: %s\n" id state;
          0
      | Proto.Error reason ->
          Printf.printf "%s\n" reason;
          2
      | _ ->
          Printf.printf "%s: unexpected reply\n" id;
          2)
  | None, None, true ->
      let fd = Client.connect socket in
      let s = Client.stats fd in
      Printf.printf
        "submitted %d  accepted %d  rejected %d  done %d  failed %d  \
         cancelled %d  queued %d  running %d  retrying %d  cache hits %d  \
         suspended %d\n"
        s.Proto.submitted s.Proto.accepted s.Proto.rejected s.Proto.done_
        s.Proto.failed s.Proto.cancelled s.Proto.queued s.Proto.running
        s.Proto.retrying s.Proto.cache_hits s.Proto.suspended;
      0
  | None, None, false -> (
      match deck_path with
      | None ->
          prerr_endline "oqmc_submit: a deck file is required (or - for stdin)";
          2
      | Some path -> (
          let deck = read_deck path in
          if no_wait then (
            let fd = Client.connect socket in
            match
              Client.submit fd ~client ~priority ~deadline_s ~retries
                ~wait:false deck
            with
            | Proto.Accepted { id; cached; position } ->
                Printf.printf "%s: accepted%s (position %d)\n" id
                  (if cached then " [cached]" else "")
                  position;
                0
            | Proto.Rejected { id; reason } ->
                Printf.printf "%s: rejected: %s\n" id reason;
                1
            | _ ->
                prerr_endline "oqmc_submit: unexpected reply";
                2)
          else
            match
              Client.run_deck ~socket ~client ~priority ~deadline_s ~retries
                deck
            with
            | Ok outcome ->
                print_outcome "job" outcome false;
                0
            | Error reason ->
                Printf.printf "job: %s\n" reason;
                1)))

open Cmdliner

let socket =
  Arg.(
    value
    & opt string Server.default_config.Server.socket
    & info [ "s"; "socket" ] ~docv:"PATH" ~doc:"Daemon socket path.")

let deck =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"DECK"
        ~doc:
          "Input deck file, or - for stdin.  Two keywords ride this \
           position: $(b,status) prints the daemon's live snapshot \
           (server counters, per-job generation/energy/population, \
           per-rank ledger windows, audit efficiency) and \
           $(b,postmortem) $(i,FILE) replays a crash flight-recorder \
           dump.")

let arg2 =
  Arg.(
    value
    & pos 1 (some string) None
    & info [] ~docv:"FILE"
        ~doc:"The dump file for the $(b,postmortem) keyword.")

let client =
  Arg.(
    value & opt string "cli"
    & info [ "c"; "client" ] ~docv:"NAME"
        ~doc:"Client identity for fair scheduling.")

let priority =
  Arg.(
    value & opt int 0
    & info [ "p"; "priority" ] ~docv:"P" ~doc:"Higher runs sooner.")

let deadline_s =
  Arg.(
    value & opt float 0.
    & info [ "deadline-s" ] ~docv:"S"
        ~doc:
          "Wall-clock budget from first execution; the job drains to a \
           partial result at the next generation boundary (0 = none).")

let retries =
  Arg.(
    value & opt int (-1)
    & info [ "retries" ] ~docv:"N"
        ~doc:"Crash respawns allowed (-1 = server default).")

let no_wait =
  Arg.(
    value & flag
    & info [ "no-wait" ]
        ~doc:"Return after admission; poll later with --query.")

let query =
  Arg.(
    value
    & opt (some string) None
    & info [ "query" ] ~docv:"ID" ~doc:"Query a job's state.")

let cancel =
  Arg.(
    value
    & opt (some string) None
    & info [ "cancel" ] ~docv:"ID" ~doc:"Cancel a job.")

let stats =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print server accounting.")

let watch =
  Arg.(
    value & flag
    & info [ "w"; "watch" ]
        ~doc:
          "With the $(b,status) keyword: refresh the snapshot every 2 \
           seconds until interrupted.")

let cmd =
  Cmd.v
    (Cmd.info "oqmc_submit" ~doc:"submit decks to oqmc_serve")
    Term.(
      const submit $ socket $ deck $ arg2 $ client $ priority $ deadline_s
      $ retries $ no_wait $ query $ cancel $ stats $ watch)

let () = exit (Cmd.eval' cmd)
