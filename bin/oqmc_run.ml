open Oqmc_core
open Oqmc_workloads

(* Full production-style driver: VMC or DMC on a Table 1 workload or a
   validation system, in any build variant, with walker parallelism over
   domains — the "qmcpack" binary of this repository. *)

(* Attach the CLI-level observability outputs (single-process VMC/DMC
   paths; the multi-rank path hands them to the supervisor instead,
   which must enable tracing before it forks).  [f] receives the open
   telemetry sink and progress line, if any; the trace is exported and
   everything flushed on the way out, including on exceptions. *)
let with_obs ~trace ~telemetry ~progress f =
  let module Trace = Oqmc_obs.Trace in
  if trace <> None && not (Trace.enabled ()) then Trace.enable ();
  let sink = Option.map Oqmc_obs.Telemetry.create telemetry in
  let prog = if progress then Some (Oqmc_obs.Progress.create ()) else None in
  Fun.protect
    ~finally:(fun () ->
      (match prog with Some pr -> Oqmc_obs.Progress.finish pr | None -> ());
      (match sink with Some s -> Oqmc_obs.Telemetry.close s | None -> ());
      match trace with Some path -> Trace.export ~path | None -> ())
    (fun () -> f sink prog)

let make_system name reduction with_nlpp precision layout tile seed =
  match String.lowercase_ascii name with
  | "harmonic" -> Validation.harmonic ~n:6 ~omega:1.0
  | "hydrogen" -> Validation.hydrogen ()
  | "heg" -> Validation.electron_gas ~n_up:8 ~n_down:8 ~box:6.0 ()
  | _ ->
      (* Table storage follows the requested working precision; the f32
         default matches the paper's mixed-precision tables. *)
      let table_prec =
        match precision with Some `F64 -> `F64 | _ -> `F32
      in
      let layout =
        match layout with Some `Tiled -> `Tiled | Some `Flat | None -> `Flat
      in
      Builder.make ~seed ~with_nlpp ~reduction ~precision:table_prec ~layout
        ~tile (Spec.find name)

let parse_precision_for flag = function
  | "" | "default" -> None
  | "f32" | "single" -> Some `F32
  | "f64" | "double" -> Some `F64
  | other ->
      invalid_arg
        (Printf.sprintf "oqmc_run: --%s must be f32 or f64, got %S" flag
           other)

let parse_precision = parse_precision_for "precision"

let parse_layout = function
  | "" | "default" -> None
  | "flat" -> Some `Flat
  | "tiled" -> Some `Tiled
  | other ->
      invalid_arg
        (Printf.sprintf "oqmc_run: --layout must be flat or tiled, got %S"
           other)

let run input method_ workload variant reduction walkers blocks steps tau
    domains crowd delay precision precision_dt precision_jastrow
    precision_inv layout tile autotune with_nlpp seed checkpoint
    checkpoint_every checkpoint_keep
    watchdog restore ranks heartbeat_ms max_respawn elastic gen_deadline_ms
    straggler_policy plan trace telemetry telemetry_every progress flightrec
    status audit =
  (* An input deck, when given, takes precedence over the flags. *)
  let cfg =
    match input with
    | Some path -> Input.parse_file path
    | None ->
        {
          Input.method_ = String.lowercase_ascii method_;
          workload;
          variant = Variant.of_string variant;
          reduction;
          walkers;
          blocks;
          steps;
          tau;
          domains;
          crowd;
          delay;
          precision = parse_precision precision;
          precision_dt = parse_precision_for "precision-dt" precision_dt;
          precision_jastrow =
            parse_precision_for "precision-jastrow" precision_jastrow;
          precision_inv = parse_precision_for "precision-inv" precision_inv;
          layout = parse_layout layout;
          tile;
          autotune;
          nlpp = with_nlpp;
          seed;
          checkpoint;
          checkpoint_every;
          checkpoint_keep;
          watchdog;
          restore;
          ranks;
          heartbeat_ms;
          max_respawn;
          elastic;
          gen_deadline_ms;
          straggler_policy;
          plan;
          trace;
          telemetry;
          telemetry_every;
          progress;
        }
  in
  let method_ = cfg.Input.method_ in
  let workload = cfg.Input.workload in
  let variant = cfg.Input.variant in
  let reduction = cfg.Input.reduction in
  let walkers = cfg.Input.walkers in
  let blocks = cfg.Input.blocks in
  let steps = cfg.Input.steps in
  let tau = cfg.Input.tau in
  let domains = cfg.Input.domains in
  let crowd = cfg.Input.crowd in
  let delay = cfg.Input.delay in
  let precision = cfg.Input.precision in
  let precision_dt = cfg.Input.precision_dt in
  let precision_jastrow = cfg.Input.precision_jastrow in
  let precision_inv = cfg.Input.precision_inv in
  let layout = cfg.Input.layout in
  let tile = cfg.Input.tile in
  let autotune = cfg.Input.autotune in
  let with_nlpp = cfg.Input.nlpp in
  let seed = cfg.Input.seed in
  let checkpoint = cfg.Input.checkpoint in
  let checkpoint_every = cfg.Input.checkpoint_every in
  let checkpoint_keep = cfg.Input.checkpoint_keep in
  let watchdog = cfg.Input.watchdog in
  let restore = cfg.Input.restore in
  let ranks = cfg.Input.ranks in
  let heartbeat_ms = cfg.Input.heartbeat_ms in
  let max_respawn = cfg.Input.max_respawn in
  let elastic = cfg.Input.elastic in
  let gen_deadline_ms = cfg.Input.gen_deadline_ms in
  let straggler_policy =
    match
      Oqmc_dist.Supervisor.straggler_policy_of_string
        cfg.Input.straggler_policy
    with
    | Some pol -> pol
    | None ->
        invalid_arg
          "oqmc_run: --straggler-policy must be warn, steal or quarantine"
  in
  let plan =
    match Oqmc_dist.Supervisor.plan_mode_of_string cfg.Input.plan with
    | Some pm -> pm
    | None -> invalid_arg "oqmc_run: --plan must be count or load"
  in
  let trace = cfg.Input.trace in
  let telemetry = cfg.Input.telemetry in
  let telemetry_every = max 1 cfg.Input.telemetry_every in
  let progress = cfg.Input.progress in
  let sys = make_system workload reduction with_nlpp precision layout tile seed in
  if delay < 1 then invalid_arg "oqmc_run: --delay must be >= 1";
  if tile < 0 then invalid_arg "oqmc_run: --tile must be >= 0";
  (* Effective working precision: explicit override beats the variant's
     default. *)
  let eff_precision =
    match precision with
    | Some p -> p
    | None -> (
        match variant with
        | Variant.Ref | Variant.Current_f64 -> `F64
        | Variant.Ref_mp | Variant.Current -> `F32)
  in
  (* The orbital tile in effect (0 = flat); an explicit deck layout wins,
     and the tuner below may switch an unconstrained run to tiled. *)
  let eff_tile =
    match layout with
    | Some `Tiled ->
        if tile > 0 then tile else min 32 sys.System.spo.Oqmc_wavefunction.Spo.n_orb
    | Some `Flat | None -> 0
  in
  (* autotune = true: pick crowd/delay/grain/tile from the calibrated
     roofline + memory model, refined by short measured delay and tile
     sweeps; explicit non-default flags still win over the tuner. *)
  let crowd, delay, sys, eff_tile =
    if not autotune then (crowd, delay, sys, eff_tile)
    else begin
      let choice =
        Oqmc_autotune.Tuner.choose ~refine:true ~walkers ~domains ~variant
          ~precision:eff_precision ~sys ()
      in
      Oqmc_autotune.Tuner.publish choice;
      print_endline (Oqmc_autotune.Tuner.describe choice);
      if Sys.getenv_opt "OQMC_GRAIN" = None then
        Unix.putenv "OQMC_GRAIN"
          (string_of_int choice.Oqmc_autotune.Tuner.knobs.grain);
      let k = choice.Oqmc_autotune.Tuner.knobs in
      (* An explicit layout = flat|tiled deck key beats the tuner's tile
         pick; otherwise a nonzero pick rebuilds the orbital table in the
         tiled layout (identical coefficients, so f64 results are
         unchanged). *)
      let sys, eff_tile =
        if layout = None && k.Oqmc_autotune.Tuner.tile > 0 then
          ( make_system workload reduction with_nlpp precision (Some `Tiled)
              k.Oqmc_autotune.Tuner.tile seed,
            k.Oqmc_autotune.Tuner.tile )
        else (sys, eff_tile)
      in
      ( (if crowd <> 1 then crowd else k.Oqmc_autotune.Tuner.crowd),
        (if delay <> 1 then delay else k.Oqmc_autotune.Tuner.delay),
        sys,
        eff_tile )
    end
  in
  (* Any explicitly single-precision table — orbital, distance, Jastrow
     or inverse — arms the integrity watchdog's sampled full-recompute
     drift audit unless the deck configured one. *)
  let watchdog =
    let any_f32 =
      List.exists
        (fun p -> p = Some `F32)
        [ precision; precision_dt; precision_jastrow; precision_inv ]
    in
    if watchdog = 0 && any_f32 then 10 else watchdog
  in
  let factory =
    (* delay = 1 keeps the rank-1 Sherman-Morrison update (the bitwise
       reference); > 1 switches to the delayed Woodbury scheme. *)
    Build.factory
      ?delay:(if delay <= 1 then None else Some delay)
      ?precision ?precision_dt ?precision_jastrow ?precision_inv ~variant
      ~seed sys
  in
  Printf.printf
    "oqmc_run: %s  %s  variant=%s  precision=%s  electrons=%d  domains=%d  \
     crowd=%d  delay=%d  layout=%s\n"
    method_ workload
    (Variant.to_string variant)
    (match eff_precision with `F32 -> "f32" | `F64 -> "f64")
    (System.n_electrons sys) domains crowd delay
    (if eff_tile > 0 then Printf.sprintf "tiled:%d" eff_tile else "flat");
  (* --audit: calibrate a roofline projection for this run shape up
     front; measured-vs-projected gauges refresh live (per ledger
     window) and the verdict table prints after the run. *)
  let audit_ctx =
    if not audit then None
    else
      Some
        (Oqmc_autotune.Audit.create ~walkers ~domains ~ranks:(max 1 ranks)
           ~tile:eff_tile ~variant ~precision:eff_precision ~sys ())
  in
  let print_audit ?measured_gen_s () =
    match audit_ctx with
    | None -> ()
    | Some a -> (
        match Oqmc_autotune.Audit.observe ?measured_gen_s a with
        | Some r -> print_string (Oqmc_autotune.Audit.table r)
        | None -> ())
  in
  (* Any fatal unwind of the single-process paths dumps the flight
     recorder before the sinks close (the multi-rank supervisor owns its
     own dump paths). *)
  let flight_guard f =
    match flightrec with
    | None -> f ()
    | Some path -> (
        try f ()
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          (try Oqmc_obs.Flightrec.dump ~reason:(Printexc.to_string e) ~path ()
           with _ -> ());
          Printexc.raise_with_backtrace e bt)
  in
  match method_ with
  | "dmc" when ranks > 1 ->
      (* Supervised multi-process execution: forked rank workers with
         heartbeats, real walker exchange and crash recovery. *)
      let params =
        {
          Oqmc_dist.Supervisor.default_params with
          ranks;
          target_walkers = walkers;
          warmup = steps;
          generations = blocks * steps;
          tau;
          seed = seed + 1;
          n_domains = domains;
          heartbeat_s = float_of_int heartbeat_ms /. 1000.;
          max_respawn;
          checkpoint = (match checkpoint with Some _ -> checkpoint | None -> restore);
          checkpoint_every;
          checkpoint_keep;
          restore = restore <> None;
          elastic;
          gen_deadline_ms;
          straggler_policy;
          plan;
          flightrec;
          status;
          on_window =
            Option.map
              (fun a _gen -> ignore (Oqmc_autotune.Audit.observe a))
              audit_ctx;
          trace;
          telemetry;
          telemetry_every;
          progress;
        }
      in
      let res = Oqmc_dist.Supervisor.run ~factory params in
      let open Oqmc_dist.Supervisor in
      Printf.printf "DMC energy    : %.6f +/- %.6f\n" res.energy
        res.energy_error;
      Printf.printf "variance      : %.6f   tau_corr %.2f\n" res.variance
        res.tau_corr;
      Printf.printf "population    : %.1f (target %d)\n" res.mean_population
        walkers;
      Printf.printf "acceptance    : %.3f\n" res.acceptance;
      Printf.printf "wall time     : %.2f s\n" res.wall_time;
      Printf.printf "exchange      : %d walker messages, %.2f MB total\n"
        res.comm_messages
        (float_of_int res.comm_bytes /. 1e6);
      Printf.printf
        "supervision   : %d/%d ranks live, %d respawns, %d crashes, %d \
         stalls, %d garbage frames, %d degraded generations\n"
        res.live_ranks ranks res.respawns res.crashes res.heartbeat_timeouts
        res.garbage_frames res.degraded_generations;
      if elastic then
        Printf.printf
          "elastic       : %d joins, %d leaves, %d stragglers (%s), %d \
           steals, gen p50 %.1f ms p99 %.1f ms\n"
          res.joins res.leaves res.stragglers
          (Oqmc_dist.Supervisor.straggler_policy_name straggler_policy)
          res.steals (1e3 *. res.gen_p50_s) (1e3 *. res.gen_p99_s);
      if res.ranks_failed <> [] then
        Printf.printf "ranks lost    : %s\n"
          (String.concat ", " (List.map string_of_int res.ranks_failed));
      print_audit ()
  | "vmc" ->
      let res =
        flight_guard @@ fun () ->
        with_obs ~trace ~telemetry ~progress (fun sink prog ->
            Vmc.run ~crowd ?telemetry:sink ~telemetry_every ?progress:prog
              ~factory
              {
                Vmc.n_walkers = walkers;
                warmup = steps;
                blocks;
                steps_per_block = steps;
                tau;
                seed = seed + 1;
                n_domains = domains;
              })
      in
      Printf.printf "VMC energy    : %.6f +/- %.6f\n" res.Vmc.energy
        res.Vmc.energy_error;
      Printf.printf "variance      : %.6f\n" res.Vmc.variance;
      Printf.printf "acceptance    : %.3f\n" res.Vmc.acceptance;
      Printf.printf "tau_corr      : %.2f\n" res.Vmc.tau_corr;
      Printf.printf "throughput    : %.1f samples/s  (%.2f s)\n"
        res.Vmc.throughput res.Vmc.wall_time;
      if res.Vmc.throughput > 0. then
        print_audit
          ~measured_gen_s:(float_of_int walkers /. res.Vmc.throughput)
          ()
  | "dmc" ->
      let initial =
        match restore with
        | Some path ->
            (* Resume from the newest *valid* checkpoint generation,
               falling back past corrupt ones. *)
            let gen, (e_trial, ws) = Checkpoint.load_latest ~path in
            Printf.printf
              "restored %d walkers from %s (generation %d, E_T = %.6f)\n"
              (List.length ws) path gen e_trial;
            Some (e_trial, ws)
        | None -> None
      in
      let watchdog_cfg =
        if watchdog > 0 then
          Some { Integrity.default_config with check_every = watchdog }
        else None
      in
      let res =
        flight_guard @@ fun () ->
        with_obs ~trace ~telemetry ~progress (fun sink prog ->
            Dmc.run ?initial ~checkpoint_every ~checkpoint_keep
              ?checkpoint_path:checkpoint ?watchdog:watchdog_cfg ~crowd
              ?telemetry:sink ~telemetry_every ?progress:prog ~factory
              {
                Dmc.target_walkers = walkers;
                warmup = steps;
                generations = blocks * steps;
                tau;
                seed = seed + 1;
                n_domains = domains;
                ranks = max 1 ranks;
              })
      in
      Printf.printf "DMC energy    : %.6f +/- %.6f\n" res.Dmc.energy
        res.Dmc.energy_error;
      Printf.printf "variance      : %.6f   tau_corr %.2f   kappa %.3g\n"
        res.Dmc.variance res.Dmc.tau_corr res.Dmc.efficiency;
      Printf.printf "population    : %.1f (target %d)\n"
        res.Dmc.mean_population walkers;
      Printf.printf "acceptance    : %.3f\n" res.Dmc.acceptance;
      Printf.printf "throughput    : %.1f samples/s  (%.2f s)\n"
        res.Dmc.throughput res.Dmc.wall_time;
      Printf.printf "load balance  : %d walker messages, %.2f MB total\n"
        res.Dmc.comm_messages
        (float_of_int res.Dmc.comm_bytes /. 1e6);
      let it = res.Dmc.integrity in
      if it.Integrity.scans > 0 || it.Integrity.checkpoints_written > 0 then
        Printf.printf
          "integrity     : %d scans, %d audits, %d quarantined, %d \
           recovered, drift_max %.3g, %d checkpoints (%d failed)\n"
          it.Integrity.scans it.Integrity.audits it.Integrity.quarantined
          it.Integrity.recoveries it.Integrity.drift_max
          it.Integrity.checkpoints_written it.Integrity.checkpoint_failures;
      if res.Dmc.wall_time > 0. && blocks * steps > 0 then
        print_audit
          ~measured_gen_s:(res.Dmc.wall_time /. float_of_int (blocks * steps))
          ();
      (match checkpoint with
      | Some path ->
          Checkpoint.save ~path ~e_trial:res.Dmc.final_e_trial
            res.Dmc.final_walkers;
          Printf.printf "checkpointed %d walkers to %s\n"
            (List.length res.Dmc.final_walkers)
            path
      | None -> ())
  | m -> Printf.eprintf "unknown method %S (vmc|dmc)\n" m

open Cmdliner

let input =
  Arg.(
    value
    & opt (some string) None
    & info [ "i"; "input" ] ~docv:"DECK"
        ~doc:"Read all settings from an input deck (overrides the flags).")

let method_ =
  Arg.(
    value & opt string "vmc"
    & info [ "m"; "method" ] ~doc:"QMC method: vmc or dmc.")

let workload =
  Arg.(
    value & opt string "heg"
    & info [ "w"; "workload" ]
        ~doc:
          "System: a Table 1 workload (Graphite, Be-64, NiO-32, NiO-64) or \
           a validation system (harmonic, hydrogen, heg).")

let variant =
  Arg.(
    value & opt string "Current"
    & info [ "v"; "variant" ] ~doc:"Ref, Ref+MP, Current or Current(f64).")

let reduction =
  Arg.(value & opt int 8 & info [ "r"; "reduction" ] ~doc:"Size reduction.")

let walkers =
  Arg.(value & opt int 8 & info [ "n"; "walkers" ] ~doc:"Walkers / target.")

let blocks = Arg.(value & opt int 5 & info [ "b"; "blocks" ] ~doc:"Blocks.")

let steps =
  Arg.(value & opt int 10 & info [ "s"; "steps" ] ~doc:"Steps per block.")

let tau = Arg.(value & opt float 0.1 & info [ "t"; "tau" ] ~doc:"Time step.")

let domains =
  Arg.(value & opt int 1 & info [ "d"; "domains" ] ~doc:"Worker domains.")

let crowd =
  Arg.(
    value & opt int 1
    & info [ "crowd" ] ~docv:"C"
        ~doc:
          "Walkers advanced in lockstep per domain through batched SPO \
           kernels (1 = scalar reference path).")

let delay =
  Arg.(
    value & opt int 1
    & info [ "delay" ] ~docv:"K"
        ~doc:
          "Delayed determinant-update rank (Woodbury block size); 1 keeps \
           the rank-1 Sherman-Morrison update.")

let precision =
  Arg.(
    value & opt string ""
    & info [ "precision" ] ~docv:"P"
        ~doc:
          "Working precision override: f32 (single storage + arithmetic, \
           f64 accumulators) or f64.  Default: the variant's own \
           precision.  An explicit f32 run auto-enables the integrity \
           watchdog's drift audit.")

let precision_dt =
  Arg.(
    value & opt string ""
    & info [ "precision-dt" ] ~docv:"P"
        ~doc:
          "Storage precision of the SoA distance tables: f32 (rows \
           narrowed at commit, distances still computed in double) or \
           f64.  Default: follow --precision.  An explicit f32 value \
           auto-enables the watchdog drift audit.")

let precision_jastrow =
  Arg.(
    value & opt string ""
    & info [ "precision-jastrow" ] ~docv:"P"
        ~doc:
          "Storage precision of the Jastrow radial-spline coefficients \
           (rounded once at engine build; evaluation stays double).  \
           Default: follow --precision.")

let precision_inv =
  Arg.(
    value & opt string ""
    & info [ "precision-inv" ] ~docv:"P"
        ~doc:
          "Storage precision of the determinant inverses and \
           delayed-update panels (f64 accumulation either way).  \
           Default: follow --precision.")

let layout =
  Arg.(
    value & opt string ""
    & info [ "layout" ] ~docv:"L"
        ~doc:
          "Orbital-table layout: flat (einspline multi-spline) or tiled \
           (array-of-SoA orbital tiles, identical results).  Default: \
           flat, unless --autotune picks tiled.")

let tile =
  Arg.(
    value & opt int 0
    & info [ "tile" ] ~docv:"T"
        ~doc:
          "Orbital tile size for --layout tiled (0 = let the \
           tuner/builder choose).")

let autotune =
  Arg.(
    value & flag
    & info [ "autotune" ]
        ~doc:
          "Calibrate this node (microbench roofline) and pick crowd, \
           delay, grain and orbital tile from the performance model, \
           refined by short measured delay and tile sweeps.  Explicit \
           --crowd/--delay/--layout values still win.")

let nlpp = Arg.(value & flag & info [ "nlpp" ] ~doc:"Enable NLPP.")
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")

let checkpoint =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"PATH"
        ~doc:
          "Write the final DMC walker ensemble to $(docv); with \
           --checkpoint-every, also write rotating $(docv).gen-N files \
           during the run.")

let checkpoint_every =
  Arg.(
    value & opt int 0
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Checkpoint the DMC ensemble every $(docv) generations (0 \
           disables periodic checkpointing).")

let checkpoint_keep =
  Arg.(
    value & opt int 3
    & info [ "checkpoint-keep" ] ~docv:"K"
        ~doc:"Keep the newest $(docv) checkpoint generations.")

let watchdog =
  Arg.(
    value & opt int 0
    & info [ "watchdog" ] ~docv:"G"
        ~doc:
          "Enable the walker watchdog: NaN/Inf scan every generation and \
           a full-recompute drift audit every $(docv) generations (0 \
           disables).")

let restore =
  Arg.(
    value
    & opt (some string) None
    & info [ "restore" ] ~docv:"PATH"
        ~doc:
          "Resume DMC from a checkpoint written by --checkpoint, picking \
           the newest valid $(docv).gen-N generation (or $(docv) itself) \
           and skipping corrupt ones.  With --ranks > 1, resumes every \
           rank from the newest complete set of $(docv).rank-R shards.")

let ranks =
  Arg.(
    value & opt int 1
    & info [ "ranks" ] ~docv:"R"
        ~doc:
          "Run DMC as $(docv) supervised worker processes with real \
           walker exchange and crash recovery (1 = single process).")

let heartbeat_ms =
  Arg.(
    value & opt int 5000
    & info [ "heartbeat-ms" ] ~docv:"MS"
        ~doc:
          "Deadline in milliseconds on every message from a rank; a rank \
           that misses it is declared stalled and respawned.")

let max_respawn =
  Arg.(
    value & opt int 2
    & info [ "max-respawn" ] ~docv:"N"
        ~doc:
          "Respawns allowed per rank before it is abandoned and the run \
           degrades to the surviving ranks.")

let elastic =
  Arg.(
    value & flag
    & info [ "elastic" ]
        ~doc:
          "Enable elastic rank membership: abandoned rank slots become \
           refillable, graceful drain/leave is honored, and (with \
           --gen-deadline-ms > 0) shard checkpoints overlap the next \
           generation's compute.")

let gen_deadline_ms =
  Arg.(
    value & opt int 0
    & info [ "gen-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Soft per-generation budget: a rank finishing later than \
           $(docv) plus three smoothed heartbeat RTTs is a straggler, \
           handled per --straggler-policy (0 = classic lockstep).")

let straggler_policy =
  Arg.(
    value & opt string "warn"
    & info [ "straggler-policy" ] ~docv:"POLICY"
        ~doc:
          "What to do with a rank that misses the soft generation \
           deadline: warn (count it), steal (shed a quarter of its \
           walkers to the fastest rank) or quarantine (three consecutive \
           misses are treated as a stall).")

let plan =
  Arg.(
    value & opt string "count"
    & info [ "plan" ] ~docv:"MODE"
        ~doc:
          "Walker-exchange planning mode: count (even split, the \
           bit-identical default) or load (throughput-proportional \
           split driven by the per-rank ledger; falls back to count \
           levelling until every live rank has a throughput sample).")

let trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the run to \
           $(docv) (load it in Perfetto or chrome://tracing).  With \
           --ranks > 1, every rank's spans are merged into one file.")

let telemetry =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"PATH"
        ~doc:
          "Append one JSON record per measured generation (DMC) or \
           block (VMC) to $(docv): energies, population, acceptance, \
           throughput.")

let telemetry_every =
  Arg.(
    value & opt int 1
    & info [ "telemetry-every" ] ~docv:"N"
        ~doc:"Emit every $(docv)-th telemetry record.")

let progress =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:"Paint a live single-line progress display on stderr.")

let flightrec =
  Arg.(
    value
    & opt (some string) None
    & info [ "flightrec" ] ~docv:"PATH"
        ~doc:
          "Dump the in-memory flight recorder (recent telemetry records \
           + trace spans) to a CRC-trailed postmortem file at $(docv) on \
           every abort path; replay it with oqmc_submit postmortem.")

let status =
  Arg.(
    value
    & opt (some string) None
    & info [ "status" ] ~docv:"PATH"
        ~doc:
          "Multi-rank DMC: write a live status JSON snapshot (progress, \
           per-rank throughput ledger, audit gauges) to $(docv), \
           atomically renamed into place and throttled to ~4 Hz.")

let audit =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Run the efficiency audit: calibrate this node's roofline, \
           project the run shape through the performance model, and \
           report measured-vs-projected generation time and per-kernel \
           shares after the run (gauges refresh live during it).")

let cmd =
  Cmd.v
    (Cmd.info "oqmc_run" ~doc:"VMC/DMC driver on workloads")
    Term.(
      const run $ input $ method_ $ workload $ variant $ reduction $ walkers
      $ blocks $ steps $ tau $ domains $ crowd $ delay $ precision
      $ precision_dt $ precision_jastrow $ precision_inv $ layout $ tile
      $ autotune $ nlpp $ seed
      $ checkpoint
      $ checkpoint_every $ checkpoint_keep $ watchdog $ restore $ ranks
      $ heartbeat_ms $ max_respawn $ elastic $ gen_deadline_ms
      $ straggler_policy $ plan $ trace $ telemetry $ telemetry_every
      $ progress $ flightrec $ status $ audit)

let () = exit (Cmd.eval cmd)
