open Oqmc_serve

(* The oqmc-serve daemon CLI: a crash-safe multi-tenant QMC job server.
   Clients submit input decks with bin/oqmc_submit (or any speaker of
   the framed-JSON protocol); the daemon queues, schedules, retries,
   deadline-drains, caches and journals them.  SIGTERM drains
   gracefully; SIGKILL loses nothing a restart cannot replay. *)

let serve socket dir max_queue max_running default_retries backoff_ms
    grace_ms snapshot_every telemetry flightrec =
  let cfg =
    {
      Server.socket;
      dir;
      max_queue;
      max_running;
      default_retries;
      backoff_s = float_of_int backoff_ms /. 1000.;
      grace_s = float_of_int grace_ms /. 1000.;
      snapshot_every;
      telemetry;
      flightrec;
    }
  in
  Printf.printf "oqmc_serve: listening on %s  (state %s, queue %d, slots %d)\n%!"
    socket dir max_queue max_running;
  Server.serve cfg;
  Printf.printf "oqmc_serve: drained, bye\n%!"

open Cmdliner

let socket =
  Arg.(
    value
    & opt string Server.default_config.Server.socket
    & info [ "s"; "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (OS limit ~100 bytes).")

let dir =
  Arg.(
    value
    & opt string Server.default_config.Server.dir
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:
          "State directory: the crash journal, the result cache and the \
           per-job snapshots live here; a restarted server replays it.")

let max_queue =
  Arg.(
    value
    & opt int Server.default_config.Server.max_queue
    & info [ "max-queue" ] ~docv:"N"
        ~doc:
          "Admission bound: submissions beyond $(docv) queued jobs are \
           rejected with an explicit reason, never silently dropped.")

let max_running =
  Arg.(
    value
    & opt int Server.default_config.Server.max_running
    & info [ "max-running" ] ~docv:"N"
        ~doc:"Concurrent runner processes.")

let default_retries =
  Arg.(
    value
    & opt int Server.default_config.Server.default_retries
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Default crash-respawn budget for jobs that do not set their \
           own.")

let backoff_ms =
  Arg.(
    value & opt int 250
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Respawn backoff base in milliseconds, doubled per attempt.")

let grace_ms =
  Arg.(
    value & opt int 5000
    & info [ "grace-ms" ] ~docv:"MS"
        ~doc:
          "Grace between the drain request (deadline SIGUSR1, shutdown \
           SIGTERM) and SIGKILL.")

let snapshot_every =
  Arg.(
    value
    & opt int Server.default_config.Server.snapshot_every
    & info [ "snapshot-every" ] ~docv:"G"
        ~doc:
          "Generations between job snapshots — the granularity of \
           bit-identical crash recovery.")

let telemetry =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"PATH"
        ~doc:
          "Append one JSON record per job state transition to $(docv) \
           (job id, event, attempt, queue wait).")

let flightrec =
  Arg.(
    value
    & opt (some string) None
    & info [ "flightrec" ] ~docv:"PATH"
        ~doc:
          "Dump the daemon's in-memory flight recorder (recent \
           scheduler events) to a postmortem file at $(docv) if the \
           select loop dies fatally; replay it with oqmc_submit \
           postmortem.")

let cmd =
  Cmd.v
    (Cmd.info "oqmc_serve" ~doc:"crash-safe multi-tenant QMC job server")
    Term.(
      const serve $ socket $ dir $ max_queue $ max_running $ default_retries
      $ backoff_ms $ grace_ms $ snapshot_every $ telemetry $ flightrec)

let () = exit (Cmd.eval cmd)
