#!/bin/sh
# Validate every BENCH_*.json in the repository root: each record must
# parse as JSON and open with the shared header naming its schema
# version, precision (f32/f64) and delayed-update rank — see
# bench/report.ml (bench_header).  A bench record without that header
# is not diffable across PRs, so this gate fails CI before it lands.
#
# Usage: scripts/validate_bench.sh [file ...]
#   With no arguments, validates all BENCH_*.json in the repo root
#   (succeeding vacuously if none have been generated yet).
set -eu
cd "$(dirname "$0")/.."

dune build test/bench_validate.exe

if [ "$#" -gt 0 ]; then
  exec ./_build/default/test/bench_validate.exe "$@"
fi

set -- BENCH_*.json
if [ ! -e "$1" ]; then
  echo "validate_bench: no BENCH_*.json present, nothing to validate"
  exit 0
fi
exec ./_build/default/test/bench_validate.exe "$@"
