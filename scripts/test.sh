#!/bin/sh
# Repository test entry point: the tier-1 gate plus the crash-recovery
# smoke (4 supervised ranks, one SIGKILLed mid-run and respawned from
# its checkpoint shard), the observability smoke (trace + telemetry
# artifacts validated end to end), and the crowd-batching bench smoke
# (pipeline/staged bit-identity + zero-allocation kernel assertions).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @recovery-smoke
dune build @obs-smoke
dune build @bench-smoke
