#!/bin/sh
# Repository test entry point: the tier-1 gate plus the crash-recovery
# smoke (4 supervised ranks, one SIGKILLed mid-run and respawned from
# its checkpoint shard), the observability smoke (trace + telemetry
# artifacts validated end to end), the crowd-batching bench smoke
# (pipeline/staged bit-identity + zero-allocation kernel assertions),
# the autotune smoke (roofline-driven knob selection: sane choice,
# metrics gauges, JSON round-trip), the tile smoke (tiled orbital
# layout: zero-allocation batched kernels, and the autotuned tiled
# table must not lose to flat beyond 5%), and the chaos soak (a deterministic
# multi-hundred-generation run per seed under injected
# kills/stalls/garbage/disk-full + elastic join/leave membership;
# OQMC_CHAOS_LONG=1 extends the matrix), the serve smoke (daemon boot,
# cold job, cache-hit resubmission, deadline drain, per-job telemetry;
# emits BENCH_serve.json), and the serve soak (SIGKILL the daemon with
# jobs running and queued, restart, prove bit-identical completion and
# a loss-free journal, then a seeded service-chaos mix).  The status
# smoke exercises the live-introspection path (daemon Status snapshot
# with ledger windows and the audit.efficiency gauge, the efficiency
# audit on harmonic + reduced NiO-32, and an injected rank crash whose
# flight-recorder postmortem must replay), the obs bench records
# exposition-render and ledger-update overheads into BENCH_obs.json,
# and validate_bench.sh gates every BENCH_*.json on the shared header
# (schema version, precision, delay).
set -eu
cd "$(dirname "$0")/.."

dune build
dune runtest
dune build @recovery-smoke
dune build @obs-smoke
dune build @bench-smoke
dune build @autotune-smoke
dune build @tile-smoke
dune build @status-smoke
dune build test/chaos_soak.exe
OQMC_BENCH_OUT="$PWD/BENCH_chaos.json" ./_build/default/test/chaos_soak.exe
dune build test/serve_smoke.exe test/serve_soak.exe
OQMC_BENCH_OUT="$PWD/BENCH_serve.json" ./_build/default/test/serve_smoke.exe
./_build/default/test/serve_soak.exe
dune build bench/main.exe
dune exec bench/main.exe -- --obs --json "$PWD/BENCH_obs.json"
dune exec bench/main.exe -- --tile --json "$PWD/BENCH_tile.json"
scripts/validate_bench.sh
