open Oqmc_containers
open Oqmc_rng

(* B-spline SPO miniapp (Sec. 7.1): value-only (Bspline-v) and
   value-gradient-hessian (Bspline-vgh) evaluation over grid size and
   orbital count, at both storage precisions — the memory-latency-bound
   kernel whose single-precision table is the paper's earliest
   optimization. *)

module B32 = Oqmc_spline.Bspline3d.Make (Precision.F32)
module B64 = Oqmc_spline.Bspline3d.Make (Precision.F64)

let bench_one (type table) ~create ~fill ~eval_v ~eval_vgh ~bytes ~grid ~n_orb
    ~evals ~seed =
  ignore (seed : int);
  let (t : table) = create ~grid ~n_orb in
  fill t;
  let rng = Xoshiro.create 3 in
  let points =
    Array.init 128 (fun _ ->
        (Xoshiro.uniform rng, Xoshiro.uniform rng, Xoshiro.uniform rng))
  in
  let time f =
    let t0 = Timers.now () in
    for i = 1 to evals do
      let x, y, z = points.(i land 127) in
      f x y z
    done;
    (Timers.now () -. t0) /. float_of_int evals
  in
  let tv = time (eval_v t) in
  let tvgh = time (eval_vgh t) in
  (tv, tvgh, bytes t)

let run grids orbitals evals seed =
  Printf.printf "%-6s %-6s %14s %14s %14s %14s %10s\n" "grid" "orbs"
    "v-f32(ns)" "v-f64(ns)" "vgh-f32(ns)" "vgh-f64(ns)" "tableMB";
  List.iter
    (fun g ->
      List.iter
        (fun n_orb ->
          let v32, vgh32, b32 =
            bench_one
              ~create:(fun ~grid ~n_orb ->
                B32.create ~nx:grid ~ny:grid ~nz:grid ~n_orb)
              ~fill:(fun t ->
                let rng = Xoshiro.create seed in
                B32.fill t (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
                    Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.))
              ~eval_v:(fun t ->
                let out = Array.make n_orb 0. in
                fun x y z -> B32.eval_v t ~u0:x ~u1:y ~u2:z out)
              ~eval_vgh:(fun t ->
                let buf = B32.make_vgh_buf t in
                fun x y z -> B32.eval_vgh t ~u0:x ~u1:y ~u2:z buf)
              ~bytes:B32.bytes ~grid:g ~n_orb ~evals ~seed
          in
          let v64, vgh64, _ =
            bench_one
              ~create:(fun ~grid ~n_orb ->
                B64.create ~nx:grid ~ny:grid ~nz:grid ~n_orb)
              ~fill:(fun t ->
                let rng = Xoshiro.create seed in
                B64.fill t (fun ~orb:_ ~i:_ ~j:_ ~k:_ ->
                    Xoshiro.uniform_range rng ~lo:(-1.) ~hi:1.))
              ~eval_v:(fun t ->
                let out = Array.make n_orb 0. in
                fun x y z -> B64.eval_v t ~u0:x ~u1:y ~u2:z out)
              ~eval_vgh:(fun t ->
                let buf = B64.make_vgh_buf t in
                fun x y z -> B64.eval_vgh t ~u0:x ~u1:y ~u2:z buf)
              ~bytes:B64.bytes ~grid:g ~n_orb ~evals ~seed
          in
          Printf.printf "%-6d %-6d %14.0f %14.0f %14.0f %14.0f %10.1f\n" g
            n_orb (1e9 *. v32) (1e9 *. v64) (1e9 *. vgh32) (1e9 *. vgh64)
            (float_of_int b32 /. 1e6))
        orbitals)
    grids

open Cmdliner

let grids =
  Arg.(value & opt (list int) [ 16; 32 ] & info [ "g" ] ~doc:"Grid sizes.")

let orbitals =
  Arg.(
    value & opt (list int) [ 32; 128 ] & info [ "o" ] ~doc:"Orbital counts.")

let evals =
  Arg.(value & opt int 5000 & info [ "evals" ] ~doc:"Evaluations timed.")

let seed = Arg.(value & opt int 13 & info [ "seed" ] ~doc:"RNG seed.")

let cmd =
  Cmd.v
    (Cmd.info "mini_bspline" ~doc:"3-D B-spline SPO kernel miniapp")
    Term.(const run $ grids $ orbitals $ evals $ seed)

let () = exit (Cmd.eval cmd)
