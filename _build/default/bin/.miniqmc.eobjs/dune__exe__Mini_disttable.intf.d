bin/mini_disttable.mli:
