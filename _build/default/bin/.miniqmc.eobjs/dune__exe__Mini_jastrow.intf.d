bin/mini_jastrow.mli:
